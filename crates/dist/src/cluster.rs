//! The distributed database surface: multiple sites, two-phase commit,
//! and globally serializable read-only transactions.

use crate::gtn::Gtn;
use crate::site::{Site, SiteId};
use mvcc_core::trace::TxnTrace;
use mvcc_core::{DbError, Tracer};
use mvcc_model::{ObjectId, TxnId};
use mvcc_storage::Value;
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

/// How a distributed read-only transaction picks its snapshot.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RoMode {
    /// One global start number = the minimum `vtnc` over all sites,
    /// gathered at begin (one `VCstart` message per site). Never waits.
    GlobalMin,
    /// One global start number = the first-contacted site's `vtnc`;
    /// other sites are contacted lazily and briefly wait until their
    /// visibility covers it. No a-priori site list needed (the paper's
    /// criticism of \[8\]'s requirement).
    HomeSite,
    /// **Deliberately broken** reproduction of the anomaly in the
    /// distributed MV2PL of \[8\]: an independent snapshot per site. Each
    /// site's view is consistent, but the set of read-only transactions
    /// is not globally serializable; experiment E10 shows the oracle
    /// catching the resulting MVSG cycle.
    PerSiteSnapshots,
}

/// A simulated multi-site database.
pub struct Cluster {
    sites: Vec<Arc<Site>>,
    next_token: AtomicU64,
    next_anon: AtomicU64,
    messages: AtomicU64,
    delay: Option<Duration>,
    tracer: Option<Tracer>,
    timeout: Duration,
}

impl Cluster {
    /// `n` fresh sites (ids `1..=n`; 0 is reserved for `T_0`).
    pub fn new(n: u16) -> Self {
        Self::build(n, false, None)
    }

    /// Cluster with a global execution trace for the oracle.
    pub fn traced(n: u16) -> Self {
        Self::build(n, true, None)
    }

    /// Cluster with an injected per-message delay (models network
    /// latency; widens the in-doubt windows the protocol must tolerate).
    pub fn with_delay(n: u16, delay: Duration) -> Self {
        Self::build(n, true, Some(delay))
    }

    fn build(n: u16, trace: bool, delay: Option<Duration>) -> Self {
        assert!(n >= 1);
        Cluster {
            sites: (1..=n).map(|i| Arc::new(Site::new(SiteId(i)))).collect(),
            next_token: AtomicU64::new(1),
            next_anon: AtomicU64::new(1),
            messages: AtomicU64::new(0),
            delay,
            tracer: trace.then(Tracer::new),
            timeout: Duration::from_secs(5),
        }
    }

    /// Number of sites.
    pub fn n_sites(&self) -> u16 {
        self.sites.len() as u16
    }

    /// All site ids.
    pub fn site_ids(&self) -> Vec<SiteId> {
        self.sites.iter().map(|s| s.id()).collect()
    }

    /// Access one site.
    pub fn site(&self, id: SiteId) -> &Site {
        &self.sites[(id.0 - 1) as usize]
    }

    /// Total simulated messages so far.
    pub fn messages(&self) -> u64 {
        self.messages.load(Ordering::Relaxed)
    }

    fn msg(&self) {
        self.messages.fetch_add(1, Ordering::Relaxed);
        if let Some(d) = self.delay {
            std::thread::sleep(d);
        }
    }

    /// The global execution history, if tracing is enabled.
    pub fn trace_history(&self) -> Option<mvcc_model::History> {
        self.tracer.as_ref().map(|t| t.history())
    }

    /// Global trace object id: `(site, object)` flattened.
    pub fn global_obj(site: SiteId, obj: ObjectId) -> ObjectId {
        ObjectId(((site.0 as u64) << 40) | obj.get())
    }

    /// Seed an object at a site.
    pub fn seed(&self, site: SiteId, obj: ObjectId, value: Value) {
        self.site(site).seed(obj, value);
    }

    /// Begin a distributed read-write transaction.
    pub fn begin_rw(&self) -> DistRwTxn<'_> {
        DistRwTxn {
            cluster: self,
            token: self.next_token.fetch_add(1, Ordering::Relaxed),
            parts: BTreeMap::new(),
            trace: TxnTrace::new(),
            done: false,
        }
    }

    /// Begin a distributed read-only transaction.
    pub fn begin_ro(&self, mode: RoMode) -> DistRoTxn<'_> {
        let sn = match mode {
            RoMode::GlobalMin => {
                // One VCstart message per site; take the minimum.
                let mut sn = None;
                for s in &self.sites {
                    self.msg();
                    let v = s.ro_start();
                    sn = Some(sn.map_or(v, |cur: Gtn| cur.min(v)));
                }
                Some(sn.expect("at least one site"))
            }
            RoMode::HomeSite | RoMode::PerSiteSnapshots => None,
        };
        DistRoTxn {
            cluster: self,
            mode,
            sn,
            per_site_sn: BTreeMap::new(),
            trace: TxnTrace::new(),
        }
    }
}

/// State kept per participant site of a read-write transaction.
#[derive(Default)]
struct Participant {
    locked: Vec<ObjectId>,
    written: Vec<ObjectId>,
}

/// A distributed read-write transaction (per-site strict 2PL + 2PC).
pub struct DistRwTxn<'c> {
    cluster: &'c Cluster,
    token: u64,
    parts: BTreeMap<SiteId, Participant>,
    trace: TxnTrace,
    done: bool,
}

impl DistRwTxn<'_> {
    /// Read `obj` at `site`.
    pub fn read(&mut self, site: SiteId, obj: ObjectId) -> Result<Value, DbError> {
        self.cluster.msg();
        let s = self.cluster.site(site);
        match s.rw_read(self.token, obj) {
            Ok((version, value)) => {
                let part = self.parts.entry(site).or_default();
                if !part.locked.contains(&obj) {
                    part.locked.push(obj);
                }
                if version != u64::MAX {
                    self.trace.read(Cluster::global_obj(site, obj), version);
                }
                Ok(value)
            }
            Err(e) => {
                self.rollback();
                Err(e)
            }
        }
    }

    /// Write `obj` at `site`.
    pub fn write(&mut self, site: SiteId, obj: ObjectId, value: Value) -> Result<(), DbError> {
        self.cluster.msg();
        let s = self.cluster.site(site);
        match s.rw_write(self.token, obj, value) {
            Ok(()) => {
                let part = self.parts.entry(site).or_default();
                if !part.locked.contains(&obj) {
                    part.locked.push(obj);
                }
                if !part.written.contains(&obj) {
                    part.written.push(obj);
                }
                self.trace.write(Cluster::global_obj(site, obj));
                Ok(())
            }
            Err(e) => {
                self.rollback();
                Err(e)
            }
        }
    }

    /// Two-phase commit. Returns the single global transaction number.
    pub fn commit(mut self) -> Result<Gtn, DbError> {
        // Phase 1: every participant is past its lock point; gather
        // proposals. (Participants cannot vote no here — all their
        // conflicts were resolved by locks — so this prepare always
        // succeeds; the in-doubt window is still real for visibility.)
        let mut proposals: BTreeMap<SiteId, Gtn> = BTreeMap::new();
        for &site in self.parts.keys() {
            self.cluster.msg();
            proposals.insert(site, self.cluster.site(site).prepare(self.token));
        }
        // The single global number dominates every proposal (it *is* the
        // largest proposal, hence unique).
        let fin = proposals
            .values()
            .copied()
            .max()
            .unwrap_or_else(|| {
                // Empty transaction: synthesize a number from site 1.
                self.cluster.msg();
                self.cluster.site(SiteId(1)).prepare(self.token)
            });
        if self.parts.is_empty() {
            self.cluster.msg();
            self.cluster.site(SiteId(1)).commit(self.token, fin, fin, &[], &[])?;
            self.done = true;
            self.flush(fin, true);
            return Ok(fin);
        }
        // Phase 2: commit everywhere with the final number.
        for (&site, part) in &self.parts {
            self.cluster.msg();
            let p = proposals[&site];
            self.cluster
                .site(site)
                .commit(self.token, p, fin, &part.locked, &part.written)?;
        }
        self.done = true;
        self.flush(fin, true);
        Ok(fin)
    }

    /// Abort everywhere.
    pub fn abort(mut self) {
        self.rollback();
        self.done = true;
    }

    fn rollback(&mut self) {
        if self.done {
            return;
        }
        for (&site, part) in &self.parts {
            self.cluster.msg();
            self.cluster
                .site(site)
                .rollback(self.token, None, &part.locked, &part.written);
        }
        self.done = true;
        let anon = (1 << 63) | self.cluster.next_anon.fetch_add(1, Ordering::Relaxed);
        if let Some(t) = &self.cluster.tracer {
            t.flush(TxnId(anon), &self.trace, false);
        }
    }

    fn flush(&self, fin: Gtn, committed: bool) {
        if let Some(t) = &self.cluster.tracer {
            t.flush(TxnId(fin.encoded()), &self.trace, committed);
        }
    }
}

impl Drop for DistRwTxn<'_> {
    fn drop(&mut self) {
        self.rollback();
    }
}

/// A distributed read-only transaction.
pub struct DistRoTxn<'c> {
    cluster: &'c Cluster,
    mode: RoMode,
    /// The single global start number (GlobalMin: fixed at begin;
    /// HomeSite: fixed at first contact).
    sn: Option<Gtn>,
    /// PerSiteSnapshots only: the (broken) per-site start numbers.
    per_site_sn: BTreeMap<SiteId, Gtn>,
    trace: TxnTrace,
}

impl DistRoTxn<'_> {
    /// The global start number, if fixed yet.
    pub fn sn(&self) -> Option<Gtn> {
        self.sn
    }

    /// Read `obj` at `site` under the transaction's snapshot discipline.
    pub fn read(&mut self, site: SiteId, obj: ObjectId) -> Result<Value, DbError> {
        self.cluster.msg();
        let s = self.cluster.site(site);
        let sn = match self.mode {
            RoMode::GlobalMin => self.sn.expect("fixed at begin"),
            RoMode::HomeSite => match self.sn {
                Some(sn) => {
                    // Lazily contacted site: wait until it is caught up.
                    s.ro_catch_up(sn, self.cluster.timeout)?;
                    sn
                }
                None => {
                    let sn = s.ro_start();
                    self.sn = Some(sn);
                    sn
                }
            },
            RoMode::PerSiteSnapshots => *self
                .per_site_sn
                .entry(site)
                .or_insert_with(|| s.ro_start()),
        };
        let (version, value) = s.ro_read(obj, sn)?;
        self.trace.read(Cluster::global_obj(site, obj), version);
        Ok(value)
    }

    /// Read and decode as `u64`.
    pub fn read_u64(&mut self, site: SiteId, obj: ObjectId) -> Result<Option<u64>, DbError> {
        Ok(self.read(site, obj)?.as_u64())
    }

    /// Finish (flush the trace).
    pub fn finish(self) {
        if let Some(t) = &self.cluster.tracer {
            let anon = (1 << 63)
                | (1 << 62)
                | self.cluster.next_anon.fetch_add(1, Ordering::Relaxed);
            t.flush(TxnId(anon), &self.trace, true);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mvcc_model::mvsg;

    fn obj(n: u64) -> ObjectId {
        ObjectId(n)
    }

    #[test]
    fn distributed_rw_commits_atomically() {
        let c = Cluster::traced(3);
        let mut t = c.begin_rw();
        t.write(SiteId(1), obj(0), Value::from_u64(1)).unwrap();
        t.write(SiteId(2), obj(0), Value::from_u64(2)).unwrap();
        t.write(SiteId(3), obj(0), Value::from_u64(3)).unwrap();
        let fin = t.commit().unwrap();
        // one global number, same version everywhere
        for (i, site) in c.site_ids().into_iter().enumerate() {
            let (n, v) = c.site(site).store().read_latest(obj(0));
            assert_eq!(n, fin.encoded());
            assert_eq!(v.as_u64(), Some(i as u64 + 1));
        }
    }

    #[test]
    fn ro_global_min_is_consistent() {
        let c = Cluster::traced(2);
        // two distributed txns, each writing both sites
        for round in 1..=3u64 {
            let mut t = c.begin_rw();
            t.write(SiteId(1), obj(0), Value::from_u64(round)).unwrap();
            t.write(SiteId(2), obj(0), Value::from_u64(round)).unwrap();
            t.commit().unwrap();
        }
        let mut r = c.begin_ro(RoMode::GlobalMin);
        let a = r.read_u64(SiteId(1), obj(0)).unwrap();
        let b = r.read_u64(SiteId(2), obj(0)).unwrap();
        assert_eq!(a, b, "a distributed snapshot must agree across sites");
        assert_eq!(a, Some(3));
        r.finish();
        let h = c.trace_history().unwrap();
        assert!(mvsg::check_tn_order(&h).acyclic);
    }

    #[test]
    fn ro_home_site_waits_for_lagging_site() {
        let c = Cluster::traced(2);
        // Site 1 is ahead: a local txn committed there.
        let mut t = c.begin_rw();
        t.write(SiteId(1), obj(0), Value::from_u64(5)).unwrap();
        t.commit().unwrap();
        let mut r = c.begin_ro(RoMode::HomeSite);
        assert_eq!(r.read_u64(SiteId(1), obj(0)).unwrap(), Some(5));
        let sn = r.sn().unwrap();
        // Site 2's vtnc (ZERO) lags the home start number; a commit
        // through site 2 advances it past sn, releasing the catch-up.
        let mut t2 = c.begin_rw();
        t2.write(SiteId(2), obj(1), Value::from_u64(1)).unwrap();
        let f2 = t2.commit().unwrap();
        assert!(f2 > sn, "site-2 commit is later in gtn order");
        // obj(0) at site 2 was never written: the snapshot reads the
        // (empty) initial version after catching up.
        assert_eq!(r.read(SiteId(2), obj(0)).unwrap(), Value::empty());
        assert!(c.site(SiteId(2)).metrics().snapshot().ro_blocks <= 1);
        r.finish();
        let h = c.trace_history().unwrap();
        assert!(mvsg::check_tn_order(&h).acyclic);
    }

    /// The classic crossing of the distributed MV2PL of \[8\]: RO_x sees
    /// T1 but not T2; RO_y sees T2 but not T1 — each view is internally
    /// consistent, but together they are not globally serializable.
    fn crossing_script(c: &Cluster, mode: RoMode) {
        // RO_y pins site 1 before T1 commits.
        let mut ro_y = c.begin_ro(mode);
        let v = ro_y.read(SiteId(1), obj(0)).unwrap(); // version 0
        assert!(v.is_empty());
        // T1 commits at site 1.
        let mut t1 = c.begin_rw();
        t1.write(SiteId(1), obj(0), Value::from_u64(1)).unwrap();
        t1.commit().unwrap();
        // RO_x pins site 1 after T1 (sees it) and site 2 before T2.
        let mut ro_x = c.begin_ro(mode);
        let _ = ro_x.read(SiteId(1), obj(0)).unwrap();
        let _ = ro_x.read(SiteId(2), obj(0)).unwrap();
        // T2 commits at site 2.
        let mut t2 = c.begin_rw();
        t2.write(SiteId(2), obj(0), Value::from_u64(2)).unwrap();
        t2.commit().unwrap();
        // RO_y now reads site 2 (sees T2 in the broken mode).
        let _ = ro_y.read(SiteId(2), obj(0)).unwrap();
        ro_x.finish();
        ro_y.finish();
    }

    #[test]
    fn per_site_snapshots_anomaly_detected_by_oracle() {
        let c = Cluster::traced(2);
        crossing_script(&c, RoMode::PerSiteSnapshots);
        let h = c.trace_history().unwrap();
        let rep = mvsg::check_tn_order(&h);
        assert!(
            !rep.acyclic,
            "per-site snapshots must NOT be globally serializable; trace: {h}"
        );
        // And no version order can repair it — the anomaly is real.
        assert!(mvcc_model::mvsg::check_exhaustive(&h, 1_000_000)
            .unwrap()
            .is_none());
    }

    #[test]
    fn global_min_stays_serializable_under_same_script() {
        let c = Cluster::traced(2);
        crossing_script(&c, RoMode::GlobalMin);
        let h = c.trace_history().unwrap();
        let rep = mvsg::check_tn_order(&h);
        assert!(rep.acyclic, "GlobalMin must stay serializable: {:?}", rep.cycle);
    }

    #[test]
    fn message_counting_and_delay() {
        let c = Cluster::new(2);
        let before = c.messages();
        let mut t = c.begin_rw();
        t.write(SiteId(1), obj(0), Value::from_u64(1)).unwrap();
        t.commit().unwrap();
        // 1 write + 1 prepare + 1 commit = 3 messages
        assert_eq!(c.messages() - before, 3);
        let before = c.messages();
        let mut r = c.begin_ro(RoMode::GlobalMin);
        let _ = r.read(SiteId(1), obj(0)).unwrap();
        r.finish();
        // 2 VCstart (one per site) + 1 read
        assert_eq!(c.messages() - before, 3);
    }
}
