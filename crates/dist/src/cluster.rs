//! The distributed database surface: multiple sites, two-phase commit,
//! and globally serializable read-only transactions.
//!
//! ## Message model
//!
//! Two channel kinds, both counted in [`Cluster::messages`]:
//!
//! * **Reliable request/reply** ([`Cluster::msg_reliable`]) — reads,
//!   writes, phase-1 prepares and rollbacks. A drop fault triggers a
//!   transparent retransmission (each one counted), so these always
//!   arrive; faults only cost messages and latency.
//! * **One-way, lossy** ([`Cluster::msg_one_way`]) — phase-2 decision
//!   messages only. A drop fault loses the decision (the participant
//!   stays *in doubt*); a duplication fault delivers it twice
//!   (exercising the participant's idempotence filter).
//!
//! The coordinator records its decision in the cluster-wide
//! [decision log](Cluster::resolve_in_doubt) **before** sending any
//! phase-2 message. That ordering is what makes *presumed abort* safe:
//! a transaction absent from the log cannot have committed anywhere.

use crate::gtn::Gtn;
use crate::site::{Site, SiteId};
use mvcc_core::clock::{real_clock, SharedClock, SharedRng};
use mvcc_core::obs::{SpanRegistry, TraceCtx, TraceSnapshot};
use mvcc_core::trace::TxnTrace;
use mvcc_core::{
    AbortReason, DbError, Deadline, FaultConfig, FaultInjector, FaultPoint, Tracer, TxnOptions,
};
use mvcc_model::{ObjectId, TxnId};
use mvcc_storage::Value;
use parking_lot::Mutex;
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

/// Retransmission cap for the reliable channel: past this many drops the
/// delivery is forced through (the channel is reliable by assumption; the
/// cap only bounds the simulated retransmission cost at extreme rates).
const MAX_RETRANSMIT: u32 = 16;

/// How a distributed read-only transaction picks its snapshot.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RoMode {
    /// One global start number = the minimum `vtnc` over all sites,
    /// gathered at begin (one `VCstart` message per site). Never waits.
    GlobalMin,
    /// One global start number = the first-contacted site's `vtnc`;
    /// other sites are contacted lazily and briefly wait until their
    /// visibility covers it. No a-priori site list needed (the paper's
    /// criticism of \[8\]'s requirement). If a lagging site fails to
    /// catch up within the cluster timeout, the transaction falls back
    /// to a [`GlobalMin`](RoMode::GlobalMin) snapshot — valid only if
    /// every read taken so far is unchanged at the lower bound.
    HomeSite,
    /// **Deliberately broken** reproduction of the anomaly in the
    /// distributed MV2PL of \[8\]: an independent snapshot per site. Each
    /// site's view is consistent, but the set of read-only transactions
    /// is not globally serializable; experiment E10 shows the oracle
    /// catching the resulting MVSG cycle.
    PerSiteSnapshots,
}

/// Cluster-wide knobs (timeouts, network behavior, fault injection).
#[derive(Debug, Clone)]
pub struct ClusterConfig {
    /// Base per-message delay (models network latency; widens the
    /// in-doubt windows the protocol must tolerate).
    pub delay: Option<Duration>,
    /// Read-only catch-up timeout (HomeSite mode).
    pub timeout: Duration,
    /// Per-site lock-wait timeout (breaks distributed deadlocks).
    pub lock_timeout: Duration,
    /// Fault-injection configuration shared by every channel.
    pub fault: FaultConfig,
    /// Keep a global execution trace for the MVSG oracle.
    pub trace: bool,
    /// Time source for network delays and in-doubt age stamps. Defaults
    /// to the real wall clock; the simulation harness injects a
    /// [`SimClock`](mvcc_core::SimClock) so delays advance virtual time.
    pub clock: SharedClock,
    /// Randomness source for fault injection. `None` (the default) seeds
    /// a private stream from `fault.seed`; the simulation harness
    /// injects its schedule rng so faults replay with the run.
    pub rng: Option<SharedRng>,
}

impl Default for ClusterConfig {
    fn default() -> Self {
        ClusterConfig {
            delay: None,
            timeout: Duration::from_secs(5),
            lock_timeout: Duration::from_secs(2),
            fault: FaultConfig::default(),
            trace: false,
            clock: real_clock(),
            rng: None,
        }
    }
}

impl ClusterConfig {
    /// Set the base per-message delay.
    pub fn with_delay(mut self, delay: Duration) -> Self {
        self.delay = Some(delay);
        self
    }

    /// Set the read-only catch-up timeout.
    pub fn with_timeout(mut self, timeout: Duration) -> Self {
        self.timeout = timeout;
        self
    }

    /// Set the per-site lock-wait timeout.
    pub fn with_lock_timeout(mut self, timeout: Duration) -> Self {
        self.lock_timeout = timeout;
        self
    }

    /// Set the fault-injection configuration.
    pub fn with_fault(mut self, fault: FaultConfig) -> Self {
        self.fault = fault;
        self
    }

    /// Enable the global execution trace.
    pub fn with_trace(mut self) -> Self {
        self.trace = true;
        self
    }

    /// Inject a time source (simulation harness).
    pub fn with_clock(mut self, clock: SharedClock) -> Self {
        self.clock = clock;
        self
    }

    /// Inject a randomness source (simulation harness).
    pub fn with_rng(mut self, rng: SharedRng) -> Self {
        self.rng = Some(rng);
        self
    }
}

/// The coordinator's logged commit/abort decision for one transaction.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Decision {
    Commit(Gtn),
    Abort,
}

/// One gauge sample of per-site visibility: how far each site's `vtnc`
/// has advanced and how much the slowest site lags the fastest (in
/// Lamport time). Produced by [`Cluster::visibility_skew`]; the skew is
/// the distributed analogue of the single-site `vtnc_lag` gauge — a
/// persistent skew means some site is pinning global snapshots back.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SiteSkew {
    /// Each site's current visibility watermark.
    pub per_site: Vec<(SiteId, Gtn)>,
    /// `max(time) - min(time)` over all sites' watermarks.
    pub skew: u64,
}

impl SiteSkew {
    /// Flatten into `(name, value)` gauge fields: one `site<N>_vtnc_time`
    /// entry per site would need dynamic names, so this reports the
    /// aggregate trio exporters care about.
    pub fn fields(&self) -> Vec<(&'static str, u64)> {
        let times: Vec<u64> = self.per_site.iter().map(|&(_, g)| g.time()).collect();
        vec![
            (
                "site_vtnc_time_min",
                times.iter().copied().min().unwrap_or(0),
            ),
            (
                "site_vtnc_time_max",
                times.iter().copied().max().unwrap_or(0),
            ),
            ("site_vtnc_skew", self.skew),
        ]
    }
}

/// Outcome counts of one [`Cluster::resolve_in_doubt`] sweep.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct InDoubtStats {
    /// Transactions finished as committed (decision log said commit).
    pub resolved_commit: u64,
    /// Transactions finished as aborted (logged abort, or presumed).
    pub resolved_abort: u64,
    /// Transactions left in doubt (undecided and younger than the
    /// presumed-abort threshold).
    pub still_in_doubt: u64,
}

/// A simulated multi-site database.
pub struct Cluster {
    sites: Vec<Arc<Site>>,
    next_token: AtomicU64,
    next_anon: AtomicU64,
    messages: AtomicU64,
    delay: Option<Duration>,
    tracer: Option<Tracer>,
    timeout: Duration,
    clock: SharedClock,
    faults: FaultInjector,
    /// Coordinator decision log, written *before* any phase-2 message.
    /// Stands in for the coordinator's stable commit record; in-doubt
    /// participants query it via [`Cluster::resolve_in_doubt`].
    decisions: Mutex<BTreeMap<u64, Decision>>,
    /// HomeSite read-only transactions that fell back to GlobalMin.
    ro_fallbacks: AtomicU64,
    /// End-to-end transaction traces. Cluster-owned (not per-site) so the
    /// prepare/decide/commit legs of one 2PC land in a single span tree.
    spans: SpanRegistry,
}

impl Cluster {
    /// `n` fresh sites (ids `1..=n`; 0 is reserved for `T_0`).
    pub fn new(n: u16) -> Self {
        Self::with_config(n, ClusterConfig::default())
    }

    /// Cluster with a global execution trace for the oracle.
    pub fn traced(n: u16) -> Self {
        Self::with_config(n, ClusterConfig::default().with_trace())
    }

    /// Cluster with an injected per-message delay (models network
    /// latency; widens the in-doubt windows the protocol must tolerate).
    pub fn with_delay(n: u16, delay: Duration) -> Self {
        Self::with_config(n, ClusterConfig::default().with_trace().with_delay(delay))
    }

    /// Cluster from an explicit configuration.
    pub fn with_config(n: u16, cfg: ClusterConfig) -> Self {
        assert!(n >= 1);
        Cluster {
            sites: (1..=n)
                .map(|i| {
                    Arc::new(Site::with_clock(
                        SiteId(i),
                        cfg.lock_timeout,
                        Arc::clone(&cfg.clock),
                    ))
                })
                .collect(),
            next_token: AtomicU64::new(1),
            next_anon: AtomicU64::new(1),
            messages: AtomicU64::new(0),
            delay: cfg.delay,
            tracer: cfg.trace.then(Tracer::new),
            timeout: cfg.timeout,
            clock: Arc::clone(&cfg.clock),
            faults: match cfg.rng {
                Some(rng) => FaultInjector::with_rng(cfg.fault, rng),
                None => FaultInjector::new(cfg.fault),
            },
            decisions: Mutex::new(BTreeMap::new()),
            ro_fallbacks: AtomicU64::new(0),
            spans: SpanRegistry::new(Arc::clone(&cfg.clock)),
        }
    }

    /// Number of sites.
    pub fn n_sites(&self) -> u16 {
        self.sites.len() as u16
    }

    /// All site ids.
    pub fn site_ids(&self) -> Vec<SiteId> {
        self.sites.iter().map(|s| s.id()).collect()
    }

    /// Access one site.
    pub fn site(&self, id: SiteId) -> &Site {
        assert!(
            id.0 >= 1 && (id.0 as usize) <= self.sites.len(),
            "site id {} out of range 1..={}",
            id.0,
            self.sites.len()
        );
        &self.sites[(id.0 - 1) as usize]
    }

    /// Total simulated messages so far (including retransmissions and
    /// duplicate deliveries).
    pub fn messages(&self) -> u64 {
        self.messages.load(Ordering::Relaxed)
    }

    /// The cluster's fault injector (for experiment reporting).
    pub fn faults(&self) -> &FaultInjector {
        &self.faults
    }

    /// How many HomeSite read-only transactions fell back to GlobalMin.
    pub fn ro_fallbacks(&self) -> u64 {
        self.ro_fallbacks.load(Ordering::Relaxed)
    }

    /// Start an end-to-end trace; pass the returned context on
    /// [`TxnOptions::with_trace`] to [`Cluster::begin_rw_with`]. The 2PC
    /// prepare, decision and per-site commit legs of that transaction are
    /// recorded as spans under one root.
    pub fn start_trace(&self) -> TraceCtx {
        self.spans.start()
    }

    /// Export a finished copy of a trace's span tree (`None` if unknown
    /// or evicted).
    pub fn trace_snapshot(&self, trace_id: u64) -> Option<TraceSnapshot> {
        self.spans.snapshot(trace_id)
    }

    /// A trace as Chrome `trace_event` JSON (load in `chrome://tracing`
    /// or Perfetto).
    pub fn trace_chrome_json(&self, trace_id: u64) -> Option<String> {
        Some(mvcc_core::obs::chrome_trace_json(
            &self.spans.snapshot(trace_id)?,
        ))
    }

    /// A trace as compact OTLP-style JSON.
    pub fn trace_otlp_json(&self, trace_id: u64) -> Option<String> {
        Some(mvcc_core::obs::otlp_trace_json(
            &self.spans.snapshot(trace_id)?,
        ))
    }

    /// Sample every site's visibility watermark and the Lamport-time skew
    /// between the fastest and slowest site. Purely local (no simulated
    /// messages): this models an operator's dashboard scrape, not a
    /// protocol action.
    pub fn visibility_skew(&self) -> SiteSkew {
        let per_site: Vec<(SiteId, Gtn)> =
            self.sites.iter().map(|s| (s.id(), s.vc().vtnc())).collect();
        let times = per_site.iter().map(|&(_, g)| g.time());
        let skew = times
            .clone()
            .max()
            .unwrap_or(0)
            .saturating_sub(times.min().unwrap_or(0));
        SiteSkew { per_site, skew }
    }

    fn net_delay(&self) {
        if let Some(d) = self.delay {
            self.clock.sleep(d);
        }
        if self.faults.fire(FaultPoint::MsgDelay) {
            self.clock.sleep(self.faults.extra_delay());
        }
    }

    /// One delivery on the reliable request/reply channel. A drop fault
    /// costs a (counted) retransmission; the call returns once delivered.
    fn msg_reliable(&self) {
        for attempt in 0.. {
            self.messages.fetch_add(1, Ordering::Relaxed);
            self.net_delay();
            if attempt >= MAX_RETRANSMIT || !self.faults.fire(FaultPoint::MsgDrop) {
                break;
            }
        }
    }

    /// One send on the one-way lossy channel (phase-2 decisions).
    /// Returns how many times the message is delivered: 0 (lost),
    /// 1 (normal) or 2 (duplicated).
    fn msg_one_way(&self) -> u32 {
        self.messages.fetch_add(1, Ordering::Relaxed);
        self.net_delay();
        if self.faults.fire(FaultPoint::MsgDrop) {
            return 0;
        }
        if self.faults.fire(FaultPoint::MsgDuplicate) {
            self.messages.fetch_add(1, Ordering::Relaxed);
            self.net_delay();
            return 2;
        }
        1
    }

    /// The global execution history, if tracing is enabled.
    pub fn trace_history(&self) -> Option<mvcc_model::History> {
        self.tracer.as_ref().map(|t| t.history())
    }

    /// Global trace object id: `(site, object)` flattened.
    pub fn global_obj(site: SiteId, obj: ObjectId) -> ObjectId {
        ObjectId(((site.0 as u64) << 40) | obj.get())
    }

    /// Seed an object at a site.
    pub fn seed(&self, site: SiteId, obj: ObjectId, value: Value) {
        self.site(site).seed(obj, value);
    }

    /// Begin a distributed read-write transaction.
    pub fn begin_rw(&self) -> DistRwTxn<'_> {
        DistRwTxn {
            cluster: self,
            token: self.next_token.fetch_add(1, Ordering::Relaxed),
            parts: BTreeMap::new(),
            trace: TxnTrace::new(),
            done: false,
            deadline: None,
            trace_id: None,
        }
    }

    /// Begin a distributed read-write transaction with per-transaction
    /// options. A deadline budget bounds the whole transaction: reads,
    /// writes, and two-phase commit all check it, and an expired budget
    /// rolls the transaction back *before* the commit decision is logged
    /// (never after — a logged decision is always driven to completion).
    pub fn begin_rw_with(&self, opts: &TxnOptions) -> DistRwTxn<'_> {
        let mut t = self.begin_rw();
        t.deadline = opts
            .deadline
            .map(|budget| Deadline::within(&*self.clock, budget));
        t.trace_id = opts.trace.map(|ctx| ctx.trace_id);
        t
    }

    /// Begin a distributed read-only transaction.
    pub fn begin_ro(&self, mode: RoMode) -> DistRoTxn<'_> {
        let sn = match mode {
            RoMode::GlobalMin => Some(self.global_min()),
            RoMode::HomeSite | RoMode::PerSiteSnapshots => None,
        };
        DistRoTxn {
            cluster: self,
            mode,
            sn,
            per_site_sn: BTreeMap::new(),
            reads: Vec::new(),
            trace: TxnTrace::new(),
        }
    }

    /// One `VCstart` message per site; the minimum is a consistent
    /// global snapshot that never waits.
    fn global_min(&self) -> Gtn {
        let mut sn = None;
        for s in &self.sites {
            self.msg_reliable();
            let v = s.ro_start();
            sn = Some(sn.map_or(v, |cur: Gtn| cur.min(v)));
        }
        sn.expect("at least one site")
    }

    /// Resolver sweep: finish every in-doubt transaction whose decision
    /// is known (one reliable query message per in-doubt entry), and
    /// presume abort for undecided entries older than
    /// `presume_abort_after`. Presumed abort is safe because the
    /// coordinator logs its decision before any phase-2 send: an
    /// undecided transaction cannot have committed at any site.
    pub fn resolve_in_doubt(&self, presume_abort_after: Duration) -> InDoubtStats {
        let mut stats = InDoubtStats::default();
        for s in &self.sites {
            for (token, age) in s.in_doubt_tokens() {
                let decision = self.decisions.lock().get(&token).copied();
                match decision {
                    Some(Decision::Commit(fin)) => {
                        self.msg_reliable();
                        match s.resolve_commit(token, fin) {
                            Ok(true) => stats.resolved_commit += 1,
                            Ok(false) => {}
                            Err(_) => stats.still_in_doubt += 1,
                        }
                    }
                    Some(Decision::Abort) => {
                        self.msg_reliable();
                        if s.resolve_abort(token) {
                            stats.resolved_abort += 1;
                        }
                    }
                    None if age >= presume_abort_after => {
                        if s.resolve_abort(token) {
                            stats.resolved_abort += 1;
                        }
                    }
                    None => stats.still_in_doubt += 1,
                }
            }
        }
        stats
    }

    /// Crash a site: its volatile state (locks, pendings, in-doubt 2PC
    /// records, version-control queue) vanishes.
    pub fn crash_site(&self, id: SiteId) {
        self.site(id).crash();
    }

    /// Recover a crashed site: rebuild its visibility watermark from
    /// durable storage, then gossip with every peer (one message each)
    /// so its Lamport clock dominates everything the cluster has seen.
    /// Returns the recovered watermark.
    pub fn recover_site(&self, id: SiteId) -> Gtn {
        let watermark = self.site(id).recover();
        for s in &self.sites {
            if s.id() != id {
                self.msg_reliable();
                self.site(id).vc().observe(s.vc().vtnc());
            }
        }
        watermark
    }
}

/// State kept per participant site of a read-write transaction.
#[derive(Default)]
struct Participant {
    locked: Vec<ObjectId>,
    written: Vec<ObjectId>,
}

/// A distributed read-write transaction (per-site strict 2PL + 2PC).
pub struct DistRwTxn<'c> {
    cluster: &'c Cluster,
    token: u64,
    parts: BTreeMap<SiteId, Participant>,
    trace: TxnTrace,
    done: bool,
    /// Deadline budget, when begun with one (see
    /// [`Cluster::begin_rw_with`]).
    deadline: Option<Deadline>,
    /// End-to-end trace this transaction belongs to, when begun with a
    /// [`TraceCtx`] on its options.
    trace_id: Option<u64>,
}

impl DistRwTxn<'_> {
    /// Fail fast once the deadline budget is spent: roll back everywhere
    /// and surface the miss. Called at every operation entry and before
    /// each phase-1 prepare — never after the decision is logged.
    fn check_deadline(&mut self) -> Result<(), DbError> {
        if self
            .deadline
            .is_some_and(|d| d.expired(&*self.cluster.clock))
        {
            self.rollback();
            return Err(DbError::Aborted(AbortReason::DeadlineExceeded));
        }
        Ok(())
    }

    /// Read `obj` at `site`.
    pub fn read(&mut self, site: SiteId, obj: ObjectId) -> Result<Value, DbError> {
        self.check_deadline()?;
        self.cluster.msg_reliable();
        let s = self.cluster.site(site);
        match s.rw_read(self.token, obj) {
            Ok((version, value)) => {
                let part = self.parts.entry(site).or_default();
                if !part.locked.contains(&obj) {
                    part.locked.push(obj);
                }
                if version != u64::MAX {
                    self.trace.read(Cluster::global_obj(site, obj), version);
                }
                Ok(value)
            }
            Err(e) => {
                self.rollback();
                Err(e)
            }
        }
    }

    /// Write `obj` at `site`.
    pub fn write(&mut self, site: SiteId, obj: ObjectId, value: Value) -> Result<(), DbError> {
        self.check_deadline()?;
        self.cluster.msg_reliable();
        let s = self.cluster.site(site);
        match s.rw_write(self.token, obj, value) {
            Ok(()) => {
                let part = self.parts.entry(site).or_default();
                if !part.locked.contains(&obj) {
                    part.locked.push(obj);
                }
                if !part.written.contains(&obj) {
                    part.written.push(obj);
                }
                self.trace.write(Cluster::global_obj(site, obj));
                Ok(())
            }
            Err(e) => {
                self.rollback();
                Err(e)
            }
        }
    }

    /// Two-phase commit. Returns the single global transaction number.
    ///
    /// `Ok` means the decision is durable (logged), not that every
    /// participant has heard it: a dropped phase-2 message leaves that
    /// participant in doubt until [`Cluster::resolve_in_doubt`] finishes
    /// the transaction from the decision log.
    pub fn commit(mut self) -> Result<Gtn, DbError> {
        // Phase 1 (reliable): every participant is past its lock point;
        // gather proposals. (Participants cannot vote no here — all
        // their conflicts were resolved by locks — so this prepare
        // always succeeds; the in-doubt window is still real for
        // visibility.)
        // A spent deadline budget aborts here, while rollback is still
        // sound; once the decision is logged below, the transaction is
        // always driven to completion regardless of the deadline.
        if self
            .deadline
            .is_some_and(|d| d.expired(&*self.cluster.clock))
        {
            self.rollback();
            return Err(DbError::Aborted(AbortReason::DeadlineExceeded));
        }
        let spans = &self.cluster.spans;
        let prepare_start = self.trace_id.map(|_| spans.now_ns());
        let mut proposals: BTreeMap<SiteId, Gtn> = BTreeMap::new();
        for (&site, part) in &self.parts {
            self.cluster.msg_reliable();
            proposals.insert(
                site,
                self.cluster
                    .site(site)
                    .prepare(self.token, &part.locked, &part.written),
            );
        }
        // The single global number dominates every proposal (it *is* the
        // largest proposal, hence unique).
        let fin = proposals.values().copied().max().unwrap_or_else(|| {
            // Empty transaction: synthesize a number from site 1.
            self.cluster.msg_reliable();
            self.cluster.site(SiteId(1)).prepare(self.token, &[], &[])
        });
        if let (Some(id), Some(start)) = (self.trace_id, prepare_start) {
            spans.record_root_span(
                id,
                "2pc_prepare",
                start,
                vec![
                    ("sites", self.parts.len().max(1) as u64),
                    ("fin_time", fin.time()),
                ],
            );
        }
        // Decision point: the commit record must be durable BEFORE any
        // phase-2 message leaves, or presumed abort would be unsound.
        let decide_start = self.trace_id.map(|_| spans.now_ns());
        self.cluster
            .decisions
            .lock()
            .insert(self.token, Decision::Commit(fin));
        if let (Some(id), Some(start)) = (self.trace_id, decide_start) {
            spans.record_root_span(id, "2pc_decide", start, vec![("committed", 1)]);
        }
        if self.parts.is_empty() {
            let leg_start = self.trace_id.map(|_| spans.now_ns());
            let mut deliveries = 0u64;
            for _ in 0..self.cluster.msg_one_way() {
                self.cluster
                    .site(SiteId(1))
                    .commit(self.token, fin, fin, &[], &[])?;
                deliveries += 1;
            }
            if let (Some(id), Some(start)) = (self.trace_id, leg_start) {
                spans.record_root_span(
                    id,
                    "2pc_commit_leg",
                    start,
                    vec![("site", 1), ("deliveries", deliveries)],
                );
            }
            self.done = true;
            self.flush(fin, true);
            return Ok(fin);
        }
        // Phase 2 (one-way, lossy): commit everywhere with the final
        // number. A lost delivery leaves the participant in doubt; a
        // duplicate is absorbed by its idempotence filter.
        for (&site, part) in &self.parts {
            let p = proposals[&site];
            let leg_start = self.trace_id.map(|_| spans.now_ns());
            let mut deliveries = 0u64;
            for _ in 0..self.cluster.msg_one_way() {
                self.cluster
                    .site(site)
                    .commit(self.token, p, fin, &part.locked, &part.written)?;
                deliveries += 1;
            }
            // `deliveries = 0` in the exported trace is exactly the
            // "participant left in doubt" signature operators hunt for.
            if let (Some(id), Some(start)) = (self.trace_id, leg_start) {
                spans.record_root_span(
                    id,
                    "2pc_commit_leg",
                    start,
                    vec![("site", site.0 as u64), ("deliveries", deliveries)],
                );
            }
        }
        self.done = true;
        self.flush(fin, true);
        Ok(fin)
    }

    /// Abort everywhere.
    pub fn abort(mut self) {
        self.rollback();
        self.done = true;
    }

    fn rollback(&mut self) {
        if self.done {
            return;
        }
        let abort_start = self.trace_id.map(|_| self.cluster.spans.now_ns());
        // Aborts ride the reliable channel: there is no decision to
        // lose, and the log entry lets a racing resolver agree.
        self.cluster
            .decisions
            .lock()
            .insert(self.token, Decision::Abort);
        for (&site, part) in &self.parts {
            self.cluster.msg_reliable();
            self.cluster
                .site(site)
                .rollback(self.token, None, &part.locked, &part.written);
        }
        if let (Some(id), Some(start)) = (self.trace_id, abort_start) {
            self.cluster.spans.record_root_span(
                id,
                "2pc_abort",
                start,
                vec![("sites", self.parts.len() as u64)],
            );
        }
        self.done = true;
        let anon = (1 << 63) | self.cluster.next_anon.fetch_add(1, Ordering::Relaxed);
        if let Some(t) = &self.cluster.tracer {
            t.flush(TxnId(anon), &self.trace, false);
        }
    }

    fn flush(&self, fin: Gtn, committed: bool) {
        if let Some(t) = &self.cluster.tracer {
            t.flush(TxnId(fin.encoded()), &self.trace, committed);
        }
    }
}

impl Drop for DistRwTxn<'_> {
    fn drop(&mut self) {
        self.rollback();
    }
}

/// A distributed read-only transaction.
pub struct DistRoTxn<'c> {
    cluster: &'c Cluster,
    mode: RoMode,
    /// The single global start number (GlobalMin: fixed at begin;
    /// HomeSite: fixed at first contact, possibly lowered by fallback).
    sn: Option<Gtn>,
    /// PerSiteSnapshots only: the (broken) per-site start numbers.
    per_site_sn: BTreeMap<SiteId, Gtn>,
    /// Every `(site, object, version)` this transaction has read —
    /// the evidence checked by the HomeSite → GlobalMin fallback.
    reads: Vec<(SiteId, ObjectId, u64)>,
    trace: TxnTrace,
}

impl DistRoTxn<'_> {
    /// The global start number, if fixed yet.
    pub fn sn(&self) -> Option<Gtn> {
        self.sn
    }

    /// Read `obj` at `site` under the transaction's snapshot discipline.
    pub fn read(&mut self, site: SiteId, obj: ObjectId) -> Result<Value, DbError> {
        self.cluster.msg_reliable();
        let s = self.cluster.site(site);
        let sn = match self.mode {
            RoMode::GlobalMin => self.sn.expect("fixed at begin"),
            RoMode::HomeSite => match self.sn {
                Some(sn) => {
                    // Lazily contacted site: wait until it is caught up;
                    // if it never does, drop to a GlobalMin snapshot.
                    match s.ro_catch_up(sn, self.cluster.timeout) {
                        Ok(_) => sn,
                        Err(DbError::Aborted(AbortReason::WaitTimeout)) => {
                            self.fall_back_to_global_min()?
                        }
                        Err(e) => return Err(e),
                    }
                }
                None => {
                    let sn = s.ro_start();
                    self.sn = Some(sn);
                    sn
                }
            },
            RoMode::PerSiteSnapshots => {
                *self.per_site_sn.entry(site).or_insert_with(|| s.ro_start())
            }
        };
        let (version, value) = s.ro_read(obj, sn)?;
        self.reads.push((site, obj, version));
        self.trace.read(Cluster::global_obj(site, obj), version);
        Ok(value)
    }

    /// A lagging site timed out catching up to the home start number.
    /// Liveness escape hatch: adopt the (lower) GlobalMin snapshot `g`,
    /// but only if every read taken so far returns the *same version*
    /// at `g` — then the whole history is a consistent read at `g` and
    /// serializability is preserved. Any mismatch aborts the
    /// transaction instead.
    fn fall_back_to_global_min(&mut self) -> Result<Gtn, DbError> {
        let g = self.cluster.global_min();
        for &(site, obj, version) in &self.reads {
            self.cluster.msg_reliable();
            let (v, _) = self.cluster.site(site).ro_read(obj, g)?;
            if v != version {
                return Err(DbError::Aborted(AbortReason::WaitTimeout));
            }
        }
        self.cluster.ro_fallbacks.fetch_add(1, Ordering::Relaxed);
        self.sn = Some(g);
        Ok(g)
    }

    /// Read and decode as `u64`.
    pub fn read_u64(&mut self, site: SiteId, obj: ObjectId) -> Result<Option<u64>, DbError> {
        Ok(self.read(site, obj)?.as_u64())
    }

    /// Finish (flush the trace).
    pub fn finish(self) {
        if let Some(t) = &self.cluster.tracer {
            let anon =
                (1 << 63) | (1 << 62) | self.cluster.next_anon.fetch_add(1, Ordering::Relaxed);
            t.flush(TxnId(anon), &self.trace, true);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mvcc_model::mvsg;

    fn obj(n: u64) -> ObjectId {
        ObjectId(n)
    }

    #[test]
    fn distributed_rw_commits_atomically() {
        let c = Cluster::traced(3);
        let mut t = c.begin_rw();
        t.write(SiteId(1), obj(0), Value::from_u64(1)).unwrap();
        t.write(SiteId(2), obj(0), Value::from_u64(2)).unwrap();
        t.write(SiteId(3), obj(0), Value::from_u64(3)).unwrap();
        let fin = t.commit().unwrap();
        // one global number, same version everywhere
        for (i, site) in c.site_ids().into_iter().enumerate() {
            let (n, v) = c.site(site).store().read_latest(obj(0));
            assert_eq!(n, fin.encoded());
            assert_eq!(v.as_u64(), Some(i as u64 + 1));
        }
    }

    #[test]
    fn ro_global_min_is_consistent() {
        let c = Cluster::traced(2);
        // two distributed txns, each writing both sites
        for round in 1..=3u64 {
            let mut t = c.begin_rw();
            t.write(SiteId(1), obj(0), Value::from_u64(round)).unwrap();
            t.write(SiteId(2), obj(0), Value::from_u64(round)).unwrap();
            t.commit().unwrap();
        }
        let mut r = c.begin_ro(RoMode::GlobalMin);
        let a = r.read_u64(SiteId(1), obj(0)).unwrap();
        let b = r.read_u64(SiteId(2), obj(0)).unwrap();
        assert_eq!(a, b, "a distributed snapshot must agree across sites");
        assert_eq!(a, Some(3));
        r.finish();
        let h = c.trace_history().unwrap();
        assert!(mvsg::check_tn_order(&h).acyclic);
    }

    #[test]
    fn ro_home_site_waits_for_lagging_site() {
        let c = Cluster::traced(2);
        // Site 1 is ahead: a local txn committed there.
        let mut t = c.begin_rw();
        t.write(SiteId(1), obj(0), Value::from_u64(5)).unwrap();
        t.commit().unwrap();
        let mut r = c.begin_ro(RoMode::HomeSite);
        assert_eq!(r.read_u64(SiteId(1), obj(0)).unwrap(), Some(5));
        let sn = r.sn().unwrap();
        // Site 2's vtnc (ZERO) lags the home start number; a commit
        // through site 2 advances it past sn, releasing the catch-up.
        let mut t2 = c.begin_rw();
        t2.write(SiteId(2), obj(1), Value::from_u64(1)).unwrap();
        let f2 = t2.commit().unwrap();
        assert!(f2 > sn, "site-2 commit is later in gtn order");
        // obj(0) at site 2 was never written: the snapshot reads the
        // (empty) initial version after catching up.
        assert_eq!(r.read(SiteId(2), obj(0)).unwrap(), Value::empty());
        assert!(c.site(SiteId(2)).metrics().snapshot().ro_blocks <= 1);
        r.finish();
        let h = c.trace_history().unwrap();
        assert!(mvsg::check_tn_order(&h).acyclic);
    }

    /// The classic crossing of the distributed MV2PL of \[8\]: RO_x sees
    /// T1 but not T2; RO_y sees T2 but not T1 — each view is internally
    /// consistent, but together they are not globally serializable.
    fn crossing_script(c: &Cluster, mode: RoMode) {
        // RO_y pins site 1 before T1 commits.
        let mut ro_y = c.begin_ro(mode);
        let v = ro_y.read(SiteId(1), obj(0)).unwrap(); // version 0
        assert!(v.is_empty());
        // T1 commits at site 1.
        let mut t1 = c.begin_rw();
        t1.write(SiteId(1), obj(0), Value::from_u64(1)).unwrap();
        t1.commit().unwrap();
        // RO_x pins site 1 after T1 (sees it) and site 2 before T2.
        let mut ro_x = c.begin_ro(mode);
        let _ = ro_x.read(SiteId(1), obj(0)).unwrap();
        let _ = ro_x.read(SiteId(2), obj(0)).unwrap();
        // T2 commits at site 2.
        let mut t2 = c.begin_rw();
        t2.write(SiteId(2), obj(0), Value::from_u64(2)).unwrap();
        t2.commit().unwrap();
        // RO_y now reads site 2 (sees T2 in the broken mode).
        let _ = ro_y.read(SiteId(2), obj(0)).unwrap();
        ro_x.finish();
        ro_y.finish();
    }

    #[test]
    fn per_site_snapshots_anomaly_detected_by_oracle() {
        let c = Cluster::traced(2);
        crossing_script(&c, RoMode::PerSiteSnapshots);
        let h = c.trace_history().unwrap();
        let rep = mvsg::check_tn_order(&h);
        assert!(
            !rep.acyclic,
            "per-site snapshots must NOT be globally serializable; trace: {h}"
        );
        // And no version order can repair it — the anomaly is real.
        assert!(mvcc_model::mvsg::check_exhaustive(&h, 1_000_000)
            .unwrap()
            .is_none());
    }

    #[test]
    fn global_min_stays_serializable_under_same_script() {
        let c = Cluster::traced(2);
        crossing_script(&c, RoMode::GlobalMin);
        let h = c.trace_history().unwrap();
        let rep = mvsg::check_tn_order(&h);
        assert!(
            rep.acyclic,
            "GlobalMin must stay serializable: {:?}",
            rep.cycle
        );
    }

    #[test]
    fn message_counting_and_delay() {
        let c = Cluster::new(2);
        let before = c.messages();
        let mut t = c.begin_rw();
        t.write(SiteId(1), obj(0), Value::from_u64(1)).unwrap();
        t.commit().unwrap();
        // 1 write + 1 prepare + 1 commit = 3 messages
        assert_eq!(c.messages() - before, 3);
        let before = c.messages();
        let mut r = c.begin_ro(RoMode::GlobalMin);
        let _ = r.read(SiteId(1), obj(0)).unwrap();
        r.finish();
        // 2 VCstart (one per site) + 1 read
        assert_eq!(c.messages() - before, 3);
    }

    #[test]
    fn visibility_skew_tracks_lagging_site() {
        let c = Cluster::new(2);
        let fresh = c.visibility_skew();
        assert_eq!(fresh.skew, 0, "fresh cluster has no skew");
        assert_eq!(fresh.per_site.len(), 2);
        // Commit only through site 1: site 2's watermark stays at ZERO.
        let mut t = c.begin_rw();
        t.write(SiteId(1), obj(0), Value::from_u64(1)).unwrap();
        let fin = t.commit().unwrap();
        let skewed = c.visibility_skew();
        assert_eq!(skewed.skew, fin.time(), "site 2 lags by the full clock");
        let fields = skewed.fields();
        assert_eq!(
            fields,
            vec![
                ("site_vtnc_time_min", 0),
                ("site_vtnc_time_max", fin.time()),
                ("site_vtnc_skew", fin.time()),
            ]
        );
        // A distributed commit touching both sites closes the gap.
        let mut t2 = c.begin_rw();
        t2.write(SiteId(1), obj(1), Value::from_u64(2)).unwrap();
        t2.write(SiteId(2), obj(1), Value::from_u64(2)).unwrap();
        t2.commit().unwrap();
        assert_eq!(c.visibility_skew().skew, 0);
    }

    #[test]
    #[should_panic(expected = "site id 0 out of range")]
    fn site_zero_is_rejected() {
        let c = Cluster::new(2);
        let _ = c.site(SiteId(0));
    }

    #[test]
    fn lost_commit_message_resolved_from_decision_log() {
        // Every phase-2 decision message is lost: both participants stay
        // in doubt (visibility pinned), yet the commit is durable in the
        // decision log. The resolver finishes the transaction.
        let cfg = ClusterConfig::default()
            .with_trace()
            .with_fault(FaultConfig {
                msg_drop: 1.0,
                ..Default::default()
            });
        let c = Cluster::with_config(2, cfg);
        let mut t = c.begin_rw();
        t.write(SiteId(1), obj(0), Value::from_u64(7)).unwrap();
        t.write(SiteId(2), obj(0), Value::from_u64(8)).unwrap();
        let fin = t.commit().unwrap();
        assert_eq!(c.site(SiteId(1)).in_doubt_len(), 1);
        assert_eq!(c.site(SiteId(2)).in_doubt_len(), 1);
        // In doubt pins visibility at both sites.
        assert_eq!(c.site(SiteId(1)).vc().vtnc(), Gtn::ZERO);
        let stats = c.resolve_in_doubt(Duration::ZERO);
        assert_eq!(stats.resolved_commit, 2);
        assert_eq!(stats.resolved_abort, 0);
        for site in c.site_ids() {
            let s = c.site(site);
            assert_eq!(s.in_doubt_len(), 0);
            assert_eq!(s.vc().vtnc(), fin);
            s.vc().validate().unwrap();
        }
        let mut r = c.begin_ro(RoMode::GlobalMin);
        assert_eq!(r.read_u64(SiteId(1), obj(0)).unwrap(), Some(7));
        assert_eq!(r.read_u64(SiteId(2), obj(0)).unwrap(), Some(8));
        r.finish();
        let h = c.trace_history().unwrap();
        assert!(mvsg::check_tn_order(&h).acyclic);
    }

    #[test]
    fn duplicate_commit_deliveries_are_idempotent() {
        let cfg = ClusterConfig::default()
            .with_trace()
            .with_fault(FaultConfig {
                msg_duplicate: 1.0,
                ..Default::default()
            });
        let c = Cluster::with_config(2, cfg);
        let mut t = c.begin_rw();
        t.write(SiteId(1), obj(0), Value::from_u64(1)).unwrap();
        t.write(SiteId(2), obj(0), Value::from_u64(2)).unwrap();
        let fin = t.commit().unwrap();
        for site in c.site_ids() {
            let s = c.site(site);
            assert_eq!(s.vc().vtnc(), fin);
            // one completion per site despite two deliveries
            assert_eq!(s.metrics().snapshot().vc_complete_calls, 1);
            s.vc().validate().unwrap();
        }
        assert!(c.faults().injected(FaultPoint::MsgDuplicate) >= 2);
    }

    #[test]
    fn undecided_prepare_presumed_abort() {
        // A coordinator that died between phase 1 and logging its
        // decision: the participant's entry is undecided. Young entries
        // are left alone; past the threshold the resolver presumes abort.
        let c = Cluster::new(1);
        let s = c.site(SiteId(1));
        s.rw_write(999, obj(0), Value::from_u64(9)).unwrap();
        let _p = s.prepare(999, &[obj(0)], &[obj(0)]);
        let stats = c.resolve_in_doubt(Duration::from_secs(60));
        assert_eq!(stats.still_in_doubt, 1);
        let stats = c.resolve_in_doubt(Duration::ZERO);
        assert_eq!(stats.resolved_abort, 1);
        assert_eq!(s.in_doubt_len(), 0);
        // the presumed-aborted write never became visible
        let mut r = c.begin_ro(RoMode::GlobalMin);
        assert_eq!(r.read(SiteId(1), obj(0)).unwrap(), Value::empty());
        r.finish();
    }

    #[test]
    fn crash_and_recovery_restores_visibility() {
        let c = Cluster::traced(2);
        let mut t = c.begin_rw();
        t.write(SiteId(1), obj(0), Value::from_u64(1)).unwrap();
        t.write(SiteId(2), obj(0), Value::from_u64(2)).unwrap();
        let fin = t.commit().unwrap();
        c.crash_site(SiteId(2));
        let watermark = c.recover_site(SiteId(2));
        assert_eq!(watermark, fin, "watermark = largest committed version");
        assert_eq!(c.site(SiteId(2)).vc().vtnc(), fin);
        c.site(SiteId(2)).vc().validate().unwrap();
        // committed state survived; the cluster keeps working
        let mut r = c.begin_ro(RoMode::GlobalMin);
        assert_eq!(r.read_u64(SiteId(2), obj(0)).unwrap(), Some(2));
        r.finish();
        let mut t2 = c.begin_rw();
        t2.write(SiteId(2), obj(0), Value::from_u64(3)).unwrap();
        let f2 = t2.commit().unwrap();
        assert!(f2 > fin, "post-recovery numbers dominate the watermark");
        let h = c.trace_history().unwrap();
        assert!(mvsg::check_tn_order(&h).acyclic);
    }

    #[test]
    fn home_site_falls_back_to_global_min() {
        // Site 1 is ahead on an object the reader never touches; site 2
        // lags forever. The catch-up times out, the fallback adopts the
        // GlobalMin snapshot, and the prior read (version 0) revalidates.
        let cfg = ClusterConfig::default()
            .with_trace()
            .with_timeout(Duration::from_millis(10));
        let c = Cluster::with_config(2, cfg);
        let mut t = c.begin_rw();
        t.write(SiteId(1), obj(5), Value::from_u64(1)).unwrap();
        t.commit().unwrap();
        let mut r = c.begin_ro(RoMode::HomeSite);
        assert_eq!(r.read(SiteId(1), obj(0)).unwrap(), Value::empty());
        let sn = r.sn().unwrap();
        assert!(sn > Gtn::ZERO, "home snapshot is ahead of site 2");
        assert_eq!(r.read(SiteId(2), obj(0)).unwrap(), Value::empty());
        assert_eq!(r.sn().unwrap(), Gtn::ZERO, "fallback adopted GlobalMin");
        assert_eq!(c.ro_fallbacks(), 1);
        r.finish();
        let h = c.trace_history().unwrap();
        assert!(mvsg::check_tn_order(&h).acyclic);
    }

    #[test]
    fn spent_deadline_rolls_back_before_decision() {
        use mvcc_core::SimClock;
        let clock = SimClock::new();
        let cfg = ClusterConfig::default().with_clock(clock.clone());
        let c = Cluster::with_config(2, cfg);
        let opts = TxnOptions::default().with_deadline(Duration::from_millis(5));
        let mut t = c.begin_rw_with(&opts);
        t.write(SiteId(1), obj(0), Value::from_u64(1)).unwrap();
        clock.advance(Duration::from_millis(10));
        let err = t.commit().unwrap_err();
        assert_eq!(err, DbError::Aborted(AbortReason::DeadlineExceeded));
        // No decision was logged, nothing became visible, and the locks
        // are free again.
        assert_eq!(c.site(SiteId(1)).vc().vtnc(), Gtn::ZERO);
        assert_eq!(
            c.site(SiteId(1)).store().read_latest(obj(0)).1,
            Value::empty()
        );
        let mut t2 = c.begin_rw();
        t2.write(SiteId(1), obj(0), Value::from_u64(2)).unwrap();
        t2.commit().unwrap();
    }

    #[test]
    fn home_site_fallback_aborts_on_changed_read() {
        // Same shape, but the reader already observed a version above
        // GlobalMin: the fallback cannot revalidate and must abort.
        let cfg = ClusterConfig::default().with_timeout(Duration::from_millis(10));
        let c = Cluster::with_config(2, cfg);
        let mut t = c.begin_rw();
        t.write(SiteId(1), obj(0), Value::from_u64(1)).unwrap();
        t.commit().unwrap();
        let mut r = c.begin_ro(RoMode::HomeSite);
        assert_eq!(r.read_u64(SiteId(1), obj(0)).unwrap(), Some(1));
        let err = r.read(SiteId(2), obj(0)).unwrap_err();
        assert_eq!(err, DbError::Aborted(AbortReason::WaitTimeout));
        assert_eq!(c.ro_fallbacks(), 0);
    }
}
