//! Per-site distributed version control.
//!
//! The centralized module (Figure 1) registers a transaction when its
//! serial position is known and advances `vtnc` over completed prefixes.
//! Distributed, the subtlety is that a transaction's **final** global
//! number is only known at the end of two-phase commit (it must dominate
//! every participant's proposal), which can exceed its local *proposal*.
//! The site therefore keys its queue by proposal and publishes a final
//! number into `vtnc` only once the **barrier** — the smallest local
//! proposal still in doubt, or anything a future prepare could propose —
//! has moved past it. This is precisely the "care … to ensure
//! correctness" Section 6 alludes to: a site's `vtnc` never passes an
//! in-doubt transaction, so a read-only snapshot at `sn ≤ vtnc` can never
//! be invalidated by a later commit.
//!
//! Invariants (checked by [`DistVc::validate`]):
//!
//! 1. every version this site will ever create carries a final number
//!    `≥` its proposal;
//! 2. proposals are issued above the local Lamport time, and the local
//!    time absorbs every observed final — so future proposals exceed
//!    every published final;
//! 3. `vtnc` = the largest known final below the barrier.

use crate::gtn::Gtn;
use mvcc_core::clock::SharedClock;
use parking_lot::{Condvar, Mutex};
use std::collections::{BTreeMap, BTreeSet};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::OnceLock;
use std::time::Duration;

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Entry {
    /// Prepared (in doubt): locks held, pending versions staged.
    InDoubt,
    /// Committed with this final global number, awaiting the barrier.
    Final(Gtn),
}

struct Inner {
    /// Local Lamport time.
    time: u64,
    /// Queue keyed by local proposal.
    queue: BTreeMap<Gtn, Entry>,
    /// Committed finals that have cleared the queue but not the barrier.
    holdover: BTreeSet<Gtn>,
}

/// Distributed version-control module of one site.
pub struct DistVc {
    site: u16,
    inner: Mutex<Inner>,
    vtnc: AtomicU64,
    visible_cv: Condvar,
    visible_mu: Mutex<()>,
    /// Time source for [`Self::wait_visible`] deadlines. Unset falls back
    /// to the wall clock; a simulated cluster attaches its
    /// [`SimClock`](mvcc_core::SimClock) so waits replay byte-stable.
    clock: OnceLock<SharedClock>,
}

impl DistVc {
    /// Fresh module for `site`.
    pub fn new(site: u16) -> Self {
        DistVc {
            site,
            inner: Mutex::new(Inner {
                time: 0,
                queue: BTreeMap::new(),
                holdover: BTreeSet::new(),
            }),
            vtnc: AtomicU64::new(0),
            visible_cv: Condvar::new(),
            visible_mu: Mutex::new(()),
            clock: OnceLock::new(),
        }
    }

    /// Attach the site's time source (first attachment wins). Wait
    /// deadlines are measured against it, so a simulated clock makes
    /// every `wait_visible` decision a pure function of virtual time.
    pub fn attach_clock(&self, clock: SharedClock) {
        let _ = self.clock.set(clock);
    }

    /// `VCstart` for this site: the current visible bound, lock-free.
    pub fn start(&self) -> Gtn {
        Gtn(self.vtnc.load(Ordering::Acquire))
    }

    /// Prepare-time registration: issue a local proposal above the local
    /// Lamport time and enqueue the transaction as in-doubt.
    pub fn propose(&self) -> Gtn {
        let mut inner = self.inner.lock();
        inner.time += 1;
        let p = Gtn::new(inner.time, self.site);
        inner.queue.insert(p, Entry::InDoubt);
        p
    }

    /// Absorb an observed global number (Lamport receive rule).
    pub fn observe(&self, g: Gtn) {
        let mut inner = self.inner.lock();
        inner.time = inner.time.max(g.time());
    }

    /// Commit-time completion: the transaction proposed `p` here and
    /// finalized as `f` (`f ≥ p`). Advances `vtnc` as far as the barrier
    /// allows.
    pub fn complete(&self, p: Gtn, f: Gtn) {
        debug_assert!(f >= p, "final {f} below proposal {p}");
        let mut inner = self.inner.lock();
        inner.time = inner.time.max(f.time());
        let prev = inner.queue.insert(p, Entry::Final(f));
        debug_assert_eq!(prev, Some(Entry::InDoubt), "complete of unknown proposal");
        self.drain(&mut inner);
    }

    /// Abort-time discard of a proposal.
    pub fn discard(&self, p: Gtn) {
        let mut inner = self.inner.lock();
        inner.queue.remove(&p);
        self.drain(&mut inner);
    }

    fn drain(&self, inner: &mut Inner) {
        // Pop the completed prefix of the proposal queue into holdover.
        while let Some((&p, &entry)) = inner.queue.first_key_value() {
            match entry {
                Entry::InDoubt => break,
                Entry::Final(f) => {
                    inner.queue.remove(&p);
                    inner.holdover.insert(f);
                }
            }
        }
        // Barrier: nothing in doubt below the head proposal, and any
        // future prepare proposes above the current Lamport time.
        let barrier = match inner.queue.keys().next() {
            Some(&head) => head,
            None => Gtn::new(inner.time + 1, 0),
        };
        // Publish the largest final below the barrier.
        let mut new_vtnc = None;
        while let Some(&f) = inner.holdover.first() {
            if f < barrier {
                inner.holdover.remove(&f);
                new_vtnc = Some(f);
            } else {
                break;
            }
        }
        if let Some(f) = new_vtnc {
            let cur = self.vtnc.load(Ordering::Acquire);
            if f.encoded() > cur {
                self.vtnc.store(f.encoded(), Ordering::Release);
                let _waiters = self.visible_mu.lock();
                self.visible_cv.notify_all();
            }
        }
    }

    /// Rebuild the module after a site crash. The queue, holdover set and
    /// Lamport clock are volatile and already lost; `watermark` is the
    /// recovery point derived from durable state (the largest committed
    /// version number in the site's store). Visibility never moves
    /// backwards: pre-crash snapshots taken at the old `vtnc` stay valid
    /// because committed versions survive the crash.
    pub fn resume(&self, watermark: Gtn) {
        let mut inner = self.inner.lock();
        inner.queue.clear();
        inner.holdover.clear();
        // The clock must dominate every number this site ever exposed.
        inner.time = inner.time.max(watermark.time());
        let cur = self.vtnc.load(Ordering::Acquire);
        if watermark.encoded() > cur {
            self.vtnc.store(watermark.encoded(), Ordering::Release);
            let _waiters = self.visible_mu.lock();
            self.visible_cv.notify_all();
        }
    }

    /// Current visible bound.
    pub fn vtnc(&self) -> Gtn {
        Gtn(self.vtnc.load(Ordering::Acquire))
    }

    /// Block until `vtnc ≥ g` (used by lazily-contacted sites in a
    /// distributed read-only transaction). `None` on timeout.
    ///
    /// Gtn order is encoded-u64 order, so the site shares the core
    /// module's wait helper verbatim: the deadline comes from the
    /// attached clock, never from wall time directly.
    pub fn wait_visible(&self, g: Gtn, timeout: Duration) -> Option<Gtn> {
        mvcc_core::vc::wait_visible_with(
            &self.vtnc,
            &self.visible_mu,
            &self.visible_cv,
            self.clock.get(),
            g.encoded(),
            timeout,
        )
        .map(Gtn)
    }

    /// Number of registered (in-doubt or pre-barrier) transactions.
    pub fn queue_len(&self) -> usize {
        let inner = self.inner.lock();
        inner.queue.len() + inner.holdover.len()
    }

    /// Check the module's invariants.
    pub fn validate(&self) -> Result<(), String> {
        let inner = self.inner.lock();
        let vtnc = Gtn(self.vtnc.load(Ordering::Acquire));
        if let Some(&head) = inner.queue.keys().next() {
            if head <= vtnc {
                return Err(format!("queued proposal {head} <= vtnc {vtnc}"));
            }
        }
        for &f in &inner.holdover {
            if f <= vtnc {
                return Err(format!("holdover final {f} <= vtnc {vtnc}"));
            }
        }
        if vtnc.time() > inner.time {
            return Err(format!(
                "vtnc time {} beyond clock {}",
                vtnc.time(),
                inner.time
            ));
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fresh_module() {
        let vc = DistVc::new(1);
        assert_eq!(vc.start(), Gtn::ZERO);
        vc.validate().unwrap();
    }

    #[test]
    fn local_only_lifecycle() {
        let vc = DistVc::new(1);
        let p = vc.propose();
        assert_eq!(vc.start(), Gtn::ZERO); // in doubt
        vc.complete(p, p); // final == proposal for single-site txns
        assert_eq!(vc.start(), p);
        vc.validate().unwrap();
    }

    #[test]
    fn boosted_final_held_until_barrier() {
        // T1 proposes p1 then finalizes far above (another site boosted
        // it). A later local proposal p2 < f1 is still in doubt: vtnc
        // must NOT advance to f1 until p2 resolves.
        let vc = DistVc::new(1);
        let p1 = vc.propose(); // time 1
        let p2 = vc.propose(); // time 2
        let f1 = Gtn::new(10, 2); // boosted by site 2
        vc.complete(p1, f1);
        // barrier is p2 (time 2) < f1 → f1 not visible yet
        assert_eq!(vc.start(), Gtn::ZERO);
        vc.validate().unwrap();
        // p2 commits with final f2 ≥ observed time ... say its own p2
        vc.complete(p2, p2);
        // now both drain; vtnc = max final below new barrier = f1
        assert_eq!(vc.start(), f1);
        vc.validate().unwrap();
    }

    #[test]
    fn discard_of_blocker_releases() {
        let vc = DistVc::new(1);
        let p1 = vc.propose();
        let p2 = vc.propose();
        vc.complete(p2, p2);
        assert_eq!(vc.start(), Gtn::ZERO);
        vc.discard(p1);
        assert_eq!(vc.start(), p2);
        vc.validate().unwrap();
    }

    #[test]
    fn observe_advances_clock_above_finals() {
        let vc = DistVc::new(1);
        vc.observe(Gtn::new(100, 3));
        let p = vc.propose();
        assert!(p.time() > 100, "future proposals dominate observed finals");
    }

    #[test]
    fn future_proposals_stay_above_vtnc() {
        let vc = DistVc::new(1);
        for _ in 0..10 {
            let p = vc.propose();
            let f = Gtn::new(p.time() + 5, 9); // boosted finals
            vc.complete(p, f);
            vc.validate().unwrap();
            let p_next = vc.propose();
            assert!(
                p_next > vc.vtnc(),
                "proposal {p_next} must exceed vtnc {}",
                vc.vtnc()
            );
            vc.discard(p_next);
            vc.validate().unwrap();
        }
    }

    #[test]
    fn wait_visible_wakes() {
        use std::sync::Arc;
        let vc = Arc::new(DistVc::new(1));
        let p = vc.propose();
        let vc2 = Arc::clone(&vc);
        let h = std::thread::spawn(move || vc2.wait_visible(p, Duration::from_secs(5)));
        std::thread::sleep(Duration::from_millis(20));
        vc.complete(p, p);
        assert_eq!(h.join().unwrap(), Some(p));
    }

    #[test]
    fn concurrent_stress_keeps_invariants() {
        use std::sync::Arc;
        let vc = Arc::new(DistVc::new(3));
        let mut hs = Vec::new();
        for t in 0..6u64 {
            let vc = Arc::clone(&vc);
            hs.push(std::thread::spawn(move || {
                for i in 0..300u64 {
                    let p = vc.propose();
                    if (t + i) % 5 == 0 {
                        vc.discard(p);
                    } else {
                        // final boosted by a pseudo-remote site
                        let f = Gtn::new(p.time() + (i % 3), (t % 4) as u16);
                        let f = f.max(p);
                        vc.complete(p, f);
                    }
                    vc.validate().unwrap();
                }
            }));
        }
        for h in hs {
            h.join().unwrap();
        }
        assert_eq!(vc.queue_len(), 0);
        vc.validate().unwrap();
    }
}
