//! A database site: multiversion storage + lock manager + distributed
//! version control. Methods on [`Site`] are the "RPC handlers" of the
//! simulation; the [`crate::cluster::Cluster`] counts each invocation as
//! a network message.

use crate::gtn::Gtn;
use crate::vc::DistVc;
use mvcc_cc::{LockError, LockManager, LockMode};
use mvcc_core::clock::{real_clock, SharedClock};
use mvcc_core::{AbortReason, DbError, Metrics};
use mvcc_model::{ObjectId, TxnId};
use mvcc_storage::{MvStore, PendingVersion, StoreStats, Value};
use parking_lot::Mutex;
use std::collections::HashMap;
use std::sync::atomic::Ordering;
use std::time::{Duration, Instant};

/// Site identifier (also the low bits of every [`Gtn`] it proposes).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct SiteId(pub u16);

/// A participant's record of a prepared (in-doubt) transaction: enough
/// state to finish phase 2 locally if the coordinator's decision message
/// never arrives and the transaction must be resolved by peer query or
/// presumed abort.
struct Prepared {
    proposal: Gtn,
    locked: Vec<ObjectId>,
    written: Vec<ObjectId>,
    since: Instant,
}

/// One database site.
pub struct Site {
    id: SiteId,
    store: MvStore,
    locks: LockManager,
    vc: DistVc,
    metrics: Metrics,
    lock_timeout: Duration,
    /// Time source for in-doubt age stamps (simulated under the DST
    /// harness, real otherwise).
    clock: SharedClock,
    /// Prepared-but-undecided transactions, keyed by coordinator token.
    /// Doubles as the phase-2 idempotence filter: the first commit or
    /// rollback delivery removes the entry; duplicates are no-ops.
    in_doubt: Mutex<HashMap<u64, Prepared>>,
}

impl Site {
    /// Fresh site with default timeouts.
    pub fn new(id: SiteId) -> Self {
        Self::with_lock_timeout(id, Duration::from_secs(2))
    }

    /// Fresh site with an explicit lock-wait timeout.
    pub fn with_lock_timeout(id: SiteId, lock_timeout: Duration) -> Self {
        Self::with_clock(id, lock_timeout, real_clock())
    }

    /// Fresh site with an explicit lock-wait timeout and time source.
    pub fn with_clock(id: SiteId, lock_timeout: Duration, clock: SharedClock) -> Self {
        let vc = DistVc::new(id.0);
        // Visibility waits measure their deadline against the site clock,
        // so a simulated cluster replays them deterministically.
        vc.attach_clock(clock.clone());
        Site {
            id,
            store: MvStore::new(),
            locks: LockManager::new(),
            vc,
            metrics: Metrics::new(),
            lock_timeout,
            clock,
            in_doubt: Mutex::new(HashMap::new()),
        }
    }

    /// This site's id.
    pub fn id(&self) -> SiteId {
        self.id
    }

    /// The site's version-control module.
    pub fn vc(&self) -> &DistVc {
        &self.vc
    }

    /// The site's storage (tests/experiments).
    pub fn store(&self) -> &MvStore {
        &self.store
    }

    /// The site's counters.
    pub fn metrics(&self) -> &Metrics {
        &self.metrics
    }

    /// Load an initial value.
    pub fn seed(&self, obj: ObjectId, value: Value) {
        self.store.seed(obj, value);
    }

    /// Storage statistics.
    pub fn store_stats(&self) -> StoreStats {
        self.store.stats()
    }

    // ---- read-write transaction handlers (per-site strict 2PL) ----------

    /// `read(x)` under a shared lock; own pending writes shadow.
    pub fn rw_read(&self, token: u64, obj: ObjectId) -> Result<(u64, Value), DbError> {
        self.lock(token, obj, LockMode::Shared)?;
        Ok(self.store.with(obj, |c| {
            if let Some(p) = c.pending_by(TxnId(token)) {
                return (u64::MAX, p.value.clone());
            }
            let v = c.at(u64::MAX).expect("chain never empty");
            (v.number, v.value.clone())
        }))
    }

    /// `write(x)` under an exclusive lock; installs a φ pending version.
    pub fn rw_write(&self, token: u64, obj: ObjectId, value: Value) -> Result<(), DbError> {
        self.lock(token, obj, LockMode::Exclusive)?;
        self.store.with(obj, |c| {
            c.install_pending(PendingVersion::phi(TxnId(token), value));
        });
        Ok(())
    }

    /// Two-phase commit, phase 1: this participant is past its lock
    /// point; register a proposal with distributed version control and
    /// record the in-doubt state needed to resolve the transaction if
    /// the decision message never arrives.
    pub fn prepare(&self, token: u64, locked: &[ObjectId], written: &[ObjectId]) -> Gtn {
        self.metrics
            .vc_register_calls
            .fetch_add(1, Ordering::Relaxed);
        let p = self.vc.propose();
        self.in_doubt.lock().insert(
            token,
            Prepared {
                proposal: p,
                locked: locked.to_vec(),
                written: written.to_vec(),
                since: self.clock.now(),
            },
        );
        p
    }

    /// Two-phase commit, phase 2: stamp pendings with the final global
    /// number, release locks, complete version control. **Idempotent**:
    /// only the delivery that removes the in-doubt record applies; a
    /// duplicated decision message (or one arriving after peer-query
    /// resolution) is a no-op.
    pub fn commit(
        &self,
        token: u64,
        proposal: Gtn,
        fin: Gtn,
        locked: &[ObjectId],
        written: &[ObjectId],
    ) -> Result<(), DbError> {
        if self.in_doubt.lock().remove(&token).is_none() {
            return Ok(());
        }
        self.apply_commit(token, proposal, fin, locked, written)
    }

    fn apply_commit(
        &self,
        token: u64,
        proposal: Gtn,
        fin: Gtn,
        locked: &[ObjectId],
        written: &[ObjectId],
    ) -> Result<(), DbError> {
        for &obj in written {
            let r = self.store.with(obj, |c| {
                c.promote_pending(TxnId(token), Some(fin.encoded()))
            });
            if let Err(e) = r {
                return Err(DbError::Internal(format!("site {} commit: {e}", self.id.0)));
            }
            self.store.notify(obj);
        }
        self.locks.release_all(token, locked.iter());
        self.vc.complete(proposal, fin);
        self.metrics
            .vc_complete_calls
            .fetch_add(1, Ordering::Relaxed);
        Ok(())
    }

    /// Abort/rollback at this participant. If the transaction was
    /// prepared here, its in-doubt record supplies the proposal to
    /// discard (and the record's removal makes duplicates no-ops).
    pub fn rollback(
        &self,
        token: u64,
        proposal: Option<Gtn>,
        locked: &[ObjectId],
        written: &[ObjectId],
    ) {
        let p = self
            .in_doubt
            .lock()
            .remove(&token)
            .map(|e| e.proposal)
            .or(proposal);
        self.apply_abort(token, p, locked, written);
    }

    fn apply_abort(
        &self,
        token: u64,
        proposal: Option<Gtn>,
        locked: &[ObjectId],
        written: &[ObjectId],
    ) {
        for &obj in written {
            self.store.with(obj, |c| {
                c.discard_pending(TxnId(token));
            });
            self.store.notify(obj);
        }
        self.locks.release_all(token, locked.iter());
        if let Some(p) = proposal {
            self.vc.discard(p);
            self.metrics
                .vc_discard_calls
                .fetch_add(1, Ordering::Relaxed);
        }
    }

    // ---- in-doubt resolution and crash recovery ---------------------------

    /// Tokens of prepared transactions still awaiting a decision, with
    /// how long each has been in doubt.
    pub fn in_doubt_tokens(&self) -> Vec<(u64, Duration)> {
        let now = self.clock.now();
        self.in_doubt
            .lock()
            .iter()
            .map(|(&t, e)| (t, now.saturating_duration_since(e.since)))
            .collect()
    }

    /// Number of in-doubt transactions.
    pub fn in_doubt_len(&self) -> usize {
        self.in_doubt.lock().len()
    }

    /// Resolve an in-doubt transaction as committed with final number
    /// `fin` (learned by querying the coordinator's decision log).
    /// Returns `false` if the token is no longer in doubt.
    pub fn resolve_commit(&self, token: u64, fin: Gtn) -> Result<bool, DbError> {
        let Some(e) = self.in_doubt.lock().remove(&token) else {
            return Ok(false);
        };
        self.apply_commit(token, e.proposal, fin, &e.locked, &e.written)?;
        Ok(true)
    }

    /// Resolve an in-doubt transaction as aborted (decision log says
    /// abort, or presumed abort after a timeout — safe because the
    /// coordinator logs its decision *before* sending any phase-2
    /// message, so an undecided transaction can never have committed
    /// anywhere). Returns `false` if the token is no longer in doubt.
    pub fn resolve_abort(&self, token: u64) -> bool {
        let Some(e) = self.in_doubt.lock().remove(&token) else {
            return false;
        };
        self.apply_abort(token, Some(e.proposal), &e.locked, &e.written);
        true
    }

    /// Simulate a site crash: every piece of volatile state vanishes —
    /// locks, in-doubt 2PC records, pending versions, and the
    /// version-control queue. Committed versions are durable and survive.
    ///
    /// **Limitation (documented in DESIGN.md):** prepared state is
    /// volatile in this simulation (no write-ahead log), so a crash is
    /// only faithful at points where no 2PC involving this site is in
    /// flight; a coordinator's later commit for a crashed participant is
    /// silently ignored by the idempotence filter.
    pub fn crash(&self) {
        self.in_doubt.lock().clear();
        self.locks.clear_all();
        for obj in self.store.objects() {
            self.store.with(obj, |c| {
                let writers: Vec<TxnId> = c.pending().iter().map(|p| p.writer).collect();
                for w in writers {
                    c.discard_pending(w);
                }
            });
            self.store.notify(obj);
        }
    }

    /// Recover after a [`crash`](Self::crash): rebuild the distributed
    /// version-control watermark from durable state — the largest
    /// committed version number in the store. Returns the watermark.
    pub fn recover(&self) -> Gtn {
        let watermark = self
            .store
            .objects()
            .into_iter()
            .map(|o| self.store.with(o, |c| c.latest().number))
            .max()
            .unwrap_or(0);
        let watermark = Gtn(watermark);
        self.vc.resume(watermark);
        watermark
    }

    // ---- read-only transaction handlers ----------------------------------

    /// `VCstart` at this site.
    pub fn ro_start(&self) -> Gtn {
        self.metrics.vc_start_calls.fetch_add(1, Ordering::Relaxed);
        self.metrics.ro_sync_actions.fetch_add(1, Ordering::Relaxed);
        self.vc.start()
    }

    /// Snapshot read at a global start number. Never blocks.
    pub fn ro_read(&self, obj: ObjectId, sn: Gtn) -> Result<(u64, Value), DbError> {
        self.metrics.ro_reads.fetch_add(1, Ordering::Relaxed);
        self.store
            .read_at(obj, sn.encoded())
            .ok_or(DbError::VersionPruned {
                obj,
                sn: sn.encoded(),
            })
    }

    /// Wait until this site's visibility covers `sn` (lazy contact in a
    /// distributed read-only transaction).
    pub fn ro_catch_up(&self, sn: Gtn, timeout: Duration) -> Result<Gtn, DbError> {
        if self.vc.vtnc() >= sn {
            return Ok(self.vc.vtnc());
        }
        self.metrics.ro_blocks.fetch_add(1, Ordering::Relaxed);
        self.vc
            .wait_visible(sn, timeout)
            .ok_or(DbError::Aborted(AbortReason::WaitTimeout))
    }

    fn lock(&self, token: u64, obj: ObjectId, mode: LockMode) -> Result<(), DbError> {
        self.metrics.rw_sync_actions.fetch_add(1, Ordering::Relaxed);
        match self
            .locks
            .acquire(token, obj, mode, self.lock_timeout, true)
        {
            Ok(a) => {
                if a.waited {
                    self.metrics.rw_blocks.fetch_add(1, Ordering::Relaxed);
                }
                Ok(())
            }
            Err(LockError::Deadlock) => Err(DbError::Aborted(AbortReason::Deadlock)),
            // Distributed deadlocks span sites and are invisible to a
            // single site's waits-for graph; the timeout breaks them.
            Err(LockError::Timeout) => Err(DbError::Aborted(AbortReason::WaitTimeout)),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn obj(n: u64) -> ObjectId {
        ObjectId(n)
    }

    #[test]
    fn single_site_rw_lifecycle() {
        let s = Site::new(SiteId(1));
        s.rw_write(7, obj(0), Value::from_u64(5)).unwrap();
        let p = s.prepare(7, &[obj(0)], &[obj(0)]);
        s.commit(7, p, p, &[obj(0)], &[obj(0)]).unwrap();
        assert_eq!(s.vc().vtnc(), p);
        assert_eq!(s.in_doubt_len(), 0);
        let (n, v) = s.ro_read(obj(0), s.ro_start()).unwrap();
        assert_eq!(n, p.encoded());
        assert_eq!(v.as_u64(), Some(5));
    }

    #[test]
    fn rollback_leaves_clean_state() {
        let s = Site::new(SiteId(1));
        s.rw_write(7, obj(0), Value::from_u64(5)).unwrap();
        let p = s.prepare(7, &[obj(0)], &[obj(0)]);
        s.rollback(7, Some(p), &[obj(0)], &[obj(0)]);
        assert_eq!(s.ro_read(obj(0), s.ro_start()).unwrap().0, 0);
        // locks free again
        s.rw_write(8, obj(0), Value::from_u64(6)).unwrap();
        s.rollback(8, None, &[obj(0)], &[obj(0)]);
    }

    #[test]
    fn ro_read_ignores_in_doubt_commit() {
        // Version staged and even promoted with a final number, but the
        // site's vtnc has not advanced past an older in-doubt proposal:
        // the RO snapshot (taken at vtnc) must not include it.
        let s = Site::new(SiteId(1));
        let _blocker = s.prepare(98, &[], &[]); // older in-doubt proposal
        s.rw_write(99, obj(0), Value::from_u64(9)).unwrap();
        let p = s.prepare(99, &[obj(0)], &[obj(0)]);
        s.commit(99, p, p, &[obj(0)], &[obj(0)]).unwrap();
        let sn = s.ro_start();
        assert_eq!(sn, Gtn::ZERO, "in-doubt blocker must pin visibility");
        assert_eq!(s.ro_read(obj(0), sn).unwrap().0, 0);
    }

    #[test]
    fn catch_up_immediate_when_visible() {
        let s = Site::new(SiteId(1));
        let p = s.prepare(1, &[], &[]);
        s.commit(1, p, p, &[], &[]).unwrap();
        assert_eq!(s.ro_catch_up(p, Duration::from_millis(5)).unwrap(), p);
    }

    #[test]
    fn duplicate_commit_delivery_is_a_no_op() {
        let s = Site::new(SiteId(1));
        s.rw_write(7, obj(0), Value::from_u64(5)).unwrap();
        let p = s.prepare(7, &[obj(0)], &[obj(0)]);
        s.commit(7, p, p, &[obj(0)], &[obj(0)]).unwrap();
        // the duplicate must not re-promote or double-complete
        s.commit(7, p, p, &[obj(0)], &[obj(0)]).unwrap();
        assert_eq!(s.vc().vtnc(), p);
        assert_eq!(s.metrics().vc_complete_calls.load(Ordering::Relaxed), 1);
    }

    #[test]
    fn resolve_commit_finishes_in_doubt_txn() {
        let s = Site::new(SiteId(1));
        s.rw_write(7, obj(0), Value::from_u64(5)).unwrap();
        let p = s.prepare(7, &[obj(0)], &[obj(0)]);
        // decision message lost; resolver learns Commit(fin) from the log
        assert!(s.resolve_commit(7, p).unwrap());
        assert_eq!(s.vc().vtnc(), p);
        assert_eq!(s.ro_read(obj(0), s.ro_start()).unwrap().1.as_u64(), Some(5));
        // a straggling duplicate decision is ignored
        assert!(!s.resolve_commit(7, p).unwrap());
    }

    #[test]
    fn resolve_abort_presumes_abort_for_undecided() {
        let s = Site::new(SiteId(1));
        s.rw_write(7, obj(0), Value::from_u64(5)).unwrap();
        let _p = s.prepare(7, &[obj(0)], &[obj(0)]);
        assert_eq!(s.in_doubt_len(), 1);
        assert!(s.resolve_abort(7));
        assert_eq!(s.in_doubt_len(), 0);
        // pending discarded, visibility unpinned, locks released
        assert_eq!(s.ro_read(obj(0), s.ro_start()).unwrap().0, 0);
        s.rw_write(8, obj(0), Value::from_u64(6)).unwrap();
        s.rollback(8, None, &[obj(0)], &[obj(0)]);
    }

    #[test]
    fn crash_recover_rebuilds_watermark_from_store() {
        let s = Site::new(SiteId(1));
        s.rw_write(1, obj(0), Value::from_u64(5)).unwrap();
        let p1 = s.prepare(1, &[obj(0)], &[obj(0)]);
        s.commit(1, p1, p1, &[obj(0)], &[obj(0)]).unwrap();
        // a second txn crashes the site while prepared
        s.rw_write(2, obj(1), Value::from_u64(9)).unwrap();
        let _p2 = s.prepare(2, &[obj(1)], &[obj(1)]);
        s.crash();
        assert_eq!(s.in_doubt_len(), 0);
        let watermark = s.recover();
        assert_eq!(watermark, p1, "watermark = largest committed version");
        assert_eq!(s.vc().vtnc(), p1);
        s.vc().validate().unwrap();
        // the crashed txn's pending write is gone; its lock is free
        assert_eq!(s.ro_read(obj(1), s.ro_start()).unwrap().0, 0);
        s.rw_write(3, obj(1), Value::from_u64(7)).unwrap();
        let p3 = s.prepare(3, &[obj(1)], &[obj(1)]);
        s.commit(3, p3, p3, &[obj(1)], &[obj(1)]).unwrap();
        assert!(
            s.vc().vtnc() > watermark,
            "visibility advances past recovery"
        );
    }
}
