//! A database site: multiversion storage + lock manager + distributed
//! version control. Methods on [`Site`] are the "RPC handlers" of the
//! simulation; the [`crate::cluster::Cluster`] counts each invocation as
//! a network message.

use crate::gtn::Gtn;
use crate::vc::DistVc;
use mvcc_cc::{LockError, LockManager, LockMode};
use mvcc_core::{AbortReason, DbError, Metrics};
use mvcc_model::{ObjectId, TxnId};
use mvcc_storage::{MvStore, PendingVersion, StoreStats, Value};
use std::sync::atomic::Ordering;
use std::time::Duration;

/// Site identifier (also the low bits of every [`Gtn`] it proposes).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct SiteId(pub u16);

/// One database site.
pub struct Site {
    id: SiteId,
    store: MvStore,
    locks: LockManager,
    vc: DistVc,
    metrics: Metrics,
    lock_timeout: Duration,
}

impl Site {
    /// Fresh site.
    pub fn new(id: SiteId) -> Self {
        Site {
            id,
            store: MvStore::new(),
            locks: LockManager::new(),
            vc: DistVc::new(id.0),
            metrics: Metrics::new(),
            lock_timeout: Duration::from_secs(2),
        }
    }

    /// This site's id.
    pub fn id(&self) -> SiteId {
        self.id
    }

    /// The site's version-control module.
    pub fn vc(&self) -> &DistVc {
        &self.vc
    }

    /// The site's storage (tests/experiments).
    pub fn store(&self) -> &MvStore {
        &self.store
    }

    /// The site's counters.
    pub fn metrics(&self) -> &Metrics {
        &self.metrics
    }

    /// Load an initial value.
    pub fn seed(&self, obj: ObjectId, value: Value) {
        self.store.seed(obj, value);
    }

    /// Storage statistics.
    pub fn store_stats(&self) -> StoreStats {
        self.store.stats()
    }

    // ---- read-write transaction handlers (per-site strict 2PL) ----------

    /// `read(x)` under a shared lock; own pending writes shadow.
    pub fn rw_read(&self, token: u64, obj: ObjectId) -> Result<(u64, Value), DbError> {
        self.lock(token, obj, LockMode::Shared)?;
        Ok(self.store.with(obj, |c| {
            if let Some(p) = c.pending_by(TxnId(token)) {
                return (u64::MAX, p.value.clone());
            }
            let v = c.at(u64::MAX).expect("chain never empty");
            (v.number, v.value.clone())
        }))
    }

    /// `write(x)` under an exclusive lock; installs a φ pending version.
    pub fn rw_write(&self, token: u64, obj: ObjectId, value: Value) -> Result<(), DbError> {
        self.lock(token, obj, LockMode::Exclusive)?;
        self.store.with(obj, |c| {
            c.install_pending(PendingVersion::phi(TxnId(token), value));
        });
        Ok(())
    }

    /// Two-phase commit, phase 1: this participant is past its lock
    /// point; register a proposal with distributed version control.
    pub fn prepare(&self, _token: u64) -> Gtn {
        self.metrics.vc_register_calls.fetch_add(1, Ordering::Relaxed);
        self.vc.propose()
    }

    /// Two-phase commit, phase 2: stamp pendings with the final global
    /// number, release locks, complete version control.
    pub fn commit(
        &self,
        token: u64,
        proposal: Gtn,
        fin: Gtn,
        locked: &[ObjectId],
        written: &[ObjectId],
    ) -> Result<(), DbError> {
        for &obj in written {
            let r = self
                .store
                .with(obj, |c| c.promote_pending(TxnId(token), Some(fin.encoded())));
            if let Err(e) = r {
                return Err(DbError::Internal(format!("site {} commit: {e}", self.id.0)));
            }
            self.store.notify(obj);
        }
        self.locks.release_all(token, locked.iter());
        self.vc.complete(proposal, fin);
        self.metrics.vc_complete_calls.fetch_add(1, Ordering::Relaxed);
        Ok(())
    }

    /// Abort/rollback at this participant.
    pub fn rollback(
        &self,
        token: u64,
        proposal: Option<Gtn>,
        locked: &[ObjectId],
        written: &[ObjectId],
    ) {
        for &obj in written {
            self.store.with(obj, |c| {
                c.discard_pending(TxnId(token));
            });
            self.store.notify(obj);
        }
        self.locks.release_all(token, locked.iter());
        if let Some(p) = proposal {
            self.vc.discard(p);
            self.metrics.vc_discard_calls.fetch_add(1, Ordering::Relaxed);
        }
    }

    // ---- read-only transaction handlers ----------------------------------

    /// `VCstart` at this site.
    pub fn ro_start(&self) -> Gtn {
        self.metrics.vc_start_calls.fetch_add(1, Ordering::Relaxed);
        self.metrics.ro_sync_actions.fetch_add(1, Ordering::Relaxed);
        self.vc.start()
    }

    /// Snapshot read at a global start number. Never blocks.
    pub fn ro_read(&self, obj: ObjectId, sn: Gtn) -> Result<(u64, Value), DbError> {
        self.metrics.ro_reads.fetch_add(1, Ordering::Relaxed);
        self.store
            .read_at(obj, sn.encoded())
            .ok_or(DbError::VersionPruned {
                obj,
                sn: sn.encoded(),
            })
    }

    /// Wait until this site's visibility covers `sn` (lazy contact in a
    /// distributed read-only transaction).
    pub fn ro_catch_up(&self, sn: Gtn, timeout: Duration) -> Result<Gtn, DbError> {
        if self.vc.vtnc() >= sn {
            return Ok(self.vc.vtnc());
        }
        self.metrics.ro_blocks.fetch_add(1, Ordering::Relaxed);
        self.vc
            .wait_visible(sn, timeout)
            .ok_or(DbError::Aborted(AbortReason::WaitTimeout))
    }

    fn lock(&self, token: u64, obj: ObjectId, mode: LockMode) -> Result<(), DbError> {
        self.metrics.rw_sync_actions.fetch_add(1, Ordering::Relaxed);
        match self.locks.acquire(token, obj, mode, self.lock_timeout, true) {
            Ok(a) => {
                if a.waited {
                    self.metrics.rw_blocks.fetch_add(1, Ordering::Relaxed);
                }
                Ok(())
            }
            Err(LockError::Deadlock) => Err(DbError::Aborted(AbortReason::Deadlock)),
            // Distributed deadlocks span sites and are invisible to a
            // single site's waits-for graph; the timeout breaks them.
            Err(LockError::Timeout) => Err(DbError::Aborted(AbortReason::WaitTimeout)),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn obj(n: u64) -> ObjectId {
        ObjectId(n)
    }

    #[test]
    fn single_site_rw_lifecycle() {
        let s = Site::new(SiteId(1));
        s.rw_write(7, obj(0), Value::from_u64(5)).unwrap();
        let p = s.prepare(7);
        s.commit(7, p, p, &[obj(0)], &[obj(0)]).unwrap();
        assert_eq!(s.vc().vtnc(), p);
        let (n, v) = s.ro_read(obj(0), s.ro_start()).unwrap();
        assert_eq!(n, p.encoded());
        assert_eq!(v.as_u64(), Some(5));
    }

    #[test]
    fn rollback_leaves_clean_state() {
        let s = Site::new(SiteId(1));
        s.rw_write(7, obj(0), Value::from_u64(5)).unwrap();
        let p = s.prepare(7);
        s.rollback(7, Some(p), &[obj(0)], &[obj(0)]);
        assert_eq!(s.ro_read(obj(0), s.ro_start()).unwrap().0, 0);
        // locks free again
        s.rw_write(8, obj(0), Value::from_u64(6)).unwrap();
        s.rollback(8, None, &[obj(0)], &[obj(0)]);
    }

    #[test]
    fn ro_read_ignores_in_doubt_commit() {
        // Version staged and even promoted with a final number, but the
        // site's vtnc has not advanced past an older in-doubt proposal:
        // the RO snapshot (taken at vtnc) must not include it.
        let s = Site::new(SiteId(1));
        let _blocker = s.prepare(98); // older in-doubt proposal
        s.rw_write(99, obj(0), Value::from_u64(9)).unwrap();
        let p = s.prepare(99);
        s.commit(99, p, p, &[obj(0)], &[obj(0)]).unwrap();
        let sn = s.ro_start();
        assert_eq!(sn, Gtn::ZERO, "in-doubt blocker must pin visibility");
        assert_eq!(s.ro_read(obj(0), sn).unwrap().0, 0);
    }

    #[test]
    fn catch_up_immediate_when_visible() {
        let s = Site::new(SiteId(1));
        let p = s.prepare(1);
        s.commit(1, p, p, &[], &[]).unwrap();
        assert_eq!(s.ro_catch_up(p, Duration::from_millis(5)).unwrap(), p);
    }
}
