//! Distributed version control (paper Section 6 and companion report \[3\]).
//!
//! "Since each database site in a distributed environment maintains its
//! own counters (`tnc` and `vtnc`) and its own queue (`VCQueue`), care
//! must be taken to ensure correctness. However, once we ensure that
//! there is only one start number associated with a read-only transaction
//! and only one transaction number for every read-write transaction, the
//! extension of centralized version control to a distributed one is quite
//! straightforward."
//!
//! This crate realizes that sketch over an in-process multi-site
//! simulation (report \[3\] is unavailable; DESIGN.md records the
//! substitution):
//!
//! * [`gtn`] — **global transaction numbers**: Lamport `(time, site)`
//!   pairs encoded into a `u64`, so version numbers remain ordinary
//!   storage version numbers and the oracle's tn-order MVSG applies
//!   globally. One number per distributed read-write transaction.
//! * [`vc`] — the per-site distributed version-control module: proposals
//!   registered at **prepare** time, finals at commit, and a site `vtnc`
//!   that never passes an in-doubt transaction (the "care" the paper
//!   mentions).
//! * [`site`] — a database site: storage + locks + distributed VC.
//! * [`cluster`] — the client surface: distributed read-write
//!   transactions under two-phase commit with per-site strict 2PL, and
//!   distributed read-only transactions with a **single global start
//!   number** (one `VCstart` per site — no a-priori site list, no
//!   completed-transaction-list construction as required by \[8\]).
//! * A deliberately broken [`cluster::RoMode::PerSiteSnapshots`] mode
//!   reproduces the anomaly of the distributed MV2PL of \[8\]: each
//!   read-only transaction sees *a* consistent snapshot per site, but
//!   the set of read-only transactions is not globally serializable —
//!   experiment E10 shows the oracle catching the cycle.

#![warn(missing_docs)]
#![deny(unsafe_code)]

pub mod cluster;
pub mod gtn;
pub mod site;
pub mod vc;

pub use cluster::{Cluster, ClusterConfig, DistRoTxn, DistRwTxn, InDoubtStats, RoMode, SiteSkew};
pub use gtn::Gtn;
pub use site::{Site, SiteId};
pub use vc::DistVc;
