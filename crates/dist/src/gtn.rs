//! Global transaction numbers: Lamport `(time, site)` pairs in a `u64`.
//!
//! The paper requires "only one transaction number for every read-write
//! transaction" across all sites, totally ordered and consistent with the
//! serialization order. Lamport pairs give exactly that: `time` in the
//! high bits (so the clock dominates), the site id in the low bits (so
//! numbers from different sites never collide).

/// Bits reserved for the site id.
pub const SITE_BITS: u32 = 16;

/// A global transaction number.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Gtn(pub u64);

impl Gtn {
    /// Compose from Lamport time and site id.
    ///
    /// # Panics
    /// If `time` overflows the 48 available bits (never in practice).
    pub fn new(time: u64, site: u16) -> Self {
        assert!(time < (1 << (64 - SITE_BITS)), "lamport time overflow");
        Gtn((time << SITE_BITS) | site as u64)
    }

    /// The Lamport time component.
    pub fn time(self) -> u64 {
        self.0 >> SITE_BITS
    }

    /// The site component.
    pub fn site(self) -> u16 {
        (self.0 & ((1 << SITE_BITS) - 1)) as u16
    }

    /// Raw encoded value (usable as a storage version number).
    pub fn encoded(self) -> u64 {
        self.0
    }

    /// The number of the initial version `x_0` (time 0, site 0).
    pub const ZERO: Gtn = Gtn(0);
}

impl std::fmt::Display for Gtn {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}@s{}", self.time(), self.site())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trip() {
        let g = Gtn::new(123, 7);
        assert_eq!(g.time(), 123);
        assert_eq!(g.site(), 7);
        assert_eq!(Gtn(g.encoded()), g);
    }

    #[test]
    fn time_dominates_ordering() {
        assert!(Gtn::new(2, 0) > Gtn::new(1, 65535));
        assert!(Gtn::new(5, 3) < Gtn::new(6, 0));
    }

    #[test]
    fn site_breaks_ties() {
        assert!(Gtn::new(5, 1) < Gtn::new(5, 2));
        assert_ne!(Gtn::new(5, 1), Gtn::new(5, 2));
    }

    #[test]
    fn zero_is_minimal() {
        assert_eq!(Gtn::ZERO.encoded(), 0);
        assert!(Gtn::ZERO < Gtn::new(1, 0));
    }

    #[test]
    #[should_panic(expected = "overflow")]
    fn time_overflow_panics() {
        let _ = Gtn::new(1 << 48, 0);
    }

    #[test]
    fn display() {
        assert_eq!(Gtn::new(9, 2).to_string(), "9@s2");
    }
}
