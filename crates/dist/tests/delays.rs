//! Distributed correctness under injected message latency: the in-doubt
//! windows of two-phase commit get stretched by the simulated network,
//! and the protocol's visibility discipline must hold throughout.

use mvcc_dist::{Cluster, RoMode, SiteId};
use mvcc_model::{mvsg, ObjectId};
use mvcc_storage::Value;
use std::time::Duration;

#[test]
fn serializable_with_message_latency() {
    let c = Cluster::with_delay(2, Duration::from_millis(2));
    std::thread::scope(|scope| {
        // concurrent distributed committers
        for t in 0..3u64 {
            let c = &c;
            scope.spawn(move || {
                for round in 0..10u64 {
                    let mut txn = c.begin_rw();
                    let obj = ObjectId(t % 2);
                    let ok = txn
                        .write(SiteId(1), obj, Value::from_u64(round))
                        .and_then(|_| txn.write(SiteId(2), obj, Value::from_u64(round)));
                    if ok.is_ok() {
                        let _ = txn.commit();
                    }
                }
            });
        }
        // concurrent global readers
        for _ in 0..2 {
            let c = &c;
            scope.spawn(move || {
                for _ in 0..15 {
                    let mut r = c.begin_ro(RoMode::GlobalMin);
                    let a = r.read(SiteId(1), ObjectId(0));
                    let b = r.read(SiteId(2), ObjectId(0));
                    // objects written atomically at both sites must agree
                    if let (Ok(a), Ok(b)) = (a, b) {
                        assert_eq!(
                            a.as_u64(),
                            b.as_u64(),
                            "global snapshot tore a 2PC write apart"
                        );
                    }
                    r.finish();
                }
            });
        }
    });
    let h = c.trace_history().unwrap();
    let rep = mvsg::check_tn_order(&h);
    assert!(
        rep.acyclic,
        "latency exposed a visibility hole: {:?}",
        rep.cycle
    );
    for site in c.site_ids() {
        c.site(site).vc().validate().unwrap();
    }
}

#[test]
fn in_doubt_window_blocks_visibility_not_correctness() {
    // Manually stretch an in-doubt window: prepare at a site, commit a
    // younger transaction, verify the younger one stays invisible until
    // the in-doubt one resolves — then everything appears in order.
    let c = Cluster::traced(1);
    let site = SiteId(1);
    let s = c.site(site);

    // Old transaction prepares (in doubt) ...
    s.rw_write(100, ObjectId(0), Value::from_u64(1)).unwrap();
    let p_old = s.prepare(100, &[ObjectId(0)], &[ObjectId(0)]);

    // ... younger transaction fully commits through the normal path.
    let mut t = c.begin_rw();
    t.write(site, ObjectId(1), Value::from_u64(2)).unwrap();
    let f_young = t.commit().unwrap();
    assert!(f_young > p_old);

    // The younger commit is pinned behind the in-doubt transaction.
    let mut r = c.begin_ro(RoMode::GlobalMin);
    assert_eq!(r.read(site, ObjectId(1)).unwrap(), Value::empty());
    r.finish();

    // Resolve the in-doubt transaction; both become visible, in order.
    s.commit(100, p_old, p_old, &[ObjectId(0)], &[ObjectId(0)])
        .unwrap();
    let mut r = c.begin_ro(RoMode::GlobalMin);
    assert_eq!(r.read_u64(site, ObjectId(0)).unwrap(), Some(1));
    assert_eq!(r.read_u64(site, ObjectId(1)).unwrap(), Some(2));
    r.finish();

    let h = c.trace_history().unwrap();
    assert!(mvsg::check_tn_order(&h).acyclic);
}
