//! Sharded concurrent multiversion store.
//!
//! [`MvStore`] maps objects to [`VersionChain`]s behind per-shard mutexes,
//! with a per-shard condition variable so protocols can *block* on chain
//! state — e.g. a timestamp-ordering read waiting out a pending write by
//! an older transaction (paper Figure 3). Read-only snapshot reads
//! ([`MvStore::read_at`]) never block: they look only at committed
//! versions, which is the structural basis of the paper's "read requests
//! of read-only transactions are never rejected" claim.

use crate::chain::VersionChain;
use crate::gc::GcStats;
use crate::stats::StoreStats;
use crate::value::Value;
use crate::VersionNo;
use mvcc_model::ObjectId;
use parking_lot::{Condvar, Mutex};
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::{Duration, Instant};

/// Result of one poll inside [`MvStore::wait_until`].
pub enum WaitOutcome<R> {
    /// Done; return this value.
    Ready(R),
    /// Condition not met; sleep until the chain's shard changes.
    Wait,
}

/// A blocking wait exceeded its deadline.
///
/// The paper's protocols never deadlock through these waits (TO blocks
/// only behind *older* transactions, which cannot in turn wait on younger
/// ones), so a timeout indicates either a protocol bug or an aborted
/// waitee whose wake-up was lost; callers surface it as a transaction
/// abort.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WaitTimeout {
    /// How long the caller waited.
    pub waited: Duration,
}

impl std::fmt::Display for WaitTimeout {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "storage wait timed out after {:?}", self.waited)
    }
}

impl std::error::Error for WaitTimeout {}

struct Shard {
    map: Mutex<HashMap<ObjectId, VersionChain>>,
    cv: Condvar,
}

/// O(1) pressure signals maintained incrementally by every chain access
/// (vs [`MvStore::stats`], which walks every shard). These feed the
/// admission controller's degradation ladder, so they must stay cheap
/// enough to sample on every `begin`.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PressureStats {
    /// Payload bytes held live across all chains (committed + pending).
    pub live_bytes: u64,
    /// Committed versions across all chains (including initial versions).
    pub committed_versions: u64,
    /// Pending (uncommitted) versions across all chains.
    pub pending_versions: u64,
    /// Materialized objects.
    pub objects: u64,
}

impl PressureStats {
    /// GC debt: versions above the one-per-object floor — an upper bound
    /// on what a sweep at the current watermark could reclaim. (The exact
    /// reclaimable count depends on the watermark; this maintained
    /// approximation is what lets the gauge stay O(1).)
    pub fn gc_debt(&self) -> u64 {
        self.committed_versions.saturating_sub(self.objects)
    }
}

/// Incrementally-maintained store counters behind [`PressureStats`].
#[derive(Default)]
struct Counters {
    live_bytes: AtomicU64,
    committed: AtomicU64,
    pending: AtomicU64,
    objects: AtomicU64,
}

impl Counters {
    /// Apply before/after deltas from one chain mutation. Wrapping add of
    /// a two's-complement-encoded signed delta; the aggregate can never
    /// go negative because every subtraction was preceded by the matching
    /// addition under the same shard lock.
    fn apply(&self, before: (usize, usize, usize), chain: &VersionChain) {
        let (b0, c0, p0) = before;
        let d = |a: &AtomicU64, from: usize, to: usize| {
            if from != to {
                a.fetch_add((to as u64).wrapping_sub(from as u64), Ordering::Relaxed);
            }
        };
        d(&self.live_bytes, b0, chain.payload_bytes());
        d(&self.committed, c0, chain.committed_len());
        d(&self.pending, p0, chain.pending_len());
    }
}

/// Snapshot a chain's counter inputs before a mutation.
fn chain_counts(chain: &VersionChain) -> (usize, usize, usize) {
    (
        chain.payload_bytes(),
        chain.committed_len(),
        chain.pending_len(),
    )
}

/// Sharded map of object → version chain.
///
/// ```
/// use mvcc_storage::{MvStore, Value};
/// use mvcc_model::ObjectId;
///
/// let store = MvStore::new();
/// let x = ObjectId(1);
/// store.seed(x, Value::from_u64(10)); // initial version x_0
/// store.with(x, |chain| chain.insert_committed(5, Value::from_u64(50)).unwrap());
///
/// // snapshot reads: largest version number ≤ sn
/// assert_eq!(store.read_at(x, 4).unwrap().0, 0);
/// assert_eq!(store.read_at(x, 9).unwrap().1.as_u64(), Some(50));
/// ```
pub struct MvStore {
    shards: Box<[Shard]>,
    counters: Counters,
}

impl std::fmt::Debug for MvStore {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("MvStore")
            .field("shards", &self.shards.len())
            .field("stats", &self.stats())
            .finish()
    }
}

impl Default for MvStore {
    fn default() -> Self {
        Self::new()
    }
}

impl MvStore {
    /// Store with a default shard count suited to benchmark thread counts.
    pub fn new() -> Self {
        Self::with_shards(64)
    }

    /// Store with an explicit shard count, rounded **up** to a power of
    /// two (min 1) so shard selection is a bit-mask, not a modulo.
    pub fn with_shards(n: usize) -> Self {
        let n = crate::shard::pow2_shards(n);
        let shards = (0..n)
            .map(|_| Shard {
                map: Mutex::new(HashMap::new()),
                cv: Condvar::new(),
            })
            .collect::<Vec<_>>()
            .into_boxed_slice();
        MvStore {
            shards,
            counters: Counters::default(),
        }
    }

    fn shard(&self, obj: ObjectId) -> &Shard {
        // Fibonacci hashing spreads sequential object ids across shards.
        &self.shards[crate::shard::shard_index(obj.get(), self.shards.len())]
    }

    /// Run `f` with exclusive access to `obj`'s chain (created on first
    /// touch, holding the implicit initial version).
    pub fn with<R>(&self, obj: ObjectId, f: impl FnOnce(&mut VersionChain) -> R) -> R {
        let shard = self.shard(obj);
        let mut map = shard.map.lock();
        let chain = self.entry(&mut map, obj);
        let before = chain_counts(chain);
        let r = f(chain);
        self.counters.apply(before, chain);
        r
    }

    /// Materialize `obj`'s chain, counting first-touch creation (one
    /// object, one initial version) into the pressure counters.
    fn entry<'m>(
        &self,
        map: &'m mut HashMap<ObjectId, VersionChain>,
        obj: ObjectId,
    ) -> &'m mut VersionChain {
        map.entry(obj).or_insert_with(|| {
            self.counters.objects.fetch_add(1, Ordering::Relaxed);
            self.counters.committed.fetch_add(1, Ordering::Relaxed);
            VersionChain::new()
        })
    }

    /// Repeatedly run `f` until it returns [`WaitOutcome::Ready`], sleeping
    /// on the shard's condition variable between polls. Wakes on any
    /// [`notify`](Self::notify) for an object in the same shard.
    pub fn wait_until<R>(
        &self,
        obj: ObjectId,
        timeout: Duration,
        mut f: impl FnMut(&mut VersionChain) -> WaitOutcome<R>,
    ) -> Result<R, WaitTimeout> {
        let shard = self.shard(obj);
        // Zero-timeout fail-fast: poll once, never park. Deterministic
        // simulation configures every wait bound as zero so virtual
        // deadlines are never handed to a real condvar.
        // Each poll may mutate the chain (TO reads bump r-ts, writes
        // install pendings), so every invocation is delta-tracked.
        let mut poll = |map: &mut HashMap<ObjectId, VersionChain>| {
            let chain = self.entry(map, obj);
            let before = chain_counts(chain);
            let out = f(chain);
            self.counters.apply(before, chain);
            out
        };
        if timeout.is_zero() {
            let mut map = shard.map.lock();
            return match poll(&mut map) {
                WaitOutcome::Ready(r) => Ok(r),
                _ => Err(WaitTimeout { waited: timeout }),
            };
        }
        let deadline = Instant::now() + timeout;
        let mut map = shard.map.lock();
        loop {
            if let WaitOutcome::Ready(r) = poll(&mut map) {
                return Ok(r);
            }
            if shard.cv.wait_until(&mut map, deadline).timed_out() {
                // Final re-check: the condition may have become true in the
                // race between the last poll and the timeout.
                if let WaitOutcome::Ready(r) = poll(&mut map) {
                    return Ok(r);
                }
                return Err(WaitTimeout { waited: timeout });
            }
        }
    }

    /// Wake every waiter that could be blocked on `obj`'s chain. Call
    /// after commits, aborts, and pending-version changes.
    pub fn notify(&self, obj: ObjectId) {
        self.shard(obj).cv.notify_all();
    }

    // ---- convenience wrappers ---------------------------------------------

    /// Non-blocking snapshot read: `(version number, value)` of the
    /// largest committed version `≤ sn` (paper Figure 2). `None` means GC
    /// pruned the needed version.
    pub fn read_at(&self, obj: ObjectId, sn: VersionNo) -> Option<(VersionNo, Value)> {
        self.with(obj, |c| c.at(sn).map(|v| (v.number, v.value.clone())))
    }

    /// Non-blocking read of the latest committed version.
    pub fn read_latest(&self, obj: ObjectId) -> (VersionNo, Value) {
        self.with(obj, |c| {
            let v = c.latest();
            (v.number, v.value.clone())
        })
    }

    /// Set the initial version's payload (bulk loading).
    pub fn seed(&self, obj: ObjectId, value: Value) {
        self.with(obj, |c| c.seed(value));
    }

    /// Every object currently materialized.
    pub fn objects(&self) -> Vec<ObjectId> {
        let mut out = Vec::new();
        for shard in self.shards.iter() {
            out.extend(shard.map.lock().keys().copied());
        }
        out.sort_unstable();
        out
    }

    /// Aggregate statistics across all chains.
    pub fn stats(&self) -> StoreStats {
        let mut s = StoreStats::default();
        for shard in self.shards.iter() {
            let map = shard.map.lock();
            s.objects += map.len();
            for chain in map.values() {
                s.committed_versions += chain.committed_len();
                s.pending_versions += chain.pending_len();
                s.payload_bytes += chain.payload_bytes();
            }
        }
        s
    }

    /// Prune every chain against `watermark` (see
    /// [`VersionChain::prune_below`]): all live and future start numbers
    /// must be `≥ watermark`. Returns aggregate GC statistics.
    pub fn collect_garbage(&self, watermark: VersionNo) -> GcStats {
        self.collect_garbage_keep(watermark, 1)
    }

    /// Like [`collect_garbage`](Self::collect_garbage) but retaining up
    /// to `keep` versions at or below the watermark per chain (bounded
    /// history for time-travel reads).
    pub fn collect_garbage_keep(&self, watermark: VersionNo, keep: usize) -> GcStats {
        let mut stats = GcStats::default();
        for shard in self.shards.iter() {
            let mut map = shard.map.lock();
            for chain in map.values_mut() {
                stats.chains_examined += 1;
                let before = chain_counts(chain);
                let removed = chain.prune_keep_recent(watermark, keep);
                self.counters.apply(before, chain);
                stats.versions_pruned += removed;
                stats.versions_retained += chain.committed_len();
            }
        }
        stats.watermark = watermark;
        stats
    }

    /// O(1) snapshot of the maintained pressure counters — cheap enough
    /// for the admission controller to sample on every `begin`.
    pub fn pressure_stats(&self) -> PressureStats {
        PressureStats {
            live_bytes: self.counters.live_bytes.load(Ordering::Relaxed),
            committed_versions: self.counters.committed.load(Ordering::Relaxed),
            pending_versions: self.counters.pending.load(Ordering::Relaxed),
            objects: self.counters.objects.load(Ordering::Relaxed),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::version::PendingVersion;
    use mvcc_model::TxnId;
    use std::sync::Arc;
    use std::thread;

    fn obj(n: u64) -> ObjectId {
        ObjectId(n)
    }

    #[test]
    fn read_at_on_fresh_object_returns_initial() {
        let s = MvStore::new();
        let (n, v) = s.read_at(obj(1), 100).unwrap();
        assert_eq!(n, 0);
        assert!(v.is_empty());
    }

    #[test]
    fn seed_then_read() {
        let s = MvStore::new();
        s.seed(obj(1), Value::from_u64(7));
        assert_eq!(s.read_latest(obj(1)).1.as_u64(), Some(7));
    }

    #[test]
    fn with_mutates_chain() {
        let s = MvStore::new();
        s.with(obj(2), |c| {
            c.insert_committed(5, Value::from_u64(50)).unwrap()
        });
        assert_eq!(s.read_at(obj(2), 5).unwrap().0, 5);
        assert_eq!(s.read_at(obj(2), 4).unwrap().0, 0);
    }

    #[test]
    fn objects_lists_touched() {
        let s = MvStore::new();
        s.seed(obj(3), Value::empty());
        s.seed(obj(1), Value::empty());
        assert_eq!(s.objects(), vec![obj(1), obj(3)]);
    }

    #[test]
    fn stats_aggregate() {
        let s = MvStore::new();
        s.with(obj(1), |c| {
            c.insert_committed(1, Value::from_u64(1)).unwrap()
        });
        s.with(obj(2), |c| {
            c.install_pending(PendingVersion::phi(TxnId(9), Value::from_str("abc")))
        });
        let st = s.stats();
        assert_eq!(st.objects, 2);
        assert_eq!(st.committed_versions, 3); // two initials + one insert
        assert_eq!(st.pending_versions, 1);
        assert_eq!(st.payload_bytes, 11);
    }

    /// The O(1) maintained pressure counters must agree with the full
    /// walk after every kind of store access, including GC.
    #[test]
    fn pressure_stats_track_full_walk() {
        let s = MvStore::with_shards(4);
        let check = |s: &MvStore| {
            let walk = s.stats();
            let fast = s.pressure_stats();
            assert_eq!(fast.live_bytes, walk.payload_bytes as u64);
            assert_eq!(fast.committed_versions, walk.committed_versions as u64);
            assert_eq!(fast.pending_versions, walk.pending_versions as u64);
            assert_eq!(fast.objects, walk.objects as u64);
        };
        check(&s);
        s.seed(obj(1), Value::from_str("seed-value"));
        for o in 0..6u64 {
            s.with(obj(o), |c| {
                for n in 1..=4 {
                    c.insert_committed(n, Value::from_u64(n)).unwrap();
                }
            });
            check(&s);
        }
        s.with(obj(2), |c| {
            c.install_pending(PendingVersion::phi(TxnId(9), Value::from_str("pending")))
        });
        check(&s);
        s.with(obj(2), |c| {
            c.discard_pending(TxnId(9));
        });
        check(&s);
        // wait_until's polls are delta-tracked too
        s.wait_until(obj(3), Duration::ZERO, |c| {
            c.install_pending(PendingVersion::stamped(TxnId(5), 9, Value::from_u64(9)));
            WaitOutcome::Ready(())
        })
        .unwrap();
        check(&s);
        let debt_before = s.pressure_stats().gc_debt();
        assert!(debt_before > 0);
        s.collect_garbage(4);
        check(&s);
        assert!(s.pressure_stats().gc_debt() < debt_before);
    }

    #[test]
    fn wait_until_ready_immediately() {
        let s = MvStore::new();
        let r = s
            .wait_until(obj(1), Duration::from_millis(10), |c| {
                WaitOutcome::Ready(c.latest().number)
            })
            .unwrap();
        assert_eq!(r, 0);
    }

    #[test]
    fn wait_until_times_out() {
        let s = MvStore::new();
        let err = s
            .wait_until::<()>(obj(1), Duration::from_millis(20), |_| WaitOutcome::Wait)
            .unwrap_err();
        assert_eq!(err.waited, Duration::from_millis(20));
    }

    #[test]
    fn wait_until_wakes_on_notify() {
        let s = Arc::new(MvStore::new());
        let s2 = Arc::clone(&s);
        let waiter = thread::spawn(move || {
            s2.wait_until(obj(7), Duration::from_secs(5), |c| {
                if c.latest().number >= 3 {
                    WaitOutcome::Ready(c.latest().value.as_u64())
                } else {
                    WaitOutcome::Wait
                }
            })
        });
        thread::sleep(Duration::from_millis(20));
        s.with(obj(7), |c| {
            c.insert_committed(3, Value::from_u64(33)).unwrap()
        });
        s.notify(obj(7));
        let got = waiter.join().unwrap().unwrap();
        assert_eq!(got, Some(33));
    }

    #[test]
    fn gc_prunes_across_objects() {
        let s = MvStore::new();
        for o in 0..10u64 {
            s.with(obj(o), |c| {
                for n in 1..=5 {
                    c.insert_committed(n, Value::from_u64(n)).unwrap();
                }
            });
        }
        let stats = s.collect_garbage(5);
        assert_eq!(stats.chains_examined, 10);
        assert_eq!(stats.versions_pruned, 50); // versions 0..4 die per chain
        assert_eq!(stats.versions_retained, 10);
        assert_eq!(stats.watermark, 5);
        // snapshot at watermark still served
        assert_eq!(s.read_at(obj(0), 5).unwrap().0, 5);
        // snapshot below watermark is gone
        assert!(s.read_at(obj(0), 3).is_none());
    }

    #[test]
    fn concurrent_writers_distinct_objects() {
        let s = Arc::new(MvStore::with_shards(4));
        let mut handles = Vec::new();
        for t in 0..8u64 {
            let s = Arc::clone(&s);
            handles.push(thread::spawn(move || {
                for i in 0..100u64 {
                    let o = obj(t * 100 + i);
                    s.with(o, |c| c.insert_committed(1, Value::from_u64(i)).unwrap());
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(s.stats().objects, 800);
    }

    #[test]
    fn concurrent_same_object_versions() {
        let s = Arc::new(MvStore::new());
        let mut handles = Vec::new();
        for t in 1..=8u64 {
            let s = Arc::clone(&s);
            handles.push(thread::spawn(move || {
                for i in 0..50u64 {
                    let n = t * 1000 + i;
                    s.with(obj(1), |c| {
                        c.insert_committed(n, Value::from_u64(n)).unwrap()
                    });
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        let chain_len = s.with(obj(1), |c| c.committed_len());
        assert_eq!(chain_len, 1 + 8 * 50);
        // chain stayed sorted
        s.with(obj(1), |c| {
            let nums: Vec<u64> = c.committed().iter().map(|v| v.number).collect();
            let mut sorted = nums.clone();
            sorted.sort_unstable();
            assert_eq!(nums, sorted);
        });
    }
}
