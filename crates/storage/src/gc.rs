//! Garbage collection support (paper Section 6).
//!
//! "The only restriction the version control mechanism imposes on the
//! garbage collection scheme is that it must not discard any version of
//! objects as young as or younger than `vtnc`." A GC pass therefore prunes
//! against a *watermark* no larger than `vtnc`; and because versions older
//! than `vtnc` may still be needed by *currently running* read-only
//! transactions (whose start numbers were earlier values of `vtnc`), the
//! watermark is further lowered to the minimum live start number tracked
//! by [`RoScanRegistry`]. The paper notes this integration is easy
//! precisely because RO transactions are invisible to concurrency control:
//! "a garbage collection algorithm, which keeps the information about
//! read-only transactions, can be easily integrated".

use crate::VersionNo;
use parking_lot::Mutex;
use std::collections::BTreeMap;

/// Statistics of one GC pass.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct GcStats {
    /// Watermark the pass used.
    pub watermark: VersionNo,
    /// Number of chains visited.
    pub chains_examined: usize,
    /// Committed versions removed.
    pub versions_pruned: usize,
    /// Committed versions remaining after the pass.
    pub versions_retained: usize,
}

/// Multiset of live read-only start numbers.
///
/// Each RO transaction registers its start number when it begins and
/// deregisters on completion; [`RoScanRegistry::min_active`] bounds the GC
/// watermark from below. Registration is the *only* bookkeeping an RO
/// transaction performs besides `VCstart()`, and it is with the GC — not
/// with concurrency control — preserving the paper's separation.
#[derive(Default)]
pub struct RoScanRegistry {
    active: Mutex<BTreeMap<VersionNo, usize>>,
}

impl RoScanRegistry {
    /// Empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// Record a read-only transaction starting with start number `sn`.
    pub fn register(&self, sn: VersionNo) {
        *self.active.lock().entry(sn).or_insert(0) += 1;
    }

    /// Record the completion of a read-only transaction that had start
    /// number `sn`. Returns `false` if no such registration existed.
    pub fn deregister(&self, sn: VersionNo) -> bool {
        let mut map = self.active.lock();
        match map.get_mut(&sn) {
            Some(n) if *n > 1 => {
                *n -= 1;
                true
            }
            Some(_) => {
                map.remove(&sn);
                true
            }
            None => false,
        }
    }

    /// The smallest live start number, if any RO transaction is running.
    pub fn min_active(&self) -> Option<VersionNo> {
        self.active.lock().keys().next().copied()
    }

    /// Number of live registrations.
    pub fn active_count(&self) -> usize {
        self.active.lock().values().sum()
    }

    /// The GC watermark given the current `vtnc`: the largest number `w`
    /// such that every live *and future* start number is `≥ w`.
    pub fn watermark(&self, vtnc: VersionNo) -> VersionNo {
        match self.min_active() {
            Some(m) => m.min(vtnc),
            None => vtnc,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_registry_watermark_is_vtnc() {
        let r = RoScanRegistry::new();
        assert_eq!(r.min_active(), None);
        assert_eq!(r.watermark(42), 42);
        assert_eq!(r.active_count(), 0);
    }

    #[test]
    fn watermark_clamped_by_oldest_reader() {
        let r = RoScanRegistry::new();
        r.register(10);
        r.register(20);
        assert_eq!(r.watermark(25), 10);
        assert!(r.deregister(10));
        assert_eq!(r.watermark(25), 20);
        assert!(r.deregister(20));
        assert_eq!(r.watermark(25), 25);
    }

    #[test]
    fn multiset_semantics() {
        let r = RoScanRegistry::new();
        r.register(5);
        r.register(5);
        assert_eq!(r.active_count(), 2);
        assert!(r.deregister(5));
        assert_eq!(r.min_active(), Some(5));
        assert!(r.deregister(5));
        assert_eq!(r.min_active(), None);
        assert!(!r.deregister(5));
    }

    #[test]
    fn watermark_never_exceeds_vtnc() {
        let r = RoScanRegistry::new();
        r.register(100); // reader started "in the future" relative to vtnc 7
        assert_eq!(r.watermark(7), 7);
    }

    #[test]
    fn concurrent_register_deregister() {
        use std::sync::Arc;
        let r = Arc::new(RoScanRegistry::new());
        let mut handles = Vec::new();
        for t in 0..8u64 {
            let r = Arc::clone(&r);
            handles.push(std::thread::spawn(move || {
                for i in 0..200u64 {
                    let sn = t * 1000 + i;
                    r.register(sn);
                    assert!(r.deregister(sn));
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(r.active_count(), 0);
    }
}
