//! Garbage collection support (paper Section 6).
//!
//! "The only restriction the version control mechanism imposes on the
//! garbage collection scheme is that it must not discard any version of
//! objects as young as or younger than `vtnc`." A GC pass therefore prunes
//! against a *watermark* no larger than `vtnc`; and because versions older
//! than `vtnc` may still be needed by *currently running* read-only
//! transactions (whose start numbers were earlier values of `vtnc`), the
//! watermark is further lowered to the minimum live start number tracked
//! by [`RoScanRegistry`]. The paper notes this integration is easy
//! precisely because RO transactions are invisible to concurrency control:
//! "a garbage collection algorithm, which keeps the information about
//! read-only transactions, can be easily integrated".

use crate::VersionNo;
use parking_lot::Mutex;
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};

/// Statistics of one GC pass.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct GcStats {
    /// Watermark the pass used.
    pub watermark: VersionNo,
    /// Number of chains visited.
    pub chains_examined: usize,
    /// Committed versions removed.
    pub versions_pruned: usize,
    /// Committed versions remaining after the pass.
    pub versions_retained: usize,
}

/// Multiset of live read-only start numbers, sharded into per-thread
/// *slots* so read-only transactions never contend with each other.
///
/// Each RO transaction registers its start number when it begins and
/// deregisters on completion; [`RoScanRegistry::min_active`] bounds the GC
/// watermark from below. Registration is the *only* bookkeeping an RO
/// transaction performs besides `VCstart()`, and it is with the GC — not
/// with concurrency control — preserving the paper's separation.
///
/// # Why slots, not a key-sharded map
///
/// Most concurrent RO transactions carry the *same* start number (the
/// current `vtnc`), so sharding by `sn` would funnel them all into one
/// shard. Instead each worker thread is pinned to a slot (round-robin
/// assignment on first use, cached in a thread-local), and a slot is a
/// small independent multiset. `register`/`deregister` touch only the
/// calling thread's slot; only the rare GC-side reads (`min_active`,
/// `active_count`) sweep all slots. With at least as many slots as worker
/// threads, the RO hot path is contention-free — the structural version
/// of the paper's Section 4.2 "almost negligible overhead" claim.
pub struct RoScanRegistry {
    slots: Box<[Mutex<BTreeMap<VersionNo, usize>>]>,
    /// Times a slot lock was observed contended (`try_lock` failed and
    /// the caller had to block). Stays 0 when slots ≥ threads.
    contention: AtomicU64,
}

impl Default for RoScanRegistry {
    fn default() -> Self {
        Self::new()
    }
}

/// Round-robin source of slot assignments, cached per thread.
static NEXT_SLOT_SEED: AtomicUsize = AtomicUsize::new(0);

thread_local! {
    static SLOT_SEED: std::cell::Cell<usize> = const { std::cell::Cell::new(usize::MAX) };
}

impl RoScanRegistry {
    /// Registry with a default slot count suited to benchmark thread
    /// counts.
    pub fn new() -> Self {
        Self::with_slots(16)
    }

    /// Registry with an explicit slot count, rounded up to a power of two
    /// (min 1). One slot degenerates to the old global-mutex registry.
    pub fn with_slots(n: usize) -> Self {
        let n = crate::shard::pow2_shards(n);
        RoScanRegistry {
            slots: (0..n)
                .map(|_| Mutex::new(BTreeMap::new()))
                .collect::<Vec<_>>()
                .into_boxed_slice(),
            contention: AtomicU64::new(0),
        }
    }

    /// Number of slots (always a power of two).
    pub fn slot_count(&self) -> usize {
        self.slots.len()
    }

    /// The calling thread's slot index.
    fn home_slot(&self) -> usize {
        let seed = SLOT_SEED.with(|s| {
            let mut v = s.get();
            if v == usize::MAX {
                v = NEXT_SLOT_SEED.fetch_add(1, Ordering::Relaxed);
                s.set(v);
            }
            v
        });
        seed & (self.slots.len() - 1)
    }

    /// Lock `slot`, counting the acquisition as contended if another
    /// thread currently holds it.
    fn lock_slot(&self, slot: usize) -> parking_lot::MutexGuard<'_, BTreeMap<VersionNo, usize>> {
        match self.slots[slot].try_lock() {
            Some(g) => g,
            None => {
                self.contention.fetch_add(1, Ordering::Relaxed);
                self.slots[slot].lock()
            }
        }
    }

    /// Record a read-only transaction starting with start number `sn`.
    /// Returns the slot the registration landed in; pass it back to
    /// [`deregister`](Self::deregister) on completion.
    pub fn register(&self, sn: VersionNo) -> usize {
        let slot = self.home_slot();
        *self.lock_slot(slot).entry(sn).or_insert(0) += 1;
        slot
    }

    /// Record the completion of a read-only transaction that had start
    /// number `sn`, registered in `slot`. Returns `false` if no such
    /// registration existed.
    pub fn deregister(&self, slot: usize, sn: VersionNo) -> bool {
        let mut map = self.lock_slot(slot & (self.slots.len() - 1));
        match map.get_mut(&sn) {
            Some(n) if *n > 1 => {
                *n -= 1;
                true
            }
            Some(_) => {
                map.remove(&sn);
                true
            }
            None => false,
        }
    }

    /// The smallest live start number, if any RO transaction is running.
    /// (GC-side sweep over every slot — rare, so its cost is off the RO
    /// hot path.)
    pub fn min_active(&self) -> Option<VersionNo> {
        self.slots
            .iter()
            .filter_map(|s| s.lock().keys().next().copied())
            .min()
    }

    /// Number of live registrations.
    pub fn active_count(&self) -> usize {
        self.slots
            .iter()
            .map(|s| s.lock().values().sum::<usize>())
            .sum()
    }

    /// The GC watermark given the current `vtnc`: the largest number `w`
    /// such that every live *and future* start number is `≥ w`.
    pub fn watermark(&self, vtnc: VersionNo) -> VersionNo {
        match self.min_active() {
            Some(m) => m.min(vtnc),
            None => vtnc,
        }
    }

    /// Times a slot lock acquisition found the slot held by another
    /// thread (monotone counter; see `gc_slot_contention` in
    /// `mvcc-core`'s metrics).
    pub fn contention(&self) -> u64 {
        self.contention.load(Ordering::Relaxed)
    }

    /// Zero the contention counter (between experiment phases).
    pub fn reset_contention(&self) {
        self.contention.store(0, Ordering::Relaxed);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_registry_watermark_is_vtnc() {
        let r = RoScanRegistry::new();
        assert_eq!(r.min_active(), None);
        assert_eq!(r.watermark(42), 42);
        assert_eq!(r.active_count(), 0);
    }

    #[test]
    fn watermark_clamped_by_oldest_reader() {
        let r = RoScanRegistry::new();
        let s10 = r.register(10);
        let s20 = r.register(20);
        assert_eq!(r.watermark(25), 10);
        assert!(r.deregister(s10, 10));
        assert_eq!(r.watermark(25), 20);
        assert!(r.deregister(s20, 20));
        assert_eq!(r.watermark(25), 25);
    }

    #[test]
    fn multiset_semantics() {
        let r = RoScanRegistry::new();
        let a = r.register(5);
        let b = r.register(5);
        assert_eq!(r.active_count(), 2);
        assert!(r.deregister(a, 5));
        assert_eq!(r.min_active(), Some(5));
        assert!(r.deregister(b, 5));
        assert_eq!(r.min_active(), None);
        assert!(!r.deregister(a, 5));
    }

    #[test]
    fn watermark_never_exceeds_vtnc() {
        let r = RoScanRegistry::new();
        r.register(100); // reader started "in the future" relative to vtnc 7
        assert_eq!(r.watermark(7), 7);
    }

    #[test]
    fn slot_counts_are_pow2_and_single_slot_works() {
        let r = RoScanRegistry::with_slots(5);
        assert_eq!(r.slot_count(), 8);
        let r1 = RoScanRegistry::with_slots(1);
        assert_eq!(r1.slot_count(), 1);
        let s = r1.register(3);
        assert_eq!(s, 0);
        assert_eq!(r1.min_active(), Some(3));
        assert!(r1.deregister(s, 3));
    }

    #[test]
    fn cross_slot_min_is_global_min() {
        let r = RoScanRegistry::with_slots(4);
        // Force registrations into distinct slots by writing directly.
        *r.slots[0].lock().entry(30).or_insert(0) += 1;
        *r.slots[1].lock().entry(10).or_insert(0) += 1;
        *r.slots[3].lock().entry(20).or_insert(0) += 1;
        assert_eq!(r.min_active(), Some(10));
        assert_eq!(r.active_count(), 3);
        assert_eq!(r.watermark(50), 10);
    }

    #[test]
    fn concurrent_register_deregister() {
        use std::sync::Arc;
        let r = Arc::new(RoScanRegistry::new());
        let mut handles = Vec::new();
        for t in 0..8u64 {
            let r = Arc::clone(&r);
            handles.push(std::thread::spawn(move || {
                for i in 0..200u64 {
                    let sn = t * 1000 + i;
                    let slot = r.register(sn);
                    assert!(r.deregister(slot, sn));
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(r.active_count(), 0);
    }

    #[test]
    fn contention_counter_stays_zero_single_threaded() {
        let r = RoScanRegistry::new();
        for i in 0..100 {
            let s = r.register(i);
            r.deregister(s, i);
        }
        assert_eq!(r.contention(), 0);
        r.reset_contention();
        assert_eq!(r.contention(), 0);
    }
}
