//! Cheaply-cloneable opaque values.

use bytes::Bytes;
use std::fmt;

/// An opaque database value.
///
/// Backed by [`Bytes`], so cloning a value into a new version is an atomic
/// refcount bump — version chains never deep-copy payloads. Helper
/// constructors cover the encodings the examples and workloads use.
#[derive(Clone, Default, PartialEq, Eq, Hash)]
pub struct Value(Bytes);

impl Value {
    /// The empty value (also every object's initial-version payload unless
    /// seeded otherwise).
    pub fn empty() -> Self {
        Value(Bytes::new())
    }

    /// Wrap raw bytes.
    pub fn from_bytes(b: impl Into<Bytes>) -> Self {
        Value(b.into())
    }

    /// Encode a `u64` (big-endian, fixed width).
    pub fn from_u64(v: u64) -> Self {
        Value(Bytes::copy_from_slice(&v.to_be_bytes()))
    }

    /// Encode an `i64` (big-endian, fixed width).
    pub fn from_i64(v: i64) -> Self {
        Value(Bytes::copy_from_slice(&v.to_be_bytes()))
    }

    /// Encode a UTF-8 string.
    #[allow(clippy::should_implement_trait)] // infallible constructor, not a parse
    pub fn from_str(s: &str) -> Self {
        Value(Bytes::copy_from_slice(s.as_bytes()))
    }

    /// Decode as `u64` if the payload is exactly 8 bytes.
    pub fn as_u64(&self) -> Option<u64> {
        self.0.as_ref().try_into().ok().map(u64::from_be_bytes)
    }

    /// Decode as `i64` if the payload is exactly 8 bytes.
    pub fn as_i64(&self) -> Option<i64> {
        self.0.as_ref().try_into().ok().map(i64::from_be_bytes)
    }

    /// Decode as UTF-8 if valid.
    pub fn as_str(&self) -> Option<&str> {
        std::str::from_utf8(&self.0).ok()
    }

    /// Raw bytes.
    pub fn as_bytes(&self) -> &[u8] {
        &self.0
    }

    /// Payload length in bytes.
    pub fn len(&self) -> usize {
        self.0.len()
    }

    /// Whether the payload is empty.
    pub fn is_empty(&self) -> bool {
        self.0.is_empty()
    }
}

impl fmt::Debug for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if let Some(v) = self.as_u64() {
            write!(f, "Value(u64:{v})")
        } else if let Some(s) = self.as_str() {
            write!(f, "Value({s:?})")
        } else {
            write!(f, "Value({} bytes)", self.0.len())
        }
    }
}

impl From<u64> for Value {
    fn from(v: u64) -> Self {
        Value::from_u64(v)
    }
}

impl From<&str> for Value {
    fn from(s: &str) -> Self {
        Value::from_str(s)
    }
}

impl From<Vec<u8>> for Value {
    fn from(b: Vec<u8>) -> Self {
        Value::from_bytes(b)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn u64_round_trip() {
        let v = Value::from_u64(42);
        assert_eq!(v.as_u64(), Some(42));
        assert_eq!(v.len(), 8);
    }

    #[test]
    fn i64_round_trip_negative() {
        let v = Value::from_i64(-7);
        assert_eq!(v.as_i64(), Some(-7));
    }

    #[test]
    fn str_round_trip() {
        let v = Value::from_str("hello");
        assert_eq!(v.as_str(), Some("hello"));
        assert_eq!(v.as_u64(), None); // wrong width
    }

    #[test]
    fn empty_value() {
        let v = Value::empty();
        assert!(v.is_empty());
        assert_eq!(v.len(), 0);
        assert_eq!(v, Value::default());
    }

    #[test]
    fn clone_is_shallow_equal() {
        let v = Value::from_str("payload");
        let w = v.clone();
        assert_eq!(v, w);
        assert_eq!(v.as_bytes().as_ptr(), w.as_bytes().as_ptr());
    }

    #[test]
    fn debug_formats() {
        assert_eq!(format!("{:?}", Value::from_u64(5)), "Value(u64:5)");
        assert!(format!("{:?}", Value::from_str("abcdefghij")).contains("abcdefghij"));
    }

    #[test]
    fn conversions() {
        let a: Value = 9u64.into();
        assert_eq!(a.as_u64(), Some(9));
        let b: Value = "s".into();
        assert_eq!(b.as_str(), Some("s"));
        let c: Value = vec![1u8, 2, 3].into();
        assert_eq!(c.as_bytes(), &[1, 2, 3]);
    }
}
