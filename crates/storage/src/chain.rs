//! Per-object version chains.
//!
//! A chain holds the committed versions of one object, sorted by version
//! number ascending, plus any pending (uncommitted) versions. Every chain
//! implicitly begins with the initial version `x_0` (number
//! [`INITIAL_VERSION`], empty payload unless seeded), written by the
//! pseudo-transaction `T_0` — matching the model crate's convention.
//!
//! Chains are plain data: all locking lives in [`crate::store::MvStore`].

use crate::value::Value;
use crate::version::{CommittedVersion, PendingVersion};
use crate::{VersionNo, INITIAL_VERSION};
use mvcc_model::TxnId;

/// Errors from chain mutations.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ChainError {
    /// No pending version installed by that writer.
    NoSuchPending(TxnId),
    /// Promotion would install a version number that already exists.
    DuplicateVersion(VersionNo),
    /// Promotion without a number for a φ version.
    MissingNumber(TxnId),
}

impl std::fmt::Display for ChainError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ChainError::NoSuchPending(t) => write!(f, "no pending version by {t}"),
            ChainError::DuplicateVersion(n) => write!(f, "version {n} already exists"),
            ChainError::MissingNumber(t) => {
                write!(f, "pending version by {t} needs a number to commit")
            }
        }
    }
}

impl std::error::Error for ChainError {}

/// The version list of one object.
#[derive(Clone, Debug)]
pub struct VersionChain {
    /// Committed versions, sorted by `number` ascending. Never empty: the
    /// initial version is always present until GC decides it is dominated.
    committed: Vec<CommittedVersion>,
    /// Pending versions (at most one under the paper's protocols; a `Vec`
    /// to support baselines that admit several in-flight writers).
    pending: Vec<PendingVersion>,
    /// Maintained sum of committed + pending payload lengths, so
    /// [`payload_bytes`](Self::payload_bytes) is O(1) — the store samples
    /// it on every access to keep its live-byte pressure gauge current.
    bytes: usize,
}

impl Default for VersionChain {
    fn default() -> Self {
        Self::new()
    }
}

impl VersionChain {
    /// A chain holding only the (empty-payload) initial version.
    pub fn new() -> Self {
        VersionChain {
            committed: vec![CommittedVersion::new(INITIAL_VERSION, Value::empty())],
            pending: Vec::new(),
            bytes: 0,
        }
    }

    /// A chain whose initial version carries `value`.
    pub fn seeded(value: Value) -> Self {
        let bytes = value.len();
        VersionChain {
            committed: vec![CommittedVersion::new(INITIAL_VERSION, value)],
            pending: Vec::new(),
            bytes,
        }
    }

    /// Replace the initial version's payload (used when loading data).
    pub fn seed(&mut self, value: Value) {
        if let Some(first) = self.committed.first_mut() {
            if first.number == INITIAL_VERSION {
                self.bytes = self.bytes - first.value.len() + value.len();
                first.value = value;
                return;
            }
        }
        self.bytes += value.len();
        self.committed
            .insert(0, CommittedVersion::new(INITIAL_VERSION, value));
    }

    // ---- reads -----------------------------------------------------------

    /// The most recent committed version.
    pub fn latest(&self) -> &CommittedVersion {
        self.committed.last().expect("chain never empty")
    }

    /// Snapshot read: the committed version with the **largest number
    /// `≤ sn`** (paper Figure 2). `None` only if GC pruned every such
    /// version (paper: "barring the unavailability of an appropriate
    /// version to read due to garbage-collection").
    pub fn at(&self, sn: VersionNo) -> Option<&CommittedVersion> {
        let idx = self.committed.partition_point(|v| v.number <= sn);
        idx.checked_sub(1).map(|i| &self.committed[i])
    }

    /// Committed version with exactly this number.
    pub fn exact(&self, number: VersionNo) -> Option<&CommittedVersion> {
        self.committed
            .binary_search_by_key(&number, |v| v.number)
            .ok()
            .map(|i| &self.committed[i])
    }

    /// All committed versions, oldest first.
    pub fn committed(&self) -> &[CommittedVersion] {
        &self.committed
    }

    /// All pending versions.
    pub fn pending(&self) -> &[PendingVersion] {
        &self.pending
    }

    /// The pending version installed by `writer`, if any.
    pub fn pending_by(&self, writer: TxnId) -> Option<&PendingVersion> {
        self.pending.iter().find(|p| p.writer == writer)
    }

    /// Whether some pending version has a reserved number `< bound` —
    /// the condition that blocks a TO read/write behind an *older*
    /// in-flight writer (paper Figure 3 commentary).
    pub fn has_pending_older_than(&self, bound: VersionNo) -> bool {
        self.pending
            .iter()
            .any(|p| p.reserved_number.is_some_and(|n| n < bound))
    }

    // ---- timestamps ------------------------------------------------------

    /// `r-ts(x)` of the most recent version (paper Figure 3): the largest
    /// transaction number that read the latest version.
    pub fn read_ts(&self) -> VersionNo {
        self.latest().read_ts
    }

    /// Raise the latest version's `r-ts` to at least `tn`
    /// (`r-ts(x) ← MAX(r-ts(x), tn(T))`).
    pub fn update_read_ts(&mut self, tn: VersionNo) {
        let v = self.committed.last_mut().expect("chain never empty");
        v.read_ts = v.read_ts.max(tn);
    }

    /// Raise the `r-ts` of the version numbered `number` (Reed-style
    /// per-version read timestamps). No-op if the version is gone.
    pub fn update_read_ts_of(&mut self, number: VersionNo, tn: VersionNo) {
        if let Ok(i) = self.committed.binary_search_by_key(&number, |v| v.number) {
            self.committed[i].read_ts = self.committed[i].read_ts.max(tn);
        }
    }

    /// `w-ts(x)` of the most recent version: the largest committed version
    /// number, taking reserved numbers of pending writes into account
    /// (a granted-but-uncommitted write has already claimed its slot).
    pub fn write_ts(&self) -> VersionNo {
        let committed_max = self.latest().number;
        let pending_max = self
            .pending
            .iter()
            .filter_map(|p| p.reserved_number)
            .max()
            .unwrap_or(0);
        committed_max.max(pending_max)
    }

    /// The transaction-number floor a new writer of this object must
    /// draw above: every committed or reserved version number and every
    /// recorded reader of the latest version (`MAX(w-ts(x), r-ts(x))`).
    /// Consumed by sequencers that allocate transaction numbers away
    /// from a global lock (`VersionControl::register_after`), which must
    /// keep number order consistent with conflict order.
    pub fn order_floor(&self) -> VersionNo {
        self.write_ts().max(self.latest().read_ts)
    }

    // ---- writes ----------------------------------------------------------

    /// Install a pending version. The caller (protocol) is responsible for
    /// having granted the write; the chain accepts any number of pending
    /// versions but at most one per writer (re-writing replaces the
    /// payload, honoring the one-write-per-object model restriction).
    pub fn install_pending(&mut self, p: PendingVersion) {
        if let Some(existing) = self.pending.iter_mut().find(|q| q.writer == p.writer) {
            self.bytes = self.bytes - existing.value.len() + p.value.len();
            *existing = p;
        } else {
            self.bytes += p.value.len();
            self.pending.push(p);
        }
    }

    /// Commit `writer`'s pending version. `number` overrides the reserved
    /// number and is mandatory for φ versions (2PL stamps at commit).
    pub fn promote_pending(
        &mut self,
        writer: TxnId,
        number: Option<VersionNo>,
    ) -> Result<VersionNo, ChainError> {
        let idx = self
            .pending
            .iter()
            .position(|p| p.writer == writer)
            .ok_or(ChainError::NoSuchPending(writer))?;
        let final_no = number
            .or(self.pending[idx].reserved_number)
            .ok_or(ChainError::MissingNumber(writer))?;
        if self.exact(final_no).is_some() {
            return Err(ChainError::DuplicateVersion(final_no));
        }
        let p = self.pending.remove(idx);
        let insert_at = self.committed.partition_point(|v| v.number < final_no);
        self.committed
            .insert(insert_at, CommittedVersion::new(final_no, p.value));
        Ok(final_no)
    }

    /// Drop `writer`'s pending version (abort path). Idempotent.
    pub fn discard_pending(&mut self, writer: TxnId) -> bool {
        let before = self.pending.len();
        let mut freed = 0;
        self.pending.retain(|p| {
            if p.writer == writer {
                freed += p.value.len();
                false
            } else {
                true
            }
        });
        self.bytes -= freed;
        self.pending.len() != before
    }

    /// Directly insert a committed version (used by OCC's write phase and
    /// by the distributed apply path, where no pending version was staged
    /// in this chain).
    pub fn insert_committed(&mut self, number: VersionNo, value: Value) -> Result<(), ChainError> {
        if self.exact(number).is_some() {
            return Err(ChainError::DuplicateVersion(number));
        }
        let insert_at = self.committed.partition_point(|v| v.number < number);
        self.bytes += value.len();
        self.committed
            .insert(insert_at, CommittedVersion::new(number, value));
        Ok(())
    }

    // ---- garbage collection ---------------------------------------------

    /// Prune committed versions that no current or future reader can
    /// choose, given that every live and future start number is
    /// `≥ watermark`: drop every version whose number is less than the
    /// largest version number `≤ watermark` (that one stays — it is what a
    /// snapshot at `watermark` reads). Returns how many were removed.
    pub fn prune_below(&mut self, watermark: VersionNo) -> usize {
        let keep_from = self
            .committed
            .partition_point(|v| v.number <= watermark)
            .saturating_sub(1);
        if keep_from == 0 {
            return 0;
        }
        self.drain_committed(keep_from)
    }

    /// Drain the oldest `keep_from` committed versions, maintaining the
    /// byte counter. Returns how many were removed.
    fn drain_committed(&mut self, keep_from: usize) -> usize {
        let mut freed = 0;
        let n = self
            .committed
            .drain(..keep_from)
            .map(|v| freed += v.value.len())
            .count();
        self.bytes -= freed;
        n
    }

    /// Prune like [`prune_below`](Self::prune_below) but keep up to
    /// `keep` of the newest versions at or below the watermark (minimum
    /// 1 — the version a snapshot at `watermark` reads). `keep > 1`
    /// retains bounded history for time-travel reads below the
    /// watermark, one of the garbage-collection policies Section 6
    /// invites experimentation with.
    pub fn prune_keep_recent(&mut self, watermark: VersionNo, keep: usize) -> usize {
        let keep = keep.max(1);
        let visible_end = self.committed.partition_point(|v| v.number <= watermark);
        let keep_from = visible_end.saturating_sub(keep);
        if keep_from == 0 {
            return 0;
        }
        self.drain_committed(keep_from)
    }

    /// Number of committed versions currently held.
    pub fn committed_len(&self) -> usize {
        self.committed.len()
    }

    /// Number of pending versions currently held.
    pub fn pending_len(&self) -> usize {
        self.pending.len()
    }

    /// Approximate payload bytes held by this chain. O(1): the counter is
    /// maintained by every mutation.
    pub fn payload_bytes(&self) -> usize {
        self.bytes
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn v(n: u64) -> Value {
        Value::from_u64(n)
    }

    #[test]
    fn new_chain_has_initial_version() {
        let c = VersionChain::new();
        assert_eq!(c.latest().number, INITIAL_VERSION);
        assert_eq!(c.committed_len(), 1);
        assert_eq!(c.at(0).unwrap().number, 0);
        assert_eq!(c.at(100).unwrap().number, 0);
    }

    #[test]
    fn seed_replaces_initial_payload() {
        let mut c = VersionChain::new();
        c.seed(v(7));
        assert_eq!(c.latest().value.as_u64(), Some(7));
        assert_eq!(c.committed_len(), 1);
    }

    #[test]
    fn snapshot_read_picks_largest_leq() {
        let mut c = VersionChain::new();
        c.insert_committed(5, v(50)).unwrap();
        c.insert_committed(9, v(90)).unwrap();
        assert_eq!(c.at(4).unwrap().number, 0);
        assert_eq!(c.at(5).unwrap().number, 5);
        assert_eq!(c.at(8).unwrap().number, 5);
        assert_eq!(c.at(9).unwrap().number, 9);
        assert_eq!(c.at(u64::MAX).unwrap().number, 9);
    }

    #[test]
    fn out_of_order_insert_keeps_sorted() {
        let mut c = VersionChain::new();
        c.insert_committed(9, v(90)).unwrap();
        c.insert_committed(5, v(50)).unwrap();
        let nums: Vec<u64> = c.committed().iter().map(|x| x.number).collect();
        assert_eq!(nums, vec![0, 5, 9]);
        assert_eq!(c.latest().number, 9);
    }

    #[test]
    fn duplicate_version_rejected() {
        let mut c = VersionChain::new();
        c.insert_committed(5, v(1)).unwrap();
        assert_eq!(
            c.insert_committed(5, v(2)),
            Err(ChainError::DuplicateVersion(5))
        );
    }

    #[test]
    fn pending_phi_promote_with_number() {
        let mut c = VersionChain::new();
        c.install_pending(PendingVersion::phi(TxnId(1), v(10)));
        assert_eq!(c.pending_len(), 1);
        // φ version cannot commit without a number
        let mut c2 = c.clone();
        assert_eq!(
            c2.promote_pending(TxnId(1), None),
            Err(ChainError::MissingNumber(TxnId(1)))
        );
        let n = c.promote_pending(TxnId(1), Some(4)).unwrap();
        assert_eq!(n, 4);
        assert_eq!(c.pending_len(), 0);
        assert_eq!(c.latest().number, 4);
        assert_eq!(c.latest().value.as_u64(), Some(10));
    }

    #[test]
    fn pending_stamped_promote_uses_reserved() {
        let mut c = VersionChain::new();
        c.install_pending(PendingVersion::stamped(TxnId(3), 3, v(30)));
        let n = c.promote_pending(TxnId(3), None).unwrap();
        assert_eq!(n, 3);
        assert_eq!(c.exact(3).unwrap().value.as_u64(), Some(30));
    }

    #[test]
    fn promote_missing_writer_errors() {
        let mut c = VersionChain::new();
        assert_eq!(
            c.promote_pending(TxnId(9), Some(1)),
            Err(ChainError::NoSuchPending(TxnId(9)))
        );
    }

    #[test]
    fn discard_pending_is_idempotent() {
        let mut c = VersionChain::new();
        c.install_pending(PendingVersion::phi(TxnId(1), v(1)));
        assert!(c.discard_pending(TxnId(1)));
        assert!(!c.discard_pending(TxnId(1)));
        assert_eq!(c.pending_len(), 0);
    }

    #[test]
    fn rewrite_by_same_writer_replaces_payload() {
        let mut c = VersionChain::new();
        c.install_pending(PendingVersion::phi(TxnId(1), v(1)));
        c.install_pending(PendingVersion::phi(TxnId(1), v(2)));
        assert_eq!(c.pending_len(), 1);
        c.promote_pending(TxnId(1), Some(1)).unwrap();
        assert_eq!(c.latest().value.as_u64(), Some(2));
    }

    #[test]
    fn read_ts_tracking() {
        let mut c = VersionChain::new();
        c.update_read_ts(5);
        assert_eq!(c.read_ts(), 5);
        c.update_read_ts(3); // MAX semantics
        assert_eq!(c.read_ts(), 5);
        c.insert_committed(7, v(1)).unwrap();
        // r-ts is per version; the new latest starts at 0
        assert_eq!(c.read_ts(), 0);
        c.update_read_ts_of(0, 9);
        assert_eq!(c.exact(0).unwrap().read_ts, 9);
    }

    #[test]
    fn write_ts_accounts_for_pending() {
        let mut c = VersionChain::new();
        c.insert_committed(4, v(1)).unwrap();
        assert_eq!(c.write_ts(), 4);
        c.install_pending(PendingVersion::stamped(TxnId(8), 8, v(2)));
        assert_eq!(c.write_ts(), 8);
        assert!(c.has_pending_older_than(9));
        assert!(!c.has_pending_older_than(8));
    }

    #[test]
    fn prune_keeps_watermark_visible_version() {
        let mut c = VersionChain::new();
        for n in [2, 4, 6, 8] {
            c.insert_committed(n, v(n * 10)).unwrap();
        }
        // watermark 5: snapshot at 5 reads version 4; versions 0 and 2 die.
        let removed = c.prune_below(5);
        assert_eq!(removed, 2);
        let nums: Vec<u64> = c.committed().iter().map(|x| x.number).collect();
        assert_eq!(nums, vec![4, 6, 8]);
        // reads at/above the watermark unaffected
        assert_eq!(c.at(5).unwrap().number, 4);
        assert_eq!(c.at(7).unwrap().number, 6);
        // reads below the watermark may now fail — that is the GC contract
        assert!(c.at(3).is_none());
    }

    #[test]
    fn prune_with_low_watermark_is_noop() {
        let mut c = VersionChain::new();
        c.insert_committed(5, v(1)).unwrap();
        assert_eq!(c.prune_below(0), 0);
        assert_eq!(c.committed_len(), 2);
    }

    #[test]
    fn prune_twice_is_idempotent() {
        let mut c = VersionChain::new();
        for n in [1, 2, 3] {
            c.insert_committed(n, v(n)).unwrap();
        }
        let first = c.prune_below(3);
        let second = c.prune_below(3);
        assert_eq!(first, 3);
        assert_eq!(second, 0);
        assert_eq!(c.committed_len(), 1);
    }

    #[test]
    fn prune_keep_recent_bounds_history() {
        let mut c = VersionChain::new();
        for n in [2, 4, 6, 8, 10] {
            c.insert_committed(n, v(n)).unwrap();
        }
        // watermark 9: visible set ≤ 9 is {0,2,4,6,8}; keep newest 3 of
        // those plus everything above the watermark.
        let removed = c.prune_keep_recent(9, 3);
        assert_eq!(removed, 2);
        let nums: Vec<u64> = c.committed().iter().map(|x| x.number).collect();
        assert_eq!(nums, vec![4, 6, 8, 10]);
        // time-travel reads within the kept window still work
        assert_eq!(c.at(7).unwrap().number, 6);
        assert_eq!(c.at(5).unwrap().number, 4);
        // below the kept window is gone
        assert!(c.at(3).is_none());
    }

    #[test]
    fn prune_keep_recent_one_equals_prune_below() {
        let mut a = VersionChain::new();
        let mut b = VersionChain::new();
        for n in [1, 3, 5, 7] {
            a.insert_committed(n, v(n)).unwrap();
            b.insert_committed(n, v(n)).unwrap();
        }
        assert_eq!(a.prune_below(6), b.prune_keep_recent(6, 1));
        let na: Vec<u64> = a.committed().iter().map(|x| x.number).collect();
        let nb: Vec<u64> = b.committed().iter().map(|x| x.number).collect();
        assert_eq!(na, nb);
    }

    #[test]
    fn prune_keep_recent_zero_clamps_to_one() {
        let mut c = VersionChain::new();
        c.insert_committed(5, v(5)).unwrap();
        c.prune_keep_recent(10, 0);
        assert_eq!(c.committed_len(), 1);
        assert_eq!(c.at(10).unwrap().number, 5);
    }

    #[test]
    fn payload_bytes_sums_versions() {
        let mut c = VersionChain::new();
        c.insert_committed(1, v(1)).unwrap(); // 8 bytes
        c.install_pending(PendingVersion::phi(TxnId(2), Value::from_str("abc"))); // 3
        assert_eq!(c.payload_bytes(), 11);
    }

    /// The maintained O(1) byte counter must agree with a full walk after
    /// every kind of mutation (it feeds the store's pressure gauge).
    #[test]
    fn payload_bytes_counter_tracks_every_mutation() {
        let walk = |c: &VersionChain| -> usize {
            c.committed()
                .iter()
                .map(|v| v.value.len())
                .chain(c.pending().iter().map(|p| p.value.len()))
                .sum()
        };
        let mut c = VersionChain::seeded(Value::from_str("seed"));
        assert_eq!(c.payload_bytes(), walk(&c));
        c.seed(Value::from_str("reseeded!"));
        assert_eq!(c.payload_bytes(), walk(&c));
        for n in [2, 4, 6, 8] {
            c.insert_committed(n, v(n)).unwrap();
            assert_eq!(c.payload_bytes(), walk(&c));
        }
        c.install_pending(PendingVersion::phi(TxnId(1), Value::from_str("abc")));
        c.install_pending(PendingVersion::phi(TxnId(1), Value::from_str("abcdef")));
        c.install_pending(PendingVersion::stamped(TxnId(2), 9, v(90)));
        assert_eq!(c.payload_bytes(), walk(&c));
        c.promote_pending(TxnId(2), None).unwrap();
        assert_eq!(c.payload_bytes(), walk(&c));
        c.discard_pending(TxnId(1));
        assert_eq!(c.payload_bytes(), walk(&c));
        c.prune_below(7);
        assert_eq!(c.payload_bytes(), walk(&c));
        c.prune_keep_recent(9, 1);
        assert_eq!(c.payload_bytes(), walk(&c));
        assert_eq!(c.payload_bytes(), c.latest().value.len());
    }
}
