//! Lock-free space-saving top-K sketch (Metwally et al., "Efficient
//! computation of frequent and top-k elements in data streams").
//!
//! Fixed memory, O(K) record, mergeable — the frequency-sketch sibling of
//! [`AtomicHistogram`](crate::AtomicHistogram), kept in `mvcc-storage`
//! (the lowest shared crate) so both the engine's observability layer and
//! the workload driver can use it. The engine feeds it contention events
//! (lock conflicts, validation failures, timestamp rejections, aborts)
//! keyed by object id or lock shard; [`TopKSketch::snapshot`] surfaces
//! the hottest keys with their contended nanoseconds and abort counts.
//!
//! The classic space-saving guarantees hold per key currently monitored
//! (single-writer; concurrent writers only widen the bound by in-flight
//! races):
//!
//! * **no undercount** — `estimate(k) ≥ true_count(k)`;
//! * **bounded overcount** — `estimate(k) ≤ true_count(k) + N/K` where
//!   `N` is the total number of recorded hits and `K` the capacity;
//! * **heavy hitters survive** — any key with `true_count(k) > N/K`
//!   occupies a slot.
//!
//! Eviction inherits the displaced slot's *hit* count (that is what the
//! bound rests on) but restarts the contended-ns and abort tallies, so
//! time attribution never migrates across unrelated keys.
//!
//! Every mutation is a CAS or relaxed RMW on plain atomics — no locks,
//! no unsafe — so a single-threaded (simulated) run is fully
//! deterministic: same input stream, same snapshot, byte for byte.

use std::sync::atomic::{AtomicU64, Ordering};

/// Reserved key meaning "slot unoccupied". Recording this key is remapped
/// to `EMPTY_KEY - 1` (object ids and shard indices never reach it).
const EMPTY_KEY: u64 = u64::MAX;

/// How many times a record retries its claim CAS before force-merging
/// into the current minimum slot. Only reachable under concurrent
/// eviction churn; the fallback trades a little accuracy for progress.
const CLAIM_RETRIES: usize = 4;

struct Slot {
    key: AtomicU64,
    hits: AtomicU64,
    contended_ns: AtomicU64,
    aborts: AtomicU64,
}

impl Slot {
    fn new() -> Self {
        Slot {
            key: AtomicU64::new(EMPTY_KEY),
            hits: AtomicU64::new(0),
            contended_ns: AtomicU64::new(0),
            aborts: AtomicU64::new(0),
        }
    }

    fn bump(&self, hits: u64, ns: u64, aborts: u64) {
        self.hits.fetch_add(hits, Ordering::Relaxed);
        self.contended_ns.fetch_add(ns, Ordering::Relaxed);
        self.aborts.fetch_add(aborts, Ordering::Relaxed);
    }
}

/// One surfaced key with its accumulated tallies.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SketchEntry {
    /// The recorded key (object id, lock shard, blocker token, …).
    pub key: u64,
    /// Estimated record count (space-saving bounds above).
    pub hits: u64,
    /// Total contended nanoseconds attributed to this key since it last
    /// entered the sketch.
    pub contended_ns: u64,
    /// Aborts attributed to this key since it last entered the sketch.
    pub aborts: u64,
}

/// Concurrent space-saving top-K sketch. See the module docs.
pub struct TopKSketch {
    slots: Box<[Slot]>,
    /// Total hits ever recorded (the `N` of the `N/K` error bound).
    total_hits: AtomicU64,
}

impl TopKSketch {
    /// A sketch monitoring at most `capacity` keys (clamped to ≥ 1).
    pub fn new(capacity: usize) -> Self {
        let capacity = capacity.max(1);
        TopKSketch {
            slots: (0..capacity).map(|_| Slot::new()).collect(),
            total_hits: AtomicU64::new(0),
        }
    }

    /// Monitored-key capacity (the `K` of the error bound).
    pub fn capacity(&self) -> usize {
        self.slots.len()
    }

    /// Total hits recorded since creation or the last [`reset`](Self::reset).
    pub fn total_hits(&self) -> u64 {
        self.total_hits.load(Ordering::Relaxed)
    }

    /// Record one occurrence of `key` carrying `ns` contended
    /// nanoseconds; `abort` additionally charges one abort to the key.
    pub fn record(&self, key: u64, ns: u64, abort: bool) {
        self.record_weighted(key, 1, ns, u64::from(abort));
    }

    /// Record `hits` occurrences of `key` at once (the merge path).
    pub fn record_weighted(&self, key: u64, hits: u64, ns: u64, aborts: u64) {
        if hits == 0 && ns == 0 && aborts == 0 {
            return;
        }
        let key = if key == EMPTY_KEY { EMPTY_KEY - 1 } else { key };
        self.total_hits.fetch_add(hits, Ordering::Relaxed);
        for _ in 0..CLAIM_RETRIES {
            // Pass 1: existing occupant or first empty slot, tracking the
            // minimum-hits occupant for the space-saving takeover.
            let mut empty = None;
            let mut min_idx = 0usize;
            let mut min_hits = u64::MAX;
            for (i, s) in self.slots.iter().enumerate() {
                match s.key.load(Ordering::Acquire) {
                    k if k == key => {
                        s.bump(hits, ns, aborts);
                        return;
                    }
                    EMPTY_KEY => {
                        if empty.is_none() {
                            empty = Some(i);
                        }
                    }
                    _ => {
                        let h = s.hits.load(Ordering::Relaxed);
                        if h < min_hits {
                            min_hits = h;
                            min_idx = i;
                        }
                    }
                }
            }
            if let Some(i) = empty {
                let s = &self.slots[i];
                if s.key
                    .compare_exchange(EMPTY_KEY, key, Ordering::AcqRel, Ordering::Acquire)
                    .is_ok()
                {
                    s.bump(hits, ns, aborts);
                    return;
                }
                continue; // lost the slot — the winner might even be `key`
            }
            // Pass 2: space-saving eviction of the minimum. The new key
            // inherits the displaced hit count (keeping `estimate ≥ true`
            // for the *evictor* while bounding its overcount by the
            // minimum, which is ≤ N/K); time and abort tallies restart.
            let s = &self.slots[min_idx];
            let old = s.key.load(Ordering::Acquire);
            if old != EMPTY_KEY
                && old != key
                && s.key
                    .compare_exchange(old, key, Ordering::AcqRel, Ordering::Acquire)
                    .is_ok()
            {
                s.contended_ns.store(ns, Ordering::Relaxed);
                s.aborts.store(aborts, Ordering::Relaxed);
                s.hits.fetch_add(hits, Ordering::Relaxed);
                return;
            }
        }
        // Contention fallback: merge into whatever currently holds the
        // minimum so the record is never lost outright.
        let mut min_idx = 0usize;
        let mut min_hits = u64::MAX;
        for (i, s) in self.slots.iter().enumerate() {
            let h = s.hits.load(Ordering::Relaxed);
            if h < min_hits {
                min_hits = h;
                min_idx = i;
            }
        }
        self.slots[min_idx].bump(hits, ns, aborts);
    }

    /// Current estimate for `key`, if monitored.
    pub fn estimate(&self, key: u64) -> Option<u64> {
        let mut total = None;
        for s in &self.slots {
            if s.key.load(Ordering::Acquire) == key {
                *total.get_or_insert(0) += s.hits.load(Ordering::Relaxed);
            }
        }
        total
    }

    /// Snapshot the monitored keys, duplicates merged (concurrent inserts
    /// of one new key can transiently occupy two slots), sorted hottest
    /// first: by contended-ns, then hits, then key — a total order, so
    /// identical contents always snapshot identically.
    pub fn snapshot(&self) -> Vec<SketchEntry> {
        let mut out: Vec<SketchEntry> = Vec::with_capacity(self.slots.len());
        for s in &self.slots {
            let key = s.key.load(Ordering::Acquire);
            if key == EMPTY_KEY {
                continue;
            }
            let e = SketchEntry {
                key,
                hits: s.hits.load(Ordering::Relaxed),
                contended_ns: s.contended_ns.load(Ordering::Relaxed),
                aborts: s.aborts.load(Ordering::Relaxed),
            };
            match out.iter_mut().find(|x| x.key == key) {
                Some(x) => {
                    x.hits += e.hits;
                    x.contended_ns += e.contended_ns;
                    x.aborts += e.aborts;
                }
                None => out.push(e),
            }
        }
        out.sort_by(|a, b| {
            b.contended_ns
                .cmp(&a.contended_ns)
                .then(b.hits.cmp(&a.hits))
                .then(a.key.cmp(&b.key))
        });
        out
    }

    /// The `n` hottest entries (see [`snapshot`](Self::snapshot) for the
    /// order).
    pub fn top(&self, n: usize) -> Vec<SketchEntry> {
        let mut v = self.snapshot();
        v.truncate(n);
        v
    }

    /// Fold another sketch into this one. Entries are replayed hottest
    /// first in the other sketch's snapshot order — a deterministic
    /// sequence, so merging identical inputs yields identical results.
    pub fn merge(&self, other: &TopKSketch) {
        for e in other.snapshot() {
            self.record_weighted(e.key, e.hits, e.contended_ns, e.aborts);
        }
    }

    /// Reset to empty (between experiment phases; not linearizable with
    /// concurrent writers — same caveat as [`AtomicHistogram::reset`]
    /// (crate::AtomicHistogram::reset)).
    pub fn reset(&self) {
        for s in &self.slots {
            s.key.store(EMPTY_KEY, Ordering::Release);
            s.hits.store(0, Ordering::Relaxed);
            s.contended_ns.store(0, Ordering::Relaxed);
            s.aborts.store(0, Ordering::Relaxed);
        }
        self.total_hits.store(0, Ordering::Relaxed);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn records_and_surfaces_tallies() {
        let s = TopKSketch::new(4);
        s.record(7, 100, false);
        s.record(7, 50, true);
        s.record(9, 10, false);
        let snap = s.snapshot();
        assert_eq!(snap.len(), 2);
        assert_eq!(snap[0].key, 7);
        assert_eq!(snap[0].hits, 2);
        assert_eq!(snap[0].contended_ns, 150);
        assert_eq!(snap[0].aborts, 1);
        assert_eq!(snap[1].key, 9);
        assert_eq!(s.total_hits(), 3);
        assert_eq!(s.estimate(7), Some(2));
        assert_eq!(s.estimate(42), None);
    }

    #[test]
    fn eviction_inherits_hits_but_not_time() {
        let s = TopKSketch::new(2);
        for _ in 0..5 {
            s.record(1, 10, false);
        }
        s.record(2, 10, false);
        // Key 3 evicts the minimum (key 2, 1 hit): inherits its hit
        // count (+1) but starts its own ns/abort tallies.
        s.record(3, 77, true);
        let snap = s.snapshot();
        let three = snap.iter().find(|e| e.key == 3).expect("3 monitored");
        assert_eq!(three.hits, 2, "inherited min + own");
        assert_eq!(three.contended_ns, 77, "time does not migrate");
        assert_eq!(three.aborts, 1);
        assert!(s.estimate(2).is_none(), "min was evicted");
    }

    #[test]
    fn heavy_hitter_survives_churn() {
        let s = TopKSketch::new(4);
        for i in 0..200u64 {
            s.record(1000, 5, false); // the heavy key, every other record
            s.record(i, 1, false); // 200 distinct light keys
        }
        let est = s.estimate(1000).expect("heavy hitter must be monitored");
        assert!(est >= 200, "no undercount: {est}");
        let n = s.total_hits();
        let k = s.capacity() as u64;
        assert!(est <= 200 + n / k, "overcount above N/K: {est}");
        assert_eq!(s.top(1)[0].key, 1000);
    }

    #[test]
    fn merge_accumulates_and_reset_clears() {
        let a = TopKSketch::new(4);
        let b = TopKSketch::new(4);
        a.record(1, 10, false);
        b.record(1, 20, true);
        b.record(2, 5, false);
        a.merge(&b);
        assert_eq!(a.estimate(1), Some(2));
        let snap = a.snapshot();
        assert_eq!(snap[0].key, 1);
        assert_eq!(snap[0].contended_ns, 30);
        assert_eq!(snap[0].aborts, 1);
        a.reset();
        assert!(a.snapshot().is_empty());
        assert_eq!(a.total_hits(), 0);
    }

    #[test]
    fn reserved_key_is_remapped() {
        let s = TopKSketch::new(2);
        s.record(u64::MAX, 1, false);
        let snap = s.snapshot();
        assert_eq!(snap.len(), 1);
        assert_eq!(snap[0].key, u64::MAX - 1);
    }

    #[test]
    fn concurrent_records_never_lose_time() {
        use std::sync::Arc;
        let s = Arc::new(TopKSketch::new(8));
        let mut handles = Vec::new();
        for t in 0..4u64 {
            let s = Arc::clone(&s);
            handles.push(std::thread::spawn(move || {
                for i in 0..1000u64 {
                    s.record(t * 3 + i % 3, 1, false);
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(s.total_hits(), 4000);
        // ns accounting is conserved: every record carried 1 ns.
        let total_ns: u64 = s.snapshot().iter().map(|e| e.contended_ns).sum();
        assert!(total_ns <= 4000);
        assert!(total_ns > 0);
    }
}
