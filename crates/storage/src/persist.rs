//! Checkpointing: persist a transaction-consistent snapshot of the store.
//!
//! The paper's opening sentence — "multiple versions of data are used in
//! database systems to support transaction and system recovery" — is the
//! original purpose version control piggybacks on. This module closes
//! that loop: because `vtnc` identifies a prefix of the serial order
//! whose effects are fully committed, the versions with numbers
//! `≤ vtnc` form a **transaction-consistent** snapshot that can be
//! written out while read-write traffic continues (a checkpoint is just
//! one more reader of old versions). Restoring yields a store whose
//! every object carries the value that snapshot saw, and the version
//! counters resume above the checkpoint watermark.
//!
//! Format (little-endian, versioned magic):
//!
//! ```text
//! "MVDBCKP2" | watermark u64 | object count u64 |
//!   per object: id u64 | version count u64 |
//!     per version: number u64 | payload length u64 | payload bytes
//! | crc32 u32                      (over everything after the magic)
//! ```
//!
//! Writers emit v2; readers accept v1 (`MVDBCKP1`, identical body, no
//! trailer) for logs written before the CRC hardening. A v2 checkpoint
//! whose trailer does not match fails `restore` with `InvalidData`
//! instead of silently rebuilding a bit-flipped store, and any
//! checkpoint carrying a version numbered above its own watermark is
//! rejected the same way — such a file is internally inconsistent no
//! matter how it was produced.

use crate::store::MvStore;
use crate::value::Value;
use crate::wal::Crc32;
use crate::VersionNo;
use mvcc_model::ObjectId;
use std::io::{self, Read, Write};

const MAGIC_V1: &[u8; 8] = b"MVDBCKP1";
const MAGIC_V2: &[u8; 8] = b"MVDBCKP2";

/// Largest single value payload `restore` will believe. Guards against a
/// corrupt length field turning into a giant allocation before the CRC
/// trailer gets a chance to catch the corruption.
const MAX_VALUE_LEN: u64 = 64 << 20;

/// `Write` adapter folding every byte into a CRC32 accumulator.
struct Crc32Writer<W> {
    inner: W,
    crc: Crc32,
}

impl<W: Write> Write for Crc32Writer<W> {
    fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
        let n = self.inner.write(buf)?;
        self.crc.update(&buf[..n]);
        Ok(n)
    }
    fn flush(&mut self) -> io::Result<()> {
        self.inner.flush()
    }
}

/// `Read` adapter folding every byte read into a CRC32 accumulator.
struct Crc32Reader<R> {
    inner: R,
    crc: Crc32,
}

impl<R: Read> Read for Crc32Reader<R> {
    fn read(&mut self, buf: &mut [u8]) -> io::Result<usize> {
        let n = self.inner.read(buf)?;
        self.crc.update(&buf[..n]);
        Ok(n)
    }
}

/// Summary of a checkpoint write.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CheckpointStats {
    /// Snapshot watermark (the `vtnc` the checkpoint is consistent at).
    pub watermark: VersionNo,
    /// Objects written.
    pub objects: usize,
    /// Versions written.
    pub versions: usize,
    /// Payload bytes written (excluding framing).
    pub payload_bytes: usize,
}

fn put_u64(w: &mut impl Write, v: u64) -> io::Result<()> {
    w.write_all(&v.to_le_bytes())
}

fn get_u64(r: &mut impl Read) -> io::Result<u64> {
    let mut buf = [0u8; 8];
    r.read_exact(&mut buf)?;
    Ok(u64::from_le_bytes(buf))
}

impl MvStore {
    /// Write every committed version with number `≤ watermark` to `w`.
    ///
    /// Safe to run concurrently with writers: only committed versions at
    /// or below the watermark are read, and those are immutable. The
    /// caller should pass a watermark no larger than the current `vtnc`
    /// and must ensure GC does not prune below it during the write (the
    /// engine registers the checkpoint like a read-only transaction).
    pub fn checkpoint(
        &self,
        w: &mut impl Write,
        watermark: VersionNo,
    ) -> io::Result<CheckpointStats> {
        let objects = self.objects();
        w.write_all(MAGIC_V2)?;
        let mut cw = Crc32Writer {
            inner: w,
            crc: Crc32::new(),
        };
        put_u64(&mut cw, watermark)?;
        put_u64(&mut cw, objects.len() as u64)?;
        let mut stats = CheckpointStats {
            watermark,
            objects: 0,
            versions: 0,
            payload_bytes: 0,
        };
        for obj in objects {
            // Copy the relevant versions out under the chain lock, then
            // write without holding it.
            let versions: Vec<(VersionNo, Value)> = self.with(obj, |c| {
                c.committed()
                    .iter()
                    .filter(|v| v.number <= watermark)
                    .map(|v| (v.number, v.value.clone()))
                    .collect()
            });
            put_u64(&mut cw, obj.get())?;
            put_u64(&mut cw, versions.len() as u64)?;
            for (number, value) in versions {
                put_u64(&mut cw, number)?;
                put_u64(&mut cw, value.len() as u64)?;
                cw.write_all(value.as_bytes())?;
                stats.versions += 1;
                stats.payload_bytes += value.len();
            }
            stats.objects += 1;
        }
        let crc = cw.crc.finish();
        let w = cw.inner;
        w.write_all(&crc.to_le_bytes())?;
        w.flush()?;
        Ok(stats)
    }

    /// Read a checkpoint into a fresh store. Returns the store and the
    /// watermark it is consistent at (the restored `vtnc`).
    pub fn restore(r: &mut impl Read) -> io::Result<(MvStore, VersionNo)> {
        let mut magic = [0u8; 8];
        r.read_exact(&mut magic)?;
        match &magic {
            m if m == MAGIC_V1 => Self::restore_body(r),
            m if m == MAGIC_V2 => {
                let mut cr = Crc32Reader {
                    inner: r,
                    crc: Crc32::new(),
                };
                let result = Self::restore_body(&mut cr)?;
                let computed = cr.crc.finish();
                let mut trailer = [0u8; 4];
                cr.inner.read_exact(&mut trailer)?;
                if computed != u32::from_le_bytes(trailer) {
                    return Err(io::Error::new(
                        io::ErrorKind::InvalidData,
                        "checkpoint crc mismatch (corrupt file)",
                    ));
                }
                Ok(result)
            }
            _ => Err(io::Error::new(
                io::ErrorKind::InvalidData,
                "not an mvdb checkpoint (bad magic)",
            )),
        }
    }

    fn restore_body(r: &mut impl Read) -> io::Result<(MvStore, VersionNo)> {
        let watermark = get_u64(r)?;
        let n_objects = get_u64(r)?;
        let store = MvStore::new();
        for _ in 0..n_objects {
            let obj = ObjectId(get_u64(r)?);
            let n_versions = get_u64(r)?;
            store.with(obj, |c| -> io::Result<()> {
                for _ in 0..n_versions {
                    let number = get_u64(r)?;
                    let len = get_u64(r)?;
                    if len > MAX_VALUE_LEN {
                        return Err(io::Error::new(
                            io::ErrorKind::InvalidData,
                            "implausible value length (corrupt checkpoint)",
                        ));
                    }
                    let len = len as usize;
                    if number > watermark {
                        // A checkpoint is by definition consistent at its
                        // watermark; a version above it means the file is
                        // corrupt or was never a valid checkpoint.
                        return Err(io::Error::new(
                            io::ErrorKind::InvalidData,
                            format!(
                                "checkpoint contains version {number} above \
                                 its watermark {watermark}"
                            ),
                        ));
                    }
                    let mut payload = vec![0u8; len];
                    r.read_exact(&mut payload)?;
                    if number == 0 {
                        c.seed(Value::from_bytes(payload));
                    } else {
                        c.insert_committed(number, Value::from_bytes(payload))
                            .map_err(|e| {
                                io::Error::new(io::ErrorKind::InvalidData, e.to_string())
                            })?;
                    }
                }
                Ok(())
            })?;
        }
        Ok((store, watermark))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn obj(n: u64) -> ObjectId {
        ObjectId(n)
    }

    #[test]
    fn round_trip_preserves_snapshot() {
        let store = MvStore::new();
        store.seed(obj(1), Value::from_u64(10));
        store.with(obj(1), |c| {
            c.insert_committed(3, Value::from_u64(30)).unwrap()
        });
        store.with(obj(2), |c| {
            c.insert_committed(5, Value::from_u64(50)).unwrap()
        });
        // version above the watermark — must NOT be checkpointed
        store.with(obj(1), |c| {
            c.insert_committed(9, Value::from_u64(90)).unwrap()
        });

        let mut buf = Vec::new();
        let stats = store.checkpoint(&mut buf, 5).unwrap();
        assert_eq!(stats.watermark, 5);
        assert_eq!(stats.objects, 2);
        assert_eq!(stats.versions, 4); // 1: {0,3}, 2: {0,5}

        let (restored, watermark) = MvStore::restore(&mut buf.as_slice()).unwrap();
        assert_eq!(watermark, 5);
        assert_eq!(
            restored.read_at(obj(1), 5).unwrap(),
            (3, Value::from_u64(30))
        );
        assert_eq!(restored.read_at(obj(1), 2).unwrap().0, 0);
        assert_eq!(
            restored.read_at(obj(2), 5).unwrap(),
            (5, Value::from_u64(50))
        );
        // the post-watermark version is gone
        assert_eq!(restored.read_latest(obj(1)).0, 3);
    }

    #[test]
    fn pending_versions_never_checkpointed() {
        use crate::version::PendingVersion;
        use mvcc_model::TxnId;
        let store = MvStore::new();
        store.with(obj(1), |c| {
            c.install_pending(PendingVersion::stamped(TxnId(2), 2, Value::from_u64(2)))
        });
        let mut buf = Vec::new();
        let stats = store.checkpoint(&mut buf, 10).unwrap();
        assert_eq!(stats.versions, 1); // just the initial version
        let (restored, _) = MvStore::restore(&mut buf.as_slice()).unwrap();
        restored.with(obj(1), |c| assert_eq!(c.pending_len(), 0));
    }

    #[test]
    fn bad_magic_rejected() {
        let bytes = b"NOTADUMPxxxxxxxxxxxxxxxx".to_vec();
        let err = MvStore::restore(&mut bytes.as_slice()).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
    }

    #[test]
    fn truncated_input_errors() {
        let store = MvStore::new();
        store.seed(obj(1), Value::from_u64(1));
        let mut buf = Vec::new();
        store.checkpoint(&mut buf, 1).unwrap();
        buf.truncate(buf.len() - 3);
        assert!(MvStore::restore(&mut buf.as_slice()).is_err());
    }

    /// Build checkpoint bytes by hand (used to craft v1 and corrupt files).
    fn raw_checkpoint(magic: &[u8; 8], watermark: u64, versions: &[(u64, u64, u64)]) -> Vec<u8> {
        // versions: (object, number, value) — one object per entry.
        let mut body = Vec::new();
        put_u64(&mut body, watermark).unwrap();
        put_u64(&mut body, versions.len() as u64).unwrap();
        for &(object, number, value) in versions {
            put_u64(&mut body, object).unwrap();
            put_u64(&mut body, 1).unwrap();
            put_u64(&mut body, number).unwrap();
            let payload = Value::from_u64(value);
            put_u64(&mut body, payload.len() as u64).unwrap();
            body.extend_from_slice(payload.as_bytes());
        }
        let mut out = magic.to_vec();
        out.extend_from_slice(&body);
        if magic == MAGIC_V2 {
            out.extend_from_slice(&crate::wal::crc32(&body).to_le_bytes());
        }
        out
    }

    #[test]
    fn v1_checkpoints_still_restore() {
        let bytes = raw_checkpoint(MAGIC_V1, 7, &[(1, 3, 30), (2, 7, 70)]);
        let (restored, watermark) = MvStore::restore(&mut bytes.as_slice()).unwrap();
        assert_eq!(watermark, 7);
        assert_eq!(restored.read_at(obj(1), 7).unwrap().1.as_u64(), Some(30));
        assert_eq!(restored.read_at(obj(2), 7).unwrap().1.as_u64(), Some(70));
    }

    #[test]
    fn bit_flip_fails_crc() {
        let store = MvStore::new();
        store.seed(obj(1), Value::from_u64(10));
        store.with(obj(2), |c| {
            c.insert_committed(4, Value::from_u64(40)).unwrap()
        });
        let mut buf = Vec::new();
        store.checkpoint(&mut buf, 4).unwrap();
        assert!(buf.starts_with(MAGIC_V2));
        // Flip one bit somewhere in every body/trailer byte: each must be
        // caught — either by the CRC trailer or by a structural check.
        for pos in 8..buf.len() {
            let mut corrupt = buf.clone();
            corrupt[pos] ^= 0x04;
            assert!(
                MvStore::restore(&mut corrupt.as_slice()).is_err(),
                "bit flip at byte {pos} restored silently"
            );
        }
        // The pristine file still restores.
        assert!(MvStore::restore(&mut buf.as_slice()).is_ok());
    }

    #[test]
    fn version_above_watermark_rejected() {
        for magic in [MAGIC_V1, MAGIC_V2] {
            let bytes = raw_checkpoint(magic, 5, &[(1, 3, 30), (2, 9, 90)]);
            let err = MvStore::restore(&mut bytes.as_slice()).unwrap_err();
            assert_eq!(err.kind(), io::ErrorKind::InvalidData);
            assert!(
                err.to_string().contains("above"),
                "wrong error for inconsistent checkpoint: {err}"
            );
        }
    }

    #[test]
    fn empty_store_round_trips() {
        let store = MvStore::new();
        let mut buf = Vec::new();
        let stats = store.checkpoint(&mut buf, 0).unwrap();
        assert_eq!(stats.objects, 0);
        let (restored, watermark) = MvStore::restore(&mut buf.as_slice()).unwrap();
        assert_eq!(watermark, 0);
        assert!(restored.objects().is_empty());
    }
}
