//! Version records: committed versions and pending ("version φ") writes.

use crate::value::Value;
use crate::VersionNo;
use mvcc_model::TxnId;

/// A committed version of an object.
///
/// `number` is the transaction number of the creator — the paper's
/// convention that version numbers "correspond to the transaction number
/// of the transaction that wrote that version" (Section 3.2) — and chains
/// keep committed versions sorted by it.
///
/// `read_ts` is the per-version read timestamp used by timestamp-based
/// protocols: the paper's TO integration tracks it on the most recent
/// version only (Figure 3), while Reed's original MVTO (the baseline)
/// tracks it on every version. It is bookkeeping, not payload.
#[derive(Clone, Debug)]
pub struct CommittedVersion {
    /// Version number = creator's transaction number.
    pub number: VersionNo,
    /// Payload.
    pub value: Value,
    /// Largest transaction number that has read this version (0 if none).
    pub read_ts: VersionNo,
}

impl CommittedVersion {
    /// A fresh committed version with no readers yet.
    pub fn new(number: VersionNo, value: Value) -> Self {
        CommittedVersion {
            number,
            value,
            read_ts: 0,
        }
    }
}

/// An uncommitted version installed by an in-flight read-write transaction.
///
/// Under 2PL this is the paper's "version φ" (Figure 4): the writer holds
/// an exclusive lock, has no transaction number yet, and the version is
/// stamped at commit after `VCregister`. Under timestamp ordering the
/// writer's number is already known, recorded in `reserved_number`, and
/// younger readers block on it (Figure 3).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct PendingVersion {
    /// The transaction that installed this version.
    pub writer: TxnId,
    /// The version number it will take if committed (`Some` under TO,
    /// `None` = φ under 2PL where the number is assigned at the lock
    /// point).
    pub reserved_number: Option<VersionNo>,
    /// Payload.
    pub value: Value,
}

impl PendingVersion {
    /// Pending write with an a-priori number (timestamp ordering).
    pub fn stamped(writer: TxnId, number: VersionNo, value: Value) -> Self {
        PendingVersion {
            writer,
            reserved_number: Some(number),
            value,
        }
    }

    /// Pending write with no number yet ("version φ", two-phase locking).
    pub fn phi(writer: TxnId, value: Value) -> Self {
        PendingVersion {
            writer,
            reserved_number: None,
            value,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constructors() {
        let p = PendingVersion::stamped(TxnId(3), 3, Value::from_u64(1));
        assert_eq!(p.reserved_number, Some(3));
        let q = PendingVersion::phi(TxnId(4), Value::empty());
        assert_eq!(q.reserved_number, None);
        assert_eq!(q.writer, TxnId(4));
    }

    #[test]
    fn fresh_committed_version_has_no_readers() {
        let v = CommittedVersion::new(7, Value::from_u64(9));
        assert_eq!(v.number, 7);
        assert_eq!(v.read_ts, 0);
        assert_eq!(v.value.as_u64(), Some(9));
    }
}
