//! Storage statistics.

use std::fmt;

/// Aggregate counters over every chain in a store, produced by
/// [`crate::MvStore::stats`]. Used by the garbage-collection experiment
/// (E9) to report versions retained under different watermark policies.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct StoreStats {
    /// Objects with a materialized chain.
    pub objects: usize,
    /// Total committed versions across chains.
    pub committed_versions: usize,
    /// Total pending (uncommitted) versions across chains.
    pub pending_versions: usize,
    /// Total payload bytes across all versions.
    pub payload_bytes: usize,
}

impl StoreStats {
    /// Mean committed versions per object (0 for an empty store).
    pub fn versions_per_object(&self) -> f64 {
        if self.objects == 0 {
            0.0
        } else {
            self.committed_versions as f64 / self.objects as f64
        }
    }
}

impl fmt::Display for StoreStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} objects, {} committed versions ({:.2}/object), {} pending, {} payload bytes",
            self.objects,
            self.committed_versions,
            self.versions_per_object(),
            self.pending_versions,
            self.payload_bytes
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn versions_per_object_handles_empty() {
        assert_eq!(StoreStats::default().versions_per_object(), 0.0);
    }

    #[test]
    fn versions_per_object_mean() {
        let s = StoreStats {
            objects: 4,
            committed_versions: 10,
            ..Default::default()
        };
        assert!((s.versions_per_object() - 2.5).abs() < 1e-9);
    }

    #[test]
    fn display_mentions_all_fields() {
        let s = StoreStats {
            objects: 1,
            committed_versions: 2,
            pending_versions: 3,
            payload_bytes: 4,
        };
        let out = s.to_string();
        for needle in ["1 objects", "2 committed", "3 pending", "4 payload"] {
            assert!(out.contains(needle), "missing {needle} in {out}");
        }
    }
}
