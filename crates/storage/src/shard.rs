//! Shard-count and shard-index helpers shared by every sharded structure
//! in the engine (the store's chain map, the 2PL lock table, the GC
//! snapshot slots).
//!
//! Shard counts are always rounded **up** to a power of two so the index
//! computation is a multiply + shift + mask — no division on the hot
//! path. The hash is Fibonacci (multiply by 2⁶⁴/φ): sequential keys, the
//! common case for benchmark object ids and slot counters, spread evenly
//! across shards. The index is taken from the *high* bits of the product,
//! where the Fibonacci multiply concentrates its mixing.

/// Round a requested shard count up to the nearest power of two (min 1).
///
/// ```
/// use mvcc_storage::shard;
/// assert_eq!(shard::pow2_shards(0), 1);
/// assert_eq!(shard::pow2_shards(1), 1);
/// assert_eq!(shard::pow2_shards(5), 8);
/// assert_eq!(shard::pow2_shards(64), 64);
/// ```
pub fn pow2_shards(n: usize) -> usize {
    n.max(1).next_power_of_two()
}

/// Multiplicative constant: ⌊2⁶⁴ / φ⌋, the Fibonacci hashing multiplier.
const FIB: u64 = 0x9E37_79B9_7F4A_7C15;

/// Map `key` to a shard index in `[0, n_shards)`.
///
/// `n_shards` must be a power of two (use [`pow2_shards`]); the index is
/// the high 32 bits of the Fibonacci product masked down, so it costs one
/// multiply, one shift and one AND — no modulo.
#[inline]
pub fn shard_index(key: u64, n_shards: usize) -> usize {
    debug_assert!(n_shards.is_power_of_two(), "shard count must be 2^k");
    let h = key.wrapping_mul(FIB);
    ((h >> 32) as usize) & (n_shards - 1)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pow2_rounds_up() {
        assert_eq!(pow2_shards(0), 1);
        assert_eq!(pow2_shards(1), 1);
        assert_eq!(pow2_shards(2), 2);
        assert_eq!(pow2_shards(3), 4);
        assert_eq!(pow2_shards(63), 64);
        assert_eq!(pow2_shards(64), 64);
        assert_eq!(pow2_shards(65), 128);
    }

    #[test]
    fn index_in_range_for_all_counts() {
        for shards in [1usize, 2, 4, 8, 64, 256] {
            for key in 0..1000u64 {
                assert!(shard_index(key, shards) < shards);
            }
        }
    }

    #[test]
    fn sequential_keys_spread_across_shards() {
        let shards = 16;
        let mut hits = vec![0u32; shards];
        for key in 0..1600u64 {
            hits[shard_index(key, shards)] += 1;
        }
        // Fibonacci hashing on sequential keys is near-uniform; allow 2x
        // imbalance to keep the test robust.
        for (i, &h) in hits.iter().enumerate() {
            assert!(h > 0, "shard {i} never hit");
            assert!(h < 200, "shard {i} got {h}/1600");
        }
    }

    #[test]
    fn single_shard_always_zero() {
        for key in 0..100u64 {
            assert_eq!(shard_index(key, 1), 0);
        }
    }
}
