//! Write-ahead log: CRC-framed, length-prefixed commit records.
//!
//! The paper's opening motivation — versions exist "to support
//! transaction and system recovery" — needs one more ingredient the
//! in-memory store cannot provide: a commit must survive the process.
//! This module is that ingredient, shaped the way Hekaton shapes it for
//! MVCC engines: the *only* thing logged is the durable image of a
//! committed transaction (`tn` + writeset), appended **before**
//! `VCcomplete` makes the transaction visible. Undo logging is
//! unnecessary — uncommitted versions live only in volatile memory, so a
//! crash discards them for free — and replay is pure redo in transaction-
//! number order.
//!
//! On-disk format (little-endian):
//!
//! ```text
//! file   := "MVDBWAL1" frame*
//! frame  := len u32 | crc32 u32 | payload (len bytes)      crc is over payload
//! payload:= tn u64 | count u32 | { obj u64 | vlen u32 | value bytes }*
//! ```
//!
//! A reader ([`scan`]) accepts the longest prefix of intact frames and
//! stops — without error — at the first torn or corrupt one: a crash in
//! the middle of an append tears only the final frame, and the frames
//! before it are exactly the transactions whose commits were durable.
//! Because a transaction appends *after* all of its reads (and a writer
//! applies its updates to the store only after its own append), any
//! transaction whose writes another surviving transaction observed
//! appears earlier in the file — a file prefix is therefore always
//! closed under read-from dependencies, i.e. transaction-consistent.
//!
//! The writer supports group commit: under [`FsyncPolicy::EveryN`],
//! `n` consecutive appends share one `sync`, trading the tail of the
//! log (at most `n − 1` acknowledged-but-unsynced commits) for an
//! `n`-fold reduction in sync calls. [`FsyncPolicy::Always`] syncs every
//! record; [`FsyncPolicy::Never`] leaves durability to the operating
//! system entirely.

use crate::store::MvStore;
use crate::value::Value;
use mvcc_model::ObjectId;
use std::io::{self, Write};

/// Magic header identifying a WAL stream.
pub const WAL_MAGIC: &[u8; 8] = b"MVDBWAL1";

/// Largest frame payload we will believe while scanning (guards the
/// reader against interpreting corrupt length fields as huge allocations).
const MAX_FRAME_LEN: u32 = 64 << 20;

// ---- CRC32 (IEEE 802.3, the zlib polynomial) ------------------------------

const fn crc32_table() -> [u32; 256] {
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let mut c = i as u32;
        let mut k = 0;
        while k < 8 {
            c = if c & 1 != 0 {
                0xEDB8_8320 ^ (c >> 1)
            } else {
                c >> 1
            };
            k += 1;
        }
        table[i] = c;
        i += 1;
    }
    table
}

static CRC_TABLE: [u32; 256] = crc32_table();

/// Incremental CRC32 (IEEE). Also used by the checkpoint trailer in
/// [`crate::persist`].
#[derive(Debug, Clone, Copy)]
pub struct Crc32(u32);

impl Default for Crc32 {
    fn default() -> Self {
        Self::new()
    }
}

impl Crc32 {
    /// Fresh accumulator.
    pub fn new() -> Self {
        Crc32(0xFFFF_FFFF)
    }

    /// Fold `data` into the running checksum.
    pub fn update(&mut self, data: &[u8]) {
        let mut c = self.0;
        for &b in data {
            c = CRC_TABLE[((c ^ b as u32) & 0xFF) as usize] ^ (c >> 8);
        }
        self.0 = c;
    }

    /// The final checksum value.
    pub fn finish(self) -> u32 {
        self.0 ^ 0xFFFF_FFFF
    }
}

/// One-shot CRC32 of a byte slice.
pub fn crc32(data: &[u8]) -> u32 {
    let mut c = Crc32::new();
    c.update(data);
    c.finish()
}

// ---- sinks ----------------------------------------------------------------

/// The durable medium a WAL writes to: append-only plus `sync` (make
/// everything appended so far durable) and `truncate_to` (rewind after a
/// failed append so garbage never precedes good records).
pub trait WalSink: Send {
    /// Append `buf` at the end of the log.
    fn append(&mut self, buf: &[u8]) -> io::Result<()>;
    /// Make every appended byte durable (`fsync`).
    fn sync(&mut self) -> io::Result<()>;
    /// Discard everything after the first `len` bytes.
    fn truncate_to(&mut self, len: u64) -> io::Result<()>;
}

impl WalSink for Box<dyn WalSink> {
    fn append(&mut self, buf: &[u8]) -> io::Result<()> {
        (**self).append(buf)
    }
    fn sync(&mut self) -> io::Result<()> {
        (**self).sync()
    }
    fn truncate_to(&mut self, len: u64) -> io::Result<()> {
        (**self).truncate_to(len)
    }
}

/// [`WalSink`] over a real file. `sync` maps to `sync_data`.
pub struct FileSink(std::fs::File);

impl FileSink {
    /// Create (truncating) a log file at `path`.
    pub fn create(path: &std::path::Path) -> io::Result<Self> {
        Ok(FileSink(
            std::fs::OpenOptions::new()
                .create(true)
                .write(true)
                .truncate(true)
                .open(path)?,
        ))
    }
}

impl WalSink for FileSink {
    fn append(&mut self, buf: &[u8]) -> io::Result<()> {
        self.0.write_all(buf)
    }
    fn sync(&mut self) -> io::Result<()> {
        self.0.sync_data()
    }
    fn truncate_to(&mut self, len: u64) -> io::Result<()> {
        use std::io::Seek;
        self.0.set_len(len)?;
        self.0.seek(io::SeekFrom::Start(len)).map(|_| ())
    }
}

#[derive(Default)]
struct MemWalInner {
    data: Vec<u8>,
    durable: usize,
}

/// An in-memory [`WalSink`] with an explicit durability horizon, for
/// tests and experiments. Cloning shares the buffer, so a test can keep
/// a handle while the engine owns the sink, then "crash" by reading the
/// bytes back and recovering from any prefix.
#[derive(Clone, Default)]
pub struct MemWal(std::sync::Arc<parking_lot::Mutex<MemWalInner>>);

impl MemWal {
    /// Fresh empty buffer.
    pub fn new() -> Self {
        Self::default()
    }

    /// Every byte appended so far (durable or not) — what a crash *may*
    /// leave behind, up to torn tails.
    pub fn bytes(&self) -> Vec<u8> {
        self.0.lock().data.clone()
    }

    /// Only the bytes covered by a completed `sync` — what a crash is
    /// *guaranteed* to leave behind.
    pub fn durable_bytes(&self) -> Vec<u8> {
        let inner = self.0.lock();
        inner.data[..inner.durable].to_vec()
    }

    /// Total appended length.
    pub fn len(&self) -> usize {
        self.0.lock().data.len()
    }

    /// Whether nothing has been appended.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

impl WalSink for MemWal {
    fn append(&mut self, buf: &[u8]) -> io::Result<()> {
        self.0.lock().data.extend_from_slice(buf);
        Ok(())
    }
    fn sync(&mut self) -> io::Result<()> {
        let mut inner = self.0.lock();
        inner.durable = inner.data.len();
        Ok(())
    }
    fn truncate_to(&mut self, len: u64) -> io::Result<()> {
        let mut inner = self.0.lock();
        let len = len as usize;
        inner.data.truncate(len);
        inner.durable = inner.durable.min(len);
        Ok(())
    }
}

// ---- records --------------------------------------------------------------

/// A decoded commit record: the transaction number and its writeset.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CommitRecord {
    /// The committing transaction's number (= version number of every
    /// write).
    pub tn: u64,
    /// The writeset, one entry per object (last write wins upstream).
    pub writes: Vec<(ObjectId, Value)>,
}

/// Encode a commit payload (no frame header).
fn encode_payload(tn: u64, writes: &[(ObjectId, Value)]) -> Vec<u8> {
    let mut payload =
        Vec::with_capacity(12 + writes.iter().map(|(_, v)| 12 + v.len()).sum::<usize>());
    payload.extend_from_slice(&tn.to_le_bytes());
    payload.extend_from_slice(&(writes.len() as u32).to_le_bytes());
    for (obj, value) in writes {
        payload.extend_from_slice(&obj.get().to_le_bytes());
        payload.extend_from_slice(&(value.len() as u32).to_le_bytes());
        payload.extend_from_slice(value.as_bytes());
    }
    payload
}

/// Encode a full frame: `len | crc | payload`.
pub fn encode_frame(tn: u64, writes: &[(ObjectId, Value)]) -> Vec<u8> {
    let payload = encode_payload(tn, writes);
    let mut frame = Vec::with_capacity(8 + payload.len());
    frame.extend_from_slice(&(payload.len() as u32).to_le_bytes());
    frame.extend_from_slice(&crc32(&payload).to_le_bytes());
    frame.extend_from_slice(&payload);
    frame
}

fn decode_payload(payload: &[u8]) -> Option<CommitRecord> {
    let take_u64 = |b: &[u8], at: usize| -> Option<u64> {
        b.get(at..at + 8)
            .map(|s| u64::from_le_bytes(s.try_into().unwrap()))
    };
    let take_u32 = |b: &[u8], at: usize| -> Option<u32> {
        b.get(at..at + 4)
            .map(|s| u32::from_le_bytes(s.try_into().unwrap()))
    };
    let tn = take_u64(payload, 0)?;
    let count = take_u32(payload, 8)? as usize;
    let mut at = 12;
    let mut writes = Vec::with_capacity(count);
    for _ in 0..count {
        let obj = take_u64(payload, at)?;
        let vlen = take_u32(payload, at + 8)? as usize;
        let value = payload.get(at + 12..at + 12 + vlen)?;
        writes.push((ObjectId(obj), Value::from_bytes(value.to_vec())));
        at += 12 + vlen;
    }
    if at != payload.len() {
        return None; // trailing garbage inside the payload
    }
    Some(CommitRecord { tn, writes })
}

// ---- scanning (recovery read path) ----------------------------------------

/// What a [`scan`] saw.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ScanStats {
    /// Intact records decoded.
    pub records: usize,
    /// Bytes consumed by the header plus intact frames.
    pub bytes_replayed: usize,
    /// Bytes abandoned after the last intact frame (torn tail, corrupt
    /// frame, or trailing garbage). Zero means the log ended cleanly.
    pub torn_bytes: usize,
}

impl ScanStats {
    /// Whether the log ended exactly at a frame boundary.
    pub fn clean_end(&self) -> bool {
        self.torn_bytes == 0
    }
}

/// Decode the longest intact prefix of a WAL byte stream.
///
/// Errors only on a bad magic header (the stream is not a WAL at all);
/// torn tails and corrupt frames are expected crash artifacts and end
/// the scan silently — exactly the records before the first bad frame
/// are returned. An empty stream is a valid empty log.
pub fn scan(bytes: &[u8]) -> io::Result<(Vec<CommitRecord>, ScanStats)> {
    let mut stats = ScanStats {
        records: 0,
        bytes_replayed: 0,
        torn_bytes: 0,
    };
    if bytes.is_empty() {
        return Ok((Vec::new(), stats));
    }
    if bytes.len() < WAL_MAGIC.len() {
        stats.torn_bytes = bytes.len();
        return Ok((Vec::new(), stats));
    }
    if &bytes[..8] != WAL_MAGIC {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            "not an mvdb WAL (bad magic)",
        ));
    }
    let mut at = 8;
    let mut records = Vec::new();
    // Ends (never errors) at the first torn or corrupt frame.
    while let Some(header) = bytes.get(at..at + 8) {
        let len = u32::from_le_bytes(header[..4].try_into().unwrap());
        let crc = u32::from_le_bytes(header[4..].try_into().unwrap());
        if len > MAX_FRAME_LEN {
            break; // corrupt length field
        }
        let Some(payload) = bytes.get(at + 8..at + 8 + len as usize) else {
            break; // torn payload
        };
        if crc32(payload) != crc {
            break; // corrupt payload (or corrupt crc — indistinguishable)
        }
        let Some(record) = decode_payload(payload) else {
            break; // internally malformed despite matching crc
        };
        records.push(record);
        at += 8 + len as usize;
    }
    stats.records = records.len();
    stats.bytes_replayed = at;
    stats.torn_bytes = bytes.len() - at;
    Ok((records, stats))
}

// ---- writer ---------------------------------------------------------------

/// When the writer calls [`WalSink::sync`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FsyncPolicy {
    /// Sync after every commit record: a committed transaction is durable
    /// before its commit returns.
    Always,
    /// Group commit: sync once per `n` records. A crash can lose up to
    /// `n − 1` acknowledged commits (always a suffix of the ack order).
    EveryN(u64),
    /// Never sync; durability is whatever the OS happens to flush.
    Never,
}

impl std::fmt::Display for FsyncPolicy {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FsyncPolicy::Always => write!(f, "always"),
            FsyncPolicy::EveryN(n) => write!(f, "every-{n}"),
            FsyncPolicy::Never => write!(f, "never"),
        }
    }
}

/// Result of one append.
#[derive(Debug, Clone, Copy)]
pub struct AppendInfo {
    /// Frame bytes written (header + payload).
    pub bytes: usize,
    /// Whether this append triggered a sink sync.
    pub synced: bool,
}

/// The appending half of the WAL. Single-writer: callers serialize
/// through a mutex one level up (the engine's `CommitLog`).
///
/// Besides appending, the writer keeps an in-memory copy of every frame
/// since the last rotation so [`rotate`](Self::rotate) can rewrite the
/// log to exactly the records a new checkpoint has not yet absorbed —
/// a single-file stand-in for segment-switch rotation; see DESIGN.md §9
/// for the crash-window caveat. **Memory cost:** `recent` mirrors the
/// whole log since the last rotation, so an engine that never
/// checkpoints duplicates its entire WAL in memory; checkpoint (and
/// rotate) periodically to bound it.
pub struct WalWriter {
    sink: Box<dyn WalSink>,
    policy: FsyncPolicy,
    /// Bytes known good in the sink (header + fully appended frames).
    offset: u64,
    /// Appends since the last sync (group-commit counter).
    unsynced: u64,
    /// Frame bytes appended since the last sync — the durability backlog
    /// a crash right now would lose. Surfaced as the `wal_backlog_bytes`
    /// gauge by the engine's observability layer.
    unsynced_bytes: u64,
    /// `(tn, frame)` for every record since the last rotation.
    recent: Vec<(u64, Vec<u8>)>,
    /// Set when the sink's contents no longer match what this writer
    /// believes (a failed rewind or a failed rotation rewrite): every
    /// further operation fails, forcing the engine to recover from the
    /// log rather than keep acknowledging commits it cannot cover.
    poisoned: bool,
}

impl WalWriter {
    /// Start a fresh log on `sink`: writes and syncs the magic header.
    pub fn create(mut sink: Box<dyn WalSink>, policy: FsyncPolicy) -> io::Result<Self> {
        sink.append(WAL_MAGIC)?;
        sink.sync()?;
        Ok(WalWriter {
            sink,
            policy,
            offset: WAL_MAGIC.len() as u64,
            unsynced: 0,
            unsynced_bytes: 0,
            recent: Vec::new(),
            poisoned: false,
        })
    }

    /// Resume a log whose sink already holds `records` (recovery onto a
    /// fresh sink): writes the header and re-appends every record, so
    /// that sink + the restoring checkpoint again cover the full state.
    pub fn create_with(
        sink: Box<dyn WalSink>,
        policy: FsyncPolicy,
        records: &[CommitRecord],
    ) -> io::Result<Self> {
        let mut w = Self::create(sink, policy)?;
        for r in records {
            w.raw_append(r.tn, encode_frame(r.tn, &r.writes))?;
        }
        w.sync()?;
        Ok(w)
    }

    /// The configured fsync policy.
    pub fn policy(&self) -> FsyncPolicy {
        self.policy
    }

    /// Whether the writer is poisoned (sink contents unknown; see
    /// the `poisoned` field). A poisoned log accepts no further
    /// operations — recover from the bytes instead.
    pub fn is_poisoned(&self) -> bool {
        self.poisoned
    }

    fn check_poisoned(&self) -> io::Result<()> {
        if self.poisoned {
            return Err(io::Error::other(
                "wal writer poisoned by an earlier sink failure; recover from the log",
            ));
        }
        Ok(())
    }

    fn raw_append(&mut self, tn: u64, frame: Vec<u8>) -> io::Result<()> {
        if let Err(e) = self.sink.append(&frame) {
            // A failed append may have left a partial frame (torn write):
            // rewind so later records are not stranded behind garbage.
            // If the rewind itself fails the sink is gone; recovery will
            // stop at the torn frame's bad CRC.
            let _ = self.sink.truncate_to(self.offset);
            return Err(e);
        }
        self.offset += frame.len() as u64;
        self.recent.push((tn, frame));
        Ok(())
    }

    /// Append one commit record and apply the fsync policy. On success
    /// the record is in the log (durable if `synced`); on error nothing
    /// of the record remains and the caller must abort the transaction.
    ///
    /// That guarantee covers fsync failure too: if the policy demanded a
    /// sync and the sink refused, the just-appended frame is rewound
    /// before the error propagates — otherwise the caller would abort
    /// the transaction while its record sat in the log, became durable
    /// at the next successful sync, and was resurrected by replay. If
    /// even the rewind fails the writer poisons itself (every further
    /// operation errors): the sink's contents are unknown, and the only
    /// safe continuation is recovery from the bytes.
    pub fn append_commit(
        &mut self,
        tn: u64,
        writes: &[(ObjectId, Value)],
    ) -> io::Result<AppendInfo> {
        self.check_poisoned()?;
        let frame = encode_frame(tn, writes);
        let bytes = frame.len();
        self.raw_append(tn, frame)?;
        self.unsynced += 1;
        self.unsynced_bytes += bytes as u64;
        let want_sync = match self.policy {
            FsyncPolicy::Always => true,
            FsyncPolicy::EveryN(n) => self.unsynced >= n.max(1),
            FsyncPolicy::Never => false,
        };
        if want_sync {
            if let Err(e) = self.sink.sync() {
                self.offset -= bytes as u64;
                self.unsynced -= 1;
                self.unsynced_bytes -= bytes as u64;
                self.recent.pop();
                if self.sink.truncate_to(self.offset).is_err() {
                    self.poisoned = true;
                }
                return Err(e);
            }
            self.unsynced = 0;
            self.unsynced_bytes = 0;
        }
        Ok(AppendInfo {
            bytes,
            synced: want_sync,
        })
    }

    /// Force a sync (end of a group-commit batch, shutdown, pre-rotate).
    pub fn sync(&mut self) -> io::Result<()> {
        self.check_poisoned()?;
        self.sink.sync()?;
        self.unsynced = 0;
        self.unsynced_bytes = 0;
        Ok(())
    }

    /// Rotate after a checkpoint consistent at `watermark`: rewrite the
    /// log to contain only records with `tn > watermark` (everything
    /// else is in the checkpoint) and sync. Returns how many records
    /// were dropped and kept.
    ///
    /// If the truncation fails the sink is untouched (the old log is
    /// still intact and scannable) and the error just propagates. Any
    /// failure *after* the truncation poisons the writer: the sink is
    /// now missing acknowledged records that only `recent` still holds,
    /// so no further commit may be acknowledged on it — the caller keeps
    /// the checkpoint it just wrote and recovers from that.
    pub fn rotate(&mut self, watermark: u64) -> io::Result<(usize, usize)> {
        self.check_poisoned()?;
        let before = self.recent.len();
        self.recent.retain(|(tn, _)| *tn > watermark);
        let kept = self.recent.len();
        self.sink.truncate_to(0)?;
        self.offset = 0;
        if let Err(e) = self.rewrite_kept() {
            self.poisoned = true;
            return Err(e);
        }
        self.unsynced = 0;
        self.unsynced_bytes = 0;
        Ok((before - kept, kept))
    }

    /// Re-emit the header plus every kept frame after a rotate
    /// truncation, keeping `offset` in lockstep with each frame that
    /// fully reached the sink (so it never overstates the sink on a
    /// mid-loop failure).
    fn rewrite_kept(&mut self) -> io::Result<()> {
        self.sink.append(WAL_MAGIC)?;
        self.offset = WAL_MAGIC.len() as u64;
        for (_, frame) in &self.recent {
            self.sink.append(frame)?;
            self.offset += frame.len() as u64;
        }
        self.sink.sync()
    }

    /// Records currently covered by the log (since the last rotation).
    pub fn live_records(&self) -> usize {
        self.recent.len()
    }

    /// Bytes appended so far (header included, failed appends excluded).
    pub fn offset(&self) -> u64 {
        self.offset
    }

    /// Frame bytes appended but not yet synced — what a crash right now
    /// would lose (zero under [`FsyncPolicy::Always`]).
    pub fn backlog_bytes(&self) -> u64 {
        self.unsynced_bytes
    }
}

// ---- replay into a store --------------------------------------------------

/// Apply scanned records to `store`: every write of every record with
/// `tn > watermark` becomes a committed version numbered `tn`. Records
/// are applied in transaction-number order (appends may interleave out
/// of `tn` order under concurrent commits). Returns the highest `tn`
/// applied (or `watermark` if none) and how many records were skipped
/// as already covered by the checkpoint.
pub fn replay_into(
    store: &MvStore,
    watermark: u64,
    records: &[CommitRecord],
) -> io::Result<(u64, usize)> {
    let mut ordered: Vec<&CommitRecord> = records.iter().collect();
    ordered.sort_by_key(|r| r.tn);
    let mut last_tn = watermark;
    let mut skipped = 0;
    for record in ordered {
        if record.tn <= watermark {
            skipped += 1;
            continue;
        }
        for (obj, value) in &record.writes {
            store
                .with(*obj, |c| c.insert_committed(record.tn, value.clone()))
                .map_err(|e| {
                    io::Error::new(
                        io::ErrorKind::InvalidData,
                        format!("replay of tn {}: {e}", record.tn),
                    )
                })?;
        }
        last_tn = record.tn;
    }
    Ok((last_tn, skipped))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rec(tn: u64, writes: &[(u64, u64)]) -> CommitRecord {
        CommitRecord {
            tn,
            writes: writes
                .iter()
                .map(|&(o, v)| (ObjectId(o), Value::from_u64(v)))
                .collect(),
        }
    }

    fn write_log(records: &[CommitRecord], policy: FsyncPolicy) -> MemWal {
        let mem = MemWal::new();
        let mut w = WalWriter::create(Box::new(mem.clone()), policy).unwrap();
        for r in records {
            w.append_commit(r.tn, &r.writes).unwrap();
        }
        w.sync().unwrap();
        mem
    }

    #[test]
    fn backlog_bytes_tracks_unsynced_frames() {
        let mem = MemWal::new();
        let mut w = WalWriter::create(Box::new(mem), FsyncPolicy::EveryN(3)).unwrap();
        assert_eq!(w.backlog_bytes(), 0);
        let a = w.append_commit(1, &rec(1, &[(0, 1)]).writes).unwrap();
        assert!(!a.synced);
        assert_eq!(w.backlog_bytes(), a.bytes as u64);
        let b = w.append_commit(2, &rec(2, &[(1, 2)]).writes).unwrap();
        assert_eq!(w.backlog_bytes(), (a.bytes + b.bytes) as u64);
        // Third append completes the group commit: backlog drains.
        let c = w.append_commit(3, &rec(3, &[(2, 3)]).writes).unwrap();
        assert!(c.synced);
        assert_eq!(w.backlog_bytes(), 0);
        // Explicit sync also drains.
        w.append_commit(4, &rec(4, &[(3, 4)]).writes).unwrap();
        assert!(w.backlog_bytes() > 0);
        w.sync().unwrap();
        assert_eq!(w.backlog_bytes(), 0);
    }

    #[test]
    fn crc32_known_vector() {
        // The canonical IEEE check value.
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
    }

    #[test]
    fn round_trip_preserves_records() {
        let records = vec![
            rec(1, &[(10, 100)]),
            rec(2, &[(10, 200), (11, 5)]),
            rec(3, &[]),
        ];
        let mem = write_log(&records, FsyncPolicy::Always);
        let (decoded, stats) = scan(&mem.bytes()).unwrap();
        assert_eq!(decoded, records);
        assert!(stats.clean_end());
        assert_eq!(stats.records, 3);
    }

    #[test]
    fn empty_log_scans_clean() {
        let mem = MemWal::new();
        WalWriter::create(Box::new(mem.clone()), FsyncPolicy::Always).unwrap();
        let (records, stats) = scan(&mem.bytes()).unwrap();
        assert!(records.is_empty());
        assert!(stats.clean_end());
        // And the completely empty stream is a valid empty log too.
        let (records, stats) = scan(&[]).unwrap();
        assert!(records.is_empty());
        assert!(stats.clean_end());
    }

    #[test]
    fn bad_magic_rejected() {
        let err = scan(b"NOTAWAL!xxxx").unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
    }

    #[test]
    fn truncation_at_every_byte_yields_a_record_prefix() {
        let records = vec![rec(1, &[(0, 1)]), rec(2, &[(1, 2)]), rec(3, &[(2, 3)])];
        let mem = write_log(&records, FsyncPolicy::Always);
        let bytes = mem.bytes();
        for cut in 0..=bytes.len() {
            let (decoded, stats) = scan(&bytes[..cut]).unwrap();
            assert!(decoded.len() <= records.len());
            assert_eq!(decoded, records[..decoded.len()], "cut at {cut}");
            assert_eq!(stats.bytes_replayed + stats.torn_bytes, cut);
        }
        // The full log decodes everything.
        assert_eq!(scan(&bytes).unwrap().0.len(), 3);
    }

    #[test]
    fn bit_flip_stops_scan_at_corrupt_frame() {
        let records = vec![rec(1, &[(0, 1)]), rec(2, &[(1, 2)]), rec(3, &[(2, 3)])];
        let mem = write_log(&records, FsyncPolicy::Always);
        let clean = mem.bytes();
        // Flip one bit in every byte position; the scan must never return
        // a non-prefix and never panic.
        for pos in 0..clean.len() {
            let mut corrupt = clean.clone();
            corrupt[pos] ^= 0x10;
            match scan(&corrupt) {
                Ok((decoded, _)) => {
                    // Corrupting byte `pos` can only kill frames at or
                    // after it; earlier records must survive intact.
                    for (i, r) in decoded.iter().enumerate() {
                        assert_eq!(r, &records[i], "bit flip at {pos}");
                    }
                }
                Err(e) => {
                    // Only the magic header may hard-error.
                    assert!(pos < 8, "unexpected error at {pos}: {e}");
                }
            }
        }
    }

    #[test]
    fn group_commit_syncs_every_n() {
        let mem = MemWal::new();
        let mut w = WalWriter::create(Box::new(mem.clone()), FsyncPolicy::EveryN(3)).unwrap();
        let mut syncs = 0;
        for tn in 1..=7u64 {
            let info = w
                .append_commit(tn, &[(ObjectId(0), Value::from_u64(tn))])
                .unwrap();
            if info.synced {
                syncs += 1;
            }
        }
        assert_eq!(syncs, 2, "7 appends at n=3 sync twice");
        // Unsynced tail: records 7 is appended but not durable.
        let (durable, _) = scan(&mem.durable_bytes()).unwrap();
        assert_eq!(durable.len(), 6);
        let (all, _) = scan(&mem.bytes()).unwrap();
        assert_eq!(all.len(), 7);
        w.sync().unwrap();
        let (durable, _) = scan(&mem.durable_bytes()).unwrap();
        assert_eq!(durable.len(), 7);
    }

    #[test]
    fn never_policy_syncs_nothing_after_header() {
        let mem = MemWal::new();
        let mut w = WalWriter::create(Box::new(mem.clone()), FsyncPolicy::Never).unwrap();
        for tn in 1..=5u64 {
            let info = w
                .append_commit(tn, &[(ObjectId(0), Value::from_u64(tn))])
                .unwrap();
            assert!(!info.synced);
        }
        assert_eq!(mem.durable_bytes().len(), WAL_MAGIC.len());
    }

    #[test]
    fn rotation_drops_checkpointed_records() {
        let mem = MemWal::new();
        let mut w = WalWriter::create(Box::new(mem.clone()), FsyncPolicy::Always).unwrap();
        for tn in 1..=6u64 {
            w.append_commit(tn, &[(ObjectId(tn), Value::from_u64(tn))])
                .unwrap();
        }
        let (dropped, kept) = w.rotate(4).unwrap();
        assert_eq!((dropped, kept), (4, 2));
        let (records, stats) = scan(&mem.bytes()).unwrap();
        assert!(stats.clean_end());
        assert_eq!(records.iter().map(|r| r.tn).collect::<Vec<_>>(), vec![5, 6]);
        // The log keeps working after rotation.
        w.append_commit(7, &[(ObjectId(7), Value::from_u64(7))])
            .unwrap();
        let (records, _) = scan(&mem.bytes()).unwrap();
        assert_eq!(records.len(), 3);
    }

    #[test]
    fn replay_applies_in_tn_order_and_skips_checkpointed() {
        let store = MvStore::new();
        // Appended out of tn order (concurrent commits can do that).
        let records = vec![rec(5, &[(0, 50)]), rec(3, &[(0, 30)]), rec(4, &[(1, 40)])];
        let (last, skipped) = replay_into(&store, 3, &records).unwrap();
        assert_eq!(last, 5);
        assert_eq!(skipped, 1); // tn 3 was ≤ the watermark
        assert_eq!(store.read_latest(ObjectId(0)), (5, Value::from_u64(50)));
        assert_eq!(
            store.read_at(ObjectId(1), 4).unwrap().1,
            Value::from_u64(40)
        );
    }

    #[test]
    fn replay_duplicate_tn_is_invalid_data() {
        let store = MvStore::new();
        let records = vec![rec(2, &[(0, 1)]), rec(2, &[(0, 9)])];
        let err = replay_into(&store, 0, &records).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
    }

    #[test]
    fn failed_append_rewinds_partial_frame() {
        /// Sink that tears the third append halfway through.
        struct Tearing {
            mem: MemWal,
            appends: usize,
        }
        impl WalSink for Tearing {
            fn append(&mut self, buf: &[u8]) -> io::Result<()> {
                self.appends += 1;
                if self.appends == 3 {
                    self.mem.append(&buf[..buf.len() / 2]).unwrap();
                    return Err(io::Error::new(io::ErrorKind::WriteZero, "torn (injected)"));
                }
                self.mem.append(buf)
            }
            fn sync(&mut self) -> io::Result<()> {
                self.mem.sync()
            }
            fn truncate_to(&mut self, len: u64) -> io::Result<()> {
                self.mem.truncate_to(len)
            }
        }
        let mem = MemWal::new();
        let sink = Tearing {
            mem: mem.clone(),
            appends: 0,
        };
        let mut w = WalWriter::create(Box::new(sink), FsyncPolicy::Always).unwrap();
        w.append_commit(1, &[(ObjectId(0), Value::from_u64(1))])
            .unwrap();
        let err = w
            .append_commit(2, &[(ObjectId(0), Value::from_u64(2))])
            .unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::WriteZero);
        // The rewind removed the torn bytes: the next commit lands cleanly.
        w.append_commit(3, &[(ObjectId(0), Value::from_u64(3))])
            .unwrap();
        let (records, stats) = scan(&mem.bytes()).unwrap();
        assert!(stats.clean_end(), "torn frame must be rewound");
        assert_eq!(records.iter().map(|r| r.tn).collect::<Vec<_>>(), vec![1, 3]);
    }

    /// Sink whose `sync` fails on one chosen call (1-based, counting the
    /// header sync from `WalWriter::create`), and whose `truncate_to`
    /// can be disabled to model a wholly failed device.
    struct FailingSync {
        mem: MemWal,
        fail_on: usize,
        calls: usize,
        truncate_works: bool,
    }
    impl WalSink for FailingSync {
        fn append(&mut self, buf: &[u8]) -> io::Result<()> {
            self.mem.append(buf)
        }
        fn sync(&mut self) -> io::Result<()> {
            self.calls += 1;
            if self.calls == self.fail_on {
                return Err(io::Error::other("fsync failed (injected)"));
            }
            self.mem.sync()
        }
        fn truncate_to(&mut self, len: u64) -> io::Result<()> {
            if !self.truncate_works {
                return Err(io::Error::other("truncate failed (injected)"));
            }
            self.mem.truncate_to(len)
        }
    }

    #[test]
    fn failed_fsync_rewinds_appended_frame() {
        let mem = MemWal::new();
        let sink = FailingSync {
            mem: mem.clone(),
            fail_on: 3, // header sync = 1, tn 1 = 2, tn 2 = 3
            calls: 0,
            truncate_works: true,
        };
        let mut w = WalWriter::create(Box::new(sink), FsyncPolicy::Always).unwrap();
        w.append_commit(1, &[(ObjectId(0), Value::from_u64(1))])
            .unwrap();
        let before = w.offset();
        w.append_commit(2, &[(ObjectId(0), Value::from_u64(2))])
            .unwrap_err();
        // The aborted record must not linger: a later successful sync
        // would make it durable and replay would resurrect the abort.
        assert_eq!(w.offset(), before, "offset rewound past the failed frame");
        assert_eq!(w.live_records(), 1);
        let (records, stats) = scan(&mem.bytes()).unwrap();
        assert!(stats.clean_end(), "failed-fsync frame must be rewound");
        assert_eq!(records.iter().map(|r| r.tn).collect::<Vec<_>>(), vec![1]);
        // The writer is not poisoned — the rewind succeeded — and keeps
        // accepting commits.
        assert!(!w.is_poisoned());
        w.append_commit(3, &[(ObjectId(0), Value::from_u64(3))])
            .unwrap();
        let (records, _) = scan(&mem.bytes()).unwrap();
        assert_eq!(records.iter().map(|r| r.tn).collect::<Vec<_>>(), vec![1, 3]);
    }

    #[test]
    fn failed_fsync_then_failed_rewind_poisons_writer() {
        let mem = MemWal::new();
        let sink = FailingSync {
            mem: mem.clone(),
            fail_on: 2,
            calls: 0,
            truncate_works: false,
        };
        let mut w = WalWriter::create(Box::new(sink), FsyncPolicy::Always).unwrap();
        w.append_commit(1, &[(ObjectId(0), Value::from_u64(1))])
            .unwrap_err();
        assert!(w.is_poisoned());
        // Every further operation fails without touching the sink.
        let len = mem.len();
        w.append_commit(2, &[(ObjectId(0), Value::from_u64(2))])
            .unwrap_err();
        w.sync().unwrap_err();
        w.rotate(0).unwrap_err();
        assert_eq!(mem.len(), len, "poisoned writer must not touch the sink");
    }

    #[test]
    fn rotate_failure_after_truncation_poisons_writer() {
        /// Sink that fails the second append performed during rotation
        /// (the first kept frame; the header is append #1 post-arm).
        struct RotateTear {
            mem: MemWal,
            arm: bool,
            appends: usize,
        }
        impl WalSink for RotateTear {
            fn append(&mut self, buf: &[u8]) -> io::Result<()> {
                if self.arm {
                    self.appends += 1;
                    if self.appends == 2 {
                        self.mem.append(&buf[..buf.len() / 2]).unwrap();
                        return Err(io::Error::new(io::ErrorKind::WriteZero, "torn (injected)"));
                    }
                }
                self.mem.append(buf)
            }
            fn sync(&mut self) -> io::Result<()> {
                self.mem.sync()
            }
            fn truncate_to(&mut self, len: u64) -> io::Result<()> {
                self.arm = len == 0 || self.arm; // arm at the rotate truncation
                self.mem.truncate_to(len)
            }
        }
        let mem = MemWal::new();
        let sink = RotateTear {
            mem: mem.clone(),
            arm: false,
            appends: 0,
        };
        let mut w = WalWriter::create(Box::new(sink), FsyncPolicy::Always).unwrap();
        for tn in 1..=4u64 {
            w.append_commit(tn, &[(ObjectId(tn), Value::from_u64(tn))])
                .unwrap();
        }
        w.rotate(2).unwrap_err();
        // Kept records now live only in memory; acknowledging more
        // commits on this sink would strand them, so the writer refuses.
        assert!(w.is_poisoned());
        w.append_commit(5, &[(ObjectId(5), Value::from_u64(5))])
            .unwrap_err();
        // What did land in the sink still scans as a clean-or-torn log
        // (recovery stops at the half-written frame).
        let (records, _) = scan(&mem.bytes()).unwrap();
        assert!(records.len() <= 2);
    }
}
