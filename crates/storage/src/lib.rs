//! Multiversion storage substrate for the `mvdb` workspace.
//!
//! The 1989 paper assumes "for each object `x` in the database, there is a
//! list of associated versions" (Section 3.2) and leaves the storage layer
//! abstract. This crate is that substrate, built from scratch:
//!
//! * [`value`] — cheaply-cloneable values ([`bytes::Bytes`]-backed).
//! * [`version`] — committed and *pending* versions. A pending version is
//!   the paper's "version φ" under 2PL (Figure 4): installed during the
//!   execution phase and stamped with the transaction number only at
//!   commit, after `VCregister`.
//! * [`chain`] — per-object version chains ordered by version number
//!   (= creator transaction number), with snapshot reads
//!   (`largest version ≤ sn`, Figure 2), read/write timestamps for the
//!   timestamp-ordering protocol, and pruning.
//! * [`store`] — a sharded concurrent map of chains with condition-variable
//!   waiting, used by protocols that must *block* a read on a pending
//!   write (Figure 3's "may be delayed due to the pending writes").
//! * [`gc`] — watermark garbage collection. The only rule version control
//!   imposes (paper Section 6): never discard versions "as young as or
//!   younger than `vtnc`"; additionally a registry of live read-only start
//!   numbers lowers the watermark so active snapshots stay readable.
//! * [`stats`] — storage statistics used by the experiments.
//! * [`persist`] / [`wal`] — durability: transaction-consistent
//!   checkpoints (snapshot at `vtnc`) and a CRC-framed write-ahead log of
//!   committed writesets, replayed on recovery.

#![warn(missing_docs)]
#![deny(unsafe_code)]

pub mod chain;
pub mod gc;
pub mod histogram;
pub mod persist;
pub mod shard;
pub mod sketch;
pub mod stats;
pub mod store;
pub mod value;
pub mod version;
pub mod wal;

pub use chain::VersionChain;
pub use gc::{GcStats, RoScanRegistry};
pub use histogram::{AtomicHistogram, Histogram};
pub use persist::CheckpointStats;
pub use sketch::{SketchEntry, TopKSketch};
pub use stats::StoreStats;
pub use store::{MvStore, PressureStats, WaitOutcome, WaitTimeout};
pub use value::Value;
pub use version::{CommittedVersion, PendingVersion};
pub use wal::{
    crc32, scan, AppendInfo, CommitRecord, Crc32, FileSink, FsyncPolicy, MemWal, ScanStats,
    WalSink, WalWriter,
};

/// Version numbers are transaction numbers (`u64`); the initial version of
/// every object has number 0 (written by the pseudo-transaction `T_0`).
pub type VersionNo = u64;

/// The version number of every object's initial version.
pub const INITIAL_VERSION: VersionNo = 0;
