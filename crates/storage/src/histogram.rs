//! Log-bucketed latency histogram (power-of-two nanosecond buckets).
//!
//! Fixed memory, O(1) record, mergeable across driver threads, with
//! approximate quantiles by geometric interpolation within a bucket —
//! the standard trick for benchmark latency collection without
//! per-sample storage. Lives in `mvcc-storage` (the lowest shared crate)
//! so both the engine's observability layer (`mvcc-core::obs`) and the
//! workload driver can use it; `mvcc_workload::Histogram` re-exports it.
//!
//! [`AtomicHistogram`] is the concurrent variant used on engine hot
//! paths: `record` is a handful of relaxed atomic RMWs, and `snapshot`
//! produces a plain [`Histogram`] for reporting.

use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Duration;

const BUCKETS: usize = 64;

/// A histogram of durations.
///
/// ```
/// use mvcc_storage::Histogram;
/// use std::time::Duration;
///
/// let mut h = Histogram::new();
/// for us in [10, 20, 30] {
///     h.record(Duration::from_micros(us));
/// }
/// assert_eq!(h.count(), 3);
/// assert_eq!(h.mean(), Duration::from_micros(20));
/// assert!(h.p99() >= h.p50());
/// assert!(h.p50() >= h.min() && h.p99() <= h.max());
/// ```
#[derive(Debug, Clone)]
pub struct Histogram {
    counts: [u64; BUCKETS],
    count: u64,
    sum_ns: u128,
    max_ns: u64,
    min_ns: u64,
}

impl Default for Histogram {
    fn default() -> Self {
        Self::new()
    }
}

impl Histogram {
    /// Empty histogram.
    pub fn new() -> Self {
        Histogram {
            counts: [0; BUCKETS],
            count: 0,
            sum_ns: 0,
            max_ns: 0,
            min_ns: u64::MAX,
        }
    }

    fn bucket(ns: u64) -> usize {
        (64 - ns.leading_zeros()) as usize % BUCKETS
    }

    /// Record one sample.
    pub fn record(&mut self, d: Duration) {
        let ns = d.as_nanos().min(u64::MAX as u128) as u64;
        self.counts[Self::bucket(ns)] += 1;
        self.count += 1;
        self.sum_ns += ns as u128;
        self.max_ns = self.max_ns.max(ns);
        self.min_ns = self.min_ns.min(ns);
    }

    /// Fold another histogram into this one.
    pub fn merge(&mut self, other: &Histogram) {
        for (a, b) in self.counts.iter_mut().zip(other.counts.iter()) {
            *a += b;
        }
        self.count += other.count;
        self.sum_ns += other.sum_ns;
        self.max_ns = self.max_ns.max(other.max_ns);
        self.min_ns = self.min_ns.min(other.min_ns);
    }

    /// Number of samples.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Per-bucket sample counts. Bucket 0 holds only zero-duration
    /// samples; bucket `i ≥ 1` holds samples in `[2^(i-1), 2^i - 1]`
    /// nanoseconds (see [`Histogram::bucket_upper_bound`]). Exporters use
    /// this to render cumulative Prometheus histogram buckets.
    pub fn bucket_counts(&self) -> &[u64] {
        &self.counts
    }

    /// Inclusive upper bound, in nanoseconds, of bucket `i`.
    pub fn bucket_upper_bound(i: usize) -> u64 {
        if i == 0 {
            0
        } else {
            (((1u128 << i.min(64)) - 1).min(u64::MAX as u128)) as u64
        }
    }

    /// Sum of all samples in nanoseconds.
    pub fn sum_ns(&self) -> u128 {
        self.sum_ns
    }

    /// Mean sample.
    pub fn mean(&self) -> Duration {
        if self.count == 0 {
            return Duration::ZERO;
        }
        Duration::from_nanos((self.sum_ns / self.count as u128) as u64)
    }

    /// Largest sample.
    pub fn max(&self) -> Duration {
        Duration::from_nanos(self.max_ns)
    }

    /// Smallest sample (zero if empty).
    pub fn min(&self) -> Duration {
        if self.count == 0 {
            Duration::ZERO
        } else {
            Duration::from_nanos(self.min_ns)
        }
    }

    /// Approximate quantile `q ∈ [0, 1]` by locating the bucket holding
    /// the q-th sample and interpolating geometrically inside it.
    ///
    /// The interpolation range of the lowest (highest) occupied bucket is
    /// tightened to start (end) at the recorded minimum (maximum), and the
    /// result is clamped to `[min, max]` — without this, a bucket's
    /// nominal `[2^(i-1), 2^i)` span lets a quantile undershoot the
    /// smallest recorded sample (most visibly at the zero/min bucket
    /// boundary, where bucket 0 nominally spans `[0, 1)`).
    pub fn quantile(&self, q: f64) -> Duration {
        if self.count == 0 {
            return Duration::ZERO;
        }
        let q = q.clamp(0.0, 1.0);
        let target = ((self.count as f64) * q).ceil().max(1.0) as u64;
        let lowest = self.counts.iter().position(|&c| c > 0).unwrap_or(0);
        let highest = self.counts.iter().rposition(|&c| c > 0).unwrap_or(0);
        let mut seen = 0u64;
        for (i, &c) in self.counts.iter().enumerate() {
            if c == 0 {
                continue;
            }
            if seen + c >= target {
                let mut lo = if i == 0 { 0u64 } else { 1u64 << (i - 1) };
                let mut hi = (1u64 << i.min(62)).max(lo + 1);
                if i == lowest {
                    lo = lo.max(self.min_ns);
                }
                if i == highest {
                    hi = hi.min(self.max_ns);
                }
                if hi <= lo {
                    return Duration::from_nanos(lo.clamp(self.min_ns, self.max_ns));
                }
                let frac = (target - seen) as f64 / c as f64;
                let ns = lo as f64 + (hi - lo) as f64 * frac;
                let ns = (ns as u64).clamp(self.min_ns, self.max_ns);
                return Duration::from_nanos(ns);
            }
            seen += c;
        }
        self.max()
    }

    /// Shorthand for the median.
    pub fn p50(&self) -> Duration {
        self.quantile(0.50)
    }

    /// 95th percentile.
    pub fn p95(&self) -> Duration {
        self.quantile(0.95)
    }

    /// 99th percentile.
    pub fn p99(&self) -> Duration {
        self.quantile(0.99)
    }
}

/// Concurrent histogram for engine-side phase timing.
///
/// `record` costs a few relaxed atomic RMWs and never blocks; `snapshot`
/// copies the buckets into a plain [`Histogram`]. A snapshot taken while
/// writers are active may be off by in-flight samples (each field is read
/// independently) — fine for monitoring, which is its only use.
#[derive(Debug)]
pub struct AtomicHistogram {
    counts: [AtomicU64; BUCKETS],
    count: AtomicU64,
    sum_ns: AtomicU64,
    max_ns: AtomicU64,
    min_ns: AtomicU64,
}

impl Default for AtomicHistogram {
    fn default() -> Self {
        Self::new()
    }
}

impl AtomicHistogram {
    /// Empty histogram.
    pub fn new() -> Self {
        AtomicHistogram {
            counts: std::array::from_fn(|_| AtomicU64::new(0)),
            count: AtomicU64::new(0),
            sum_ns: AtomicU64::new(0),
            max_ns: AtomicU64::new(0),
            min_ns: AtomicU64::new(u64::MAX),
        }
    }

    /// Record one sample (lock-free, relaxed ordering).
    pub fn record(&self, d: Duration) {
        let ns = d.as_nanos().min(u64::MAX as u128) as u64;
        self.counts[Histogram::bucket(ns)].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        self.sum_ns.fetch_add(ns, Ordering::Relaxed);
        self.max_ns.fetch_max(ns, Ordering::Relaxed);
        self.min_ns.fetch_min(ns, Ordering::Relaxed);
    }

    /// Number of samples recorded so far.
    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    /// Copy the current contents into a plain [`Histogram`].
    pub fn snapshot(&self) -> Histogram {
        let mut counts = [0u64; BUCKETS];
        for (dst, src) in counts.iter_mut().zip(self.counts.iter()) {
            *dst = src.load(Ordering::Relaxed);
        }
        let count: u64 = counts.iter().sum();
        Histogram {
            counts,
            count,
            sum_ns: self.sum_ns.load(Ordering::Relaxed) as u128,
            max_ns: self.max_ns.load(Ordering::Relaxed),
            min_ns: if count == 0 {
                u64::MAX
            } else {
                self.min_ns.load(Ordering::Relaxed)
            },
        }
    }

    /// Reset all buckets and summary fields to empty.
    pub fn reset(&self) {
        for c in &self.counts {
            c.store(0, Ordering::Relaxed);
        }
        self.count.store(0, Ordering::Relaxed);
        self.sum_ns.store(0, Ordering::Relaxed);
        self.max_ns.store(0, Ordering::Relaxed);
        self.min_ns.store(u64::MAX, Ordering::Relaxed);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn us(n: u64) -> Duration {
        Duration::from_micros(n)
    }

    #[test]
    fn empty_histogram() {
        let h = Histogram::new();
        assert_eq!(h.count(), 0);
        assert_eq!(h.mean(), Duration::ZERO);
        assert_eq!(h.quantile(0.5), Duration::ZERO);
        assert_eq!(h.min(), Duration::ZERO);
    }

    #[test]
    fn mean_and_extremes_exact() {
        let mut h = Histogram::new();
        h.record(us(10));
        h.record(us(20));
        h.record(us(30));
        assert_eq!(h.count(), 3);
        assert_eq!(h.mean(), us(20));
        assert_eq!(h.max(), us(30));
        assert_eq!(h.min(), us(10));
    }

    #[test]
    fn quantiles_are_order_of_magnitude_right() {
        let mut h = Histogram::new();
        for _ in 0..99 {
            h.record(us(100));
        }
        h.record(Duration::from_millis(10));
        let p50 = h.p50();
        assert!(p50 >= us(50) && p50 <= us(200), "p50 {p50:?}");
        let p99 = h.p99();
        assert!(p99 >= us(50), "p99 {p99:?}");
        assert!(h.quantile(1.0) >= Duration::from_millis(5));
    }

    #[test]
    fn merge_combines() {
        let mut a = Histogram::new();
        let mut b = Histogram::new();
        a.record(us(10));
        b.record(us(1000));
        a.merge(&b);
        assert_eq!(a.count(), 2);
        assert_eq!(a.max(), us(1000));
        assert_eq!(a.min(), us(10));
        assert_eq!(a.mean(), us(505));
    }

    #[test]
    fn quantile_monotone() {
        let mut h = Histogram::new();
        for i in 1..=1000u64 {
            h.record(Duration::from_nanos(i * 97));
        }
        let mut prev = Duration::ZERO;
        for q in [0.1, 0.25, 0.5, 0.75, 0.9, 0.99, 1.0] {
            let v = h.quantile(q);
            assert!(v >= prev, "quantile not monotone at {q}");
            prev = v;
        }
    }

    #[test]
    fn zero_duration_sample() {
        let mut h = Histogram::new();
        h.record(Duration::ZERO);
        assert_eq!(h.count(), 1);
        assert_eq!(h.max(), Duration::ZERO);
        assert_eq!(h.p50(), Duration::ZERO);
    }

    /// The zero/min bucket-boundary fix: a quantile must never undershoot
    /// the recorded minimum. Two samples of 100ns live in bucket
    /// `[64, 128)`; naive interpolation puts p50 at 96ns < min.
    #[test]
    fn quantile_never_below_min() {
        let mut h = Histogram::new();
        h.record(Duration::from_nanos(100));
        h.record(Duration::from_nanos(100));
        assert_eq!(h.p50(), Duration::from_nanos(100));
        assert_eq!(h.min(), Duration::from_nanos(100));
        for q in [0.0, 0.01, 0.5, 0.99, 1.0] {
            let v = h.quantile(q);
            assert!(v >= h.min() && v <= h.max(), "q={q} v={v:?}");
        }
    }

    #[test]
    fn atomic_histogram_matches_plain() {
        let a = AtomicHistogram::new();
        let mut p = Histogram::new();
        for i in 1..=500u64 {
            let d = Duration::from_nanos(i * 31);
            a.record(d);
            p.record(d);
        }
        let s = a.snapshot();
        assert_eq!(s.count(), p.count());
        assert_eq!(s.min(), p.min());
        assert_eq!(s.max(), p.max());
        assert_eq!(s.mean(), p.mean());
        assert_eq!(s.p99(), p.p99());
    }

    #[test]
    fn bucket_bounds_partition_the_axis() {
        // Every sample lands in the bucket whose bound range covers it.
        for ns in [0u64, 1, 2, 63, 64, 100, 1_000_000, u64::MAX / 2] {
            let mut h = Histogram::new();
            h.record(Duration::from_nanos(ns));
            let i = h.bucket_counts().iter().position(|&c| c == 1).unwrap();
            assert!(ns <= Histogram::bucket_upper_bound(i), "ns={ns} i={i}");
            if i > 0 {
                assert!(ns > Histogram::bucket_upper_bound(i - 1), "ns={ns} i={i}");
            }
        }
        // Bounds are strictly increasing (valid Prometheus `le` ladder).
        for i in 1..64 {
            assert!(Histogram::bucket_upper_bound(i) > Histogram::bucket_upper_bound(i - 1));
        }
    }

    #[test]
    fn atomic_histogram_reset() {
        let a = AtomicHistogram::new();
        a.record(us(5));
        a.reset();
        let s = a.snapshot();
        assert_eq!(s.count(), 0);
        assert_eq!(s.min(), Duration::ZERO);
    }
}
