//! Property tests for the log-bucketed latency histogram: merge is
//! associative (and agrees with recording everything into one
//! histogram), quantiles are monotone and stay within the recorded
//! range, and the atomic variant's snapshot matches the plain one.

use mvcc_storage::{AtomicHistogram, Histogram};
use proptest::prelude::*;
use std::time::Duration;

fn from_samples(samples: &[u64]) -> Histogram {
    let mut h = Histogram::new();
    for &ns in samples {
        h.record(Duration::from_nanos(ns));
    }
    h
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// (a ⊔ b) ⊔ c == a ⊔ (b ⊔ c) == record-all-in-one, field by field.
    #[test]
    fn merge_associative_and_lossless(
        a in proptest::collection::vec(0u64..1_000_000, 0..40),
        b in proptest::collection::vec(0u64..1_000_000, 0..40),
        c in proptest::collection::vec(0u64..1_000_000, 0..40),
    ) {
        let (ha, hb, hc) = (from_samples(&a), from_samples(&b), from_samples(&c));

        let mut left = ha.clone();
        left.merge(&hb);
        left.merge(&hc);

        let mut bc = hb.clone();
        bc.merge(&hc);
        let mut right = ha.clone();
        right.merge(&bc);

        let mut all: Vec<u64> = a.clone();
        all.extend(&b);
        all.extend(&c);
        let direct = from_samples(&all);

        for h in [&left, &right] {
            prop_assert_eq!(h.count(), direct.count());
            prop_assert_eq!(h.sum_ns(), direct.sum_ns());
            prop_assert_eq!(h.min(), direct.min());
            prop_assert_eq!(h.max(), direct.max());
            prop_assert_eq!(h.p50(), direct.p50());
            prop_assert_eq!(h.p99(), direct.p99());
        }
    }

    /// p50 ≤ p95 ≤ p99 ≤ max, and every quantile lies in [min, max].
    #[test]
    fn quantiles_ordered_and_in_range(
        samples in proptest::collection::vec(0u64..10_000_000_000, 1..80),
    ) {
        let h = from_samples(&samples);
        let (min, max) = (h.min(), h.max());

        prop_assert!(h.p50() <= h.p95());
        prop_assert!(h.p95() <= h.p99());
        prop_assert!(h.p99() <= max);

        let mut prev = Duration::ZERO;
        for q in [0.0, 0.01, 0.1, 0.25, 0.5, 0.75, 0.9, 0.95, 0.99, 1.0] {
            let v = h.quantile(q);
            prop_assert!(v >= min, "quantile({}) = {:?} < min {:?}", q, v, min);
            prop_assert!(v <= max, "quantile({}) = {:?} > max {:?}", q, v, max);
            prop_assert!(v >= prev, "quantile not monotone at {}", q);
            prev = v;
        }
    }

    /// AtomicHistogram::snapshot agrees with a plain Histogram fed the
    /// same samples.
    #[test]
    fn atomic_snapshot_matches_plain(
        samples in proptest::collection::vec(0u64..1_000_000_000, 0..60),
    ) {
        let atomic = AtomicHistogram::new();
        for &ns in &samples {
            atomic.record(Duration::from_nanos(ns));
        }
        let snap = atomic.snapshot();
        let plain = from_samples(&samples);
        prop_assert_eq!(snap.count(), plain.count());
        prop_assert_eq!(snap.sum_ns(), plain.sum_ns());
        prop_assert_eq!(snap.min(), plain.min());
        prop_assert_eq!(snap.max(), plain.max());
        prop_assert_eq!(snap.p50(), plain.p50());
        prop_assert_eq!(snap.p99(), plain.p99());
    }
}
