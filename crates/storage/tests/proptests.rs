//! Property tests for version chains and GC: chains stay sorted, snapshot
//! reads match a naive reference, and pruning never changes the result of
//! any read at or above the watermark.

use mvcc_model::TxnId;
use mvcc_storage::chain::VersionChain;
use mvcc_storage::version::PendingVersion;
use mvcc_storage::Value;
use proptest::prelude::*;
use std::collections::BTreeMap;

/// Reference model: a sorted map of version number → payload.
fn reference_at(model: &BTreeMap<u64, u64>, sn: u64) -> Option<(u64, u64)> {
    model.range(..=sn).next_back().map(|(&n, &v)| (n, v))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// Chain reads agree with a BTreeMap reference model under arbitrary
    /// interleavings of inserts, pending installs, promotes and discards.
    #[test]
    fn chain_matches_reference(
        steps in proptest::collection::vec((0u8..4, 1u64..64, 0u64..1000), 1..60),
        probes in proptest::collection::vec(0u64..70, 1..20),
    ) {
        let mut chain = VersionChain::new();
        let mut model: BTreeMap<u64, u64> = BTreeMap::new();
        model.insert(0, 0); // initial version (empty payload ~ "0")
        let mut next_writer = 1u64;
        let mut pendings: Vec<(TxnId, u64, u64)> = Vec::new(); // writer, number, payload

        for (kind, num, payload) in steps {
            match kind {
                0 => {
                    // direct committed insert (unique number only)
                    if !model.contains_key(&num)
                        && !pendings.iter().any(|&(_, n, _)| n == num)
                    {
                        chain.insert_committed(num, Value::from_u64(payload)).unwrap();
                        model.insert(num, payload);
                    }
                }
                1 => {
                    // install stamped pending
                    if !model.contains_key(&num)
                        && !pendings.iter().any(|&(_, n, _)| n == num)
                    {
                        let w = TxnId(next_writer);
                        next_writer += 1;
                        chain.install_pending(PendingVersion::stamped(
                            w, num, Value::from_u64(payload),
                        ));
                        pendings.push((w, num, payload));
                    }
                }
                2 => {
                    // promote oldest pending
                    if !pendings.is_empty() {
                        let (w, n, p) = pendings.remove(0);
                        chain.promote_pending(w, None).unwrap();
                        model.insert(n, p);
                    }
                }
                _ => {
                    // discard newest pending
                    if let Some((w, _, _)) = pendings.pop() {
                        prop_assert!(chain.discard_pending(w));
                    }
                }
            }
            // invariant: committed versions sorted and unique
            let nums: Vec<u64> = chain.committed().iter().map(|v| v.number).collect();
            let mut sorted = nums.clone();
            sorted.sort_unstable();
            sorted.dedup();
            prop_assert_eq!(&nums, &sorted, "chain unsorted or duplicated");
            prop_assert_eq!(chain.pending_len(), pendings.len());
        }

        for sn in probes {
            let got = chain.at(sn).map(|v| (v.number, v.value.as_u64().unwrap_or(0)));
            prop_assert_eq!(got, reference_at(&model, sn));
        }
    }

    /// Pruning at watermark `w` preserves every read at `sn ≥ w` and the
    /// latest version; repeated pruning is idempotent.
    #[test]
    fn prune_preserves_reads_at_or_above_watermark(
        nums in proptest::collection::btree_set(1u64..100, 0..25),
        watermark in 0u64..110,
        probes in proptest::collection::vec(0u64..110, 1..20),
    ) {
        let mut chain = VersionChain::new();
        for &n in &nums {
            chain.insert_committed(n, Value::from_u64(n)).unwrap();
        }
        let before: Vec<Option<u64>> = probes
            .iter()
            .map(|&sn| chain.at(sn).map(|v| v.number))
            .collect();
        let latest_before = chain.latest().number;

        chain.prune_below(watermark);

        prop_assert_eq!(chain.latest().number, latest_before);
        for (i, &sn) in probes.iter().enumerate() {
            if sn >= watermark {
                prop_assert_eq!(
                    chain.at(sn).map(|v| v.number),
                    before[i],
                    "read at {} changed by prune at {}",
                    sn,
                    watermark
                );
            }
        }
        // idempotent
        prop_assert_eq!(chain.prune_below(watermark), 0);
    }

    /// Values survive promotion: whatever payload went in pending comes
    /// out of the committed read.
    #[test]
    fn promote_preserves_payload(n in 1u64..1000, payload in any::<u64>()) {
        let mut chain = VersionChain::new();
        chain.install_pending(PendingVersion::stamped(
            TxnId(n), n, Value::from_u64(payload),
        ));
        // pending invisible to snapshot reads
        prop_assert_eq!(chain.at(n).unwrap().number, 0);
        chain.promote_pending(TxnId(n), None).unwrap();
        prop_assert_eq!(chain.at(n).unwrap().value.as_u64(), Some(payload));
    }
}
