//! Property tests for the space-saving top-K sketch: the classic
//! error bound (estimate never under-counts and over-counts by at most
//! `N/K`), heavy hitters are always monitored, and single-threaded
//! record/merge order produces a deterministic snapshot.

use mvcc_storage::TopKSketch;
use proptest::prelude::*;
use std::collections::HashMap;

fn feed(sketch: &TopKSketch, keys: &[u64]) {
    for &k in keys {
        sketch.record(k, 0, false);
    }
}

fn true_counts(keys: &[u64]) -> HashMap<u64, u64> {
    let mut m = HashMap::new();
    for &k in keys {
        *m.entry(k).or_insert(0) += 1;
    }
    m
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// Space-saving guarantee: for every key, `true ≤ estimate` when
    /// monitored, and `estimate ≤ true + N/K` (N = stream length,
    /// K = capacity). Unmonitored keys have true count ≤ N/K.
    #[test]
    fn estimate_within_space_saving_bound(
        keys in proptest::collection::vec(0u64..32, 1..400),
        cap in 1usize..16,
    ) {
        let sketch = TopKSketch::new(cap);
        feed(&sketch, &keys);
        let n = keys.len() as u64;
        let k = sketch.capacity() as u64;
        let bound = n / k;
        let truth = true_counts(&keys);
        for (&key, &count) in &truth {
            match sketch.estimate(key) {
                Some(est) => {
                    prop_assert!(est >= count,
                        "estimate {est} under-counts true {count} for key {key}");
                    prop_assert!(est <= count + bound,
                        "estimate {est} > true {count} + bound {bound} for key {key}");
                }
                None => prop_assert!(count <= bound,
                    "unmonitored key {key} has true count {count} > bound {bound}"),
            }
        }
        prop_assert_eq!(sketch.total_hits(), n);
    }

    /// Any key whose true frequency exceeds N/K is guaranteed to be
    /// monitored (the heavy-hitter property of space saving).
    #[test]
    fn heavy_hitters_always_monitored(
        keys in proptest::collection::vec(0u64..16, 1..300),
        cap in 2usize..12,
    ) {
        let sketch = TopKSketch::new(cap);
        feed(&sketch, &keys);
        let bound = keys.len() as u64 / sketch.capacity() as u64;
        for (&key, &count) in &true_counts(&keys) {
            if count > bound {
                prop_assert!(sketch.estimate(key).is_some(),
                    "heavy hitter {key} (count {count} > {bound}) evicted");
            }
        }
    }

    /// Replaying the same stream into a fresh sketch reproduces the
    /// snapshot exactly, and merging two halves sequentially equals
    /// feeding the concatenated stream (single-threaded determinism —
    /// what the SimRng-driven simulator relies on for replay).
    #[test]
    fn merge_and_replay_deterministic(
        a in proptest::collection::vec(0u64..24, 0..150),
        b in proptest::collection::vec(0u64..24, 0..150),
        cap in 1usize..10,
    ) {
        let once = TopKSketch::new(cap);
        feed(&once, &a);
        feed(&once, &b);

        let again = TopKSketch::new(cap);
        feed(&again, &a);
        feed(&again, &b);
        prop_assert_eq!(once.snapshot(), again.snapshot());

        // Merge of a perfect (lossless) sketch into another preserves
        // totals: the merged total_hits equals the stream length.
        let left = TopKSketch::new(32);
        feed(&left, &a);
        let right = TopKSketch::new(32);
        feed(&right, &b);
        left.merge(&right);
        prop_assert_eq!(left.total_hits(), (a.len() + b.len()) as u64);
        let whole = TopKSketch::new(32);
        feed(&whole, &a);
        feed(&whole, &b);
        // Capacity 32 > key universe 24: nothing evicts, so the merged
        // snapshot must agree with the directly-fed one exactly.
        prop_assert_eq!(left.snapshot(), whole.snapshot());
    }
}
