//! A shared logical clock handing out timestamps.

use std::sync::atomic::{AtomicU64, Ordering};

/// Monotone logical clock. Timestamp 0 is reserved for initial versions.
#[derive(Debug)]
pub struct LogicalClock {
    next: AtomicU64,
}

impl Default for LogicalClock {
    fn default() -> Self {
        Self::new()
    }
}

impl LogicalClock {
    /// Clock starting at 1.
    pub fn new() -> Self {
        LogicalClock {
            next: AtomicU64::new(1),
        }
    }

    /// Take the next timestamp.
    pub fn tick(&self) -> u64 {
        self.next.fetch_add(1, Ordering::Relaxed)
    }

    /// Current value (the next timestamp that would be handed out).
    pub fn peek(&self) -> u64 {
        self.next.load(Ordering::Relaxed)
    }

    /// Advance the clock to at least `floor + 1` and return a timestamp
    /// `> floor` (used by protocols that must dominate observed stamps).
    pub fn tick_above(&self, floor: u64) -> u64 {
        loop {
            let cur = self.next.load(Ordering::Relaxed);
            let want = cur.max(floor + 1);
            if self
                .next
                .compare_exchange(cur, want + 1, Ordering::Relaxed, Ordering::Relaxed)
                .is_ok()
            {
                return want;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tick_is_monotone() {
        let c = LogicalClock::new();
        let a = c.tick();
        let b = c.tick();
        assert!(b > a);
        assert_eq!(a, 1);
    }

    #[test]
    fn peek_does_not_advance() {
        let c = LogicalClock::new();
        assert_eq!(c.peek(), 1);
        assert_eq!(c.peek(), 1);
    }

    #[test]
    fn tick_above_dominates_floor() {
        let c = LogicalClock::new();
        let t = c.tick_above(100);
        assert!(t > 100);
        assert!(c.tick() > t);
    }

    #[test]
    fn tick_above_low_floor_still_monotone() {
        let c = LogicalClock::new();
        let a = c.tick();
        let b = c.tick_above(0);
        assert!(b > a);
    }

    #[test]
    fn concurrent_ticks_unique() {
        use std::collections::HashSet;
        use std::sync::{Arc, Mutex};
        let c = Arc::new(LogicalClock::new());
        let seen = Arc::new(Mutex::new(HashSet::new()));
        let mut hs = Vec::new();
        for _ in 0..8 {
            let c = Arc::clone(&c);
            let seen = Arc::clone(&seen);
            hs.push(std::thread::spawn(move || {
                for _ in 0..500 {
                    assert!(seen.lock().unwrap().insert(c.tick()));
                }
            }));
        }
        for h in hs {
            h.join().unwrap();
        }
        assert_eq!(seen.lock().unwrap().len(), 4000);
    }
}
