//! Weihl's timestamps-and-initiation protocol \[17\] (simplified).
//!
//! Paper Section 2: "a completed transaction list is not required;
//! however, a read-only transaction has to perform synchronization
//! actions with a concurrent read-write transaction to avoid inconsistent
//! views. The synchronization is performed on timestamps associated with
//! the objects, and in some cases, this may lead to a race condition
//! where neither transaction may proceed with useful work."
//!
//! This implementation keeps the protocol's observable structure:
//!
//! * Read-write transactions run strict 2PL; at commit they choose a
//!   timestamp that dominates (a) the logical clock, (b) the write
//!   timestamps of everything they touched, and (c) the per-object
//!   **timestamp floors** raised by read-only transactions.
//! * A read-only transaction takes a timestamp at initiation. Each read
//!   must **synchronize with concurrent writers**: if the object has an
//!   uncommitted (pending) write, the reader cannot tell whether that
//!   write will serialize before or after it, so it waits — the mutual-
//!   waiting behaviour the paper criticizes. It then raises the object's
//!   floor to its own timestamp (a write to shared state) and reads the
//!   largest version `≤ ts`.
//!
//! Substitution note (recorded in DESIGN.md): Weihl's original
//! presentation covers several protocol variants with garbage-collection
//! integration; we implement the synchronization skeleton the 1989 paper
//! actually compares against — object-timestamp synchronization by
//! read-only transactions, no CTL, possible reader/writer waiting.

use crate::clock::LogicalClock;
use mvcc_cc::{LockError, LockManager, LockMode};
use mvcc_core::trace::TxnTrace;
use mvcc_core::{
    AbortReason, DbError, Engine, Metrics, MetricsSnapshot, OpSpec, RoOutcome, RoRead, RwOutcome,
    Tracer,
};
use mvcc_model::{ObjectId, TxnId};
use mvcc_storage::store::WaitOutcome;
use mvcc_storage::{MvStore, PendingVersion, StoreStats, Value};
use parking_lot::Mutex;
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

/// Simplified Weihl timestamps + initiation.
pub struct WeihlTi {
    store: Arc<MvStore>,
    locks: LockManager,
    clock: LogicalClock,
    /// Per-object read floors raised by read-only transactions: any
    /// future committed version of the object must carry a timestamp
    /// above its floor.
    floors: Mutex<HashMap<ObjectId, u64>>,
    /// Serializes commit-timestamp choice + version installation.
    commit_mu: Mutex<()>,
    next_token: AtomicU64,
    metrics: Metrics,
    tracer: Option<Tracer>,
    timeout: Duration,
}

impl Default for WeihlTi {
    fn default() -> Self {
        Self::new()
    }
}

impl WeihlTi {
    /// Fresh engine, tracing disabled.
    pub fn new() -> Self {
        Self::build(false)
    }

    /// Fresh engine with oracle tracing.
    pub fn traced() -> Self {
        Self::build(true)
    }

    /// Set the lock/reader-writer wait timeout (builder). The default
    /// (10 s) is effectively "wait forever" for benchmarks; fault
    /// experiments shrink it so stalled writers cannot wedge readers.
    pub fn with_timeout(mut self, timeout: Duration) -> Self {
        self.timeout = timeout;
        self
    }

    fn build(trace: bool) -> Self {
        WeihlTi {
            store: Arc::new(MvStore::new()),
            locks: LockManager::new(),
            clock: LogicalClock::new(),
            floors: Mutex::new(HashMap::new()),
            commit_mu: Mutex::new(()),
            next_token: AtomicU64::new(1),
            metrics: Metrics::new(),
            tracer: trace.then(Tracer::new),
            timeout: Duration::from_secs(10),
        }
    }

    /// The recorded history, if tracing is on.
    pub fn trace_history(&self) -> Option<mvcc_model::History> {
        self.tracer.as_ref().map(|t| t.history())
    }

    fn lock(&self, token: u64, obj: ObjectId, mode: LockMode) -> Result<(), DbError> {
        let m = &self.metrics;
        m.rw_sync_actions.fetch_add(1, Ordering::Relaxed);
        match self.locks.acquire(token, obj, mode, self.timeout, true) {
            Ok(a) => {
                if a.waited {
                    m.rw_blocks.fetch_add(1, Ordering::Relaxed);
                }
                Ok(())
            }
            Err(LockError::Deadlock) => Err(DbError::Aborted(AbortReason::Deadlock)),
            Err(LockError::Timeout) => Err(DbError::Aborted(AbortReason::WaitTimeout)),
        }
    }
}

impl Engine for WeihlTi {
    fn name(&self) -> String {
        "weihl-ti".into()
    }

    fn run_read_only(&self, keys: &[ObjectId]) -> Result<RoOutcome, DbError> {
        let m = &self.metrics;
        m.ro_begun.fetch_add(1, Ordering::Relaxed);
        let ts = self.clock.tick(); // initiation timestamp
        m.ro_sync_actions.fetch_add(1, Ordering::Relaxed);
        let mut trace = TxnTrace::new();
        let mut out = RoOutcome {
            sn: ts,
            reads: Vec::with_capacity(keys.len()),
            lag_at_start: 0, // sees all commits with ts' ≤ ts
        };
        for &k in keys {
            let mut blocked = false;
            let res = self.store.wait_until(k, self.timeout, |c| {
                // Synchronize with concurrent writers: an uncommitted
                // write's eventual timestamp is unknown — wait it out.
                if !c.pending().is_empty() {
                    if !blocked {
                        blocked = true;
                        m.ro_blocks.fetch_add(1, Ordering::Relaxed);
                    }
                    return WaitOutcome::Wait;
                }
                let v = c.at(ts).expect("initial version present");
                WaitOutcome::Ready((v.number, v.value.clone()))
            });
            match res {
                Ok((n, v)) => {
                    // Raise the floor so no writer can commit a version
                    // at or below our timestamp for this object.
                    let mut floors = self.floors.lock();
                    let f = floors.entry(k).or_insert(0);
                    *f = (*f).max(ts);
                    drop(floors);
                    m.ro_sync_actions.fetch_add(1, Ordering::Relaxed);
                    m.ro_reads.fetch_add(1, Ordering::Relaxed);
                    trace.read(k, n);
                    out.reads.push(RoRead::new(k, n, v));
                }
                Err(_) => {
                    m.ro_aborts.fetch_add(1, Ordering::Relaxed);
                    if let Some(t) = &self.tracer {
                        t.flush(TxnId((1 << 48) | ts), &trace, false);
                    }
                    return Err(DbError::Aborted(AbortReason::WaitTimeout));
                }
            }
        }
        m.ro_finished.fetch_add(1, Ordering::Relaxed);
        if let Some(t) = &self.tracer {
            let id = (1 << 48) | self.next_token.fetch_add(1, Ordering::Relaxed);
            t.flush(TxnId(id), &trace, true);
        }
        Ok(out)
    }

    fn run_read_write(&self, ops: &[OpSpec]) -> Result<RwOutcome, DbError> {
        let m = &self.metrics;
        m.rw_begun.fetch_add(1, Ordering::Relaxed);
        let token = self.next_token.fetch_add(1, Ordering::Relaxed);
        let mut locked: Vec<ObjectId> = Vec::new();
        let mut written: Vec<ObjectId> = Vec::new();
        let mut trace = TxnTrace::new();

        let fail = |e: DbError, locked: &[ObjectId], written: &[ObjectId], trace: &TxnTrace| {
            for &k in written {
                self.store.with(k, |c| {
                    c.discard_pending(TxnId(token));
                });
                self.store.notify(k);
            }
            self.locks.release_all(token, locked.iter());
            m.rw_aborted.fetch_add(1, Ordering::Relaxed);
            if e.abort_reason() == Some(AbortReason::Deadlock) {
                m.aborts_deadlock.fetch_add(1, Ordering::Relaxed);
            }
            if let Some(t) = &self.tracer {
                t.flush(TxnId((1 << 49) | token), trace, false);
            }
            Err(e)
        };

        let read_here = |k: ObjectId, trace: &mut TxnTrace| -> Value {
            self.store.with(k, |c| {
                if let Some(p) = c.pending_by(TxnId(token)) {
                    return p.value.clone();
                }
                let v = c.at(u64::MAX).expect("never empty");
                trace.read(k, v.number);
                v.value.clone()
            })
        };
        let write_here =
            |k: ObjectId, v: Value, written: &mut Vec<ObjectId>, trace: &mut TxnTrace| {
                self.store.with(k, |c| {
                    c.install_pending(PendingVersion::phi(TxnId(token), v));
                });
                if !written.contains(&k) {
                    written.push(k);
                }
                trace.write(k);
            };

        for op in ops {
            let step: Result<(), DbError> = (|| {
                match op {
                    OpSpec::Read(k) => {
                        self.lock(token, *k, LockMode::Shared)?;
                        if !locked.contains(k) {
                            locked.push(*k);
                        }
                        let _ = read_here(*k, &mut trace);
                    }
                    OpSpec::Write(k, v) => {
                        self.lock(token, *k, LockMode::Exclusive)?;
                        if !locked.contains(k) {
                            locked.push(*k);
                        }
                        write_here(*k, v.clone(), &mut written, &mut trace);
                    }
                    OpSpec::Increment(k, d) => {
                        self.lock(token, *k, LockMode::Exclusive)?;
                        if !locked.contains(k) {
                            locked.push(*k);
                        }
                        let cur = read_here(*k, &mut trace).as_u64().unwrap_or(0);
                        write_here(
                            *k,
                            Value::from_u64(cur.wrapping_add(*d)),
                            &mut written,
                            &mut trace,
                        );
                    }
                }
                Ok(())
            })();
            if let Err(e) = step {
                return fail(e, &locked, &written, &trace);
            }
        }

        // Commit: pick a timestamp above the clock, every floor, and every
        // write timestamp of touched objects; install versions.
        let tn = {
            let _crit = self.commit_mu.lock();
            let floors = self.floors.lock();
            let mut need = 0u64;
            for k in &locked {
                need = need.max(floors.get(k).copied().unwrap_or(0));
                m.rw_sync_actions.fetch_add(1, Ordering::Relaxed);
            }
            for k in &written {
                need = need.max(self.store.with(*k, |c| c.write_ts()));
            }
            drop(floors);
            let tn = self.clock.tick_above(need);
            for k in &written {
                let r = self
                    .store
                    .with(*k, |c| c.promote_pending(TxnId(token), Some(tn)));
                if let Err(e) = r {
                    return fail(
                        DbError::Internal(format!("weihl promote: {e}")),
                        &locked,
                        &written,
                        &trace,
                    );
                }
                self.store.notify(*k);
            }
            tn
        };

        self.locks.release_all(token, locked.iter());
        m.rw_committed.fetch_add(1, Ordering::Relaxed);
        if let Some(t) = &self.tracer {
            t.flush(TxnId(tn), &trace, true);
        }
        Ok(RwOutcome { tn })
    }

    fn seed(&self, obj: ObjectId, value: Value) {
        self.store.seed(obj, value);
    }

    fn metrics(&self) -> MetricsSnapshot {
        self.metrics.snapshot()
    }

    fn reset_metrics(&self) {
        self.metrics.reset();
    }

    fn store_stats(&self) -> StoreStats {
        self.store.stats()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn obj(n: u64) -> ObjectId {
        ObjectId(n)
    }

    fn w(k: u64, v: u64) -> OpSpec {
        OpSpec::Write(obj(k), Value::from_u64(v))
    }

    #[test]
    fn write_then_read() {
        let e = WeihlTi::new();
        let out_w = e.run_read_write(&[w(0, 7)]).unwrap();
        let out_r = e.run_read_only(&[obj(0)]).unwrap();
        assert_eq!(out_r.reads[0].version, out_w.tn);
    }

    #[test]
    fn commit_timestamp_dominates_ro_floor() {
        let e = WeihlTi::new();
        // RO with a high timestamp raises the floor on x.
        for _ in 0..5 {
            e.clock.tick();
        }
        let ro = e.run_read_only(&[obj(0)]).unwrap(); // ts 6, floor(x)=6
        assert_eq!(ro.sn, 6);
        // a later writer must commit above the floor
        let rw = e.run_read_write(&[w(0, 1)]).unwrap();
        assert!(rw.tn > 6, "tn {} must exceed the RO floor 6", rw.tn);
        // so a re-run of the same RO snapshot still reads version 0
        let v = e.store.read_at(obj(0), 6).unwrap();
        assert_eq!(v.0, 0);
    }

    #[test]
    fn ro_waits_for_concurrent_writer() {
        use std::thread;
        let e = Arc::new(WeihlTi::new());
        // a writer holds a pending write on x
        let token = e.next_token.fetch_add(1, Ordering::Relaxed);
        e.store.with(obj(0), |c| {
            c.install_pending(PendingVersion::phi(TxnId(token), Value::from_u64(9)))
        });
        let e2 = Arc::clone(&e);
        let h = thread::spawn(move || e2.run_read_only(&[obj(0)]).unwrap());
        thread::sleep(Duration::from_millis(40));
        // writer resolves (aborts here): reader proceeds
        e.store.with(obj(0), |c| {
            c.discard_pending(TxnId(token));
        });
        e.store.notify(obj(0));
        let out = h.join().unwrap();
        assert_eq!(out.reads[0].version, 0);
        assert!(e.metrics().ro_blocks >= 1, "RO must have synchronized");
    }

    #[test]
    fn concurrent_increments_correct() {
        use std::thread;
        let e = Arc::new(WeihlTi::new());
        e.seed(obj(0), Value::from_u64(0));
        let mut hs = Vec::new();
        for _ in 0..6 {
            let e = Arc::clone(&e);
            hs.push(thread::spawn(move || {
                let mut done = 0;
                while done < 30 {
                    match e.run_read_write(&[OpSpec::Increment(obj(0), 1)]) {
                        Ok(_) => done += 1,
                        Err(err) if err.is_retryable() => {}
                        Err(err) => panic!("{err}"),
                    }
                }
            }));
        }
        for h in hs {
            h.join().unwrap();
        }
        assert_eq!(e.store.read_latest(obj(0)).1.as_u64(), Some(180));
    }

    #[test]
    fn trace_is_serializable() {
        let e = WeihlTi::traced();
        for i in 0..12u64 {
            let _ = e.run_read_write(&[
                OpSpec::Read(obj(i % 3)),
                OpSpec::Increment(obj((i + 1) % 3), 1),
            ]);
            let _ = e.run_read_only(&[obj(0), obj(1), obj(2)]);
        }
        let h = e.trace_history().unwrap();
        let rep = mvcc_model::mvsg::check_tn_order(&h);
        assert!(rep.acyclic, "Weihl trace not 1SR: {:?}", rep.cycle);
    }
}
