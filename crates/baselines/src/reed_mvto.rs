//! Reed's multiversion timestamp ordering \[14\] — the baseline whose
//! read-only behaviour the paper's Section 2 criticizes:
//!
//! 1. read operations of read-only transactions "must be synchronized
//!    with the operations of read-write transactions, i.e., read
//!    operations may be blocked due to a pending write";
//! 2. they "have a significant concurrency control overhead since they
//!    must update certain information associated with the versions"
//!    (per-version read timestamps), and this "may result in a read-only
//!    transaction causing an abort of a read-write transaction";
//! 3. distributed read-only transactions would need two-phase commit
//!    (they write r-ts state) — surfaced here as the non-zero
//!    `ro_sync_actions` write count.
//!
//! The protocol: every transaction gets a timestamp at begin. A read of
//! `x` returns the version with the largest write timestamp `≤ ts(T)` and
//! raises that version's read timestamp to `ts(T)`; it blocks while a
//! pending write could still produce that version. A write of `x` is
//! rejected (transaction aborted) if the version it would supersede has
//! already been read by a younger transaction.

use crate::clock::LogicalClock;
use mvcc_core::trace::TxnTrace;
use mvcc_core::{
    AbortReason, DbError, Engine, Metrics, MetricsSnapshot, OpSpec, RoOutcome, RoRead, RwOutcome,
    Tracer,
};
use mvcc_model::{ObjectId, TxnId};
use mvcc_storage::store::WaitOutcome;
use mvcc_storage::{MvStore, PendingVersion, StoreStats, Value};
use parking_lot::Mutex;
use std::collections::HashMap;
use std::sync::atomic::Ordering;
use std::sync::Arc;
use std::time::Duration;

/// Reed-style multiversion timestamp ordering.
pub struct ReedMvto {
    store: Arc<MvStore>,
    clock: LogicalClock,
    metrics: Metrics,
    tracer: Option<Tracer>,
    /// `(object, version) → the read that holds the max r-ts came from a
    /// read-only transaction`. Used to attribute writer aborts to
    /// read-only interference (the paper's claim about this protocol).
    ro_read_marks: Mutex<HashMap<(ObjectId, u64), bool>>,
    wait_timeout: Duration,
}

impl Default for ReedMvto {
    fn default() -> Self {
        Self::new()
    }
}

impl ReedMvto {
    /// Fresh engine, tracing disabled.
    pub fn new() -> Self {
        Self::build(false)
    }

    /// Fresh engine with execution tracing for the oracle.
    pub fn traced() -> Self {
        Self::build(true)
    }

    fn build(trace: bool) -> Self {
        ReedMvto {
            store: Arc::new(MvStore::new()),
            clock: LogicalClock::new(),
            metrics: Metrics::new(),
            tracer: trace.then(Tracer::new),
            ro_read_marks: Mutex::new(HashMap::new()),
            wait_timeout: Duration::from_secs(10),
        }
    }

    /// The recorded history, if tracing is on.
    pub fn trace_history(&self) -> Option<mvcc_model::History> {
        self.tracer.as_ref().map(|t| t.history())
    }

    /// MVTO read: candidate = largest committed version `≤ ts`; wait out
    /// any pending write whose reserved number falls in
    /// `(candidate, ts]` (it would become the candidate); then stamp the
    /// candidate's r-ts.
    fn read(
        &self,
        obj: ObjectId,
        ts: u64,
        is_ro: bool,
        trace: &mut TxnTrace,
    ) -> Result<(u64, Value), DbError> {
        let m = &self.metrics;
        let mut blocked = false;
        let res = self.store.wait_until(obj, self.wait_timeout, |c| {
            if let Some(p) = c.pending_by(TxnId(ts)) {
                return WaitOutcome::Ready((ts, p.value.clone()));
            }
            let cand = c.at(ts).expect("initial version present").number;
            let must_wait = c
                .pending()
                .iter()
                .any(|p| p.reserved_number.is_some_and(|n| n > cand && n <= ts));
            if must_wait {
                if !blocked {
                    blocked = true;
                    if is_ro {
                        m.ro_blocks.fetch_add(1, Ordering::Relaxed);
                    } else {
                        m.rw_blocks.fetch_add(1, Ordering::Relaxed);
                    }
                }
                return WaitOutcome::Wait;
            }
            // Raise the candidate's read timestamp — a *write* to shared
            // concurrency-control state, performed even by read-only
            // transactions. This is the paper's cited overhead.
            let prev = c.exact(cand).map(|v| v.read_ts).unwrap_or(0);
            c.update_read_ts_of(cand, ts);
            if ts > prev {
                self.ro_read_marks.lock().insert((obj, cand), is_ro);
            }
            let v = c.exact(cand).expect("candidate exists");
            WaitOutcome::Ready((v.number, v.value.clone()))
        });
        if is_ro {
            m.ro_sync_actions.fetch_add(1, Ordering::Relaxed);
        } else {
            m.rw_sync_actions.fetch_add(1, Ordering::Relaxed);
        }
        match res {
            Ok((n, v)) => {
                trace.read(obj, n);
                Ok((n, v))
            }
            Err(_) => Err(DbError::Aborted(AbortReason::WaitTimeout)),
        }
    }

    fn write(&self, obj: ObjectId, ts: u64, value: Value) -> Result<(), DbError> {
        let m = &self.metrics;
        m.rw_sync_actions.fetch_add(1, Ordering::Relaxed);
        let mut blocked = false;
        let res = self.store.wait_until(obj, self.wait_timeout, |c| {
            if c.pending_by(TxnId(ts)).is_some() {
                c.install_pending(PendingVersion::stamped(TxnId(ts), ts, value.clone()));
                return WaitOutcome::Ready(Ok(()));
            }
            let cand = c.at(ts).expect("initial version present").number;
            let must_wait = c
                .pending()
                .iter()
                .any(|p| p.reserved_number.is_some_and(|n| n > cand && n <= ts));
            if must_wait {
                if !blocked {
                    blocked = true;
                    m.rw_blocks.fetch_add(1, Ordering::Relaxed);
                }
                return WaitOutcome::Wait;
            }
            let cand_v = c.exact(cand).expect("candidate exists");
            if cand_v.read_ts > ts {
                // A younger transaction already read the state this write
                // would change: abort (Reed's rule). Attribute the abort
                // if the offending reader was read-only.
                let by_ro = self
                    .ro_read_marks
                    .lock()
                    .get(&(obj, cand))
                    .copied()
                    .unwrap_or(false);
                if by_ro {
                    m.aborts_due_to_ro.fetch_add(1, Ordering::Relaxed);
                }
                return WaitOutcome::Ready(Err(DbError::Aborted(AbortReason::TimestampConflict)));
            }
            c.install_pending(PendingVersion::stamped(TxnId(ts), ts, value.clone()));
            WaitOutcome::Ready(Ok(()))
        });
        match res {
            Ok(inner) => inner,
            Err(_) => Err(DbError::Aborted(AbortReason::WaitTimeout)),
        }
    }

    fn cleanup(&self, ts: u64, written: &[ObjectId]) {
        for &obj in written {
            self.store.with(obj, |c| {
                c.discard_pending(TxnId(ts));
            });
            self.store.notify(obj);
        }
    }
}

impl Engine for ReedMvto {
    fn name(&self) -> String {
        "reed-mvto".into()
    }

    fn run_read_only(&self, keys: &[ObjectId]) -> Result<RoOutcome, DbError> {
        let m = &self.metrics;
        m.ro_begun.fetch_add(1, Ordering::Relaxed);
        // Timestamp acquisition is itself a synchronization action.
        let ts = self.clock.tick();
        m.ro_sync_actions.fetch_add(1, Ordering::Relaxed);
        let mut trace = TxnTrace::new();
        let mut out = RoOutcome {
            sn: ts,
            reads: Vec::with_capacity(keys.len()),
            lag_at_start: 0, // MVTO read-only txns see the latest state
        };
        for &k in keys {
            match self.read(k, ts, true, &mut trace) {
                Ok((n, v)) => out.reads.push(RoRead::new(k, n, v)),
                Err(e) => {
                    m.ro_aborts.fetch_add(1, Ordering::Relaxed);
                    if let Some(t) = &self.tracer {
                        t.flush(TxnId(ts), &trace, false);
                    }
                    return Err(e);
                }
            }
        }
        m.ro_finished.fetch_add(1, Ordering::Relaxed);
        if let Some(t) = &self.tracer {
            t.flush(TxnId(ts), &trace, true);
        }
        Ok(out)
    }

    fn run_read_write(&self, ops: &[OpSpec]) -> Result<RwOutcome, DbError> {
        let m = &self.metrics;
        m.rw_begun.fetch_add(1, Ordering::Relaxed);
        let ts = self.clock.tick();
        let mut trace = TxnTrace::new();
        let mut written: Vec<ObjectId> = Vec::new();
        let fail = |e: DbError, written: &[ObjectId], trace: &TxnTrace| {
            self.cleanup(ts, written);
            m.rw_aborted.fetch_add(1, Ordering::Relaxed);
            if e.abort_reason() == Some(AbortReason::TimestampConflict) {
                m.aborts_ts_conflict.fetch_add(1, Ordering::Relaxed);
            }
            if let Some(t) = &self.tracer {
                t.flush(TxnId(ts), trace, false);
            }
            Err(e)
        };
        for op in ops {
            let step: Result<(), DbError> = match op {
                OpSpec::Read(k) => self.read(*k, ts, false, &mut trace).map(|_| ()),
                OpSpec::Write(k, v) => self.write(*k, ts, v.clone()).map(|()| {
                    if !written.contains(k) {
                        written.push(*k);
                    }
                    trace.write(*k);
                }),
                OpSpec::Increment(k, d) => match self.read(*k, ts, false, &mut trace) {
                    Ok((_, v)) => {
                        let cur = v.as_u64().unwrap_or(0);
                        self.write(*k, ts, Value::from_u64(cur.wrapping_add(*d)))
                            .map(|()| {
                                if !written.contains(k) {
                                    written.push(*k);
                                }
                                trace.write(*k);
                            })
                    }
                    Err(e) => Err(e),
                },
            };
            if let Err(e) = step {
                return fail(e, &written, &trace);
            }
        }
        // Commit: promote every pending version.
        for &obj in &written {
            let r = self.store.with(obj, |c| c.promote_pending(TxnId(ts), None));
            if let Err(e) = r {
                return fail(
                    DbError::Internal(format!("mvto promote: {e}")),
                    &written,
                    &trace,
                );
            }
            self.store.notify(obj);
        }
        m.rw_committed.fetch_add(1, Ordering::Relaxed);
        if let Some(t) = &self.tracer {
            t.flush(TxnId(ts), &trace, true);
        }
        Ok(RwOutcome { tn: ts })
    }

    fn seed(&self, obj: ObjectId, value: Value) {
        self.store.seed(obj, value);
    }

    fn metrics(&self) -> MetricsSnapshot {
        self.metrics.snapshot()
    }

    fn reset_metrics(&self) {
        self.metrics.reset();
        self.ro_read_marks.lock().clear();
    }

    fn store_stats(&self) -> StoreStats {
        self.store.stats()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn obj(n: u64) -> ObjectId {
        ObjectId(n)
    }

    fn w(k: u64, v: u64) -> OpSpec {
        OpSpec::Write(obj(k), Value::from_u64(v))
    }

    #[test]
    fn basic_write_then_read() {
        let e = ReedMvto::new();
        e.run_read_write(&[w(0, 7)]).unwrap();
        let out = e.run_read_only(&[obj(0)]).unwrap();
        assert_eq!(out.reads.len(), 1);
        assert_eq!(out.reads[0].version, 1);
    }

    #[test]
    fn ro_read_can_doom_older_writer() {
        // The paper's headline complaint about MVTO: an RO transaction's
        // read timestamp aborts a slower read-write transaction.
        let e = ReedMvto::new();
        // Writer takes ts 1 but "is slow": we simulate by issuing the RO
        // (ts 2) read of x before the writer's write reaches x.
        let ro_ts = {
            // Start the RW first so its ts is older.
            // We drive the primitive calls directly to control timing.
            let rw_ts = e.clock.tick(); // 1
            let ro = e.run_read_only(&[obj(0)]).unwrap(); // ts 2, reads v0, r-ts(v0)=2
            let err = e.write(obj(0), rw_ts, Value::from_u64(1)).unwrap_err();
            assert_eq!(err, DbError::Aborted(AbortReason::TimestampConflict));
            ro.sn
        };
        assert_eq!(ro_ts, 2);
        assert_eq!(e.metrics().aborts_due_to_ro, 1);
    }

    #[test]
    fn ro_blocks_on_pending_write() {
        use std::thread;
        let e = Arc::new(ReedMvto::new());
        let rw_ts = e.clock.tick(); // 1
        e.write(obj(0), rw_ts, Value::from_u64(5)).unwrap(); // pending
        let e2 = Arc::clone(&e);
        let h = thread::spawn(move || e2.run_read_only(&[obj(0)]).unwrap());
        thread::sleep(Duration::from_millis(40));
        // commit the writer manually
        e.store
            .with(obj(0), |c| c.promote_pending(TxnId(rw_ts), None))
            .unwrap();
        e.store.notify(obj(0));
        let out = h.join().unwrap();
        assert_eq!(out.reads.len(), 1);
        assert_eq!(out.reads[0].version, 1);
        assert!(e.metrics().ro_blocks >= 1, "RO must have blocked");
    }

    #[test]
    fn late_write_after_young_rw_read_aborts() {
        let e = ReedMvto::new();
        let t1 = e.clock.tick();
        // Younger RW reads x
        e.run_read_write(&[OpSpec::Read(obj(0)), w(1, 1)]).unwrap(); // ts 2
        let err = e.write(obj(0), t1, Value::from_u64(9)).unwrap_err();
        assert_eq!(err, DbError::Aborted(AbortReason::TimestampConflict));
        // but this one was caused by an RW reader, not an RO
        assert_eq!(e.metrics().aborts_due_to_ro, 0);
    }

    #[test]
    fn write_into_the_past_allowed_when_unread() {
        let e = ReedMvto::new();
        let t1 = e.clock.tick(); // 1
        e.run_read_write(&[w(0, 20)]).unwrap(); // ts 2 commits version 2
                                                // T1 writes x "into the past" — nobody read version 0 with ts > 1.
        e.write(obj(0), t1, Value::from_u64(10)).unwrap();
        e.store
            .with(obj(0), |c| c.promote_pending(TxnId(t1), None))
            .unwrap();
        // Chain now has versions 0, 1, 2; a reader at ts 1 sees version 1.
        let v = e.store.read_at(obj(0), 1).unwrap();
        assert_eq!(v, (1, Value::from_u64(10)));
        assert_eq!(e.store.read_latest(obj(0)).0, 2);
    }

    #[test]
    fn ro_sync_actions_grow_with_reads() {
        let e = ReedMvto::new();
        e.run_read_write(&[w(0, 1), w(1, 2), w(2, 3)]).unwrap();
        e.reset_metrics();
        e.run_read_only(&[obj(0), obj(1), obj(2)]).unwrap();
        let m = e.metrics();
        // 1 for the timestamp + 1 per read (r-ts update)
        assert_eq!(m.ro_sync_actions, 4);
    }

    #[test]
    fn trace_is_serializable() {
        let e = ReedMvto::traced();
        for i in 0..10u64 {
            let _ = e.run_read_write(&[
                OpSpec::Read(obj(i % 3)),
                OpSpec::Increment(obj((i + 1) % 3), 1),
            ]);
            let _ = e.run_read_only(&[obj(0), obj(1)]);
        }
        let h = e.trace_history().unwrap();
        let rep = mvcc_model::mvsg::check_tn_order(&h);
        assert!(rep.acyclic, "MVTO trace not 1SR: {:?}", rep.cycle);
    }
}
