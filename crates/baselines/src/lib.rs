//! Baseline multiversion protocols — faithful reimplementations of the
//! algorithms Section 2 of the paper compares against, each exhibiting
//! the specific drawback the paper cites:
//!
//! * [`reed_mvto::ReedMvto`] — Reed's multiversion timestamp ordering
//!   \[14\]. Read-only transactions are timestamped like everyone else:
//!   their reads **update per-version read timestamps** (a write to
//!   shared state), they **block** behind pending writes, and they can
//!   **cause read-write transactions to abort**.
//! * [`chan_mv2pl::ChanMv2pl`] — Chan et al.'s multiversion 2PL \[7\].
//!   Read-only transactions carry a start timestamp plus a **completed
//!   transaction list (CTL)** copied at start; every read scans the
//!   version chain for the newest version whose creator appears in the
//!   copy. "Cumbersome and complex to deal with."
//! * [`weihl_ti::WeihlTi`] — Weihl's timestamps-and-initiation protocol
//!   \[17\]. No CTL, but read-only transactions must synchronize with
//!   concurrent read-write transactions through per-object timestamp
//!   floors, which can force mutual waiting/retry ("a race condition
//!   where neither transaction may proceed with useful work").
//! * [`sv_2pl::SingleVersion2pl`] — monoversion strict 2PL: the
//!   no-multiversioning control. Read-only transactions take shared
//!   locks, block writers, and can deadlock.
//!
//! Every baseline implements [`mvcc_core::Engine`], so the workload
//! driver and the experiment harness treat them interchangeably with the
//! paper's engine.

#![warn(missing_docs)]
#![deny(unsafe_code)]

pub mod chan_mv2pl;
pub mod clock;
pub mod reed_mvto;
pub mod sv_2pl;
pub mod weihl_ti;

pub use chan_mv2pl::ChanMv2pl;
pub use reed_mvto::ReedMvto;
pub use sv_2pl::SingleVersion2pl;
pub use weihl_ti::WeihlTi;
