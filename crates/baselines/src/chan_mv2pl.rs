//! Chan et al.'s multiversion two-phase locking \[7\] — the baseline with
//! the **completed transaction list (CTL)**.
//!
//! Read-write transactions run under strict 2PL; commit timestamps are
//! drawn from a counter at commit time, so the timestamp order equals the
//! serialization (lock-point) order. Each read-only transaction receives
//! a *start timestamp* and a **copy of the CTL** — "a list of all
//! read-write transactions that have committed successfully until that
//! time" — and each of its reads must find "the largest version of an
//! object smaller than the start timestamp of the transaction, and
//! ensur\[e\] that the creator of this version appears in the copy of the
//! completed transaction list". The paper calls this "cumbersome and
//! complex to deal with"; the costs this implementation surfaces are the
//! CTL copy at begin (O(recent commits), under a mutex) and the
//! per-read membership scan down the version chain.
//!
//! The CTL is pruned with a low-water mark (every timestamp below it is
//! committed), as the original protocol's deletion rule allows —
//! otherwise the copy cost would grow without bound.

use mvcc_cc::{LockError, LockManager, LockMode};
use mvcc_core::trace::TxnTrace;
use mvcc_core::{
    AbortReason, DbError, Engine, Metrics, MetricsSnapshot, OpSpec, RoOutcome, RoRead, RwOutcome,
    Tracer,
};
use mvcc_model::{ObjectId, TxnId};
use mvcc_storage::{MvStore, StoreStats, Value};
use parking_lot::Mutex;
use std::collections::BTreeSet;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

/// CTL state guarded by one mutex (the contention the paper hints at).
#[derive(Debug, Default)]
struct CtlState {
    /// Next commit timestamp.
    next_tn: u64,
    /// Commit timestamps handed out but not yet in the CTL.
    in_flight: BTreeSet<u64>,
    /// Committed timestamps ≥ `low_water`.
    ctl: BTreeSet<u64>,
    /// Every timestamp `< low_water` is committed or abandoned.
    low_water: u64,
}

impl CtlState {
    fn new() -> Self {
        CtlState {
            next_tn: 1,
            low_water: 1,
            ..Default::default()
        }
    }

    fn issue(&mut self) -> u64 {
        let tn = self.next_tn;
        self.next_tn += 1;
        self.in_flight.insert(tn);
        tn
    }

    fn complete(&mut self, tn: u64) {
        self.in_flight.remove(&tn);
        self.ctl.insert(tn);
        self.advance();
    }

    fn abandon(&mut self, tn: u64) {
        self.in_flight.remove(&tn);
        self.advance();
    }

    fn advance(&mut self) {
        let bound = self.in_flight.first().copied().unwrap_or(self.next_tn);
        self.low_water = bound;
        // Drop CTL entries below the low-water mark — they are implied.
        self.ctl = self.ctl.split_off(&bound);
    }
}

/// A read-only transaction's snapshot of the CTL.
#[derive(Debug, Clone)]
struct CtlCopy {
    start_ts: u64,
    low_water: u64,
    members: BTreeSet<u64>,
}

impl CtlCopy {
    fn contains(&self, creator: u64) -> bool {
        creator < self.low_water || self.members.contains(&creator)
    }
}

/// Chan-style multiversion two-phase locking with a CTL.
pub struct ChanMv2pl {
    store: Arc<MvStore>,
    locks: LockManager,
    ctl: Mutex<CtlState>,
    next_token: AtomicU64,
    metrics: Metrics,
    tracer: Option<Tracer>,
    lock_timeout: Duration,
}

impl Default for ChanMv2pl {
    fn default() -> Self {
        Self::new()
    }
}

impl ChanMv2pl {
    /// Fresh engine, tracing disabled.
    pub fn new() -> Self {
        Self::build(false)
    }

    /// Fresh engine with oracle tracing.
    pub fn traced() -> Self {
        Self::build(true)
    }

    fn build(trace: bool) -> Self {
        ChanMv2pl {
            store: Arc::new(MvStore::new()),
            locks: LockManager::new(),
            ctl: Mutex::new(CtlState::new()),
            next_token: AtomicU64::new(1),
            metrics: Metrics::new(),
            tracer: trace.then(Tracer::new),
            lock_timeout: Duration::from_secs(10),
        }
    }

    /// The recorded history, if tracing is on.
    pub fn trace_history(&self) -> Option<mvcc_model::History> {
        self.tracer.as_ref().map(|t| t.history())
    }

    /// Size of the live CTL (members above the low-water mark).
    pub fn ctl_len(&self) -> usize {
        self.ctl.lock().ctl.len()
    }

    fn lock(&self, token: u64, obj: ObjectId, mode: LockMode) -> Result<(), DbError> {
        let m = &self.metrics;
        m.rw_sync_actions.fetch_add(1, Ordering::Relaxed);
        match self
            .locks
            .acquire(token, obj, mode, self.lock_timeout, true)
        {
            Ok(a) => {
                if a.waited {
                    m.rw_blocks.fetch_add(1, Ordering::Relaxed);
                }
                Ok(())
            }
            Err(LockError::Deadlock) => Err(DbError::Aborted(AbortReason::Deadlock)),
            Err(LockError::Timeout) => Err(DbError::Aborted(AbortReason::WaitTimeout)),
        }
    }
}

impl Engine for ChanMv2pl {
    fn name(&self) -> String {
        "chan-mv2pl".into()
    }

    fn run_read_only(&self, keys: &[ObjectId]) -> Result<RoOutcome, DbError> {
        let m = &self.metrics;
        m.ro_begun.fetch_add(1, Ordering::Relaxed);
        // Start timestamp + CTL copy, under the CTL mutex. The copy cost
        // is proportional to the live CTL size.
        let copy = {
            let state = self.ctl.lock();
            CtlCopy {
                start_ts: state.next_tn,
                low_water: state.low_water,
                members: state.ctl.clone(),
            }
        };
        m.ro_sync_actions
            .fetch_add(1 + copy.members.len() as u64, Ordering::Relaxed);

        let mut trace = TxnTrace::new();
        let mut out = RoOutcome {
            sn: copy.start_ts,
            reads: Vec::with_capacity(keys.len()),
            lag_at_start: self.ctl.lock().in_flight.len() as u64,
        };
        for &k in keys {
            // Scan the chain downward for the newest version < start_ts
            // whose creator is in the CTL copy. Each membership test is a
            // synchronization action.
            let mut scanned = 0u64;
            let found = self.store.with(k, |c| {
                for v in c.committed().iter().rev() {
                    if v.number >= copy.start_ts {
                        continue;
                    }
                    scanned += 1;
                    if copy.contains(v.number) {
                        return Some((v.number, v.value.clone()));
                    }
                }
                None
            });
            m.ro_sync_actions.fetch_add(scanned, Ordering::Relaxed);
            m.ro_reads.fetch_add(1, Ordering::Relaxed);
            match found {
                Some((n, v)) => {
                    trace.read(k, n);
                    out.reads.push(RoRead::new(k, n, v));
                }
                None => {
                    m.ro_pruned_reads.fetch_add(1, Ordering::Relaxed);
                    if let Some(t) = &self.tracer {
                        t.flush(TxnId(1 << 48 | copy.start_ts), &trace, false);
                    }
                    return Err(DbError::VersionPruned {
                        obj: k,
                        sn: copy.start_ts,
                    });
                }
            }
        }
        m.ro_finished.fetch_add(1, Ordering::Relaxed);
        if let Some(t) = &self.tracer {
            // Unique anon id: RO transactions have no commit timestamp.
            let id = (1 << 48) | self.next_token.fetch_add(1, Ordering::Relaxed);
            t.flush(TxnId(id), &trace, true);
        }
        Ok(out)
    }

    fn run_read_write(&self, ops: &[OpSpec]) -> Result<RwOutcome, DbError> {
        let m = &self.metrics;
        m.rw_begun.fetch_add(1, Ordering::Relaxed);
        let token = self.next_token.fetch_add(1, Ordering::Relaxed);
        let mut locked: Vec<ObjectId> = Vec::new();
        let mut writes: Vec<(ObjectId, Value)> = Vec::new();
        let mut trace = TxnTrace::new();

        let read_latest = |k: ObjectId, writes: &[(ObjectId, Value)]| -> (u64, Value) {
            if let Some((_, v)) = writes.iter().rev().find(|(o, _)| *o == k) {
                return (u64::MAX, v.clone());
            }
            self.store.read_latest(k)
        };

        let fail = |e: DbError, token: u64, locked: &[ObjectId], trace: &TxnTrace| {
            self.locks.release_all(token, locked.iter());
            m.rw_aborted.fetch_add(1, Ordering::Relaxed);
            if e.abort_reason() == Some(AbortReason::Deadlock) {
                m.aborts_deadlock.fetch_add(1, Ordering::Relaxed);
            }
            if let Some(t) = &self.tracer {
                t.flush(TxnId((1 << 49) | token), trace, false);
            }
            Err(e)
        };

        for op in ops {
            let step: Result<(), DbError> = (|| {
                match op {
                    OpSpec::Read(k) => {
                        self.lock(token, *k, LockMode::Shared)?;
                        if !locked.contains(k) {
                            locked.push(*k);
                        }
                        let (n, _) = read_latest(*k, &writes);
                        if n != u64::MAX {
                            trace.read(*k, n);
                        }
                    }
                    OpSpec::Write(k, v) => {
                        self.lock(token, *k, LockMode::Exclusive)?;
                        if !locked.contains(k) {
                            locked.push(*k);
                        }
                        if let Some(slot) = writes.iter_mut().find(|(o, _)| *o == *k) {
                            slot.1 = v.clone();
                        } else {
                            writes.push((*k, v.clone()));
                        }
                        trace.write(*k);
                    }
                    OpSpec::Increment(k, d) => {
                        self.lock(token, *k, LockMode::Exclusive)?;
                        if !locked.contains(k) {
                            locked.push(*k);
                        }
                        let (n, v) = read_latest(*k, &writes);
                        if n != u64::MAX {
                            trace.read(*k, n);
                        }
                        let cur = v.as_u64().unwrap_or(0);
                        let newv = Value::from_u64(cur.wrapping_add(*d));
                        if let Some(slot) = writes.iter_mut().find(|(o, _)| *o == *k) {
                            slot.1 = newv;
                        } else {
                            writes.push((*k, newv));
                        }
                        trace.write(*k);
                    }
                }
                Ok(())
            })();
            if let Err(e) = step {
                return fail(e, token, &locked, &trace);
            }
        }

        // Commit: timestamp at lock point, install versions, append to CTL.
        let tn = self.ctl.lock().issue();
        for (k, v) in &writes {
            let r = self.store.with(*k, |c| c.insert_committed(tn, v.clone()));
            if let Err(e) = r {
                self.ctl.lock().abandon(tn);
                return fail(
                    DbError::Internal(format!("chan install: {e}")),
                    token,
                    &locked,
                    &trace,
                );
            }
        }
        self.ctl.lock().complete(tn);
        self.locks.release_all(token, locked.iter());
        m.rw_committed.fetch_add(1, Ordering::Relaxed);
        if let Some(t) = &self.tracer {
            t.flush(TxnId(tn), &trace, true);
        }
        Ok(RwOutcome { tn })
    }

    fn seed(&self, obj: ObjectId, value: Value) {
        self.store.seed(obj, value);
    }

    fn metrics(&self) -> MetricsSnapshot {
        self.metrics.snapshot()
    }

    fn reset_metrics(&self) {
        self.metrics.reset();
    }

    fn store_stats(&self) -> StoreStats {
        self.store.stats()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn obj(n: u64) -> ObjectId {
        ObjectId(n)
    }

    fn w(k: u64, v: u64) -> OpSpec {
        OpSpec::Write(obj(k), Value::from_u64(v))
    }

    #[test]
    fn write_then_read_only() {
        let e = ChanMv2pl::new();
        e.run_read_write(&[w(0, 7)]).unwrap();
        let out = e.run_read_only(&[obj(0)]).unwrap();
        assert_eq!(out.reads[0].version, 1);
        assert_eq!(out.sn, 2);
    }

    #[test]
    fn ctl_skips_in_flight_commits() {
        // A commit timestamp has been issued but the CTL entry not yet
        // added: a concurrent RO must not read that version.
        let e = ChanMv2pl::new();
        e.seed(obj(0), Value::from_u64(7));
        let tn = e.ctl.lock().issue(); // simulate in-flight committer
        e.store
            .with(obj(0), |c| c.insert_committed(tn, Value::from_u64(8)))
            .unwrap();
        let out = e.run_read_only(&[obj(0)]).unwrap();
        // reads the initial version, not the in-flight one
        assert_eq!(out.reads[0].version, 0);
        e.ctl.lock().complete(tn);
        let out2 = e.run_read_only(&[obj(0)]).unwrap();
        assert_eq!(out2.reads[0].version, tn);
    }

    #[test]
    fn ctl_low_water_prunes() {
        let e = ChanMv2pl::new();
        for i in 0..20u64 {
            e.run_read_write(&[w(i % 3, i)]).unwrap();
        }
        // all committed in order → everything below next_tn implied
        assert_eq!(e.ctl_len(), 0);
        let s = e.ctl.lock();
        assert_eq!(s.low_water, s.next_tn);
    }

    #[test]
    fn ro_sync_cost_includes_ctl_copy() {
        let e = ChanMv2pl::new();
        // leave a gap: issue a tn that stays in flight
        let _hole = e.ctl.lock().issue(); // tn 1 never completes
        for i in 0..5u64 {
            e.run_read_write(&[w(0, i)]).unwrap(); // tns 2..6 → CTL={2..6}
        }
        assert_eq!(e.ctl_len(), 5);
        e.reset_metrics();
        e.run_read_only(&[obj(0)]).unwrap();
        let m = e.metrics();
        // 1 (start) + 5 (CTL copy) + ≥1 scan steps
        assert!(m.ro_sync_actions >= 7, "got {}", m.ro_sync_actions);
    }

    #[test]
    fn rw_conflicts_handled_by_locks() {
        use std::thread;
        let e = Arc::new(ChanMv2pl::new());
        e.seed(obj(0), Value::from_u64(0));
        let mut hs = Vec::new();
        for _ in 0..6 {
            let e = Arc::clone(&e);
            hs.push(thread::spawn(move || {
                let mut done = 0;
                while done < 40 {
                    match e.run_read_write(&[OpSpec::Increment(obj(0), 1)]) {
                        Ok(_) => done += 1,
                        Err(err) if err.is_retryable() => {}
                        Err(err) => panic!("{err}"),
                    }
                }
            }));
        }
        for h in hs {
            h.join().unwrap();
        }
        let out = e.run_read_only(&[obj(0)]).unwrap();
        let v = e.store.read_at(obj(0), out.sn).unwrap().1;
        assert_eq!(v.as_u64(), Some(240));
    }

    #[test]
    fn trace_is_serializable() {
        let e = ChanMv2pl::traced();
        for i in 0..12u64 {
            let _ = e.run_read_write(&[
                OpSpec::Read(obj(i % 3)),
                OpSpec::Increment(obj((i + 1) % 3), 1),
            ]);
            let _ = e.run_read_only(&[obj(0), obj(1), obj(2)]);
        }
        let h = e.trace_history().unwrap();
        let rep = mvcc_model::mvsg::check_tn_order(&h);
        assert!(rep.acyclic, "Chan trace not 1SR: {:?}", rep.cycle);
    }
}
