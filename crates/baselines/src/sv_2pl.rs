//! Single-version strict two-phase locking — the **no-multiversioning**
//! control. One committed value per object; read-only transactions take
//! shared locks like everyone else, so they block writers, are blocked by
//! writers, and can be chosen as deadlock victims. This is the
//! monoversion world whose read/write interference multiversion schemes
//! exist to remove (paper Section 1).

use mvcc_cc::{LockError, LockManager, LockMode};
use mvcc_core::trace::TxnTrace;
use mvcc_core::{
    AbortReason, DbError, Engine, Metrics, MetricsSnapshot, OpSpec, RoOutcome, RoRead, RwOutcome,
    Tracer,
};
use mvcc_model::{ObjectId, TxnId};
use mvcc_storage::{StoreStats, Value};
use parking_lot::Mutex;
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Duration;

/// Single-version strict 2PL engine.
pub struct SingleVersion2pl {
    /// `object → (committing transaction number, value)`.
    data: Mutex<HashMap<ObjectId, (u64, Value)>>,
    locks: LockManager,
    next_token: AtomicU64,
    next_tn: AtomicU64,
    metrics: Metrics,
    tracer: Option<Tracer>,
    lock_timeout: Duration,
}

impl Default for SingleVersion2pl {
    fn default() -> Self {
        Self::new()
    }
}

impl SingleVersion2pl {
    /// Fresh engine, tracing disabled.
    pub fn new() -> Self {
        Self::build(false)
    }

    /// Fresh engine with oracle tracing.
    pub fn traced() -> Self {
        Self::build(true)
    }

    fn build(trace: bool) -> Self {
        SingleVersion2pl {
            data: Mutex::new(HashMap::new()),
            locks: LockManager::new(),
            next_token: AtomicU64::new(1),
            next_tn: AtomicU64::new(1),
            metrics: Metrics::new(),
            tracer: trace.then(Tracer::new),
            lock_timeout: Duration::from_secs(10),
        }
    }

    /// The recorded history, if tracing is on.
    pub fn trace_history(&self) -> Option<mvcc_model::History> {
        self.tracer.as_ref().map(|t| t.history())
    }

    fn lock(&self, token: u64, obj: ObjectId, mode: LockMode, is_ro: bool) -> Result<(), DbError> {
        let m = &self.metrics;
        if is_ro {
            m.ro_sync_actions.fetch_add(1, Ordering::Relaxed);
        } else {
            m.rw_sync_actions.fetch_add(1, Ordering::Relaxed);
        }
        match self
            .locks
            .acquire(token, obj, mode, self.lock_timeout, true)
        {
            Ok(a) => {
                if a.waited {
                    if is_ro {
                        m.ro_blocks.fetch_add(1, Ordering::Relaxed);
                    } else {
                        m.rw_blocks.fetch_add(1, Ordering::Relaxed);
                    }
                }
                Ok(())
            }
            Err(LockError::Deadlock) => Err(DbError::Aborted(AbortReason::Deadlock)),
            Err(LockError::Timeout) => Err(DbError::Aborted(AbortReason::WaitTimeout)),
        }
    }

    fn current(&self, obj: ObjectId) -> (u64, Value) {
        self.data
            .lock()
            .get(&obj)
            .cloned()
            .unwrap_or((0, Value::empty()))
    }
}

impl Engine for SingleVersion2pl {
    fn name(&self) -> String {
        "sv-2pl".into()
    }

    fn run_read_only(&self, keys: &[ObjectId]) -> Result<RoOutcome, DbError> {
        let m = &self.metrics;
        m.ro_begun.fetch_add(1, Ordering::Relaxed);
        let token = self.next_token.fetch_add(1, Ordering::Relaxed);
        let mut locked: Vec<ObjectId> = Vec::new();
        let mut trace = TxnTrace::new();
        let mut out = RoOutcome {
            sn: 0,
            reads: Vec::with_capacity(keys.len()),
            lag_at_start: 0, // reads current state — at the price of locks
        };
        for &k in keys {
            if let Err(e) = self.lock(token, k, LockMode::Shared, true) {
                self.locks.release_all(token, locked.iter());
                m.ro_aborts.fetch_add(1, Ordering::Relaxed);
                if let Some(t) = &self.tracer {
                    t.flush(TxnId((1 << 48) | token), &trace, false);
                }
                return Err(e);
            }
            locked.push(k);
            let (n, v) = self.current(k);
            m.ro_reads.fetch_add(1, Ordering::Relaxed);
            trace.read(k, n);
            out.reads.push(RoRead::new(k, n, v));
        }
        // strictness: hold every lock until the end
        self.locks.release_all(token, locked.iter());
        m.ro_finished.fetch_add(1, Ordering::Relaxed);
        if let Some(t) = &self.tracer {
            t.flush(TxnId((1 << 48) | token), &trace, true);
        }
        Ok(out)
    }

    fn run_read_write(&self, ops: &[OpSpec]) -> Result<RwOutcome, DbError> {
        let m = &self.metrics;
        m.rw_begun.fetch_add(1, Ordering::Relaxed);
        let token = self.next_token.fetch_add(1, Ordering::Relaxed);
        let mut locked: Vec<ObjectId> = Vec::new();
        let mut writes: Vec<(ObjectId, Value)> = Vec::new();
        let mut trace = TxnTrace::new();

        let fail = |e: DbError, locked: &[ObjectId], trace: &TxnTrace| {
            self.locks.release_all(token, locked.iter());
            m.rw_aborted.fetch_add(1, Ordering::Relaxed);
            if e.abort_reason() == Some(AbortReason::Deadlock) {
                m.aborts_deadlock.fetch_add(1, Ordering::Relaxed);
            }
            if let Some(t) = &self.tracer {
                t.flush(TxnId((1 << 49) | token), trace, false);
            }
            Err(e)
        };

        for op in ops {
            let step: Result<(), DbError> = (|| {
                let buffered = |k: &ObjectId, writes: &[(ObjectId, Value)]| {
                    writes
                        .iter()
                        .rev()
                        .find(|(o, _)| o == k)
                        .map(|(_, v)| v.clone())
                };
                match op {
                    OpSpec::Read(k) => {
                        self.lock(token, *k, LockMode::Shared, false)?;
                        if !locked.contains(k) {
                            locked.push(*k);
                        }
                        if buffered(k, &writes).is_none() {
                            let (n, _) = self.current(*k);
                            trace.read(*k, n);
                        }
                    }
                    OpSpec::Write(k, v) => {
                        self.lock(token, *k, LockMode::Exclusive, false)?;
                        if !locked.contains(k) {
                            locked.push(*k);
                        }
                        if let Some(slot) = writes.iter_mut().find(|(o, _)| *o == *k) {
                            slot.1 = v.clone();
                        } else {
                            writes.push((*k, v.clone()));
                        }
                        trace.write(*k);
                    }
                    OpSpec::Increment(k, d) => {
                        self.lock(token, *k, LockMode::Exclusive, false)?;
                        if !locked.contains(k) {
                            locked.push(*k);
                        }
                        let cur = match buffered(k, &writes) {
                            Some(v) => v.as_u64().unwrap_or(0),
                            None => {
                                let (n, v) = self.current(*k);
                                trace.read(*k, n);
                                v.as_u64().unwrap_or(0)
                            }
                        };
                        let newv = Value::from_u64(cur.wrapping_add(*d));
                        if let Some(slot) = writes.iter_mut().find(|(o, _)| *o == *k) {
                            slot.1 = newv;
                        } else {
                            writes.push((*k, newv));
                        }
                        trace.write(*k);
                    }
                }
                Ok(())
            })();
            if let Err(e) = step {
                return fail(e, &locked, &trace);
            }
        }

        let tn = self.next_tn.fetch_add(1, Ordering::Relaxed);
        {
            let mut data = self.data.lock();
            for (k, v) in &writes {
                data.insert(*k, (tn, v.clone()));
            }
        }
        self.locks.release_all(token, locked.iter());
        m.rw_committed.fetch_add(1, Ordering::Relaxed);
        if let Some(t) = &self.tracer {
            t.flush(TxnId(tn), &trace, true);
        }
        Ok(RwOutcome { tn })
    }

    fn seed(&self, obj: ObjectId, value: Value) {
        self.data.lock().insert(obj, (0, value));
    }

    fn metrics(&self) -> MetricsSnapshot {
        self.metrics.snapshot()
    }

    fn reset_metrics(&self) {
        self.metrics.reset();
    }

    fn store_stats(&self) -> StoreStats {
        let data = self.data.lock();
        StoreStats {
            objects: data.len(),
            committed_versions: data.len(),
            pending_versions: 0,
            payload_bytes: data.values().map(|(_, v)| v.len()).sum(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;
    use std::thread;

    fn obj(n: u64) -> ObjectId {
        ObjectId(n)
    }

    fn w(k: u64, v: u64) -> OpSpec {
        OpSpec::Write(obj(k), Value::from_u64(v))
    }

    #[test]
    fn write_then_read() {
        let e = SingleVersion2pl::new();
        let rw = e.run_read_write(&[w(0, 7)]).unwrap();
        let ro = e.run_read_only(&[obj(0)]).unwrap();
        assert_eq!(ro.reads[0].version, rw.tn);
    }

    #[test]
    fn only_one_version_is_kept() {
        let e = SingleVersion2pl::new();
        for v in 1..=5u64 {
            e.run_read_write(&[w(0, v)]).unwrap();
        }
        let stats = e.store_stats();
        assert_eq!(stats.committed_versions, 1);
        assert_eq!(e.current(obj(0)).1.as_u64(), Some(5));
    }

    #[test]
    fn ro_blocks_writer() {
        // The monoversion pathology the paper's Section 1 motivates
        // against: a reader's shared lock delays a writer.
        let e = Arc::new(SingleVersion2pl::new());
        e.seed(obj(0), Value::from_u64(1));
        // hold an S lock via a raw token to control timing
        let token = e.next_token.fetch_add(1, Ordering::Relaxed);
        e.locks
            .acquire(
                token,
                obj(0),
                LockMode::Shared,
                Duration::from_secs(1),
                true,
            )
            .unwrap();
        let e2 = Arc::clone(&e);
        let h = thread::spawn(move || e2.run_read_write(&[w(0, 2)]));
        thread::sleep(Duration::from_millis(40));
        assert!(!h.is_finished(), "writer must be blocked by the reader");
        e.locks.release_all(token, &[obj(0)]);
        h.join().unwrap().unwrap();
        assert!(e.metrics().rw_blocks >= 1);
    }

    #[test]
    fn ro_can_deadlock() {
        // RO ↔ RW deadlock: impossible under the paper's scheme, routine
        // under single-version 2PL.
        let e = Arc::new(SingleVersion2pl::new());
        let barrier = Arc::new(std::sync::Barrier::new(2));
        let e1 = Arc::clone(&e);
        let b1 = Arc::clone(&barrier);
        let ro = thread::spawn(move || {
            // reads x then y
            let token = e1.next_token.fetch_add(1, Ordering::Relaxed);
            e1.lock(token, obj(0), LockMode::Shared, true).unwrap();
            b1.wait();
            let r = e1.lock(token, obj(1), LockMode::Shared, true);
            e1.locks.release_all(token, &[obj(0), obj(1)]);
            r
        });
        let e2 = Arc::clone(&e);
        let b2 = Arc::clone(&barrier);
        let rw = thread::spawn(move || {
            let token = e2.next_token.fetch_add(1, Ordering::Relaxed);
            e2.lock(token, obj(1), LockMode::Exclusive, false).unwrap();
            b2.wait();
            let r = e2.lock(token, obj(0), LockMode::Exclusive, false);
            e2.locks.release_all(token, &[obj(0), obj(1)]);
            r
        });
        let r1 = ro.join().unwrap();
        let r2 = rw.join().unwrap();
        assert!(r1.is_err() || r2.is_err(), "one side must be victimized");
    }

    #[test]
    fn trace_is_serializable() {
        let e = SingleVersion2pl::traced();
        for i in 0..12u64 {
            let _ = e.run_read_write(&[
                OpSpec::Read(obj(i % 3)),
                OpSpec::Increment(obj((i + 1) % 3), 1),
            ]);
            let _ = e.run_read_only(&[obj(0), obj(1), obj(2)]);
        }
        let h = e.trace_history().unwrap();
        let rep = mvcc_model::mvsg::check_tn_order(&h);
        assert!(rep.acyclic, "SV-2PL trace not 1SR: {:?}", rep.cycle);
    }
}
