//! Property tests for [`RetryPolicy`]: the retry discipline every runner
//! (engine `run_rw_with`, workload driver) leans on.
//!
//! Three contracts, over arbitrary policies:
//!
//! * **bounded growth** — jitter-free backoff is nondecreasing in the
//!   attempt number and never exceeds `max_backoff`;
//! * **bounded jitter** — a jittered sleep never exceeds the jitter-free
//!   sleep and never undershoots `(1 − jitter)` of it;
//! * **attempt budget** — a permanently failing transaction body is
//!   attempted exactly `max(1, max_attempts)` times, and the virtual
//!   time spent sleeping equals the policy's own backoff schedule (the
//!   sleeps go through the injected clock, nowhere else);
//! * **deadline budget** — `backoff_within` grants exactly the sleeps
//!   the plain schedule would take and refuses precisely when the
//!   remaining budget cannot fund them, and `run_rw_deadline` therefore
//!   stops retrying the moment the next backoff would not fit — its
//!   virtual sleeping always totals strictly less than the budget.

use mvcc_core::cc_api::{CcContext, ConcurrencyControl};
use mvcc_core::{
    AbortReason, DbConfig, DbError, MvDatabase, RetryPolicy, SimClock, SplitMixRng, TxnOptions,
};
use mvcc_model::ObjectId;
use mvcc_storage::Value;
use proptest::prelude::*;
use std::time::Duration;

// ---------------------------------------------------------------------------
// A trivial no-conflict protocol, just enough to drive `run_rw_with`.
// (The real protocols live in `mvcc-cc`, which depends on this crate.)

struct SerialCc;

struct SerialTxn {
    tn: u64,
    writes: Vec<(ObjectId, Value)>,
}

impl ConcurrencyControl for SerialCc {
    type Txn = SerialTxn;

    fn name(&self) -> &'static str {
        "serial-test"
    }

    fn begin(&self, ctx: &CcContext) -> Result<SerialTxn, DbError> {
        Ok(SerialTxn {
            tn: ctx.vc.register(),
            writes: Vec::new(),
        })
    }

    fn read(
        &self,
        ctx: &CcContext,
        txn: &mut SerialTxn,
        obj: ObjectId,
    ) -> Result<(u64, Value), DbError> {
        if let Some((_, v)) = txn.writes.iter().rev().find(|(o, _)| *o == obj) {
            return Ok((u64::MAX, v.clone()));
        }
        Ok(ctx.store.read_latest(obj))
    }

    fn read_for_update(
        &self,
        ctx: &CcContext,
        txn: &mut SerialTxn,
        obj: ObjectId,
    ) -> Result<(u64, Value), DbError> {
        self.read(ctx, txn, obj)
    }

    fn write(
        &self,
        _ctx: &CcContext,
        txn: &mut SerialTxn,
        obj: ObjectId,
        value: Value,
    ) -> Result<(), DbError> {
        txn.writes.push((obj, value));
        Ok(())
    }

    fn commit(&self, ctx: &CcContext, txn: SerialTxn) -> Result<u64, DbError> {
        for (obj, value) in &txn.writes {
            ctx.store.with(*obj, |c| {
                c.insert_committed(txn.tn, value.clone())
                    .map_err(|e| DbError::Internal(format!("serial commit: {e}")))
            })?;
        }
        ctx.vc.complete(txn.tn);
        Ok(txn.tn)
    }

    fn abort(&self, ctx: &CcContext, txn: SerialTxn) {
        ctx.vc.discard(txn.tn);
    }
}

fn policy(
    max_attempts: u32,
    base_us: u64,
    max_us: u64,
    jitter_milli: u32,
    seed: u64,
) -> RetryPolicy {
    RetryPolicy {
        max_attempts,
        base_backoff: Duration::from_micros(base_us),
        max_backoff: Duration::from_micros(max_us),
        jitter: jitter_milli as f64 / 1000.0,
        seed,
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// Jitter-free backoff is nondecreasing in the attempt number and
    /// saturates at `max_backoff`.
    #[test]
    fn backoff_monotone_up_to_cap(
        base_us in 1u64..1_000,
        extra_us in 0u64..100_000,
        seed in any::<u64>(),
    ) {
        let p = policy(8, base_us, base_us + extra_us, 0, seed);
        let mut j = p.jitter_stream();
        let mut prev = Duration::ZERO;
        for attempt in 0..32 {
            let b = p.backoff_for(attempt, &mut j);
            prop_assert!(b >= prev, "attempt {attempt}: {b:?} < {prev:?}");
            prop_assert!(b <= p.max_backoff, "attempt {attempt}: {b:?} above cap");
            prev = b;
        }
        // Far past the doubling range the cap must be reached exactly.
        prop_assert_eq!(p.backoff_for(40, &mut j), p.max_backoff);
    }

    /// A jittered sleep stays inside `[(1 − jitter) · exp, exp]` where
    /// `exp` is the jitter-free sleep for the same attempt.
    #[test]
    fn jitter_stays_bounded(
        base_us in 1u64..1_000,
        extra_us in 0u64..100_000,
        jitter_milli in 0u32..=1_000,
        seed in any::<u64>(),
        attempt in 0u32..24,
    ) {
        let p = policy(8, base_us, base_us + extra_us, jitter_milli, seed);
        let exp = {
            let flat = policy(8, base_us, base_us + extra_us, 0, seed);
            flat.backoff_for(attempt, &mut flat.jitter_stream())
        };
        let b = p.backoff_for(attempt, &mut p.jitter_stream());
        prop_assert!(b <= exp, "jittered {b:?} above base {exp:?}");
        let floor = exp.mul_f64((1.0 - p.jitter - 1e-9).max(0.0));
        prop_assert!(b >= floor, "jittered {b:?} below floor {floor:?}");
    }

    /// Same seed, same sleep sequence — with the policy's own stream and
    /// with an injected shared rng alike.
    #[test]
    fn same_seed_same_schedule(
        seed in any::<u64>(),
        jitter_milli in 0u32..=1_000,
    ) {
        let p = policy(8, 50, 5_000, jitter_milli, seed);
        let (mut a, mut b) = (p.jitter_stream(), p.jitter_stream());
        for attempt in 0..16 {
            prop_assert_eq!(p.backoff_for(attempt, &mut a), p.backoff_for(attempt, &mut b));
        }
        let (ra, rb) = (SplitMixRng::new(seed), SplitMixRng::new(seed));
        let mut ja = p.jitter_stream_with(Some(&ra));
        let mut jb = p.jitter_stream_with(Some(&rb));
        for attempt in 0..16 {
            prop_assert_eq!(p.backoff_for(attempt, &mut ja), p.backoff_for(attempt, &mut jb));
        }
    }

    /// A permanently failing body is attempted exactly
    /// `max(1, max_attempts)` times, the runner reports the last error,
    /// and every backoff sleep lands on the injected clock with exactly
    /// the durations the policy itself predicts.
    #[test]
    fn attempt_budget_and_sleeps_respected(
        max_attempts in 0u32..12,
        base_us in 0u64..500,
        jitter_milli in 0u32..=1_000,
        seed in any::<u64>(),
    ) {
        let clock = SimClock::new();
        let db = MvDatabase::with_config(
            SerialCc,
            DbConfig::default().with_clock(clock.clone()),
        );
        let p = policy(max_attempts, base_us, base_us * 64, jitter_milli, seed);

        let mut attempts = 0u32;
        let out: Result<(u64, ()), DbError> = db.run_rw_with(&p, |_t| {
            attempts += 1;
            Err(DbError::Aborted(AbortReason::ValidationFailed))
        });

        let budget = max_attempts.max(1);
        prop_assert_eq!(attempts, budget, "attempt budget violated");
        prop_assert!(
            matches!(out, Err(DbError::Aborted(AbortReason::ValidationFailed))),
            "runner must surface the last retryable error"
        );

        // Replay the policy's own schedule: the virtual clock must have
        // accumulated exactly the predicted sleeps (no hidden waits, no
        // skipped backoffs).
        let mut j = p.jitter_stream();
        let mut want = Duration::ZERO;
        for attempt in 1..budget {
            want += p.backoff_for(attempt - 1, &mut j);
        }
        prop_assert_eq!(
            clock.elapsed_ns(),
            want.as_nanos() as u64,
            "slept {}ns, policy schedule says {}ns",
            clock.elapsed_ns(),
            want.as_nanos()
        );
    }

    /// `backoff_within` is `backoff_for` with a refusal clause: it
    /// returns exactly the schedule's sleep when that sleep fits the
    /// remaining budget, and `None` (never a truncated sleep) when it
    /// does not. Zero-vs-zero refuses: a retry funded with nothing
    /// would begin already expired.
    #[test]
    fn backoff_within_matches_schedule_and_budget(
        base_us in 0u64..1_000,
        extra_us in 0u64..100_000,
        jitter_milli in 0u32..=1_000,
        seed in any::<u64>(),
        attempt in 0u32..24,
        remaining_us in 0u64..200_000,
    ) {
        let p = policy(8, base_us, base_us + extra_us, jitter_milli, seed);
        let remaining = Duration::from_micros(remaining_us);
        // Fresh streams draw the same first value, so the two calls see
        // identical jitter.
        let want = p.backoff_for(attempt, &mut p.jitter_stream());
        let got = p.backoff_within(attempt, &mut p.jitter_stream(), remaining);
        if want >= remaining {
            prop_assert_eq!(got, None, "sleep {want:?} does not fit {remaining:?}");
        } else {
            prop_assert_eq!(got, Some(want), "granted sleep must equal the schedule's");
        }
    }

    /// `run_rw_deadline` against a permanently failing body: retrying
    /// stops exactly when the next backoff no longer fits the remaining
    /// budget, every granted sleep lands on the injected clock, and the
    /// total virtual sleep stays strictly below the budget.
    #[test]
    fn deadline_runner_stops_when_budget_cannot_fund_backoff(
        max_attempts in 1u32..12,
        base_us in 0u64..500,
        jitter_milli in 0u32..=1_000,
        seed in any::<u64>(),
        budget_us in 0u64..20_000,
    ) {
        let clock = SimClock::new();
        let db = MvDatabase::with_config(
            SerialCc,
            DbConfig::default().with_clock(clock.clone()),
        );
        let p = policy(max_attempts, base_us, base_us * 64, jitter_milli, seed);
        let budget = Duration::from_micros(budget_us);
        let opts = TxnOptions::default().with_deadline(budget);

        let mut attempts = 0u32;
        let out: Result<(u64, ()), DbError> = db.run_rw_deadline(&p, &opts, |_t| {
            attempts += 1;
            Err(DbError::Aborted(AbortReason::ValidationFailed))
        });
        prop_assert!(out.is_err(), "a permanently failing body cannot succeed");

        // Replay the policy's schedule against the budget: attempt n+1
        // happens iff its backoff fits what the earlier sleeps left.
        let mut j = p.jitter_stream();
        let mut want_attempts = 1u32;
        let mut slept = Duration::ZERO;
        for attempt in 1..max_attempts.max(1) {
            let sleep = p.backoff_for(attempt - 1, &mut j);
            if sleep >= budget.saturating_sub(slept) {
                break;
            }
            slept += sleep;
            want_attempts += 1;
        }
        prop_assert_eq!(attempts, want_attempts, "early-stop point diverged");
        prop_assert_eq!(
            clock.elapsed_ns(),
            slept.as_nanos() as u64,
            "virtual sleep must equal the granted schedule"
        );
        prop_assert!(
            slept < budget || budget.is_zero(),
            "sleeping consumed the whole deadline budget"
        );
    }

    /// A body that succeeds on attempt `k` stops retrying immediately.
    #[test]
    fn stops_at_first_success(
        succeed_at in 1u32..6,
        seed in any::<u64>(),
    ) {
        let db = MvDatabase::with_config(SerialCc, DbConfig::default());
        let p = policy(8, 0, 0, 0, seed);
        let mut attempts = 0u32;
        let out = db.run_rw_with(&p, |t| {
            attempts += 1;
            if attempts < succeed_at {
                return Err(DbError::Aborted(AbortReason::ValidationFailed));
            }
            t.write(ObjectId(0), Value::from_u64(attempts as u64))
        });
        prop_assert!(out.is_ok());
        prop_assert_eq!(attempts, succeed_at);
    }
}
