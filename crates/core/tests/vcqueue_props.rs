//! Property tests for the version-control queue under arbitrary
//! interleavings of register / claim / complete / discard / reap.
//!
//! Two invariants from the paper, plus the reaper-safety refinement:
//!
//! * **vtnc monotonicity** — the number reported by `drain_completed`
//!   never decreases, and every reported number belongs to a transaction
//!   that completed (never a discarded or reaped one).
//! * **visibility property** — every entry still queued is strictly
//!   above the current `vtnc`; nothing becomes visible while an older
//!   registration is outstanding.
//! * **reaper safety** — `reap_expired` only ever removes entries that
//!   are `Active` past their deadline; claimed (`Committing`) and
//!   `Complete` entries are untouchable, and forced discards preserve
//!   both properties above.

use mvcc_core::vcqueue::VcQueue;
use proptest::prelude::*;
use std::collections::BTreeMap;
use std::time::{Duration, Instant};

#[derive(Debug, Clone, Copy, PartialEq)]
enum Model {
    Active { expired: bool },
    Committing,
    Complete,
}

fn check_invariants(
    q: &VcQueue,
    model: &BTreeMap<u64, Model>,
    vtnc: Option<u64>,
    completed: &[u64],
) {
    // Visibility: everything still registered is above the frontier.
    if let (Some(v), Some((&min_tn, _))) = (vtnc, model.iter().next()) {
        assert!(v < min_tn, "vtnc {v} reached a still-queued tn {min_tn}");
    }
    assert_eq!(q.len(), model.len(), "queue/model length diverged");
    // The frontier is always a completed transaction's number.
    if let Some(v) = vtnc {
        assert!(completed.contains(&v), "vtnc {v} was never completed");
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn queue_matches_model_under_any_interleaving(
        steps in proptest::collection::vec((0u8..6, 0usize..8), 1..80),
    ) {
        let base = Instant::now();
        let expired_deadline = base; // reap uses `now = base + 1s`
        let live_deadline = base + Duration::from_secs(3600);
        let reap_now = base + Duration::from_secs(1);

        let mut q = VcQueue::new();
        let mut model: BTreeMap<u64, Model> = BTreeMap::new();
        let mut next_tn = 1u64;
        let mut vtnc: Option<u64> = None;
        let mut completed: Vec<u64> = Vec::new();

        let drain = |q: &mut VcQueue,
                         model: &mut BTreeMap<u64, Model>,
                         vtnc: &mut Option<u64>,
                         completed: &[u64]| {
            if let Some(new) = q.drain_completed() {
                assert!(vtnc.is_none_or(|old| old < new), "vtnc went backwards");
                // Drained entries must form the completed prefix of the model.
                while let Some((&tn, &st)) = model.iter().next() {
                    if tn > new { break; }
                    assert_eq!(st, Model::Complete, "drained past a non-complete entry");
                    model.remove(&tn);
                }
                assert!(completed.contains(&new));
                *vtnc = Some(new);
            }
        };

        for (kind, pick) in steps {
            let tns: Vec<u64> = model.keys().copied().collect();
            let target = (!tns.is_empty()).then(|| tns[pick % tns.len()]);
            match kind {
                // Register with a TTL that already expired (reapable).
                0 => {
                    q.insert(next_tn, Some(expired_deadline));
                    model.insert(next_tn, Model::Active { expired: true });
                    next_tn += 1;
                }
                // Register with a far-future TTL.
                1 => {
                    q.insert(next_tn, Some(live_deadline));
                    model.insert(next_tn, Model::Active { expired: false });
                    next_tn += 1;
                }
                // Register with no TTL at all.
                2 => {
                    q.insert(next_tn, None);
                    model.insert(next_tn, Model::Active { expired: false });
                    next_tn += 1;
                }
                // Claim for commit, then complete (the commit path).
                3 => if let Some(tn) = target {
                    let claimed = q.start_committing(tn);
                    let expect = matches!(model[&tn], Model::Active { .. });
                    assert_eq!(claimed, expect, "claim of tn {tn}");
                    if claimed {
                        model.insert(tn, Model::Committing);
                    }
                    if matches!(model[&tn], Model::Committing) {
                        assert!(q.mark_complete(tn));
                        model.insert(tn, Model::Complete);
                        completed.push(tn);
                        drain(&mut q, &mut model, &mut vtnc, &completed);
                    }
                },
                // Voluntary discard (abort path) of an unclaimed entry.
                4 => if let Some(tn) = target {
                    if matches!(model[&tn], Model::Active { .. }) {
                        assert!(q.discard(tn));
                        model.remove(&tn);
                        drain(&mut q, &mut model, &mut vtnc, &completed);
                    }
                },
                // Reaper tick: force-discard expired Active entries only.
                _ => {
                    let reaped = q.reap_expired(reap_now);
                    let expect: Vec<u64> = model
                        .iter()
                        .filter(|(_, &st)| st == Model::Active { expired: true })
                        .map(|(&tn, _)| tn)
                        .collect();
                    assert_eq!(reaped, expect, "reaper took the wrong set");
                    for tn in &reaped {
                        model.remove(tn);
                    }
                    drain(&mut q, &mut model, &mut vtnc, &completed);
                }
            }
            check_invariants(&q, &model, vtnc, &completed);
        }

        // Exhaustion: finish every survivor; the queue must fully drain
        // and the frontier must land on the highest completed number.
        let rest: Vec<u64> = model.keys().copied().collect();
        for tn in rest {
            if matches!(model[&tn], Model::Active { .. }) {
                assert!(q.start_committing(tn));
                model.insert(tn, Model::Committing);
            }
            assert!(q.mark_complete(tn));
            model.insert(tn, Model::Complete);
            completed.push(tn);
        }
        drain(&mut q, &mut model, &mut vtnc, &completed);
        assert!(q.is_empty(), "completed queue must drain fully");
        assert_eq!(vtnc, completed.iter().copied().max());
    }

    /// A reaped registration can never be claimed afterwards: the commit
    /// path's `start_committing` fails and the writer must abort. This is
    /// the exact handshake that makes force-discards safe.
    #[test]
    fn reaped_entries_cannot_be_claimed(n in 1u64..20) {
        let base = Instant::now();
        let mut q = VcQueue::new();
        for tn in 1..=n {
            q.insert(tn, Some(base));
        }
        let reaped = q.reap_expired(base + Duration::from_secs(1));
        prop_assert_eq!(reaped.len() as u64, n);
        for tn in 1..=n {
            prop_assert!(!q.start_committing(tn), "claimed a reaped tn");
            prop_assert!(!q.mark_complete(tn));
        }
        prop_assert!(q.is_empty());
        prop_assert!(q.drain_completed().is_none());
    }

    /// Insert-order independence: the queue's observable behavior is a
    /// function of the *set* of registered numbers, not the order they
    /// arrived in. With out-of-order timestamp registration (and with
    /// block-drawn numbers from the decentralized sequencer racing into
    /// the legacy queue under `centralized_vc`), any permutation of the
    /// same inserts must drain identically.
    #[test]
    fn insert_order_does_not_matter(
        raw in proptest::collection::vec(1u64..40, 2..20),
        seed in 0u64..u64::MAX,
    ) {
        let mut sorted = raw;
        sorted.sort_unstable();
        sorted.dedup();
        // Fisher–Yates with a splitmix stream: an arbitrary permutation
        // of the same number set.
        let mut shuffled = sorted.clone();
        let mut s = seed;
        for i in (1..shuffled.len()).rev() {
            s = s.wrapping_add(0x9E3779B97F4A7C15);
            let mut z = s;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
            z ^= z >> 31;
            shuffled.swap(i, (z % (i as u64 + 1)) as usize);
        }
        let mut a = VcQueue::new();
        for &tn in &sorted {
            a.insert(tn, None);
        }
        let mut b = VcQueue::new();
        for &tn in &shuffled {
            b.insert(tn, None);
        }
        prop_assert_eq!(a.len(), b.len());
        prop_assert_eq!(a.head_tn(), b.head_tn());
        // Complete everything in yet another order; both queues must
        // report the same frontier: the maximum, exactly once, and only
        // when the head-contiguous prefix is complete.
        let mut done_a = None;
        let mut done_b = None;
        for &tn in shuffled.iter().rev() {
            prop_assert!(a.start_committing(tn) && a.mark_complete(tn));
            prop_assert!(b.start_committing(tn) && b.mark_complete(tn));
            if let Some(v) = a.drain_completed() { done_a = Some(v); }
            if let Some(v) = b.drain_completed() { done_b = Some(v); }
            prop_assert_eq!(done_a, done_b, "queues diverged at tn {}", tn);
        }
        prop_assert_eq!(done_a, sorted.last().copied());
        prop_assert!(a.is_empty() && b.is_empty());
    }

    /// Claimed entries survive any number of reaper ticks.
    #[test]
    fn claimed_entries_are_reaper_proof(n in 1u64..20, ticks in 1usize..5) {
        let base = Instant::now();
        let mut q = VcQueue::new();
        for tn in 1..=n {
            q.insert(tn, Some(base));
            prop_assert!(q.start_committing(tn));
        }
        for _ in 0..ticks {
            prop_assert!(q.reap_expired(base + Duration::from_secs(1)).is_empty());
        }
        prop_assert_eq!(q.len() as u64, n);
        for tn in 1..=n {
            prop_assert!(q.mark_complete(tn));
        }
        prop_assert_eq!(q.drain_completed(), Some(n));
        prop_assert!(q.is_empty());
    }
}
