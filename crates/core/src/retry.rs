//! Bounded retry with exponential backoff and deterministic jitter.
//!
//! Every caller used to roll its own retry loop (`run_rw(max_attempts)`
//! in the engine, `0..=max_retries` in the workload driver). Under fault
//! injection those loops hammer the same conflict window back-to-back;
//! [`RetryPolicy`] centralizes the discipline: a bounded number of
//! attempts, exponentially growing sleeps, and multiplicative jitter from
//! a seeded SplitMix64 stream so two runs with the same seed back off
//! identically.

use std::time::Duration;

/// How a transaction runner retries retryable aborts.
#[derive(Debug, Clone)]
pub struct RetryPolicy {
    /// Total attempts (first try included). At least 1 is always made.
    pub max_attempts: u32,
    /// Sleep before the first retry; doubles each further retry.
    /// `Duration::ZERO` disables sleeping entirely.
    pub base_backoff: Duration,
    /// Cap on any single backoff sleep.
    pub max_backoff: Duration,
    /// Jitter fraction in `[0, 1]`: each sleep is scaled by a factor
    /// drawn uniformly from `[1 − jitter, 1]`. Zero means fixed sleeps.
    pub jitter: f64,
    /// Seed for the jitter stream.
    pub seed: u64,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        RetryPolicy {
            max_attempts: 8,
            base_backoff: Duration::from_micros(50),
            max_backoff: Duration::from_millis(5),
            jitter: 0.5,
            seed: 0x5EED,
        }
    }
}

impl RetryPolicy {
    /// Retry immediately (no sleeping) up to `max_attempts` — the
    /// behavior of the old ad-hoc loops, kept for compatibility.
    pub fn no_backoff(max_attempts: u32) -> Self {
        RetryPolicy {
            max_attempts,
            base_backoff: Duration::ZERO,
            max_backoff: Duration::ZERO,
            jitter: 0.0,
            seed: 0,
        }
    }

    /// Fresh jitter stream for one transaction's retries.
    pub fn jitter_stream(&self) -> JitterStream {
        JitterStream { state: self.seed }
    }

    /// Jitter stream seeded from a shared random stream, when one is
    /// injected ([`crate::config::DbConfig::rng`]): each transaction's
    /// retries get a *distinct* but fully seed-determined stream, instead
    /// of every transaction replaying the identical `self.seed` stream.
    pub fn jitter_stream_with(&self, rng: Option<&dyn crate::clock::SimRng>) -> JitterStream {
        match rng {
            Some(r) => JitterStream {
                state: r.next_u64(),
            },
            None => self.jitter_stream(),
        }
    }

    /// The sleep before retry number `attempt` (0-based: the sleep after
    /// the first failed attempt is `backoff_for(0, …)`).
    pub fn backoff_for(&self, attempt: u32, jitter: &mut JitterStream) -> Duration {
        if self.base_backoff.is_zero() {
            return Duration::ZERO;
        }
        let exp = self
            .base_backoff
            .saturating_mul(1u32 << attempt.min(20))
            .min(self.max_backoff);
        if self.jitter <= 0.0 {
            return exp;
        }
        let scale = 1.0 - self.jitter * jitter.next_unit();
        exp.mul_f64(scale.clamp(0.0, 1.0))
    }

    /// Deadline-aware variant of [`backoff_for`](Self::backoff_for): the
    /// sleep before retry number `attempt`, or `None` when the remaining
    /// deadline budget cannot fund it. A sleep equal to the whole budget
    /// is also refused — the retry it buys would begin with zero budget
    /// and fail instantly, so the time is better returned to the caller.
    /// Every sleep this method approves counts against the budget (the
    /// runner sleeps on the injected clock, virtual or real).
    pub fn backoff_within(
        &self,
        attempt: u32,
        jitter: &mut JitterStream,
        remaining: Duration,
    ) -> Option<Duration> {
        let sleep = self.backoff_for(attempt, jitter);
        if sleep >= remaining {
            return None;
        }
        Some(sleep)
    }
}

/// Deterministic SplitMix64 stream for backoff jitter.
#[derive(Debug, Clone)]
pub struct JitterStream {
    state: u64,
}

impl JitterStream {
    /// Next uniform draw in `[0, 1)`.
    pub fn next_unit(&mut self) -> f64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^= z >> 31;
        (z >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn no_backoff_never_sleeps() {
        let p = RetryPolicy::no_backoff(5);
        let mut j = p.jitter_stream();
        for a in 0..5 {
            assert_eq!(p.backoff_for(a, &mut j), Duration::ZERO);
        }
    }

    #[test]
    fn backoff_grows_and_caps() {
        let p = RetryPolicy {
            jitter: 0.0,
            ..Default::default()
        };
        let mut j = p.jitter_stream();
        let b0 = p.backoff_for(0, &mut j);
        let b3 = p.backoff_for(3, &mut j);
        let b20 = p.backoff_for(20, &mut j);
        assert_eq!(b0, Duration::from_micros(50));
        assert_eq!(b3, Duration::from_micros(400));
        assert_eq!(b20, p.max_backoff);
    }

    #[test]
    fn jitter_shrinks_but_never_exceeds() {
        let p = RetryPolicy::default();
        let mut j = p.jitter_stream();
        for a in 0..8 {
            let exp = RetryPolicy {
                jitter: 0.0,
                ..p.clone()
            }
            .backoff_for(a, &mut p.jitter_stream());
            let b = p.backoff_for(a, &mut j);
            assert!(b <= exp, "jittered sleep exceeds base");
            assert!(b >= exp.mul_f64(1.0 - p.jitter - 1e-9));
        }
    }

    #[test]
    fn backoff_within_refuses_when_budget_spent() {
        let p = RetryPolicy {
            jitter: 0.0,
            ..Default::default()
        };
        let mut j = p.jitter_stream();
        // 50µs base sleep against a 1ms budget: approved, unchanged.
        assert_eq!(
            p.backoff_within(0, &mut j, Duration::from_millis(1)),
            Some(Duration::from_micros(50))
        );
        // Budget exactly equal to the sleep: refused (the funded retry
        // would start already expired).
        assert_eq!(p.backoff_within(0, &mut j, Duration::from_micros(50)), None);
        // Budget below the sleep: refused.
        assert_eq!(p.backoff_within(0, &mut j, Duration::from_micros(49)), None);
        // Zero-sleep policies still stop once the budget hits zero.
        let free = RetryPolicy::no_backoff(5);
        let mut jf = free.jitter_stream();
        assert_eq!(
            free.backoff_within(0, &mut jf, Duration::from_nanos(1)),
            Some(Duration::ZERO)
        );
        assert_eq!(free.backoff_within(0, &mut jf, Duration::ZERO), None);
    }

    #[test]
    fn same_seed_same_sleeps() {
        let p = RetryPolicy::default();
        let (mut a, mut b) = (p.jitter_stream(), p.jitter_stream());
        for attempt in 0..6 {
            assert_eq!(
                p.backoff_for(attempt, &mut a),
                p.backoff_for(attempt, &mut b)
            );
        }
    }
}
