//! The multiversion database engine: storage + version control + a
//! pluggable concurrency-control protocol.

use crate::cc_api::{CcContext, ConcurrencyControl};
use crate::config::DbConfig;
use crate::currency::{CurrencyMode, LatestTxn};
use crate::durability::{CommitLog, RecoveryStats};
use crate::error::{AbortReason, DbError};
use crate::fault::{FaultInjector, FaultyFile};
use crate::metrics::{Metrics, MetricsSnapshot};
use crate::obs::{
    json_snapshot, prometheus_text, DumpContext, EventKind, FlightTrigger, GaugeCollector,
    GaugeSample, Obs, PhaseSnapshot,
};
use crate::pressure::{AdmissionController, Deadline, TxnOptions};
use crate::retry::RetryPolicy;
use crate::trace::Tracer;
use crate::txn::{RoTxn, RwTxn, ANON_TRACE_BASE};
use crate::vc::VersionControl;
use mvcc_model::{History, ObjectId};
use mvcc_storage::wal::{self, WalSink, WalWriter};
use mvcc_storage::{GcStats, MvStore, RoScanRegistry, StoreStats, Value};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

/// The protocol-independent parts of the engine: everything a read-only
/// transaction can ever touch.
pub struct DbCore {
    pub(crate) ctx: CcContext,
    pub(crate) ro_registry: RoScanRegistry,
    pub(crate) tracer: Option<Arc<Tracer>>,
    anon_trace_seq: AtomicU64,
}

impl DbCore {
    pub(crate) fn next_anon_trace_id(&self) -> u64 {
        ANON_TRACE_BASE + self.anon_trace_seq.fetch_add(1, Ordering::Relaxed)
    }
}

/// A multiversion database running concurrency-control protocol `C`.
///
/// Swapping `C` changes *nothing* about read-only execution — the
/// modularity thesis of the paper, enforced here by the fact that
/// [`RoTxn`] borrows only the protocol-independent [`DbCore`].
pub struct MvDatabase<C: ConcurrencyControl> {
    core: DbCore,
    cc: C,
}

impl<C: ConcurrencyControl> MvDatabase<C> {
    /// Engine with default configuration.
    pub fn new(cc: C) -> Self {
        Self::with_config(cc, DbConfig::default())
    }

    /// Engine with explicit configuration.
    pub fn with_config(cc: C, config: DbConfig) -> Self {
        let tracer = config.trace.then(|| Arc::new(Tracer::new()));
        let ro_registry = RoScanRegistry::with_slots(config.ro_slots);
        MvDatabase {
            core: DbCore {
                ctx: CcContext::new(config),
                ro_registry,
                tracer,
                anon_trace_seq: AtomicU64::new(0),
            },
            cc,
        }
    }

    /// Durable engine: like [`with_config`](Self::with_config), plus a
    /// write-ahead log on `sink`. Every commit appends its writeset to
    /// the log **before** becoming visible, under the configured
    /// [`DbConfig::wal_fsync`] policy. If the config enables any disk
    /// fault, the sink is transparently wrapped in a [`FaultyFile`]
    /// drawing from the engine's injector.
    ///
    /// Memory cost: to support in-place rotation, the writer retains a
    /// copy of every log frame since the last rotation, so an engine
    /// that never calls [`checkpoint_and_rotate`](Self::checkpoint_and_rotate)
    /// mirrors its entire WAL in memory. Checkpoint periodically to
    /// bound both the log and its in-memory copy.
    pub fn with_wal(cc: C, config: DbConfig, sink: Box<dyn WalSink>) -> std::io::Result<Self> {
        let mut db = Self::with_config(cc, config);
        let (sink, arm) = Self::maybe_faulty(&db.core.ctx, sink);
        let writer = WalWriter::create(sink, db.core.ctx.config.wal_fsync)?;
        if let Some(arm) = arm {
            arm.store(true, Ordering::Relaxed);
        }
        db.core.ctx.wal = Some(Arc::new(CommitLog::new(
            writer,
            Arc::clone(&db.core.ctx.metrics),
        )));
        Ok(db)
    }

    /// Wrap `sink` in a disarmed [`FaultyFile`] when the config enables
    /// disk faults. The returned gate (if any) arms the faults — flipped
    /// only after fault-free setup writes (header, recovery re-appends).
    fn maybe_faulty(
        ctx: &CcContext,
        sink: Box<dyn WalSink>,
    ) -> (Box<dyn WalSink>, Option<Arc<AtomicBool>>) {
        if ctx.config.fault.has_disk_faults() {
            let (faulty, arm) = FaultyFile::gated(sink, Arc::clone(&ctx.faults));
            (Box::new(faulty), Some(arm))
        } else {
            (sink, None)
        }
    }

    /// Crash recovery: rebuild an engine from the latest checkpoint (if
    /// any) plus whatever bytes of the write-ahead log survived.
    ///
    /// The WAL is scanned up to the last intact CRC frame — a torn tail
    /// is discarded, never an error — and every surviving record above
    /// the checkpoint watermark is replayed in transaction-number order.
    /// The version counters resume at the highest recovered number
    /// (`tnc = last_tn + 1 > vtnc = last_tn`), so post-recovery
    /// transactions can never collide with recovered versions.
    ///
    /// If `sink` is provided, the engine comes back *durable*: a fresh
    /// log is started on it and the replayed records are re-appended, so
    /// a second crash recovers the same state or better.
    pub fn recover(
        cc: C,
        config: DbConfig,
        checkpoint: Option<&[u8]>,
        wal_bytes: &[u8],
        sink: Option<Box<dyn WalSink>>,
    ) -> std::io::Result<(Self, RecoveryStats)> {
        let (store, watermark) = match checkpoint {
            Some(mut bytes) => MvStore::restore(&mut bytes)?,
            None => (MvStore::new(), 0),
        };
        let (records, scan_stats) = wal::scan(wal_bytes)?;
        let (last_tn, skipped) = wal::replay_into(&store, watermark, &records)?;
        let stats = RecoveryStats {
            checkpoint_watermark: watermark,
            replayed: records.len() - skipped,
            skipped,
            last_tn,
            clean_end: scan_stats.clean_end(),
            torn_bytes: scan_stats.torn_bytes,
        };
        let tracer = config.trace.then(|| Arc::new(Tracer::new()));
        let vc = Arc::new(VersionControl::resumed_from_config(last_tn, &config));
        let mut ctx = CcContext::with_parts(config, Arc::new(store), vc);
        if let Some(sink) = sink {
            let (sink, arm) = Self::maybe_faulty(&ctx, sink);
            let live: Vec<wal::CommitRecord> =
                records.into_iter().filter(|r| r.tn > watermark).collect();
            let writer = WalWriter::create_with(sink, ctx.config.wal_fsync, &live)?;
            if let Some(arm) = arm {
                arm.store(true, Ordering::Relaxed);
            }
            ctx.wal = Some(Arc::new(CommitLog::new(writer, Arc::clone(&ctx.metrics))));
        }
        let ro_registry = RoScanRegistry::with_slots(ctx.config.ro_slots);
        let db = MvDatabase {
            core: DbCore {
                ctx,
                ro_registry,
                tracer,
                anon_trace_seq: AtomicU64::new(0),
            },
            cc,
        };
        // Recovery is one of the four flight-recorder triggers: leave a
        // postmortem of what was rebuilt (no events exist yet — the dump
        // carries the stats line and the resumed VC counters).
        db.core.ctx.obs.dump(
            FlightTrigger::Recovery,
            &DumpContext {
                victim: None,
                detail: format!(
                    "recovered: watermark={} replayed={} skipped={} last_tn={} clean_end={} torn_bytes={}",
                    stats.checkpoint_watermark,
                    stats.replayed,
                    stats.skipped,
                    stats.last_tn,
                    stats.clean_end,
                    stats.torn_bytes
                ),
                waits_for: None,
                vc: Some(db.core.ctx.vc.view()),
                trace_id: None,
            },
        );
        Ok((db, stats))
    }

    /// Engine restored from a checkpoint (see
    /// [`checkpoint`](Self::checkpoint)): the store holds the snapshot's
    /// versions and the version-control counters resume above its
    /// watermark, so new transaction numbers can never collide with
    /// checkpointed versions.
    pub fn restore(cc: C, config: DbConfig, r: &mut impl std::io::Read) -> std::io::Result<Self> {
        let (store, watermark) = MvStore::restore(r)?;
        let tracer = config.trace.then(|| Arc::new(Tracer::new()));
        let vc = Arc::new(VersionControl::resumed_from_config(watermark, &config));
        let ctx = CcContext::with_parts(config, Arc::new(store), vc);
        let ro_registry = RoScanRegistry::with_slots(ctx.config.ro_slots);
        Ok(MvDatabase {
            core: DbCore {
                ctx,
                ro_registry,
                tracer,
                anon_trace_seq: AtomicU64::new(0),
            },
            cc,
        })
    }

    /// Write a transaction-consistent checkpoint of the database: every
    /// committed version up to the current `vtnc`. Safe to run while
    /// read-write traffic continues — the snapshot is protected from GC
    /// exactly like a live read-only transaction (the paper's "garbage
    /// collection algorithm which keeps the information about read-only
    /// transactions" integrates recovery for free).
    pub fn checkpoint(
        &self,
        w: &mut impl std::io::Write,
    ) -> std::io::Result<mvcc_storage::CheckpointStats> {
        let watermark = self.core.ctx.vc.vtnc();
        let slot = self.core.ro_registry.register(watermark);
        let result = self.core.ctx.store.checkpoint(w, watermark);
        self.core.ro_registry.deregister(slot, watermark);
        result
    }

    /// [`checkpoint`](Self::checkpoint), then rotate the write-ahead log
    /// down to the records the new checkpoint does not cover
    /// (`tn >` watermark). Rotation destroys every record the checkpoint
    /// absorbed, so the checkpoint bytes are made durable first: after
    /// writing the snapshot this calls [`CheckpointSink::sync`] and only
    /// then rotates. If the sync fails, the log is left unrotated and
    /// the error propagates (see DESIGN.md §9).
    pub fn checkpoint_and_rotate(
        &self,
        w: &mut impl crate::durability::CheckpointSink,
    ) -> std::io::Result<mvcc_storage::CheckpointStats> {
        let stats = self.checkpoint(w)?;
        if let Some(log) = &self.core.ctx.wal {
            w.sync()?;
            log.rotate(stats.watermark)?;
        }
        Ok(stats)
    }

    // ---- transactions ------------------------------------------------------

    /// Begin a read-only transaction (paper Figure 2):
    /// `sn(T) ← VCstart()`. Infallible and non-blocking.
    pub fn begin_read_only(&self) -> RoTxn<'_> {
        let sn = self.core.ctx.vc.start();
        RoTxn::begin(&self.core, sn)
    }

    /// Begin a read-only transaction under a currency rectification
    /// (paper Section 6). `Snapshot` is [`Self::begin_read_only`]; `AtLeast(tn)`
    /// first waits until `vtnc ≥ tn`; `Latest` is rejected here — use
    /// [`begin_latest_read`](Self::begin_latest_read), which runs as a
    /// pseudo read-write transaction and therefore involves `C`.
    pub fn begin_read_only_with(
        &self,
        mode: CurrencyMode,
        timeout: Duration,
    ) -> Result<RoTxn<'_>, DbError> {
        match mode {
            CurrencyMode::Snapshot => Ok(self.begin_read_only()),
            CurrencyMode::AtLeast(tn) => {
                let sn = self
                    .core
                    .ctx
                    .vc
                    .wait_visible(tn, timeout)
                    .ok_or(DbError::Aborted(crate::error::AbortReason::WaitTimeout))?;
                Ok(RoTxn::begin(&self.core, sn))
            }
            CurrencyMode::Latest => Err(DbError::Internal(
                "CurrencyMode::Latest requires begin_latest_read (pseudo read-write)".into(),
            )),
        }
    }

    /// Begin a *pseudo read-write* transaction that observes the most
    /// recent state (paper Section 6: applications unwilling to "sacrifice
    /// currency" are "dealt with by executing them as pseudo read-write
    /// transactions"). It pays full concurrency-control cost.
    pub fn begin_latest_read(&self) -> Result<LatestTxn<'_, C>, DbError> {
        Ok(LatestTxn::new(self.begin_read_write()?))
    }

    /// Begin a read-write transaction under protocol `C`. Equivalent to
    /// [`begin_read_write_with`](Self::begin_read_write_with) with default
    /// options — in particular, it passes through the admission gate, so
    /// under overload it can be refused with a non-retryable
    /// [`AbortReason::Shed`].
    pub fn begin_read_write(&self) -> Result<RwTxn<'_, C>, DbError> {
        self.begin_read_write_with(&TxnOptions::default())
    }

    /// Begin a read-write transaction with per-transaction options: a
    /// tenant (for weighted admission quotas) and an optional deadline
    /// budget, enforced at every subsequent blocking point. The call
    /// first feeds the store's pressure signals into the degradation
    /// ladder, then asks the admission controller for a permit; both are
    /// a single relaxed load when admission is disabled (the default).
    pub fn begin_read_write_with(&self, opts: &TxnOptions) -> Result<RwTxn<'_, C>, DbError> {
        self.core.ctx.observe_pressure();
        let permit = self.core.ctx.admission.admit_rw(opts)?;
        RwTxn::begin_with(&self.core, &self.cc, opts, permit)
    }

    /// Begin a read-only transaction through the admission gate. The
    /// paper's read-only path is infallible ([`begin_read_only`]
    /// (Self::begin_read_only) stays so); this variant adds the one
    /// refusal the degradation ladder ever applies to readers — at its
    /// highest rung new snapshots are rejected with
    /// [`AbortReason::MemoryPressure`] (old versions pinned by snapshots
    /// are exactly what the ladder is trying to shed). Callers should
    /// back off for [`AdmissionController::retry_after`] before retrying.
    pub fn begin_read_only_admitted(&self, opts: &TxnOptions) -> Result<RoTxn<'_>, DbError> {
        self.core.ctx.observe_pressure();
        self.core.ctx.admission.admit_ro(opts)?;
        Ok(self.begin_read_only())
    }

    /// Run a read-write transaction body with automatic commit and
    /// bounded retry on retryable aborts (no backoff). Returns
    /// `(tn, result)`.
    pub fn run_rw<R>(
        &self,
        max_attempts: u32,
        body: impl FnMut(&mut RwTxn<'_, C>) -> Result<R, DbError>,
    ) -> Result<(u64, R), DbError> {
        self.run_rw_with(&RetryPolicy::no_backoff(max_attempts), body)
    }

    /// Run a read-write transaction body under an explicit
    /// [`RetryPolicy`]: bounded attempts, exponential backoff with
    /// deterministic jitter between them, and per-[`AbortReason`] retry
    /// counters. Returns `(tn, result)`.
    pub fn run_rw_with<R>(
        &self,
        policy: &RetryPolicy,
        mut body: impl FnMut(&mut RwTxn<'_, C>) -> Result<R, DbError>,
    ) -> Result<(u64, R), DbError> {
        let config = &self.core.ctx.config;
        let obs = &self.core.ctx.obs;
        // Sample the trace decision once per *run*, not per attempt, so a
        // sampled transaction's retries land in one span tree.
        let run_trace = obs.span_sampled().then(|| crate::obs::TraceCtx {
            trace_id: obs.tracer().auto_id(),
        });
        let run_opts = match run_trace {
            Some(t) => TxnOptions::default().with_trace(t),
            None => TxnOptions::default(),
        };
        let mut jitter = policy.jitter_stream_with(config.rng.as_deref());
        let mut last_err = DbError::Internal("run_rw: zero attempts".into());
        let attempts = policy.max_attempts.max(1);
        for attempt in 0..attempts {
            if attempt > 0 {
                record_retry(&self.core.ctx.metrics, &last_err);
                let sleep = policy.backoff_for(attempt - 1, &mut jitter);
                if !sleep.is_zero() {
                    self.sleep_traced(sleep, run_trace, attempt);
                }
            }
            let mut txn = self.begin_read_write_with(&run_opts)?;
            match body(&mut txn) {
                Ok(r) => match txn.commit() {
                    Ok(tn) => return Ok((tn, r)),
                    Err(e) if e.is_retryable() => last_err = e,
                    Err(e) => return Err(e),
                },
                Err(e) if e.is_retryable() => {
                    drop(txn);
                    last_err = e;
                }
                Err(e) => return Err(e),
            }
        }
        Err(last_err)
    }

    /// [`run_rw_with`](Self::run_rw_with) under a shared deadline budget:
    /// one absolute deadline is computed from `opts.deadline` up front and
    /// every attempt — including its backoff sleep, which goes through the
    /// injected (possibly virtual) clock — draws from it. Retrying stops
    /// early when the remaining budget cannot fund the next backoff step
    /// (see [`RetryPolicy::backoff_within`]), returning the last retryable
    /// error rather than burning budget on an attempt that would begin
    /// already expired. Without a deadline this is exactly `run_rw_with`.
    pub fn run_rw_deadline<R>(
        &self,
        policy: &RetryPolicy,
        opts: &TxnOptions,
        mut body: impl FnMut(&mut RwTxn<'_, C>) -> Result<R, DbError>,
    ) -> Result<(u64, R), DbError> {
        let config = &self.core.ctx.config;
        let obs = &self.core.ctx.obs;
        let deadline = opts
            .deadline
            .map(|budget| Deadline::within(&*config.clock, budget));
        // Explicit trace on the options wins; otherwise sample once for
        // the whole run so retries share one span tree.
        let run_trace = opts.trace.or_else(|| {
            obs.span_sampled().then(|| crate::obs::TraceCtx {
                trace_id: obs.tracer().auto_id(),
            })
        });
        let mut jitter = policy.jitter_stream_with(config.rng.as_deref());
        let mut last_err = DbError::Internal("run_rw_deadline: zero attempts".into());
        let attempts = policy.max_attempts.max(1);
        for attempt in 0..attempts {
            if attempt > 0 {
                record_retry(&self.core.ctx.metrics, &last_err);
                let sleep = match deadline {
                    Some(d) => {
                        let remaining = d.remaining(&*config.clock);
                        match policy.backoff_within(attempt - 1, &mut jitter, remaining) {
                            Some(s) => s,
                            None => return Err(last_err),
                        }
                    }
                    None => policy.backoff_for(attempt - 1, &mut jitter),
                };
                if !sleep.is_zero() {
                    self.sleep_traced(sleep, run_trace, attempt);
                }
            }
            // Each attempt carries what is left of the shared budget, so
            // in-transaction blocking points see the runner's deadline,
            // not a fresh per-attempt one.
            let mut attempt_opts = match deadline {
                Some(d) => opts.clone().with_deadline(d.remaining(&*config.clock)),
                None => opts.clone(),
            };
            attempt_opts.trace = run_trace;
            let mut txn = self.begin_read_write_with(&attempt_opts)?;
            match body(&mut txn) {
                Ok(r) => match txn.commit() {
                    Ok(tn) => return Ok((tn, r)),
                    Err(e) if e.is_retryable() => last_err = e,
                    Err(e) => return Err(e),
                },
                Err(e) if e.is_retryable() => {
                    drop(txn);
                    last_err = e;
                }
                Err(e) => return Err(e),
            }
        }
        Err(last_err)
    }

    /// Sleep on the engine clock, recording a `backoff` span under the
    /// run's trace root when one is active.
    fn sleep_traced(&self, sleep: Duration, run_trace: Option<crate::obs::TraceCtx>, attempt: u32) {
        let span = run_trace.map(|tc| {
            let t = self.core.ctx.obs.tracer().activate(tc.trace_id);
            let start_ns = t.now_ns();
            (t, start_ns)
        });
        self.core.ctx.config.clock.sleep(sleep);
        if let Some((t, start_ns)) = span {
            t.record_closed(
                crate::obs::trace::ROOT_SPAN,
                "backoff",
                start_ns,
                vec![("attempt", attempt as u64)],
            );
        }
    }

    // ---- administration ----------------------------------------------------

    /// Load an initial value for `obj` (becomes version 0, written by the
    /// pseudo-transaction `T_0`).
    pub fn seed(&self, obj: ObjectId, value: Value) {
        self.core.ctx.store.seed(obj, value);
    }

    /// Read the most recent committed value without any transaction
    /// (administrative peek; not serializable with anything).
    pub fn peek_latest(&self, obj: ObjectId) -> Value {
        self.core.ctx.store.read_latest(obj).1
    }

    /// Run a garbage-collection pass. The watermark is
    /// `min(vtnc, oldest live read-only start number)` — the paper's
    /// Section 6 rule plus protection of in-flight snapshots.
    pub fn collect_garbage(&self) -> GcStats {
        let watermark = self.core.ro_registry.watermark(self.core.ctx.vc.vtnc());
        // Under pressure the degradation ladder paces GC harder: each
        // rung divides the keep-recent allowance (Normal 1×, Throttle 2×,
        // Shed/RejectRo 4×), so a pass under overload reclaims versions a
        // relaxed pass would have retained.
        let boost = self.core.ctx.admission.level().gc_boost() as usize;
        let keep = self.core.ctx.config.gc_keep_versions / boost.max(1);
        let stats = self.core.ctx.store.collect_garbage_keep(watermark, keep);
        self.core.ctx.obs.emit(
            EventKind::GcPrune,
            stats.watermark,
            stats.versions_pruned as u64,
        );
        stats
    }

    /// Run one stall-reaper pass: force-`VCdiscard` every registration
    /// whose TTL (see [`DbConfig::register_ttl`]) expired while still
    /// `Active`. Safe to call from any thread at any time — see
    /// [`VersionControl::reap`] for the safety argument. Returns the
    /// reaped transaction numbers.
    pub fn reap_stalled(&self) -> Vec<u64> {
        let reaped = self.core.ctx.vc.reap();
        if !reaped.is_empty() {
            let m = &self.core.ctx.metrics;
            let n = reaped.len() as u64;
            m.reaper_force_discards.fetch_add(n, Ordering::Relaxed);
            m.vc_discard_calls.fetch_add(n, Ordering::Relaxed);
            // A reaper firing means a transaction stalled long enough to
            // pin vtnc past its TTL — exactly the anomaly the flight
            // recorder exists for. The first victim anchors the timeline.
            self.core.ctx.obs.dump(
                FlightTrigger::ReaperFire,
                &DumpContext {
                    victim: reaped.first().copied(),
                    detail: format!("stall reaper force-discarded tns {reaped:?}"),
                    waits_for: self.cc.waits_for_snapshot(),
                    vc: Some(self.core.ctx.vc.view()),
                    trace_id: None,
                },
            );
        }
        reaped
    }

    /// Spawn a background thread that runs [`reap_stalled`](Self::reap_stalled)
    /// every `interval` until the returned [`ReaperHandle`] is stopped or
    /// dropped. For deterministic tests and experiments, call
    /// `reap_stalled` explicitly instead.
    pub fn spawn_reaper(&self, interval: Duration) -> ReaperHandle {
        ReaperHandle::spawn(
            Arc::clone(&self.core.ctx.vc),
            Arc::clone(&self.core.ctx.metrics),
            Arc::clone(&self.core.ctx.obs),
            interval,
        )
    }

    // ---- observability -----------------------------------------------------

    /// The observability hub (event bus, phase latencies, flight
    /// recorder). Always present; near-free when disabled.
    pub fn obs(&self) -> &Arc<Obs> {
        &self.core.ctx.obs
    }

    /// Snapshot of the per-phase latency histograms.
    pub fn phase_latencies(&self) -> PhaseSnapshot {
        self.core.ctx.obs.phases().snapshot()
    }

    /// Take one gauge sample across every layer: version-control counters
    /// and queue state, live/pending version counts, WAL durability
    /// backlog, and whatever protocol-specific gauges `C` exposes
    /// (lock-shard occupancy under 2PL, adaptive mode, …). The well-known
    /// protocol gauges `locked_objects` / `occupied_lock_shards` are
    /// lifted into their first-class fields; the rest ride in
    /// [`GaugeSample::extra`].
    pub fn sample_gauges(&self) -> GaugeSample {
        let st = self.core.ctx.store.stats();
        let vc = &self.core.ctx.vc;
        let mut sample = GaugeSample {
            vc: vc.view(),
            live_versions: st.committed_versions as u64,
            pending_versions: st.pending_versions as u64,
            locked_objects: 0,
            occupied_lock_shards: 0,
            wal_backlog_bytes: self
                .core
                .ctx
                .wal
                .as_ref()
                .map_or(0, |wal| wal.backlog_bytes()),
            centralized_vc: vc.is_centralized(),
            vc_dec: vc.wait_points().map(|m| m.gauges()),
            extra: Vec::new(),
        };
        for (name, value) in self.cc.gauges() {
            match name {
                "locked_objects" => sample.locked_objects = value,
                "occupied_lock_shards" => sample.occupied_lock_shards = value,
                _ => sample.extra.push((name, value)),
            }
        }
        if self.core.ctx.admission.enabled() {
            sample.extra.extend(self.core.ctx.admission.gauges());
        }
        sample
    }

    /// Spawn a background thread sampling [`sample_gauges`](Self::sample_gauges)
    /// every `interval` until the returned collector is stopped or
    /// dropped. Requires the engine behind an `Arc` so the sampler can
    /// outlive the caller's borrow.
    pub fn spawn_gauge_collector(self: &Arc<Self>, interval: Duration) -> GaugeCollector {
        let db = Arc::clone(self);
        GaugeCollector::spawn(interval, Arc::new(move || db.sample_gauges()))
    }

    /// Render counters, a fresh gauge sample, phase latency histograms,
    /// and per-kind event counts in the Prometheus text exposition
    /// format (conformant: HELP/TYPE headers, cumulative `le` buckets).
    pub fn prometheus_text(&self) -> String {
        prometheus_text(
            &self.metrics(),
            Some(&self.sample_gauges()),
            Some(&self.phase_latencies()),
            Some(&self.core.ctx.obs.event_counts()),
            self.core.ctx.obs.attr_snapshot().as_ref(),
        )
    }

    /// Render counters, a fresh gauge sample, phase latencies, and event
    /// counts as one JSON object.
    pub fn metrics_json(&self) -> String {
        json_snapshot(
            &self.metrics(),
            Some(&self.sample_gauges()),
            Some(&self.phase_latencies()),
            Some(&self.core.ctx.obs.event_counts()),
        )
    }

    /// Render the contention-attribution profile — hot keys/shards, the
    /// folded blocking-blame profile, and (under the decentralized VC)
    /// the per-thread wait-point map — as one JSON object. The
    /// `attribution` section is `null` unless
    /// [`ObsConfig::attribution`](crate::obs::ObsConfig) is enabled.
    pub fn profile_json(&self) -> String {
        crate::obs::profile_json(
            self.core.ctx.obs.attr_snapshot().as_ref(),
            self.core.ctx.vc.wait_points().as_ref(),
        )
    }

    /// Start an explicit end-to-end trace. Pass the returned context via
    /// [`TxnOptions::with_trace`] (every attempt, wait, WAL append, and
    /// VCQueue residency lands in one span tree), then export it with
    /// [`trace_chrome_json`](Self::trace_chrome_json) or
    /// [`trace_otlp_json`](Self::trace_otlp_json).
    pub fn start_trace(&self) -> crate::obs::TraceCtx {
        self.core.ctx.obs.tracer().start()
    }

    /// Snapshot a trace's span tree (explicit or auto-sampled), if it is
    /// still resident in the registry.
    pub fn trace_snapshot(&self, trace_id: u64) -> Option<crate::obs::TraceSnapshot> {
        self.core.ctx.obs.tracer().snapshot(trace_id)
    }

    /// Render a trace as Chrome `trace_event` JSON — load it in
    /// `chrome://tracing` or Perfetto. `None` if the trace is unknown.
    pub fn trace_chrome_json(&self, trace_id: u64) -> Option<String> {
        self.trace_snapshot(trace_id)
            .map(|t| crate::obs::chrome_trace_json(&t))
    }

    /// Render a trace as compact OTLP-like JSON. `None` if the trace is
    /// unknown.
    pub fn trace_otlp_json(&self, trace_id: u64) -> Option<String> {
        self.trace_snapshot(trace_id)
            .map(|t| crate::obs::otlp_trace_json(&t))
    }

    /// The fault injector (for experiments and tests).
    pub fn faults(&self) -> &Arc<FaultInjector> {
        &self.core.ctx.faults
    }

    /// The admission controller (overload gate, degradation ladder).
    pub fn admission(&self) -> &Arc<AdmissionController> {
        &self.core.ctx.admission
    }

    /// The write-ahead log handle, if this engine is durable.
    pub fn wal(&self) -> Option<&Arc<CommitLog>> {
        self.core.ctx.wal.as_ref()
    }

    /// The version-control module (for experiments and tests).
    pub fn vc(&self) -> &VersionControl {
        &self.core.ctx.vc
    }

    /// The underlying store (for experiments and tests).
    pub fn store(&self) -> &Arc<MvStore> {
        &self.core.ctx.store
    }

    /// The concurrency-control protocol instance.
    pub fn cc(&self) -> &C {
        &self.cc
    }

    /// Snapshot of the engine counters, merging in the contention
    /// counters kept inside the version-control module and the GC
    /// snapshot registry (which have no `Metrics` handle of their own).
    pub fn metrics(&self) -> MetricsSnapshot {
        let mut snap = self.core.ctx.metrics.snapshot();
        let (_, wait_ns) = self.core.ctx.vc.contention();
        snap.vc_lock_wait_ns = snap.vc_lock_wait_ns.saturating_add(wait_ns);
        let vs = self.core.ctx.vc.vc_stats();
        snap.vc_epoch_folds = snap.vc_epoch_folds.saturating_add(vs.epoch_folds);
        snap.vc_blocks_allocated = snap.vc_blocks_allocated.saturating_add(vs.blocks_allocated);
        snap.vc_watermark_scan_ns = snap
            .vc_watermark_scan_ns
            .saturating_add(vs.watermark_scan_ns);
        snap.gc_slot_contention = snap
            .gc_slot_contention
            .saturating_add(self.core.ro_registry.contention());
        snap
    }

    /// Reset the engine counters (between experiment phases).
    pub fn reset_metrics(&self) {
        self.core.ctx.metrics.reset();
        self.core.ctx.vc.reset_contention();
        self.core.ro_registry.reset_contention();
    }

    /// Storage statistics.
    pub fn store_stats(&self) -> StoreStats {
        self.core.ctx.store.stats()
    }

    /// The recorded execution history, if tracing is enabled.
    pub fn trace_history(&self) -> Option<History> {
        self.core.tracer.as_ref().map(|t| t.history())
    }
}

/// Bump the retry counters for one retry triggered by `err`.
fn record_retry(metrics: &Metrics, err: &DbError) {
    metrics.rw_retries.fetch_add(1, Ordering::Relaxed);
    let counter = match err.abort_reason() {
        Some(AbortReason::TimestampConflict) => &metrics.retries_ts_conflict,
        Some(AbortReason::Deadlock) => &metrics.retries_deadlock,
        Some(AbortReason::ValidationFailed) => &metrics.retries_validation,
        Some(AbortReason::WaitTimeout) => &metrics.retries_timeout,
        Some(AbortReason::BaselineConflict) => &metrics.retries_baseline,
        Some(AbortReason::Reaped) => &metrics.retries_reaped,
        _ => return,
    };
    counter.fetch_add(1, Ordering::Relaxed);
}

/// Handle to a background stall-reaper thread (see
/// [`MvDatabase::spawn_reaper`]). Stops and joins the thread on drop.
pub struct ReaperHandle {
    stop: Arc<AtomicBool>,
    thread: Option<std::thread::JoinHandle<()>>,
}

impl ReaperHandle {
    fn spawn(
        vc: Arc<VersionControl>,
        metrics: Arc<Metrics>,
        obs: Arc<Obs>,
        interval: Duration,
    ) -> Self {
        let stop = Arc::new(AtomicBool::new(false));
        let stop2 = Arc::clone(&stop);
        let thread = std::thread::spawn(move || {
            while !stop2.load(Ordering::Relaxed) {
                let reaped = vc.reap();
                if !reaped.is_empty() {
                    let n = reaped.len() as u64;
                    metrics
                        .reaper_force_discards
                        .fetch_add(n, Ordering::Relaxed);
                    metrics.vc_discard_calls.fetch_add(n, Ordering::Relaxed);
                    // No protocol handle on this thread, so no waits-for
                    // edges; the VC view and event window still land.
                    obs.dump(
                        FlightTrigger::ReaperFire,
                        &DumpContext {
                            victim: reaped.first().copied(),
                            detail: format!("background reaper force-discarded tns {reaped:?}"),
                            waits_for: None,
                            vc: Some(vc.view()),
                            trace_id: None,
                        },
                    );
                }
                std::thread::sleep(interval);
            }
        });
        ReaperHandle {
            stop,
            thread: Some(thread),
        }
    }

    /// Stop the reaper and wait for its thread to exit.
    pub fn stop(mut self) {
        self.shutdown();
    }

    fn shutdown(&mut self) {
        self.stop.store(true, Ordering::Relaxed);
        if let Some(t) = self.thread.take() {
            let _ = t.join();
        }
    }
}

impl Drop for ReaperHandle {
    fn drop(&mut self) {
        self.shutdown();
    }
}

#[cfg(test)]
mod tests {
    // Engine-level tests live in `mvcc-cc` (which provides protocols) and
    // in the workspace integration tests; here we only verify the
    // protocol-independent pieces using a trivial no-conflict protocol.
    use super::*;
    use crate::cc_api::ConcurrencyControl;
    use crate::error::DbError;
    use mvcc_model::mvsg;
    use mvcc_storage::Value;

    /// A deliberately naive protocol for testing the engine plumbing in
    /// single-threaded tests: registers at begin, reads the latest
    /// committed version, buffers writes. Correct only without
    /// concurrency; the real protocols live in `mvcc-cc`.
    struct SerialCc;

    struct SerialTxn {
        tn: u64,
        writes: Vec<(ObjectId, Value)>,
    }

    impl SerialCc {
        fn new() -> Self {
            SerialCc
        }
    }

    impl ConcurrencyControl for SerialCc {
        type Txn = SerialTxn;

        fn name(&self) -> &'static str {
            "serial"
        }

        fn begin(&self, ctx: &CcContext) -> Result<SerialTxn, DbError> {
            Ok(SerialTxn {
                tn: ctx.vc.register(),
                writes: Vec::new(),
            })
        }

        fn read(
            &self,
            ctx: &CcContext,
            txn: &mut SerialTxn,
            obj: ObjectId,
        ) -> Result<(u64, Value), DbError> {
            if let Some((_, v)) = txn.writes.iter().rev().find(|(o, _)| *o == obj) {
                return Ok((u64::MAX, v.clone()));
            }
            Ok(ctx.store.read_latest(obj))
        }

        fn write(
            &self,
            _ctx: &CcContext,
            txn: &mut SerialTxn,
            obj: ObjectId,
            value: Value,
        ) -> Result<(), DbError> {
            txn.writes.push((obj, value));
            Ok(())
        }

        fn commit(&self, ctx: &CcContext, txn: SerialTxn) -> Result<u64, DbError> {
            for (obj, value) in &txn.writes {
                ctx.store.with(*obj, |c| {
                    c.insert_committed(txn.tn, value.clone())
                        .map_err(|e| DbError::Internal(format!("serial commit: {e}")))
                })?;
            }
            ctx.vc.complete(txn.tn);
            Ok(txn.tn)
        }

        fn abort(&self, ctx: &CcContext, txn: SerialTxn) {
            ctx.vc.discard(txn.tn);
        }
    }

    fn db() -> MvDatabase<SerialCc> {
        MvDatabase::with_config(SerialCc::new(), DbConfig::traced())
    }

    #[test]
    fn rw_commit_then_ro_sees_it() {
        let db = db();
        let mut t = db.begin_read_write().unwrap();
        t.write(ObjectId(1), Value::from_u64(7)).unwrap();
        let tn = t.commit().unwrap();
        assert_eq!(tn, 1);

        let mut r = db.begin_read_only();
        assert_eq!(r.sn(), 1);
        assert_eq!(r.read_u64(ObjectId(1)).unwrap(), Some(7));
        r.finish();
    }

    #[test]
    fn ro_snapshot_isolated_from_later_commit() {
        let db = db();
        db.run_rw(1, |t| t.write(ObjectId(1), Value::from_u64(1)))
            .unwrap();
        let mut r = db.begin_read_only(); // sn = 1
        db.run_rw(1, |t| t.write(ObjectId(1), Value::from_u64(2)))
            .unwrap();
        // The snapshot still reads version 1.
        assert_eq!(r.read_u64(ObjectId(1)).unwrap(), Some(1));
        let mut r2 = db.begin_read_only();
        assert_eq!(r2.read_u64(ObjectId(1)).unwrap(), Some(2));
        r.finish();
        r2.finish();
    }

    #[test]
    fn abort_leaves_no_trace_in_data() {
        let db = db();
        let mut t = db.begin_read_write().unwrap();
        t.write(ObjectId(1), Value::from_u64(9)).unwrap();
        t.abort();
        let mut r = db.begin_read_only();
        assert_eq!(r.read(ObjectId(1)).unwrap(), Value::empty());
        // vtnc stays at 0 (Figure 1 only assigns completed numbers to
        // vtnc), which is harmless: no committed version numbered 1 will
        // ever exist. The next completion jumps the counter over the gap.
        assert_eq!(db.vc().vtnc(), 0);
        drop(r);
        db.run_rw(1, |t| t.write(ObjectId(2), Value::from_u64(1)))
            .unwrap();
        assert_eq!(db.vc().vtnc(), 2); // skipped the aborted number 1
    }

    #[test]
    fn drop_without_commit_aborts() {
        let db = db();
        {
            let mut t = db.begin_read_write().unwrap();
            t.write(ObjectId(1), Value::from_u64(9)).unwrap();
            // dropped here
        }
        assert_eq!(db.metrics().rw_aborted, 1);
        assert_eq!(db.peek_latest(ObjectId(1)), Value::empty());
    }

    #[test]
    fn run_rw_commits_and_returns_value() {
        let db = db();
        let (tn, doubled) = db
            .run_rw(3, |t| {
                let v = t.read_u64(ObjectId(5))?.unwrap_or(0);
                t.write(ObjectId(5), Value::from_u64(v * 2 + 10))?;
                Ok(v * 2 + 10)
            })
            .unwrap();
        assert_eq!(tn, 1);
        assert_eq!(doubled, 10);
        assert_eq!(db.peek_latest(ObjectId(5)).as_u64(), Some(10));
    }

    #[test]
    fn seed_is_version_zero() {
        let db = db();
        db.seed(ObjectId(2), Value::from_u64(100));
        let mut r = db.begin_read_only();
        assert_eq!(r.sn(), 0);
        assert_eq!(r.read_u64(ObjectId(2)).unwrap(), Some(100));
    }

    #[test]
    fn trace_is_one_copy_serializable() {
        let db = db();
        for i in 0..5u64 {
            db.run_rw(1, |t| {
                let v = t.read_u64(ObjectId(i % 2))?.unwrap_or(0);
                t.write(ObjectId(i % 2), Value::from_u64(v + 1))
            })
            .unwrap();
        }
        let mut r = db.begin_read_only();
        let _ = r.read(ObjectId(0)).unwrap();
        let _ = r.read(ObjectId(1)).unwrap();
        r.finish();
        let h = db.trace_history().unwrap();
        let report = mvsg::check_tn_order(&h);
        assert!(report.acyclic, "trace not 1SR: {h}");
    }

    #[test]
    fn gc_respects_live_snapshot() {
        let db = db();
        db.run_rw(1, |t| t.write(ObjectId(1), Value::from_u64(1)))
            .unwrap();
        let mut r = db.begin_read_only(); // sn = 1
        for v in 2..6u64 {
            db.run_rw(1, |t| t.write(ObjectId(1), Value::from_u64(v)))
                .unwrap();
        }
        let stats = db.collect_garbage();
        // watermark clamped to the live snapshot's sn = 1
        assert_eq!(stats.watermark, 1);
        assert_eq!(r.read_u64(ObjectId(1)).unwrap(), Some(1));
        r.finish();
        // now the watermark can advance
        let stats = db.collect_garbage();
        assert_eq!(stats.watermark, 5);
        let mut r2 = db.begin_read_only();
        assert_eq!(r2.read_u64(ObjectId(1)).unwrap(), Some(5));
    }

    #[test]
    fn gauges_and_exporters_cover_engine_state() {
        let db = db();
        db.run_rw(1, |t| t.write(ObjectId(1), Value::from_u64(1)))
            .unwrap();
        db.run_rw(1, |t| t.write(ObjectId(2), Value::from_u64(2)))
            .unwrap();
        let g = db.sample_gauges();
        assert_eq!(g.vc.tnc, 2, "two transactions assigned");
        assert_eq!(g.vc.vtnc, 2);
        // Chains materialize an implicit version-0 baseline, so count via
        // the store's own stats rather than hard-coding.
        assert_eq!(g.live_versions, db.store_stats().committed_versions as u64);
        assert!(g.live_versions >= 2);
        assert_eq!(g.wal_backlog_bytes, 0, "no WAL attached");

        let text = db.prometheus_text();
        assert!(text.contains("mvdb_rw_committed 2"));
        assert!(text.contains("mvdb_gauge_vtnc 2"));
        let json = db.metrics_json();
        assert!(json.contains("\"rw_committed\": 2"));
        assert!(json.contains("\"vtnc\": 2"));
    }

    #[test]
    fn gauge_collector_samples_engine() {
        let db = Arc::new(db());
        db.run_rw(1, |t| t.write(ObjectId(1), Value::from_u64(1)))
            .unwrap();
        let mut collector = db.spawn_gauge_collector(Duration::from_millis(1));
        let deadline = std::time::Instant::now() + Duration::from_secs(5);
        let sample = loop {
            if let Some(s) = collector.latest() {
                break s;
            }
            assert!(
                std::time::Instant::now() < deadline,
                "collector never sampled"
            );
            std::thread::sleep(Duration::from_millis(1));
        };
        assert_eq!(sample.vc.vtnc, 1);
        collector.stop();
    }

    #[test]
    fn gc_pass_emits_prune_event() {
        let db = MvDatabase::with_config(SerialCc::new(), DbConfig::default().with_events());
        for v in 1..=5u64 {
            db.run_rw(1, |t| t.write(ObjectId(1), Value::from_u64(v)))
                .unwrap();
        }
        let stats = db.collect_garbage();
        assert!(stats.versions_pruned > 0);
        let events = db.obs().events().recent(64);
        let prune = events
            .iter()
            .find(|e| e.kind == crate::obs::EventKind::GcPrune)
            .expect("GcPrune event recorded");
        assert_eq!(prune.id, stats.watermark);
        assert_eq!(prune.aux, stats.versions_pruned as u64);
    }

    #[test]
    fn admission_gate_sheds_default_tenant_under_pressure() {
        use crate::pressure::PressureConfig;
        let cfg = DbConfig::default()
            .with_pressure(PressureConfig::enabled().with_byte_watermarks(8, 16));
        let db = MvDatabase::with_config(SerialCc::new(), cfg);
        // Six seeded 8-byte versions put live bytes at 48 ≥ 2×16 → the
        // RejectRo rung (seeding bypasses the gate we are about to trip).
        for i in 0..6u64 {
            db.seed(ObjectId(i), Value::from_u64(i));
        }
        db.core.ctx.observe_pressure();
        assert_eq!(
            db.admission().level(),
            crate::pressure::PressureLevel::RejectRo
        );
        // The default tenant (weight 1 < shed_weight_below 2) is refused.
        let err = match db.begin_read_write() {
            Ok(_) => panic!("begin must be shed under pressure"),
            Err(e) => e,
        };
        assert!(matches!(err, DbError::Aborted(AbortReason::Shed)), "{err}");
        // New RO snapshots are refused at the top rung, with a hint.
        let opts = crate::pressure::TxnOptions::default();
        let err = db.begin_read_only_admitted(&opts).unwrap_err();
        assert!(
            matches!(err, DbError::Aborted(AbortReason::MemoryPressure)),
            "{err}"
        );
        assert!(db.admission().retry_after() > Duration::ZERO);
        // The raw read-only path stays infallible regardless of pressure.
        let mut r = db.begin_read_only();
        assert!(r.read_u64(ObjectId(0)).unwrap().is_some());
        r.finish();
        assert!(db.metrics().shed_rw >= 1);
        assert!(db.metrics().shed_ro >= 1);
    }

    #[test]
    fn run_rw_deadline_stops_when_budget_cannot_fund_backoff() {
        use crate::clock::SimClock;
        use crate::pressure::TxnOptions;
        let clock = SimClock::new();
        let db = MvDatabase::with_config(
            SerialCc::new(),
            DbConfig::default().with_clock(clock.clone()),
        );
        let policy = RetryPolicy {
            max_attempts: 10,
            base_backoff: Duration::from_millis(10),
            max_backoff: Duration::from_millis(10),
            jitter: 0.0,
            seed: 1,
        };
        // Budget funds exactly two 10ms backoffs (and no third attempt's).
        let opts = TxnOptions::default().with_deadline(Duration::from_millis(25));
        let mut attempts = 0u32;
        let out: Result<(u64, ()), DbError> = db.run_rw_deadline(&policy, &opts, |_t| {
            attempts += 1;
            Err(DbError::Aborted(AbortReason::ValidationFailed))
        });
        assert!(matches!(
            out,
            Err(DbError::Aborted(AbortReason::ValidationFailed))
        ));
        assert_eq!(attempts, 3, "initial try + two funded retries");
        assert_eq!(clock.elapsed_ns(), 20_000_000, "only funded sleeps ran");
    }

    #[test]
    fn run_rw_deadline_without_deadline_matches_run_rw_with() {
        let db = db();
        let policy = RetryPolicy::no_backoff(4);
        let opts = crate::pressure::TxnOptions::default();
        let (tn, v) = db
            .run_rw_deadline(&policy, &opts, |t| {
                t.write(ObjectId(3), Value::from_u64(9))?;
                Ok(9u64)
            })
            .unwrap();
        assert_eq!((tn, v), (1, 9));
    }

    #[test]
    fn ro_metrics_count_single_sync_action() {
        let db = db();
        db.run_rw(1, |t| t.write(ObjectId(1), Value::from_u64(1)))
            .unwrap();
        db.reset_metrics();
        let mut r = db.begin_read_only();
        let _ = r.read(ObjectId(1)).unwrap();
        let _ = r.read(ObjectId(2)).unwrap();
        r.finish();
        let m = db.metrics();
        assert_eq!(m.ro_begun, 1);
        assert_eq!(m.ro_reads, 2);
        assert_eq!(m.ro_sync_actions, 1, "exactly one VCstart, nothing else");
        assert_eq!(m.ro_blocks, 0);
        assert_eq!(m.ro_aborts, 0);
    }
}
