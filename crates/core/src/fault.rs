//! Deterministic fault injection.
//!
//! The robustness experiments (E13) and the liveness tests need to make
//! transactions stall, clients crash, and messages vanish — *on demand and
//! reproducibly*. [`FaultInjector`] is a seeded coin shared by the engine
//! ([`crate::MvDatabase`]) and the distributed simulation (`mvcc-dist`):
//! every injection point draws from the same deterministic stream, so a
//! run is fully described by its [`FaultConfig`].
//!
//! Injection points (see DESIGN.md "Fault model & liveness"):
//!
//! * [`FaultPoint::StallAfterRegister`] — a read-write client hangs right
//!   after `begin`, never to return. Under timestamp ordering the
//!   transaction is already registered with version control, so its
//!   `Active` queue entry pins `vtnc` until the stall reaper
//!   ([`crate::VersionControl::reap`]) force-discards it.
//! * [`FaultPoint::CrashBeforeComplete`] — the client dies at commit
//!   entry, after its reads/writes but before the protocol can run
//!   `VCcomplete`. Pendings and locks leak until timeouts reclaim them.
//! * [`FaultPoint::MsgDrop`] / [`FaultPoint::MsgDuplicate`] /
//!   [`FaultPoint::MsgDelay`] — per-message faults in the `mvcc-dist`
//!   cluster: phase-2 commit messages can be lost (leaving a participant
//!   in doubt) or delivered twice (exercising idempotence), and any
//!   message can incur extra latency.

use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Duration;

/// Where a fault can be injected.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultPoint {
    /// Read-write client stalls forever right after `begin` (after
    /// registration under timestamp ordering).
    StallAfterRegister,
    /// Read-write client crashes at commit entry, before `VCcomplete`.
    CrashBeforeComplete,
    /// A cluster message is lost in transit.
    MsgDrop,
    /// A cluster message is delivered twice.
    MsgDuplicate,
    /// A cluster message incurs extra delay.
    MsgDelay,
}

const N_POINTS: usize = 5;

impl FaultPoint {
    fn index(self) -> usize {
        match self {
            FaultPoint::StallAfterRegister => 0,
            FaultPoint::CrashBeforeComplete => 1,
            FaultPoint::MsgDrop => 2,
            FaultPoint::MsgDuplicate => 3,
            FaultPoint::MsgDelay => 4,
        }
    }
}

/// Per-point fault probabilities plus the RNG seed. All probabilities
/// default to zero (no faults); the default config is free at runtime.
#[derive(Debug, Clone)]
pub struct FaultConfig {
    /// Seed for the deterministic draw stream.
    pub seed: u64,
    /// Probability a read-write client stalls after `begin`.
    pub stall_after_register: f64,
    /// Probability a read-write client crashes at commit entry.
    pub crash_before_complete: f64,
    /// Probability a cluster message is dropped.
    pub msg_drop: f64,
    /// Probability a cluster message is duplicated.
    pub msg_duplicate: f64,
    /// Probability a cluster message is delayed by
    /// [`msg_extra_delay`](Self::msg_extra_delay).
    pub msg_delay: f64,
    /// The extra delay applied when [`msg_delay`](Self::msg_delay) fires.
    pub msg_extra_delay: Duration,
}

impl Default for FaultConfig {
    fn default() -> Self {
        FaultConfig {
            seed: 0xFA017,
            stall_after_register: 0.0,
            crash_before_complete: 0.0,
            msg_drop: 0.0,
            msg_duplicate: 0.0,
            msg_delay: 0.0,
            msg_extra_delay: Duration::from_micros(500),
        }
    }
}

impl FaultConfig {
    /// Whether any fault can ever fire under this config.
    pub fn is_active(&self) -> bool {
        self.stall_after_register > 0.0
            || self.crash_before_complete > 0.0
            || self.msg_drop > 0.0
            || self.msg_duplicate > 0.0
            || self.msg_delay > 0.0
    }
}

/// The shared, thread-safe fault coin.
///
/// Draws use a SplitMix64 stream advanced with a single `fetch_add`, so
/// firing a fault point is one atomic RMW plus a few multiplies — cheap
/// enough to leave in production paths, and exactly zero-cost (an early
/// return) when the point's probability is zero.
pub struct FaultInjector {
    cfg: FaultConfig,
    state: AtomicU64,
    injected: [AtomicU64; N_POINTS],
}

impl FaultInjector {
    /// Injector from a config.
    pub fn new(cfg: FaultConfig) -> Self {
        FaultInjector {
            state: AtomicU64::new(cfg.seed),
            cfg,
            injected: Default::default(),
        }
    }

    /// Injector that never fires (the engine default).
    pub fn disabled() -> Self {
        Self::new(FaultConfig::default())
    }

    /// The configuration this injector draws from.
    pub fn config(&self) -> &FaultConfig {
        &self.cfg
    }

    /// Whether any fault can ever fire.
    pub fn is_active(&self) -> bool {
        self.cfg.is_active()
    }

    fn probability(&self, point: FaultPoint) -> f64 {
        match point {
            FaultPoint::StallAfterRegister => self.cfg.stall_after_register,
            FaultPoint::CrashBeforeComplete => self.cfg.crash_before_complete,
            FaultPoint::MsgDrop => self.cfg.msg_drop,
            FaultPoint::MsgDuplicate => self.cfg.msg_duplicate,
            FaultPoint::MsgDelay => self.cfg.msg_delay,
        }
    }

    /// Draw the next value of the SplitMix64 stream in `[0, 1)`.
    fn draw(&self) -> f64 {
        let mut z = self
            .state
            .fetch_add(0x9E37_79B9_7F4A_7C15, Ordering::Relaxed)
            .wrapping_add(0x9E37_79B9_7F4A_7C15);
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^= z >> 31;
        (z >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Should the fault at `point` fire now? Counts injections.
    pub fn fire(&self, point: FaultPoint) -> bool {
        let p = self.probability(point);
        if p <= 0.0 {
            return false;
        }
        if self.draw() < p {
            self.injected[point.index()].fetch_add(1, Ordering::Relaxed);
            true
        } else {
            false
        }
    }

    /// How many times `point` has fired.
    pub fn injected(&self, point: FaultPoint) -> u64 {
        self.injected[point.index()].load(Ordering::Relaxed)
    }

    /// Total injections across every point.
    pub fn total_injected(&self) -> u64 {
        self.injected
            .iter()
            .map(|c| c.load(Ordering::Relaxed))
            .sum()
    }

    /// The configured extra per-message delay (for `MsgDelay` firings).
    pub fn extra_delay(&self) -> Duration {
        self.cfg.msg_extra_delay
    }
}

impl std::fmt::Debug for FaultInjector {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("FaultInjector")
            .field("cfg", &self.cfg)
            .field("total_injected", &self.total_injected())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_never_fires() {
        let inj = FaultInjector::disabled();
        assert!(!inj.is_active());
        for _ in 0..1000 {
            assert!(!inj.fire(FaultPoint::MsgDrop));
        }
        assert_eq!(inj.total_injected(), 0);
    }

    #[test]
    fn rates_are_roughly_respected() {
        let inj = FaultInjector::new(FaultConfig {
            msg_drop: 0.3,
            ..Default::default()
        });
        let n = 10_000;
        let fired = (0..n).filter(|_| inj.fire(FaultPoint::MsgDrop)).count();
        let rate = fired as f64 / n as f64;
        assert!((0.25..0.35).contains(&rate), "rate {rate} far from 0.3");
        assert_eq!(inj.injected(FaultPoint::MsgDrop), fired as u64);
    }

    #[test]
    fn same_seed_same_stream() {
        let mk = || {
            FaultInjector::new(FaultConfig {
                seed: 42,
                stall_after_register: 0.5,
                ..Default::default()
            })
        };
        let (a, b) = (mk(), mk());
        for _ in 0..256 {
            assert_eq!(
                a.fire(FaultPoint::StallAfterRegister),
                b.fire(FaultPoint::StallAfterRegister)
            );
        }
    }

    #[test]
    fn probability_one_always_fires() {
        let inj = FaultInjector::new(FaultConfig {
            crash_before_complete: 1.0,
            ..Default::default()
        });
        assert!(inj.fire(FaultPoint::CrashBeforeComplete));
        assert!(!inj.fire(FaultPoint::StallAfterRegister));
    }
}
