//! Deterministic fault injection.
//!
//! The robustness experiments (E13) and the liveness tests need to make
//! transactions stall, clients crash, and messages vanish — *on demand and
//! reproducibly*. [`FaultInjector`] is a seeded coin shared by the engine
//! ([`crate::MvDatabase`]) and the distributed simulation (`mvcc-dist`):
//! every injection point draws from the same deterministic stream, so a
//! run is fully described by its [`FaultConfig`].
//!
//! Injection points (see DESIGN.md "Fault model & liveness"):
//!
//! * [`FaultPoint::StallAfterRegister`] — a read-write client hangs right
//!   after `begin`, never to return. Under timestamp ordering the
//!   transaction is already registered with version control, so its
//!   `Active` queue entry pins `vtnc` until the stall reaper
//!   ([`crate::VersionControl::reap`]) force-discards it.
//! * [`FaultPoint::CrashBeforeComplete`] — the client dies at commit
//!   entry, after its reads/writes but before the protocol can run
//!   `VCcomplete`. Pendings and locks leak until timeouts reclaim them.
//! * [`FaultPoint::MsgDrop`] / [`FaultPoint::MsgDuplicate`] /
//!   [`FaultPoint::MsgDelay`] — per-message faults in the `mvcc-dist`
//!   cluster: phase-2 commit messages can be lost (leaving a participant
//!   in doubt) or delivered twice (exercising idempotence), and any
//!   message can incur extra latency.
//! * [`FaultPoint::WalTornWrite`] / [`FaultPoint::WalPartialFsync`] /
//!   [`FaultPoint::WalBitFlip`] / [`FaultPoint::WalDiskFull`] — disk
//!   faults on the write-ahead log, injected by wrapping the WAL sink in
//!   a [`FaultyFile`]: an append can tear mid-frame, an fsync can return
//!   failure without persisting, a byte can flip silently on its way to
//!   the platter (caught later by the frame CRC, never at write time),
//!   and the disk can fill up.

use crate::clock::{SharedRng, SplitMixRng};
use mvcc_storage::wal::WalSink;
use std::io;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

/// Where a fault can be injected.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultPoint {
    /// Read-write client stalls forever right after `begin` (after
    /// registration under timestamp ordering).
    StallAfterRegister,
    /// Read-write client crashes at commit entry, before `VCcomplete`.
    CrashBeforeComplete,
    /// A cluster message is lost in transit.
    MsgDrop,
    /// A cluster message is delivered twice.
    MsgDuplicate,
    /// A cluster message incurs extra delay.
    MsgDelay,
    /// A WAL append writes only a prefix of the frame, then errors.
    WalTornWrite,
    /// A WAL fsync returns an error without making anything durable.
    WalPartialFsync,
    /// One bit of a WAL append is flipped silently (the write "succeeds").
    WalBitFlip,
    /// A WAL append fails entirely: the disk is full.
    WalDiskFull,
}

const N_POINTS: usize = 9;

impl FaultPoint {
    fn index(self) -> usize {
        match self {
            FaultPoint::StallAfterRegister => 0,
            FaultPoint::CrashBeforeComplete => 1,
            FaultPoint::MsgDrop => 2,
            FaultPoint::MsgDuplicate => 3,
            FaultPoint::MsgDelay => 4,
            FaultPoint::WalTornWrite => 5,
            FaultPoint::WalPartialFsync => 6,
            FaultPoint::WalBitFlip => 7,
            FaultPoint::WalDiskFull => 8,
        }
    }
}

/// Per-point fault probabilities plus the RNG seed. All probabilities
/// default to zero (no faults); the default config is free at runtime.
#[derive(Debug, Clone)]
pub struct FaultConfig {
    /// Seed for the deterministic draw stream.
    pub seed: u64,
    /// Probability a read-write client stalls after `begin`.
    pub stall_after_register: f64,
    /// Probability a read-write client crashes at commit entry.
    pub crash_before_complete: f64,
    /// Probability a cluster message is dropped.
    pub msg_drop: f64,
    /// Probability a cluster message is duplicated.
    pub msg_duplicate: f64,
    /// Probability a cluster message is delayed by
    /// [`msg_extra_delay`](Self::msg_extra_delay).
    pub msg_delay: f64,
    /// The extra delay applied when [`msg_delay`](Self::msg_delay) fires.
    pub msg_extra_delay: Duration,
    /// Probability a WAL append tears (partial frame written, then error).
    pub wal_torn_write: f64,
    /// Probability a WAL fsync fails without persisting.
    pub wal_partial_fsync: f64,
    /// Probability a WAL append silently flips one bit.
    pub wal_bit_flip: f64,
    /// Probability a WAL append fails with "disk full".
    pub wal_disk_full: f64,
}

impl Default for FaultConfig {
    fn default() -> Self {
        FaultConfig {
            seed: 0xFA017,
            stall_after_register: 0.0,
            crash_before_complete: 0.0,
            msg_drop: 0.0,
            msg_duplicate: 0.0,
            msg_delay: 0.0,
            msg_extra_delay: Duration::from_micros(500),
            wal_torn_write: 0.0,
            wal_partial_fsync: 0.0,
            wal_bit_flip: 0.0,
            wal_disk_full: 0.0,
        }
    }
}

impl FaultConfig {
    /// Whether any fault can ever fire under this config.
    pub fn is_active(&self) -> bool {
        self.stall_after_register > 0.0
            || self.crash_before_complete > 0.0
            || self.msg_drop > 0.0
            || self.msg_duplicate > 0.0
            || self.msg_delay > 0.0
            || self.has_disk_faults()
    }

    /// Whether any *disk* fault can fire (decides whether the engine
    /// wraps the WAL sink in a [`FaultyFile`]).
    pub fn has_disk_faults(&self) -> bool {
        self.wal_torn_write > 0.0
            || self.wal_partial_fsync > 0.0
            || self.wal_bit_flip > 0.0
            || self.wal_disk_full > 0.0
    }
}

/// The shared, thread-safe fault coin.
///
/// Every draw goes through the [`crate::SimRng`] trait. By default the
/// injector owns a private [`SplitMixRng`] seeded from
/// [`FaultConfig::seed`] (one atomic RMW plus a few multiplies per draw —
/// cheap enough to leave in production paths, and exactly zero-cost, an
/// early return, when the point's probability is zero). Under simulation
/// the engine injects its shared stream via [`Self::with_rng`], so fault
/// firing is a function of the single simulation seed.
pub struct FaultInjector {
    cfg: FaultConfig,
    rng: SharedRng,
    injected: [AtomicU64; N_POINTS],
}

impl FaultInjector {
    /// Injector from a config, drawing from a private stream seeded with
    /// `cfg.seed`.
    pub fn new(cfg: FaultConfig) -> Self {
        let rng = SplitMixRng::shared(cfg.seed);
        Self::with_rng(cfg, rng)
    }

    /// Injector drawing from an injected shared stream (the simulator's).
    pub fn with_rng(cfg: FaultConfig, rng: SharedRng) -> Self {
        FaultInjector {
            cfg,
            rng,
            injected: Default::default(),
        }
    }

    /// Injector that never fires (the engine default).
    pub fn disabled() -> Self {
        Self::new(FaultConfig::default())
    }

    /// The configuration this injector draws from.
    pub fn config(&self) -> &FaultConfig {
        &self.cfg
    }

    /// Whether any fault can ever fire.
    pub fn is_active(&self) -> bool {
        self.cfg.is_active()
    }

    fn probability(&self, point: FaultPoint) -> f64 {
        match point {
            FaultPoint::StallAfterRegister => self.cfg.stall_after_register,
            FaultPoint::CrashBeforeComplete => self.cfg.crash_before_complete,
            FaultPoint::MsgDrop => self.cfg.msg_drop,
            FaultPoint::MsgDuplicate => self.cfg.msg_duplicate,
            FaultPoint::MsgDelay => self.cfg.msg_delay,
            FaultPoint::WalTornWrite => self.cfg.wal_torn_write,
            FaultPoint::WalPartialFsync => self.cfg.wal_partial_fsync,
            FaultPoint::WalBitFlip => self.cfg.wal_bit_flip,
            FaultPoint::WalDiskFull => self.cfg.wal_disk_full,
        }
    }

    /// Should the fault at `point` fire now? Counts injections.
    pub fn fire(&self, point: FaultPoint) -> bool {
        let p = self.probability(point);
        if p <= 0.0 {
            return false;
        }
        if self.rng.next_unit() < p {
            self.injected[point.index()].fetch_add(1, Ordering::Relaxed);
            true
        } else {
            false
        }
    }

    /// Deterministic index in `[0, n)` from the same draw stream (picks
    /// torn-write cut points and bit-flip positions).
    pub fn draw_index(&self, n: usize) -> usize {
        self.rng.next_below(n as u64) as usize
    }

    /// How many times `point` has fired.
    pub fn injected(&self, point: FaultPoint) -> u64 {
        self.injected[point.index()].load(Ordering::Relaxed)
    }

    /// Total injections across every point.
    pub fn total_injected(&self) -> u64 {
        self.injected
            .iter()
            .map(|c| c.load(Ordering::Relaxed))
            .sum()
    }

    /// The configured extra per-message delay (for `MsgDelay` firings).
    pub fn extra_delay(&self) -> Duration {
        self.cfg.msg_extra_delay
    }
}

/// A [`WalSink`] wrapper that injects disk faults on the way through.
///
/// Fault semantics (each drawn independently per call from the shared
/// injector stream, so runs are reproducible from the seed):
///
/// * **Disk full** — `append` writes nothing and errors
///   ([`io::ErrorKind::StorageFull`]). The log is unchanged; the commit
///   must abort.
/// * **Torn write** — `append` writes roughly half the buffer, then
///   errors ([`io::ErrorKind::WriteZero`]). This is the mid-frame crash
///   shape; the writer above rewinds via `truncate_to`.
/// * **Bit flip** — `append` flips one bit at a drawn position and
///   *succeeds*. Nothing notices at write time — only the frame CRC
///   catches it, at recovery.
/// * **Partial fsync** — `sync` skips the underlying sync and errors
///   ([`io::ErrorKind::Other`]); bytes appended since the last good sync
///   are not durable.
pub struct FaultyFile<S> {
    inner: S,
    injector: Arc<FaultInjector>,
    /// Faults fire only while armed. The engine creates the wrapper
    /// disarmed, performs its own setup writes (log header, recovery
    /// re-appends) fault-free, then arms — faults model a hostile disk
    /// under *commit* traffic, not a database that cannot even be built.
    armed: Arc<std::sync::atomic::AtomicBool>,
}

impl<S: WalSink> FaultyFile<S> {
    /// Wrap `inner`, drawing faults from `injector`, armed immediately.
    pub fn new(inner: S, injector: Arc<FaultInjector>) -> Self {
        FaultyFile {
            inner,
            injector,
            armed: Arc::new(std::sync::atomic::AtomicBool::new(true)),
        }
    }

    /// Wrap `inner` disarmed; faults start firing once the returned gate
    /// is set to `true`.
    pub fn gated(
        inner: S,
        injector: Arc<FaultInjector>,
    ) -> (Self, Arc<std::sync::atomic::AtomicBool>) {
        let armed = Arc::new(std::sync::atomic::AtomicBool::new(false));
        (
            FaultyFile {
                inner,
                injector,
                armed: Arc::clone(&armed),
            },
            armed,
        )
    }

    fn fire(&self, point: FaultPoint) -> bool {
        self.armed.load(Ordering::Relaxed) && self.injector.fire(point)
    }
}

impl<S: WalSink> WalSink for FaultyFile<S> {
    fn append(&mut self, buf: &[u8]) -> io::Result<()> {
        if self.fire(FaultPoint::WalDiskFull) {
            return Err(io::Error::new(
                io::ErrorKind::StorageFull,
                "disk full (injected)",
            ));
        }
        if self.fire(FaultPoint::WalTornWrite) {
            let cut = self.injector.draw_index(buf.len());
            self.inner.append(&buf[..cut])?;
            return Err(io::Error::new(
                io::ErrorKind::WriteZero,
                "torn write (injected)",
            ));
        }
        if self.fire(FaultPoint::WalBitFlip) && !buf.is_empty() {
            let mut corrupt = buf.to_vec();
            let pos = self.injector.draw_index(corrupt.len());
            let bit = self.injector.draw_index(8);
            corrupt[pos] ^= 1 << bit;
            return self.inner.append(&corrupt);
        }
        self.inner.append(buf)
    }

    fn sync(&mut self) -> io::Result<()> {
        if self.fire(FaultPoint::WalPartialFsync) {
            return Err(io::Error::other("fsync failed (injected)"));
        }
        self.inner.sync()
    }

    fn truncate_to(&mut self, len: u64) -> io::Result<()> {
        self.inner.truncate_to(len)
    }
}

impl std::fmt::Debug for FaultInjector {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("FaultInjector")
            .field("cfg", &self.cfg)
            .field("total_injected", &self.total_injected())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_never_fires() {
        let inj = FaultInjector::disabled();
        assert!(!inj.is_active());
        for _ in 0..1000 {
            assert!(!inj.fire(FaultPoint::MsgDrop));
        }
        assert_eq!(inj.total_injected(), 0);
    }

    #[test]
    fn rates_are_roughly_respected() {
        let inj = FaultInjector::new(FaultConfig {
            msg_drop: 0.3,
            ..Default::default()
        });
        let n = 10_000;
        let fired = (0..n).filter(|_| inj.fire(FaultPoint::MsgDrop)).count();
        let rate = fired as f64 / n as f64;
        assert!((0.25..0.35).contains(&rate), "rate {rate} far from 0.3");
        assert_eq!(inj.injected(FaultPoint::MsgDrop), fired as u64);
    }

    #[test]
    fn same_seed_same_stream() {
        let mk = || {
            FaultInjector::new(FaultConfig {
                seed: 42,
                stall_after_register: 0.5,
                ..Default::default()
            })
        };
        let (a, b) = (mk(), mk());
        for _ in 0..256 {
            assert_eq!(
                a.fire(FaultPoint::StallAfterRegister),
                b.fire(FaultPoint::StallAfterRegister)
            );
        }
    }

    #[test]
    fn probability_one_always_fires() {
        let inj = FaultInjector::new(FaultConfig {
            crash_before_complete: 1.0,
            ..Default::default()
        });
        assert!(inj.fire(FaultPoint::CrashBeforeComplete));
        assert!(!inj.fire(FaultPoint::StallAfterRegister));
    }

    #[test]
    fn disk_faults_activate_config() {
        let cfg = FaultConfig {
            wal_bit_flip: 0.5,
            ..Default::default()
        };
        assert!(cfg.is_active());
        assert!(cfg.has_disk_faults());
        assert!(!FaultConfig::default().has_disk_faults());
    }

    #[test]
    fn draw_index_in_range() {
        let inj = FaultInjector::disabled();
        for _ in 0..1000 {
            assert!(inj.draw_index(7) < 7);
        }
        assert_eq!(inj.draw_index(0), 0);
        assert_eq!(inj.draw_index(1), 0);
    }

    #[test]
    fn faulty_file_disk_full_writes_nothing() {
        use mvcc_storage::wal::MemWal;
        let inj = Arc::new(FaultInjector::new(FaultConfig {
            wal_disk_full: 1.0,
            ..Default::default()
        }));
        let mem = MemWal::new();
        let mut f = FaultyFile::new(mem.clone(), inj);
        let err = f.append(b"hello").unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::StorageFull);
        assert!(mem.is_empty());
    }

    #[test]
    fn faulty_file_torn_write_leaves_prefix() {
        use mvcc_storage::wal::MemWal;
        let inj = Arc::new(FaultInjector::new(FaultConfig {
            wal_torn_write: 1.0,
            ..Default::default()
        }));
        let mem = MemWal::new();
        let mut f = FaultyFile::new(mem.clone(), inj);
        let err = f.append(&[0xAB; 64]).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::WriteZero);
        let written = mem.bytes();
        assert!(written.len() < 64, "torn write must not write everything");
        assert!(written.iter().all(|&b| b == 0xAB));
    }

    #[test]
    fn faulty_file_bit_flip_succeeds_but_corrupts() {
        use mvcc_storage::wal::MemWal;
        let inj = Arc::new(FaultInjector::new(FaultConfig {
            wal_bit_flip: 1.0,
            ..Default::default()
        }));
        let mem = MemWal::new();
        let mut f = FaultyFile::new(mem.clone(), inj);
        f.append(&[0u8; 32]).unwrap();
        let written = mem.bytes();
        assert_eq!(written.len(), 32, "bit flip must not change length");
        let flipped: u32 = written.iter().map(|b| b.count_ones()).sum();
        assert_eq!(flipped, 1, "exactly one bit must differ");
    }

    #[test]
    fn faulty_file_partial_fsync_skips_sync() {
        use mvcc_storage::wal::MemWal;
        let inj = Arc::new(FaultInjector::new(FaultConfig {
            wal_partial_fsync: 1.0,
            ..Default::default()
        }));
        let mem = MemWal::new();
        let mut f = FaultyFile::new(mem.clone(), inj);
        f.append(b"data").unwrap();
        assert!(f.sync().is_err());
        assert!(
            mem.durable_bytes().is_empty(),
            "failed fsync must not persist"
        );
    }
}
