//! Error types shared by the engine, the protocols, and the baselines.

use mvcc_model::ObjectId;
use std::fmt;

/// Why a read-write transaction was aborted.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum AbortReason {
    /// Timestamp-ordering conflict: the write arrived too late
    /// (`r-ts(x) > tn(T)` or `w-ts(x) > tn(T)`, paper Figure 3).
    TimestampConflict,
    /// Two-phase locking deadlock; this transaction was chosen as victim.
    Deadlock,
    /// Optimistic validation failed: a read object changed before commit.
    ValidationFailed,
    /// A lock or storage wait exceeded its configured timeout.
    WaitTimeout,
    /// Baseline-specific: the completed-transaction-list check failed
    /// (Chan MV2PL) or a timestamp race forced a retry (Weihl TI).
    BaselineConflict,
    /// The application requested the abort.
    UserRequested,
    /// The stall reaper force-discarded the registration after its TTL
    /// expired; the commit's `start_complete` claim failed. Retryable —
    /// a fresh attempt gets a fresh registration.
    Reaped,
    /// The write-ahead log rejected the commit record (disk full, torn
    /// write, failed fsync). Not retryable: a durability fault is a
    /// property of the medium, not of this transaction's timing — the
    /// application must surface it, not spin against a dead disk.
    LogFailed,
    /// The admission controller refused to admit (or shed) the
    /// transaction under overload. Not retryable by default: blind
    /// retries are exactly the load amplification shedding exists to
    /// stop — callers should honor the controller's `retry_after` hint
    /// and come back later.
    Shed,
    /// The transaction's deadline budget expired at a blocking point
    /// (lock wait, version wait, commit entry) or between retries. Not
    /// retryable: the budget is a property of the whole request, and it
    /// is already gone.
    DeadlineExceeded,
    /// The storage layer is over its memory watermarks (live-version
    /// bytes / GC debt) and the degradation ladder rejected new work.
    /// Not retryable until pressure drains; honor `retry_after`.
    MemoryPressure,
}

impl AbortReason {
    /// Every abort reason, in declaration order. Table-driven
    /// retryability audits iterate this so a new variant cannot be added
    /// without classifying it.
    pub const ALL: [AbortReason; 11] = [
        AbortReason::TimestampConflict,
        AbortReason::Deadlock,
        AbortReason::ValidationFailed,
        AbortReason::WaitTimeout,
        AbortReason::BaselineConflict,
        AbortReason::UserRequested,
        AbortReason::Reaped,
        AbortReason::LogFailed,
        AbortReason::Shed,
        AbortReason::DeadlineExceeded,
        AbortReason::MemoryPressure,
    ];
}

impl fmt::Display for AbortReason {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            AbortReason::TimestampConflict => "timestamp-ordering conflict",
            AbortReason::Deadlock => "deadlock victim",
            AbortReason::ValidationFailed => "optimistic validation failed",
            AbortReason::WaitTimeout => "wait timeout",
            AbortReason::BaselineConflict => "baseline protocol conflict",
            AbortReason::UserRequested => "user requested",
            AbortReason::Reaped => "reaped after registration stall",
            AbortReason::LogFailed => "write-ahead log append failed",
            AbortReason::Shed => "shed by admission control",
            AbortReason::DeadlineExceeded => "deadline exceeded",
            AbortReason::MemoryPressure => "rejected under memory pressure",
        };
        f.write_str(s)
    }
}

/// Errors surfaced by transaction operations.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DbError {
    /// The transaction was (or must now be) aborted; the caller may retry
    /// a fresh transaction.
    Aborted(AbortReason),
    /// A snapshot read found its version garbage-collected (paper:
    /// "barring the unavailability of an appropriate version to read due
    /// to garbage-collection … a read request of T is never rejected").
    VersionPruned {
        /// The object whose old version is gone.
        obj: ObjectId,
        /// The start number whose snapshot needed it.
        sn: u64,
    },
    /// Operation on a transaction that already committed or aborted.
    TxnFinished,
    /// An invariant violation inside the engine (a bug, not a user error).
    Internal(String),
}

impl DbError {
    /// Whether retrying the whole transaction can succeed.
    pub fn is_retryable(&self) -> bool {
        matches!(
            self,
            DbError::Aborted(
                AbortReason::TimestampConflict
                    | AbortReason::Deadlock
                    | AbortReason::ValidationFailed
                    | AbortReason::WaitTimeout
                    | AbortReason::BaselineConflict
                    | AbortReason::Reaped
            )
        )
    }

    /// The abort reason, if this error is an abort.
    pub fn abort_reason(&self) -> Option<AbortReason> {
        match self {
            DbError::Aborted(r) => Some(*r),
            _ => None,
        }
    }
}

impl fmt::Display for DbError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DbError::Aborted(r) => write!(f, "transaction aborted: {r}"),
            DbError::VersionPruned { obj, sn } => {
                write!(
                    f,
                    "version of {obj} visible at sn {sn} was garbage-collected"
                )
            }
            DbError::TxnFinished => write!(f, "transaction already finished"),
            DbError::Internal(msg) => write!(f, "internal error: {msg}"),
        }
    }
}

impl std::error::Error for DbError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn retryability() {
        assert!(DbError::Aborted(AbortReason::Deadlock).is_retryable());
        assert!(DbError::Aborted(AbortReason::TimestampConflict).is_retryable());
        assert!(DbError::Aborted(AbortReason::ValidationFailed).is_retryable());
        assert!(DbError::Aborted(AbortReason::Reaped).is_retryable());
        assert!(!DbError::Aborted(AbortReason::LogFailed).is_retryable());
        assert!(!DbError::Aborted(AbortReason::UserRequested).is_retryable());
        assert!(!DbError::Aborted(AbortReason::Shed).is_retryable());
        assert!(!DbError::Aborted(AbortReason::DeadlineExceeded).is_retryable());
        assert!(!DbError::Aborted(AbortReason::MemoryPressure).is_retryable());
        assert!(!DbError::TxnFinished.is_retryable());
        assert!(!DbError::VersionPruned {
            obj: ObjectId(1),
            sn: 2
        }
        .is_retryable());
    }

    #[test]
    fn abort_reason_extraction() {
        assert_eq!(
            DbError::Aborted(AbortReason::Deadlock).abort_reason(),
            Some(AbortReason::Deadlock)
        );
        assert_eq!(DbError::TxnFinished.abort_reason(), None);
    }

    #[test]
    fn display_is_informative() {
        let e = DbError::VersionPruned {
            obj: ObjectId(0),
            sn: 9,
        };
        assert!(e.to_string().contains("garbage-collected"));
        assert!(DbError::Aborted(AbortReason::Deadlock)
            .to_string()
            .contains("deadlock"));
    }
}
