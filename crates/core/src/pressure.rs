//! Overload control: admission, backpressure, and graceful degradation.
//!
//! Production front-ends die from *accepted* work, not offered work. This
//! module gives the engine a way to refuse, delay, or shed transactions
//! before they consume resources that committed work needs:
//!
//! * **[`AdmissionController`]** — the gate at `begin_rw`/`begin_ro`. A
//!   token bucket bounds the arrival rate, an AIMD concurrency limit
//!   (halved when the abort/deadline-miss rate of finished work crosses a
//!   threshold, raised additively while it stays healthy) bounds the
//!   in-flight population, and per-tenant weighted quotas keep one noisy
//!   tenant from starving the rest.
//! * **[`Deadline`]** — an absolute budget carried by a transaction and
//!   checked at every blocking point (lock waits, version waits, commit
//!   entry, retry backoff). All deadline arithmetic goes through the
//!   injected [`Clock`], so simulated runs age deadlines virtually.
//! * **[`PressureLevel`]** — the degradation ladder driven by storage
//!   pressure signals (live-version bytes, GC debt) with high/low
//!   watermark hysteresis: `Normal → Throttle → Shed → RejectRo`.
//!   Throttle halves the token rate and enforces tenant quotas, Shed
//!   refuses the lowest-weight tenants outright, RejectRo additionally
//!   turns away new read-only snapshots with a retry-after hint.
//!
//! Everything here is off by default ([`PressureConfig::enabled`] =
//! `false`): the controller then costs one relaxed load per begin and
//! changes no behavior, so existing workloads and the deterministic
//! simulator's byte-stable traces are untouched.

use crate::clock::{Clock, SharedClock};
use crate::error::{AbortReason, DbError};
use crate::metrics::Metrics;
use crate::obs::{DumpContext, EventKind, FlightTrigger, Obs};
use parking_lot::Mutex;
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, AtomicU8, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// A tenant identity carried on [`TxnOptions`]. Tenant 0 is the default
/// tenant; weights come from [`PressureConfig::tenant_weights`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default, PartialOrd, Ord)]
pub struct TenantId(pub u32);

/// Per-transaction options accepted by the `begin_*_with` entry points.
#[derive(Debug, Clone, Default)]
pub struct TxnOptions {
    /// Which tenant this transaction bills to (quotas, shed priority).
    pub tenant: TenantId,
    /// Total latency budget for the transaction, including queueing,
    /// blocking waits, and retries. `None` means unbounded (the
    /// pre-overload-control behavior).
    pub deadline: Option<Duration>,
    /// End-to-end trace to join (from
    /// [`MvDatabase::start_trace`](crate::db::MvDatabase::start_trace)).
    /// `None` leaves tracing to the spans-tier sampler.
    pub trace: Option<crate::obs::TraceCtx>,
}

impl TxnOptions {
    /// Bill to `tenant`.
    pub fn with_tenant(mut self, tenant: TenantId) -> Self {
        self.tenant = tenant;
        self
    }

    /// Give the transaction `budget` of total latency.
    pub fn with_deadline(mut self, budget: Duration) -> Self {
        self.deadline = Some(budget);
        self
    }

    /// Join an explicit end-to-end trace.
    pub fn with_trace(mut self, trace: crate::obs::TraceCtx) -> Self {
        self.trace = Some(trace);
        self
    }
}

/// An absolute deadline, measured on the engine's (possibly simulated)
/// clock. Copyable plain data: protocols stash it in their per-txn state
/// and bound every wait by [`remaining`](Self::remaining).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Deadline {
    at: Instant,
}

impl Deadline {
    /// A deadline `budget` from now on `clock`.
    pub fn within(clock: &dyn Clock, budget: Duration) -> Deadline {
        Deadline {
            at: clock.now() + budget,
        }
    }

    /// A deadline at an explicit instant.
    pub fn at(at: Instant) -> Deadline {
        Deadline { at }
    }

    /// The absolute expiry instant.
    pub fn instant(&self) -> Instant {
        self.at
    }

    /// Budget left on `clock` (zero once expired).
    pub fn remaining(&self, clock: &dyn Clock) -> Duration {
        self.at.saturating_duration_since(clock.now())
    }

    /// Whether the budget is gone.
    pub fn expired(&self, clock: &dyn Clock) -> bool {
        self.remaining(clock).is_zero()
    }

    /// Bound a configured wait `timeout` by the remaining budget: the
    /// effective wait a blocking point may use. Expired deadlines yield
    /// `Duration::ZERO`, which every wait primitive treats as fail-fast.
    pub fn bound(&self, clock: &dyn Clock, timeout: Duration) -> Duration {
        timeout.min(self.remaining(clock))
    }
}

/// The degradation ladder, least to most degraded. Driven by storage
/// pressure ([`AdmissionController::observe`]); each rung keeps every
/// restriction of the rungs below it.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
#[repr(u8)]
pub enum PressureLevel {
    /// No pressure: admission limited only by tokens + AIMD limit.
    Normal = 0,
    /// Above the high watermark: RW token rate halved, per-tenant
    /// weighted quotas enforced, GC pacing boost ×2.
    Throttle = 1,
    /// Sustained pressure: lowest-weight tenants refused outright,
    /// GC pacing boost ×4. Entering this rung dumps the flight recorder.
    Shed = 2,
    /// Critical: new read-only snapshots are also refused (they pin the
    /// GC watermark and hold version bytes live).
    RejectRo = 3,
}

impl PressureLevel {
    /// All rungs, in escalation order.
    pub const ALL: [PressureLevel; 4] = [
        PressureLevel::Normal,
        PressureLevel::Throttle,
        PressureLevel::Shed,
        PressureLevel::RejectRo,
    ];

    /// Stable short name.
    pub fn name(self) -> &'static str {
        match self {
            PressureLevel::Normal => "normal",
            PressureLevel::Throttle => "throttle",
            PressureLevel::Shed => "shed",
            PressureLevel::RejectRo => "reject-ro",
        }
    }

    fn from_u8(v: u8) -> PressureLevel {
        match v {
            1 => PressureLevel::Throttle,
            2 => PressureLevel::Shed,
            3 => PressureLevel::RejectRo,
            _ => PressureLevel::Normal,
        }
    }

    /// Advisory GC pacing multiplier for this rung: control loops should
    /// run garbage collection this many times as often.
    pub fn gc_boost(self) -> u32 {
        match self {
            PressureLevel::Normal => 1,
            PressureLevel::Throttle => 2,
            PressureLevel::Shed | PressureLevel::RejectRo => 4,
        }
    }
}

/// Admission-control knobs. Disabled by default; see module docs.
#[derive(Debug, Clone)]
pub struct PressureConfig {
    /// Master switch. Off: every begin is admitted untouched.
    pub enabled: bool,
    /// Sustained RW admission rate (tokens per second). Zero disables
    /// the token bucket.
    pub token_rate: f64,
    /// Bucket capacity: the largest burst admitted at once.
    pub token_burst: f64,
    /// Upper bound for the AIMD concurrency limit (and its initial
    /// value): concurrent in-flight RW transactions.
    pub max_concurrent_rw: u64,
    /// Lower bound the AIMD halving never goes below.
    pub min_concurrent_rw: u64,
    /// Finished transactions per AIMD window; each full window adjusts
    /// the limit once.
    pub aimd_window: u64,
    /// Abort + deadline-miss fraction (of a window) above which the
    /// concurrency limit is halved; below, it grows by one.
    pub aimd_miss_threshold: f64,
    /// `(tenant, weight)` quota table. Unlisted tenants get
    /// [`default_tenant_weight`](Self::default_tenant_weight).
    pub tenant_weights: Vec<(TenantId, u32)>,
    /// Weight for tenants not in the table.
    pub default_tenant_weight: u32,
    /// At `Shed` and above, tenants with weight strictly below this are
    /// refused outright.
    pub shed_weight_below: u32,
    /// Live-version byte watermarks: the ladder climbs while bytes (or
    /// GC debt) sit above `high_*`, and descends only below `low_*`
    /// (hysteresis). Zero disables the signal.
    pub high_live_bytes: u64,
    /// Low live-byte watermark (descend threshold).
    pub low_live_bytes: u64,
    /// High GC-debt watermark, in reclaimable versions.
    pub high_gc_debt: u64,
    /// Low GC-debt watermark (descend threshold).
    pub low_gc_debt: u64,
    /// Retry-after hint handed to shed callers when the refusal was not
    /// token-shaped (level- or quota-based).
    pub retry_after: Duration,
}

impl Default for PressureConfig {
    fn default() -> Self {
        PressureConfig {
            enabled: false,
            token_rate: 0.0,
            token_burst: 64.0,
            max_concurrent_rw: 1024,
            min_concurrent_rw: 4,
            aimd_window: 64,
            aimd_miss_threshold: 0.5,
            tenant_weights: Vec::new(),
            default_tenant_weight: 1,
            shed_weight_below: 2,
            high_live_bytes: 0,
            low_live_bytes: 0,
            high_gc_debt: 0,
            low_gc_debt: 0,
            retry_after: Duration::from_millis(50),
        }
    }
}

impl PressureConfig {
    /// Enabled controller with no token/byte limits — concurrency limit
    /// and ladder only. A convenient base for tests and experiments.
    pub fn enabled() -> Self {
        PressureConfig {
            enabled: true,
            ..Default::default()
        }
    }

    /// Set the token bucket.
    pub fn with_token_rate(mut self, rate: f64, burst: f64) -> Self {
        self.token_rate = rate;
        self.token_burst = burst;
        self
    }

    /// Set the AIMD concurrency band.
    pub fn with_concurrency(mut self, min: u64, max: u64) -> Self {
        self.min_concurrent_rw = min.max(1);
        self.max_concurrent_rw = max.max(self.min_concurrent_rw);
        self
    }

    /// Set a tenant's quota weight.
    pub fn with_tenant_weight(mut self, tenant: TenantId, weight: u32) -> Self {
        self.tenant_weights.retain(|(t, _)| *t != tenant);
        self.tenant_weights.push((tenant, weight.max(1)));
        self
    }

    /// Set the live-byte watermarks (high = climb, low = descend).
    pub fn with_byte_watermarks(mut self, low: u64, high: u64) -> Self {
        self.low_live_bytes = low;
        self.high_live_bytes = high.max(low);
        self
    }

    /// Set the GC-debt watermarks (high = climb, low = descend).
    pub fn with_gc_debt_watermarks(mut self, low: u64, high: u64) -> Self {
        self.low_gc_debt = low;
        self.high_gc_debt = high.max(low);
        self
    }

    fn weight_of(&self, tenant: TenantId) -> u32 {
        self.tenant_weights
            .iter()
            .find(|(t, _)| *t == tenant)
            .map(|(_, w)| *w)
            .unwrap_or(self.default_tenant_weight)
            .max(1)
    }

    fn total_weight(&self) -> u64 {
        let listed: u64 = self.tenant_weights.iter().map(|(_, w)| *w as u64).sum();
        listed.max(1)
    }
}

/// How an admitted transaction ended — fed back into the AIMD loop.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TxnOutcome {
    /// Committed inside its budget.
    Committed,
    /// Aborted (conflict, timeout, fault). Counts toward the miss rate.
    Aborted,
    /// Missed its deadline. Counts toward the miss rate.
    DeadlineMiss,
}

/// Token-shaped state under one mutex (taken only on enabled begins).
struct Bucket {
    tokens: f64,
    last_refill: Instant,
}

#[derive(Default)]
struct TenantState {
    in_flight: u64,
    admitted: u64,
    shed: u64,
}

/// The admission gate. One per engine, shared via `Arc`; cheap when
/// disabled (a single relaxed load per begin).
pub struct AdmissionController {
    cfg: PressureConfig,
    clock: SharedClock,
    metrics: Arc<Metrics>,
    obs: Arc<Obs>,
    bucket: Mutex<Bucket>,
    tenants: Mutex<HashMap<u32, TenantState>>,
    in_flight: AtomicU64,
    limit: AtomicU64,
    level: AtomicU8,
    /// AIMD window accumulators: finished transactions and misses.
    window_done: AtomicU64,
    window_miss: AtomicU64,
    shed_total: AtomicU64,
}

impl AdmissionController {
    /// Build the controller for one engine.
    pub fn new(
        cfg: PressureConfig,
        clock: SharedClock,
        metrics: Arc<Metrics>,
        obs: Arc<Obs>,
    ) -> Arc<AdmissionController> {
        let now = clock.now();
        Arc::new(AdmissionController {
            limit: AtomicU64::new(cfg.max_concurrent_rw.max(1)),
            bucket: Mutex::new(Bucket {
                tokens: cfg.token_burst,
                last_refill: now,
            }),
            cfg,
            clock,
            metrics,
            obs,
            tenants: Mutex::new(HashMap::new()),
            in_flight: AtomicU64::new(0),
            level: AtomicU8::new(PressureLevel::Normal as u8),
            window_done: AtomicU64::new(0),
            window_miss: AtomicU64::new(0),
            shed_total: AtomicU64::new(0),
        })
    }

    /// Whether admission control is active at all.
    #[inline]
    pub fn enabled(&self) -> bool {
        self.cfg.enabled
    }

    /// The controller's configuration.
    pub fn config(&self) -> &PressureConfig {
        &self.cfg
    }

    /// Current rung of the degradation ladder.
    pub fn level(&self) -> PressureLevel {
        PressureLevel::from_u8(self.level.load(Ordering::Acquire))
    }

    /// Current AIMD concurrency limit.
    pub fn concurrency_limit(&self) -> u64 {
        self.limit.load(Ordering::Relaxed)
    }

    /// In-flight admitted RW transactions.
    pub fn in_flight(&self) -> u64 {
        self.in_flight.load(Ordering::Relaxed)
    }

    /// Total refusals so far (all reasons, all tenants).
    pub fn shed_total(&self) -> u64 {
        self.shed_total.load(Ordering::Relaxed)
    }

    /// How long a refused caller should wait before retrying: the time
    /// until the bucket refills one token, or the configured flat hint
    /// when the refusal was level- or quota-shaped.
    pub fn retry_after(&self) -> Duration {
        if self.cfg.token_rate > 0.0 {
            let b = self.bucket.lock();
            if b.tokens < 1.0 {
                let deficit = 1.0 - b.tokens;
                return Duration::from_secs_f64(deficit / self.cfg.token_rate)
                    .max(Duration::from_micros(1));
            }
        }
        self.cfg.retry_after
    }

    /// Feed the storage pressure signals and walk the degradation
    /// ladder. Climbs straight to whatever rung the *high* watermarks
    /// demand; descends one rung at a time, and only once the *low*
    /// watermarks clear it — the hysteresis that keeps the ladder from
    /// oscillating across a noisy boundary.
    pub fn observe(&self, live_bytes: u64, gc_debt: u64) {
        if !self.cfg.enabled {
            return;
        }
        let up = Self::rung(
            live_bytes,
            gc_debt,
            self.cfg.high_live_bytes,
            self.cfg.high_gc_debt,
        );
        let down = Self::rung(
            live_bytes,
            gc_debt,
            self.cfg.low_live_bytes.max(1).min(self.cfg.high_live_bytes),
            self.cfg.low_gc_debt.max(1).min(self.cfg.high_gc_debt),
        );
        let cur = self.level();
        let next = if up > cur {
            up
        } else if down < cur {
            // One rung per observation on the way down.
            PressureLevel::from_u8(cur as u8 - 1)
        } else {
            return;
        };
        if self
            .level
            .compare_exchange(cur as u8, next as u8, Ordering::AcqRel, Ordering::Relaxed)
            .is_err()
        {
            return; // someone else transitioned concurrently
        }
        self.metrics
            .pressure_transitions
            .fetch_add(1, Ordering::Relaxed);
        self.obs.emit(
            EventKind::PressureChange,
            next as u8 as u64,
            cur as u8 as u64,
        );
        if next == PressureLevel::Shed && cur < PressureLevel::Shed {
            // Sustained-overload trip: leave a postmortem of the window
            // that pushed the ladder into shedding.
            self.obs.dump(
                FlightTrigger::Overload,
                &DumpContext {
                    victim: None,
                    detail: format!(
                        "degradation ladder entered shed: live_bytes={live_bytes} \
                         gc_debt={gc_debt} in_flight={} limit={}",
                        self.in_flight(),
                        self.concurrency_limit()
                    ),
                    waits_for: None,
                    vc: None,
                    trace_id: None,
                },
            );
        }
    }

    /// The rung the raw signals demand against one watermark pair.
    /// Signals with a zero watermark are disabled. The score is the worst
    /// signal as a per-mille of its watermark; rungs sit at 1000 / 1500 /
    /// 2000 — i.e. Throttle at the watermark, Shed at 1.5×, RejectRo at 2×.
    fn rung(live_bytes: u64, gc_debt: u64, wm_bytes: u64, wm_debt: u64) -> PressureLevel {
        let score =
            |v: u64, wm: u64| -> u64 { v.saturating_mul(1000).checked_div(wm).unwrap_or(0) };
        let s = score(live_bytes, wm_bytes).max(score(gc_debt, wm_debt));
        if s >= 2000 {
            PressureLevel::RejectRo
        } else if s >= 1500 {
            PressureLevel::Shed
        } else if s >= 1000 {
            PressureLevel::Throttle
        } else {
            PressureLevel::Normal
        }
    }

    /// Gate a read-write begin. On refusal the error is
    /// `Aborted(Shed)` (rate/quota/ladder) — non-retryable; callers
    /// should honor [`retry_after`](Self::retry_after).
    pub fn admit_rw(
        self: &Arc<Self>,
        opts: &TxnOptions,
    ) -> Result<Option<AdmissionPermit>, DbError> {
        if !self.cfg.enabled {
            return Ok(None);
        }
        let level = self.level();
        let weight = self.cfg.weight_of(opts.tenant);

        // Rung 2: shed the lowest-weight tenants outright.
        if level >= PressureLevel::Shed && weight < self.cfg.shed_weight_below {
            return Err(self.refuse(opts.tenant, AbortReason::Shed));
        }

        // A transaction whose whole budget is already gone never gets a
        // slot (cheaper to refuse here than to admit a guaranteed miss).
        if opts.deadline == Some(Duration::ZERO) {
            return Err(self.refuse(opts.tenant, AbortReason::DeadlineExceeded));
        }

        // Token bucket; Throttle halves the sustained rate.
        if self.cfg.token_rate > 0.0 {
            let rate = if level >= PressureLevel::Throttle {
                self.cfg.token_rate / 2.0
            } else {
                self.cfg.token_rate
            };
            let mut b = self.bucket.lock();
            let now = self.clock.now();
            let dt = now.saturating_duration_since(b.last_refill).as_secs_f64();
            b.tokens = (b.tokens + dt * rate).min(self.cfg.token_burst);
            b.last_refill = now;
            if b.tokens < 1.0 {
                drop(b);
                return Err(self.refuse(opts.tenant, AbortReason::Shed));
            }
            b.tokens -= 1.0;
        }

        // AIMD concurrency limit.
        let limit = self.limit.load(Ordering::Relaxed);
        let prev = self.in_flight.fetch_add(1, Ordering::AcqRel);
        if prev >= limit {
            self.in_flight.fetch_sub(1, Ordering::AcqRel);
            return Err(self.refuse(opts.tenant, AbortReason::Shed));
        }

        // Per-tenant weighted quota, enforced from Throttle up.
        {
            let mut t = self.tenants.lock();
            let st = t.entry(opts.tenant.0).or_default();
            if level >= PressureLevel::Throttle {
                let share = (limit.saturating_mul(weight as u64) / self.cfg.total_weight()).max(1);
                if st.in_flight >= share {
                    st.shed += 1;
                    drop(t);
                    self.in_flight.fetch_sub(1, Ordering::AcqRel);
                    return Err(self.refuse(opts.tenant, AbortReason::Shed));
                }
            }
            st.in_flight += 1;
            st.admitted += 1;
        }

        self.metrics.admitted_rw.fetch_add(1, Ordering::Relaxed);
        self.obs.emit_sampled(
            EventKind::Admit,
            opts.tenant.0 as u64,
            self.in_flight.load(Ordering::Relaxed),
        );
        Ok(Some(AdmissionPermit {
            ctrl: Arc::clone(self),
            tenant: opts.tenant,
            outcome: TxnOutcome::Aborted,
        }))
    }

    /// Gate a read-only begin: refused only on the top rung (snapshots
    /// pin the GC watermark, so under critical memory pressure new ones
    /// make the spiral worse). The error is `Aborted(MemoryPressure)`.
    pub fn admit_ro(&self, opts: &TxnOptions) -> Result<(), DbError> {
        if !self.cfg.enabled {
            return Ok(());
        }
        if self.level() >= PressureLevel::RejectRo {
            self.shed_total.fetch_add(1, Ordering::Relaxed);
            self.metrics.shed_ro.fetch_add(1, Ordering::Relaxed);
            self.obs.emit_sampled(
                EventKind::Shed,
                opts.tenant.0 as u64,
                crate::obs::abort_reason_code(&AbortReason::MemoryPressure),
            );
            return Err(DbError::Aborted(AbortReason::MemoryPressure));
        }
        self.metrics.admitted_ro.fetch_add(1, Ordering::Relaxed);
        Ok(())
    }

    fn refuse(&self, tenant: TenantId, reason: AbortReason) -> DbError {
        self.shed_total.fetch_add(1, Ordering::Relaxed);
        self.metrics.shed_rw.fetch_add(1, Ordering::Relaxed);
        self.tenants.lock().entry(tenant.0).or_default().shed += 1;
        self.obs.emit_sampled(
            EventKind::Shed,
            tenant.0 as u64,
            crate::obs::abort_reason_code(&reason),
        );
        DbError::Aborted(reason)
    }

    /// Permit drop path: release the slot and feed the AIMD loop.
    fn finish(&self, tenant: TenantId, outcome: TxnOutcome) {
        self.in_flight.fetch_sub(1, Ordering::AcqRel);
        if let Some(st) = self.tenants.lock().get_mut(&tenant.0) {
            st.in_flight = st.in_flight.saturating_sub(1);
        }
        let miss = matches!(outcome, TxnOutcome::Aborted | TxnOutcome::DeadlineMiss);
        if miss {
            self.window_miss.fetch_add(1, Ordering::Relaxed);
        }
        let done = self.window_done.fetch_add(1, Ordering::Relaxed) + 1;
        if done >= self.cfg.aimd_window.max(1) {
            // One thread wins the reset and applies the adjustment.
            if self
                .window_done
                .compare_exchange(done, 0, Ordering::AcqRel, Ordering::Relaxed)
                .is_ok()
            {
                let misses = self.window_miss.swap(0, Ordering::AcqRel);
                let rate = misses as f64 / done as f64;
                let cur = self.limit.load(Ordering::Relaxed);
                let next = if rate > self.cfg.aimd_miss_threshold {
                    (cur / 2).max(self.cfg.min_concurrent_rw.max(1))
                } else {
                    (cur + 1).min(self.cfg.max_concurrent_rw.max(1))
                };
                self.limit.store(next, Ordering::Relaxed);
            }
        }
    }

    /// Per-tenant `(tenant, admitted, shed, in_flight)` counters, sorted
    /// by tenant id.
    pub fn tenant_stats(&self) -> Vec<(TenantId, u64, u64, u64)> {
        let t = self.tenants.lock();
        let mut out: Vec<_> = t
            .iter()
            .map(|(&id, st)| (TenantId(id), st.admitted, st.shed, st.in_flight))
            .collect();
        out.sort_by_key(|(t, ..)| *t);
        out
    }

    /// Gauge fields for the exporters (`extra` section of a
    /// [`GaugeSample`](crate::obs::GaugeSample)).
    pub fn gauges(&self) -> Vec<(&'static str, u64)> {
        if !self.cfg.enabled {
            return Vec::new();
        }
        let tokens_x1000 = {
            let b = self.bucket.lock();
            (b.tokens.max(0.0) * 1000.0) as u64
        };
        vec![
            ("admission_in_flight", self.in_flight()),
            ("admission_limit", self.concurrency_limit()),
            ("admission_tokens_x1000", tokens_x1000),
            ("pressure_level", self.level() as u8 as u64),
            ("shed_total", self.shed_total()),
        ]
    }
}

impl std::fmt::Debug for AdmissionController {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("AdmissionController")
            .field("enabled", &self.cfg.enabled)
            .field("level", &self.level())
            .field("in_flight", &self.in_flight())
            .field("limit", &self.concurrency_limit())
            .finish()
    }
}

/// RAII admission slot held by an in-flight read-write transaction.
/// Dropping it releases the slot; [`set_outcome`](Self::set_outcome)
/// decides what the AIMD loop learns from this transaction.
pub struct AdmissionPermit {
    ctrl: Arc<AdmissionController>,
    tenant: TenantId,
    outcome: TxnOutcome,
}

impl AdmissionPermit {
    /// Record how the transaction ended (default: `Aborted`).
    pub fn set_outcome(&mut self, outcome: TxnOutcome) {
        self.outcome = outcome;
    }

    /// The tenant this permit bills to.
    pub fn tenant(&self) -> TenantId {
        self.tenant
    }
}

impl Drop for AdmissionPermit {
    fn drop(&mut self) {
        self.ctrl.finish(self.tenant, self.outcome);
    }
}

impl std::fmt::Debug for AdmissionPermit {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("AdmissionPermit")
            .field("tenant", &self.tenant)
            .field("outcome", &self.outcome)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::clock::SimClock;
    use crate::obs::ObsConfig;

    fn ctrl(cfg: PressureConfig) -> (Arc<AdmissionController>, Arc<SimClock>) {
        let clock = SimClock::new();
        let metrics = Arc::new(Metrics::new());
        let obs = Arc::new(Obs::new(&ObsConfig::default()));
        let c = AdmissionController::new(cfg, clock.clone(), metrics, obs);
        (c, clock)
    }

    #[test]
    fn disabled_controller_admits_everything_for_free() {
        let (c, _) = ctrl(PressureConfig::default());
        assert!(!c.enabled());
        for _ in 0..10_000 {
            assert!(c.admit_rw(&TxnOptions::default()).unwrap().is_none());
            c.admit_ro(&TxnOptions::default()).unwrap();
        }
        assert_eq!(c.in_flight(), 0);
        assert!(c.gauges().is_empty());
    }

    #[test]
    fn concurrency_limit_bounds_in_flight() {
        let cfg = PressureConfig::enabled().with_concurrency(1, 3);
        let (c, _) = ctrl(cfg);
        let p1 = c.admit_rw(&TxnOptions::default()).unwrap().unwrap();
        let p2 = c.admit_rw(&TxnOptions::default()).unwrap().unwrap();
        let p3 = c.admit_rw(&TxnOptions::default()).unwrap().unwrap();
        assert_eq!(c.in_flight(), 3);
        let err = c.admit_rw(&TxnOptions::default()).unwrap_err();
        assert_eq!(err, DbError::Aborted(AbortReason::Shed));
        drop(p1);
        assert_eq!(c.in_flight(), 2);
        let _p4 = c.admit_rw(&TxnOptions::default()).unwrap().unwrap();
        drop(p2);
        drop(p3);
    }

    #[test]
    fn token_bucket_refills_on_virtual_time() {
        let cfg = PressureConfig::enabled().with_token_rate(10.0, 2.0);
        let (c, clock) = ctrl(cfg);
        // burst of 2, then dry
        let _a = c.admit_rw(&TxnOptions::default()).unwrap().unwrap();
        let _b = c.admit_rw(&TxnOptions::default()).unwrap().unwrap();
        assert!(c.admit_rw(&TxnOptions::default()).is_err());
        let hint = c.retry_after();
        assert!(hint > Duration::ZERO && hint <= Duration::from_millis(100));
        // 10 tokens/s: 100ms buys one back
        clock.advance(Duration::from_millis(100));
        let _c3 = c.admit_rw(&TxnOptions::default()).unwrap().unwrap();
        assert!(c.admit_rw(&TxnOptions::default()).is_err());
    }

    #[test]
    fn aimd_halves_on_misses_and_recovers_additively() {
        let mut cfg = PressureConfig::enabled().with_concurrency(2, 16);
        cfg.aimd_window = 4;
        cfg.aimd_miss_threshold = 0.5;
        let (c, _) = ctrl(cfg);
        assert_eq!(c.concurrency_limit(), 16);
        // one window of pure misses → halved
        for _ in 0..4 {
            let p = c.admit_rw(&TxnOptions::default()).unwrap().unwrap();
            drop(p); // default outcome = Aborted
        }
        assert_eq!(c.concurrency_limit(), 8);
        // one healthy window → +1
        for _ in 0..4 {
            let mut p = c.admit_rw(&TxnOptions::default()).unwrap().unwrap();
            p.set_outcome(TxnOutcome::Committed);
            drop(p);
        }
        assert_eq!(c.concurrency_limit(), 9);
    }

    #[test]
    fn ladder_climbs_fast_descends_with_hysteresis() {
        let cfg = PressureConfig::enabled().with_byte_watermarks(1_000, 10_000);
        let (c, _) = ctrl(cfg);
        assert_eq!(c.level(), PressureLevel::Normal);
        c.observe(10_000, 0);
        assert_eq!(c.level(), PressureLevel::Throttle);
        c.observe(20_000, 0);
        assert_eq!(c.level(), PressureLevel::RejectRo);
        // between low and high: hold (hysteresis)
        c.observe(5_000, 0);
        assert_eq!(c.level(), PressureLevel::RejectRo);
        // below low: one rung per observation
        c.observe(500, 0);
        assert_eq!(c.level(), PressureLevel::Shed);
        c.observe(500, 0);
        assert_eq!(c.level(), PressureLevel::Throttle);
        c.observe(500, 0);
        assert_eq!(c.level(), PressureLevel::Normal);
        c.observe(500, 0);
        assert_eq!(c.level(), PressureLevel::Normal);
    }

    #[test]
    fn shed_level_refuses_lowest_weight_tenants() {
        let cfg = PressureConfig::enabled()
            .with_byte_watermarks(100, 1_000)
            .with_tenant_weight(TenantId(1), 4)
            .with_tenant_weight(TenantId(2), 1);
        let (c, _) = ctrl(cfg);
        c.observe(1_500, 0); // straight to Shed
        assert_eq!(c.level(), PressureLevel::Shed);
        let heavy = TxnOptions::default().with_tenant(TenantId(1));
        let light = TxnOptions::default().with_tenant(TenantId(2));
        assert!(c.admit_rw(&heavy).unwrap().is_some());
        assert_eq!(
            c.admit_rw(&light).unwrap_err(),
            DbError::Aborted(AbortReason::Shed)
        );
        // RO still admitted below RejectRo
        c.admit_ro(&light).unwrap();
        c.observe(2_500, 0);
        assert_eq!(
            c.admit_ro(&light).unwrap_err(),
            DbError::Aborted(AbortReason::MemoryPressure)
        );
    }

    #[test]
    fn throttle_enforces_weighted_quota() {
        let cfg = PressureConfig::enabled()
            .with_concurrency(4, 8)
            .with_byte_watermarks(100, 1_000)
            .with_tenant_weight(TenantId(1), 3)
            .with_tenant_weight(TenantId(2), 1);
        let (c, _) = ctrl(cfg);
        c.observe(1_000, 0);
        assert_eq!(c.level(), PressureLevel::Throttle);
        // total weight 4, limit 8 → tenant 2's share = 2
        let light = TxnOptions::default().with_tenant(TenantId(2));
        let _a = c.admit_rw(&light).unwrap().unwrap();
        let _b = c.admit_rw(&light).unwrap().unwrap();
        assert!(c.admit_rw(&light).is_err(), "over quota");
        let heavy = TxnOptions::default().with_tenant(TenantId(1));
        for _ in 0..4 {
            // tenant 1's share = 6; plenty left
            let p = c.admit_rw(&heavy).unwrap().unwrap();
            std::mem::forget(p); // hold the slot for the test's duration
        }
    }

    #[test]
    fn deadline_arithmetic_on_sim_clock() {
        let clock = SimClock::new();
        let d = Deadline::within(clock.as_ref(), Duration::from_millis(10));
        assert!(!d.expired(clock.as_ref()));
        assert_eq!(
            d.bound(clock.as_ref(), Duration::from_secs(1)),
            Duration::from_millis(10)
        );
        clock.advance(Duration::from_millis(4));
        assert_eq!(d.remaining(clock.as_ref()), Duration::from_millis(6));
        assert_eq!(
            d.bound(clock.as_ref(), Duration::from_millis(2)),
            Duration::from_millis(2)
        );
        clock.advance(Duration::from_millis(7));
        assert!(d.expired(clock.as_ref()));
        assert_eq!(
            d.bound(clock.as_ref(), Duration::from_secs(1)),
            Duration::ZERO
        );
    }

    #[test]
    fn zero_budget_refused_as_deadline_exceeded() {
        let (c, _) = ctrl(PressureConfig::enabled());
        let opts = TxnOptions::default().with_deadline(Duration::ZERO);
        assert_eq!(
            c.admit_rw(&opts).unwrap_err(),
            DbError::Aborted(AbortReason::DeadlineExceeded)
        );
    }
}
