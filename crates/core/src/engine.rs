//! The driver-facing engine abstraction.
//!
//! The workload driver (`mvcc-workload`) and the experiment harness need
//! to run the *same* transaction scripts against this paper's engine and
//! against every baseline protocol. [`Engine`] is that common surface:
//! declarative operation lists in, outcome summaries out.

use crate::cc_api::ConcurrencyControl;
use crate::db::MvDatabase;
use crate::error::DbError;
use crate::fault::FaultPoint;
use crate::metrics::MetricsSnapshot;
use crate::obs::{GaugeSample, PhaseSnapshot};
use mvcc_model::ObjectId;
use mvcc_storage::{StoreStats, Value};

/// One operation of a read-write transaction script.
#[derive(Debug, Clone)]
pub enum OpSpec {
    /// Read an object.
    Read(ObjectId),
    /// Write a value to an object.
    Write(ObjectId, Value),
    /// Read an object, add a delta, write it back (the classic
    /// increment; exercises read-modify-write conflicts).
    Increment(ObjectId, u64),
}

/// One read performed by a read-only transaction.
#[derive(Debug, Clone, PartialEq)]
pub struct RoRead {
    /// The object read.
    pub obj: ObjectId,
    /// The version number returned (= creator's transaction number).
    pub version: u64,
    /// The value returned.
    pub value: Value,
}

impl RoRead {
    /// Construct (convenience for engines and tests).
    pub fn new(obj: ObjectId, version: u64, value: Value) -> Self {
        RoRead {
            obj,
            version,
            value,
        }
    }
}

/// Outcome of a completed read-only transaction.
#[derive(Debug, Clone, Default)]
pub struct RoOutcome {
    /// The start number used.
    pub sn: u64,
    /// Every read, in order.
    pub reads: Vec<RoRead>,
    /// Visibility lag observed at begin (`(tnc − 1) − sn`): how many
    /// assigned transactions the snapshot cannot see. Experiment E8.
    pub lag_at_start: u64,
}

/// Outcome of a committed read-write transaction.
#[derive(Debug, Clone, Default)]
pub struct RwOutcome {
    /// The transaction number assigned at the serialization point.
    pub tn: u64,
}

/// A database engine that can execute transaction scripts.
///
/// Implemented by [`MvDatabase`] (the paper's design, for every protocol
/// in `mvcc-cc`) and by each baseline in `mvcc-baselines`.
pub trait Engine: Send + Sync {
    /// Engine name for reports (protocol included).
    fn name(&self) -> String;

    /// Execute one read-only transaction reading `keys` in order.
    /// A single attempt; the paper's engine never fails here except for
    /// GC-pruned versions, but baselines may block or abort.
    fn run_read_only(&self, keys: &[ObjectId]) -> Result<RoOutcome, DbError>;

    /// Execute one read-write transaction performing `ops` in order.
    /// A single attempt: on a retryable abort the caller decides whether
    /// to retry.
    fn run_read_write(&self, ops: &[OpSpec]) -> Result<RwOutcome, DbError>;

    /// Load an initial value (version 0).
    fn seed(&self, obj: ObjectId, value: Value);

    /// Counter snapshot.
    fn metrics(&self) -> MetricsSnapshot;

    /// Zero the counters.
    fn reset_metrics(&self);

    /// Storage statistics.
    fn store_stats(&self) -> StoreStats;

    /// Optional background maintenance (GC pass); default no-op.
    fn maintenance(&self) {}

    /// One gauge sample over the engine's internals, for exporters and
    /// the periodic reporter. `None` for engines without gauges
    /// (baselines); the paper's engine overrides this.
    fn sample_gauges(&self) -> Option<GaugeSample> {
        None
    }

    /// Snapshot of the per-phase latency histograms, if the engine keeps
    /// them. `None` for baselines.
    fn phase_latencies(&self) -> Option<PhaseSnapshot> {
        None
    }
}

impl<C: ConcurrencyControl> Engine for MvDatabase<C> {
    fn name(&self) -> String {
        format!("vc+{}", self.cc().name())
    }

    fn run_read_only(&self, keys: &[ObjectId]) -> Result<RoOutcome, DbError> {
        // Lag is sampled before the snapshot is taken; both are cheap.
        let lag_at_start = self.vc().lag();
        let mut txn = self.begin_read_only();
        let mut out = RoOutcome {
            sn: txn.sn(),
            reads: Vec::with_capacity(keys.len()),
            lag_at_start,
        };
        for &k in keys {
            let (version, value) = txn.read_versioned(k)?;
            out.reads.push(RoRead::new(k, version, value));
        }
        txn.finish();
        Ok(out)
    }

    fn run_read_write(&self, ops: &[OpSpec]) -> Result<RwOutcome, DbError> {
        let faults = self.faults();
        let mut txn = self.begin_read_write()?;
        // Fault: the client hangs right after begin and never returns.
        // Under timestamp ordering the transaction has already registered,
        // so its Active entry pins vtnc until the stall reaper fires.
        if faults.fire(FaultPoint::StallAfterRegister) {
            txn.stall();
            return Err(DbError::Internal(
                "fault: client stalled after begin".into(),
            ));
        }
        for op in ops {
            match op {
                OpSpec::Read(k) => {
                    txn.read(*k)?;
                }
                OpSpec::Write(k, v) => txn.write(*k, v.clone())?,
                OpSpec::Increment(k, delta) => {
                    let cur = txn.read_for_update(*k)?.as_u64().unwrap_or(0);
                    txn.write(*k, Value::from_u64(cur.wrapping_add(*delta)))?;
                }
            }
        }
        // Fault: the client dies at commit entry. Its pendings and locks
        // leak until the wait timeouts reclaim them; under 2PL/OCC it has
        // not yet registered, so the VC queue is untouched (modularity:
        // client crashes cost availability only where the protocol's
        // registration point exposes them).
        if faults.fire(FaultPoint::CrashBeforeComplete) {
            txn.stall();
            return Err(DbError::Internal("fault: client crashed at commit".into()));
        }
        let tn = txn.commit()?;
        Ok(RwOutcome { tn })
    }

    fn seed(&self, obj: ObjectId, value: Value) {
        MvDatabase::seed(self, obj, value);
    }

    fn metrics(&self) -> MetricsSnapshot {
        MvDatabase::metrics(self)
    }

    fn reset_metrics(&self) {
        MvDatabase::reset_metrics(self);
    }

    fn store_stats(&self) -> StoreStats {
        MvDatabase::store_stats(self)
    }

    fn maintenance(&self) {
        self.reap_stalled();
        self.collect_garbage();
    }

    fn sample_gauges(&self) -> Option<GaugeSample> {
        Some(MvDatabase::sample_gauges(self))
    }

    fn phase_latencies(&self) -> Option<PhaseSnapshot> {
        Some(MvDatabase::phase_latencies(self))
    }
}
