//! The paper's primary contribution: a **version control mechanism**
//! decoupled from concurrency control, plus the engine that composes the
//! two over multiversion storage.
//!
//! *Modular Synchronization in Multiversion Databases: Version Control and
//! Concurrency Control* (Sen Gupta & Agrawal, 1989) observes that
//! multiversion protocols entangle two concerns — ordering read-write
//! transactions (concurrency control) and exposing consistent snapshots to
//! read-only transactions (version control) — and shows they can be
//! separated behind a four-procedure interface (paper Figure 1):
//!
//! * [`VersionControl::start`] (`VCstart`) — a read-only transaction's
//!   single synchronization action: read the *visible transaction number
//!   counter* `vtnc`.
//! * [`VersionControl::register`] (`VCregister`) — called by a read-write
//!   transaction at the moment its serial order is known; assigns its
//!   transaction number from `tnc` and enqueues it.
//! * [`VersionControl::discard`] (`VCdiscard`) — abort path.
//! * [`VersionControl::complete`] (`VCcomplete`) — commit path; advances
//!   `vtnc` once every older registered transaction has completed.
//!
//! Module map:
//!
//! * [`vc`], [`vcqueue`] — Figure 1, verbatim semantics, thread-safe.
//! * [`cc_api`] — the [`ConcurrencyControl`]
//!   trait: the uniform interface any conflict-based protocol implements
//!   (two-phase locking, timestamp ordering, optimistic — see `mvcc-cc`).
//! * [`db`], [`txn`] — the [`MvDatabase`] engine and
//!   transaction handles; the read-only path is Figure 2 and never touches
//!   the concurrency-control object.
//! * [`currency`] — Section 6 rectifications for delayed visibility
//!   (wait-for-visibility, monotonic sessions, pseudo-read-write).
//! * [`trace`] — execution tracing into `mvcc-model` histories for the
//!   serializability oracle.
//! * [`engine`] — the driver-facing [`Engine`] trait
//!   implemented by this engine and by every baseline.
//! * [`error`], [`config`], [`metrics`] — support types.

#![warn(missing_docs)]
#![deny(unsafe_code)]

pub mod cc_api;
pub mod clock;
pub mod config;
pub mod currency;
pub mod db;
pub mod durability;
pub mod engine;
pub mod error;
pub mod fault;
pub mod metrics;
pub mod obs;
pub mod pressure;
pub mod retry;
pub mod trace;
pub mod txn;
pub mod vc;
mod vc_dec;
pub mod vcqueue;

pub use cc_api::{CcContext, ConcurrencyControl};
pub use clock::{Clock, RealClock, SharedClock, SharedRng, SimClock, SimRng, SplitMixRng};
pub use config::DbConfig;
pub use currency::{CurrencyMode, Session};
pub use db::{MvDatabase, ReaperHandle};
pub use durability::{CheckpointSink, CommitLog, RecoveryStats};
pub use engine::{Engine, OpSpec, RoOutcome, RoRead, RwOutcome};
pub use error::{AbortReason, DbError};
pub use fault::{FaultConfig, FaultInjector, FaultPoint, FaultyFile};
pub use metrics::{Metrics, MetricsSnapshot};
pub use mvcc_storage::wal::FsyncPolicy;
pub use obs::{
    Attribution, DumpContext, EventKind, FlightTrigger, GaugeCollector, GaugeSample, Obs,
    ObsConfig, PhaseSnapshot, TxnPhase, VcView, WaitPoint,
};
pub use pressure::{
    AdmissionController, AdmissionPermit, Deadline, PressureConfig, PressureLevel, TenantId,
    TxnOptions, TxnOutcome,
};
pub use retry::RetryPolicy;
pub use trace::Tracer;
pub use txn::{RoTxn, RwTxn};
pub use vc::{VcStats, VersionControl};

/// Commonly used items, re-exported for examples and downstream users.
pub mod prelude {
    pub use crate::cc_api::{CcContext, ConcurrencyControl};
    pub use crate::clock::{Clock, RealClock, SimClock, SimRng, SplitMixRng};
    pub use crate::config::DbConfig;
    pub use crate::currency::{CurrencyMode, Session};
    pub use crate::db::MvDatabase;
    pub use crate::durability::{CheckpointSink, RecoveryStats};
    pub use crate::engine::{Engine, OpSpec, RoOutcome, RoRead, RwOutcome};
    pub use crate::error::{AbortReason, DbError};
    pub use crate::pressure::{Deadline, PressureConfig, PressureLevel, TenantId, TxnOptions};
    pub use crate::txn::{RoTxn, RwTxn};
    pub use crate::vc::VersionControl;
    pub use mvcc_model::{ObjectId, TxnId};
    pub use mvcc_storage::wal::{FsyncPolicy, MemWal};
    pub use mvcc_storage::{MvStore, Value};
}
