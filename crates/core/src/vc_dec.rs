//! The decentralized version-control sequencer (DESIGN.md §15).
//!
//! Replaces the centralized `tnc`-mutex + `VCQueue` with three
//! decentralized mechanisms:
//!
//! 1. **Per-thread transaction-number blocks.** A single shared
//!    `fetch_add` on a *block* counter hands each thread a range of
//!    `vc_block_tns` consecutive numbers; individual draws inside the
//!    block are thread-local. Number order therefore no longer embeds
//!    real-time order — protocols pass their **conflict floor** to
//!    [`DecentralVc::register_after`] and the drawer first tries an
//!    *adjacent steal* of `floor + 1` (keeping the watermark gap-free on
//!    conflict chains) before falling back to its own block.
//! 2. **Lock-free register/complete.** Every number has a dedicated
//!    entry (one state byte + two stamp words); registration, the commit
//!    claim, completion, discard, and the reaper are all single CAS
//!    transitions on that entry. Per-thread padded [`Slot`]s publish
//!    `last_assigned` and an in-flight count, mirroring the
//!    `obs::buffer` TLS registry pattern.
//! 3. **Scan-based `vtnc` watermark.** Instead of mutating a shared
//!    queue, the completing thread (amortized once per `vc_epoch_ops`
//!    completions) *folds*: it scans entry states upward from `vtnc`
//!    and publishes the largest contiguously-finished prefix with one
//!    `Release` store. `VCstart` stays a single atomic load.
//!
//! Gaps — numbers carved into a block but never drawn — are the one new
//! hazard: a FREE entry below an assigned number would pin `vtnc`
//! forever. Four reclaim paths bound that: (a) a retiring thread marks
//! its block tail *abandoned* (TLS destructor), and the walk expires
//! abandoned entries on contact (a CAS, so a racing adjacent steal
//! loses cleanly instead of activating a watermarked number); (b) when
//! **no** transaction is in
//! flight the walk may expire any FREE entry (nothing can legally draw
//! a number below an already-assigned one except through a floor, and
//! floors below `vtnc` are refused); (c) a whole-block claim deadline
//! (the registration TTL) lets the walk expire gaps of a crashed owner;
//! (d) `vc_gap_grace` consecutive stalled scans expire a gap even while
//! other transactions run — the grace is counted in scans, not time, so
//! simulated runs stay deterministic. Draws CAS `FREE → ACTIVE` and so
//! lose cleanly to any concurrent expiry.

use crate::clock::SharedClock;
use crate::obs::{
    DumpContext, EventKind, FlightTrigger, Obs, VcThreadPoint, VcView, VcWaitPointMap, WaitPoint,
};
use crate::vc::{wait_visible_with, VcStats};
use parking_lot::{Condvar, Mutex, RwLock};
use std::cell::RefCell;
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicBool, AtomicU32, AtomicU64, AtomicU8, Ordering};
use std::sync::{Arc, OnceLock, Weak};
use std::time::{Duration, Instant};

// Entry states. FREE is 0 so freshly allocated blocks need no stores.
const FREE: u8 = 0;
const ACTIVE: u8 = 1;
const COMMITTING: u8 = 2;
const COMPLETE: u8 = 3;
const DISCARDED: u8 = 4;
/// Reclaimed gap: the number was carved into a block but expired before
/// anyone drew it. Terminal, like COMPLETE/DISCARDED.
const EXPIRED: u8 = 5;

/// `abandoned_from` sentinel: no abandonment.
const NO_ABANDON: u32 = u32::MAX;

/// Per-number lifecycle record. Stamps are nanosecond offsets from the
/// sequencer's lazily-anchored epoch, `+1` so `0` means "absent"; only
/// the drawer that *wins* the `FREE → ACTIVE` CAS writes them (a loser
/// must never touch the stamps — its values could differ, e.g. a
/// `deadline` of 0 after a racing `set_register_ttl(None)`, which would
/// permanently hide the winner's ACTIVE entry from the TTL reaper).
/// Readers tolerate the transient pre-store `0` through their existing
/// `!= 0` guards: the reaper skips the entry until the next pass and
/// the phase histogram/`head_age` drop the sample.
#[derive(Default)]
struct Entry {
    state: AtomicU8,
    /// Reaper deadline stamp (`0` = no TTL at registration time).
    deadline: AtomicU64,
    /// Registration stamp for the register→complete phase histogram and
    /// `head_age` (`0` = not sampled).
    registered_at: AtomicU64,
}

impl Entry {
    /// `ACTIVE | COMMITTING → to`; fails on FREE or any terminal state.
    fn finish(&self, to: u8) -> bool {
        let mut cur = self.state.load(Ordering::Acquire);
        loop {
            if cur != ACTIVE && cur != COMMITTING {
                return false;
            }
            match self
                .state
                .compare_exchange(cur, to, Ordering::AcqRel, Ordering::Acquire)
            {
                Ok(_) => return true,
                Err(c) => cur = c,
            }
        }
    }
}

/// One contiguous range of `block_tns` numbers, `[first, first + N)`.
struct Block {
    first: u64,
    /// The slot of the thread that carved this block (in-flight counts
    /// are kept on the *block owner's* slot so a steal and its
    /// completion balance the same counter).
    owner: Arc<Slot>,
    /// Whole-block TTL stamp: set at creation and refreshed on every
    /// draw when a registration TTL is configured. Lets the watermark
    /// walk expire never-drawn gaps of an owner that stopped making
    /// progress (the "crashed block owner" reaper path). `0` = no TTL.
    claim_deadline: AtomicU64,
    /// First entry index of the abandoned tail (owner retired or moved
    /// on with numbers ≤ a floor). Entries at or past this index are
    /// refused by stealers and expired by the walk on contact.
    abandoned_from: AtomicU32,
    entries: Box<[Entry]>,
}

/// Padded per-thread publication record — the decentralized stand-in
/// for "what is registered". Never removed from the registry: `cap`
/// (the high-water mark standing in for `tnc`) must stay monotone after
/// a thread exits.
#[repr(align(128))]
struct Slot {
    /// Highest number this thread has drawn (anywhere, steals included).
    last_assigned: AtomicU64,
    /// Draws minus terminal transitions, counted on the *block owner's*
    /// slot. The walk may reclaim gaps freely when the global sum is 0.
    inflight: AtomicU64,
    /// Set by the TLS destructor: the owning thread is gone, its gaps
    /// may be reclaimed immediately.
    retired: AtomicBool,
}

impl Slot {
    fn new(base: u64) -> Self {
        Slot {
            last_assigned: AtomicU64::new(base),
            inflight: AtomicU64::new(0),
            retired: AtomicBool::new(false),
        }
    }
}

/// Watermark-walk persistent state, guarded by the `advance` mutex.
struct WalkState {
    /// The gap the last walk stopped at (`0` = none).
    gap_tn: u64,
    /// Consecutive walks that stopped at exactly `gap_tn`.
    gap_reps: u64,
}

struct DecShared {
    /// Registry identity for the TLS cache (instance-unique).
    id: u64,
    /// Resume point: every number `≤ base` is complete by definition.
    base: u64,
    block_tns: u64,
    epoch_ops: u64,
    gap_grace: u64,
    /// Registration TTL in ns (`0` = reaper disabled).
    ttl_ns: AtomicU64,
    /// Next block index — THE one shared allocation `fetch_add`.
    next_block: AtomicU64,
    blocks: RwLock<BTreeMap<u64, Arc<Block>>>,
    slots: Mutex<Vec<Arc<Slot>>>,
    /// Highest number handed out through the *ordered* plain
    /// [`DecentralVc::register`] path; chained as an implicit floor so
    /// successive plain registrations stay monotone in real time.
    issue_tail: AtomicU64,
    vtnc: AtomicU64,
    /// The tn the last completed walk stopped at (`0` = none) — the
    /// decentral analog of the queue head. Written only under `advance`.
    blocker: AtomicU64,
    /// Set (SeqCst) after every state transition, cleared (SeqCst) at
    /// the top of every walk. The SeqCst pairing with `inflight`
    /// guarantees the globally-last fold observes every decrement: a
    /// completer decrements, *then* sets dirty; a folder clears dirty,
    /// *then* reads the slots.
    dirty: AtomicBool,
    advance: Mutex<WalkState>,
    epoch_folds: AtomicU64,
    blocks_allocated: AtomicU64,
    scan_ns: AtomicU64,
    visible_cv: Condvar,
    visible_mu: Mutex<()>,
    obs: OnceLock<Arc<Obs>>,
    clock: OnceLock<SharedClock>,
    /// Stamp anchor, initialized from the attached clock on first use.
    anchor: OnceLock<Instant>,
}

/// One thread's cached handle into one sequencer instance.
struct TlsVc {
    id: u64,
    shared: Weak<DecShared>,
    slot: Arc<Slot>,
    /// Current block and draw cursor (next entry index to try).
    block: Option<(Arc<Block>, u32)>,
    /// Completions since the last epoch fold by this thread.
    ops: u64,
}

impl Drop for TlsVc {
    fn drop(&mut self) {
        self.slot.retired.store(true, Ordering::SeqCst);
        if let Some((b, cursor)) = self.block.take() {
            b.abandoned_from.store(cursor, Ordering::SeqCst);
        }
        if let Some(sh) = self.shared.upgrade() {
            sh.dirty.store(true, Ordering::SeqCst);
            sh.fold();
        }
    }
}

thread_local! {
    static SEQS: RefCell<Vec<TlsVc>> = const { RefCell::new(Vec::new()) };
}

/// Find (or register) this thread's handle for `shared`, pruning
/// handles of dropped sequencers along the way.
fn with_tls<R>(shared: &Arc<DecShared>, f: impl FnOnce(&DecShared, &mut TlsVc) -> R) -> R {
    SEQS.with(|cell| {
        let mut v = cell.borrow_mut();
        v.retain(|t| t.shared.strong_count() > 0);
        let idx = match v.iter().position(|t| t.id == shared.id) {
            Some(i) => i,
            None => {
                let slot = Arc::new(Slot::new(shared.base));
                shared.slots.lock().push(Arc::clone(&slot));
                v.push(TlsVc {
                    id: shared.id,
                    shared: Arc::downgrade(shared),
                    slot,
                    block: None,
                    ops: 0,
                });
                v.len() - 1
            }
        };
        f(shared, &mut v[idx])
    })
}

impl DecShared {
    #[inline]
    fn obs_on(&self) -> Option<&Obs> {
        match self.obs.get() {
            Some(o) if o.on() => Some(o),
            _ => None,
        }
    }

    #[inline]
    fn now(&self) -> Instant {
        match self.clock.get() {
            Some(c) => c.now(),
            None => Instant::now(),
        }
    }

    #[inline]
    fn stamp_at(&self, t: Instant) -> u64 {
        let anchor = *self.anchor.get_or_init(|| t);
        t.saturating_duration_since(anchor).as_nanos() as u64 + 1
    }

    #[inline]
    fn stamp_now(&self) -> u64 {
        self.stamp_at(self.now())
    }

    /// Locate the block covering `tn`, trying the thread's own block
    /// before the shared map.
    fn block_of(&self, tls: &TlsVc, tn: u64) -> Option<Arc<Block>> {
        if let Some((b, _)) = &tls.block {
            if tn >= b.first && tn < b.first + self.block_tns {
                return Some(Arc::clone(b));
            }
        }
        self.find_block(tn)
    }

    fn find_block(&self, tn: u64) -> Option<Arc<Block>> {
        if tn <= self.base {
            return None;
        }
        let idx = (tn - self.base - 1) / self.block_tns;
        self.blocks.read().get(&idx).cloned()
    }

    /// Carve the next block out of the number space.
    fn claim_block(&self, tls: &TlsVc, claim_deadline: u64) -> Arc<Block> {
        let idx = self.next_block.fetch_add(1, Ordering::SeqCst);
        let first = idx
            .checked_mul(self.block_tns)
            .and_then(|o| o.checked_add(self.base))
            .and_then(|o| o.checked_add(1))
            .expect("transaction number space exhausted");
        // `u64::MAX` is reserved (floors saturate there).
        assert!(
            first
                .checked_add(self.block_tns - 1)
                .is_some_and(|last| last < u64::MAX),
            "transaction number space exhausted"
        );
        let entries: Box<[Entry]> = (0..self.block_tns).map(|_| Entry::default()).collect();
        let block = Arc::new(Block {
            first,
            owner: Arc::clone(&tls.slot),
            claim_deadline: AtomicU64::new(claim_deadline),
            abandoned_from: AtomicU32::new(NO_ABANDON),
            entries,
        });
        self.blocks.write().insert(idx, Arc::clone(&block));
        self.blocks_allocated.fetch_add(1, Ordering::Relaxed);
        block
    }

    /// Draw a number `> floor` (and `> vtnc`), stamping and activating
    /// its entry.
    fn draw(&self, tls: &mut TlsVc, floor: u64, want_stamp: bool) -> u64 {
        let ttl = self.ttl_ns.load(Ordering::Relaxed);
        let now_stamp = if ttl != 0 || want_stamp {
            self.stamp_now()
        } else {
            0
        };
        let deadline = if ttl != 0 {
            now_stamp.saturating_add(ttl)
        } else {
            0
        };
        let reg = if want_stamp { now_stamp } else { 0 };

        // Adjacent steal first: `floor + 1` extends the conflict chain
        // with no gap, so watermark progress on hot objects never waits
        // on grace. Refused past an abandoned tail (the walk may already
        // have treated those entries as terminal) and at/below `vtnc`.
        if floor > 0 && floor < u64::MAX {
            let target = floor + 1;
            if target > self.vtnc.load(Ordering::Acquire) {
                if let Some(b) = self.block_of(tls, target) {
                    let eidx = (target - b.first) as usize;
                    let e = &b.entries[eidx];
                    if (eidx as u32) < b.abandoned_from.load(Ordering::SeqCst)
                        && e.state.load(Ordering::Acquire) == FREE
                        && e.state
                            .compare_exchange(FREE, ACTIVE, Ordering::AcqRel, Ordering::Relaxed)
                            .is_ok()
                    {
                        e.deadline.store(deadline, Ordering::Relaxed);
                        e.registered_at.store(reg, Ordering::Relaxed);
                        if ttl != 0 {
                            b.claim_deadline.store(deadline, Ordering::Relaxed);
                        }
                        b.owner.inflight.fetch_add(1, Ordering::SeqCst);
                        tls.slot.last_assigned.fetch_max(target, Ordering::SeqCst);
                        return target;
                    }
                }
            }
        }

        // Own-block cursor path.
        loop {
            if tls.block.is_none() {
                tls.block = Some((self.claim_block(tls, deadline), 0));
            }
            let (block, cursor) = tls.block.as_mut().expect("block just ensured");
            if u64::from(*cursor) >= self.block_tns {
                tls.block = None;
                continue;
            }
            let tn = block.first + u64::from(*cursor);
            if tn <= floor {
                if block.first + self.block_tns - 1 <= floor {
                    // Every remaining number is below the floor: abandon
                    // the tail so the walk can pass it, take a fresh
                    // block (whose `first` is necessarily > floor, since
                    // floor's own block was carved earlier).
                    block.abandoned_from.store(*cursor, Ordering::SeqCst);
                    tls.block = None;
                    self.dirty.store(true, Ordering::SeqCst);
                    continue;
                }
                // Floor sits inside the block: retire this number only.
                let _ = block.entries[*cursor as usize].state.compare_exchange(
                    FREE,
                    EXPIRED,
                    Ordering::AcqRel,
                    Ordering::Relaxed,
                );
                *cursor += 1;
                self.dirty.store(true, Ordering::SeqCst);
                continue;
            }
            let e = &block.entries[*cursor as usize];
            let won = e
                .state
                .compare_exchange(FREE, ACTIVE, Ordering::AcqRel, Ordering::Relaxed)
                .is_ok();
            *cursor += 1;
            if won {
                e.deadline.store(deadline, Ordering::Relaxed);
                e.registered_at.store(reg, Ordering::Relaxed);
                if ttl != 0 {
                    block.claim_deadline.store(deadline, Ordering::Relaxed);
                }
                block.owner.inflight.fetch_add(1, Ordering::SeqCst);
                tls.slot.last_assigned.fetch_max(tn, Ordering::SeqCst);
                return tn;
            }
            // Lost the entry to an expiry — try the next number.
        }
    }

    /// High-water mark over every slot: the decentral stand-in for
    /// "last assigned number" (`tnc − 1`).
    fn cap(&self) -> u64 {
        let slots = self.slots.lock();
        let mut cap = self.base;
        for s in slots.iter() {
            cap = cap.max(s.last_assigned.load(Ordering::SeqCst));
        }
        cap
    }

    fn queue_len(&self) -> usize {
        let slots = self.slots.lock();
        slots
            .iter()
            .map(|s| s.inflight.load(Ordering::SeqCst))
            .sum::<u64>() as usize
    }

    /// The epoch fold: run watermark walks until the dirty flag stays
    /// clear. Non-blocking — if another thread holds the advance lock,
    /// *it* will observe our dirty flag (re-checked after its walk, and
    /// again here after the unlock) and re-walk on our behalf.
    ///
    /// Walks are bounded *per lock hold*: under sustained completion
    /// churn the dirty flag can be re-set faster than one walk clears
    /// it, and an unbounded re-walk would pin the folding thread's
    /// `complete()`/`discard()` under the advance lock indefinitely.
    /// After [`MAX_WALKS_PER_HOLD`] passes the lock is released (and
    /// waiters notified) before the post-unlock dirty recheck decides
    /// whether to re-acquire — giving concurrent folders a window to
    /// take over the residue, and this call an exit the moment one does.
    fn fold(&self) {
        /// Walk passes per advance-lock hold before releasing.
        const MAX_WALKS_PER_HOLD: u32 = 3;
        let mut advanced_from: Option<u64> = None;
        loop {
            {
                let Some(mut st) = self.advance.try_lock() else {
                    return;
                };
                for _ in 0..MAX_WALKS_PER_HOLD {
                    self.dirty.store(false, Ordering::SeqCst);
                    if let Some(before) = self.sweep(&mut st) {
                        advanced_from.get_or_insert(before);
                    }
                    self.epoch_folds.fetch_add(1, Ordering::Relaxed);
                    if !self.dirty.load(Ordering::SeqCst) {
                        break;
                    }
                }
            }
            if let Some(_before) = advanced_from.take() {
                let _waiters = self.visible_mu.lock();
                self.visible_cv.notify_all();
            }
            // A transition that landed between our last walk and the
            // unlock would otherwise be folded by nobody.
            if !self.dirty.load(Ordering::SeqCst) {
                return;
            }
        }
    }

    /// One watermark walk. Returns the pre-walk `vtnc` if it advanced.
    fn sweep(&self, st: &mut WalkState) -> Option<u64> {
        let t0 = self.now();
        let now_stamp = self.stamp_at(t0);
        let (cap, quiet) = {
            let slots = self.slots.lock();
            let mut cap = self.base;
            let mut inflight = 0u64;
            for s in slots.iter() {
                cap = cap.max(s.last_assigned.load(Ordering::SeqCst));
                inflight += s.inflight.load(Ordering::SeqCst);
            }
            (cap, inflight == 0)
        };
        let vtnc0 = self.vtnc.load(Ordering::Acquire);
        let mut v = vtnc0;
        // The walk may pass any terminal entry, but `vtnc` is only ever
        // published at a *completed* number — the centralized queue has
        // the same property (it drains completed heads and merely
        // removes discarded ones), and landing `vtnc` on an aborted
        // number would be observable noise for snapshots and GC.
        let mut publish = vtnc0;
        let mut blocker = 0u64;
        {
            let blocks = self.blocks.read();
            'walk: while v < cap {
                let tn = v + 1;
                let idx = (tn - self.base - 1) / self.block_tns;
                let Some(block) = blocks.get(&idx) else {
                    // Block pruned or (transiently) not yet published —
                    // stop conservatively.
                    blocker = tn;
                    st.gap_tn = 0;
                    st.gap_reps = 0;
                    break 'walk;
                };
                let eidx = (tn - block.first) as usize;
                loop {
                    match block.entries[eidx].state.load(Ordering::Acquire) {
                        COMPLETE => {
                            v = tn;
                            publish = tn;
                            break;
                        }
                        DISCARDED | EXPIRED => {
                            v = tn;
                            break;
                        }
                        ACTIVE | COMMITTING => {
                            blocker = tn;
                            st.gap_tn = 0;
                            st.gap_reps = 0;
                            break 'walk;
                        }
                        _ => {
                            // FREE: a gap. Abandoned gaps are expired on
                            // the spot — never passed silently: a stealer
                            // that read `abandoned_from` before the owner
                            // abandoned may still be racing for this
                            // entry, and passing it FREE would let its
                            // `FREE → ACTIVE` CAS activate a tn at or
                            // below the vtnc this walk publishes. The CAS
                            // makes exactly one side win: either the
                            // entry expires here (the steal loses its
                            // CAS) or the steal already activated it (we
                            // re-read and stop at ACTIVE).
                            if eidx as u32 >= block.abandoned_from.load(Ordering::SeqCst) {
                                if block.entries[eidx]
                                    .state
                                    .compare_exchange(
                                        FREE,
                                        EXPIRED,
                                        Ordering::AcqRel,
                                        Ordering::Acquire,
                                    )
                                    .is_ok()
                                {
                                    if st.gap_tn == tn {
                                        st.gap_tn = 0;
                                        st.gap_reps = 0;
                                    }
                                    v = tn;
                                    break;
                                }
                                continue; // a stealer won it — re-read
                            }
                            let reps = if st.gap_tn == tn { st.gap_reps + 1 } else { 1 };
                            let cd = block.claim_deadline.load(Ordering::Relaxed);
                            let expire = quiet
                                || block.owner.retired.load(Ordering::SeqCst)
                                || (cd != 0 && cd <= now_stamp)
                                || reps > self.gap_grace;
                            if expire {
                                if block.entries[eidx]
                                    .state
                                    .compare_exchange(
                                        FREE,
                                        EXPIRED,
                                        Ordering::AcqRel,
                                        Ordering::Acquire,
                                    )
                                    .is_ok()
                                {
                                    st.gap_tn = 0;
                                    st.gap_reps = 0;
                                    v = tn;
                                    break;
                                }
                                continue; // someone drew it — re-read
                            }
                            st.gap_tn = tn;
                            st.gap_reps = reps;
                            blocker = tn;
                            break 'walk;
                        }
                    }
                }
            }
        }
        let advanced = publish > vtnc0;
        if advanced {
            self.vtnc.store(publish, Ordering::Release);
        }
        self.blocker.store(blocker, Ordering::Relaxed);
        if advanced {
            // Prune blocks wholly at or below the watermark.
            let mut w = self.blocks.write();
            while let Some((&i, b)) = w.iter().next() {
                if b.first + self.block_tns - 1 <= publish {
                    w.remove(&i);
                } else {
                    break;
                }
            }
        }
        let elapsed = self.now().saturating_duration_since(t0);
        self.scan_ns
            .fetch_add(elapsed.as_nanos() as u64, Ordering::Relaxed);
        // Fold-stall blame: a walk that could not advance and stopped at
        // a pinned tn charges its scan time to that tn (the blocker is
        // also the blocked-on target here — the stall *is* the entry).
        if !advanced && blocker != 0 {
            if let Some(attr) = self.obs.get().and_then(|o| o.attr()) {
                attr.blame().record(
                    WaitPoint::FoldStall,
                    blocker,
                    blocker,
                    elapsed.as_nanos() as u64,
                );
            }
        }
        advanced.then_some(vtnc0)
    }
}

/// The decentralized sequencer — see module docs. Public surface is the
/// [`crate::VersionControl`] facade.
pub(crate) struct DecentralVc {
    shared: Arc<DecShared>,
}

impl DecentralVc {
    pub(crate) fn resumed(vtnc: u64, block_tns: usize, epoch_ops: u64, gap_grace: u64) -> Self {
        static NEXT_ID: AtomicU64 = AtomicU64::new(1);
        let block_tns = block_tns.clamp(1, 1 << 20) as u64;
        DecentralVc {
            shared: Arc::new(DecShared {
                id: NEXT_ID.fetch_add(1, Ordering::Relaxed),
                base: vtnc,
                block_tns,
                epoch_ops: epoch_ops.max(1),
                gap_grace,
                ttl_ns: AtomicU64::new(0),
                next_block: AtomicU64::new(0),
                blocks: RwLock::new(BTreeMap::new()),
                slots: Mutex::new(Vec::new()),
                issue_tail: AtomicU64::new(vtnc),
                vtnc: AtomicU64::new(vtnc),
                blocker: AtomicU64::new(0),
                dirty: AtomicBool::new(false),
                advance: Mutex::new(WalkState {
                    gap_tn: 0,
                    gap_reps: 0,
                }),
                epoch_folds: AtomicU64::new(0),
                blocks_allocated: AtomicU64::new(0),
                scan_ns: AtomicU64::new(0),
                visible_cv: Condvar::new(),
                visible_mu: Mutex::new(()),
                obs: OnceLock::new(),
                clock: OnceLock::new(),
                anchor: OnceLock::new(),
            }),
        }
    }

    pub(crate) fn attach_obs(&self, obs: Arc<Obs>) -> Arc<Obs> {
        self.shared.obs.get_or_init(|| obs).clone()
    }

    pub(crate) fn attach_clock(&self, clock: SharedClock) {
        let _ = self.shared.clock.set(clock);
    }

    pub(crate) fn set_register_ttl(&self, ttl: Option<Duration>) {
        let ns = match ttl {
            // `Some(0)` still arms the reaper: round up to 1 ns.
            Some(d) => (d.as_nanos() as u64).max(1),
            None => 0,
        };
        self.shared.ttl_ns.store(ns, Ordering::Relaxed);
    }

    pub(crate) fn register_ttl(&self) -> Option<Duration> {
        match self.shared.ttl_ns.load(Ordering::Relaxed) {
            0 => None,
            ns => Some(Duration::from_nanos(ns)),
        }
    }

    #[inline]
    pub(crate) fn start(&self) -> u64 {
        self.shared.vtnc.load(Ordering::Acquire)
    }

    /// Ordered registration: chains through the global issue tail so
    /// successive plain `register()` calls observe strictly increasing
    /// numbers in real time (the legacy contract baselines rely on).
    pub(crate) fn register(&self) -> u64 {
        let floor = self.shared.issue_tail.load(Ordering::SeqCst);
        self.register_at_floor(floor)
    }

    pub(crate) fn register_after(&self, floor: u64) -> u64 {
        self.register_at_floor(floor)
    }

    fn register_at_floor(&self, floor: u64) -> u64 {
        let sh = &self.shared;
        let obs = sh.obs_on();
        let stamp = obs.is_some_and(|o| o.phase_sample());
        let tn = with_tls(sh, |sh, tls| sh.draw(tls, floor, stamp));
        sh.issue_tail.fetch_max(tn, Ordering::SeqCst);
        if let Some(o) = obs {
            o.emit(EventKind::Register, tn, 0);
        }
        crate::obs::trace::vc_register(tn);
        tn
    }

    pub(crate) fn start_complete(&self, tn: u64) -> bool {
        let sh = &self.shared;
        sh.find_block(tn).is_some_and(|b| {
            b.entries[(tn - b.first) as usize]
                .state
                .compare_exchange(ACTIVE, COMMITTING, Ordering::AcqRel, Ordering::Relaxed)
                .is_ok()
        })
    }

    pub(crate) fn discard(&self, tn: u64) -> bool {
        let sh = &self.shared;
        let obs = sh.obs_on();
        let vtnc_before = sh.vtnc.load(Ordering::Acquire);
        let removed = sh.find_block(tn).is_some_and(|b| {
            let done = b.entries[(tn - b.first) as usize].finish(DISCARDED);
            if done {
                b.owner.inflight.fetch_sub(1, Ordering::SeqCst);
            }
            done
        });
        if removed {
            sh.dirty.store(true, Ordering::SeqCst);
            // Discards always fold: an abort of the oldest registrant
            // must release visibility immediately (module docs of
            // `crate::vc`).
            sh.fold();
            if let Some(o) = obs {
                let vtnc = sh.vtnc.load(Ordering::Acquire);
                o.emit(EventKind::Discard, tn, vtnc);
                if vtnc > vtnc_before {
                    o.emit(EventKind::VtncAdvance, vtnc, vtnc_before);
                }
                o.tracer().close_vc_any(tn, 1);
            }
        }
        removed
    }

    pub(crate) fn reap(&self) -> Vec<u64> {
        let sh = &self.shared;
        if sh.ttl_ns.load(Ordering::Relaxed) == 0 && sh.blocks.read().is_empty() {
            return Vec::new();
        }
        let now = sh.stamp_now();
        let blocks: Vec<Arc<Block>> = sh.blocks.read().values().cloned().collect();
        let mut reaped = Vec::new();
        for b in &blocks {
            for (i, e) in b.entries.iter().enumerate() {
                let d = e.deadline.load(Ordering::Relaxed);
                if d != 0
                    && d <= now
                    && e.state.load(Ordering::Acquire) == ACTIVE
                    && e.state
                        .compare_exchange(ACTIVE, DISCARDED, Ordering::AcqRel, Ordering::Relaxed)
                        .is_ok()
                {
                    b.owner.inflight.fetch_sub(1, Ordering::SeqCst);
                    reaped.push(b.first + i as u64);
                }
            }
        }
        reaped.sort_unstable();
        if !reaped.is_empty() {
            sh.dirty.store(true, Ordering::SeqCst);
            sh.fold();
            if let Some(o) = sh.obs_on() {
                let vtnc = sh.vtnc.load(Ordering::Acquire);
                o.emit(EventKind::ReaperFire, reaped.len() as u64, vtnc);
                for &tn in &reaped {
                    o.tracer().close_vc_any(tn, 2);
                }
            }
        }
        reaped
    }

    pub(crate) fn complete(&self, tn: u64) -> u64 {
        let sh = &self.shared;
        let obs = sh.obs_on();
        let vtnc_before = sh.vtnc.load(Ordering::Acquire);
        let (found, reg_stamp, do_fold) = with_tls(sh, |sh, tls| {
            let mut found = false;
            let mut reg = 0u64;
            if let Some(b) = sh.block_of(tls, tn) {
                let e = &b.entries[(tn - b.first) as usize];
                if obs.is_some() {
                    reg = e.registered_at.load(Ordering::Relaxed);
                }
                if e.finish(COMPLETE) {
                    b.owner.inflight.fetch_sub(1, Ordering::SeqCst);
                    found = true;
                }
            }
            tls.ops += 1;
            let do_fold = if tls.ops >= sh.epoch_ops {
                tls.ops = 0;
                true
            } else {
                false
            };
            (found, reg, do_fold)
        });
        debug_assert!(found, "VCcomplete for unregistered tn {tn}");
        let _ = found;
        sh.dirty.store(true, Ordering::SeqCst);
        if do_fold {
            sh.fold();
        }
        let vtnc = sh.vtnc.load(Ordering::Acquire);
        if let Some(o) = obs {
            if reg_stamp != 0 {
                o.phases().register_to_complete.record(Duration::from_nanos(
                    sh.stamp_now().saturating_sub(reg_stamp),
                ));
            }
            o.emit(EventKind::Complete, tn, vtnc);
            if vtnc > vtnc_before {
                o.emit(EventKind::VtncAdvance, vtnc, vtnc_before);
            }
            o.tracer().close_vc_any(tn, 0);
        }
        vtnc
    }

    pub(crate) fn vtnc(&self) -> u64 {
        self.shared.vtnc.load(Ordering::Acquire)
    }

    pub(crate) fn tnc(&self) -> u64 {
        self.shared.cap() + 1
    }

    pub(crate) fn lag(&self) -> u64 {
        self.shared
            .cap()
            .saturating_sub(self.shared.vtnc.load(Ordering::Acquire))
    }

    pub(crate) fn queue_len(&self) -> usize {
        self.shared.queue_len()
    }

    pub(crate) fn view(&self) -> VcView {
        let sh = &self.shared;
        let vtnc = sh.vtnc.load(Ordering::Acquire);
        let blocker = sh.blocker.load(Ordering::Relaxed);
        let head_tn = (blocker > vtnc).then_some(blocker);
        let head_age_us = head_tn.and_then(|tn| {
            let b = sh.find_block(tn)?;
            let at = b.entries[(tn - b.first) as usize]
                .registered_at
                .load(Ordering::Relaxed);
            (at != 0).then(|| sh.stamp_now().saturating_sub(at) / 1_000)
        });
        VcView {
            tnc: sh.cap(),
            vtnc,
            queue_depth: sh.queue_len() as u64,
            head_tn,
            head_age_us,
        }
    }

    pub(crate) fn wait_visible(&self, tn: u64, timeout: Duration) -> Option<u64> {
        let sh = &self.shared;
        // Blame instrumentation mirrors the centralized engine: only on
        // waits that will actually block, only with attribution on. The
        // blocker is the tn the last watermark walk stopped at.
        let attr = if sh.vtnc.load(Ordering::Acquire) < tn {
            sh.obs.get().and_then(|o| o.attr().cloned())
        } else {
            None
        };
        let wait = attr
            .as_ref()
            .map(|_| (sh.blocker.load(Ordering::Relaxed), sh.now()));
        let res = wait_visible_with(
            &sh.vtnc,
            &sh.visible_mu,
            &sh.visible_cv,
            sh.clock.get(),
            tn,
            timeout,
        );
        if let (Some(attr), Some((blocker, started))) = (attr, wait) {
            let ns = sh.now().saturating_duration_since(started).as_nanos() as u64;
            attr.blame()
                .record(WaitPoint::VisibilityWait, tn, blocker, ns);
        }
        res
    }

    /// The per-thread wait-point map (see
    /// [`crate::VersionControl::wait_points`]). Thread points come out
    /// in slot-registration order, which is stable for the life of the
    /// sequencer.
    pub(crate) fn wait_points(&self) -> VcWaitPointMap {
        let sh = &self.shared;
        let vtnc = sh.vtnc.load(Ordering::Acquire);
        let blocker = sh.blocker.load(Ordering::Relaxed);
        let threads = sh
            .slots
            .lock()
            .iter()
            .map(|s| VcThreadPoint {
                last_assigned: s.last_assigned.load(Ordering::SeqCst),
                inflight: s.inflight.load(Ordering::SeqCst),
                retired: s.retired.load(Ordering::SeqCst),
            })
            .collect();
        VcWaitPointMap {
            vtnc,
            blocker_tn: (blocker > vtnc).then_some(blocker),
            blocks_live: sh.blocks.read().len() as u64,
            epoch_folds: sh.epoch_folds.load(Ordering::Relaxed),
            watermark_scan_ns: sh.scan_ns.load(Ordering::Relaxed),
            threads,
        }
    }

    pub(crate) fn stats(&self) -> VcStats {
        let sh = &self.shared;
        VcStats {
            epoch_folds: sh.epoch_folds.load(Ordering::Relaxed),
            blocks_allocated: sh.blocks_allocated.load(Ordering::Relaxed),
            watermark_scan_ns: sh.scan_ns.load(Ordering::Relaxed),
        }
    }

    pub(crate) fn reset_stats(&self) {
        let sh = &self.shared;
        sh.epoch_folds.store(0, Ordering::Relaxed);
        sh.blocks_allocated.store(0, Ordering::Relaxed);
        sh.scan_ns.store(0, Ordering::Relaxed);
    }

    pub(crate) fn validate(&self) -> Result<(), String> {
        let sh = &self.shared;
        let res = (|| {
            // `vtnc` first, then `cap`: `cap` is monotone, so a stale
            // `vtnc` against a fresher `cap` can only under-report.
            let vtnc = sh.vtnc.load(Ordering::Acquire);
            let cap = sh.cap();
            if vtnc > cap {
                return Err(format!("vtnc {vtnc} >= tnc {}", cap + 1));
            }
            // The blocker/vtnc pair is only consistent under the advance
            // lock (both are written there); skip when contended.
            if let Some(_st) = sh.advance.try_lock() {
                let blocker = sh.blocker.load(Ordering::Relaxed);
                let vtnc = sh.vtnc.load(Ordering::Acquire);
                if blocker != 0 && blocker <= vtnc {
                    return Err(format!("queued tn {blocker} <= vtnc {vtnc}"));
                }
            }
            Ok(())
        })();
        if let Err(msg) = &res {
            if let Some(o) = sh.obs.get() {
                o.dump(
                    FlightTrigger::InvariantViolation,
                    &DumpContext {
                        detail: msg.clone(),
                        vc: Some(self.view()),
                        ..Default::default()
                    },
                );
            }
        }
        res
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::thread;

    fn dec(block_tns: usize, epoch_ops: u64, gap_grace: u64) -> DecentralVc {
        DecentralVc::resumed(0, block_tns, epoch_ops, gap_grace)
    }

    #[test]
    fn block_exhaustion_at_u64_boundary_panics() {
        let vc = DecentralVc::resumed(u64::MAX - 16, 16, 1, 32);
        let err = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| vc.register()))
            .expect_err("allocation past u64::MAX must panic");
        let msg = err
            .downcast_ref::<String>()
            .cloned()
            .or_else(|| err.downcast_ref::<&str>().map(|s| s.to_string()))
            .unwrap_or_default();
        assert!(
            msg.contains("transaction number space exhausted"),
            "unexpected panic message: {msg}"
        );
    }

    #[test]
    fn near_boundary_resume_still_issues_below_reserved_max() {
        // Small block flush against the boundary: tns MAX-8..=MAX-1 fit
        // (u64::MAX itself stays reserved), the next block panics.
        let vc = DecentralVc::resumed(u64::MAX - 9, 8, 1, 32);
        for i in 1..=8u64 {
            assert_eq!(vc.register(), u64::MAX - 9 + i);
        }
        assert!(std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| vc.register())).is_err());
    }

    #[test]
    fn dying_thread_does_not_stall_vtnc() {
        let vc = Arc::new(dec(16, 1, u64::MAX)); // grace effectively off
        let t1 = vc.register_after(0); // main claims block 1..=16
        let vc2 = Arc::clone(&vc);
        thread::spawn(move || {
            // Worker claims its own block (floor 0 skips the steal),
            // draws one number, completes it, then dies with 15 numbers
            // undrawn.
            let tn = vc2.register_after(0);
            vc2.complete(tn);
        })
        .join()
        .unwrap();
        // The worker's TLS destructor retired its slot and abandoned the
        // block tail; completing t1 must fold straight past the corpse.
        vc.complete(t1);
        assert_eq!(vc.vtnc(), vc.shared.cap());
        assert_eq!(vc.queue_len(), 0);
        vc.validate().unwrap();
    }

    #[test]
    fn ttl_reclaims_gap_in_unpublished_block() {
        // A live block owner that stops drawing (no retirement, no
        // abandonment) while another transaction keeps the system
        // non-quiet: only the whole-block claim deadline may reclaim its
        // never-drawn numbers.
        let vc = Arc::new(dec(4, 1, u64::MAX)); // grace effectively off
        vc.set_register_ttl(Some(Duration::from_secs(60))); // long: no reap
        let vc2 = Arc::clone(&vc);
        let parked = Arc::new(std::sync::Barrier::new(2));
        let parked2 = Arc::clone(&parked);
        let release = Arc::new(std::sync::Barrier::new(2));
        let release2 = Arc::clone(&release);
        let a = thread::spawn(move || {
            // Owner claims block 1..=4, finishes one number, then parks
            // with 2..=4 unpublished and its TLS intact.
            let tn = vc2.register_after(0);
            vc2.complete(tn);
            parked2.wait();
            release2.wait();
        });
        parked.wait();
        // Main holds an active txn so the system is never quiet.
        let hold = vc.register_after(0); // main's own block, 5..=8
                                         // Shrink the TTL and backdate the owner's block claim so the
                                         // deadline is already past (deterministic — no sleeps).
        vc.set_register_ttl(Some(Duration::from_nanos(1)));
        assert_eq!(vc.vtnc(), 1, "owner completed exactly tn 1");
        let blk = vc.shared.find_block(2).expect("owner block live");
        blk.claim_deadline.store(1, Ordering::Relaxed); // epoch + 1 ns
                                                        // Any fold now expires gaps 2..=4 via the claim deadline (the
                                                        // watermark itself stays at 1 until `hold` completes: it only
                                                        // publishes at completed numbers).
        let poke = vc.register_after(hold);
        vc.complete(poke);
        for tn in 2..=4u64 {
            assert_eq!(
                blk.entries[(tn - blk.first) as usize]
                    .state
                    .load(Ordering::Relaxed),
                EXPIRED,
                "claim-deadline expiry should reclaim gap {tn}"
            );
        }
        assert_eq!(vc.vtnc(), 1);
        release.wait();
        a.join().unwrap();
        vc.complete(hold);
        assert_eq!(vc.vtnc(), vc.shared.cap());
        vc.validate().unwrap();
    }

    #[test]
    fn floors_expire_and_abandon_inside_blocks() {
        let vc = dec(4, 1, u64::MAX);
        let t1 = vc.register_after(0); // block 1..=4, cursor 1
                                       // Floor 5: block 1 (2..=4 left) is wholly ≤ 5 → abandoned; block
                                       // 2 starts at 5 which is ≤ 5 → expired in place; tn = 6.
        let t6 = vc.register_after(5);
        assert_eq!(t6, 6);
        vc.complete(t1); // walk: 2..=4 abandoned, 5 expired, blocked at 6
        assert_eq!(vc.vtnc(), 1, "vtnc publishes only at completed tns");
        vc.complete(t6); // now the walk crosses 2..=5 and lands on 6
        assert_eq!(vc.vtnc(), 6);
        // Leftovers 7..=8 in block 2 are still stealable.
        let hold = vc.register_after(vc.shared.cap());
        assert_eq!(hold, 7);
        let t8 = vc.register_after(hold);
        assert_eq!(t8, 8);
        vc.complete(t8);
        assert_eq!(vc.vtnc(), 6, "hold pins the watermark");
        vc.complete(hold);
        assert_eq!(vc.vtnc(), vc.shared.cap());
        vc.validate().unwrap();
    }

    #[test]
    fn grace_expires_idle_owners_gap_under_load() {
        // Thread A draws from its block then goes idle mid-block; main
        // keeps completing while holding one active txn (never quiet).
        // Folds stop at A's first undrawn number and must reclaim the
        // gaps after `gap_grace` stalled scans each.
        let vc = Arc::new(dec(8, 1, 2));
        let parked = Arc::new(std::sync::Barrier::new(2));
        let parked2 = Arc::clone(&parked);
        let release = Arc::new(std::sync::Barrier::new(2));
        let release2 = Arc::clone(&release);
        let vc2 = Arc::clone(&vc);
        let a = thread::spawn(move || {
            let tn = vc2.register_after(0); // block 1..=8, draws 1
            vc2.complete(tn);
            parked2.wait();
            release2.wait(); // TLS stays alive: no retirement/abandon
        });
        parked.wait();
        let hold = vc.register_after(0); // main's block: non-quiet forever
        let blk = vc.shared.find_block(2).expect("idle owner's block");
        let mut reclaimed = false;
        for _ in 0..64 {
            let tn = vc.register_after(hold);
            vc.complete(tn);
            // Gaps 2..=8 expire after `gap_grace` stalled scans each;
            // vtnc itself stays below `hold` until it completes.
            if (2..=8u64).all(|tn| {
                blk.entries[(tn - blk.first) as usize]
                    .state
                    .load(Ordering::Relaxed)
                    == EXPIRED
            }) {
                reclaimed = true;
                break;
            }
        }
        assert!(reclaimed, "grace never reclaimed the idle owner's gaps");
        release.wait();
        a.join().unwrap();
        vc.complete(hold);
        assert_eq!(vc.vtnc(), vc.shared.cap());
        vc.validate().unwrap();
    }

    #[test]
    fn walk_expires_abandoned_gaps_before_passing() {
        let vc = dec(4, 1, u64::MAX);
        let t1 = vc.register_after(0); // block 1..=4, cursor 1
        let t5 = vc.register_after(4); // 2..=4 abandoned; block 2, tn 5
        let blk = vc.shared.find_block(2).expect("abandoned block live");
        vc.complete(t1);
        vc.complete(t5);
        assert_eq!(vc.vtnc(), 5);
        // The walk must have expired the abandoned gaps via CAS — passing
        // them while still FREE would leave a window for a racing
        // adjacent steal to activate a tn ≤ the published vtnc.
        for tn in 2..=4u64 {
            assert_eq!(
                blk.entries[(tn - blk.first) as usize]
                    .state
                    .load(Ordering::Relaxed),
                EXPIRED,
                "abandoned gap {tn} was passed without expiry"
            );
        }
        vc.validate().unwrap();
    }

    #[test]
    fn steal_refuses_abandoned_tail() {
        let vc = dec(4, 1, u64::MAX);
        let t1 = vc.register_after(0); // block 1..=4, cursor 1
        let t5 = vc.register_after(4); // block 1..=4 wholly ≤ 4 → abandon 2..=4; block 2, tn 5
        assert_eq!(t5, 5);
        vc.complete(t1);
        vc.complete(t5);
        // 2..=4 were walked past as abandoned — stealing them now (floor
        // 1 → target 2) must be refused, else a number ≤ vtnc would go
        // live.
        assert_eq!(vc.vtnc(), 5);
        let next = vc.register_after(1);
        assert!(next > vc.vtnc(), "stole a watermarked number: {next}");
        vc.complete(next);
        vc.validate().unwrap();
    }

    #[test]
    fn epoch_batching_defers_visibility_until_fold() {
        let vc = dec(16, 4, 32); // fold every 4 completions per thread
        let tns: Vec<u64> = (0..4).map(|_| vc.register()).collect();
        vc.complete(tns[0]);
        vc.complete(tns[1]);
        vc.complete(tns[2]);
        // Three completions, epoch is 4 → no fold yet; vtnc may lag.
        assert!(vc.vtnc() <= 3);
        vc.complete(tns[3]); // 4th completion folds
        assert_eq!(vc.vtnc(), 4);
        assert!(vc.stats().epoch_folds >= 1);
        vc.validate().unwrap();
    }

    #[test]
    fn stats_count_blocks_and_folds() {
        let vc = dec(2, 1, 32);
        for _ in 0..5 {
            let tn = vc.register();
            vc.complete(tn);
        }
        let s = vc.stats();
        assert!(s.blocks_allocated >= 3, "5 tns / block of 2 ⇒ ≥ 3 blocks");
        assert!(s.epoch_folds >= 5, "epoch 1 folds on every completion");
        vc.reset_stats();
        assert_eq!(vc.stats(), VcStats::default());
    }

    #[test]
    fn many_threads_with_floors_converge() {
        let vc = Arc::new(dec(8, 2, 4));
        let mut handles = Vec::new();
        for _ in 0..8 {
            let vc = Arc::clone(&vc);
            handles.push(thread::spawn(move || {
                let mut floor = 0u64;
                for i in 0..300 {
                    let tn = vc.register_after(floor);
                    assert!(tn > floor);
                    floor = tn;
                    if i % 5 == 0 {
                        vc.discard(tn);
                    } else {
                        assert!(vc.start_complete(tn));
                        vc.complete(tn);
                    }
                    vc.validate().unwrap();
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        // Two more ordered completions fill an epoch (epoch_ops = 2) and
        // force a final fold past any per-thread residue; the second is
        // the highest number so the watermark lands exactly on it.
        let a = vc.register();
        vc.complete(a);
        let b = vc.register();
        vc.complete(b);
        assert_eq!(vc.queue_len(), 0);
        assert_eq!(vc.vtnc(), vc.shared.cap());
        vc.validate().unwrap();
    }
}
