//! Engine configuration.

use crate::clock::{real_clock, SharedClock, SharedRng};
use crate::fault::FaultConfig;
use crate::obs::ObsConfig;
use crate::pressure::PressureConfig;
use mvcc_storage::wal::FsyncPolicy;
use std::time::Duration;

/// How two-phase locking resolves deadlocks.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DeadlockPolicy {
    /// Maintain a waits-for graph; abort the requester whose wait would
    /// close a cycle.
    Detect,
    /// No graph; rely on the lock wait timeout alone.
    TimeoutOnly,
}

/// Configuration shared by the engine and the protocols.
#[derive(Debug, Clone)]
pub struct DbConfig {
    /// Shard count for the multiversion store (rounded up to a power of
    /// two).
    pub store_shards: usize,
    /// Shard count for the 2PL lock table (rounded up to a power of two).
    /// Consulted by `mvcc-cc`'s preset constructors; `1` reproduces the
    /// old global-mutex lock manager for A/B experiments.
    pub lock_shards: usize,
    /// Slot count for the GC read-only snapshot registry (rounded up to a
    /// power of two). `1` reproduces the old global-mutex registry.
    pub ro_slots: usize,
    /// Upper bound on any single lock wait (2PL).
    pub lock_wait_timeout: Duration,
    /// Upper bound on a read's wait for a pending write (TO).
    pub read_wait_timeout: Duration,
    /// Deadlock handling under 2PL.
    pub deadlock: DeadlockPolicy,
    /// Record an execution trace for the serializability oracle.
    /// Off by default: tracing serializes on a global mutex.
    pub trace: bool,
    /// Versions to retain at or below the GC watermark per object
    /// (1 = minimal; larger keeps bounded history for time-travel
    /// reads below the watermark — a Section 6 GC-policy variant).
    pub gc_keep_versions: usize,
    /// How long a registered transaction may stay `Active` before the
    /// stall reaper may force-discard it. `None` disables the reaper
    /// (the classic Figure 1 behavior: a stalled client pins `vtnc`
    /// forever).
    pub register_ttl: Option<Duration>,
    /// Fault-injection probabilities (all zero by default).
    pub fault: FaultConfig,
    /// When the write-ahead log syncs (only consulted by WAL-enabled
    /// engines, see [`crate::MvDatabase::with_wal`]). `Always` by
    /// default: a committed transaction is durable before its commit
    /// call returns.
    pub wal_fsync: FsyncPolicy,
    /// Observability: structured events, phase latencies, flight
    /// recorder. All off by default — the disabled hot-path cost is one
    /// relaxed load per instrumentation point.
    pub obs: ObsConfig,
    /// The time source for every deadline, TTL, backoff sleep, and event
    /// timestamp in this engine. [`crate::RealClock`] by default; the
    /// simulator injects a [`crate::SimClock`] (see DESIGN.md §13).
    pub clock: SharedClock,
    /// Optional shared random stream. When set, the fault injector and
    /// the retry-jitter streams draw from it instead of their private
    /// per-seed streams, so one `u64` seed reproduces every draw in the
    /// engine. `None` (the default) keeps the per-component seeded
    /// streams.
    pub rng: Option<SharedRng>,
    /// Overload control: admission gate, per-tenant quotas, degradation
    /// ladder. Disabled by default — see [`crate::pressure`].
    pub pressure: PressureConfig,
    /// Use the legacy centralized version-control sequencer (one mutex
    /// around `tnc` + `VCQueue`) instead of the decentralized one
    /// (per-thread tn blocks, scan-based `vtnc` watermark). Kept for A/B
    /// experiments (E18) and differential tests; `false` by default.
    pub centralized_vc: bool,
    /// Transaction numbers per per-thread allocation block in the
    /// decentralized sequencer. Small keeps watermark gaps short when a
    /// thread retires mid-block; large amortizes the shared
    /// block-counter `fetch_add`.
    pub vc_block_tns: usize,
    /// Decentralized sequencer epoch length: the watermark fold (the
    /// scan that advances `vtnc`) runs once per this many completions
    /// per thread. `1` (the default) folds on every completion —
    /// identical visibility latency to the centralized queue.
    pub vc_epoch_ops: u64,
    /// How many consecutive watermark scans may stop at the same
    /// unassigned (gap) transaction number before the scan reclaims it.
    /// Counted in scans, not time, so simulated runs stay deterministic.
    pub vc_gap_grace: u64,
}

impl Default for DbConfig {
    fn default() -> Self {
        DbConfig {
            store_shards: 64,
            lock_shards: 64,
            ro_slots: 16,
            lock_wait_timeout: Duration::from_secs(10),
            read_wait_timeout: Duration::from_secs(10),
            deadlock: DeadlockPolicy::Detect,
            trace: false,
            gc_keep_versions: 1,
            register_ttl: None,
            fault: FaultConfig::default(),
            wal_fsync: FsyncPolicy::Always,
            obs: ObsConfig::default(),
            clock: real_clock(),
            rng: None,
            pressure: PressureConfig::default(),
            centralized_vc: false,
            vc_block_tns: 16,
            vc_epoch_ops: 1,
            vc_gap_grace: 32,
        }
    }
}

impl DbConfig {
    /// Configuration for oracle tests: tracing on, short timeouts.
    pub fn traced() -> Self {
        DbConfig {
            trace: true,
            lock_wait_timeout: Duration::from_secs(5),
            read_wait_timeout: Duration::from_secs(5),
            ..Default::default()
        }
    }

    /// Configuration that funnels every hot-path structure through a
    /// single mutex: 1-shard store, 1-shard lock table, 1-slot GC
    /// registry. This is the pre-sharding engine, kept constructible so
    /// the scalability experiment (E15) can measure exactly what the
    /// decentralized structures buy.
    pub fn global_mutex() -> Self {
        DbConfig {
            store_shards: 1,
            lock_shards: 1,
            ro_slots: 1,
            ..Default::default()
        }
    }

    /// Set the store, lock-table and GC-registry shard counts at once
    /// (each rounded up to a power of two by its consumer).
    pub fn with_shard_counts(mut self, store: usize, lock: usize, ro: usize) -> Self {
        self.store_shards = store;
        self.lock_shards = lock;
        self.ro_slots = ro;
        self
    }

    /// Set the upper bound on any single lock wait (2PL).
    pub fn with_lock_wait_timeout(mut self, timeout: Duration) -> Self {
        self.lock_wait_timeout = timeout;
        self
    }

    /// Set the upper bound on a read's wait for a pending write (TO).
    pub fn with_read_wait_timeout(mut self, timeout: Duration) -> Self {
        self.read_wait_timeout = timeout;
        self
    }

    /// Set the registration TTL enforced by the stall reaper.
    pub fn with_register_ttl(mut self, ttl: Duration) -> Self {
        self.register_ttl = Some(ttl);
        self
    }

    /// Set the fault-injection configuration.
    pub fn with_fault(mut self, fault: FaultConfig) -> Self {
        self.fault = fault;
        self
    }

    /// Set the WAL fsync policy.
    pub fn with_wal_fsync(mut self, policy: FsyncPolicy) -> Self {
        self.wal_fsync = policy;
        self
    }

    /// Set the observability configuration.
    pub fn with_obs(mut self, obs: ObsConfig) -> Self {
        self.obs = obs;
        self
    }

    /// Enable contention attribution (hot-key/hot-shard sketches and the
    /// blocking-blame ledger) on the current observability config.
    pub fn with_attribution(mut self) -> Self {
        self.obs.attribution = true;
        self
    }

    /// Inject a time source (the simulator's [`crate::SimClock`]).
    pub fn with_clock(mut self, clock: SharedClock) -> Self {
        self.clock = clock;
        self
    }

    /// Inject a shared random stream for fault coins and retry jitter.
    pub fn with_rng(mut self, rng: SharedRng) -> Self {
        self.rng = Some(rng);
        self
    }

    /// Set the overload-control (admission + backpressure) knobs.
    pub fn with_pressure(mut self, pressure: PressureConfig) -> Self {
        self.pressure = pressure;
        self
    }

    /// Select the version-control sequencer: `true` restores the legacy
    /// centralized mutex + queue, `false` (the default) uses the
    /// decentralized per-thread-block sequencer.
    pub fn with_centralized_vc(mut self, centralized: bool) -> Self {
        self.centralized_vc = centralized;
        self
    }

    /// Set the decentralized sequencer's per-thread block size.
    pub fn with_vc_block_tns(mut self, tns: usize) -> Self {
        self.vc_block_tns = tns;
        self
    }

    /// Set the decentralized sequencer's epoch length (completions per
    /// thread between watermark folds).
    pub fn with_vc_epoch_ops(mut self, ops: u64) -> Self {
        self.vc_epoch_ops = ops;
        self
    }

    /// Set the gap-reclaim grace (watermark scans before an unassigned
    /// blocker is expired).
    pub fn with_vc_gap_grace(mut self, scans: u64) -> Self {
        self.vc_gap_grace = scans;
        self
    }

    /// Enable structured event recording (and phase latencies).
    pub fn with_events(mut self) -> Self {
        self.obs.events = true;
        self
    }

    /// Arm the flight recorder, writing post-mortems into `dir`.
    pub fn with_flight_dir(mut self, dir: impl Into<std::path::PathBuf>) -> Self {
        self.obs.flight_dir = Some(dir.into());
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_are_sane() {
        let c = DbConfig::default();
        assert!(c.store_shards >= 1);
        assert!(!c.trace);
        assert_eq!(c.deadlock, DeadlockPolicy::Detect);
    }

    #[test]
    fn traced_preset_enables_trace() {
        assert!(DbConfig::traced().trace);
    }
}
