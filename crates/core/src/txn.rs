//! Transaction handles.
//!
//! [`RoTxn`] is the paper's Figure 2: one `VCstart()` call at begin, then
//! pure snapshot reads (`largest version ≤ sn`). It is deliberately **not
//! generic over the concurrency-control protocol** — the type system
//! enforces the paper's claim that "the execution of read-only
//! transactions is completely independent of the chosen concurrency
//! control protocol".
//!
//! [`RwTxn`] wraps the protocol's per-transaction state and forwards
//! reads/writes through the [`ConcurrencyControl`] trait, recording a
//! trace for the serializability oracle when tracing is enabled.

use crate::cc_api::{CcContext, ConcurrencyControl};
use crate::db::DbCore;
use crate::error::{AbortReason, DbError};
use crate::obs::trace::{self, AttemptGuard};
use crate::obs::{abort_reason_code, EventKind};
use crate::pressure::{AdmissionPermit, Deadline, TxnOptions, TxnOutcome};
use crate::trace::TxnTrace;
use mvcc_model::{ObjectId, TxnId};
use mvcc_storage::Value;
use std::sync::atomic::Ordering;

/// Trace ids for transactions that never receive a transaction number
/// (read-only transactions, and read-write transactions aborted before
/// registration) start here; real transaction numbers stay far below.
pub(crate) const ANON_TRACE_BASE: u64 = 1 << 48;

/// A read-only transaction (paper Figure 2).
pub struct RoTxn<'db> {
    core: &'db DbCore,
    sn: u64,
    /// GC-registry slot the begin-time registration landed in.
    gc_slot: usize,
    trace: TxnTrace,
    finished: bool,
}

impl<'db> RoTxn<'db> {
    pub(crate) fn begin(core: &'db DbCore, sn: u64) -> Self {
        let gc_slot = core.ro_registry.register(sn);
        let m = &core.ctx.metrics;
        m.ro_begun.fetch_add(1, Ordering::Relaxed);
        m.vc_start_calls.fetch_add(1, Ordering::Relaxed);
        // The single synchronization action of a read-only transaction.
        m.ro_sync_actions.fetch_add(1, Ordering::Relaxed);
        RoTxn {
            core,
            sn,
            gc_slot,
            trace: TxnTrace::new(),
            finished: false,
        }
    }

    /// The start number `sn(T)` (also its `tn(T)` for proof purposes).
    pub fn sn(&self) -> u64 {
        self.sn
    }

    /// `read(x)`: return the value of the version of `x` with the largest
    /// version number `≤ sn(T)`. Never blocks; fails only if garbage
    /// collection pruned the needed version.
    pub fn read(&mut self, obj: ObjectId) -> Result<Value, DbError> {
        Ok(self.read_versioned(obj)?.1)
    }

    /// Like [`read`](Self::read), also returning the version number that
    /// was read (= the creator's transaction number).
    pub fn read_versioned(&mut self, obj: ObjectId) -> Result<(u64, Value), DbError> {
        let m = &self.core.ctx.metrics;
        // Sampled phase timer: the per-kind counter advances on every
        // read, but only surviving samples read the clock and publish.
        let timer = self.core.ctx.obs.phase_timer(EventKind::RoRead);
        let read = self.core.ctx.store.read_at(obj, self.sn);
        if let Some(started) = timer {
            let obs = &self.core.ctx.obs;
            obs.phases().ro_read.record(obs.since(started));
            obs.publish(EventKind::RoRead, obj.0, self.sn);
        }
        match read {
            Some((version, value)) => {
                m.ro_reads.fetch_add(1, Ordering::Relaxed);
                self.trace.read(obj, version);
                Ok((version, value))
            }
            None => {
                m.ro_pruned_reads.fetch_add(1, Ordering::Relaxed);
                Err(DbError::VersionPruned { obj, sn: self.sn })
            }
        }
    }

    /// Read and decode as `u64` (convenience for counters/balances).
    pub fn read_u64(&mut self, obj: ObjectId) -> Result<Option<u64>, DbError> {
        Ok(self.read(obj)?.as_u64())
    }

    /// `end(T)`: deregister from GC bookkeeping and flush the trace.
    /// (The paper's figure shows `φ` — there is nothing to synchronize.)
    pub fn finish(mut self) {
        self.finish_inner();
    }

    fn finish_inner(&mut self) {
        if self.finished {
            return;
        }
        self.finished = true;
        self.core.ro_registry.deregister(self.gc_slot, self.sn);
        self.core
            .ctx
            .metrics
            .ro_finished
            .fetch_add(1, Ordering::Relaxed);
        if let Some(tracer) = &self.core.tracer {
            let id = self.core.next_anon_trace_id();
            tracer.flush(TxnId(id), &self.trace, true);
        }
    }
}

impl Drop for RoTxn<'_> {
    fn drop(&mut self) {
        self.finish_inner();
    }
}

impl std::fmt::Debug for RoTxn<'_> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("RoTxn")
            .field("sn", &self.sn)
            .field("finished", &self.finished)
            .finish()
    }
}

/// A read-write transaction executed under protocol `C`.
pub struct RwTxn<'db, C: ConcurrencyControl> {
    core: &'db DbCore,
    cc: &'db C,
    state: Option<C::Txn>,
    trace: TxnTrace,
    /// Protocol actor id captured at begin, so lifecycle events can be
    /// stamped even after `state` has been consumed by commit/abort.
    obs_id: u64,
    /// Absolute latency budget, checked at every operation entry (the
    /// protocol additionally bounds its blocking waits by it).
    deadline: Option<Deadline>,
    /// Admission slot, released on drop; its outcome feeds the AIMD loop.
    permit: Option<AdmissionPermit>,
    /// End-to-end trace attempt (explicit via [`TxnOptions::with_trace`]
    /// or spans-tier sampled). While held, instrumented sites deeper in
    /// the engine parent their spans on it through the thread-local
    /// frame; dropping it records the `attempt` span.
    tspan: Option<AttemptGuard>,
}

impl<'db, C: ConcurrencyControl> RwTxn<'db, C> {
    pub(crate) fn begin_with(
        core: &'db DbCore,
        cc: &'db C,
        opts: &TxnOptions,
        permit: Option<AdmissionPermit>,
    ) -> Result<Self, DbError> {
        // Open the trace frame *before* the protocol's begin, so a
        // protocol that registers with version control at begin gets its
        // VCQueue residency span parented correctly.
        let obs = &core.ctx.obs;
        let tspan = match opts.trace {
            Some(t) => Some(trace::attempt(obs.tracer().activate(t.trace_id))),
            None if obs.span_sampled() => {
                let id = obs.tracer().auto_id();
                Some(trace::attempt(obs.tracer().activate(id)))
            }
            None => None,
        };
        let state = cc.begin_with(&core.ctx, opts)?;
        core.ctx.metrics.rw_begun.fetch_add(1, Ordering::Relaxed);
        let obs_id = if core.ctx.obs.on() {
            let id = cc.txn_obs_id(&state);
            core.ctx.obs.emit(EventKind::Begin, id, 0);
            id
        } else {
            0
        };
        let deadline = opts
            .deadline
            .map(|budget| Deadline::within(&*core.ctx.config.clock, budget));
        Ok(RwTxn {
            core,
            cc,
            state: Some(state),
            trace: TxnTrace::new(),
            obs_id,
            deadline,
            permit,
            tspan,
        })
    }

    /// The end-to-end trace id this transaction reports into, if any.
    pub fn trace_id(&self) -> Option<u64> {
        self.tspan.as_ref().map(|g| g.trace().trace_id())
    }

    fn ctx(&self) -> &CcContext {
        &self.core.ctx
    }

    /// The transaction's absolute deadline, if one was set.
    pub fn deadline(&self) -> Option<Deadline> {
        self.deadline
    }

    /// Fail fast when the budget is gone: abort the protocol state and
    /// surface `DeadlineExceeded`. Called at every operation entry so a
    /// transaction that overran its budget inside one blocking point
    /// cannot silently keep consuming resources in the next.
    fn check_deadline(&mut self) -> Result<(), DbError> {
        let Some(d) = self.deadline else {
            return Ok(());
        };
        if !d.expired(&*self.core.ctx.config.clock) {
            return Ok(());
        }
        let e = DbError::Aborted(AbortReason::DeadlineExceeded);
        if let Some(state) = self.state.take() {
            self.cc.abort(&self.core.ctx, state);
        }
        self.record_abort(&e);
        Err(e)
    }

    /// `read(x)` under the protocol's synchronization. An error means the
    /// transaction has been aborted by the protocol; the handle is then
    /// unusable except for dropping.
    pub fn read(&mut self, obj: ObjectId) -> Result<Value, DbError> {
        self.check_deadline()?;
        let state = self.state.as_mut().ok_or(DbError::TxnFinished)?;
        match self.cc.read(&self.core.ctx, state, obj) {
            Ok((version, value)) => {
                self.trace.read(obj, version);
                Ok(value)
            }
            Err(e) => {
                self.on_protocol_abort(&e);
                Err(e)
            }
        }
    }

    /// Read and decode as `u64`.
    pub fn read_u64(&mut self, obj: ObjectId) -> Result<Option<u64>, DbError> {
        Ok(self.read(obj)?.as_u64())
    }

    /// `read(x)` with update intent (see
    /// [`ConcurrencyControl::read_for_update`]): read-modify-write
    /// transactions should prefer this to avoid lock-upgrade deadlocks
    /// under locking protocols.
    pub fn read_for_update(&mut self, obj: ObjectId) -> Result<Value, DbError> {
        self.check_deadline()?;
        let state = self.state.as_mut().ok_or(DbError::TxnFinished)?;
        match self.cc.read_for_update(&self.core.ctx, state, obj) {
            Ok((version, value)) => {
                self.trace.read(obj, version);
                Ok(value)
            }
            Err(e) => {
                self.on_protocol_abort(&e);
                Err(e)
            }
        }
    }

    /// `write(x)` under the protocol's synchronization.
    pub fn write(&mut self, obj: ObjectId, value: Value) -> Result<(), DbError> {
        self.check_deadline()?;
        let state = self.state.as_mut().ok_or(DbError::TxnFinished)?;
        match self.cc.write(&self.core.ctx, state, obj, value) {
            Ok(()) => {
                self.trace.write(obj);
                Ok(())
            }
            Err(e) => {
                self.on_protocol_abort(&e);
                Err(e)
            }
        }
    }

    /// `end(T)`: run the protocol's commit (which registers with version
    /// control at the serialization point if it has not already), apply
    /// updates, and make them (eventually) visible. Returns `tn(T)`.
    pub fn commit(mut self) -> Result<u64, DbError> {
        // Commit-entry deadline check: an expired transaction must not
        // enter group commit / WAL / version-control completion.
        self.check_deadline()?;
        let state = self.state.take().ok_or(DbError::TxnFinished)?;
        match self.cc.commit(&self.core.ctx, state) {
            Ok(tn) => {
                if let Some(p) = self.permit.as_mut() {
                    p.set_outcome(TxnOutcome::Committed);
                }
                if let Some(g) = self.tspan.as_mut() {
                    g.attr("committed", 1);
                    g.attr("tn", tn);
                }
                self.ctx()
                    .metrics
                    .rw_committed
                    .fetch_add(1, Ordering::Relaxed);
                if let Some(tracer) = &self.core.tracer {
                    tracer.flush(TxnId(tn), &self.trace, true);
                }
                Ok(tn)
            }
            Err(e) => {
                self.record_abort(&e);
                Err(e)
            }
        }
    }

    /// Voluntarily abort.
    pub fn abort(mut self) {
        if let Some(state) = self.state.take() {
            self.cc.abort(&self.core.ctx, state);
            self.record_abort(&DbError::Aborted(AbortReason::UserRequested));
        }
    }

    /// Simulate the client vanishing (fault injection): drop the protocol
    /// state **without** running the protocol's abort path, exactly as if
    /// the thread had died. Whatever the transaction registered, locked,
    /// or left pending stays behind, to be reclaimed by the stall reaper
    /// and the wait timeouts. The trace is flushed as uncommitted.
    pub fn stall(mut self) {
        if self.state.take().is_some() {
            if let Some(tracer) = &self.core.tracer {
                let id = self.core.next_anon_trace_id();
                tracer.flush(TxnId(id), &self.trace, false);
            }
        }
    }

    /// The protocol aborted the transaction inside read/write: it has
    /// already cleaned up its own resources; drop our state and record.
    fn on_protocol_abort(&mut self, e: &DbError) {
        if e.abort_reason().is_some() {
            if let Some(state) = self.state.take() {
                self.cc.abort(&self.core.ctx, state);
            }
            self.record_abort(e);
        }
    }

    fn record_abort(&mut self, e: &DbError) {
        // Borrow through the 'db reference (not &self) so the trace-span
        // attr writes below can take &mut self.tspan concurrently.
        let m = &self.core.ctx.metrics;
        m.rw_aborted.fetch_add(1, Ordering::Relaxed);
        if let Some(reason) = e.abort_reason() {
            self.core
                .ctx
                .obs
                .emit(EventKind::Abort, self.obs_id, abort_reason_code(&reason));
            if let Some(g) = self.tspan.as_mut() {
                g.attr("committed", 0);
                g.attr("abort_reason", abort_reason_code(&reason));
            }
        }
        match e.abort_reason() {
            Some(AbortReason::TimestampConflict) => {
                m.aborts_ts_conflict.fetch_add(1, Ordering::Relaxed);
            }
            Some(AbortReason::Deadlock) => {
                m.aborts_deadlock.fetch_add(1, Ordering::Relaxed);
            }
            Some(AbortReason::ValidationFailed) => {
                m.aborts_validation.fetch_add(1, Ordering::Relaxed);
            }
            Some(AbortReason::WaitTimeout) => {
                m.aborts_timeout.fetch_add(1, Ordering::Relaxed);
            }
            Some(AbortReason::BaselineConflict) => {
                m.aborts_baseline.fetch_add(1, Ordering::Relaxed);
            }
            Some(AbortReason::UserRequested) => {
                m.aborts_user.fetch_add(1, Ordering::Relaxed);
            }
            Some(AbortReason::Reaped) => {
                m.aborts_reaped.fetch_add(1, Ordering::Relaxed);
            }
            Some(AbortReason::LogFailed) => {
                m.aborts_wal.fetch_add(1, Ordering::Relaxed);
            }
            Some(AbortReason::Shed) => {
                m.aborts_shed.fetch_add(1, Ordering::Relaxed);
            }
            Some(AbortReason::DeadlineExceeded) => {
                m.aborts_deadline.fetch_add(1, Ordering::Relaxed);
            }
            Some(AbortReason::MemoryPressure) => {
                m.aborts_mem_pressure.fetch_add(1, Ordering::Relaxed);
            }
            None => {}
        }
        if let Some(p) = self.permit.as_mut() {
            p.set_outcome(match e.abort_reason() {
                Some(AbortReason::DeadlineExceeded) => TxnOutcome::DeadlineMiss,
                _ => TxnOutcome::Aborted,
            });
        }
        if let Some(tracer) = &self.core.tracer {
            let id = self.core.next_anon_trace_id();
            tracer.flush(TxnId(id), &self.trace, false);
        }
    }
}

impl<C: ConcurrencyControl> Drop for RwTxn<'_, C> {
    fn drop(&mut self) {
        if let Some(state) = self.state.take() {
            self.cc.abort(&self.core.ctx, state);
            self.record_abort(&DbError::Aborted(AbortReason::UserRequested));
        }
    }
}
