//! `VCQueue` — the ordered list of registered, not-yet-visible read-write
//! transactions (paper Figure 1).
//!
//! Entries are kept sorted by transaction number. The centralized
//! sequencer registers in number order (registration happens under the
//! version-control lock, which also assigns the numbers), so the common
//! insert is a `push_back`; out-of-order tns — possible when callers
//! allocate numbers away from the queue lock — fall back to a binary
//! search (`partition_point`) insertion. `drain_completed` pops completed
//! entries off the head and reports the last popped number — the new
//! `vtnc`.

use std::collections::VecDeque;
use std::time::Instant;

/// Lifecycle state of a queue entry (paper: `E(T).type`, plus the
/// `Committing` refinement that makes the stall reaper safe).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EntryState {
    /// Registered, still executing (paper: `"active"`).
    Active,
    /// Claimed by its transaction's commit path: database updates are
    /// being applied and `VCcomplete` will follow. Not in the paper's
    /// pseudocode — it exists so the reaper can distinguish "stalled,
    /// safe to discard" (`Active`) from "mid-commit, must not be
    /// discarded" (`Committing`). See [`VcQueue::reap_expired`].
    Committing,
    /// Finished its database updates, waiting for older transactions
    /// before becoming visible (paper: `"complete"`).
    Complete,
}

#[derive(Debug, Clone, Copy)]
struct Entry {
    tn: u64,
    state: EntryState,
    /// Registration deadline: an `Active` entry older than this may be
    /// force-discarded by the reaper. `None` = never reaped.
    deadline: Option<Instant>,
    /// When the entry was registered. Stamped only when someone will
    /// consume it (reaper TTL or observability); feeds the
    /// register→complete phase histogram and the head-age gauge.
    registered_at: Option<Instant>,
}

/// The version-control queue of Figure 1.
#[derive(Debug, Default)]
pub struct VcQueue {
    entries: VecDeque<Entry>,
}

impl VcQueue {
    /// Empty queue.
    pub fn new() -> Self {
        Self::default()
    }

    /// Insert a newly registered transaction. Sorted order is maintained
    /// regardless of insertion order: in-order tns (the centralized
    /// sequencer's only case) append in O(1); out-of-order tns binary-
    /// search their slot.
    ///
    /// # Panics
    /// In debug builds, if `tn` is already queued — duplicate
    /// registration means the sequencer handed a number out twice.
    pub fn insert(&mut self, tn: u64, deadline: Option<Instant>) {
        self.insert_at(tn, deadline, None);
    }

    /// [`insert`](Self::insert) with an explicit registration stamp
    /// (consumed by the register→complete histogram and head-age gauge).
    pub fn insert_at(
        &mut self,
        tn: u64,
        deadline: Option<Instant>,
        registered_at: Option<Instant>,
    ) {
        let entry = Entry {
            tn,
            state: EntryState::Active,
            deadline,
            registered_at,
        };
        if self.entries.back().is_none_or(|e| e.tn < tn) {
            self.entries.push_back(entry);
        } else {
            let idx = self.entries.partition_point(|e| e.tn < tn);
            debug_assert!(
                self.entries.get(idx).is_none_or(|e| e.tn != tn),
                "VCQueue duplicate insert: {tn}"
            );
            self.entries.insert(idx, entry);
        }
    }

    /// Claim `tn` for commit: transition its entry from `Active` to
    /// `Committing`, shielding it from the reaper. Returns `false` if the
    /// entry is absent (discarded/reaped) or not `Active` — the caller
    /// must then abort instead of applying database updates.
    pub fn start_committing(&mut self, tn: u64) -> bool {
        match self.position(tn) {
            Some(i) if self.entries[i].state == EntryState::Active => {
                self.entries[i].state = EntryState::Committing;
                true
            }
            _ => false,
        }
    }

    /// Force-discard every `Active` entry whose deadline has passed
    /// (`deadline ≤ now`). `Committing` and `Complete` entries are never
    /// touched: a claimed transaction is mid-commit and its updates may
    /// already be in the store. Returns the discarded transaction
    /// numbers, oldest first.
    pub fn reap_expired(&mut self, now: Instant) -> Vec<u64> {
        let mut reaped = Vec::new();
        self.entries.retain(|e| {
            let expired = e.state == EntryState::Active && e.deadline.is_some_and(|d| d <= now);
            if expired {
                reaped.push(e.tn);
            }
            !expired
        });
        reaped
    }

    /// Remove an aborted transaction's entry (paper `VCdiscard`). Returns
    /// `false` if no entry with that number exists.
    pub fn discard(&mut self, tn: u64) -> bool {
        match self.position(tn) {
            Some(i) => {
                self.entries.remove(i);
                true
            }
            None => false,
        }
    }

    /// Mark a transaction complete (paper `VCcomplete`, first line).
    /// Returns `false` if no entry with that number exists.
    pub fn mark_complete(&mut self, tn: u64) -> bool {
        match self.position(tn) {
            Some(i) => {
                self.entries[i].state = EntryState::Complete;
                true
            }
            None => false,
        }
    }

    /// Paper `VCcomplete`, the `WHILE` loop: pop completed entries off the
    /// head; the last popped transaction number is the new `vtnc`.
    /// Returns `None` if the head is active (or the queue is empty and
    /// nothing was popped).
    pub fn drain_completed(&mut self) -> Option<u64> {
        let mut new_vtnc = None;
        while let Some(head) = self.entries.front() {
            if head.state != EntryState::Complete {
                break;
            }
            new_vtnc = Some(head.tn);
            self.entries.pop_front();
        }
        new_vtnc
    }

    /// Number of queued (registered, not yet visible) transactions.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the queue is empty.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// The state of `tn`'s entry, if present.
    pub fn state_of(&self, tn: u64) -> Option<EntryState> {
        self.position(tn).map(|i| self.entries[i].state)
    }

    /// The smallest queued transaction number (the visibility blocker).
    pub fn head_tn(&self) -> Option<u64> {
        self.entries.front().map(|e| e.tn)
    }

    /// When `tn` was registered, if its entry exists and was stamped.
    pub fn registered_at(&self, tn: u64) -> Option<Instant> {
        self.position(tn)
            .and_then(|i| self.entries[i].registered_at)
    }

    /// Age of the queue head (how long the current visibility blocker has
    /// been registered), if the head exists and was stamped.
    pub fn head_age(&self, now: Instant) -> Option<std::time::Duration> {
        self.entries
            .front()
            .and_then(|e| e.registered_at)
            .map(|at| now.saturating_duration_since(at))
    }

    fn position(&self, tn: u64) -> Option<usize> {
        // Entries are sorted by tn; binary search.
        self.entries.binary_search_by_key(&tn, |e| e.tn).ok()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn insert_and_query() {
        let mut q = VcQueue::new();
        q.insert(1, None);
        q.insert(2, None);
        q.insert(5, None);
        assert_eq!(q.len(), 3);
        assert_eq!(q.head_tn(), Some(1));
        assert_eq!(q.state_of(2), Some(EntryState::Active));
        assert_eq!(q.state_of(4), None);
    }

    #[test]
    fn in_order_completion_drains_each_time() {
        let mut q = VcQueue::new();
        q.insert(1, None);
        q.insert(2, None);
        assert!(q.mark_complete(1));
        assert_eq!(q.drain_completed(), Some(1));
        assert!(q.mark_complete(2));
        assert_eq!(q.drain_completed(), Some(2));
        assert!(q.is_empty());
    }

    #[test]
    fn out_of_order_completion_delays_visibility() {
        // The scenario the paper's vtnc exists for: T2 completes before T1.
        let mut q = VcQueue::new();
        q.insert(1, None);
        q.insert(2, None);
        assert!(q.mark_complete(2));
        assert_eq!(q.drain_completed(), None); // head (1) still active
        assert!(q.mark_complete(1));
        assert_eq!(q.drain_completed(), Some(2)); // both drain; vtnc jumps to 2
        assert!(q.is_empty());
    }

    #[test]
    fn discard_unblocks_the_queue() {
        let mut q = VcQueue::new();
        q.insert(1, None);
        q.insert(2, None);
        q.insert(3, None);
        q.mark_complete(2);
        q.mark_complete(3);
        assert_eq!(q.drain_completed(), None);
        assert!(q.discard(1)); // T1 aborts
        assert_eq!(q.drain_completed(), Some(3));
    }

    #[test]
    fn discard_missing_is_false() {
        let mut q = VcQueue::new();
        q.insert(1, None);
        assert!(!q.discard(9));
        assert!(!q.mark_complete(9));
    }

    #[test]
    fn discard_middle_keeps_order() {
        let mut q = VcQueue::new();
        for tn in [1, 2, 3, 4] {
            q.insert(tn, None);
        }
        assert!(q.discard(2));
        assert_eq!(q.len(), 3);
        q.mark_complete(1);
        assert_eq!(q.drain_completed(), Some(1));
        assert_eq!(q.head_tn(), Some(3));
    }

    #[test]
    fn drain_on_empty_is_none() {
        let mut q = VcQueue::new();
        assert_eq!(q.drain_completed(), None);
    }

    #[test]
    fn out_of_order_insert_lands_sorted() {
        let mut q = VcQueue::new();
        q.insert(5, None);
        q.insert(3, None);
        q.insert(4, None);
        q.insert(1, None);
        assert_eq!(q.head_tn(), Some(1));
        assert_eq!(q.state_of(4), Some(EntryState::Active));
        for tn in [1, 3, 4, 5] {
            assert!(q.mark_complete(tn));
        }
        assert_eq!(q.drain_completed(), Some(5));
        assert!(q.is_empty());
    }

    #[test]
    #[cfg(debug_assertions)]
    #[should_panic(expected = "duplicate insert")]
    fn duplicate_insert_panics_in_debug() {
        let mut q = VcQueue::new();
        q.insert(5, None);
        q.insert(3, None);
        q.insert(5, None);
    }

    #[test]
    fn start_committing_claims_only_active_entries() {
        let mut q = VcQueue::new();
        q.insert(1, None);
        q.insert(2, None);
        assert!(q.start_committing(1));
        assert_eq!(q.state_of(1), Some(EntryState::Committing));
        // Already claimed, absent, or complete: claim fails.
        assert!(!q.start_committing(1));
        assert!(!q.start_committing(9));
        q.mark_complete(2);
        assert!(!q.start_committing(2));
    }

    #[test]
    fn committing_head_blocks_drain() {
        let mut q = VcQueue::new();
        q.insert(1, None);
        q.insert(2, None);
        q.start_committing(1);
        q.mark_complete(2);
        // Head is mid-commit: nothing becomes visible yet.
        assert_eq!(q.drain_completed(), None);
        q.mark_complete(1);
        assert_eq!(q.drain_completed(), Some(2));
    }

    #[test]
    fn registration_stamp_and_head_age() {
        let t0 = Instant::now();
        let mut q = VcQueue::new();
        q.insert_at(1, None, Some(t0));
        q.insert(2, None); // unstamped
        assert_eq!(q.registered_at(1), Some(t0));
        assert_eq!(q.registered_at(2), None);
        assert_eq!(q.registered_at(9), None);
        let later = t0 + std::time::Duration::from_millis(7);
        assert_eq!(q.head_age(later), Some(std::time::Duration::from_millis(7)));
        q.discard(1);
        assert_eq!(q.head_age(later), None, "head 2 is unstamped");
    }

    #[test]
    fn reap_removes_only_expired_active_entries() {
        let now = Instant::now();
        let past = now - std::time::Duration::from_millis(10);
        let future = now + std::time::Duration::from_secs(60);
        let mut q = VcQueue::new();
        q.insert(1, Some(past)); // expired, Active → reaped
        q.insert(2, Some(past)); // expired but claimed → survives
        q.insert(3, Some(future)); // not yet expired → survives
        q.insert(4, None); // no deadline → survives
        q.insert(5, Some(past)); // expired, Complete → survives
        q.start_committing(2);
        q.mark_complete(5);
        assert_eq!(q.reap_expired(now), vec![1]);
        assert_eq!(q.state_of(1), None);
        assert_eq!(q.state_of(2), Some(EntryState::Committing));
        assert_eq!(q.len(), 4);
    }

    #[test]
    fn reap_returns_oldest_first_and_unblocks_drain() {
        let now = Instant::now();
        let past = now - std::time::Duration::from_millis(1);
        let mut q = VcQueue::new();
        q.insert(1, Some(past));
        q.insert(2, Some(past));
        q.insert(3, None);
        q.mark_complete(3);
        assert_eq!(q.drain_completed(), None); // pinned by stalled 1, 2
        assert_eq!(q.reap_expired(now), vec![1, 2]);
        assert_eq!(q.drain_completed(), Some(3)); // vtnc advances again
    }
}
