//! Engine-side durability: the commit log and recovery bookkeeping.
//!
//! The storage crate owns the WAL *format* ([`mvcc_storage::wal`]); this
//! module owns its *integration with the commit protocol*. The single
//! load-bearing rule, enforced by where [`CcContext::log_commit`]
//! (`crate::cc_api::CcContext::log_commit`) is called inside every
//! protocol's commit:
//!
//! > A transaction's commit record is appended (and, under
//! > `FsyncPolicy::Always`, synced) **after** its `start_complete` claim
//! > fixes its fate and **before** its updates are applied to the store
//! > or `VCcomplete` makes it visible.
//!
//! Consequences:
//!
//! * Nothing visible is ever lost *ahead of* something invisible: if
//!   transaction `B` read `A`'s writes, `A`'s record precedes `B`'s in
//!   the file (A appended before applying; B read only after A applied;
//!   B appends after its reads). A byte-prefix of the log — which is all
//!   a crash can leave — is therefore closed under read-from
//!   dependencies, i.e. transaction-consistent.
//! * A WAL append failure can still abort the transaction cleanly
//!   (`AbortReason::LogFailed`): no update has touched the store, and
//!   the claimed queue entry is released with `vc.discard(tn)`.
//!
//! [`CommitLog`] is the shared handle: one mutex serializes appenders,
//! which also makes file order well-defined. [`RecoveryStats`] reports
//! what `MvDatabase::recover` rebuilt.

use crate::metrics::Metrics;
use mvcc_model::ObjectId;
use mvcc_storage::wal::{AppendInfo, FsyncPolicy, WalWriter};
use mvcc_storage::Value;
use parking_lot::Mutex;
use std::io;
use std::sync::atomic::Ordering;
use std::sync::Arc;

/// A checkpoint destination that can attest durability.
///
/// `MvDatabase::checkpoint_and_rotate` must not rotate the write-ahead
/// log (destroying every record the checkpoint absorbs) until the
/// checkpoint bytes are on stable storage — otherwise a crash in the
/// window loses both the records and the snapshot that replaced them.
/// A plain `io::Write` cannot attest that, so rotation requires this
/// trait: [`sync`](Self::sync) is called after the checkpoint is
/// written and **before** the log rotates.
pub trait CheckpointSink: io::Write {
    /// Make every byte written so far durable (the `fsync` barrier
    /// between checkpoint and rotation).
    fn sync(&mut self) -> io::Result<()>;
}

impl CheckpointSink for std::fs::File {
    fn sync(&mut self) -> io::Result<()> {
        self.sync_data()
    }
}

impl CheckpointSink for io::BufWriter<std::fs::File> {
    fn sync(&mut self) -> io::Result<()> {
        io::Write::flush(self)?;
        self.get_ref().sync_data()
    }
}

/// In-memory checkpoints (tests, experiments) are "durable" the moment
/// the bytes land.
impl CheckpointSink for Vec<u8> {
    fn sync(&mut self) -> io::Result<()> {
        Ok(())
    }
}

/// The engine's shared write-ahead log handle. Cloned into every
/// protocol context; appends serialize on the internal mutex (file
/// order = append order, the property the consistency argument needs).
pub struct CommitLog {
    writer: Mutex<WalWriter>,
    metrics: Arc<Metrics>,
}

impl CommitLog {
    /// Wrap a writer; `metrics` receives the `wal_*` counters.
    pub fn new(writer: WalWriter, metrics: Arc<Metrics>) -> Self {
        CommitLog {
            writer: Mutex::new(writer),
            metrics,
        }
    }

    /// Append one commit record under the log mutex, applying the
    /// configured fsync policy. Counters: `wal_appends`, `wal_bytes`,
    /// `wal_syncs`.
    pub fn append(&self, tn: u64, writes: &[(ObjectId, Value)]) -> io::Result<AppendInfo> {
        let info = self.writer.lock().append_commit(tn, writes)?;
        self.metrics.wal_appends.fetch_add(1, Ordering::Relaxed);
        self.metrics
            .wal_bytes
            .fetch_add(info.bytes as u64, Ordering::Relaxed);
        if info.synced {
            self.metrics.wal_syncs.fetch_add(1, Ordering::Relaxed);
        }
        Ok(info)
    }

    /// Force a sync (flush a group-commit batch, orderly shutdown).
    pub fn sync(&self) -> io::Result<()> {
        self.writer.lock().sync()?;
        self.metrics.wal_syncs.fetch_add(1, Ordering::Relaxed);
        Ok(())
    }

    /// Rotate the log after a checkpoint consistent at `watermark`:
    /// every record with `tn ≤ watermark` is dropped (the checkpoint
    /// covers it), the rest are rewritten. Returns `(dropped, kept)`.
    pub fn rotate(&self, watermark: u64) -> io::Result<(usize, usize)> {
        let result = self.writer.lock().rotate(watermark)?;
        self.metrics.wal_rotations.fetch_add(1, Ordering::Relaxed);
        Ok(result)
    }

    /// The configured fsync policy.
    pub fn policy(&self) -> FsyncPolicy {
        self.writer.lock().policy()
    }

    /// Records currently in the log (since the last rotation).
    pub fn live_records(&self) -> usize {
        self.writer.lock().live_records()
    }

    /// Bytes appended to the log so far (header included).
    pub fn offset(&self) -> u64 {
        self.writer.lock().offset()
    }

    /// Frame bytes appended but not yet synced (the durability backlog;
    /// zero under [`FsyncPolicy::Always`]). The `wal_backlog_bytes`
    /// gauge.
    pub fn backlog_bytes(&self) -> u64 {
        self.writer.lock().backlog_bytes()
    }
}

/// What [`crate::MvDatabase::recover`] rebuilt, for assertions and the
/// E14 report.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RecoveryStats {
    /// Watermark of the restored checkpoint (0 if none).
    pub checkpoint_watermark: u64,
    /// WAL records applied to the store (`tn >` watermark).
    pub replayed: usize,
    /// WAL records skipped because the checkpoint already covered them.
    pub skipped: usize,
    /// Highest transaction number in the recovered state; the resumed
    /// counters satisfy `tnc = last_tn + 1 > vtnc = last_tn`.
    pub last_tn: u64,
    /// Whether the log ended exactly at a frame boundary.
    pub clean_end: bool,
    /// Bytes discarded after the last intact frame (torn tail).
    pub torn_bytes: usize,
}

#[cfg(test)]
mod tests {
    use super::*;
    use mvcc_storage::wal::{scan, MemWal};

    #[test]
    fn commit_log_counts_appends_and_syncs() {
        let metrics = Arc::new(Metrics::new());
        let mem = MemWal::new();
        let writer = WalWriter::create(Box::new(mem.clone()), FsyncPolicy::EveryN(2)).unwrap();
        let log = CommitLog::new(writer, Arc::clone(&metrics));
        for tn in 1..=5u64 {
            log.append(tn, &[(ObjectId(0), Value::from_u64(tn))])
                .unwrap();
        }
        let snap = metrics.snapshot();
        assert_eq!(snap.wal_appends, 5);
        assert_eq!(snap.wal_syncs, 2, "every-2 policy: 5 appends, 2 syncs");
        assert!(snap.wal_bytes > 0);
        let (records, _) = scan(&mem.bytes()).unwrap();
        assert_eq!(records.len(), 5);
    }

    #[test]
    fn rotate_counts_and_drops() {
        let metrics = Arc::new(Metrics::new());
        let mem = MemWal::new();
        let writer = WalWriter::create(Box::new(mem.clone()), FsyncPolicy::Always).unwrap();
        let log = CommitLog::new(writer, Arc::clone(&metrics));
        for tn in 1..=4u64 {
            log.append(tn, &[(ObjectId(0), Value::from_u64(tn))])
                .unwrap();
        }
        assert_eq!(log.rotate(3).unwrap(), (3, 1));
        assert_eq!(metrics.snapshot().wal_rotations, 1);
        assert_eq!(log.live_records(), 1);
    }
}
