//! Rectifications for *delayed visibility* (paper Section 6).
//!
//! The one cost of the version-control mechanism is that a read-only
//! transaction sees the database as of `vtnc`, which can lag behind the
//! newest commits while older transactions are still active. The paper
//! names two remedies, both implemented here:
//!
//! 1. **Temporal rectification** — "this problem can be rectified by
//!    ensuring that `R` be executed with a value of `sn(R)` which is at
//!    least as large as `tn(T)`": [`CurrencyMode::AtLeast`] waits for
//!    `vtnc ≥ tn` before starting, and [`Session`] automates it for
//!    read-your-writes ordering within one client session.
//! 2. **Pseudo read-write execution** — "such transactions can be dealt
//!    with by executing them as pseudo read-write transactions":
//!    [`LatestTxn`] wraps a read-write transaction that is only allowed to
//!    read, paying full concurrency-control cost in exchange for currency.

use crate::cc_api::ConcurrencyControl;
use crate::db::MvDatabase;
use crate::error::DbError;
use crate::txn::{RoTxn, RwTxn};
use mvcc_model::ObjectId;
use mvcc_storage::Value;
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Duration;

/// How current a read-only transaction's snapshot must be.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CurrencyMode {
    /// Plain `VCstart()` snapshot — may lag (the default of Figure 2).
    Snapshot,
    /// Wait until `vtnc ≥ tn`, guaranteeing transaction `tn`'s updates
    /// (and those of everything serialized before it) are visible.
    AtLeast(u64),
    /// Observe the most recent state by running as a pseudo read-write
    /// transaction.
    Latest,
}

/// A pseudo read-write transaction that can only read (Section 6's
/// currency escape hatch). It is synchronized by the concurrency-control
/// protocol like any read-write transaction, so it always observes the
/// most recent committed state — and, unlike a true read-only transaction,
/// it can block, be blocked, and abort.
pub struct LatestTxn<'db, C: ConcurrencyControl> {
    inner: RwTxn<'db, C>,
}

impl<'db, C: ConcurrencyControl> LatestTxn<'db, C> {
    pub(crate) fn new(inner: RwTxn<'db, C>) -> Self {
        LatestTxn { inner }
    }

    /// Read the current value of `obj` under full concurrency control.
    pub fn read(&mut self, obj: ObjectId) -> Result<Value, DbError> {
        self.inner.read(obj)
    }

    /// Read and decode as `u64`.
    pub fn read_u64(&mut self, obj: ObjectId) -> Result<Option<u64>, DbError> {
        self.inner.read_u64(obj)
    }

    /// Finish. Commit is what releases protocol resources (e.g. read
    /// locks under 2PL); a read-set-only transaction always passes
    /// validation-style protocols. Returns the transaction number.
    pub fn finish(self) -> Result<u64, DbError> {
        self.inner.commit()
    }
}

/// A client session providing *monotonic reads* and *read-your-writes*
/// across transactions: read-only transactions started through the
/// session wait until everything the session previously committed (or
/// observed) is visible.
pub struct Session<'db, C: ConcurrencyControl> {
    db: &'db MvDatabase<C>,
    /// Highest transaction number this session must observe.
    high_water: AtomicU64,
    /// Bound on visibility waits.
    timeout: Duration,
}

impl<'db, C: ConcurrencyControl> Session<'db, C> {
    /// New session against `db` with the given visibility-wait bound.
    pub fn new(db: &'db MvDatabase<C>, timeout: Duration) -> Self {
        Session {
            db,
            high_water: AtomicU64::new(0),
            timeout,
        }
    }

    /// Current high-water mark (largest `tn` this session depends on).
    pub fn high_water(&self) -> u64 {
        self.high_water.load(Ordering::Acquire)
    }

    /// Raise the high-water mark (e.g. after observing a foreign commit).
    pub fn observe(&self, tn: u64) {
        self.high_water.fetch_max(tn, Ordering::AcqRel);
    }

    /// Begin a read-only transaction that sees all of this session's
    /// prior writes (paper's first rectification).
    pub fn begin_read_only(&self) -> Result<RoTxn<'db>, DbError> {
        let hw = self.high_water();
        self.db
            .begin_read_only_with(CurrencyMode::AtLeast(hw), self.timeout)
    }

    /// Run a read-write transaction through the session, recording its
    /// transaction number as the new high-water mark.
    pub fn run_rw<R>(
        &self,
        max_attempts: u32,
        body: impl FnMut(&mut RwTxn<'_, C>) -> Result<R, DbError>,
    ) -> Result<(u64, R), DbError> {
        let (tn, r) = self.db.run_rw(max_attempts, body)?;
        self.observe(tn);
        Ok((tn, r))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::db::MvDatabase;
    use crate::error::DbError;
    use mvcc_storage::Value;

    // Minimal single-threaded protocol for exercising the currency paths
    // without pulling in mvcc-cc (a dev-dependency cycle).
    struct MiniCc;
    struct MiniTxn {
        tn: u64,
        writes: Vec<(ObjectId, Value)>,
    }
    impl ConcurrencyControl for MiniCc {
        type Txn = MiniTxn;
        fn name(&self) -> &'static str {
            "mini"
        }
        fn begin(&self, ctx: &crate::cc_api::CcContext) -> Result<MiniTxn, DbError> {
            Ok(MiniTxn {
                tn: ctx.vc.register(),
                writes: Vec::new(),
            })
        }
        fn read(
            &self,
            ctx: &crate::cc_api::CcContext,
            txn: &mut MiniTxn,
            obj: ObjectId,
        ) -> Result<(u64, Value), DbError> {
            if let Some((_, v)) = txn.writes.iter().rev().find(|(o, _)| *o == obj) {
                return Ok((u64::MAX, v.clone()));
            }
            Ok(ctx.store.read_latest(obj))
        }
        fn write(
            &self,
            _ctx: &crate::cc_api::CcContext,
            txn: &mut MiniTxn,
            obj: ObjectId,
            value: Value,
        ) -> Result<(), DbError> {
            txn.writes.push((obj, value));
            Ok(())
        }
        fn commit(&self, ctx: &crate::cc_api::CcContext, txn: MiniTxn) -> Result<u64, DbError> {
            for (obj, v) in &txn.writes {
                ctx.store
                    .with(*obj, |c| c.insert_committed(txn.tn, v.clone()))
                    .map_err(|e| DbError::Internal(e.to_string()))?;
            }
            ctx.vc.complete(txn.tn);
            Ok(txn.tn)
        }
        fn abort(&self, ctx: &crate::cc_api::CcContext, txn: MiniTxn) {
            ctx.vc.discard(txn.tn);
        }
    }

    fn db() -> MvDatabase<MiniCc> {
        MvDatabase::new(MiniCc)
    }

    #[test]
    fn snapshot_mode_equals_plain_begin() {
        let db = db();
        db.run_rw(1, |t| t.write(ObjectId(0), Value::from_u64(1)))
            .unwrap();
        let r = db
            .begin_read_only_with(CurrencyMode::Snapshot, Duration::from_secs(1))
            .unwrap();
        assert_eq!(r.sn(), db.vc().vtnc());
    }

    #[test]
    fn at_least_waits_and_times_out() {
        let db = db();
        // tn 1 stays active → AtLeast(1) cannot be satisfied
        let pending = db.begin_read_write().unwrap();
        let err = db
            .begin_read_only_with(CurrencyMode::AtLeast(1), Duration::from_millis(20))
            .unwrap_err();
        assert!(matches!(err, DbError::Aborted(_)));
        pending.commit().unwrap();
        let r = db
            .begin_read_only_with(CurrencyMode::AtLeast(1), Duration::from_millis(20))
            .unwrap();
        assert!(r.sn() >= 1);
    }

    #[test]
    fn latest_mode_rejected_on_ro_entry() {
        let db = db();
        let err = db
            .begin_read_only_with(CurrencyMode::Latest, Duration::from_secs(1))
            .unwrap_err();
        assert!(matches!(err, DbError::Internal(_)));
    }

    #[test]
    fn latest_txn_reads_pending_currency() {
        let db = db();
        db.run_rw(1, |t| t.write(ObjectId(0), Value::from_u64(5)))
            .unwrap();
        // Straggler pins vtnc below the next commit.
        let straggler = db.begin_read_write().unwrap();
        db.run_rw(1, |t| t.write(ObjectId(0), Value::from_u64(6)))
            .unwrap();
        // Plain snapshot lags; Latest sees the newest committed value.
        let mut snap = db.begin_read_only();
        assert_eq!(snap.read_u64(ObjectId(0)).unwrap(), Some(5));
        let mut latest = db.begin_latest_read().unwrap();
        assert_eq!(latest.read_u64(ObjectId(0)).unwrap(), Some(6));
        latest.finish().unwrap();
        straggler.commit().unwrap();
    }

    #[test]
    fn session_observe_raises_high_water() {
        let db = db();
        let session = Session::new(&db, Duration::from_secs(1));
        assert_eq!(session.high_water(), 0);
        session.observe(5);
        session.observe(3); // max semantics
        assert_eq!(session.high_water(), 5);
    }

    #[test]
    fn session_read_your_writes() {
        let db = db();
        let session = Session::new(&db, Duration::from_secs(1));
        let (tn, ()) = session
            .run_rw(1, |t| t.write(ObjectId(7), Value::from_u64(42)))
            .unwrap();
        assert_eq!(session.high_water(), tn);
        let mut r = session.begin_read_only().unwrap();
        assert_eq!(r.read_u64(ObjectId(7)).unwrap(), Some(42));
    }
}
