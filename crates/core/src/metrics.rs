//! Engine and protocol counters.
//!
//! The counter that carries the paper's headline claim is
//! [`Metrics::ro_sync_actions`]: synchronization actions performed **on
//! behalf of read-only transactions**. Under version control it stays at
//! exactly one per transaction (the `VCstart` load); the baselines
//! (Reed's MVTO, Chan's MV2PL) accumulate r-ts updates, blocking waits,
//! and completed-transaction-list scans here. Experiment E5 reports it.

use std::sync::atomic::{AtomicU64, Ordering};

macro_rules! metrics {
    ($(#[$sm:meta] $snap:ident)? ; $( $(#[$m:meta])* $name:ident ),+ $(,)?) => {
        /// Live atomic counters. Cheap to bump from any thread.
        #[derive(Default)]
        pub struct Metrics {
            $( $(#[$m])* pub $name: AtomicU64, )+
        }

        /// A point-in-time copy of every counter.
        #[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
        pub struct MetricsSnapshot {
            $( $(#[$m])* pub $name: u64, )+
        }

        impl Metrics {
            /// Fresh zeroed counters.
            pub fn new() -> Self {
                Self::default()
            }

            /// Copy every counter.
            pub fn snapshot(&self) -> MetricsSnapshot {
                MetricsSnapshot {
                    $( $name: self.$name.load(Ordering::Relaxed), )+
                }
            }

            /// Reset every counter to zero.
            pub fn reset(&self) {
                $( self.$name.store(0, Ordering::Relaxed); )+
            }
        }

        impl MetricsSnapshot {
            /// Per-field difference (`self − earlier`), saturating.
            pub fn delta(&self, earlier: &MetricsSnapshot) -> MetricsSnapshot {
                MetricsSnapshot {
                    $( $name: self.$name.saturating_sub(earlier.$name), )+
                }
            }

            /// Every counter as a `(name, value)` pair, in declaration
            /// order — the exporters and `--metrics-json` iterate this so
            /// new counters are picked up without touching them.
            pub fn fields(&self) -> Vec<(&'static str, u64)> {
                vec![ $( (stringify!($name), self.$name), )+ ]
            }
        }
    };
}

metrics! { ;
    /// Read-only transactions begun.
    ro_begun,
    /// Read-only transactions finished.
    ro_finished,
    /// Reads served to read-only transactions.
    ro_reads,
    /// Read-only reads that failed because GC pruned the version.
    ro_pruned_reads,
    /// Synchronization actions charged to read-only transactions
    /// (`VCstart` counts as one; baselines add their own).
    ro_sync_actions,
    /// Times a read-only operation blocked (zero under version control).
    ro_blocks,
    /// Read-only transactions aborted (zero under version control).
    ro_aborts,
    /// Read-write transactions begun.
    rw_begun,
    /// Read-write transactions committed.
    rw_committed,
    /// Read-write transactions aborted.
    rw_aborted,
    /// Aborts caused by a timestamp conflict.
    aborts_ts_conflict,
    /// Aborts caused by deadlock victimization.
    aborts_deadlock,
    /// Aborts caused by failed optimistic validation.
    aborts_validation,
    /// Aborts caused by wait timeouts.
    aborts_timeout,
    /// Aborts whose root cause was interference from a read-only
    /// transaction (possible in Reed's MVTO; impossible under VC).
    aborts_due_to_ro,
    /// Synchronization actions by read-write transactions (lock
    /// acquisitions, timestamp checks, validations).
    rw_sync_actions,
    /// Times a read-write operation blocked waiting.
    rw_blocks,
    /// `VCstart` invocations.
    vc_start_calls,
    /// `VCregister` invocations.
    vc_register_calls,
    /// `VCcomplete` invocations.
    vc_complete_calls,
    /// `VCdiscard` invocations.
    vc_discard_calls,
    /// Aborts caused by a baseline protocol conflict.
    aborts_baseline,
    /// Aborts requested by the application.
    aborts_user,
    /// Aborts forced by the stall reaper (`start_complete` claim failed).
    aborts_reaped,
    /// Read-write transaction retries performed by the retry runner.
    rw_retries,
    /// Retries whose triggering abort was a timestamp conflict.
    retries_ts_conflict,
    /// Retries whose triggering abort was a deadlock.
    retries_deadlock,
    /// Retries whose triggering abort was a failed validation.
    retries_validation,
    /// Retries whose triggering abort was a wait timeout.
    retries_timeout,
    /// Retries whose triggering abort was a baseline conflict.
    retries_baseline,
    /// Retries whose triggering abort was a reaper force-discard.
    retries_reaped,
    /// Registrations force-discarded by the stall reaper.
    reaper_force_discards,
    /// Commit records appended to the write-ahead log.
    wal_appends,
    /// Frame bytes appended to the write-ahead log.
    wal_bytes,
    /// WAL sink syncs (`Always`: one per commit; `EveryN`: one per batch).
    wal_syncs,
    /// WAL rotations performed by checkpoints.
    wal_rotations,
    /// Aborts caused by a failed WAL append (disk fault).
    aborts_wal,
    /// Lock requests that found their lock-table shard contended or had
    /// to block for a conflicting holder (2PL; sharding lowers it).
    lock_shard_waits,
    /// Nanoseconds threads spent blocked on the `VersionControl` inner
    /// mutex (contended acquisitions only; uncontended takes are free).
    vc_lock_wait_ns,
    /// Contended acquisitions of GC snapshot-registry slots (stays 0
    /// when slots ≥ worker threads).
    gc_slot_contention,
    /// Read-write transactions admitted by the admission controller.
    admitted_rw,
    /// Read-only transactions admitted by the admission controller.
    admitted_ro,
    /// Read-write begins refused (token, AIMD limit, quota, or ladder).
    shed_rw,
    /// Read-only begins refused on the `RejectRo` ladder rung.
    shed_ro,
    /// Degradation-ladder rung transitions (either direction).
    pressure_transitions,
    /// Aborts caused by admission-control shedding.
    aborts_shed,
    /// Aborts caused by an expired deadline budget.
    aborts_deadline,
    /// Aborts caused by memory-pressure rejection.
    aborts_mem_pressure,
    /// Watermark folds run by the decentralized VC sequencer (0 under
    /// the centralized one).
    vc_epoch_folds,
    /// Transaction-number blocks carved by the decentralized VC
    /// sequencer (0 under the centralized one).
    vc_blocks_allocated,
    /// Nanoseconds spent inside decentralized-VC watermark scans (0
    /// under the centralized one).
    vc_watermark_scan_ns,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn snapshot_copies_counters() {
        let m = Metrics::new();
        m.ro_begun.fetch_add(3, Ordering::Relaxed);
        m.rw_committed.fetch_add(2, Ordering::Relaxed);
        let s = m.snapshot();
        assert_eq!(s.ro_begun, 3);
        assert_eq!(s.rw_committed, 2);
        assert_eq!(s.rw_aborted, 0);
    }

    #[test]
    fn delta_subtracts_fieldwise() {
        let m = Metrics::new();
        m.ro_reads.fetch_add(10, Ordering::Relaxed);
        let a = m.snapshot();
        m.ro_reads.fetch_add(5, Ordering::Relaxed);
        m.rw_begun.fetch_add(1, Ordering::Relaxed);
        let b = m.snapshot();
        let d = b.delta(&a);
        assert_eq!(d.ro_reads, 5);
        assert_eq!(d.rw_begun, 1);
        assert_eq!(d.ro_begun, 0);
    }

    #[test]
    fn fields_cover_every_counter_in_order() {
        let m = Metrics::new();
        m.ro_begun.fetch_add(4, Ordering::Relaxed);
        m.vc_watermark_scan_ns.fetch_add(9, Ordering::Relaxed);
        let fields = m.snapshot().fields();
        assert_eq!(fields.first(), Some(&("ro_begun", 4)));
        assert_eq!(fields.last(), Some(&("vc_watermark_scan_ns", 9)));
        // No duplicate names.
        let names: std::collections::HashSet<_> = fields.iter().map(|(n, _)| *n).collect();
        assert_eq!(names.len(), fields.len());
    }

    #[test]
    fn reset_zeroes() {
        let m = Metrics::new();
        m.vc_start_calls.fetch_add(7, Ordering::Relaxed);
        m.reset();
        assert_eq!(m.snapshot(), MetricsSnapshot::default());
    }
}
