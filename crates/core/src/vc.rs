//! The `VersionControl` module — paper Figure 1, thread-safe.
//!
//! Two counters and (logically) a queue:
//!
//! * `tnc` (*transaction number counter*) — the next number to hand out.
//!   **Transaction Ordering Property**: at all times `tnc` is the smallest
//!   number such that every unassigned or future transaction `T` will get
//!   `tn(T) ≥ tnc`.
//! * `vtnc` (*visible transaction number counter*) — controls what
//!   read-only transactions may see. **Transaction Visibility Property**:
//!   at all times `vtnc` is the largest number such that every transaction
//!   `T` with `tn(T) ≤ vtnc` has completed.
//! * `VCQueue` — registered transactions that are still active or waiting
//!   for an older transaction to complete.
//!
//! The paper additionally requires `vtnc < tnc` at all times. Counters
//! start at `vtnc = 0` (the initializing pseudo-transaction `T_0` has
//! completed by definition) and `tnc = 1`.
//!
//! `VCstart` is deliberately a **single atomic load**: the claim that
//! read-only transactions have "almost negligible overhead" (Section 4.2)
//! is made structural here — the read-only path takes no lock and touches
//! no concurrency-control state.
//!
//! One refinement over the paper's pseudocode: `VCdiscard` also drains
//! visibility. Figure 1 drains only in `VCcomplete`, so an abort of the
//! oldest registered transaction would leave already-complete younger
//! transactions invisible until the *next* completion. Draining on discard
//! preserves the Visibility Property exactly ("the visibility is delayed
//! only for active and unaborted transactions", Section 4.3).
//!
//! # Two engines, one surface
//!
//! [`VersionControl`] is a facade over two interchangeable sequencers
//! (selected by [`crate::DbConfig::centralized_vc`], decentralized by
//! default):
//!
//! * the **centralized** engine ([`CentralVc`], the original design):
//!   one mutex guards `tnc` and a [`VcQueue`]; every register/complete
//!   funnels through it. Kept for A/B experiments (E18) and as the
//!   differential-testing oracle.
//! * the **decentralized** engine ([`crate::vc_dec`], DESIGN.md §15):
//!   per-thread transaction-number *blocks* carved from one `fetch_add`,
//!   lock-free state transitions on padded per-entry atomics, and a
//!   scan-based `vtnc` watermark folded on the completing thread once per
//!   epoch. Because numbers are no longer handed out in real-time order,
//!   protocols publish their conflict floors through
//!   [`VersionControl::register_after`] so number order still embeds
//!   conflict order (the serializability requirement the paper gets for
//!   free from the global lock).

use crate::clock::SharedClock;
use crate::obs::{DumpContext, EventKind, FlightTrigger, Obs, VcView, VcWaitPointMap, WaitPoint};
use crate::vc_dec::DecentralVc;
use crate::vcqueue::VcQueue;
use parking_lot::{Condvar, Mutex, MutexGuard};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, OnceLock};
use std::time::{Duration, Instant};

/// Decentralized-sequencer counters, surfaced as engine metrics
/// (`vc_epoch_folds`, `vc_blocks_allocated`, `vc_watermark_scan_ns`).
/// All zero when the centralized engine is selected.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct VcStats {
    /// Watermark folds executed (each fold is ≥ 1 scan of the slot
    /// registry + entry states).
    pub epoch_folds: u64,
    /// Transaction-number blocks carved from the shared block counter.
    pub blocks_allocated: u64,
    /// Total nanoseconds spent inside watermark scans (attached-clock
    /// time, so deterministic under the simulator).
    pub watermark_scan_ns: u64,
}

/// Block until `*vtnc ≥ tn`, parking on `cv` under `mu`, with the timeout
/// decided **solely** by comparing the clock against the deadline — never
/// by the condvar's own wall-clock timeout.
///
/// With no clock attached (or a real one) the wait parks precisely until
/// the deadline or a visibility notify — no periodic wakeups. A
/// *simulated* clock's deadline may lie in the real future, so a real
/// condvar cannot park until it; that case parks in short real-time
/// slices and re-reads virtual time on every wake, so a run that
/// advances virtual time past the deadline observes the timeout on the
/// next slice boundary, making replayed visibility waits byte-stable.
///
/// Zero timeout is a fail-fast poll that never parks (the path simulated
/// runs use exclusively, see DESIGN.md §13).
///
/// Shared by both local engines and `mvcc-dist`'s site sequencer; public
/// for that reuse, not part of the supported API surface.
#[doc(hidden)]
pub fn wait_visible_with(
    vtnc: &AtomicU64,
    mu: &Mutex<()>,
    cv: &Condvar,
    clock: Option<&SharedClock>,
    tn: u64,
    timeout: Duration,
) -> Option<u64> {
    let now = || match clock {
        Some(c) => c.now(),
        None => Instant::now(),
    };
    if timeout.is_zero() {
        let v = vtnc.load(Ordering::Acquire);
        return (v >= tn).then_some(v);
    }
    let deadline = now() + timeout;
    let sliced = clock.is_some_and(|c| c.is_simulated());
    let mut guard = mu.lock();
    loop {
        let v = vtnc.load(Ordering::Acquire);
        if v >= tn {
            return Some(v);
        }
        let t = now();
        if t >= deadline {
            let v = vtnc.load(Ordering::Acquire);
            return (v >= tn).then_some(v);
        }
        if sliced {
            let slice = deadline
                .saturating_duration_since(t)
                .min(Duration::from_millis(25));
            let _ = cv.wait_for(&mut guard, slice);
        } else {
            let _ = cv.wait_until(&mut guard, deadline);
        }
    }
}

struct VcInner {
    /// Next transaction number to assign. Paper's `tnc` with
    /// post-increment semantics (`tn(T) ← tnc++`).
    tnc: u64,
    queue: VcQueue,
    /// Registration time-to-live: how long a registered transaction may
    /// stay `Active` before the stall reaper may force-discard it.
    /// `None` (the default) disables reaping entirely.
    register_ttl: Option<Duration>,
}

/// The centralized sequencer: one mutex around `tnc` + [`VcQueue`]. The
/// original thread-safe rendering of paper Figure 1, kept constructible
/// behind [`VersionControl::centralized`] as the A/B baseline and the
/// differential-testing oracle for the decentralized engine.
pub(crate) struct CentralVc {
    inner: Mutex<VcInner>,
    /// Mirror of the current `vtnc`, readable without the lock.
    vtnc: AtomicU64,
    /// Signalled whenever `vtnc` advances (used by the Section 6
    /// rectification [`VersionControl::wait_visible`]).
    visible_cv: Condvar,
    /// Companion mutex for `visible_cv` waits. Lock order: never taken
    /// while `inner` is held — the visibility broadcast happens *after*
    /// the inner critical section (see [`Self::notify_visible`]), so the
    /// two mutexes are never nested.
    visible_mu: Mutex<()>,
    /// Times `inner` was found held by another thread.
    lock_waits: AtomicU64,
    /// Nanoseconds spent blocked on `inner` (only on contended paths).
    lock_wait_ns: AtomicU64,
    /// Observability hub, attached once by the owning engine context.
    /// Unattached (unit tests, standalone use) costs one `OnceLock` load
    /// per operation; attached-but-disabled adds one relaxed bool load.
    obs: OnceLock<Arc<Obs>>,
    /// Time source for TTL deadlines, head ages, and wait bounds.
    /// Attached once by the owning engine context; unattached falls back
    /// to wall-clock `Instant::now`.
    clock: OnceLock<SharedClock>,
}

impl CentralVc {
    fn resumed(vtnc: u64) -> Self {
        CentralVc {
            inner: Mutex::new(VcInner {
                tnc: vtnc + 1,
                queue: VcQueue::new(),
                register_ttl: None,
            }),
            vtnc: AtomicU64::new(vtnc),
            visible_cv: Condvar::new(),
            visible_mu: Mutex::new(()),
            lock_waits: AtomicU64::new(0),
            lock_wait_ns: AtomicU64::new(0),
            obs: OnceLock::new(),
            clock: OnceLock::new(),
        }
    }

    fn attach_obs(&self, obs: Arc<Obs>) -> Arc<Obs> {
        self.obs.get_or_init(|| obs).clone()
    }

    /// The attached hub, only when event recording is on — the gate every
    /// instrumentation point in this module goes through.
    #[inline]
    fn obs_on(&self) -> Option<&Obs> {
        match self.obs.get() {
            Some(o) if o.on() => Some(o),
            _ => None,
        }
    }

    fn attach_clock(&self, clock: SharedClock) {
        let _ = self.clock.set(clock);
    }

    /// The current instant from the attached clock (wall clock when
    /// nothing is attached).
    #[inline]
    fn now(&self) -> Instant {
        match self.clock.get() {
            Some(c) => c.now(),
            None => Instant::now(),
        }
    }

    /// Take the inner mutex, accounting contended acquisitions. The
    /// uncontended path is a single `try_lock` — no timing syscalls.
    fn inner(&self) -> MutexGuard<'_, VcInner> {
        if let Some(g) = self.inner.try_lock() {
            return g;
        }
        let started = Instant::now();
        let g = self.inner.lock();
        self.lock_waits.fetch_add(1, Ordering::Relaxed);
        self.lock_wait_ns
            .fetch_add(started.elapsed().as_nanos() as u64, Ordering::Relaxed);
        g
    }

    fn contention(&self) -> (u64, u64) {
        (
            self.lock_waits.load(Ordering::Relaxed),
            self.lock_wait_ns.load(Ordering::Relaxed),
        )
    }

    fn reset_contention(&self) {
        self.lock_waits.store(0, Ordering::Relaxed);
        self.lock_wait_ns.store(0, Ordering::Relaxed);
    }

    fn set_register_ttl(&self, ttl: Option<Duration>) {
        self.inner().register_ttl = ttl;
    }

    fn register_ttl(&self) -> Option<Duration> {
        self.inner().register_ttl
    }

    #[inline]
    fn start(&self) -> u64 {
        self.vtnc.load(Ordering::Acquire)
    }

    fn register(&self) -> u64 {
        let obs = self.obs_on();
        // The register→complete residency histogram is a sampled phase
        // like the other hot-path histograms: an unsampled registration
        // skips the stamp — and its clock read, which would otherwise sit
        // inside this lock (and, under OCC, inside the validation
        // critical section) — entirely. Reaper deadlines still stamp
        // every entry, so `head_age` stays exact for reaper users.
        let stamp = obs.is_some_and(|o| o.phase_sample());
        let tn = {
            let mut inner = self.inner();
            let tn = inner.tnc;
            inner.tnc += 1;
            // Read the clock only when someone consumes the stamp (the
            // reaper's deadline or the register→complete histogram).
            let now = (inner.register_ttl.is_some() || stamp).then(|| self.now());
            let deadline = match (inner.register_ttl, now) {
                (Some(ttl), Some(now)) => Some(now + ttl),
                _ => None,
            };
            inner.queue.insert_at(tn, deadline, now);
            tn
        };
        if let Some(o) = obs {
            o.emit(EventKind::Register, tn, 0);
        }
        // Open the VCQueue-residency span when the calling thread is
        // tracing (one TLS read otherwise). Closed by complete/discard/
        // reap — possibly from another thread.
        crate::obs::trace::vc_register(tn);
        tn
    }

    fn start_complete(&self, tn: u64) -> bool {
        self.inner().queue.start_committing(tn)
    }

    fn discard(&self, tn: u64) -> bool {
        let obs = self.obs_on();
        let (removed, advanced, vtnc_before) = {
            let mut inner = self.inner();
            let vtnc_before = self.vtnc.load(Ordering::Acquire);
            let removed = inner.queue.discard(tn);
            let advanced = removed && self.drain_locked(&mut inner);
            (removed, advanced, vtnc_before)
        };
        if advanced {
            self.notify_visible();
        }
        if let Some(o) = obs {
            if removed {
                let vtnc = self.vtnc.load(Ordering::Acquire);
                o.emit(EventKind::Discard, tn, vtnc);
                if advanced {
                    o.emit(EventKind::VtncAdvance, vtnc, vtnc_before);
                }
                o.tracer().close_vc_any(tn, 1);
            }
        }
        removed
    }

    fn reap(&self) -> Vec<u64> {
        let now = self.now();
        let (reaped, advanced) = {
            let mut inner = self.inner();
            let reaped = inner.queue.reap_expired(now);
            let advanced = !reaped.is_empty() && self.drain_locked(&mut inner);
            (reaped, advanced)
        };
        if advanced {
            self.notify_visible();
        }
        if !reaped.is_empty() {
            if let Some(o) = self.obs_on() {
                let vtnc = self.vtnc.load(Ordering::Acquire);
                o.emit(EventKind::ReaperFire, reaped.len() as u64, vtnc);
                for &tn in &reaped {
                    o.tracer().close_vc_any(tn, 2);
                }
            }
        }
        reaped
    }

    fn complete(&self, tn: u64) -> u64 {
        let obs = self.obs_on();
        let (advanced, vtnc_before, registered_at) = {
            let mut inner = self.inner();
            let vtnc_before = self.vtnc.load(Ordering::Acquire);
            // Only registrations whose stamp survived the sampling draw
            // (see `register`) carry a timestamp; the rest skip the
            // clock read and histogram record below entirely.
            let registered_at = if obs.is_some() {
                inner.queue.registered_at(tn)
            } else {
                None
            };
            let marked = inner.queue.mark_complete(tn);
            debug_assert!(marked, "VCcomplete for unregistered tn {tn}");
            (self.drain_locked(&mut inner), vtnc_before, registered_at)
        };
        if advanced {
            self.notify_visible();
        }
        let vtnc = self.vtnc.load(Ordering::Acquire);
        if let Some(o) = obs {
            if let Some(at) = registered_at {
                o.phases()
                    .register_to_complete
                    .record(self.now().saturating_duration_since(at));
            }
            o.emit(EventKind::Complete, tn, vtnc);
            if advanced {
                o.emit(EventKind::VtncAdvance, vtnc, vtnc_before);
            }
            o.tracer().close_vc_any(tn, 0);
        }
        vtnc
    }

    /// Pop every completed head entry and publish the new `vtnc` — one
    /// atomic store no matter how many entries drained (the batching that
    /// keeps the critical section short when a slow head transaction
    /// finally completes and releases a long completed suffix).
    ///
    /// Runs under the inner mutex but performs **no side effects beyond
    /// the store**: the visibility broadcast, metrics, and reaper
    /// bookkeeping all happen outside the lock (callers invoke
    /// [`Self::notify_visible`] after releasing it).
    fn drain_locked(&self, inner: &mut VcInner) -> bool {
        match inner.queue.drain_completed() {
            Some(new_vtnc) => {
                debug_assert!(new_vtnc < inner.tnc);
                self.vtnc.store(new_vtnc, Ordering::Release);
                true
            }
            None => false,
        }
    }

    /// Broadcast a `vtnc` advance to [`VersionControl::wait_visible`]
    /// waiters. Takes the waiters' mutex before notifying — a waiter
    /// between its vtnc check and its park would otherwise miss the
    /// wakeup — but never while `inner` is held, so waiter wakeups cannot
    /// extend the version-control critical section.
    fn notify_visible(&self) {
        let _waiters = self.visible_mu.lock();
        self.visible_cv.notify_all();
    }

    fn vtnc(&self) -> u64 {
        self.vtnc.load(Ordering::Acquire)
    }

    fn tnc(&self) -> u64 {
        self.inner().tnc
    }

    fn lag(&self) -> u64 {
        let inner = self.inner();
        (inner.tnc - 1).saturating_sub(self.vtnc.load(Ordering::Acquire))
    }

    fn queue_len(&self) -> usize {
        self.inner().queue.len()
    }

    fn view(&self) -> VcView {
        let inner = self.inner();
        VcView {
            tnc: inner.tnc - 1, // last assigned number
            vtnc: self.vtnc.load(Ordering::Acquire),
            queue_depth: inner.queue.len() as u64,
            head_tn: inner.queue.head_tn(),
            head_age_us: inner
                .queue
                .head_age(self.now())
                .map(|d| d.as_micros() as u64),
        }
    }

    fn wait_visible(&self, tn: u64, timeout: Duration) -> Option<u64> {
        // Blame instrumentation: only when attribution is on AND the wait
        // will actually block — the satisfied fast path stays untouched.
        let attr = if self.vtnc.load(Ordering::Acquire) < tn {
            self.obs.get().and_then(|o| o.attr().cloned())
        } else {
            None
        };
        let wait = attr.as_ref().map(|_| {
            // The blocker is whatever pins the queue head at wait start.
            (self.inner().queue.head_tn().unwrap_or(0), self.now())
        });
        let res = wait_visible_with(
            &self.vtnc,
            &self.visible_mu,
            &self.visible_cv,
            self.clock.get(),
            tn,
            timeout,
        );
        if let (Some(attr), Some((blocker, started))) = (attr, wait) {
            let ns = self.now().saturating_duration_since(started).as_nanos() as u64;
            attr.blame()
                .record(WaitPoint::VisibilityWait, tn, blocker, ns);
        }
        res
    }

    fn validate(&self) -> Result<(), String> {
        let res = {
            let inner = self.inner();
            let vtnc = self.vtnc.load(Ordering::Acquire);
            if vtnc >= inner.tnc {
                Err(format!("vtnc {} >= tnc {}", vtnc, inner.tnc))
            } else if inner.queue.head_tn().is_some_and(|head| head <= vtnc) {
                Err(format!(
                    "queued tn {} <= vtnc {vtnc}",
                    inner.queue.head_tn().unwrap_or(0)
                ))
            } else {
                Ok(())
            }
        };
        if let Err(msg) = &res {
            // Invariant violations are flight-recorder triggers regardless
            // of whether event recording is on.
            if let Some(o) = self.obs.get() {
                o.dump(
                    FlightTrigger::InvariantViolation,
                    &DumpContext {
                        detail: msg.clone(),
                        vc: Some(self.view()),
                        ..Default::default()
                    },
                );
            }
        }
        res
    }
}

enum Imp {
    Central(CentralVc),
    Dec(DecentralVc),
}

/// Thread-safe implementation of paper Figure 1 — a facade over the
/// centralized and decentralized sequencers (see module docs).
///
/// ```
/// use mvcc_core::VersionControl;
///
/// let vc = VersionControl::new();
/// let t1 = vc.register();            // VCregister: serial position fixed
/// let t2 = vc.register();
/// assert_eq!(vc.start(), 0);         // VCstart: nothing visible yet
///
/// vc.complete(t2);                   // out-of-order completion...
/// assert_eq!(vc.start(), 0);         // ...stays invisible behind t1
/// vc.complete(t1);
/// assert_eq!(vc.start(), 2);         // both become visible at once
/// ```
pub struct VersionControl {
    imp: Imp,
}

impl Default for VersionControl {
    fn default() -> Self {
        Self::new()
    }
}

impl VersionControl {
    /// Fresh counters: `vtnc = 0`, `tnc = 1`. Decentralized engine with
    /// the default tuning ([`crate::DbConfig`]'s `vc_block_tns = 16`,
    /// `vc_epoch_ops = 1`, `vc_gap_grace = 32`).
    pub fn new() -> Self {
        Self::resumed(0)
    }

    /// Counters resumed from a checkpoint consistent at `vtnc`: every
    /// number `≤ vtnc` is treated as completed, and the next assignment
    /// is `vtnc + 1`.
    pub fn resumed(vtnc: u64) -> Self {
        VersionControl {
            imp: Imp::Dec(DecentralVc::resumed(vtnc, 16, 1, 32)),
        }
    }

    /// The legacy centralized sequencer (fresh counters). A/B baseline
    /// and differential-testing oracle.
    pub fn centralized() -> Self {
        Self::centralized_resumed(0)
    }

    /// The legacy centralized sequencer resumed at `vtnc`.
    pub fn centralized_resumed(vtnc: u64) -> Self {
        VersionControl {
            imp: Imp::Central(CentralVc::resumed(vtnc)),
        }
    }

    /// Build the sequencer selected by `cfg` (fresh counters).
    pub fn from_config(cfg: &crate::DbConfig) -> Self {
        Self::resumed_from_config(0, cfg)
    }

    /// Build the sequencer selected by `cfg`, resumed at `vtnc`.
    pub fn resumed_from_config(vtnc: u64, cfg: &crate::DbConfig) -> Self {
        if cfg.centralized_vc {
            Self::centralized_resumed(vtnc)
        } else {
            VersionControl {
                imp: Imp::Dec(DecentralVc::resumed(
                    vtnc,
                    cfg.vc_block_tns,
                    cfg.vc_epoch_ops,
                    cfg.vc_gap_grace,
                )),
            }
        }
    }

    /// `true` when the legacy centralized engine is behind the facade.
    pub fn is_centralized(&self) -> bool {
        matches!(self.imp, Imp::Central(_))
    }

    /// `true` when protocols must publish conflict floors (reader
    /// timestamps on read-locked objects, see
    /// [`register_after`](Self::register_after)) for number order to
    /// embed conflict order. The centralized engine assigns numbers in
    /// real-time order under one lock, so floors are implicit there.
    #[inline]
    pub fn needs_floor_stamps(&self) -> bool {
        matches!(self.imp, Imp::Dec(_))
    }

    /// Attach the observability hub. First attachment wins (restore paths
    /// may rebuild a context around an existing instance); the effective
    /// hub is returned so the caller can share exactly it.
    pub fn attach_obs(&self, obs: Arc<Obs>) -> Arc<Obs> {
        match &self.imp {
            Imp::Central(c) => c.attach_obs(obs),
            Imp::Dec(d) => d.attach_obs(obs),
        }
    }

    /// Attach the time source. First attachment wins, mirroring
    /// [`attach_obs`](Self::attach_obs).
    pub fn attach_clock(&self, clock: SharedClock) {
        match &self.imp {
            Imp::Central(c) => c.attach_clock(clock),
            Imp::Dec(d) => d.attach_clock(clock),
        }
    }

    /// `(contended acquisitions, nanoseconds blocked)` on the sequencer
    /// lock since construction or the last [`reset_contention`]
    /// (surfaced as `vc_lock_wait_ns` in `mvcc-core`'s metrics). Always
    /// `(0, 0)` for the decentralized engine — its hot paths take no
    /// lock, which is the point.
    ///
    /// [`reset_contention`]: Self::reset_contention
    pub fn contention(&self) -> (u64, u64) {
        match &self.imp {
            Imp::Central(c) => c.contention(),
            Imp::Dec(_) => (0, 0),
        }
    }

    /// Zero the contention counters — and, for the decentralized engine,
    /// the [`vc_stats`](Self::vc_stats) counters (between experiment
    /// phases).
    pub fn reset_contention(&self) {
        match &self.imp {
            Imp::Central(c) => c.reset_contention(),
            Imp::Dec(d) => d.reset_stats(),
        }
    }

    /// Decentralized-engine counters (zeros under the centralized one).
    pub fn vc_stats(&self) -> VcStats {
        match &self.imp {
            Imp::Central(_) => VcStats::default(),
            Imp::Dec(d) => d.stats(),
        }
    }

    /// Set (or clear) the registration TTL used for future
    /// [`register`](Self::register) calls. `None` disables the reaper.
    pub fn set_register_ttl(&self, ttl: Option<Duration>) {
        match &self.imp {
            Imp::Central(c) => c.set_register_ttl(ttl),
            Imp::Dec(d) => d.set_register_ttl(ttl),
        }
    }

    /// The current registration TTL.
    pub fn register_ttl(&self) -> Option<Duration> {
        match &self.imp {
            Imp::Central(c) => c.register_ttl(),
            Imp::Dec(d) => d.register_ttl(),
        }
    }

    /// `VCstart()`: the start number for a read-only transaction — the
    /// current `vtnc`. Lock-free; this is the *entire* synchronization a
    /// read-only transaction performs.
    #[inline]
    pub fn start(&self) -> u64 {
        match &self.imp {
            Imp::Central(c) => c.start(),
            Imp::Dec(d) => d.start(),
        }
    }

    /// `VCregister(T, "active")`: assign the next transaction number and
    /// enqueue. Called by the concurrency-control protocol at the moment
    /// `T`'s serial order is determined (begin under TO, lock point under
    /// 2PL, validation under OCC).
    ///
    /// Successive `register` calls observe strictly increasing numbers in
    /// the real-time order of the calls, on both engines — the
    /// decentralized one chains an internal issue floor through
    /// [`register_after`](Self::register_after) to keep this contract for
    /// callers (baselines, recovery) that rely on it.
    pub fn register(&self) -> u64 {
        match &self.imp {
            Imp::Central(c) => c.register(),
            Imp::Dec(d) => d.register(),
        }
    }

    /// `VCregister` with an explicit **conflict floor**: returns a
    /// transaction number strictly greater than `floor` (and than the
    /// current `vtnc`). The protocol passes the largest transaction
    /// number it conflicts with — every version it read or overwrites,
    /// every recorded reader of those versions
    /// ([`mvcc_storage` `order_floor`]) — so that transaction-number
    /// order embeds conflict order even though the decentralized engine
    /// hands out numbers from per-thread blocks rather than a single
    /// real-time sequence.
    ///
    /// On the centralized engine this is exactly [`register`]
    /// (Self::register): the global lock already orders every assignment
    /// after every in-flight floor.
    ///
    /// [`register`]: Self::register
    pub fn register_after(&self, floor: u64) -> u64 {
        match &self.imp {
            Imp::Central(c) => {
                // One lock hands out numbers in call order, so any floor a
                // caller could have observed is already below `tnc`.
                debug_assert!(floor < c.tnc(), "floor {floor} >= tnc");
                c.register()
            }
            Imp::Dec(d) => d.register_after(floor),
        }
    }

    /// Claim `tn` for commit: transition its entry from `Active` to
    /// `Committing`, shielding it from the stall reaper. A protocol MUST
    /// claim successfully **before** applying any database updates
    /// (promoting pendings to committed versions); on `false` it must
    /// abort instead — the entry was already force-discarded by
    /// [`reap`](Self::reap) (or discarded/completed through another
    /// path), so its writes must never become visible.
    ///
    /// This claim is what makes the reaper safe: the reaper only discards
    /// `Active` entries, so reaped ⇒ never claimed ⇒ no updates applied.
    pub fn start_complete(&self, tn: u64) -> bool {
        match &self.imp {
            Imp::Central(c) => c.start_complete(tn),
            Imp::Dec(d) => d.start_complete(tn),
        }
    }

    /// `VCdiscard(T)`: remove an aborted transaction. Also drains
    /// visibility (see module docs). Returns `false` if `tn` was not
    /// registered (or already completed).
    pub fn discard(&self, tn: u64) -> bool {
        match &self.imp {
            Imp::Central(c) => c.discard(tn),
            Imp::Dec(d) => d.discard(tn),
        }
    }

    /// The stall reaper: force-`VCdiscard` every `Active` entry whose
    /// registration deadline has passed. Returns the reaped transaction
    /// numbers (oldest first) and drains visibility, so a single stalled
    /// client can pin `vtnc` for at most one TTL.
    ///
    /// # Safety argument
    ///
    /// Reaping `tn` is an abort forced by version control. It is safe —
    /// `tn`'s updates can never become visible — because every protocol
    /// must claim the entry via [`start_complete`](Self::start_complete)
    /// (which fails after a reap) *before* applying database updates.
    /// Conversely the reaper never touches `Committing` or `Complete`
    /// entries, so it can never discard a transaction whose updates may
    /// already be in the store. The losing side of the race always finds
    /// out: either the commit claims first (reaper skips it) or the reaper
    /// discards first (claim returns `false` and the commit aborts).
    ///
    /// Note this only removes the *version-control* entry. The caller
    /// (e.g. [`crate::MvDatabase::reap_stalled`]) is responsible for
    /// accounting; the stalled transaction's pending versions and locks,
    /// if any, are reclaimed separately by read/lock wait timeouts.
    pub fn reap(&self) -> Vec<u64> {
        match &self.imp {
            Imp::Central(c) => c.reap(),
            Imp::Dec(d) => d.reap(),
        }
    }

    /// `VCcomplete(T)`: mark `tn` complete and advance `vtnc` over every
    /// contiguously-finished prefix. Returns the new `vtnc`.
    ///
    /// Must be called **after** the transaction's database updates are
    /// applied (paper Figure 3/4: "perform database updates; …;
    /// VCcomplete(T)") — advancing visibility first would let a read-only
    /// transaction with the new start number miss the updates.
    pub fn complete(&self, tn: u64) -> u64 {
        match &self.imp {
            Imp::Central(c) => c.complete(tn),
            Imp::Dec(d) => d.complete(tn),
        }
    }

    /// Current `vtnc` (same as [`start`](Self::start)).
    pub fn vtnc(&self) -> u64 {
        match &self.imp {
            Imp::Central(c) => c.vtnc(),
            Imp::Dec(d) => d.vtnc(),
        }
    }

    /// Current `tnc` (next number to assign — for the decentralized
    /// engine, one past the highest number assigned so far).
    pub fn tnc(&self) -> u64 {
        match &self.imp {
            Imp::Central(c) => c.tnc(),
            Imp::Dec(d) => d.tnc(),
        }
    }

    /// The visibility lag: how many assigned transaction numbers are not
    /// yet visible (`(tnc − 1) − vtnc`). Zero means a read-only
    /// transaction starting now sees every assigned transaction.
    pub fn lag(&self) -> u64 {
        match &self.imp {
            Imp::Central(c) => c.lag(),
            Imp::Dec(d) => d.lag(),
        }
    }

    /// Number of registered, not-yet-finished transactions.
    pub fn queue_len(&self) -> usize {
        match &self.imp {
            Imp::Central(c) => c.queue_len(),
            Imp::Dec(d) => d.queue_len(),
        }
    }

    /// One-shot snapshot of the whole version-control state, for gauges
    /// and flight-recorder dumps.
    pub fn view(&self) -> VcView {
        match &self.imp {
            Imp::Central(c) => c.view(),
            Imp::Dec(d) => d.view(),
        }
    }

    /// The decentralized-VC wait-point map: per-thread watermark lag,
    /// in-flight counts, block occupancy, and the current walk blocker.
    /// `None` under the centralized engine — its queue-centric gauges
    /// ([`VcView`]) cover that case.
    pub fn wait_points(&self) -> Option<VcWaitPointMap> {
        match &self.imp {
            Imp::Central(_) => None,
            Imp::Dec(d) => Some(d.wait_points()),
        }
    }

    /// Section 6 rectification: block until `vtnc ≥ tn` (so a read-only
    /// transaction started afterwards is guaranteed to see `tn`'s
    /// updates). Returns the satisfying `vtnc`, or `None` on timeout.
    /// The timeout is measured on the attached clock (see
    /// [`wait_visible_with`]), so simulated waits replay byte-stable.
    pub fn wait_visible(&self, tn: u64, timeout: Duration) -> Option<u64> {
        match &self.imp {
            Imp::Central(c) => c.wait_visible(tn, timeout),
            Imp::Dec(d) => d.wait_visible(tn, timeout),
        }
    }

    /// Check both counter properties; used by tests after every step.
    ///
    /// Returns an error description if an invariant is violated.
    pub fn validate(&self) -> Result<(), String> {
        match &self.imp {
            Imp::Central(c) => c.validate(),
            Imp::Dec(d) => d.validate(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;
    use std::thread;

    /// Run a deterministic scenario against both engines.
    fn on_both(f: impl Fn(VersionControl)) {
        f(VersionControl::new());
        f(VersionControl::centralized());
    }

    #[test]
    fn fresh_counters() {
        on_both(|vc| {
            assert_eq!(vc.start(), 0);
            assert_eq!(vc.vtnc(), 0);
            assert_eq!(vc.tnc(), 1);
            assert_eq!(vc.lag(), 0);
            vc.validate().unwrap();
        });
    }

    #[test]
    fn register_assigns_monotone_numbers() {
        on_both(|vc| {
            assert_eq!(vc.register(), 1);
            assert_eq!(vc.register(), 2);
            assert_eq!(vc.register(), 3);
            assert_eq!(vc.tnc(), 4);
            assert_eq!(vc.vtnc(), 0); // nothing completed yet
            assert_eq!(vc.lag(), 3);
            vc.validate().unwrap();
        });
    }

    #[test]
    fn in_order_completion_advances_vtnc() {
        on_both(|vc| {
            let t1 = vc.register();
            let t2 = vc.register();
            assert_eq!(vc.complete(t1), 1);
            assert_eq!(vc.start(), 1);
            assert_eq!(vc.complete(t2), 2);
            assert_eq!(vc.start(), 2);
            assert_eq!(vc.lag(), 0);
            vc.validate().unwrap();
        });
    }

    #[test]
    fn out_of_order_completion_delays_vtnc() {
        // The central scenario: T2 finishes first; its updates must stay
        // invisible until T1 completes, else a read-only transaction could
        // see T2 but later T1 commits "into its past".
        on_both(|vc| {
            let t1 = vc.register();
            let t2 = vc.register();
            assert_eq!(vc.complete(t2), 0); // vtnc unchanged
            assert_eq!(vc.start(), 0);
            assert_eq!(vc.complete(t1), 2); // both become visible at once
            assert_eq!(vc.start(), 2);
            vc.validate().unwrap();
        });
    }

    #[test]
    fn discard_releases_blocked_visibility() {
        on_both(|vc| {
            let t1 = vc.register();
            let t2 = vc.register();
            vc.complete(t2);
            assert_eq!(vc.vtnc(), 0);
            assert!(vc.discard(t1)); // T1 aborts → T2 becomes visible now
            assert_eq!(vc.vtnc(), 2);
            vc.validate().unwrap();
        });
    }

    #[test]
    fn discard_unregistered_is_false() {
        on_both(|vc| {
            assert!(!vc.discard(7));
        });
    }

    #[test]
    fn aborted_numbers_leave_gaps_in_vtnc() {
        on_both(|vc| {
            let t1 = vc.register();
            let t2 = vc.register();
            vc.discard(t1);
            vc.complete(t2);
            // vtnc = 2: number 1 was never completed, but it was discarded,
            // so "all transactions with tn ≤ 2 have completed" holds
            // vacuously for the aborted one (its versions are destroyed).
            assert_eq!(vc.vtnc(), 2);
            vc.validate().unwrap();
        });
    }

    #[test]
    fn wait_visible_immediate_and_blocking() {
        let vc = Arc::new(VersionControl::new());
        let t1 = vc.register();
        vc.complete(t1);
        assert_eq!(vc.wait_visible(1, Duration::from_millis(1)), Some(1));

        let t2 = vc.register();
        let vc2 = Arc::clone(&vc);
        let waiter = thread::spawn(move || vc2.wait_visible(t2, Duration::from_secs(5)));
        thread::sleep(Duration::from_millis(20));
        vc.complete(t2);
        assert_eq!(waiter.join().unwrap(), Some(2));
    }

    #[test]
    fn wait_visible_times_out() {
        on_both(|vc| {
            vc.register(); // never completes
            assert_eq!(vc.wait_visible(1, Duration::from_millis(20)), None);
        });
    }

    #[test]
    fn concurrent_register_complete_stress() {
        for vc in [VersionControl::new(), VersionControl::centralized()] {
            let vc = Arc::new(vc);
            let mut handles = Vec::new();
            for _ in 0..8 {
                let vc = Arc::clone(&vc);
                handles.push(thread::spawn(move || {
                    for i in 0..500 {
                        let tn = vc.register();
                        if i % 7 == 0 {
                            vc.discard(tn);
                        } else {
                            vc.complete(tn);
                        }
                        vc.validate().unwrap();
                    }
                }));
            }
            for h in handles {
                h.join().unwrap();
            }
            // Everything completed or discarded → full visibility.
            assert_eq!(vc.queue_len(), 0);
            assert_eq!(vc.lag(), 0);
            assert_eq!(vc.vtnc(), vc.tnc() - 1);
        }
    }

    #[test]
    fn reap_is_a_noop_without_ttl() {
        on_both(|vc| {
            vc.register();
            std::thread::sleep(Duration::from_millis(2));
            assert!(vc.reap().is_empty());
            assert_eq!(vc.queue_len(), 1);
        });
    }

    #[test]
    fn reaper_unpins_vtnc_after_ttl() {
        on_both(|vc| {
            vc.set_register_ttl(Some(Duration::from_millis(5)));
            let t1 = vc.register(); // will stall
            let t2 = vc.register();
            vc.complete(t2);
            assert_eq!(vc.vtnc(), 0); // pinned by stalled t1
            thread::sleep(Duration::from_millis(10));
            assert_eq!(vc.reap(), vec![t1]);
            assert_eq!(vc.vtnc(), 2); // t2 becomes visible
            vc.validate().unwrap();
        });
    }

    #[test]
    fn claimed_transactions_survive_the_reaper() {
        on_both(|vc| {
            vc.set_register_ttl(Some(Duration::from_millis(1)));
            let t1 = vc.register();
            assert!(vc.start_complete(t1)); // commit path claims in time
            thread::sleep(Duration::from_millis(5));
            assert!(vc.reap().is_empty());
            assert_eq!(vc.complete(t1), 1);
            vc.validate().unwrap();
        });
    }

    #[test]
    fn claim_after_reap_fails() {
        on_both(|vc| {
            vc.set_register_ttl(Some(Duration::from_millis(1)));
            let t1 = vc.register();
            thread::sleep(Duration::from_millis(5));
            assert_eq!(vc.reap(), vec![t1]);
            // The stalled client wakes up and tries to commit: it must
            // lose.
            assert!(!vc.start_complete(t1));
            vc.validate().unwrap();
        });
    }

    #[test]
    fn obs_events_and_phase_histogram() {
        use crate::obs::{EventKind as K, Obs, ObsConfig};
        for vc in [VersionControl::new(), VersionControl::centralized()] {
            // shift 0: capture every event so the exact sequence is
            // assertable
            let obs = vc.attach_obs(Arc::new(Obs::new(
                &ObsConfig::default().with_events(true).with_sample_shift(0),
            )));
            let t1 = vc.register();
            let t2 = vc.register();
            vc.complete(t2); // head still active → no advance
            vc.discard(t1); // unblocks → vtnc advances to 2
            let kinds: Vec<K> = obs.events().recent(64).iter().map(|e| e.kind).collect();
            assert_eq!(
                kinds,
                vec![
                    K::Register,
                    K::Register,
                    K::Complete,
                    K::Discard,
                    K::VtncAdvance
                ]
            );
            assert_eq!(obs.phases().snapshot().register_to_complete.count(), 1);
            let view = vc.view();
            assert_eq!(view.tnc, 2);
            assert_eq!(view.vtnc, 2);
            assert_eq!(view.queue_depth, 0);
            assert_eq!(view.vtnc_lag(), 0);
        }
    }

    #[test]
    fn unattached_or_disabled_obs_costs_nothing_observable() {
        use crate::obs::{Obs, ObsConfig};
        on_both(|vc| {
            let tn = vc.register();
            vc.complete(tn); // no obs attached: must not panic or stamp
            let obs = vc.attach_obs(Arc::new(Obs::new(&ObsConfig::default())));
            let tn = vc.register();
            vc.complete(tn);
            assert_eq!(obs.events().emitted(), 0);
            assert_eq!(obs.phases().snapshot().register_to_complete.count(), 0);
        });
    }

    #[test]
    fn visibility_property_holds_under_interleaving() {
        // Randomized-ish interleaving with explicit bookkeeping: at every
        // step, all tns ≤ vtnc must be completed or discarded.
        on_both(|vc| {
            let mut live: Vec<u64> = Vec::new();
            let mut finished: std::collections::BTreeSet<u64> = std::collections::BTreeSet::new();
            for step in 0u64..200 {
                if step % 3 == 0 || live.is_empty() {
                    live.push(vc.register());
                } else {
                    // complete or discard a pseudo-random live txn
                    let idx = (step as usize * 7) % live.len();
                    let tn = live.swap_remove(idx);
                    if step % 5 == 0 {
                        vc.discard(tn);
                    } else {
                        vc.complete(tn);
                    }
                    finished.insert(tn);
                }
                let vtnc = vc.vtnc();
                for &tn in &live {
                    assert!(
                        tn > vtnc,
                        "live tn {tn} <= vtnc {vtnc} violates visibility property"
                    );
                }
                vc.validate().unwrap();
            }
        });
    }

    #[test]
    fn config_selects_engine() {
        let cfg = crate::DbConfig::default();
        assert!(!VersionControl::from_config(&cfg).is_centralized());
        let cfg = cfg.with_centralized_vc(true);
        let vc = VersionControl::resumed_from_config(41, &cfg);
        assert!(vc.is_centralized());
        assert!(!vc.needs_floor_stamps());
        assert_eq!(vc.vtnc(), 41);
        assert_eq!(vc.register(), 42);
        assert_eq!(vc.vc_stats(), VcStats::default());
    }

    #[test]
    fn register_after_orders_above_floor() {
        on_both(|vc| {
            let t1 = vc.register();
            let t2 = vc.register_after(t1);
            assert!(t2 > t1);
            vc.complete(t1);
            vc.complete(t2);
            assert_eq!(vc.vtnc(), vc.tnc() - 1);
            vc.validate().unwrap();
        });
    }

    #[test]
    fn differential_engines_agree_on_scripted_history() {
        // Drive both engines through the same seeded single-threaded
        // script of register/complete/discard and demand identical
        // externally observable state after every step. On one thread the
        // decentralized engine draws numbers sequentially from its block,
        // so even the assigned tns must match the centralized counter.
        use crate::clock::{SimRng, SplitMixRng};
        for seed in [7u64, 99, 1234] {
            let rng = SplitMixRng::new(seed);
            let central = VersionControl::centralized();
            // Tiny blocks + epoch_ops 1 exercise block turnover and
            // immediate folds; the script stays oblivious.
            let dec = {
                let cfg = crate::DbConfig::default()
                    .with_vc_block_tns(3)
                    .with_vc_epoch_ops(1);
                VersionControl::from_config(&cfg)
            };
            let mut live: Vec<u64> = Vec::new();
            for _ in 0..400 {
                let roll = rng.next_below(10);
                if roll < 4 || live.is_empty() {
                    let a = central.register();
                    let b = dec.register();
                    assert_eq!(a, b, "seed {seed}: tn assignment diverged");
                    live.push(a);
                } else {
                    let idx = rng.next_below(live.len() as u64) as usize;
                    let tn = live.swap_remove(idx);
                    if roll < 6 {
                        assert_eq!(central.discard(tn), dec.discard(tn));
                    } else {
                        central.complete(tn);
                        dec.complete(tn);
                    }
                }
                assert_eq!(central.vtnc(), dec.vtnc(), "seed {seed}: vtnc diverged");
                assert_eq!(central.tnc(), dec.tnc(), "seed {seed}: tnc diverged");
                assert_eq!(central.lag(), dec.lag(), "seed {seed}: lag diverged");
                central.validate().unwrap();
                dec.validate().unwrap();
            }
            for tn in live {
                central.complete(tn);
                dec.complete(tn);
            }
            assert_eq!(central.vtnc(), dec.vtnc());
            assert_eq!(central.queue_len(), 0);
            assert_eq!(dec.queue_len(), 0);
        }
    }

    #[test]
    fn wait_visible_deadline_follows_shared_clock() {
        // With a simulated clock the timeout is decided purely by virtual
        // time: real time passing must not expire the wait, and advancing
        // the virtual clock must.
        use crate::clock::SimClock;
        let sim = SimClock::new();
        let vc = Arc::new(VersionControl::new());
        vc.attach_clock(sim.clone() as crate::clock::SharedClock);
        let tn = vc.register();

        // Waiter with a 5ms *virtual* deadline; the clock stays frozen,
        // so 40ms of real time cannot time it out.
        let vc2 = Arc::clone(&vc);
        let waiter = thread::spawn(move || vc2.wait_visible(tn, Duration::from_millis(5)));
        thread::sleep(Duration::from_millis(40));
        assert!(!waiter.is_finished(), "frozen sim clock must not expire");
        vc.complete(tn);
        assert_eq!(waiter.join().unwrap(), Some(tn));

        // Second waiter: advance virtual time past the deadline; the
        // helper re-reads the clock on each park slice and gives up.
        let t2 = vc.register();
        let vc2 = Arc::clone(&vc);
        let waiter = thread::spawn(move || vc2.wait_visible(t2, Duration::from_millis(5)));
        thread::sleep(Duration::from_millis(10));
        sim.advance(Duration::from_millis(6));
        assert_eq!(waiter.join().unwrap(), None);
        vc.complete(t2);
    }
}
