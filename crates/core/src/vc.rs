//! The `VersionControl` module — paper Figure 1, thread-safe.
//!
//! Two counters and a queue:
//!
//! * `tnc` (*transaction number counter*) — the next number to hand out.
//!   **Transaction Ordering Property**: at all times `tnc` is the smallest
//!   number such that every unassigned or future transaction `T` will get
//!   `tn(T) ≥ tnc`.
//! * `vtnc` (*visible transaction number counter*) — controls what
//!   read-only transactions may see. **Transaction Visibility Property**:
//!   at all times `vtnc` is the largest number such that every transaction
//!   `T` with `tn(T) ≤ vtnc` has completed.
//! * `VCQueue` — registered transactions that are still active or waiting
//!   for an older transaction to complete.
//!
//! The paper additionally requires `vtnc < tnc` at all times. Counters
//! start at `vtnc = 0` (the initializing pseudo-transaction `T_0` has
//! completed by definition) and `tnc = 1`.
//!
//! `VCstart` is deliberately a **single atomic load**: the claim that
//! read-only transactions have "almost negligible overhead" (Section 4.2)
//! is made structural here — the read-only path takes no lock and touches
//! no concurrency-control state.
//!
//! One refinement over the paper's pseudocode: `VCdiscard` also drains the
//! queue head. Figure 1 drains only in `VCcomplete`, so an abort of the
//! oldest registered transaction would leave already-complete younger
//! transactions invisible until the *next* completion. Draining on discard
//! preserves the Visibility Property exactly ("the visibility is delayed
//! only for active and unaborted transactions", Section 4.3).

use crate::clock::SharedClock;
use crate::obs::{DumpContext, EventKind, FlightTrigger, Obs, VcView};
use crate::vcqueue::VcQueue;
use parking_lot::{Condvar, Mutex, MutexGuard};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, OnceLock};
use std::time::{Duration, Instant};

struct VcInner {
    /// Next transaction number to assign. Paper's `tnc` with
    /// post-increment semantics (`tn(T) ← tnc++`).
    tnc: u64,
    queue: VcQueue,
    /// Registration time-to-live: how long a registered transaction may
    /// stay `Active` before the stall reaper may force-discard it.
    /// `None` (the default) disables reaping entirely.
    register_ttl: Option<Duration>,
}

/// Thread-safe implementation of paper Figure 1.
///
/// ```
/// use mvcc_core::VersionControl;
///
/// let vc = VersionControl::new();
/// let t1 = vc.register();            // VCregister: serial position fixed
/// let t2 = vc.register();
/// assert_eq!(vc.start(), 0);         // VCstart: nothing visible yet
///
/// vc.complete(t2);                   // out-of-order completion...
/// assert_eq!(vc.start(), 0);         // ...stays invisible behind t1
/// vc.complete(t1);
/// assert_eq!(vc.start(), 2);         // both become visible at once
/// ```
pub struct VersionControl {
    inner: Mutex<VcInner>,
    /// Mirror of the current `vtnc`, readable without the lock.
    vtnc: AtomicU64,
    /// Signalled whenever `vtnc` advances (used by the Section 6
    /// rectification [`VersionControl::wait_visible`]).
    visible_cv: Condvar,
    /// Companion mutex for `visible_cv` waits. Lock order: never taken
    /// while `inner` is held — the visibility broadcast happens *after*
    /// the inner critical section (see [`Self::notify_visible`]), so the
    /// two mutexes are never nested.
    visible_mu: Mutex<()>,
    /// Times `inner` was found held by another thread.
    lock_waits: AtomicU64,
    /// Nanoseconds spent blocked on `inner` (only on contended paths).
    lock_wait_ns: AtomicU64,
    /// Observability hub, attached once by the owning engine context.
    /// Unattached (unit tests, standalone use) costs one `OnceLock` load
    /// per operation; attached-but-disabled adds one relaxed bool load.
    obs: OnceLock<Arc<Obs>>,
    /// Time source for TTL deadlines, head ages, and wait bounds.
    /// Attached once by the owning engine context; unattached falls back
    /// to wall-clock `Instant::now`.
    clock: OnceLock<SharedClock>,
}

impl Default for VersionControl {
    fn default() -> Self {
        Self::new()
    }
}

impl VersionControl {
    /// Fresh counters: `vtnc = 0`, `tnc = 1`, empty queue.
    pub fn new() -> Self {
        Self::resumed(0)
    }

    /// Counters resumed from a checkpoint consistent at `vtnc`: every
    /// number `≤ vtnc` is treated as completed, and the next assignment
    /// is `vtnc + 1`.
    pub fn resumed(vtnc: u64) -> Self {
        VersionControl {
            inner: Mutex::new(VcInner {
                tnc: vtnc + 1,
                queue: VcQueue::new(),
                register_ttl: None,
            }),
            vtnc: AtomicU64::new(vtnc),
            visible_cv: Condvar::new(),
            visible_mu: Mutex::new(()),
            lock_waits: AtomicU64::new(0),
            lock_wait_ns: AtomicU64::new(0),
            obs: OnceLock::new(),
            clock: OnceLock::new(),
        }
    }

    /// Attach the observability hub. First attachment wins (restore paths
    /// may rebuild a context around an existing instance); the effective
    /// hub is returned so the caller can share exactly it.
    pub fn attach_obs(&self, obs: Arc<Obs>) -> Arc<Obs> {
        self.obs.get_or_init(|| obs).clone()
    }

    /// The attached hub, only when event recording is on — the gate every
    /// instrumentation point in this module goes through.
    #[inline]
    fn obs_on(&self) -> Option<&Obs> {
        match self.obs.get() {
            Some(o) if o.on() => Some(o),
            _ => None,
        }
    }

    /// Attach the time source. First attachment wins, mirroring
    /// [`attach_obs`](Self::attach_obs).
    pub fn attach_clock(&self, clock: SharedClock) {
        let _ = self.clock.set(clock);
    }

    /// The current instant from the attached clock (wall clock when
    /// nothing is attached).
    #[inline]
    fn now(&self) -> Instant {
        match self.clock.get() {
            Some(c) => c.now(),
            None => Instant::now(),
        }
    }

    /// Take the inner mutex, accounting contended acquisitions. The
    /// uncontended path is a single `try_lock` — no timing syscalls.
    fn inner(&self) -> MutexGuard<'_, VcInner> {
        if let Some(g) = self.inner.try_lock() {
            return g;
        }
        let started = Instant::now();
        let g = self.inner.lock();
        self.lock_waits.fetch_add(1, Ordering::Relaxed);
        self.lock_wait_ns
            .fetch_add(started.elapsed().as_nanos() as u64, Ordering::Relaxed);
        g
    }

    /// `(contended acquisitions, nanoseconds blocked)` on the inner
    /// mutex since construction or the last [`reset_contention`]
    /// (surfaced as `vc_lock_wait_ns` in `mvcc-core`'s metrics).
    pub fn contention(&self) -> (u64, u64) {
        (
            self.lock_waits.load(Ordering::Relaxed),
            self.lock_wait_ns.load(Ordering::Relaxed),
        )
    }

    /// Zero the contention counters (between experiment phases).
    pub fn reset_contention(&self) {
        self.lock_waits.store(0, Ordering::Relaxed);
        self.lock_wait_ns.store(0, Ordering::Relaxed);
    }

    /// Set (or clear) the registration TTL used for future
    /// [`register`](Self::register) calls. `None` disables the reaper.
    pub fn set_register_ttl(&self, ttl: Option<Duration>) {
        self.inner().register_ttl = ttl;
    }

    /// The current registration TTL.
    pub fn register_ttl(&self) -> Option<Duration> {
        self.inner().register_ttl
    }

    /// `VCstart()`: the start number for a read-only transaction — the
    /// current `vtnc`. Lock-free; this is the *entire* synchronization a
    /// read-only transaction performs.
    #[inline]
    pub fn start(&self) -> u64 {
        self.vtnc.load(Ordering::Acquire)
    }

    /// `VCregister(T, "active")`: assign the next transaction number and
    /// enqueue. Called by the concurrency-control protocol at the moment
    /// `T`'s serial order is determined (begin under TO, lock point under
    /// 2PL, validation under OCC).
    pub fn register(&self) -> u64 {
        let obs = self.obs_on();
        // The register→complete residency histogram is a sampled phase
        // like the other hot-path histograms: an unsampled registration
        // skips the stamp — and its clock read, which would otherwise sit
        // inside this lock (and, under OCC, inside the validation
        // critical section) — entirely. Reaper deadlines still stamp
        // every entry, so `head_age` stays exact for reaper users.
        let stamp = obs.is_some_and(|o| o.phase_sample());
        let tn = {
            let mut inner = self.inner();
            let tn = inner.tnc;
            inner.tnc += 1;
            // Read the clock only when someone consumes the stamp (the
            // reaper's deadline or the register→complete histogram).
            let now = (inner.register_ttl.is_some() || stamp).then(|| self.now());
            let deadline = match (inner.register_ttl, now) {
                (Some(ttl), Some(now)) => Some(now + ttl),
                _ => None,
            };
            inner.queue.insert_at(tn, deadline, now);
            tn
        };
        if let Some(o) = obs {
            o.emit(EventKind::Register, tn, 0);
        }
        // Open the VCQueue-residency span when the calling thread is
        // tracing (one TLS read otherwise). Closed by complete/discard/
        // reap — possibly from another thread.
        crate::obs::trace::vc_register(tn);
        tn
    }

    /// Claim `tn` for commit: transition its queue entry from `Active` to
    /// `Committing`, shielding it from the stall reaper. A protocol MUST
    /// claim successfully **before** applying any database updates
    /// (promoting pendings to committed versions); on `false` it must
    /// abort instead — the entry was already force-discarded by
    /// [`reap`](Self::reap) (or discarded/completed through another
    /// path), so its writes must never become visible.
    ///
    /// This claim is what makes the reaper safe: the reaper only discards
    /// `Active` entries, so reaped ⇒ never claimed ⇒ no updates applied.
    pub fn start_complete(&self, tn: u64) -> bool {
        self.inner().queue.start_committing(tn)
    }

    /// `VCdiscard(T)`: remove an aborted transaction. Also drains the
    /// queue head (see module docs). Returns `false` if `tn` was not
    /// registered (or already completed).
    pub fn discard(&self, tn: u64) -> bool {
        let obs = self.obs_on();
        let (removed, advanced, vtnc_before) = {
            let mut inner = self.inner();
            let vtnc_before = self.vtnc.load(Ordering::Acquire);
            let removed = inner.queue.discard(tn);
            let advanced = removed && self.drain_locked(&mut inner);
            (removed, advanced, vtnc_before)
        };
        if advanced {
            self.notify_visible();
        }
        if let Some(o) = obs {
            if removed {
                let vtnc = self.vtnc.load(Ordering::Acquire);
                o.emit(EventKind::Discard, tn, vtnc);
                if advanced {
                    o.emit(EventKind::VtncAdvance, vtnc, vtnc_before);
                }
                o.tracer().close_vc_any(tn, 1);
            }
        }
        removed
    }

    /// The stall reaper: force-`VCdiscard` every `Active` entry whose
    /// registration deadline has passed. Returns the reaped transaction
    /// numbers (oldest first) and drains visibility, so a single stalled
    /// client can pin `vtnc` for at most one TTL.
    ///
    /// # Safety argument
    ///
    /// Reaping `tn` is an abort forced by version control. It is safe —
    /// `tn`'s updates can never become visible — because every protocol
    /// must claim the entry via [`start_complete`](Self::start_complete)
    /// (which fails after a reap) *before* applying database updates.
    /// Conversely the reaper never touches `Committing` or `Complete`
    /// entries, so it can never discard a transaction whose updates may
    /// already be in the store. The losing side of the race always finds
    /// out: either the commit claims first (reaper skips it) or the reaper
    /// discards first (claim returns `false` and the commit aborts).
    ///
    /// Note this only removes the *version-control* entry. The caller
    /// (e.g. [`crate::MvDatabase::reap_stalled`]) is responsible for
    /// accounting; the stalled transaction's pending versions and locks,
    /// if any, are reclaimed separately by read/lock wait timeouts.
    pub fn reap(&self) -> Vec<u64> {
        let now = self.now();
        let (reaped, advanced) = {
            let mut inner = self.inner();
            let reaped = inner.queue.reap_expired(now);
            let advanced = !reaped.is_empty() && self.drain_locked(&mut inner);
            (reaped, advanced)
        };
        if advanced {
            self.notify_visible();
        }
        if !reaped.is_empty() {
            if let Some(o) = self.obs_on() {
                let vtnc = self.vtnc.load(Ordering::Acquire);
                o.emit(EventKind::ReaperFire, reaped.len() as u64, vtnc);
                for &tn in &reaped {
                    o.tracer().close_vc_any(tn, 2);
                }
            }
        }
        reaped
    }

    /// `VCcomplete(T)`: mark `tn` complete and advance `vtnc` over every
    /// completed prefix of the queue. Returns the new `vtnc`.
    ///
    /// Must be called **after** the transaction's database updates are
    /// applied (paper Figure 3/4: "perform database updates; …;
    /// VCcomplete(T)") — advancing visibility first would let a read-only
    /// transaction with the new start number miss the updates.
    pub fn complete(&self, tn: u64) -> u64 {
        let obs = self.obs_on();
        let (advanced, vtnc_before, registered_at) = {
            let mut inner = self.inner();
            let vtnc_before = self.vtnc.load(Ordering::Acquire);
            // Only registrations whose stamp survived the sampling draw
            // (see `register`) carry a timestamp; the rest skip the
            // clock read and histogram record below entirely.
            let registered_at = if obs.is_some() {
                inner.queue.registered_at(tn)
            } else {
                None
            };
            let marked = inner.queue.mark_complete(tn);
            debug_assert!(marked, "VCcomplete for unregistered tn {tn}");
            (self.drain_locked(&mut inner), vtnc_before, registered_at)
        };
        if advanced {
            self.notify_visible();
        }
        let vtnc = self.vtnc.load(Ordering::Acquire);
        if let Some(o) = obs {
            if let Some(at) = registered_at {
                o.phases()
                    .register_to_complete
                    .record(self.now().saturating_duration_since(at));
            }
            o.emit(EventKind::Complete, tn, vtnc);
            if advanced {
                o.emit(EventKind::VtncAdvance, vtnc, vtnc_before);
            }
            o.tracer().close_vc_any(tn, 0);
        }
        vtnc
    }

    /// Pop every completed head entry and publish the new `vtnc` — one
    /// atomic store no matter how many entries drained (the batching that
    /// keeps the critical section short when a slow head transaction
    /// finally completes and releases a long completed suffix).
    ///
    /// Runs under the inner mutex but performs **no side effects beyond
    /// the store**: the visibility broadcast, metrics, and reaper
    /// bookkeeping all happen outside the lock (callers invoke
    /// [`Self::notify_visible`] after releasing it).
    fn drain_locked(&self, inner: &mut VcInner) -> bool {
        match inner.queue.drain_completed() {
            Some(new_vtnc) => {
                debug_assert!(new_vtnc < inner.tnc);
                self.vtnc.store(new_vtnc, Ordering::Release);
                true
            }
            None => false,
        }
    }

    /// Broadcast a `vtnc` advance to [`Self::wait_visible`] waiters.
    /// Takes the waiters' mutex before notifying — a waiter between its
    /// vtnc check and its park would otherwise miss the wakeup — but
    /// never while `inner` is held, so waiter wakeups cannot extend the
    /// version-control critical section.
    fn notify_visible(&self) {
        let _waiters = self.visible_mu.lock();
        self.visible_cv.notify_all();
    }

    /// Current `vtnc` (same as [`start`](Self::start)).
    pub fn vtnc(&self) -> u64 {
        self.vtnc.load(Ordering::Acquire)
    }

    /// Current `tnc` (next number to assign).
    pub fn tnc(&self) -> u64 {
        self.inner().tnc
    }

    /// The visibility lag: how many assigned transaction numbers are not
    /// yet visible (`(tnc − 1) − vtnc`). Zero means a read-only
    /// transaction starting now sees every assigned transaction.
    pub fn lag(&self) -> u64 {
        let inner = self.inner();
        (inner.tnc - 1).saturating_sub(self.vtnc.load(Ordering::Acquire))
    }

    /// Number of registered, not-yet-visible transactions.
    pub fn queue_len(&self) -> usize {
        self.inner().queue.len()
    }

    /// One-shot snapshot of the whole version-control state, for gauges
    /// and flight-recorder dumps.
    pub fn view(&self) -> VcView {
        let inner = self.inner();
        VcView {
            tnc: inner.tnc - 1, // last assigned number
            vtnc: self.vtnc.load(Ordering::Acquire),
            queue_depth: inner.queue.len() as u64,
            head_tn: inner.queue.head_tn(),
            head_age_us: inner
                .queue
                .head_age(self.now())
                .map(|d| d.as_micros() as u64),
        }
    }

    /// Section 6 rectification: block until `vtnc ≥ tn` (so a read-only
    /// transaction started afterwards is guaranteed to see `tn`'s
    /// updates). Returns the satisfying `vtnc`, or `None` on timeout.
    pub fn wait_visible(&self, tn: u64, timeout: Duration) -> Option<u64> {
        // Zero-timeout fail-fast: poll once without parking. Simulated
        // runs use this path exclusively (see DESIGN.md §13) — a virtual
        // deadline handed to a real condvar would block wall-clock time.
        if timeout.is_zero() {
            let v = self.vtnc.load(Ordering::Acquire);
            return (v >= tn).then_some(v);
        }
        let deadline = self.now() + timeout;
        let mut guard = self.visible_mu.lock();
        loop {
            let v = self.vtnc.load(Ordering::Acquire);
            if v >= tn {
                return Some(v);
            }
            if self.visible_cv.wait_until(&mut guard, deadline).timed_out() {
                let v = self.vtnc.load(Ordering::Acquire);
                return (v >= tn).then_some(v);
            }
        }
    }

    /// Check both counter properties; used by tests after every step.
    ///
    /// Returns an error description if an invariant is violated.
    pub fn validate(&self) -> Result<(), String> {
        let res = {
            let inner = self.inner();
            let vtnc = self.vtnc.load(Ordering::Acquire);
            if vtnc >= inner.tnc {
                Err(format!("vtnc {} >= tnc {}", vtnc, inner.tnc))
            } else if inner.queue.head_tn().is_some_and(|head| head <= vtnc) {
                Err(format!(
                    "queued tn {} <= vtnc {vtnc}",
                    inner.queue.head_tn().unwrap_or(0)
                ))
            } else {
                Ok(())
            }
        };
        if let Err(msg) = &res {
            // Invariant violations are flight-recorder triggers regardless
            // of whether event recording is on.
            if let Some(o) = self.obs.get() {
                o.dump(
                    FlightTrigger::InvariantViolation,
                    &DumpContext {
                        detail: msg.clone(),
                        vc: Some(self.view()),
                        ..Default::default()
                    },
                );
            }
        }
        res
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;
    use std::thread;

    #[test]
    fn fresh_counters() {
        let vc = VersionControl::new();
        assert_eq!(vc.start(), 0);
        assert_eq!(vc.vtnc(), 0);
        assert_eq!(vc.tnc(), 1);
        assert_eq!(vc.lag(), 0);
        vc.validate().unwrap();
    }

    #[test]
    fn register_assigns_monotone_numbers() {
        let vc = VersionControl::new();
        assert_eq!(vc.register(), 1);
        assert_eq!(vc.register(), 2);
        assert_eq!(vc.register(), 3);
        assert_eq!(vc.tnc(), 4);
        assert_eq!(vc.vtnc(), 0); // nothing completed yet
        assert_eq!(vc.lag(), 3);
        vc.validate().unwrap();
    }

    #[test]
    fn in_order_completion_advances_vtnc() {
        let vc = VersionControl::new();
        let t1 = vc.register();
        let t2 = vc.register();
        assert_eq!(vc.complete(t1), 1);
        assert_eq!(vc.start(), 1);
        assert_eq!(vc.complete(t2), 2);
        assert_eq!(vc.start(), 2);
        assert_eq!(vc.lag(), 0);
        vc.validate().unwrap();
    }

    #[test]
    fn out_of_order_completion_delays_vtnc() {
        // The central scenario: T2 finishes first; its updates must stay
        // invisible until T1 completes, else a read-only transaction could
        // see T2 but later T1 commits "into its past".
        let vc = VersionControl::new();
        let t1 = vc.register();
        let t2 = vc.register();
        assert_eq!(vc.complete(t2), 0); // vtnc unchanged
        assert_eq!(vc.start(), 0);
        assert_eq!(vc.complete(t1), 2); // both become visible at once
        assert_eq!(vc.start(), 2);
        vc.validate().unwrap();
    }

    #[test]
    fn discard_releases_blocked_visibility() {
        let vc = VersionControl::new();
        let t1 = vc.register();
        let t2 = vc.register();
        vc.complete(t2);
        assert_eq!(vc.vtnc(), 0);
        assert!(vc.discard(t1)); // T1 aborts → T2 becomes visible now
        assert_eq!(vc.vtnc(), 2);
        vc.validate().unwrap();
    }

    #[test]
    fn discard_unregistered_is_false() {
        let vc = VersionControl::new();
        assert!(!vc.discard(7));
    }

    #[test]
    fn aborted_numbers_leave_gaps_in_vtnc() {
        let vc = VersionControl::new();
        let t1 = vc.register();
        let t2 = vc.register();
        vc.discard(t1);
        vc.complete(t2);
        // vtnc = 2: number 1 was never completed, but it was discarded,
        // so "all transactions with tn ≤ 2 have completed" holds vacuously
        // for the aborted one (its versions are destroyed).
        assert_eq!(vc.vtnc(), 2);
        vc.validate().unwrap();
    }

    #[test]
    fn wait_visible_immediate_and_blocking() {
        let vc = Arc::new(VersionControl::new());
        let t1 = vc.register();
        vc.complete(t1);
        assert_eq!(vc.wait_visible(1, Duration::from_millis(1)), Some(1));

        let t2 = vc.register();
        let vc2 = Arc::clone(&vc);
        let waiter = thread::spawn(move || vc2.wait_visible(t2, Duration::from_secs(5)));
        thread::sleep(Duration::from_millis(20));
        vc.complete(t2);
        assert_eq!(waiter.join().unwrap(), Some(2));
    }

    #[test]
    fn wait_visible_times_out() {
        let vc = VersionControl::new();
        vc.register(); // never completes
        assert_eq!(vc.wait_visible(1, Duration::from_millis(20)), None);
    }

    #[test]
    fn concurrent_register_complete_stress() {
        let vc = Arc::new(VersionControl::new());
        let mut handles = Vec::new();
        for _ in 0..8 {
            let vc = Arc::clone(&vc);
            handles.push(thread::spawn(move || {
                for i in 0..500 {
                    let tn = vc.register();
                    if i % 7 == 0 {
                        vc.discard(tn);
                    } else {
                        vc.complete(tn);
                    }
                    vc.validate().unwrap();
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        // Everything completed or discarded → full visibility.
        assert_eq!(vc.queue_len(), 0);
        assert_eq!(vc.lag(), 0);
        assert_eq!(vc.vtnc(), vc.tnc() - 1);
    }

    #[test]
    fn reap_is_a_noop_without_ttl() {
        let vc = VersionControl::new();
        vc.register();
        std::thread::sleep(Duration::from_millis(2));
        assert!(vc.reap().is_empty());
        assert_eq!(vc.queue_len(), 1);
    }

    #[test]
    fn reaper_unpins_vtnc_after_ttl() {
        let vc = VersionControl::new();
        vc.set_register_ttl(Some(Duration::from_millis(5)));
        let t1 = vc.register(); // will stall
        let t2 = vc.register();
        vc.complete(t2);
        assert_eq!(vc.vtnc(), 0); // pinned by stalled t1
        thread::sleep(Duration::from_millis(10));
        assert_eq!(vc.reap(), vec![t1]);
        assert_eq!(vc.vtnc(), 2); // t2 becomes visible
        vc.validate().unwrap();
    }

    #[test]
    fn claimed_transactions_survive_the_reaper() {
        let vc = VersionControl::new();
        vc.set_register_ttl(Some(Duration::from_millis(1)));
        let t1 = vc.register();
        assert!(vc.start_complete(t1)); // commit path claims in time
        thread::sleep(Duration::from_millis(5));
        assert!(vc.reap().is_empty());
        assert_eq!(vc.complete(t1), 1);
        vc.validate().unwrap();
    }

    #[test]
    fn claim_after_reap_fails() {
        let vc = VersionControl::new();
        vc.set_register_ttl(Some(Duration::from_millis(1)));
        let t1 = vc.register();
        thread::sleep(Duration::from_millis(5));
        assert_eq!(vc.reap(), vec![t1]);
        // The stalled client wakes up and tries to commit: it must lose.
        assert!(!vc.start_complete(t1));
        vc.validate().unwrap();
    }

    #[test]
    fn obs_events_and_phase_histogram() {
        use crate::obs::{EventKind as K, Obs, ObsConfig};
        let vc = VersionControl::new();
        // shift 0: capture every event so the exact sequence is assertable
        let obs = vc.attach_obs(Arc::new(Obs::new(
            &ObsConfig::default().with_events(true).with_sample_shift(0),
        )));
        let t1 = vc.register();
        let t2 = vc.register();
        vc.complete(t2); // head still active → no advance
        vc.discard(t1); // unblocks → vtnc advances to 2
        let kinds: Vec<K> = obs.events().recent(64).iter().map(|e| e.kind).collect();
        assert_eq!(
            kinds,
            vec![
                K::Register,
                K::Register,
                K::Complete,
                K::Discard,
                K::VtncAdvance
            ]
        );
        assert_eq!(obs.phases().snapshot().register_to_complete.count(), 1);
        let view = vc.view();
        assert_eq!(view.tnc, 2);
        assert_eq!(view.vtnc, 2);
        assert_eq!(view.queue_depth, 0);
        assert_eq!(view.vtnc_lag(), 0);
    }

    #[test]
    fn unattached_or_disabled_obs_costs_nothing_observable() {
        use crate::obs::{Obs, ObsConfig};
        let vc = VersionControl::new();
        let tn = vc.register();
        vc.complete(tn); // no obs attached: must not panic or stamp
        let obs = vc.attach_obs(Arc::new(Obs::new(&ObsConfig::default())));
        let tn = vc.register();
        vc.complete(tn);
        assert_eq!(obs.events().emitted(), 0);
        assert_eq!(obs.phases().snapshot().register_to_complete.count(), 0);
    }

    #[test]
    fn visibility_property_holds_under_interleaving() {
        // Randomized-ish interleaving with explicit bookkeeping: at every
        // step, all tns ≤ vtnc must be completed or discarded.
        let vc = VersionControl::new();
        let mut live: Vec<u64> = Vec::new();
        let mut finished: std::collections::BTreeSet<u64> = std::collections::BTreeSet::new();
        for step in 0u64..200 {
            if step % 3 == 0 || live.is_empty() {
                live.push(vc.register());
            } else {
                // complete or discard a pseudo-random live txn
                let idx = (step as usize * 7) % live.len();
                let tn = live.swap_remove(idx);
                if step % 5 == 0 {
                    vc.discard(tn);
                } else {
                    vc.complete(tn);
                }
                finished.insert(tn);
            }
            let vtnc = vc.vtnc();
            for &tn in &live {
                assert!(
                    tn > vtnc,
                    "live tn {tn} <= vtnc {vtnc} violates visibility property"
                );
            }
            vc.validate().unwrap();
        }
    }
}
