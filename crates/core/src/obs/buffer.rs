//! Per-thread SPSC event buffers: the buffered publish path.
//!
//! The legacy (`direct`) publish path pays, on every recorded event, one
//! contended `fetch_add` on the global ring head, a seqlock slot write,
//! and a clock read. At ~25 instrumentation points per transaction that
//! is 16–31% of a short transaction's budget. The buffered path splits
//! the cost:
//!
//! * **Emit (owner thread only).** Bump a per-kind counter on a
//!   thread-owned cache line, make the sampling decision, and — only for
//!   events that survive sampling — read the clock and write one slot of
//!   a thread-local SPSC ring. No shared-write contention, no clock read
//!   on the dropped path.
//! * **Drain (one thread at a time, rare).** Collect every ring's
//!   pending events, merge-sort them by `(t_ns, thread, local seq)`, and
//!   republish them into the global seqlock ring so every existing
//!   reader (flight recorder, exporters, the simulator's canonical
//!   trace) sees one time-ordered stream exactly as before.
//!
//! Drains are triggered by readers (`recent`/`emitted` flush first) and
//! by an owner whose ring fills (`try_lock` on the drain mutex; if
//! another drain is in flight or a test holds [`DrainPause`], the event
//! is dropped and the ring's `dropped` counter — which is exact, not a
//! sample — records it).
//!
//! **Lifecycle.** Rings are `Arc`-shared between the owning thread's TLS
//! slot and the registry. Thread exit drops the TLS slot, which marks
//! the ring *retired*; the next drain flushes whatever the thread left
//! behind and then prunes the ring. An `Obs` dropped before its writer
//! threads exit is handled by the same `Weak` back-reference: the TLS
//! slot notices the dead registry and frees the ring on next use.

use super::event::{thread_ordinal, EventBus, EventKind, KIND_COUNT};
use crate::clock::SharedRng;
use std::cell::RefCell;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex, MutexGuard, Weak};

/// Default per-thread ring capacity (slots).
pub(crate) const DEFAULT_THREAD_BUFFER: usize = 1024;

/// One SPSC slot: plain payload words, ordered by the ring's head/tail.
#[derive(Default)]
struct BufSlot {
    t_ns: AtomicU64,
    kind: AtomicU64,
    id: AtomicU64,
    aux: AtomicU64,
}

/// A single-producer (owning thread) / single-consumer (whoever holds
/// the drain mutex) ring, plus the owner's counters and sampling state.
pub(crate) struct ThreadRing {
    /// Ordinal of the owning thread, stamped into drained events.
    thread: u64,
    mask: u64,
    /// Next slot to write; owner stores with Release, drainer loads with
    /// Acquire (so the drainer sees the payload of every published slot).
    head: AtomicU64,
    /// Next slot to read; drainer stores with Release, owner loads with
    /// Acquire (so the owner never overwrites a slot still being read).
    tail: AtomicU64,
    slots: Box<[BufSlot]>,
    /// Counter tier: exact per-kind emit counts, bumped on every emit
    /// regardless of sampling. Owner-written, anyone-read.
    kind_counts: [AtomicU64; KIND_COUNT],
    /// Events lost to a full ring while the drain mutex was unavailable.
    /// Exact by construction: only the owner increments it, and only
    /// after a failed push → failed drain → failed re-push sequence.
    dropped: AtomicU64,
    /// Owner-only sampling sequence for the events ladder (per-thread, so
    /// the decision costs one uncontended relaxed RMW).
    sample_seq: AtomicU64,
    /// Owner-only sampling sequence for auto-started trace spans.
    span_seq: AtomicU64,
    /// Set when the owning thread's TLS slot drops; the next drain
    /// flushes and prunes this ring.
    retired: AtomicBool,
}

impl ThreadRing {
    fn new(thread: u64, capacity: usize) -> ThreadRing {
        let cap = capacity.max(64).next_power_of_two();
        let mut slots = Vec::with_capacity(cap);
        slots.resize_with(cap, BufSlot::default);
        ThreadRing {
            thread,
            mask: (cap - 1) as u64,
            head: AtomicU64::new(0),
            tail: AtomicU64::new(0),
            slots: slots.into_boxed_slice(),
            kind_counts: std::array::from_fn(|_| AtomicU64::new(0)),
            dropped: AtomicU64::new(0),
            sample_seq: AtomicU64::new(0),
            span_seq: AtomicU64::new(0),
            retired: AtomicBool::new(false),
        }
    }

    /// Bump the counter-tier count for `kind` (every emit, sampled or not).
    /// Owner-only writer, so a plain load+store replaces the atomic RMW —
    /// this runs on every instrumentation point, and a relaxed `fetch_add`
    /// is still a full locked RMW on x86.
    #[inline]
    pub(crate) fn count(&self, kind: EventKind) {
        let c = &self.kind_counts[kind as usize];
        c.store(c.load(Ordering::Relaxed) + 1, Ordering::Relaxed);
    }

    /// Events-ladder sampling decision: keep 1 in `2^shift`. Determinism
    /// note: with no injected rng the decision is a per-thread modular
    /// counter (stable under any thread interleaving); with one — the
    /// simulator's seeded stream — it is a draw, so replaying a seed
    /// replays the exact same keep/drop pattern.
    #[inline]
    pub(crate) fn sample(&self, shift: u8, rng: Option<&SharedRng>) -> bool {
        if shift == 0 {
            return true;
        }
        if shift >= 64 {
            return false;
        }
        let mask = (1u64 << shift) - 1;
        match rng {
            Some(rng) => rng.next_u64() & mask == 0,
            None => {
                // Owner-only sequence: load+store, not an RMW.
                let seq = self.sample_seq.load(Ordering::Relaxed);
                self.sample_seq.store(seq + 1, Ordering::Relaxed);
                seq & mask == 0
            }
        }
    }

    /// Spans-ladder sampling decision (separate sequence, same scheme).
    #[inline]
    pub(crate) fn span_sample(&self, shift: u8, rng: Option<&SharedRng>) -> bool {
        if shift == 0 {
            return true;
        }
        if shift >= 64 {
            return false;
        }
        let mask = (1u64 << shift) - 1;
        match rng {
            Some(rng) => rng.next_u64() & mask == 0,
            None => {
                let seq = self.span_seq.load(Ordering::Relaxed);
                self.span_seq.store(seq + 1, Ordering::Relaxed);
                seq & mask == 0
            }
        }
    }

    /// Owner-only push. `false` when the ring is full.
    #[inline]
    pub(crate) fn push(&self, t_ns: u64, kind: EventKind, id: u64, aux: u64) -> bool {
        let head = self.head.load(Ordering::Relaxed);
        let tail = self.tail.load(Ordering::Acquire);
        if head.wrapping_sub(tail) > self.mask {
            return false;
        }
        let slot = &self.slots[(head & self.mask) as usize];
        slot.t_ns.store(t_ns, Ordering::Relaxed);
        slot.kind.store(kind as u64, Ordering::Relaxed);
        slot.id.store(id, Ordering::Relaxed);
        slot.aux.store(aux, Ordering::Relaxed);
        self.head.store(head.wrapping_add(1), Ordering::Release);
        true
    }

    /// Record one event lost to overflow.
    #[inline]
    pub(crate) fn drop_one(&self) {
        self.dropped.fetch_add(1, Ordering::Relaxed);
    }

    /// Drain-side: move every pending slot into `out`. Caller must hold
    /// the registry drain mutex (single consumer).
    fn collect(&self, out: &mut Vec<Pending>) {
        let head = self.head.load(Ordering::Acquire);
        let tail = self.tail.load(Ordering::Relaxed);
        for ticket in tail..head {
            let slot = &self.slots[(ticket & self.mask) as usize];
            let kind = EventKind::from_u8(slot.kind.load(Ordering::Relaxed) as u8);
            if let Some(kind) = kind {
                out.push(Pending {
                    t_ns: slot.t_ns.load(Ordering::Relaxed),
                    thread: self.thread,
                    local_seq: ticket,
                    kind,
                    id: slot.id.load(Ordering::Relaxed),
                    aux: slot.aux.load(Ordering::Relaxed),
                });
            }
        }
        self.tail.store(head, Ordering::Release);
    }

    fn is_empty(&self) -> bool {
        self.head.load(Ordering::Acquire) == self.tail.load(Ordering::Acquire)
    }

    fn retired(&self) -> bool {
        self.retired.load(Ordering::Acquire)
    }
}

/// An event pulled out of a thread ring, awaiting merge + republish.
struct Pending {
    t_ns: u64,
    thread: u64,
    local_seq: u64,
    kind: EventKind,
    id: u64,
    aux: u64,
}

/// All thread rings feeding one event bus.
pub(crate) struct BufferRegistry {
    /// Process-unique id keying the TLS ring cache.
    id: u64,
    thread_capacity: usize,
    rings: Mutex<Vec<Arc<ThreadRing>>>,
    /// Serializes drains; [`DrainPause`] holds it to force overflow in
    /// tests. Drains `try_lock` so an emit path never blocks on it.
    drain: Mutex<()>,
    /// Exact counters folded in from pruned rings, so counts survive the
    /// threads that produced them ("every ring that EVER fed this bus").
    pruned_counts: [AtomicU64; KIND_COUNT],
    /// Overflow drops folded in from pruned rings.
    pruned_dropped: AtomicU64,
}

/// Holding this guard blocks all drains (including drain-on-full, which
/// then drops events and counts them exactly). Test hook.
pub struct DrainPause<'a> {
    _guard: MutexGuard<'a, ()>,
}

impl BufferRegistry {
    pub(crate) fn new(thread_capacity: usize) -> Arc<BufferRegistry> {
        static NEXT_ID: AtomicU64 = AtomicU64::new(1);
        Arc::new(BufferRegistry {
            id: NEXT_ID.fetch_add(1, Ordering::Relaxed),
            thread_capacity: if thread_capacity == 0 {
                DEFAULT_THREAD_BUFFER
            } else {
                thread_capacity
            },
            rings: Mutex::new(Vec::new()),
            drain: Mutex::new(()),
            pruned_counts: std::array::from_fn(|_| AtomicU64::new(0)),
            pruned_dropped: AtomicU64::new(0),
        })
    }

    /// Block drains until the guard drops (test hook for exact-overflow
    /// accounting).
    pub(crate) fn pause(&self) -> DrainPause<'_> {
        DrainPause {
            _guard: self.drain.lock().unwrap_or_else(|e| e.into_inner()),
        }
    }

    /// Flush every ring into `bus`, merged into one time-ordered stream.
    /// Returns without doing anything if another drain is in flight or
    /// drains are paused.
    pub(crate) fn drain_into(&self, bus: &EventBus) {
        let Ok(_g) = self.drain.try_lock() else {
            return;
        };
        let rings: Vec<Arc<ThreadRing>> =
            self.rings.lock().unwrap_or_else(|e| e.into_inner()).clone();
        let mut batch: Vec<Pending> = Vec::new();
        for ring in &rings {
            ring.collect(&mut batch);
        }
        // One global stream ordered by emit time; (thread, local_seq)
        // tie-breaks equal stamps deterministically, and local_seq alone
        // preserves per-thread program order.
        batch.sort_by_key(|p| (p.t_ns, p.thread, p.local_seq));
        for p in batch {
            bus.publish_raw(p.t_ns, p.kind, p.thread, p.id, p.aux);
        }
        if rings.iter().any(|r| r.retired() && r.is_empty()) {
            // Fold the pruned rings' exact counters into the registry so
            // the counter tier keeps its "never loses an emit" guarantee
            // past the lifetime of the thread that produced it.
            self.rings
                .lock()
                .unwrap_or_else(|e| e.into_inner())
                .retain(|r| {
                    if !(r.retired() && r.is_empty()) {
                        return true;
                    }
                    for (dst, src) in self.pruned_counts.iter().zip(r.kind_counts.iter()) {
                        dst.fetch_add(src.load(Ordering::Relaxed), Ordering::Relaxed);
                    }
                    self.pruned_dropped
                        .fetch_add(r.dropped.load(Ordering::Relaxed), Ordering::Relaxed);
                    false
                });
        }
    }

    /// Sum of a kind's counter across every ring that ever fed this bus
    /// (counter tier: exact, sampling-independent).
    pub(crate) fn count(&self, kind: EventKind) -> u64 {
        self.pruned_counts[kind as usize].load(Ordering::Relaxed)
            + self
                .rings
                .lock()
                .unwrap_or_else(|e| e.into_inner())
                .iter()
                .map(|r| r.kind_counts[kind as usize].load(Ordering::Relaxed))
                .sum::<u64>()
    }

    /// All per-kind counters at once.
    pub(crate) fn counts(&self) -> [u64; KIND_COUNT] {
        let mut out = [0u64; KIND_COUNT];
        for (dst, src) in out.iter_mut().zip(self.pruned_counts.iter()) {
            *dst = src.load(Ordering::Relaxed);
        }
        for r in self.rings.lock().unwrap_or_else(|e| e.into_inner()).iter() {
            for (dst, src) in out.iter_mut().zip(r.kind_counts.iter()) {
                *dst += src.load(Ordering::Relaxed);
            }
        }
        out
    }

    /// Total events lost to ring overflow (exact).
    pub(crate) fn dropped(&self) -> u64 {
        self.pruned_dropped.load(Ordering::Relaxed)
            + self
                .rings
                .lock()
                .unwrap_or_else(|e| e.into_inner())
                .iter()
                .map(|r| r.dropped.load(Ordering::Relaxed))
                .sum::<u64>()
    }

    /// Number of live rings (registered writer threads not yet pruned).
    #[cfg(test)]
    pub(crate) fn ring_count(&self) -> usize {
        self.rings.lock().unwrap_or_else(|e| e.into_inner()).len()
    }

    fn register(self: &Arc<Self>) -> Arc<ThreadRing> {
        let ring = Arc::new(ThreadRing::new(thread_ordinal(), self.thread_capacity));
        self.rings
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .push(ring.clone());
        ring
    }
}

/// One TLS cache entry: this thread's ring for one registry. Dropping it
/// (thread exit, or pruning after the registry died) retires the ring.
struct TlsEntry {
    registry_id: u64,
    registry: Weak<BufferRegistry>,
    ring: Arc<ThreadRing>,
}

impl Drop for TlsEntry {
    fn drop(&mut self) {
        self.ring.retired.store(true, Ordering::Release);
    }
}

thread_local! {
    static RINGS: RefCell<Vec<TlsEntry>> = const { RefCell::new(Vec::new()) };
}

/// Run `f` against the calling thread's ring for `registry`, creating
/// and registering the ring on first use. Entries for dead registries
/// are pruned in passing. The closure form keeps the hot path free of
/// `Arc` refcount traffic — this runs on every counter bump, so a pair
/// of atomic RMWs per call is a measurable share of a cheap emit.
#[inline]
pub(crate) fn with_ring<R>(registry: &Arc<BufferRegistry>, f: impl FnOnce(&ThreadRing) -> R) -> R {
    RINGS.with(|cell| {
        let mut entries = cell.borrow_mut();
        if let Some(e) = entries.iter().find(|e| e.registry_id == registry.id) {
            return f(&e.ring);
        }
        entries.retain(|e| e.registry.strong_count() > 0);
        let ring = registry.register();
        entries.push(TlsEntry {
            registry_id: registry.id,
            registry: Arc::downgrade(registry),
            ring: ring.clone(),
        });
        f(&ring)
    })
}

/// The calling thread's ring for `registry` as an owned handle (tests
/// and cold paths; hot paths use [`with_ring`]).
#[cfg(test)]
pub(crate) fn ring_for(registry: &Arc<BufferRegistry>) -> Arc<ThreadRing> {
    with_ring(registry, |_| ());
    RINGS.with(|cell| {
        cell.borrow()
            .iter()
            .find(|e| e.registry_id == registry.id)
            .map(|e| e.ring.clone())
            .expect("with_ring just registered this ring")
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::clock::real_clock;

    fn bus_with(registry: &Arc<BufferRegistry>, cap: usize) -> EventBus {
        let mut bus = EventBus::with_clock(cap, true, real_clock());
        bus.attach_buffers(registry.clone());
        bus
    }

    #[test]
    fn push_drain_republishes_in_order() {
        let reg = BufferRegistry::new(64);
        let bus = bus_with(&reg, 256);
        let ring = ring_for(&reg);
        for i in 0..10u64 {
            assert!(ring.push(i * 100, EventKind::Register, i, i * 2));
        }
        let evs = bus.recent(64);
        assert_eq!(evs.len(), 10);
        for (i, ev) in evs.iter().enumerate() {
            assert_eq!(ev.kind, EventKind::Register);
            assert_eq!(ev.id, i as u64);
            assert_eq!(ev.t_ns, i as u64 * 100);
        }
    }

    #[test]
    fn full_ring_rejects_until_drained() {
        let reg = BufferRegistry::new(64);
        let bus = bus_with(&reg, 256);
        let ring = ring_for(&reg);
        for i in 0..64u64 {
            assert!(ring.push(i, EventKind::Begin, i, 0));
        }
        assert!(!ring.push(64, EventKind::Begin, 64, 0), "ring is full");
        reg.drain_into(&bus);
        assert!(ring.push(64, EventKind::Begin, 64, 0), "drain freed space");
        assert_eq!(bus.recent(256).len(), 65);
    }

    #[test]
    fn paused_drain_is_a_noop_and_overflow_is_exact() {
        let reg = BufferRegistry::new(64);
        let bus = bus_with(&reg, 256);
        let ring = ring_for(&reg);
        let pause = reg.pause();
        for i in 0..80u64 {
            if !ring.push(i, EventKind::Complete, i, 0) {
                reg.drain_into(&bus); // no-op: drains are paused
                if !ring.push(i, EventKind::Complete, i, 0) {
                    ring.drop_one();
                }
            }
        }
        assert_eq!(reg.dropped(), 16, "64 fit, 16 dropped, exactly");
        assert_eq!(bus.emitted(), 0, "nothing published while paused");
        drop(pause);
        assert_eq!(bus.recent(256).len(), 64);
        assert_eq!(reg.dropped(), 16);
    }

    #[test]
    fn retired_ring_is_flushed_then_pruned() {
        let reg = BufferRegistry::new(64);
        let bus = bus_with(&reg, 256);
        std::thread::scope(|s| {
            s.spawn(|| {
                let ring = ring_for(&reg);
                for i in 0..5u64 {
                    assert!(ring.push(i, EventKind::Abort, i, 0));
                }
                // Thread exits with 5 undrained events in its buffer.
            });
        });
        assert_eq!(reg.ring_count(), 1);
        let evs = bus.recent(64);
        assert_eq!(evs.len(), 5, "exit did not lose buffered events");
        assert_eq!(reg.ring_count(), 0, "empty retired ring pruned");
        // Counters survive only while the ring does; exporters snapshot
        // through Obs, which drains before the ring can be pruned.
    }

    #[test]
    fn merge_is_time_ordered_across_threads() {
        let reg = BufferRegistry::new(64);
        let bus = bus_with(&reg, 256);
        std::thread::scope(|s| {
            for t in 0..3u64 {
                let reg = &reg;
                s.spawn(move || {
                    let ring = ring_for(reg);
                    for i in 0..10u64 {
                        // Interleaved stamps: thread t emits at t + 3*i.
                        assert!(ring.push(t + 3 * i, EventKind::LockWait, t, i));
                    }
                });
            }
        });
        let evs = bus.recent(64);
        assert_eq!(evs.len(), 30);
        for w in evs.windows(2) {
            assert!(w[0].t_ns <= w[1].t_ns, "drained stream is time-ordered");
        }
    }

    #[test]
    fn counter_tier_counts_are_exact_and_sampling_independent() {
        let reg = BufferRegistry::new(64);
        let ring = ring_for(&reg);
        let mut kept = 0;
        for _ in 0..1000 {
            ring.count(EventKind::Admit);
            if ring.sample(4, None) {
                kept += 1;
            }
        }
        assert_eq!(reg.count(EventKind::Admit), 1000);
        // Sequences 0, 16, 32, … 992 are kept: ceil(1000 / 16) of them.
        assert_eq!(kept, 63, "counter sampling keeps exactly 1 in 16");
    }

    #[test]
    fn rng_sampling_draws_from_the_injected_stream() {
        use crate::clock::SplitMixRng;
        let reg = BufferRegistry::new(64);
        let ring = ring_for(&reg);
        let rng: SharedRng = SplitMixRng::shared(7);
        let kept: Vec<bool> = (0..64).map(|_| ring.sample(2, Some(&rng))).collect();
        // Replaying the same seed replays the same keep/drop pattern.
        let rng2: SharedRng = SplitMixRng::shared(7);
        let replay: Vec<bool> = (0..64).map(|_| rng2.next_u64() & 3 == 0).collect();
        assert_eq!(kept, replay);
    }
}
