//! Hot-key and hot-shard contention tables.
//!
//! [`TopKSketch`]es (see `mvcc_storage::sketch` for the space-saving
//! bounds) fed from every contention site in the engine:
//!
//! * **keys** — lock conflicts (2PL), OCC validation failures, timestamp
//!   rejections (TO), and contention-caused aborts, keyed by
//!   [`ObjectId`](mvcc_model::ObjectId); each record carries the
//!   nanoseconds the loser spent blocked on that key and whether the
//!   encounter ended in an abort.
//! * **shards** — contended lock-manager shards, keyed by shard index,
//!   so a hot shard shows up even when its heat is spread across many
//!   cool keys (the sharded-lock analog of false sharing).
//!
//! # Striping
//!
//! A space-saving record is an O(K) scan, and a single shared table
//! turns that scan into K cache misses per record once several threads
//! bump it concurrently — measured at tens of percent of engine
//! throughput in E19's contended cell. So each table is striped: every
//! thread records into its own stripe (assigned once per thread from a
//! global counter, so scans stay in that core's cache), and readers
//! merge the stripes into one sketch at snapshot time. Merging sums
//! per-stripe estimates, so `estimate ≥ true` survives and the
//! overcount bound telescopes (`Σ Nᵢ/K = N/K`); a key hot in the merged
//! view was necessarily hot in some stripe, so heavy hitters still
//! can't be evicted out of sight. Single-threaded (simulated) runs use
//! exactly one stripe and keep the storage sketch's byte-for-byte
//! determinism.
//!
//! Recording is a handful of relaxed atomics on an already-slow path
//! (the caller just finished waiting or aborting); the disabled path
//! never reaches here at all — [`crate::obs::Obs::attr`] is `None`.

use mvcc_storage::{SketchEntry, TopKSketch};
use std::sync::atomic::{AtomicUsize, Ordering};

/// Stripe count. Eight keeps cross-thread collisions rare at the
/// thread counts the engine targets while the merge stays trivial.
const STRIPES: usize = 8;

static NEXT_STRIPE: AtomicUsize = AtomicUsize::new(0);

thread_local! {
    static STRIPE: usize = NEXT_STRIPE.fetch_add(1, Ordering::Relaxed) % STRIPES;
}

fn stripe() -> usize {
    STRIPE.with(|s| *s)
}

/// A thread-striped space-saving table: records go to the calling
/// thread's stripe, reads merge all stripes. Shared by the hot-key /
/// hot-shard tables here and the blame ledger's top-blocker table.
pub(crate) struct StripedTopK {
    stripes: Box<[TopKSketch]>,
    capacity: usize,
}

impl StripedTopK {
    pub(crate) fn new(capacity: usize) -> Self {
        StripedTopK {
            stripes: (0..STRIPES).map(|_| TopKSketch::new(capacity)).collect(),
            capacity: capacity.max(1),
        }
    }

    #[inline]
    pub(crate) fn record(&self, key: u64, ns: u64, abort: bool) {
        self.stripes[stripe()].record(key, ns, abort);
    }

    /// All stripes merged into one sketch of the configured capacity.
    pub(crate) fn merged(&self) -> TopKSketch {
        let out = TopKSketch::new(self.capacity);
        for s in self.stripes.iter() {
            out.merge(s);
        }
        out
    }

    pub(crate) fn top(&self, n: usize) -> Vec<SketchEntry> {
        self.merged().top(n)
    }

    pub(crate) fn reset(&self) {
        for s in self.stripes.iter() {
            s.reset();
        }
    }
}

/// The pair of contention tables. See the module docs.
pub struct ContentionTopK {
    keys: StripedTopK,
    shards: StripedTopK,
}

impl ContentionTopK {
    /// Tables monitoring at most `key_capacity` object keys and
    /// `shard_capacity` lock shards (per stripe, and again after the
    /// snapshot-time merge).
    pub fn new(key_capacity: usize, shard_capacity: usize) -> Self {
        ContentionTopK {
            keys: StripedTopK::new(key_capacity),
            shards: StripedTopK::new(shard_capacity),
        }
    }

    /// Charge a contention encounter to `key`: `contended_ns` spent
    /// blocked on it, plus one abort when the encounter killed the
    /// transaction (validation failure, timestamp rejection, deadlock).
    pub fn record_key(&self, key: u64, contended_ns: u64, abort: bool) {
        self.keys.record(key, contended_ns, abort);
    }

    /// Charge `contended_ns` of lock waiting to lock shard `shard`.
    pub fn record_shard(&self, shard: u64, contended_ns: u64) {
        self.shards.record(shard, contended_ns, false);
    }

    /// The `n` hottest keys, by contended-ns then hits.
    pub fn hot_keys(&self, n: usize) -> Vec<SketchEntry> {
        self.keys.top(n)
    }

    /// The `n` hottest lock shards.
    pub fn hot_shards(&self, n: usize) -> Vec<SketchEntry> {
        self.shards.top(n)
    }

    /// Clear both tables (between experiment phases).
    pub fn reset(&self) {
        self.keys.reset();
        self.shards.reset();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn keys_and_shards_accumulate_independently() {
        let t = ContentionTopK::new(8, 4);
        t.record_key(7, 100, false);
        t.record_key(7, 50, true);
        t.record_shard(3, 150);
        let keys = t.hot_keys(10);
        assert_eq!(keys.len(), 1);
        assert_eq!(keys[0].key, 7);
        assert_eq!(keys[0].contended_ns, 150);
        assert_eq!(keys[0].aborts, 1);
        let shards = t.hot_shards(10);
        assert_eq!(shards.len(), 1);
        assert_eq!(shards[0].key, 3);
        assert_eq!(shards[0].aborts, 0);
        t.reset();
        assert!(t.hot_keys(10).is_empty());
        assert!(t.hot_shards(10).is_empty());
    }

    #[test]
    fn hottest_key_ranks_first() {
        let t = ContentionTopK::new(8, 4);
        for i in 0..5u64 {
            t.record_key(i, 10 * (i + 1), false);
        }
        let keys = t.hot_keys(3);
        assert_eq!(keys[0].key, 4);
        assert_eq!(keys.len(), 3);
    }

    #[test]
    fn cross_thread_records_merge_into_one_view() {
        let t = std::sync::Arc::new(ContentionTopK::new(8, 4));
        let mut handles = Vec::new();
        for _ in 0..4 {
            let t = t.clone();
            handles.push(std::thread::spawn(move || {
                for _ in 0..100 {
                    t.record_key(5, 10, false);
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        let keys = t.hot_keys(1);
        assert_eq!(keys[0].key, 5);
        assert_eq!(keys[0].hits, 400);
        assert_eq!(keys[0].contended_ns, 4000);
    }
}
