//! Point-in-time gauges and the background collector that samples them.
//!
//! Counters say how much work happened; gauges say what the engine looks
//! like *right now* — how far visibility lags assignment (`tnc − vtnc`),
//! how deep the VCQueue is and how old its head is, how many versions are
//! resident, how occupied the lock table is, and how many WAL bytes are
//! not yet durable. The collector is a small background thread in the
//! style of the stall reaper: sample on an interval, publish the latest
//! sample, stop-and-join on drop.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::Duration;

/// A snapshot of the version-control state (also embedded in
/// flight-recorder dumps).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct VcView {
    /// Last assigned transaction number.
    pub tnc: u64,
    /// Visibility watermark.
    pub vtnc: u64,
    /// Registered-but-not-finished transactions in the VCQueue.
    pub queue_depth: u64,
    /// Oldest queued transaction number, if any.
    pub head_tn: Option<u64>,
    /// Age of the queue head in microseconds, if any.
    pub head_age_us: Option<u64>,
}

impl VcView {
    /// `tnc − vtnc`: assigned-but-invisible transactions.
    pub fn vtnc_lag(&self) -> u64 {
        self.tnc.saturating_sub(self.vtnc)
    }
}

/// One sample of every engine gauge.
#[derive(Debug, Clone, Default)]
pub struct GaugeSample {
    /// Version-control state.
    pub vc: VcView,
    /// Committed versions resident in the store.
    pub live_versions: u64,
    /// Pending (uncommitted) versions resident in the store.
    pub pending_versions: u64,
    /// Objects currently holding at least one lock (0 for lock-free CC).
    pub locked_objects: u64,
    /// Lock shards with at least one held lock (0 for lock-free CC).
    pub occupied_lock_shards: u64,
    /// Bytes appended to the WAL but not yet fsynced (0 without a WAL).
    pub wal_backlog_bytes: u64,
    /// Protocol- or site-specific extras (e.g. adaptive mode, dist gtn
    /// skew), appended verbatim to exporter output.
    pub extra: Vec<(&'static str, u64)>,
}

impl GaugeSample {
    /// Flatten to `(name, value)` pairs for the exporters.
    pub fn fields(&self) -> Vec<(&'static str, u64)> {
        let mut out = vec![
            ("tnc", self.vc.tnc),
            ("vtnc", self.vc.vtnc),
            ("vtnc_lag", self.vc.vtnc_lag()),
            ("vcqueue_depth", self.vc.queue_depth),
            ("vcqueue_head_age_us", self.vc.head_age_us.unwrap_or(0)),
            ("live_versions", self.live_versions),
            ("pending_versions", self.pending_versions),
            ("locked_objects", self.locked_objects),
            ("occupied_lock_shards", self.occupied_lock_shards),
            ("wal_backlog_bytes", self.wal_backlog_bytes),
        ];
        out.extend(self.extra.iter().copied());
        out
    }
}

/// Background gauge sampler. Holds the latest sample; stops on drop.
pub struct GaugeCollector {
    latest: Arc<Mutex<Option<GaugeSample>>>,
    stop: Arc<AtomicBool>,
    handle: Option<JoinHandle<()>>,
}

impl std::fmt::Debug for GaugeCollector {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("GaugeCollector")
            .field("running", &self.handle.is_some())
            .finish()
    }
}

impl GaugeCollector {
    /// Spawn a collector calling `sample` every `interval`.
    pub fn spawn(
        interval: Duration,
        sample: Arc<dyn Fn() -> GaugeSample + Send + Sync>,
    ) -> GaugeCollector {
        let latest = Arc::new(Mutex::new(None));
        let stop = Arc::new(AtomicBool::new(false));
        let (latest2, stop2) = (latest.clone(), stop.clone());
        let handle = std::thread::Builder::new()
            .name("mvdb-gauges".into())
            .spawn(move || {
                while !stop2.load(Ordering::Relaxed) {
                    let s = sample();
                    *latest2.lock().expect("gauge mutex poisoned") = Some(s);
                    // Sleep in small steps so drop is prompt even with a
                    // long interval.
                    let mut left = interval;
                    while !left.is_zero() && !stop2.load(Ordering::Relaxed) {
                        let step = left.min(Duration::from_millis(10));
                        std::thread::sleep(step);
                        left = left.saturating_sub(step);
                    }
                }
            })
            .expect("failed to spawn gauge collector");
        GaugeCollector {
            latest,
            stop,
            handle: Some(handle),
        }
    }

    /// The most recent sample, if the collector has run at least once.
    pub fn latest(&self) -> Option<GaugeSample> {
        self.latest.lock().expect("gauge mutex poisoned").clone()
    }

    /// Stop the collector and join its thread (idempotent).
    pub fn stop(&mut self) {
        self.stop.store(true, Ordering::Relaxed);
        if let Some(h) = self.handle.take() {
            let _ = h.join();
        }
    }
}

impl Drop for GaugeCollector {
    fn drop(&mut self) {
        self.stop();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn vc_view_lag() {
        let v = VcView {
            tnc: 10,
            vtnc: 7,
            ..Default::default()
        };
        assert_eq!(v.vtnc_lag(), 3);
        assert_eq!(VcView::default().vtnc_lag(), 0);
    }

    #[test]
    fn sample_fields_include_extras() {
        let s = GaugeSample {
            vc: VcView {
                tnc: 5,
                ..Default::default()
            },
            extra: vec![("adaptive_mode", 1)],
            ..Default::default()
        };
        let fields = s.fields();
        assert!(fields.contains(&("tnc", 5)));
        assert!(fields.contains(&("adaptive_mode", 1)));
    }

    #[test]
    fn collector_samples_and_stops() {
        use std::sync::atomic::AtomicU64;
        let calls = Arc::new(AtomicU64::new(0));
        let calls2 = calls.clone();
        let mut c = GaugeCollector::spawn(
            Duration::from_millis(1),
            Arc::new(move || {
                let n = calls2.fetch_add(1, Ordering::Relaxed);
                GaugeSample {
                    live_versions: n,
                    ..Default::default()
                }
            }),
        );
        let deadline = std::time::Instant::now() + Duration::from_secs(2);
        while c.latest().is_none() && std::time::Instant::now() < deadline {
            std::thread::sleep(Duration::from_millis(1));
        }
        assert!(c.latest().is_some());
        c.stop();
        let after = calls.load(Ordering::Relaxed);
        std::thread::sleep(Duration::from_millis(20));
        assert_eq!(calls.load(Ordering::Relaxed), after, "still sampling");
    }
}
