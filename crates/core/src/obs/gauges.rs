//! Point-in-time gauges and the background collector that samples them.
//!
//! Counters say how much work happened; gauges say what the engine looks
//! like *right now* — how far visibility lags assignment (`tnc − vtnc`),
//! how deep the VCQueue is and how old its head is, how many versions are
//! resident, how occupied the lock table is, and how many WAL bytes are
//! not yet durable. The collector is a small background thread in the
//! style of the stall reaper: sample on an interval, publish the latest
//! sample, stop-and-join on drop.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::Duration;

/// A snapshot of the version-control state (also embedded in
/// flight-recorder dumps).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct VcView {
    /// Last assigned transaction number.
    pub tnc: u64,
    /// Visibility watermark.
    pub vtnc: u64,
    /// Registered-but-not-finished transactions in the VCQueue.
    pub queue_depth: u64,
    /// Oldest queued transaction number, if any.
    pub head_tn: Option<u64>,
    /// Age of the queue head in microseconds, if any.
    pub head_age_us: Option<u64>,
}

impl VcView {
    /// `tnc − vtnc`: assigned-but-invisible transactions.
    pub fn vtnc_lag(&self) -> u64 {
        self.tnc.saturating_sub(self.vtnc)
    }
}

/// One per-thread slot of the decentralized VC, as seen by the
/// wait-point map: where its assignments sit relative to the watermark
/// and whether it is still pinning transactions in flight.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct VcThreadPoint {
    /// Highest transaction number this thread has been assigned.
    pub last_assigned: u64,
    /// Registered-but-unfinished transactions owned by this thread.
    pub inflight: u64,
    /// Whether the thread's slot has been retired (thread exited).
    pub retired: bool,
}

impl VcThreadPoint {
    /// How far this thread's assignments run ahead of `vtnc`.
    pub fn watermark_lag(&self, vtnc: u64) -> u64 {
        self.last_assigned.saturating_sub(vtnc)
    }
}

/// The decentralized-VC wait-point map: everything the watermark walk
/// can be stuck on, per thread, plus fold/scan totals. This is the
/// vc_dec replacement for the legacy queue-centric gauges — under
/// `vc_dec` there is no VCQueue, only per-thread blocks, so "queue
/// depth" and "head age" are meaningless there.
#[derive(Debug, Clone, Default)]
pub struct VcWaitPointMap {
    /// Visibility watermark at sample time.
    pub vtnc: u64,
    /// The transaction number the last watermark walk stopped at, if it
    /// is still ahead of `vtnc` (the current wait point).
    pub blocker_tn: Option<u64>,
    /// Live (allocated, unreclaimed) tn blocks.
    pub blocks_live: u64,
    /// Epoch folds performed so far.
    pub epoch_folds: u64,
    /// Total nanoseconds spent in watermark scans.
    pub watermark_scan_ns: u64,
    /// Per-thread points, in slot order (deterministic).
    pub threads: Vec<VcThreadPoint>,
}

impl VcWaitPointMap {
    /// Total in-flight registrations across threads.
    pub fn inflight_total(&self) -> u64 {
        self.threads.iter().map(|t| t.inflight).sum()
    }

    /// The worst per-thread watermark lag.
    pub fn max_thread_lag(&self) -> u64 {
        self.threads
            .iter()
            .map(|t| t.watermark_lag(self.vtnc))
            .max()
            .unwrap_or(0)
    }

    /// Summarize into the gauge fields embedded in [`GaugeSample`].
    pub fn gauges(&self) -> VcDecGauges {
        VcDecGauges {
            threads: self.threads.len() as u64,
            retired_threads: self.threads.iter().filter(|t| t.retired).count() as u64,
            inflight: self.inflight_total(),
            max_thread_lag: self.max_thread_lag(),
            blocks_live: self.blocks_live,
            blocker_tn: self.blocker_tn.unwrap_or(0),
            epoch_folds: self.epoch_folds,
        }
    }
}

/// Summary gauges of the decentralized VC (derived from
/// [`VcWaitPointMap::gauges`]), emitted instead of the queue gauges
/// when the engine is decentralized.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct VcDecGauges {
    /// Registered per-thread slots (live + retired).
    pub threads: u64,
    /// Slots whose owning thread has exited.
    pub retired_threads: u64,
    /// Total in-flight registrations across threads.
    pub inflight: u64,
    /// Worst per-thread watermark lag (`last_assigned − vtnc`).
    pub max_thread_lag: u64,
    /// Live tn blocks.
    pub blocks_live: u64,
    /// Current watermark blocker tn (0 = none).
    pub blocker_tn: u64,
    /// Epoch folds performed.
    pub epoch_folds: u64,
}

/// One sample of every engine gauge.
#[derive(Debug, Clone, Default)]
pub struct GaugeSample {
    /// Version-control state.
    pub vc: VcView,
    /// Committed versions resident in the store.
    pub live_versions: u64,
    /// Pending (uncommitted) versions resident in the store.
    pub pending_versions: u64,
    /// Objects currently holding at least one lock (0 for lock-free CC).
    pub locked_objects: u64,
    /// Lock shards with at least one held lock (0 for lock-free CC).
    pub occupied_lock_shards: u64,
    /// Bytes appended to the WAL but not yet fsynced (0 without a WAL).
    pub wal_backlog_bytes: u64,
    /// Whether the engine runs the centralized VC. The queue gauges
    /// (`vcqueue_depth`, `vcqueue_head_age_us`) are emitted only when
    /// true — under `vc_dec` they would read the legacy queue and
    /// report zero/stale values.
    pub centralized_vc: bool,
    /// Decentralized-VC summary gauges, present when the engine is
    /// decentralized (emitted as `vcdec_*` fields).
    pub vc_dec: Option<VcDecGauges>,
    /// Protocol- or site-specific extras (e.g. adaptive mode, dist gtn
    /// skew), appended verbatim to exporter output.
    pub extra: Vec<(&'static str, u64)>,
}

impl GaugeSample {
    /// Flatten to `(name, value)` pairs for the exporters. Queue gauges
    /// appear only for the centralized engine; `vcdec_*` gauges only
    /// for the decentralized one.
    pub fn fields(&self) -> Vec<(&'static str, u64)> {
        let mut out = vec![
            ("tnc", self.vc.tnc),
            ("vtnc", self.vc.vtnc),
            ("vtnc_lag", self.vc.vtnc_lag()),
        ];
        if self.centralized_vc {
            out.push(("vcqueue_depth", self.vc.queue_depth));
            out.push(("vcqueue_head_age_us", self.vc.head_age_us.unwrap_or(0)));
        }
        if let Some(d) = &self.vc_dec {
            out.push(("vcdec_threads", d.threads));
            out.push(("vcdec_retired_threads", d.retired_threads));
            out.push(("vcdec_inflight", d.inflight));
            out.push(("vcdec_max_thread_lag", d.max_thread_lag));
            out.push(("vcdec_blocks_live", d.blocks_live));
            out.push(("vcdec_blocker_tn", d.blocker_tn));
            out.push(("vcdec_epoch_folds", d.epoch_folds));
        }
        out.extend([
            ("live_versions", self.live_versions),
            ("pending_versions", self.pending_versions),
            ("locked_objects", self.locked_objects),
            ("occupied_lock_shards", self.occupied_lock_shards),
            ("wal_backlog_bytes", self.wal_backlog_bytes),
        ]);
        out.extend(self.extra.iter().copied());
        out
    }
}

/// Background gauge sampler. Holds the latest sample; stops on drop.
pub struct GaugeCollector {
    latest: Arc<Mutex<Option<GaugeSample>>>,
    stop: Arc<AtomicBool>,
    handle: Option<JoinHandle<()>>,
}

impl std::fmt::Debug for GaugeCollector {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("GaugeCollector")
            .field("running", &self.handle.is_some())
            .finish()
    }
}

impl GaugeCollector {
    /// Spawn a collector calling `sample` every `interval`.
    pub fn spawn(
        interval: Duration,
        sample: Arc<dyn Fn() -> GaugeSample + Send + Sync>,
    ) -> GaugeCollector {
        let latest = Arc::new(Mutex::new(None));
        let stop = Arc::new(AtomicBool::new(false));
        let (latest2, stop2) = (latest.clone(), stop.clone());
        let handle = std::thread::Builder::new()
            .name("mvdb-gauges".into())
            .spawn(move || {
                while !stop2.load(Ordering::Relaxed) {
                    let s = sample();
                    *latest2.lock().expect("gauge mutex poisoned") = Some(s);
                    // Sleep in small steps so drop is prompt even with a
                    // long interval.
                    let mut left = interval;
                    while !left.is_zero() && !stop2.load(Ordering::Relaxed) {
                        let step = left.min(Duration::from_millis(10));
                        std::thread::sleep(step);
                        left = left.saturating_sub(step);
                    }
                }
            })
            .expect("failed to spawn gauge collector");
        GaugeCollector {
            latest,
            stop,
            handle: Some(handle),
        }
    }

    /// The most recent sample, if the collector has run at least once.
    pub fn latest(&self) -> Option<GaugeSample> {
        self.latest.lock().expect("gauge mutex poisoned").clone()
    }

    /// Stop the collector and join its thread (idempotent).
    pub fn stop(&mut self) {
        self.stop.store(true, Ordering::Relaxed);
        if let Some(h) = self.handle.take() {
            let _ = h.join();
        }
    }
}

impl Drop for GaugeCollector {
    fn drop(&mut self) {
        self.stop();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn vc_view_lag() {
        let v = VcView {
            tnc: 10,
            vtnc: 7,
            ..Default::default()
        };
        assert_eq!(v.vtnc_lag(), 3);
        assert_eq!(VcView::default().vtnc_lag(), 0);
    }

    #[test]
    fn queue_gauges_gate_on_engine_kind() {
        let central = GaugeSample {
            centralized_vc: true,
            ..Default::default()
        };
        let names: Vec<_> = central.fields().into_iter().map(|(n, _)| n).collect();
        assert!(names.contains(&"vcqueue_depth"));
        assert!(!names.iter().any(|n| n.starts_with("vcdec_")));

        let map = VcWaitPointMap {
            vtnc: 10,
            blocker_tn: Some(12),
            blocks_live: 2,
            epoch_folds: 5,
            watermark_scan_ns: 100,
            threads: vec![
                VcThreadPoint {
                    last_assigned: 14,
                    inflight: 3,
                    retired: false,
                },
                VcThreadPoint {
                    last_assigned: 11,
                    inflight: 0,
                    retired: true,
                },
            ],
        };
        assert_eq!(map.inflight_total(), 3);
        assert_eq!(map.max_thread_lag(), 4);
        let dec = GaugeSample {
            vc_dec: Some(map.gauges()),
            ..Default::default()
        };
        let fields = dec.fields();
        let names: Vec<_> = fields.iter().map(|&(n, _)| n).collect();
        assert!(!names.contains(&"vcqueue_depth"), "queue gauge suppressed");
        assert!(fields.contains(&("vcdec_threads", 2)));
        assert!(fields.contains(&("vcdec_retired_threads", 1)));
        assert!(fields.contains(&("vcdec_inflight", 3)));
        assert!(fields.contains(&("vcdec_max_thread_lag", 4)));
        assert!(fields.contains(&("vcdec_blocker_tn", 12)));
    }

    #[test]
    fn sample_fields_include_extras() {
        let s = GaugeSample {
            vc: VcView {
                tnc: 5,
                ..Default::default()
            },
            extra: vec![("adaptive_mode", 1)],
            ..Default::default()
        };
        let fields = s.fields();
        assert!(fields.contains(&("tnc", 5)));
        assert!(fields.contains(&("adaptive_mode", 1)));
    }

    #[test]
    fn collector_samples_and_stops() {
        use std::sync::atomic::AtomicU64;
        let calls = Arc::new(AtomicU64::new(0));
        let calls2 = calls.clone();
        let mut c = GaugeCollector::spawn(
            Duration::from_millis(1),
            Arc::new(move || {
                let n = calls2.fetch_add(1, Ordering::Relaxed);
                GaugeSample {
                    live_versions: n,
                    ..Default::default()
                }
            }),
        );
        let deadline = std::time::Instant::now() + Duration::from_secs(2);
        while c.latest().is_none() && std::time::Instant::now() < deadline {
            std::thread::sleep(Duration::from_millis(1));
        }
        assert!(c.latest().is_some());
        c.stop();
        let after = calls.load(Ordering::Relaxed);
        std::thread::sleep(Duration::from_millis(20));
        assert_eq!(calls.load(Ordering::Relaxed), after, "still sampling");
    }
}
