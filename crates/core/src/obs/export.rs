//! Metrics exporters: Prometheus text format and JSON snapshots.
//!
//! Both emitters are pure functions over snapshots — counters from
//! [`MetricsSnapshot::fields`], gauges from [`GaugeSample::fields`], and
//! per-phase latency summaries from [`PhaseSnapshot`] — so they can run
//! from a reporter hook, a test, or an end-of-run dump without touching
//! engine internals. JSON is hand-rolled: the workspace's vendored serde
//! shim is a no-op.

use super::gauges::GaugeSample;
use super::phases::PhaseSnapshot;
use crate::metrics::MetricsSnapshot;
use mvcc_storage::Histogram;

/// Escape a string for inclusion in a JSON string literal.
pub fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

fn phase_quantiles(h: &Histogram) -> [(f64, u64); 3] {
    [
        (0.5, h.p50().as_nanos() as u64),
        (0.99, h.p99().as_nanos() as u64),
        (1.0, h.max().as_nanos() as u64),
    ]
}

/// Render everything in the Prometheus text exposition format
/// (`# HELP`/`# TYPE` headers, `mvdb_`-prefixed metric names, phase
/// latencies as native-histogram-free summaries).
pub fn prometheus_text(
    metrics: &MetricsSnapshot,
    gauges: Option<&GaugeSample>,
    phases: Option<&PhaseSnapshot>,
) -> String {
    let mut out = String::with_capacity(4096);
    for (name, value) in metrics.fields() {
        out.push_str(&format!(
            "# HELP mvdb_{name} engine counter\n# TYPE mvdb_{name} counter\nmvdb_{name} {value}\n"
        ));
    }
    if let Some(g) = gauges {
        for (name, value) in g.fields() {
            out.push_str(&format!(
                "# HELP mvdb_gauge_{name} engine gauge\n# TYPE mvdb_gauge_{name} gauge\nmvdb_gauge_{name} {value}\n"
            ));
        }
    }
    if let Some(p) = phases {
        for (phase, h) in p.phases() {
            let base = format!("mvdb_phase_{phase}_ns");
            out.push_str(&format!(
                "# HELP {base} engine phase latency (ns)\n# TYPE {base} summary\n"
            ));
            for (q, v) in phase_quantiles(h) {
                out.push_str(&format!("{base}{{quantile=\"{q}\"}} {v}\n"));
            }
            out.push_str(&format!("{base}_sum {}\n", h.sum_ns()));
            out.push_str(&format!("{base}_count {}\n", h.count()));
        }
    }
    out
}

/// Render everything as one JSON object:
/// `{"counters":{...},"gauges":{...}|null,"phases":{...}|null}`.
pub fn json_snapshot(
    metrics: &MetricsSnapshot,
    gauges: Option<&GaugeSample>,
    phases: Option<&PhaseSnapshot>,
) -> String {
    let mut out = String::with_capacity(4096);
    out.push_str("{\n  \"counters\": {");
    for (i, (name, value)) in metrics.fields().into_iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&format!("\n    \"{name}\": {value}"));
    }
    out.push_str("\n  },\n  \"gauges\": ");
    match gauges {
        Some(g) => {
            out.push('{');
            for (i, (name, value)) in g.fields().into_iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                out.push_str(&format!("\n    \"{name}\": {value}"));
            }
            out.push_str("\n  }");
        }
        None => out.push_str("null"),
    }
    out.push_str(",\n  \"phases\": ");
    match phases {
        Some(p) => {
            out.push('{');
            for (i, (phase, h)) in p.phases().into_iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                out.push_str(&format!(
                    "\n    \"{phase}\": {{\"count\": {}, \"sum_ns\": {}, \"p50_ns\": {}, \"p99_ns\": {}, \"max_ns\": {}}}",
                    h.count(),
                    h.sum_ns(),
                    h.p50().as_nanos(),
                    h.p99().as_nanos(),
                    h.max().as_nanos()
                ));
            }
            out.push_str("\n  }");
        }
        None => out.push_str("null"),
    }
    out.push_str("\n}\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::Metrics;
    use std::sync::atomic::Ordering;
    use std::time::Duration;

    #[test]
    fn escape_handles_specials() {
        assert_eq!(json_escape("a\"b\\c\nd"), "a\\\"b\\\\c\\nd");
        assert_eq!(json_escape("\u{1}"), "\\u0001");
        assert_eq!(json_escape("plain"), "plain");
    }

    #[test]
    fn prometheus_text_has_all_sections() {
        let m = Metrics::new();
        m.rw_committed.fetch_add(5, Ordering::Relaxed);
        let phases = super::super::phases::PhaseHistograms::new();
        phases.wal_append.record(Duration::from_micros(3));
        let gauges = GaugeSample {
            live_versions: 11,
            ..Default::default()
        };
        let text = prometheus_text(&m.snapshot(), Some(&gauges), Some(&phases.snapshot()));
        assert!(text.contains("mvdb_rw_committed 5"));
        assert!(text.contains("# TYPE mvdb_rw_committed counter"));
        assert!(text.contains("mvdb_gauge_live_versions 11"));
        assert!(text.contains("# TYPE mvdb_gauge_live_versions gauge"));
        assert!(text.contains("mvdb_phase_wal_append_ns_count 1"));
        assert!(text.contains("quantile=\"0.5\""));
        // Every non-comment line is `name{labels}? value`.
        for line in text.lines().filter(|l| !l.starts_with('#')) {
            let mut parts = line.rsplitn(2, ' ');
            let value = parts.next().unwrap();
            assert!(value.parse::<f64>().is_ok(), "bad sample line: {line}");
            assert!(parts.next().is_some(), "no metric name: {line}");
        }
    }

    #[test]
    fn json_snapshot_shape() {
        let m = Metrics::new();
        m.ro_begun.fetch_add(2, Ordering::Relaxed);
        let text = json_snapshot(&m.snapshot(), None, None);
        assert!(text.contains("\"counters\""));
        assert!(text.contains("\"ro_begun\": 2"));
        assert!(text.contains("\"gauges\": null"));
        assert!(text.contains("\"phases\": null"));
        // Balanced braces (cheap well-formedness check without serde).
        let opens = text.matches('{').count();
        let closes = text.matches('}').count();
        assert_eq!(opens, closes);
    }
}
