//! Exporters: Prometheus text, JSON snapshots, and trace JSON.
//!
//! All emitters are pure functions over snapshots — counters from
//! [`MetricsSnapshot::fields`], gauges from [`GaugeSample::fields`],
//! per-phase latency histograms from [`PhaseSnapshot`], per-kind event
//! counts from [`EventCounts`], and span trees from [`TraceSnapshot`] —
//! so they can run from a reporter hook, a test, or an end-of-run dump
//! without touching engine internals. JSON is hand-rolled: the
//! workspace's vendored serde shim is a no-op.
//!
//! The Prometheus output is conformant text exposition: every family has
//! `# HELP`/`# TYPE`, and phase latencies are true histograms with
//! cumulative `le` buckets ending in `+Inf` (equal to `_count`).
//! [`parse_exposition`] is a strict validator used by the round-trip
//! tests and CI.

use super::blame::WaitPoint;
use super::event::{EventKind, KIND_COUNT};
use super::gauges::{GaugeSample, VcWaitPointMap};
use super::phases::PhaseSnapshot;
use super::trace::TraceSnapshot;
use super::AttrSnapshot;
use crate::metrics::MetricsSnapshot;
use mvcc_storage::{Histogram, SketchEntry};

/// Version of the JSON shapes emitted by [`json_snapshot`] and
/// [`profile_json`]. Bumped whenever a key is added, removed, or
/// renamed, so downstream scrapers can detect shape changes.
pub const SCHEMA_VERSION: u64 = 2;

/// Per-kind event counters plus buffer accounting, for exporters.
#[derive(Debug, Clone, Default)]
pub struct EventCounts {
    /// Exact emit count per kind (counter tier, sampling-independent).
    pub counts: [u64; KIND_COUNT],
    /// Events lost to per-thread buffer overflow (exact).
    pub dropped: u64,
    /// Events published into the global ring (post-sampling).
    pub published: u64,
}

/// Escape a string for inclusion in a JSON string literal.
pub fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// Append one phase histogram as a conformant Prometheus histogram:
/// cumulative `le` buckets (inclusive upper bounds from the log₂
/// bucketing) up to the highest occupied bucket, then `+Inf`, `_sum`,
/// `_count`.
fn push_histogram(out: &mut String, base: &str, h: &Histogram) {
    out.push_str(&format!(
        "# HELP {base} engine phase latency (ns)\n# TYPE {base} histogram\n"
    ));
    let counts = h.bucket_counts();
    let highest = counts.iter().rposition(|&c| c > 0).unwrap_or(0);
    let mut cum = 0u64;
    for (i, &c) in counts.iter().enumerate().take(highest + 1) {
        cum += c;
        out.push_str(&format!(
            "{base}_bucket{{le=\"{}\"}} {cum}\n",
            Histogram::bucket_upper_bound(i)
        ));
    }
    out.push_str(&format!("{base}_bucket{{le=\"+Inf\"}} {}\n", h.count()));
    out.push_str(&format!("{base}_sum {}\n", h.sum_ns()));
    out.push_str(&format!("{base}_count {}\n", h.count()));
}

/// Render everything in the Prometheus text exposition format
/// (`# HELP`/`# TYPE` headers, `mvdb_`-prefixed metric names, phase
/// latencies as cumulative-bucket histograms, per-kind event counters).
pub fn prometheus_text(
    metrics: &MetricsSnapshot,
    gauges: Option<&GaugeSample>,
    phases: Option<&PhaseSnapshot>,
    events: Option<&EventCounts>,
    attr: Option<&AttrSnapshot>,
) -> String {
    let mut out = String::with_capacity(8192);
    for (name, value) in metrics.fields() {
        out.push_str(&format!(
            "# HELP mvdb_{name} engine counter\n# TYPE mvdb_{name} counter\nmvdb_{name} {value}\n"
        ));
    }
    if let Some(g) = gauges {
        for (name, value) in g.fields() {
            out.push_str(&format!(
                "# HELP mvdb_gauge_{name} engine gauge\n# TYPE mvdb_gauge_{name} gauge\nmvdb_gauge_{name} {value}\n"
            ));
        }
    }
    if let Some(e) = events {
        out.push_str(
            "# HELP mvdb_events_total events emitted per kind (exact, sampling-independent)\n\
             # TYPE mvdb_events_total counter\n",
        );
        for kind in EventKind::all() {
            out.push_str(&format!(
                "mvdb_events_total{{kind=\"{}\"}} {}\n",
                kind.name(),
                e.counts[kind as usize]
            ));
        }
        out.push_str(&format!(
            "# HELP mvdb_events_published_total events published into the ring (post-sampling)\n\
             # TYPE mvdb_events_published_total counter\n\
             mvdb_events_published_total {}\n",
            e.published
        ));
        out.push_str(&format!(
            "# HELP mvdb_events_dropped_total events lost to buffer overflow (exact)\n\
             # TYPE mvdb_events_dropped_total counter\n\
             mvdb_events_dropped_total {}\n",
            e.dropped
        ));
    }
    if let Some(p) = phases {
        for (phase, h) in p.phases() {
            push_histogram(&mut out, &format!("mvdb_phase_{phase}_ns"), h);
        }
    }
    if let Some(a) = attr {
        push_sketch_family(&mut out, "mvdb_hot_key", "key", &a.hot_keys);
        push_sketch_family(&mut out, "mvdb_hot_shard", "shard", &a.hot_shards);
        out.push_str(
            "# HELP mvdb_blame_wait_ns_total blocked ns by wait point and blocker phase\n\
             # TYPE mvdb_blame_wait_ns_total counter\n",
        );
        // Aggregate rows by (wait, phase): one sample per label set.
        let mut by_pair: std::collections::BTreeMap<(&str, &str), u64> =
            std::collections::BTreeMap::new();
        for r in &a.blame.rows {
            *by_pair
                .entry((r.wait.name(), r.blocker_phase.name()))
                .or_default() += r.wait_ns;
        }
        for ((wait, phase), ns) in by_pair {
            out.push_str(&format!(
                "mvdb_blame_wait_ns_total{{wait=\"{wait}\",blocker_phase=\"{phase}\"}} {ns}\n"
            ));
        }
        for (name, help, values) in [
            (
                "mvdb_blame_attributed_ns_total",
                "blocked ns attributed to a named blocker",
                &a.blame.attributed_ns,
            ),
            (
                "mvdb_blame_unattributed_ns_total",
                "blocked ns with no blocker identity",
                &a.blame.unattributed_ns,
            ),
            (
                "mvdb_blame_samples_total",
                "completed waits recorded",
                &a.blame.samples,
            ),
        ] {
            out.push_str(&format!("# HELP {name} {help}\n# TYPE {name} counter\n"));
            for (i, v) in values.iter().enumerate() {
                out.push_str(&format!("{name}{{wait=\"{}\"}} {v}\n", wait_point_name(i)));
            }
        }
    }
    out
}

fn wait_point_name(i: usize) -> &'static str {
    [
        WaitPoint::LockWait,
        WaitPoint::PendingWait,
        WaitPoint::VisibilityWait,
        WaitPoint::FoldStall,
    ][i]
        .name()
}

/// Append one top-K sketch as three labeled counter families:
/// `{base}_contended_ns_total`, `{base}_hits_total`, `{base}_aborts_total`.
fn push_sketch_family(out: &mut String, base: &str, label: &str, entries: &[SketchEntry]) {
    for (suffix, help, get) in [
        (
            "contended_ns_total",
            "ns spent blocked, by hottest",
            (|e: &SketchEntry| e.contended_ns) as fn(&SketchEntry) -> u64,
        ),
        ("hits_total", "contention encounters", |e: &SketchEntry| {
            e.hits
        }),
        ("aborts_total", "contention aborts", |e: &SketchEntry| {
            e.aborts
        }),
    ] {
        out.push_str(&format!(
            "# HELP {base}_{suffix} {help}\n# TYPE {base}_{suffix} counter\n"
        ));
        for e in entries {
            out.push_str(&format!(
                "{base}_{suffix}{{{label}=\"{}\"}} {}\n",
                e.key,
                get(e)
            ));
        }
    }
}

/// Strictly validate Prometheus text exposition, as produced by
/// [`prometheus_text`]. Checks line syntax, metric/label name charsets,
/// numeric values, `# TYPE` present before a family's first sample, and
/// histogram conformance (cumulative non-decreasing buckets ending in a
/// `+Inf` bucket equal to `_count`). Returns the number of sample lines.
pub fn parse_exposition(text: &str) -> Result<usize, String> {
    fn valid_name(s: &str) -> bool {
        !s.is_empty()
            && s.chars()
                .next()
                .is_some_and(|c| c.is_ascii_alphabetic() || c == '_' || c == ':')
            && s.chars()
                .all(|c| c.is_ascii_alphanumeric() || c == '_' || c == ':')
    }
    // family name -> declared type
    let mut types: std::collections::BTreeMap<String, String> = std::collections::BTreeMap::new();
    // histogram family -> (bucket cumulative counts in order, count value)
    type HistState = (Vec<(String, f64)>, Option<f64>);
    let mut hists: std::collections::BTreeMap<String, HistState> =
        std::collections::BTreeMap::new();
    let mut samples = 0usize;

    let family_of = |name: &str, types: &std::collections::BTreeMap<String, String>| -> String {
        for suffix in ["_bucket", "_sum", "_count"] {
            if let Some(stripped) = name.strip_suffix(suffix) {
                if let Some(t) = types.get(stripped) {
                    if t == "histogram" || t == "summary" {
                        return stripped.to_string();
                    }
                }
            }
        }
        name.to_string()
    };

    for (lineno, line) in text.lines().enumerate() {
        let n = lineno + 1;
        if line.is_empty() {
            continue;
        }
        if let Some(rest) = line.strip_prefix("# ") {
            let mut it = rest.splitn(3, ' ');
            let keyword = it.next().unwrap_or("");
            let name = it.next().unwrap_or("");
            let payload = it.next().unwrap_or("");
            match keyword {
                "HELP" => {
                    if !valid_name(name) {
                        return Err(format!("line {n}: bad metric name in HELP: {name:?}"));
                    }
                }
                "TYPE" => {
                    if !valid_name(name) {
                        return Err(format!("line {n}: bad metric name in TYPE: {name:?}"));
                    }
                    if !["counter", "gauge", "histogram", "summary", "untyped"].contains(&payload) {
                        return Err(format!("line {n}: unknown TYPE {payload:?}"));
                    }
                    if types
                        .insert(name.to_string(), payload.to_string())
                        .is_some()
                    {
                        return Err(format!("line {n}: duplicate TYPE for {name}"));
                    }
                }
                _ => return Err(format!("line {n}: unknown comment keyword {keyword:?}")),
            }
            continue;
        }
        if line.starts_with('#') {
            return Err(format!("line {n}: comment must start with '# '"));
        }
        // Sample line: name[{labels}] value
        let (ident, value) = line
            .rsplit_once(' ')
            .ok_or_else(|| format!("line {n}: no value: {line:?}"))?;
        let value: f64 = match value {
            "+Inf" => f64::INFINITY,
            "-Inf" => f64::NEG_INFINITY,
            v => v
                .parse()
                .map_err(|_| format!("line {n}: bad value {v:?}"))?,
        };
        let (name, labels) = match ident.split_once('{') {
            Some((name, rest)) => {
                let labels = rest
                    .strip_suffix('}')
                    .ok_or_else(|| format!("line {n}: unterminated label set"))?;
                (name, Some(labels))
            }
            None => (ident, None),
        };
        if !valid_name(name) {
            return Err(format!("line {n}: bad metric name {name:?}"));
        }
        let mut le: Option<String> = None;
        if let Some(labels) = labels {
            for pair in labels.split(',').filter(|p| !p.is_empty()) {
                let (k, v) = pair
                    .split_once('=')
                    .ok_or_else(|| format!("line {n}: bad label pair {pair:?}"))?;
                if !valid_name(k) {
                    return Err(format!("line {n}: bad label name {k:?}"));
                }
                let v = v
                    .strip_prefix('"')
                    .and_then(|v| v.strip_suffix('"'))
                    .ok_or_else(|| format!("line {n}: unquoted label value {v:?}"))?;
                if k == "le" {
                    le = Some(v.to_string());
                }
            }
        }
        let family = family_of(name, &types);
        let declared = types
            .get(&family)
            .ok_or_else(|| format!("line {n}: sample {name} before its # TYPE"))?;
        if declared == "histogram" {
            let entry = hists.entry(family.clone()).or_default();
            if name.ends_with("_bucket") {
                let le = le.ok_or_else(|| format!("line {n}: histogram bucket without le"))?;
                entry.0.push((le, value));
            } else if name.ends_with("_count") {
                entry.1 = Some(value);
            }
        }
        samples += 1;
    }
    for (family, (buckets, count)) in &hists {
        if buckets.is_empty() {
            return Err(format!("histogram {family} has no buckets"));
        }
        let mut prev = f64::NEG_INFINITY;
        let mut prev_bound = f64::NEG_INFINITY;
        for (le, cum) in buckets {
            let bound: f64 = match le.as_str() {
                "+Inf" => f64::INFINITY,
                v => v
                    .parse()
                    .map_err(|_| format!("histogram {family}: bad le {v:?}"))?,
            };
            if bound <= prev_bound {
                return Err(format!("histogram {family}: le ladder not increasing"));
            }
            if *cum < prev {
                return Err(format!("histogram {family}: buckets not cumulative"));
            }
            prev = *cum;
            prev_bound = bound;
        }
        let (last_le, last_cum) = buckets.last().unwrap();
        if last_le != "+Inf" {
            return Err(format!("histogram {family}: missing +Inf bucket"));
        }
        match count {
            Some(c) if c == last_cum => {}
            Some(c) => {
                return Err(format!(
                    "histogram {family}: +Inf bucket {last_cum} != _count {c}"
                ))
            }
            None => return Err(format!("histogram {family}: missing _count")),
        }
    }
    Ok(samples)
}

/// Render everything as one JSON object:
/// `{"schema_version":N,"counters":{...},"gauges":{...}|null,"phases":{...}|null,"events":{...}|null}`.
pub fn json_snapshot(
    metrics: &MetricsSnapshot,
    gauges: Option<&GaugeSample>,
    phases: Option<&PhaseSnapshot>,
    events: Option<&EventCounts>,
) -> String {
    let mut out = String::with_capacity(4096);
    out.push_str(&format!(
        "{{\n  \"schema_version\": {SCHEMA_VERSION},\n  \"counters\": {{"
    ));
    for (i, (name, value)) in metrics.fields().into_iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&format!("\n    \"{name}\": {value}"));
    }
    out.push_str("\n  },\n  \"gauges\": ");
    match gauges {
        Some(g) => {
            out.push('{');
            for (i, (name, value)) in g.fields().into_iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                out.push_str(&format!("\n    \"{name}\": {value}"));
            }
            out.push_str("\n  }");
        }
        None => out.push_str("null"),
    }
    out.push_str(",\n  \"phases\": ");
    match phases {
        Some(p) => {
            out.push('{');
            for (i, (phase, h)) in p.phases().into_iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                out.push_str(&format!(
                    "\n    \"{phase}\": {{\"count\": {}, \"sum_ns\": {}, \"p50_ns\": {}, \"p99_ns\": {}, \"max_ns\": {}}}",
                    h.count(),
                    h.sum_ns(),
                    h.p50().as_nanos(),
                    h.p99().as_nanos(),
                    h.max().as_nanos()
                ));
            }
            out.push_str("\n  }");
        }
        None => out.push_str("null"),
    }
    out.push_str(",\n  \"events\": ");
    match events {
        Some(e) => {
            out.push('{');
            out.push_str("\n    \"counts\": {");
            for (i, kind) in EventKind::all().into_iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                out.push_str(&format!(
                    "\n      \"{}\": {}",
                    kind.name(),
                    e.counts[kind as usize]
                ));
            }
            out.push_str(&format!(
                "\n    }},\n    \"published\": {},\n    \"dropped\": {}\n  }}",
                e.published, e.dropped
            ));
        }
        None => out.push_str("null"),
    }
    out.push_str("\n}\n");
    out
}

fn push_sketch_entries(out: &mut String, entries: &[SketchEntry], indent: &str) {
    out.push('[');
    for (i, e) in entries.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&format!(
            "\n{indent}  {{\"key\": {}, \"hits\": {}, \"contended_ns\": {}, \"aborts\": {}}}",
            e.key, e.hits, e.contended_ns, e.aborts
        ));
    }
    if !entries.is_empty() {
        out.push('\n');
        out.push_str(indent);
    }
    out.push(']');
}

fn push_wait_point_array(out: &mut String, values: &[u64; super::blame::WAIT_POINTS]) {
    out.push('{');
    for (i, v) in values.iter().enumerate() {
        if i > 0 {
            out.push_str(", ");
        }
        out.push_str(&format!("\"{}\": {v}", wait_point_name(i)));
    }
    out.push('}');
}

/// Render the contention-attribution profile (and the decentralized-VC
/// wait-point map, when the engine is decentralized) as one JSON
/// object. `attr` is `None` when attribution is disabled:
/// `{"schema_version":N,"attribution":{...}|null,"vc_wait_points":{...}|null}`.
///
/// The blame profile carries each folded row both structured and in
/// pprof "folded" form (`wait;blocker_phase;target wait_ns`), so
/// flame-graph tooling can consume `rows[].folded` directly.
pub fn profile_json(attr: Option<&AttrSnapshot>, wait: Option<&VcWaitPointMap>) -> String {
    let mut out = String::with_capacity(4096);
    out.push_str(&format!(
        "{{\n  \"schema_version\": {SCHEMA_VERSION},\n  \"attribution\": "
    ));
    match attr {
        Some(a) => {
            out.push_str("{\n    \"hot_keys\": ");
            push_sketch_entries(&mut out, &a.hot_keys, "    ");
            out.push_str(",\n    \"hot_shards\": ");
            push_sketch_entries(&mut out, &a.hot_shards, "    ");
            out.push_str(",\n    \"blame\": {\n      \"samples\": ");
            push_wait_point_array(&mut out, &a.blame.samples);
            out.push_str(",\n      \"attributed_ns\": ");
            push_wait_point_array(&mut out, &a.blame.attributed_ns);
            out.push_str(",\n      \"unattributed_ns\": ");
            push_wait_point_array(&mut out, &a.blame.unattributed_ns);
            out.push_str(",\n      \"rows\": [");
            for (i, r) in a.blame.rows.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                out.push_str(&format!(
                    "\n        {{\"wait\": \"{}\", \"blocker_phase\": \"{}\", \"target\": {}, \
                     \"samples\": {}, \"wait_ns\": {}, \"folded\": \"{}\"}}",
                    r.wait.name(),
                    r.blocker_phase.name(),
                    r.target.map_or("null".into(), |t| t.to_string()),
                    r.samples,
                    r.wait_ns,
                    json_escape(&r.folded())
                ));
            }
            if !a.blame.rows.is_empty() {
                out.push_str("\n      ");
            }
            out.push_str("],\n      \"top_blockers\": ");
            push_sketch_entries(&mut out, &a.blame.top_blockers, "      ");
            out.push_str("\n    }\n  }");
        }
        None => out.push_str("null"),
    }
    out.push_str(",\n  \"vc_wait_points\": ");
    match wait {
        Some(w) => {
            out.push_str(&format!(
                "{{\n    \"vtnc\": {},\n    \"blocker_tn\": {},\n    \"blocks_live\": {},\n    \
                 \"epoch_folds\": {},\n    \"watermark_scan_ns\": {},\n    \
                 \"inflight_total\": {},\n    \"max_thread_lag\": {},\n    \"threads\": [",
                w.vtnc,
                w.blocker_tn.map_or("null".into(), |t| t.to_string()),
                w.blocks_live,
                w.epoch_folds,
                w.watermark_scan_ns,
                w.inflight_total(),
                w.max_thread_lag(),
            ));
            for (i, t) in w.threads.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                out.push_str(&format!(
                    "\n      {{\"last_assigned\": {}, \"inflight\": {}, \"retired\": {}, \
                     \"watermark_lag\": {}}}",
                    t.last_assigned,
                    t.inflight,
                    t.retired,
                    t.watermark_lag(w.vtnc)
                ));
            }
            if !w.threads.is_empty() {
                out.push_str("\n    ");
            }
            out.push_str("]\n  }");
        }
        None => out.push_str("null"),
    }
    out.push_str("\n}\n");
    out
}

/// Render a trace as Chrome `trace_event` JSON (open in
/// `chrome://tracing` or Perfetto): one complete (`ph:"X"`) event per
/// span, timestamps in microseconds, span tree in `args`.
pub fn chrome_trace_json(trace: &TraceSnapshot) -> String {
    let mut out = String::with_capacity(2048);
    out.push_str("{\"displayTimeUnit\":\"ms\",\"traceEvents\":[\n");
    for (i, s) in trace.spans.iter().enumerate() {
        if i > 0 {
            out.push_str(",\n");
        }
        let ts_us = s.start_ns / 1000;
        let ts_frac = s.start_ns % 1000;
        let dur_ns = s.end_ns.saturating_sub(s.start_ns);
        let dur_us = dur_ns / 1000;
        let dur_frac = dur_ns % 1000;
        out.push_str(&format!(
            "{{\"name\":\"{}\",\"cat\":\"mvdb\",\"ph\":\"X\",\"ts\":{ts_us}.{ts_frac:03},\
             \"dur\":{dur_us}.{dur_frac:03},\"pid\":1,\"tid\":{},\"args\":{{\
             \"trace_id\":{},\"span_id\":{},\"parent\":{}",
            json_escape(s.name),
            s.thread,
            trace.trace_id,
            s.span_id,
            s.parent
        ));
        for (k, v) in &s.attrs {
            // The fixed arg keys win: a colliding span attr (the root
            // span carries `trace_id`) would produce duplicate JSON keys.
            if matches!(*k, "trace_id" | "span_id" | "parent") {
                continue;
            }
            out.push_str(&format!(",\"{}\":{v}", json_escape(k)));
        }
        out.push_str("}}");
    }
    out.push_str(&format!(
        "\n],\"metadata\":{{\"trace_id\":{},\"dropped_spans\":{}}}}}\n",
        trace.trace_id, trace.dropped_spans
    ));
    out
}

/// Render a trace as compact OTLP-like JSON (the shape of an OTLP/HTTP
/// `ExportTraceServiceRequest` body, with hex-encoded ids and int
/// attributes).
pub fn otlp_trace_json(trace: &TraceSnapshot) -> String {
    let mut out = String::with_capacity(2048);
    out.push_str(
        "{\"resourceSpans\":[{\"resource\":{\"attributes\":[{\"key\":\"service.name\",\
         \"value\":{\"stringValue\":\"mvdb\"}}]},\"scopeSpans\":[{\"scope\":\
         {\"name\":\"mvdb.obs\"},\"spans\":[\n",
    );
    for (i, s) in trace.spans.iter().enumerate() {
        if i > 0 {
            out.push_str(",\n");
        }
        let parent = if s.parent == 0 {
            String::new()
        } else {
            format!("{:016x}", s.parent)
        };
        out.push_str(&format!(
            "{{\"traceId\":\"{:032x}\",\"spanId\":\"{:016x}\",\"parentSpanId\":\"{parent}\",\
             \"name\":\"{}\",\"kind\":1,\"startTimeUnixNano\":\"{}\",\"endTimeUnixNano\":\"{}\",\
             \"attributes\":[",
            trace.trace_id,
            s.span_id,
            json_escape(s.name),
            s.start_ns,
            s.end_ns
        ));
        out.push_str(&format!(
            "{{\"key\":\"thread\",\"value\":{{\"intValue\":\"{}\"}}}}",
            s.thread
        ));
        for (k, v) in &s.attrs {
            out.push_str(&format!(
                ",{{\"key\":\"{}\",\"value\":{{\"intValue\":\"{v}\"}}}}",
                json_escape(k)
            ));
        }
        out.push_str("]}");
    }
    out.push_str("\n]}]}]}\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::Metrics;
    use crate::obs::trace::{Span, ROOT_SPAN};
    use std::sync::atomic::Ordering;
    use std::time::Duration;

    #[test]
    fn escape_handles_specials() {
        assert_eq!(json_escape("a\"b\\c\nd"), "a\\\"b\\\\c\\nd");
        assert_eq!(json_escape("\u{1}"), "\\u0001");
        assert_eq!(json_escape("plain"), "plain");
    }

    fn sample_events() -> EventCounts {
        let mut e = EventCounts::default();
        e.counts[EventKind::Begin as usize] = 12;
        e.counts[EventKind::Abort as usize] = 3;
        e.published = 7;
        e.dropped = 1;
        e
    }

    #[test]
    fn prometheus_text_has_all_sections_and_validates() {
        let m = Metrics::new();
        m.rw_committed.fetch_add(5, Ordering::Relaxed);
        let phases = super::super::phases::PhaseHistograms::new();
        phases.wal_append.record(Duration::from_micros(3));
        phases.wal_append.record(Duration::from_micros(90));
        let gauges = GaugeSample {
            live_versions: 11,
            ..Default::default()
        };
        let text = prometheus_text(
            &m.snapshot(),
            Some(&gauges),
            Some(&phases.snapshot()),
            Some(&sample_events()),
            None,
        );
        assert!(text.contains("mvdb_rw_committed 5"));
        assert!(text.contains("# TYPE mvdb_rw_committed counter"));
        assert!(text.contains("mvdb_gauge_live_versions 11"));
        assert!(text.contains("# TYPE mvdb_gauge_live_versions gauge"));
        assert!(text.contains("# TYPE mvdb_phase_wal_append_ns histogram"));
        assert!(text.contains("mvdb_phase_wal_append_ns_bucket{le=\"+Inf\"} 2"));
        assert!(text.contains("mvdb_phase_wal_append_ns_count 2"));
        assert!(text.contains("mvdb_events_total{kind=\"begin\"} 12"));
        assert!(text.contains("mvdb_events_dropped_total 1"));
        let samples = parse_exposition(&text).expect("conformant exposition");
        assert!(samples > 10);
        // Every non-comment line is `name{labels}? value`.
        for line in text.lines().filter(|l| !l.starts_with('#')) {
            let mut parts = line.rsplitn(2, ' ');
            let value = parts.next().unwrap();
            assert!(value.parse::<f64>().is_ok(), "bad sample line: {line}");
            assert!(parts.next().is_some(), "no metric name: {line}");
        }
    }

    #[test]
    fn histogram_buckets_are_cumulative_with_inf() {
        let phases = super::super::phases::PhaseHistograms::new();
        for us in [1u64, 1, 2, 50, 800] {
            phases.ro_read.record(Duration::from_micros(us));
        }
        let m = Metrics::new();
        let text = prometheus_text(&m.snapshot(), None, Some(&phases.snapshot()), None, None);
        let buckets: Vec<u64> = text
            .lines()
            .filter(|l| l.starts_with("mvdb_phase_ro_read_ns_bucket"))
            .map(|l| l.rsplit(' ').next().unwrap().parse().unwrap())
            .collect();
        assert!(buckets.len() >= 2);
        assert!(buckets.windows(2).all(|w| w[0] <= w[1]), "cumulative");
        assert_eq!(*buckets.last().unwrap(), 5, "+Inf bucket == count");
        parse_exposition(&text).unwrap();
    }

    #[test]
    fn parser_rejects_malformed_exposition() {
        for (bad, why) in [
            ("mvdb_x 1\n", "sample before TYPE"),
            ("# TYPE mvdb_x counter\nmvdb_x one\n", "non-numeric value"),
            ("# TYPE mvdb_x counter\nmvdb_x{le=0} 1\n", "unquoted label"),
            ("# TYPE mvdb_x counter\nmvdb_x{le=\"0\" 1\n", "unterminated labels"),
            ("# TYPE mvdb_x banana\nmvdb_x 1\n", "unknown type"),
            ("#TYPE mvdb_x counter\n", "malformed comment"),
            (
                "# TYPE mvdb_x histogram\nmvdb_x_bucket{le=\"1\"} 2\nmvdb_x_bucket{le=\"+Inf\"} 1\nmvdb_x_count 1\n",
                "non-cumulative buckets",
            ),
            (
                "# TYPE mvdb_x histogram\nmvdb_x_bucket{le=\"1\"} 1\nmvdb_x_count 1\n",
                "missing +Inf",
            ),
            (
                "# TYPE mvdb_x histogram\nmvdb_x_bucket{le=\"+Inf\"} 2\nmvdb_x_count 1\n",
                "+Inf != count",
            ),
        ] {
            assert!(parse_exposition(bad).is_err(), "accepted malformed: {why}");
        }
    }

    fn sample_attr() -> AttrSnapshot {
        use crate::obs::{blame::TxnPhase, Attribution, ObsConfig};
        let attr = Attribution::new(&ObsConfig::default().with_attribution(true));
        attr.topk().record_key(42, 1000, true);
        attr.topk().record_key(7, 250, false);
        attr.topk().record_shard(3, 1250);
        attr.blame().set_phase(9, TxnPhase::Commit);
        attr.blame().record(WaitPoint::LockWait, 42, 9, 1000);
        attr.blame().record(WaitPoint::VisibilityWait, 11, 0, 300);
        attr.snapshot()
    }

    #[test]
    fn prometheus_attr_sections_validate() {
        let m = Metrics::new();
        let attr = sample_attr();
        let text = prometheus_text(&m.snapshot(), None, None, None, Some(&attr));
        assert!(text.contains("mvdb_hot_key_contended_ns_total{key=\"42\"} 1000"));
        assert!(text.contains("mvdb_hot_key_aborts_total{key=\"42\"} 1"));
        assert!(text.contains("mvdb_hot_shard_contended_ns_total{shard=\"3\"} 1250"));
        assert!(text.contains(
            "mvdb_blame_wait_ns_total{wait=\"lock_wait\",blocker_phase=\"commit\"} 1000"
        ));
        assert!(text.contains("mvdb_blame_attributed_ns_total{wait=\"lock_wait\"} 1000"));
        assert!(text.contains("mvdb_blame_unattributed_ns_total{wait=\"visibility_wait\"} 300"));
        assert!(text.contains("mvdb_blame_samples_total{wait=\"lock_wait\"} 1"));
        parse_exposition(&text).expect("conformant exposition with attribution");
    }

    #[test]
    fn profile_json_shape() {
        use crate::obs::gauges::{VcThreadPoint, VcWaitPointMap};
        // Disabled: both sections null, schema version present.
        let text = profile_json(None, None);
        assert!(text.contains(&format!("\"schema_version\": {SCHEMA_VERSION}")));
        assert!(text.contains("\"attribution\": null"));
        assert!(text.contains("\"vc_wait_points\": null"));

        let attr = sample_attr();
        let map = VcWaitPointMap {
            vtnc: 10,
            blocker_tn: Some(12),
            blocks_live: 1,
            epoch_folds: 4,
            watermark_scan_ns: 555,
            threads: vec![VcThreadPoint {
                last_assigned: 14,
                inflight: 2,
                retired: false,
            }],
        };
        let text = profile_json(Some(&attr), Some(&map));
        assert!(text.contains("\"hot_keys\""));
        assert!(text.contains("\"key\": 42"));
        assert!(text.contains("\"folded\": \"lock_wait;blocker_commit;target_42 1000\""));
        assert!(text.contains("\"attributed_ns\": {\"lock_wait\": 1000"));
        assert!(text.contains("\"blocker_tn\": 12"));
        assert!(text.contains("\"watermark_lag\": 4"));
        assert_eq!(text.matches('{').count(), text.matches('}').count());
        assert_eq!(text.matches('[').count(), text.matches(']').count());
    }

    #[test]
    fn json_snapshot_shape() {
        let m = Metrics::new();
        m.ro_begun.fetch_add(2, Ordering::Relaxed);
        let text = json_snapshot(&m.snapshot(), None, None, Some(&sample_events()));
        assert!(text.contains(&format!("\"schema_version\": {SCHEMA_VERSION}")));
        assert!(text.contains("\"counters\""));
        assert!(text.contains("\"ro_begun\": 2"));
        assert!(text.contains("\"gauges\": null"));
        assert!(text.contains("\"phases\": null"));
        assert!(text.contains("\"begin\": 12"));
        assert!(text.contains("\"dropped\": 1"));
        // Balanced braces (cheap well-formedness check without serde).
        let opens = text.matches('{').count();
        let closes = text.matches('}').count();
        assert_eq!(opens, closes);
    }

    fn sample_trace() -> TraceSnapshot {
        TraceSnapshot {
            trace_id: 5,
            spans: vec![
                Span {
                    span_id: ROOT_SPAN,
                    parent: 0,
                    name: "txn",
                    start_ns: 1_000,
                    end_ns: 9_500,
                    thread: 0,
                    attrs: vec![("trace_id", 5)],
                },
                Span {
                    span_id: 2,
                    parent: ROOT_SPAN,
                    name: "attempt",
                    start_ns: 1_200,
                    end_ns: 9_500,
                    thread: 3,
                    attrs: vec![("committed", 1)],
                },
                Span {
                    span_id: 3,
                    parent: 2,
                    name: "lock_wait",
                    start_ns: 2_000,
                    end_ns: 4_000,
                    thread: 3,
                    attrs: vec![("object", 7)],
                },
            ],
            dropped_spans: 0,
        }
    }

    #[test]
    fn chrome_trace_json_is_balanced_and_complete() {
        let text = chrome_trace_json(&sample_trace());
        assert!(text.contains("\"traceEvents\""));
        assert!(text.contains("\"ph\":\"X\""));
        assert!(text.contains("\"name\":\"lock_wait\""));
        assert!(text.contains("\"ts\":1.200"), "µs with ns fraction");
        assert!(text.contains("\"object\":7"));
        assert_eq!(text.matches('{').count(), text.matches('}').count());
        assert_eq!(text.matches('[').count(), text.matches(']').count());
    }

    #[test]
    fn otlp_trace_json_encodes_ids_as_hex() {
        let text = otlp_trace_json(&sample_trace());
        assert!(text.contains("\"resourceSpans\""));
        assert!(text.contains(&format!("\"traceId\":\"{:032x}\"", 5)));
        assert!(text.contains(&format!("\"spanId\":\"{:016x}\"", 3)));
        assert!(text.contains("\"parentSpanId\":\"\""), "root has no parent");
        assert!(text.contains("{\"key\":\"object\",\"value\":{\"intValue\":\"7\"}}"));
        assert_eq!(text.matches('{').count(), text.matches('}').count());
    }
}
