//! Engine-side per-phase latency histograms.
//!
//! The driver already measures *client-visible* latency; these measure the
//! engine's own phases — the spans the paper's modularity argument is
//! about. Recording is gated by the same enabled flag as the event bus
//! (one relaxed load when off), and uses the lock-free
//! [`AtomicHistogram`] from `mvcc-storage`.

use mvcc_storage::{AtomicHistogram, Histogram};

/// The instrumented engine phases.
#[derive(Debug, Default)]
pub struct PhaseHistograms {
    /// `VCregister` → `VCcomplete`/`VCdiscard`: how long a transaction
    /// number sits in the VCQueue (the vtnc-lag driver).
    pub register_to_complete: AtomicHistogram,
    /// Time spent waiting for a contended lock (2PL / adaptive).
    pub lock_wait: AtomicHistogram,
    /// Write-ahead-log append + fsync inside commit.
    pub wal_append: AtomicHistogram,
    /// Read-only snapshot read (one `store.read_at` call).
    pub ro_read: AtomicHistogram,
}

/// Point-in-time copy of the phase histograms.
#[derive(Debug, Clone, Default)]
pub struct PhaseSnapshot {
    /// See [`PhaseHistograms::register_to_complete`].
    pub register_to_complete: Histogram,
    /// See [`PhaseHistograms::lock_wait`].
    pub lock_wait: Histogram,
    /// See [`PhaseHistograms::wal_append`].
    pub wal_append: Histogram,
    /// See [`PhaseHistograms::ro_read`].
    pub ro_read: Histogram,
}

impl PhaseHistograms {
    /// Fresh, empty histograms.
    pub fn new() -> PhaseHistograms {
        PhaseHistograms::default()
    }

    /// Copy out all phases.
    pub fn snapshot(&self) -> PhaseSnapshot {
        PhaseSnapshot {
            register_to_complete: self.register_to_complete.snapshot(),
            lock_wait: self.lock_wait.snapshot(),
            wal_append: self.wal_append.snapshot(),
            ro_read: self.ro_read.snapshot(),
        }
    }

    /// Zero every phase (between experiment runs).
    pub fn reset(&self) {
        self.register_to_complete.reset();
        self.lock_wait.reset();
        self.wal_append.reset();
        self.ro_read.reset();
    }
}

impl PhaseSnapshot {
    /// Named access to every phase, for exporters.
    pub fn phases(&self) -> [(&'static str, &Histogram); 4] {
        [
            ("register_to_complete", &self.register_to_complete),
            ("lock_wait", &self.lock_wait),
            ("wal_append", &self.wal_append),
            ("ro_read", &self.ro_read),
        ]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::time::Duration;

    #[test]
    fn snapshot_and_reset() {
        let p = PhaseHistograms::new();
        p.lock_wait.record(Duration::from_micros(5));
        p.wal_append.record(Duration::from_micros(50));
        let snap = p.snapshot();
        assert_eq!(snap.lock_wait.count(), 1);
        assert_eq!(snap.wal_append.count(), 1);
        assert_eq!(snap.ro_read.count(), 0);
        assert_eq!(snap.phases().len(), 4);
        p.reset();
        assert_eq!(p.snapshot().lock_wait.count(), 0);
    }
}
