//! Engine observability: structured events, per-phase latency, gauges,
//! transaction traces, flight recorder, exporters.
//!
//! The paper's claims are quantitative, and flat end-of-run counters
//! cannot show *when* vtnc lags, *which* transaction stalled the VCQueue,
//! or *why* a deadlock ring formed. This layer adds that visibility while
//! keeping the disabled hot path to a single relaxed load per
//! instrumentation point, and the *enabled* hot path cheap enough to
//! leave on in production (≤5% at 16 threads — E16 measures it):
//!
//! * [`event`] — the event taxonomy and the global seqlock ring every
//!   reader consumes, fed either directly (legacy) or by the buffer
//!   drainer.
//! * [`buffer`] (internal) — per-thread SPSC rings: emits touch only
//!   thread-owned cache lines; a drainer batch-publishes to the global
//!   ring.
//! * Three-tier sampling ladder (see [`event::Tier`]): per-kind counters
//!   always; events published 1 in `2^event_sample_shift`; spans
//!   (traces) started 1 in `2^span_sample_shift`. Decisions come from
//!   per-thread counters, or from the injected [`SharedRng`] when one is
//!   configured — which is what keeps `mvcc-sim` replays byte-stable.
//! * [`trace`] — end-to-end transaction tracing: span trees across
//!   retries, lock waits, VCQueue residency, WAL appends, and 2PC legs.
//! * [`phases`] — engine-side latency histograms on the lock-free
//!   [`mvcc_storage::AtomicHistogram`].
//! * [`gauges`] — point-in-time state plus a background collector.
//! * [`recorder`] — post-mortem JSON dumps on deadlock victimization,
//!   reaper fire, recovery, and invariant violations.
//! * [`export`] — Prometheus-text, JSON, Chrome `trace_event`, and
//!   OTLP-like emitters over all of the above.

pub mod blame;
pub mod event;
pub mod export;
pub mod gauges;
pub mod phases;
pub mod recorder;
pub mod topk;
pub mod trace;

mod buffer;

pub use blame::{BlameLedger, BlameRow, BlameSnapshot, TxnPhase, WaitPoint, WAIT_POINTS};
pub use buffer::DrainPause;
pub use event::{
    abort_reason_code, abort_reason_name, Event, EventBus, EventKind, Tier, KIND_COUNT,
};
pub use export::{
    chrome_trace_json, json_snapshot, otlp_trace_json, parse_exposition, profile_json,
    prometheus_text, EventCounts, SCHEMA_VERSION,
};
pub use gauges::{GaugeCollector, GaugeSample, VcDecGauges, VcThreadPoint, VcView, VcWaitPointMap};
pub use phases::{PhaseHistograms, PhaseSnapshot};
pub use recorder::{DumpContext, FlightRecorder, FlightTrigger};
pub use topk::ContentionTopK;
pub use trace::{Span, SpanRegistry, TraceCtx, TraceSnapshot};

use crate::clock::{real_clock, SharedClock, SharedRng};
use std::path::PathBuf;
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Observability configuration, embedded in
/// [`DbConfig`](crate::config::DbConfig).
#[derive(Debug, Clone)]
pub struct ObsConfig {
    /// Record lifecycle events (and phase latencies). Off by default:
    /// the disabled path is one relaxed load per instrumentation point.
    pub events: bool,
    /// Global event ring capacity (rounded up to a power of two, min
    /// 64). Zero selects the default (4096).
    pub event_capacity: usize,
    /// Directory for flight-recorder post-mortem dumps; `None` disarms
    /// the recorder.
    pub flight_dir: Option<PathBuf>,
    /// How many trailing events each post-mortem includes. Zero selects
    /// the default (512).
    pub flight_events: usize,
    /// Sampling shift of the events tier: sampled-tier kinds publish 1
    /// in `2^event_sample_shift` (counters stay exact regardless).
    /// Default 4 (1 in 16). Zero publishes every event.
    pub event_sample_shift: u8,
    /// Sampling shift of the spans tier: with events on, 1 in
    /// `2^span_sample_shift` transactions is auto-traced end to end.
    /// Default 10 (1 in 1024). Zero traces every transaction.
    pub span_sample_shift: u8,
    /// Per-thread event buffer capacity in slots (rounded up to a power
    /// of two, min 64). Zero selects the default (1024).
    pub thread_buffer: usize,
    /// Publish every kept event straight into the global seqlock ring
    /// instead of buffering (the legacy path, kept as E16's A/B arm).
    pub direct_publish: bool,
    /// Contention attribution: hot-key/hot-shard top-K tables plus the
    /// blocking-blame ledger. Off by default; when off, attribution
    /// state is never allocated and feed sites see `None`.
    pub attribution: bool,
    /// Slots in each top-K contention sketch (keys, shards, blockers).
    /// Zero selects the default (64).
    pub attr_keys: usize,
    /// Row budget of the blame ledger's folded profile. Zero selects
    /// the default (256).
    pub attr_rows: usize,
}

impl Default for ObsConfig {
    fn default() -> Self {
        ObsConfig {
            events: false,
            event_capacity: 0,
            flight_dir: None,
            flight_events: 0,
            event_sample_shift: 4,
            span_sample_shift: 10,
            thread_buffer: 0,
            direct_publish: false,
            attribution: false,
            attr_keys: 0,
            attr_rows: 0,
        }
    }
}

impl ObsConfig {
    /// Enable event recording.
    pub fn with_events(mut self, on: bool) -> Self {
        self.events = on;
        self
    }

    /// Arm the flight recorder, writing post-mortems into `dir`.
    pub fn with_flight_dir(mut self, dir: impl Into<PathBuf>) -> Self {
        self.flight_dir = Some(dir.into());
        self
    }

    /// Publish only 1 in `2^shift` sampled-tier events (0 = publish all).
    pub fn with_sample_shift(mut self, shift: u8) -> Self {
        self.event_sample_shift = shift;
        self
    }

    /// Auto-trace 1 in `2^shift` transactions (0 = trace all).
    pub fn with_span_sample_shift(mut self, shift: u8) -> Self {
        self.span_sample_shift = shift;
        self
    }

    /// Per-thread buffer capacity in slots.
    pub fn with_thread_buffer(mut self, slots: usize) -> Self {
        self.thread_buffer = slots;
        self
    }

    /// Use the legacy direct-publish path (E16's A/B arm).
    pub fn with_direct_publish(mut self, on: bool) -> Self {
        self.direct_publish = on;
        self
    }

    /// Enable contention attribution (top-K tables + blame ledger).
    pub fn with_attribution(mut self, on: bool) -> Self {
        self.attribution = on;
        self
    }

    /// Size the attribution sketches (0 = default 64).
    pub fn with_attr_keys(mut self, slots: usize) -> Self {
        self.attr_keys = slots;
        self
    }

    /// Size the blame ledger's row budget (0 = default 256).
    pub fn with_attr_rows(mut self, rows: usize) -> Self {
        self.attr_rows = rows;
        self
    }
}

/// The contention-attribution state: hot-key/hot-shard top-K tables and
/// the blocking-blame ledger. Allocated only when
/// [`ObsConfig::attribution`] is set; feed sites check
/// [`Obs::attr`] (an `Option`) and skip everything when disabled.
pub struct Attribution {
    topk: ContentionTopK,
    blame: BlameLedger,
}

impl Attribution {
    fn new(cfg: &ObsConfig) -> Attribution {
        let keys = if cfg.attr_keys == 0 {
            64
        } else {
            cfg.attr_keys
        };
        let rows = if cfg.attr_rows == 0 {
            256
        } else {
            cfg.attr_rows
        };
        Attribution {
            topk: ContentionTopK::new(keys, keys.min(32).max(8)),
            blame: BlameLedger::new(rows, keys),
        }
    }

    /// The hot-key / hot-shard tables.
    pub fn topk(&self) -> &ContentionTopK {
        &self.topk
    }

    /// The blocking-blame ledger.
    pub fn blame(&self) -> &BlameLedger {
        &self.blame
    }

    /// Copy out everything the exporters need.
    pub fn snapshot(&self) -> AttrSnapshot {
        AttrSnapshot {
            hot_keys: self.topk.hot_keys(usize::MAX),
            hot_shards: self.topk.hot_shards(usize::MAX),
            blame: self.blame.snapshot(),
        }
    }

    /// Clear all attribution state (between experiment phases).
    pub fn reset(&self) {
        self.topk.reset();
        self.blame.reset();
    }
}

impl std::fmt::Debug for Attribution {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Attribution").finish_non_exhaustive()
    }
}

/// Point-in-time copy of the attribution state, consumed by
/// [`profile_json`], [`prometheus_text`], and the flight recorder.
#[derive(Debug, Clone, Default)]
pub struct AttrSnapshot {
    /// Hottest keys, worst first (contended-ns, then hits).
    pub hot_keys: Vec<mvcc_storage::SketchEntry>,
    /// Hottest lock shards, worst first.
    pub hot_shards: Vec<mvcc_storage::SketchEntry>,
    /// The folded blame profile.
    pub blame: BlameSnapshot,
}

/// The per-engine observability hub: event bus + buffers + phase
/// histograms + trace registry + flight recorder. One `Arc<Obs>` is
/// shared by the context, the version-control instance, and the protocol.
pub struct Obs {
    events: EventBus,
    phases: PhaseHistograms,
    recorder: FlightRecorder,
    clock: SharedClock,
    tracer: Arc<SpanRegistry>,
    registry: Arc<buffer::BufferRegistry>,
    /// Sampling source when injected (the simulator's seeded stream);
    /// per-thread counters otherwise.
    rng: Option<SharedRng>,
    sample_shift: u8,
    span_shift: u8,
    direct: bool,
    attr: Option<Arc<Attribution>>,
}

impl std::fmt::Debug for Obs {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Obs")
            .field("on", &self.on())
            .field("sample_shift", &self.sample_shift)
            .field("span_shift", &self.span_shift)
            .field("direct", &self.direct)
            .finish_non_exhaustive()
    }
}

impl Obs {
    /// Build from config, stamping with the wall clock.
    pub fn new(cfg: &ObsConfig) -> Obs {
        Self::with_clock(cfg, real_clock())
    }

    /// Build from config with an injected time source.
    pub fn with_clock(cfg: &ObsConfig, clock: SharedClock) -> Obs {
        Self::with_parts(cfg, clock, None)
    }

    /// Build from config with an injected time source and sampling rng.
    /// The engine passes [`crate::config::DbConfig`]'s `clock` and `rng`
    /// so event timestamps follow virtual time and sampling decisions
    /// replay with the seed under simulation.
    pub fn with_parts(cfg: &ObsConfig, clock: SharedClock, rng: Option<SharedRng>) -> Obs {
        let cap = if cfg.event_capacity == 0 {
            4096
        } else {
            cfg.event_capacity
        };
        let window = if cfg.flight_events == 0 {
            512
        } else {
            cfg.flight_events
        };
        let registry = buffer::BufferRegistry::new(cfg.thread_buffer);
        let mut events = EventBus::with_clock(cap, cfg.events, clock.clone());
        events.attach_buffers(registry.clone());
        Obs {
            events,
            phases: PhaseHistograms::new(),
            recorder: FlightRecorder::new(cfg.flight_dir.clone(), window),
            tracer: Arc::new(SpanRegistry::new(clock.clone())),
            clock,
            registry,
            rng,
            sample_shift: cfg.event_sample_shift,
            span_shift: cfg.span_sample_shift,
            direct: cfg.direct_publish,
            attr: cfg.attribution.then(|| Arc::new(Attribution::new(cfg))),
        }
    }

    /// Whether recording is on. One relaxed load — every instrumentation
    /// point checks this (or calls a method that does) before paying
    /// anything else.
    #[inline]
    pub fn on(&self) -> bool {
        self.events.enabled()
    }

    /// Turn event + phase recording on or off at runtime.
    pub fn set_enabled(&self, on: bool) {
        self.events.set_enabled(on);
    }

    /// Emit an event on its kind's default tier (no-op when disabled):
    /// the counter always advances; `Always` kinds publish; `Sampled`
    /// kinds publish 1 in `2^event_sample_shift`.
    #[inline]
    pub fn emit(&self, kind: EventKind, id: u64, aux: u64) {
        if !self.on() {
            return;
        }
        self.record(kind, id, aux, kind.tier());
    }

    /// Emit on the sampled tier regardless of the kind's default —
    /// high-frequency gate sites (admission, shed storms) use this so
    /// enabling events under overload does not itself add load.
    #[inline]
    pub fn emit_sampled(&self, kind: EventKind, id: u64, aux: u64) {
        if !self.on() {
            return;
        }
        self.record(kind, id, aux, Tier::Sampled);
    }

    /// Emit unconditionally (counter still advances) regardless of the
    /// kind's tier — for rare events a post-mortem must never miss, like
    /// the fatal lock wait that closed a deadlock cycle.
    #[inline]
    pub fn emit_always(&self, kind: EventKind, id: u64, aux: u64) {
        if !self.on() {
            return;
        }
        self.record(kind, id, aux, Tier::Always);
    }

    fn record(&self, kind: EventKind, id: u64, aux: u64, tier: Tier) {
        buffer::with_ring(&self.registry, |ring| {
            ring.count(kind);
            let publish = match tier {
                Tier::Counter => false,
                Tier::Always => true,
                Tier::Sampled => ring.sample(self.sample_shift, self.rng.as_ref()),
            };
            if publish {
                self.publish_on(ring, kind, id, aux);
            }
        });
    }

    /// Make (and count) the sampling decision for `kind` without
    /// emitting. Phase-timer sites decide *before* a phase so the
    /// dropped path never reads the clock; pair with
    /// [`publish`](Self::publish) at phase end.
    #[inline]
    pub fn sample(&self, kind: EventKind) -> bool {
        if !self.on() {
            return false;
        }
        buffer::with_ring(&self.registry, |ring| {
            ring.count(kind);
            match kind.tier() {
                Tier::Counter => false,
                Tier::Always => true,
                Tier::Sampled => ring.sample(self.sample_shift, self.rng.as_ref()),
            }
        })
    }

    /// Make a bare sampling draw with no counter and no event — for
    /// phase-histogram sites whose entire cost *is* the measurement
    /// (clock reads, stamp lookups): the dropped path pays one
    /// thread-local draw and nothing else. Shares the sampling sequence
    /// (and the injected rng, when present) with [`sample`](Self::sample).
    #[inline]
    pub fn phase_sample(&self) -> bool {
        if !self.on() {
            return false;
        }
        buffer::with_ring(&self.registry, |ring| {
            ring.sample(self.sample_shift, self.rng.as_ref())
        })
    }

    /// Publish an event whose sampling decision was already made (and
    /// counted) by [`sample`](Self::sample).
    #[inline]
    pub fn publish(&self, kind: EventKind, id: u64, aux: u64) {
        if !self.on() {
            return;
        }
        buffer::with_ring(&self.registry, |ring| {
            self.publish_on(ring, kind, id, aux);
        });
    }

    fn publish_on(&self, ring: &buffer::ThreadRing, kind: EventKind, id: u64, aux: u64) {
        if self.direct {
            self.events.emit_always(kind, id, aux);
            return;
        }
        let t_ns = self.events.now_ns();
        if !ring.push(t_ns, kind, id, aux) {
            // Full: drain everything (single fetch of the drain mutex;
            // skipped if contended or paused), then retry once.
            self.events.drain();
            if !ring.push(t_ns, kind, id, aux) {
                ring.drop_one();
            }
        }
    }

    /// Start a phase timer for `kind`: `Some(now)` when this phase's
    /// event survives sampling, `None` otherwise — the dropped path
    /// never reads the clock. The per-kind counter advances either way.
    #[inline]
    pub fn phase_timer(&self, kind: EventKind) -> Option<Instant> {
        if self.sample(kind) {
            Some(self.clock.now())
        } else {
            None
        }
    }

    /// Whether to auto-trace the next transaction (spans tier): with
    /// events on, 1 in `2^span_sample_shift`.
    #[inline]
    pub fn span_sampled(&self) -> bool {
        if !self.on() {
            return false;
        }
        buffer::with_ring(&self.registry, |ring| {
            ring.span_sample(self.span_shift, self.rng.as_ref())
        })
    }

    /// Exact per-kind emit count (counter tier: advances on every emit,
    /// independent of sampling).
    pub fn count(&self, kind: EventKind) -> u64 {
        self.registry.count(kind)
    }

    /// All per-kind counts at once.
    pub fn counts(&self) -> [u64; KIND_COUNT] {
        self.registry.counts()
    }

    /// Total instrumentation points recorded (sum over kinds).
    pub fn points(&self) -> u64 {
        self.counts().iter().sum()
    }

    /// Events lost to per-thread buffer overflow (exact).
    pub fn dropped(&self) -> u64 {
        self.registry.dropped()
    }

    /// Everything the exporters need about events in one snapshot:
    /// exact per-kind counts, published total, dropped total.
    pub fn event_counts(&self) -> EventCounts {
        EventCounts {
            counts: self.counts(),
            dropped: self.dropped(),
            published: self.events.emitted(),
        }
    }

    /// Flush per-thread buffers into the global ring.
    pub fn drain(&self) {
        self.events.drain();
    }

    /// Block all drains until the guard drops (test hook: forces ring
    /// overflow so the exact `dropped` accounting can be observed).
    pub fn pause_drain(&self) -> DrainPause<'_> {
        self.registry.pause()
    }

    /// Start a phase timer: `Some(now)` when recording, `None` when off —
    /// so the disabled path never reads the clock. (Unsampled variant;
    /// prefer [`phase_timer`](Self::phase_timer) on hot paths.)
    #[inline]
    pub fn timer(&self) -> Option<Instant> {
        if self.on() {
            Some(self.clock.now())
        } else {
            None
        }
    }

    /// Start an attribution timer: `Some(now)` whenever attribution is
    /// enabled, independent of event recording — blame and hot-key data
    /// must see every contended acquisition even with the event bus off.
    #[inline]
    pub fn attr_timer(&self) -> Option<Instant> {
        if self.attr.is_some() {
            Some(self.clock.now())
        } else {
            None
        }
    }

    /// Elapsed time since a [`timer`](Self::timer) stamp, on the same
    /// clock that produced it.
    #[inline]
    pub fn since(&self, started: Instant) -> Duration {
        self.clock.now().saturating_duration_since(started)
    }

    /// The event bus.
    pub fn events(&self) -> &EventBus {
        &self.events
    }

    /// The phase histograms.
    pub fn phases(&self) -> &PhaseHistograms {
        &self.phases
    }

    /// The flight recorder.
    pub fn recorder(&self) -> &FlightRecorder {
        &self.recorder
    }

    /// The transaction-trace registry.
    pub fn tracer(&self) -> &Arc<SpanRegistry> {
        &self.tracer
    }

    /// The contention-attribution state, `None` unless
    /// [`ObsConfig::attribution`] was set. Feed sites check this once
    /// and pay nothing when attribution is off.
    #[inline]
    pub fn attr(&self) -> Option<&Arc<Attribution>> {
        self.attr.as_ref()
    }

    /// Snapshot attribution state, `None` when attribution is off.
    pub fn attr_snapshot(&self) -> Option<AttrSnapshot> {
        self.attr.as_ref().map(|a| a.snapshot())
    }

    /// Take a post-mortem dump (no-op unless a flight dir is configured).
    /// Flushes buffers first so the dump window is current. When
    /// attribution is on, the dump includes the hot-key table and the
    /// folded blame profile at trigger time.
    pub fn dump(&self, trigger: FlightTrigger, ctx: &DumpContext) -> Option<PathBuf> {
        self.recorder
            .dump_with(trigger, &self.events, ctx, self.attr_snapshot().as_ref())
    }
}

impl Default for Obs {
    fn default() -> Self {
        Obs::new(&ObsConfig::default())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_obs_is_off_and_cheap() {
        let obs = Obs::default();
        assert!(!obs.on());
        assert!(obs.timer().is_none());
        assert!(obs.phase_timer(EventKind::LockWait).is_none());
        obs.emit(EventKind::Begin, 1, 0);
        assert_eq!(obs.events().emitted(), 0);
        assert_eq!(obs.points(), 0, "disabled emits do not even count");
        assert!(!obs.recorder().armed());
    }

    #[test]
    fn enabled_obs_records() {
        let obs = Obs::new(&ObsConfig::default().with_events(true));
        assert!(obs.on());
        assert!(obs.timer().is_some());
        obs.emit(EventKind::Register, 42, 0);
        let evs = obs.events().recent(8);
        assert_eq!(evs.len(), 1, "first sampled event of a thread is kept");
        assert_eq!(evs[0].id, 42);
        assert_eq!(obs.count(EventKind::Register), 1);
    }

    #[test]
    fn sampled_tier_keeps_one_in_2_pow_shift() {
        let obs = Obs::new(&ObsConfig::default().with_events(true).with_sample_shift(3));
        for i in 0..64 {
            obs.emit_sampled(EventKind::Shed, i, 0);
        }
        let evs = obs.events().recent(64);
        assert_eq!(evs.len(), 8, "1 in 2^3 survives");
        assert!(evs.iter().all(|e| e.id % 8 == 0));
        assert_eq!(obs.count(EventKind::Shed), 64, "counter tier stays exact");
        // shift 0 records everything
        let all = Obs::new(&ObsConfig::default().with_events(true).with_sample_shift(0));
        for i in 0..10 {
            all.emit_sampled(EventKind::Admit, i, 0);
        }
        assert_eq!(all.events().recent(64).len(), 10);
    }

    #[test]
    fn always_tier_ignores_the_sample_shift() {
        let obs = Obs::new(&ObsConfig::default().with_events(true).with_sample_shift(6));
        for i in 0..20 {
            obs.emit(EventKind::Abort, i, 1);
        }
        assert_eq!(obs.events().recent(64).len(), 20);
    }

    #[test]
    fn phase_timer_pairs_with_publish() {
        let obs = Obs::new(&ObsConfig::default().with_events(true).with_sample_shift(2));
        let mut published = 0;
        for i in 0..16u64 {
            if let Some(t) = obs.phase_timer(EventKind::WalAppend) {
                obs.phases().wal_append.record(obs.since(t));
                obs.publish(EventKind::WalAppend, i, 0);
                published += 1;
            }
        }
        assert_eq!(published, 4, "1 in 4 sampled");
        assert_eq!(obs.count(EventKind::WalAppend), 16);
        assert_eq!(obs.events().recent(64).len(), 4);
        assert_eq!(obs.phases().wal_append.count(), 4);
    }

    #[test]
    fn direct_publish_mode_matches_buffered_content() {
        for direct in [false, true] {
            let obs = Obs::new(
                &ObsConfig::default()
                    .with_events(true)
                    .with_sample_shift(0)
                    .with_direct_publish(direct),
            );
            for i in 0..10u64 {
                obs.emit(EventKind::Complete, i, i);
            }
            let evs = obs.events().recent(64);
            assert_eq!(evs.len(), 10, "direct={direct}");
            assert!(evs.iter().enumerate().all(|(i, e)| e.id == i as u64));
        }
    }

    #[test]
    fn exact_drop_accounting_under_paused_drain() {
        let obs = Obs::new(
            &ObsConfig::default()
                .with_events(true)
                .with_sample_shift(0)
                .with_thread_buffer(64),
        );
        let pause = obs.pause_drain();
        for i in 0..100u64 {
            obs.emit(EventKind::Begin, i, 0);
        }
        assert_eq!(obs.dropped(), 36, "64 buffered, 36 dropped, exactly");
        assert_eq!(obs.count(EventKind::Begin), 100, "counter tier unharmed");
        drop(pause);
        assert_eq!(obs.events().recent(256).len(), 64);
    }

    #[test]
    fn runtime_toggle() {
        let obs = Obs::default();
        obs.set_enabled(true);
        obs.emit(EventKind::Begin, 1, 0);
        obs.set_enabled(false);
        obs.emit(EventKind::Begin, 2, 0);
        assert_eq!(obs.events().recent(8).len(), 1);
    }
}
