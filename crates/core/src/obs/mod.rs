//! Engine observability: structured events, per-phase latency, gauges,
//! flight recorder, exporters.
//!
//! The paper's claims are quantitative, and flat end-of-run counters
//! cannot show *when* vtnc lags, *which* transaction stalled the VCQueue,
//! or *why* a deadlock ring formed. This layer adds that visibility while
//! keeping the disabled hot path to a single relaxed load per
//! instrumentation point:
//!
//! * [`event`] — lock-free MPSC ring-buffer event bus for lifecycle
//!   events (`Begin`, `Register`, `LockWait`, …, `ReaperFire`).
//! * [`phases`] — engine-side latency histograms (register→complete,
//!   lock-wait, wal-append, RO read), built on the lock-free
//!   [`mvcc_storage::AtomicHistogram`].
//! * [`gauges`] — point-in-time state (vtnc lag, VCQueue depth/head age,
//!   resident versions, lock occupancy, WAL backlog) plus a background
//!   collector thread.
//! * [`recorder`] — post-mortem JSON dumps on deadlock victimization,
//!   reaper fire, recovery, and invariant violations.
//! * [`export`] — Prometheus-text and JSON emitters over all of the above.

pub mod event;
pub mod export;
pub mod gauges;
pub mod phases;
pub mod recorder;

pub use event::{abort_reason_code, abort_reason_name, Event, EventBus, EventKind};
pub use export::{json_snapshot, prometheus_text};
pub use gauges::{GaugeCollector, GaugeSample, VcView};
pub use phases::{PhaseHistograms, PhaseSnapshot};
pub use recorder::{DumpContext, FlightRecorder, FlightTrigger};

use crate::clock::{real_clock, SharedClock};
use std::path::PathBuf;
use std::time::{Duration, Instant};

/// Observability configuration, embedded in
/// [`DbConfig`](crate::config::DbConfig).
#[derive(Debug, Clone, Default)]
pub struct ObsConfig {
    /// Record lifecycle events (and phase latencies). Off by default:
    /// the disabled path is one relaxed load per instrumentation point.
    pub events: bool,
    /// Event ring capacity (rounded up to a power of two, min 64).
    /// Zero selects the default (4096).
    pub event_capacity: usize,
    /// Directory for flight-recorder post-mortem dumps; `None` disarms
    /// the recorder.
    pub flight_dir: Option<PathBuf>,
    /// How many trailing events each post-mortem includes. Zero selects
    /// the default (512).
    pub flight_events: usize,
    /// Sampling tier for high-frequency gate events (admission, shed):
    /// [`Obs::emit_sampled`] records 1 in `2^event_sample_shift` events.
    /// Zero (the default) records every one. Keeps the overload ladder's
    /// own instrumentation from adding to the overload it manages.
    pub event_sample_shift: u8,
}

impl ObsConfig {
    /// Enable event recording.
    pub fn with_events(mut self, on: bool) -> Self {
        self.events = on;
        self
    }

    /// Arm the flight recorder, writing post-mortems into `dir`.
    pub fn with_flight_dir(mut self, dir: impl Into<PathBuf>) -> Self {
        self.flight_dir = Some(dir.into());
        self
    }

    /// Record only 1 in `2^shift` sampled-tier events.
    pub fn with_sample_shift(mut self, shift: u8) -> Self {
        self.event_sample_shift = shift;
        self
    }
}

/// The per-engine observability hub: event bus + phase histograms +
/// flight recorder. One `Arc<Obs>` is shared by the context, the
/// version-control instance, and the protocol.
#[derive(Debug)]
pub struct Obs {
    events: EventBus,
    phases: PhaseHistograms,
    recorder: FlightRecorder,
    clock: SharedClock,
    /// Keep 1 event in `2^sample_shift` on the sampled tier.
    sample_shift: u8,
    sample_seq: std::sync::atomic::AtomicU64,
}

impl Obs {
    /// Build from config, stamping with the wall clock.
    pub fn new(cfg: &ObsConfig) -> Obs {
        Self::with_clock(cfg, real_clock())
    }

    /// Build from config with an injected time source (the engine passes
    /// [`crate::config::DbConfig::clock`] so phase timers and event
    /// timestamps follow virtual time under simulation).
    pub fn with_clock(cfg: &ObsConfig, clock: SharedClock) -> Obs {
        let cap = if cfg.event_capacity == 0 {
            4096
        } else {
            cfg.event_capacity
        };
        let window = if cfg.flight_events == 0 {
            512
        } else {
            cfg.flight_events
        };
        Obs {
            events: EventBus::with_clock(cap, cfg.events, clock.clone()),
            phases: PhaseHistograms::new(),
            recorder: FlightRecorder::new(cfg.flight_dir.clone(), window),
            clock,
            sample_shift: cfg.event_sample_shift,
            sample_seq: std::sync::atomic::AtomicU64::new(0),
        }
    }

    /// Whether recording is on. One relaxed load — every instrumentation
    /// point checks this (or calls a method that does) before paying
    /// anything else.
    #[inline]
    pub fn on(&self) -> bool {
        self.events.enabled()
    }

    /// Turn event + phase recording on or off at runtime.
    pub fn set_enabled(&self, on: bool) {
        self.events.set_enabled(on);
    }

    /// Emit an event (no-op when disabled).
    #[inline]
    pub fn emit(&self, kind: EventKind, id: u64, aux: u64) {
        self.events.emit(kind, id, aux);
    }

    /// Emit a sampled-tier event: records 1 in `2^event_sample_shift`
    /// calls (every call when the shift is 0). High-frequency gate sites
    /// (admission, shed) use this so enabling events under overload does
    /// not itself add a ring-buffer write per refused begin. The disabled
    /// path stays one relaxed load; the *dropped* sampled path adds only
    /// one relaxed `fetch_add`.
    #[inline]
    pub fn emit_sampled(&self, kind: EventKind, id: u64, aux: u64) {
        if !self.on() {
            return;
        }
        if self.sample_shift > 0 {
            let n = self
                .sample_seq
                .fetch_add(1, std::sync::atomic::Ordering::Relaxed);
            if n & ((1u64 << self.sample_shift) - 1) != 0 {
                return;
            }
        }
        self.events.emit(kind, id, aux);
    }

    /// Start a phase timer: `Some(now)` when recording, `None` when off —
    /// so the disabled path never reads the clock.
    #[inline]
    pub fn timer(&self) -> Option<Instant> {
        if self.on() {
            Some(self.clock.now())
        } else {
            None
        }
    }

    /// Elapsed time since a [`timer`](Self::timer) stamp, on the same
    /// clock that produced it.
    #[inline]
    pub fn since(&self, started: Instant) -> Duration {
        self.clock.now().saturating_duration_since(started)
    }

    /// The event bus.
    pub fn events(&self) -> &EventBus {
        &self.events
    }

    /// The phase histograms.
    pub fn phases(&self) -> &PhaseHistograms {
        &self.phases
    }

    /// The flight recorder.
    pub fn recorder(&self) -> &FlightRecorder {
        &self.recorder
    }

    /// Take a post-mortem dump (no-op unless a flight dir is configured).
    pub fn dump(&self, trigger: FlightTrigger, ctx: &DumpContext) -> Option<PathBuf> {
        self.recorder.dump(trigger, &self.events, ctx)
    }
}

impl Default for Obs {
    fn default() -> Self {
        Obs::new(&ObsConfig::default())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_obs_is_off_and_cheap() {
        let obs = Obs::default();
        assert!(!obs.on());
        assert!(obs.timer().is_none());
        obs.emit(EventKind::Begin, 1, 0);
        assert_eq!(obs.events().emitted(), 0);
        assert!(!obs.recorder().armed());
    }

    #[test]
    fn enabled_obs_records() {
        let obs = Obs::new(&ObsConfig::default().with_events(true));
        assert!(obs.on());
        assert!(obs.timer().is_some());
        obs.emit(EventKind::Register, 42, 0);
        let evs = obs.events().recent(8);
        assert_eq!(evs.len(), 1);
        assert_eq!(evs[0].id, 42);
    }

    #[test]
    fn sampled_tier_keeps_one_in_2_pow_shift() {
        let obs = Obs::new(&ObsConfig::default().with_events(true).with_sample_shift(3));
        for i in 0..64 {
            obs.emit_sampled(EventKind::Shed, i, 0);
        }
        let evs = obs.events().recent(64);
        assert_eq!(evs.len(), 8, "1 in 2^3 survives");
        assert!(evs.iter().all(|e| e.id % 8 == 0));
        // shift 0 records everything
        let all = Obs::new(&ObsConfig::default().with_events(true));
        for i in 0..10 {
            all.emit_sampled(EventKind::Admit, i, 0);
        }
        assert_eq!(all.events().recent(64).len(), 10);
    }

    #[test]
    fn runtime_toggle() {
        let obs = Obs::default();
        obs.set_enabled(true);
        obs.emit(EventKind::Begin, 1, 0);
        obs.set_enabled(false);
        obs.emit(EventKind::Begin, 2, 0);
        assert_eq!(obs.events().recent(8).len(), 1);
    }
}
