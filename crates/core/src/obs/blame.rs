//! The blocking-blame ledger: who made whom wait, and in what phase.
//!
//! Every blocking point in the engine — the `LockManager` slow path,
//! timestamp-ordering pending-write waits, `wait_visible` visibility
//! stalls, and decentralized-VC watermark fold stalls — reports each
//! completed wait here with the *blocker's identity* captured at wait
//! start. The ledger folds those edges into a bounded pprof-style
//! profile: `wait-point → blocker-phase → target`, each row carrying a
//! sample count and total waited nanoseconds, plus a space-saving top-K
//! of the worst individual blockers.
//!
//! Blocker *phase* comes from a tiny lossy [`PhaseTable`]: transactions
//! publish their current phase (execute / lock-wait / validate / commit)
//! with one relaxed store at each transition, and a waiter reads the
//! blocker's published phase at attribution time. Hash collisions read
//! as [`TxnPhase::Unknown`] — attribution of the *time* is unaffected
//! (the blocker is still named), only the phase split degrades.
//!
//! Recording happens on wait *completion*, so the ledger adds nothing to
//! the blocked sleep itself; the fast path never reaches this module
//! ([`crate::obs::Obs::attr`] is `None` unless attribution is enabled).

use crate::obs::topk::StripedTopK;
use mvcc_storage::SketchEntry;
use std::sync::atomic::{AtomicU64, Ordering};

/// Where a wait happened.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[repr(u8)]
pub enum WaitPoint {
    /// 2PL lock-manager slow path: blocked on a held lock.
    LockWait = 0,
    /// Timestamp ordering: blocked on an older pending write.
    PendingWait = 1,
    /// `wait_visible`: blocked on the vtnc watermark.
    VisibilityWait = 2,
    /// Decentralized-VC fold: the watermark walk stopped at a pinned tn.
    FoldStall = 3,
}

/// Number of wait points (array sizing).
pub const WAIT_POINTS: usize = 4;

impl WaitPoint {
    /// Stable name used by exporters.
    pub fn name(self) -> &'static str {
        match self {
            WaitPoint::LockWait => "lock_wait",
            WaitPoint::PendingWait => "pending_wait",
            WaitPoint::VisibilityWait => "visibility_wait",
            WaitPoint::FoldStall => "fold_stall",
        }
    }

    fn from_index(i: u8) -> WaitPoint {
        match i {
            0 => WaitPoint::LockWait,
            1 => WaitPoint::PendingWait,
            2 => WaitPoint::VisibilityWait,
            _ => WaitPoint::FoldStall,
        }
    }
}

/// The phase a blocking transaction last published.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[repr(u8)]
pub enum TxnPhase {
    /// Not published, already cleared, or lost to a table collision.
    Unknown = 0,
    /// Executing reads/writes.
    Execute = 1,
    /// Itself blocked acquiring a lock.
    LockWait = 2,
    /// Validating (OCC critical section).
    Validate = 3,
    /// Committing: WAL append, promotion, `VCcomplete`.
    Commit = 4,
}

impl TxnPhase {
    /// Stable name used by exporters.
    pub fn name(self) -> &'static str {
        match self {
            TxnPhase::Unknown => "unknown",
            TxnPhase::Execute => "execute",
            TxnPhase::LockWait => "lock_wait",
            TxnPhase::Validate => "validate",
            TxnPhase::Commit => "commit",
        }
    }

    fn from_index(i: u8) -> TxnPhase {
        match i {
            1 => TxnPhase::Execute,
            2 => TxnPhase::LockWait,
            3 => TxnPhase::Validate,
            4 => TxnPhase::Commit,
            _ => TxnPhase::Unknown,
        }
    }
}

/// Lossy token → phase map: fixed slots, one relaxed store per phase
/// transition, collisions overwrite (and read back as `Unknown` for the
/// displaced token). Values pack `token << 3 | phase`.
///
/// Slots are cache-line padded: transactions publish on every lock
/// acquisition, so with 8-per-line packing the handful of live tokens
/// ping-pong a couple of lines between every core in the system. Padded,
/// each live token's line stays core-exclusive until a waiter actually
/// reads the blocker's phase (rare — once per resolved wait).
struct PhaseTable {
    slots: Box<[PhaseSlot]>,
}

#[repr(align(64))]
struct PhaseSlot(AtomicU64);

const PHASE_SLOTS: usize = 256;

impl PhaseTable {
    fn new() -> Self {
        PhaseTable {
            slots: (0..PHASE_SLOTS)
                .map(|_| PhaseSlot(AtomicU64::new(0)))
                .collect(),
        }
    }

    #[inline]
    fn slot(&self, token: u64) -> &AtomicU64 {
        // Fibonacci hash so consecutive tokens spread across slots.
        let h = token.wrapping_mul(0x9E37_79B9_7F4A_7C15) >> 32;
        &self.slots[(h as usize) % self.slots.len()].0
    }

    fn set(&self, token: u64, phase: TxnPhase) {
        if token == 0 || token > (u64::MAX >> 3) {
            return;
        }
        self.slot(token)
            .store(token << 3 | phase as u64, Ordering::Relaxed);
    }

    fn get(&self, token: u64) -> TxnPhase {
        if token == 0 || token > (u64::MAX >> 3) {
            return TxnPhase::Unknown;
        }
        let v = self.slot(token).load(Ordering::Relaxed);
        if v >> 3 == token {
            TxnPhase::from_index((v & 0x7) as u8)
        } else {
            TxnPhase::Unknown
        }
    }

    fn clear(&self, token: u64) {
        if token == 0 || token > (u64::MAX >> 3) {
            return;
        }
        let slot = self.slot(token);
        // Only clear our own publication — a collision overwrite stands.
        let _ = slot.compare_exchange(
            token << 3 | TxnPhase::Commit as u64,
            0,
            Ordering::Relaxed,
            Ordering::Relaxed,
        );
        let v = slot.load(Ordering::Relaxed);
        if v >> 3 == token {
            slot.store(0, Ordering::Relaxed);
        }
    }

    fn reset(&self) {
        for s in self.slots.iter() {
            s.0.store(0, Ordering::Relaxed);
        }
    }
}

/// One folded profile row: `wait-point → blocker-phase → target`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BlameRow {
    /// Where the wait happened.
    pub wait: WaitPoint,
    /// The blocker's phase at attribution time.
    pub blocker_phase: TxnPhase,
    /// What was waited on: object id (lock/pending), transaction number
    /// (visibility/fold). `None` is the overflow row — targets beyond
    /// the row budget fold together.
    pub target: Option<u64>,
    /// Completed waits folded into this row.
    pub samples: u64,
    /// Total nanoseconds waited.
    pub wait_ns: u64,
}

impl BlameRow {
    /// The row in pprof "folded" form: `wait;phase;target count_ns`.
    pub fn folded(&self) -> String {
        match self.target {
            Some(t) => format!(
                "{};blocker_{};target_{} {}",
                self.wait.name(),
                self.blocker_phase.name(),
                t,
                self.wait_ns
            ),
            None => format!(
                "{};blocker_{};other {}",
                self.wait.name(),
                self.blocker_phase.name(),
                self.wait_ns
            ),
        }
    }
}

/// Point-in-time copy of the ledger.
#[derive(Debug, Clone, Default)]
pub struct BlameSnapshot {
    /// Folded rows, heaviest first.
    pub rows: Vec<BlameRow>,
    /// Per-wait-point nanoseconds attributed to a *named* blocker,
    /// indexed by `WaitPoint as usize`.
    pub attributed_ns: [u64; WAIT_POINTS],
    /// Per-wait-point nanoseconds with no blocker identity.
    pub unattributed_ns: [u64; WAIT_POINTS],
    /// Completed waits recorded, per wait point.
    pub samples: [u64; WAIT_POINTS],
    /// The individually worst blockers (key = blocker token or tn,
    /// contended_ns = wait they caused).
    pub top_blockers: Vec<SketchEntry>,
}

impl BlameSnapshot {
    /// Total waited ns across all wait points.
    pub fn total_ns(&self) -> u64 {
        self.attributed_ns.iter().sum::<u64>() + self.unattributed_ns.iter().sum::<u64>()
    }

    /// Fraction of `wait`'s time attributed to a named blocker
    /// (`1.0` when that wait point recorded nothing).
    pub fn attributed_ratio(&self, wait: WaitPoint) -> f64 {
        let a = self.attributed_ns[wait as usize];
        let u = self.unattributed_ns[wait as usize];
        if a + u == 0 {
            1.0
        } else {
            a as f64 / (a + u) as f64
        }
    }
}

// Row-key packing: wait (2 bits) | phase (3 bits) | target (59 bits).
const TARGET_BITS: u32 = 59;
const TARGET_MASK: u64 = (1 << TARGET_BITS) - 1;
/// Reserved target meaning "overflow row".
const OTHER_TARGET: u64 = TARGET_MASK;

fn pack(wait: WaitPoint, phase: TxnPhase, target: u64) -> u64 {
    ((wait as u64) << 62) | ((phase as u64) << TARGET_BITS) | target
}

/// Slot key meaning "row unclaimed". A packed key can never be
/// `u64::MAX` (the phase field tops out at `Commit = 4`, so the three
/// phase bits are never all ones).
const ROW_EMPTY: u64 = u64::MAX;

/// How far a row probes from its hash before giving up and folding into
/// the per-(wait, phase) overflow row.
const ROW_PROBE: usize = 16;

/// Distinct phases (overflow-row cache sizing).
const PHASES: usize = 5;

/// The ledger. See the module docs.
///
/// The row table is open-addressed over *split* arrays: the dense key
/// array is read-mostly after claims (a probe touches two cache lines
/// for a 16-step neighborhood and they stay in Shared state across
/// cores), while the per-row counters live in their own array so their
/// constant `fetch_add` traffic never invalidates the lines a probe
/// scans. Overflow rows additionally cache their claimed slot index, so
/// folding into "other" is one indexed bump even when the table is
/// full — a full workload (more live targets than rows) costs each
/// record one bounded probe plus one indexed bump, never a table scan.
pub struct BlameLedger {
    row_keys: Box<[AtomicU64]>,
    row_samples: Box<[AtomicU64]>,
    row_ns: Box<[AtomicU64]>,
    /// Claimed row slots. Named rows stop claiming when the table is
    /// nearly full so the overflow rows can always materialize.
    fills: AtomicU64,
    /// Slot index + 1 of each claimed `(wait, phase)` overflow row
    /// (0 = not yet claimed).
    overflow_slots: [AtomicU64; WAIT_POINTS * PHASES],
    attributed_ns: [AtomicU64; WAIT_POINTS],
    unattributed_ns: [AtomicU64; WAIT_POINTS],
    samples: [AtomicU64; WAIT_POINTS],
    blockers: StripedTopK,
    phases: PhaseTable,
}

impl BlameLedger {
    /// A ledger folding into at most `max_rows` profile rows and
    /// monitoring `blocker_capacity` worst blockers.
    pub fn new(max_rows: usize, blocker_capacity: usize) -> Self {
        let rows = max_rows.max(WAIT_POINTS);
        BlameLedger {
            row_keys: (0..rows).map(|_| AtomicU64::new(ROW_EMPTY)).collect(),
            row_samples: (0..rows).map(|_| AtomicU64::new(0)).collect(),
            row_ns: (0..rows).map(|_| AtomicU64::new(0)).collect(),
            fills: AtomicU64::new(0),
            overflow_slots: std::array::from_fn(|_| AtomicU64::new(0)),
            attributed_ns: std::array::from_fn(|_| AtomicU64::new(0)),
            unattributed_ns: std::array::from_fn(|_| AtomicU64::new(0)),
            samples: std::array::from_fn(|_| AtomicU64::new(0)),
            blockers: StripedTopK::new(blocker_capacity),
            phases: PhaseTable::new(),
        }
    }

    #[inline]
    fn bump_cell(&self, i: usize, wait_ns: u64) {
        self.row_samples[i].fetch_add(1, Ordering::Relaxed);
        self.row_ns[i].fetch_add(wait_ns, Ordering::Relaxed);
    }

    /// Find or claim the slot for `key`, probing `probe` steps from its
    /// hash; named rows keep `reserve` slots unclaimed so overflow rows
    /// can always materialize. Returns the slot index bumped, if any.
    fn bump_row(&self, key: u64, wait_ns: u64, probe: usize, reserve: u64) -> Option<usize> {
        let len = self.row_keys.len();
        let start = (key.wrapping_mul(0x9E37_79B9_7F4A_7C15) >> 32) as usize % len;
        for i in 0..probe.min(len) {
            let idx = (start + i) % len;
            let slot = &self.row_keys[idx];
            let mut k = slot.load(Ordering::Acquire);
            if k == ROW_EMPTY {
                if self.fills.load(Ordering::Relaxed) + reserve >= len as u64 {
                    // Reserve hit: no-deletion linear probing means the
                    // key cannot live past this empty slot — fold.
                    return None;
                }
                match slot.compare_exchange(ROW_EMPTY, key, Ordering::AcqRel, Ordering::Acquire) {
                    Ok(_) => {
                        self.fills.fetch_add(1, Ordering::Relaxed);
                        k = key;
                    }
                    Err(winner) => k = winner,
                }
            }
            if k == key {
                self.bump_cell(idx, wait_ns);
                return Some(idx);
            }
        }
        None
    }

    /// Fold into the `(wait, phase)` overflow row: one indexed bump
    /// after the first claim.
    fn bump_overflow(&self, wait: WaitPoint, phase: TxnPhase, wait_ns: u64) {
        let cache = &self.overflow_slots[wait as usize * PHASES + phase as usize];
        let cached = cache.load(Ordering::Acquire);
        if cached != 0 {
            self.bump_cell(cached as usize - 1, wait_ns);
            return;
        }
        if let Some(idx) = self.bump_row(
            pack(wait, phase, OTHER_TARGET),
            wait_ns,
            self.row_keys.len(),
            0,
        ) {
            cache.store(idx as u64 + 1, Ordering::Release);
        }
        // If even the full-table probe found no slot, the aggregate
        // counters still carry the time.
    }

    /// Publish `token`'s current phase (one relaxed store).
    pub fn set_phase(&self, token: u64, phase: TxnPhase) {
        self.phases.set(token, phase);
    }

    /// Retire `token`'s phase publication.
    pub fn clear_phase(&self, token: u64) {
        self.phases.clear(token);
    }

    /// The phase `blocker` last published (`Unknown` on miss/collision).
    pub fn phase_of(&self, blocker: u64) -> TxnPhase {
        self.phases.get(blocker)
    }

    /// Record one completed wait of `wait_ns` nanoseconds at `wait`,
    /// blocked on `target`, caused by `blocker` (`0` = unknown — the
    /// time still counts, unattributed). The blocker's phase is read
    /// from the phase table at record time; a blocker that has already
    /// finished (phase cleared) folds into [`TxnPhase::Commit`] — the
    /// wait ended precisely because the blocker reached its
    /// commit/abort release, so that is the phase to blame.
    pub fn record(&self, wait: WaitPoint, target: u64, blocker: u64, wait_ns: u64) {
        let w = wait as usize;
        self.samples[w].fetch_add(1, Ordering::Relaxed);
        let phase = if blocker != 0 {
            self.attributed_ns[w].fetch_add(wait_ns, Ordering::Relaxed);
            self.blockers.record(blocker, wait_ns, false);
            match self.phases.get(blocker) {
                TxnPhase::Unknown => TxnPhase::Commit,
                p => p,
            }
        } else {
            self.unattributed_ns[w].fetch_add(wait_ns, Ordering::Relaxed);
            TxnPhase::Unknown
        };
        // Per-target row first; when its neighborhood is full, fold into
        // the per-(wait, phase) overflow row; if even that can't claim a
        // slot the aggregate counters above still carry the time.
        let key = pack(wait, phase, target.min(OTHER_TARGET - 1));
        let reserve = (self.row_keys.len() as u64 / 4).clamp(1, 8);
        if self.bump_row(key, wait_ns, ROW_PROBE, reserve).is_none() {
            self.bump_overflow(wait, phase, wait_ns);
        }
    }

    /// Copy out the folded profile, heaviest row first (ties broken by
    /// the packed key — a total order, so identical ledgers snapshot
    /// identically).
    pub fn snapshot(&self) -> BlameSnapshot {
        let mut out: Vec<(u64, u64, u64)> = self
            .row_keys
            .iter()
            .enumerate()
            .filter_map(|(i, s)| {
                let k = s.load(Ordering::Acquire);
                (k != ROW_EMPTY).then(|| {
                    (
                        k,
                        self.row_samples[i].load(Ordering::Relaxed),
                        self.row_ns[i].load(Ordering::Relaxed),
                    )
                })
            })
            .collect();
        out.sort_by(|a, b| b.2.cmp(&a.2).then(a.0.cmp(&b.0)));
        BlameSnapshot {
            rows: out
                .into_iter()
                .map(|(k, samples, wait_ns)| {
                    let target = k & TARGET_MASK;
                    BlameRow {
                        wait: WaitPoint::from_index((k >> 62) as u8),
                        blocker_phase: TxnPhase::from_index(((k >> TARGET_BITS) & 0x7) as u8),
                        target: (target != OTHER_TARGET).then_some(target),
                        samples,
                        wait_ns,
                    }
                })
                .collect(),
            attributed_ns: std::array::from_fn(|i| self.attributed_ns[i].load(Ordering::Relaxed)),
            unattributed_ns: std::array::from_fn(|i| {
                self.unattributed_ns[i].load(Ordering::Relaxed)
            }),
            samples: std::array::from_fn(|i| self.samples[i].load(Ordering::Relaxed)),
            top_blockers: self.blockers.merged().snapshot(),
        }
    }

    /// Clear everything (between experiment phases).
    pub fn reset(&self) {
        for i in 0..self.row_keys.len() {
            self.row_keys[i].store(ROW_EMPTY, Ordering::Relaxed);
            self.row_samples[i].store(0, Ordering::Relaxed);
            self.row_ns[i].store(0, Ordering::Relaxed);
        }
        self.fills.store(0, Ordering::Relaxed);
        for s in self.overflow_slots.iter() {
            s.store(0, Ordering::Relaxed);
        }
        for i in 0..WAIT_POINTS {
            self.attributed_ns[i].store(0, Ordering::Relaxed);
            self.unattributed_ns[i].store(0, Ordering::Relaxed);
            self.samples[i].store(0, Ordering::Relaxed);
        }
        self.blockers.reset();
        self.phases.reset();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn attributed_wait_lands_in_phase_row() {
        let l = BlameLedger::new(64, 8);
        l.set_phase(42, TxnPhase::Commit);
        l.record(WaitPoint::LockWait, 7, 42, 1000);
        let s = l.snapshot();
        assert_eq!(s.rows.len(), 1);
        let r = s.rows[0];
        assert_eq!(r.wait, WaitPoint::LockWait);
        assert_eq!(r.blocker_phase, TxnPhase::Commit);
        assert_eq!(r.target, Some(7));
        assert_eq!(r.samples, 1);
        assert_eq!(r.wait_ns, 1000);
        assert_eq!(s.attributed_ns[WaitPoint::LockWait as usize], 1000);
        assert_eq!(s.unattributed_ns[WaitPoint::LockWait as usize], 0);
        assert!((s.attributed_ratio(WaitPoint::LockWait) - 1.0).abs() < 1e-9);
        assert_eq!(s.top_blockers.len(), 1);
        assert_eq!(s.top_blockers[0].key, 42);
        assert_eq!(s.top_blockers[0].contended_ns, 1000);
        assert_eq!(r.folded(), "lock_wait;blocker_commit;target_7 1000");
    }

    #[test]
    fn unknown_blocker_counts_unattributed() {
        let l = BlameLedger::new(64, 8);
        l.record(WaitPoint::VisibilityWait, 9, 0, 500);
        let s = l.snapshot();
        assert_eq!(s.unattributed_ns[WaitPoint::VisibilityWait as usize], 500);
        assert_eq!(s.rows[0].blocker_phase, TxnPhase::Unknown);
        assert_eq!(s.attributed_ratio(WaitPoint::VisibilityWait), 0.0);
        assert_eq!(s.attributed_ratio(WaitPoint::LockWait), 1.0, "empty = 1");
    }

    #[test]
    fn overflow_folds_into_other_row() {
        let l = BlameLedger::new(4, 8);
        for t in 0..20u64 {
            l.record(WaitPoint::LockWait, t, 0, 10);
        }
        let s = l.snapshot();
        assert!(s.rows.len() <= 5, "4 named + 1 other");
        let other = s.rows.iter().find(|r| r.target.is_none()).expect("other");
        // The atomic row table keeps a small claim reserve for the
        // overflow row, so fewer named rows fit than `max_rows`.
        assert!(other.samples >= 16, "folded {} < 16", other.samples);
        assert_eq!(s.total_ns(), 200, "no time lost to folding");
        assert!(other.folded().contains(";other "));
    }

    #[test]
    fn phase_table_set_get_clear() {
        let l = BlameLedger::new(8, 8);
        assert_eq!(l.phase_of(5), TxnPhase::Unknown);
        l.set_phase(5, TxnPhase::Execute);
        assert_eq!(l.phase_of(5), TxnPhase::Execute);
        l.set_phase(5, TxnPhase::LockWait);
        assert_eq!(l.phase_of(5), TxnPhase::LockWait);
        l.clear_phase(5);
        assert_eq!(l.phase_of(5), TxnPhase::Unknown);
        // token 0 never publishes
        l.set_phase(0, TxnPhase::Commit);
        assert_eq!(l.phase_of(0), TxnPhase::Unknown);
    }

    #[test]
    fn reset_clears_everything() {
        let l = BlameLedger::new(8, 8);
        l.set_phase(1, TxnPhase::Validate);
        l.record(WaitPoint::FoldStall, 3, 1, 100);
        l.reset();
        let s = l.snapshot();
        assert!(s.rows.is_empty());
        assert_eq!(s.total_ns(), 0);
        assert!(s.top_blockers.is_empty());
        assert_eq!(l.phase_of(1), TxnPhase::Unknown);
    }
}
