//! Lock-free MPSC ring-buffer event bus for structured lifecycle events.
//!
//! Writers (transaction threads, the reaper, GC) claim a slot with one
//! `fetch_add` on a global head ticket and publish the event fields with
//! a per-slot sequence pair (`start`/`done`) — a seqlock written entirely
//! with safe atomics (the workspace denies `unsafe`). Readers are rare
//! (flight-recorder dumps, tests): a slot is accepted only when both
//! sequence words equal the expected ticket, so a slot being overwritten
//! concurrently is *skipped*, never misread. Under an extreme wrap race
//! (a writer lapping the ring mid-read) an event could in principle carry
//! fields from two different writes of the *same slot*; the ring is sized
//! far above any burst the dump window needs, and post-mortem output is
//! best-effort by design, so this is documented rather than prevented.
//!
//! The disabled path — the common case, and the one the tentpole budget
//! is written against — is a single relaxed load of `enabled`.

use crate::clock::{real_clock, SharedClock};
use crate::error::AbortReason;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Instant;

/// Number of event kinds (array size for per-kind counters).
pub const KIND_COUNT: usize = 16;

/// Which rung of the sampling ladder an event kind sits on.
///
/// * `Counter` — only the per-kind counter is bumped; no ring write ever.
/// * `Sampled` — counted always, published 1 in `2^event_sample_shift`.
/// * `Always` — counted and published on every emit (rare, load-bearing
///   events: aborts, GC, reaper, shed, pressure transitions).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Tier {
    /// Counter only; never published to the ring.
    Counter,
    /// Counted always; published 1 in `2^event_sample_shift`.
    Sampled,
    /// Counted and published unconditionally.
    Always,
}

/// What happened. Encoded as one byte inside a packed slot word.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[repr(u8)]
pub enum EventKind {
    /// A read-write transaction began (`id` = protocol actor id).
    Begin = 0,
    /// `VCregister` assigned a transaction number (`id` = tn).
    Register = 1,
    /// A lock acquisition had to wait (`id` = lock token, `aux` = object).
    LockWait = 2,
    /// A read/write blocked on a pending version or wound wait
    /// (`id` = tn or token, `aux` = object).
    Blocked = 3,
    /// OCC validation ran (`id` = actor, `aux` = 1 pass / 0 fail).
    Validate = 4,
    /// A commit record was appended to the WAL (`id` = tn, `aux` = bytes).
    WalAppend = 5,
    /// `VCcomplete` made a transaction visible (`id` = tn, `aux` = new vtnc).
    Complete = 6,
    /// A transaction aborted (`id` = actor, `aux` = [`abort_reason_code`]).
    Abort = 7,
    /// `vtnc` advanced (`id` = new vtnc, `aux` = previous vtnc).
    VtncAdvance = 8,
    /// GC pruned versions (`id` = watermark, `aux` = versions pruned).
    GcPrune = 9,
    /// The stall reaper force-discarded expired registrations
    /// (`id` = discarded count, `aux` = new vtnc).
    ReaperFire = 10,
    /// `VCdiscard` dropped a registration (`id` = tn, `aux` = new vtnc).
    Discard = 11,
    /// The admission controller admitted a read-write transaction
    /// (`id` = tenant, `aux` = in-flight count). Sampled when a sample
    /// shift is configured.
    Admit = 12,
    /// The admission controller refused a begin (`id` = tenant,
    /// `aux` = [`abort_reason_code`] of the refusal). Sampled.
    Shed = 13,
    /// The degradation ladder changed rung (`id` = new level,
    /// `aux` = previous level).
    PressureChange = 14,
    /// A read-only snapshot read completed (`id` = snapshot tn,
    /// `aux` = object). Sampled — RO reads are the highest-frequency
    /// instrumentation point in the engine.
    RoRead = 15,
}

impl EventKind {
    /// Decode from the byte stored in a slot. `None` for garbage (torn
    /// slot that slipped past the sequence check; callers drop it).
    pub fn from_u8(b: u8) -> Option<EventKind> {
        Some(match b {
            0 => EventKind::Begin,
            1 => EventKind::Register,
            2 => EventKind::LockWait,
            3 => EventKind::Blocked,
            4 => EventKind::Validate,
            5 => EventKind::WalAppend,
            6 => EventKind::Complete,
            7 => EventKind::Abort,
            8 => EventKind::VtncAdvance,
            9 => EventKind::GcPrune,
            10 => EventKind::ReaperFire,
            11 => EventKind::Discard,
            12 => EventKind::Admit,
            13 => EventKind::Shed,
            14 => EventKind::PressureChange,
            15 => EventKind::RoRead,
            _ => return None,
        })
    }

    /// Default sampling tier. Lifecycle events that fire once (or more)
    /// per transaction are `Sampled`; rare, diagnosis-critical events are
    /// `Always`. No kind defaults to `Counter`, but [`crate::obs::Obs`]
    /// treats a sample shift of 255 as "counters only" for any kind.
    pub fn tier(self) -> Tier {
        match self {
            EventKind::Begin
            | EventKind::Register
            | EventKind::LockWait
            | EventKind::Blocked
            | EventKind::Validate
            | EventKind::WalAppend
            | EventKind::Complete
            | EventKind::VtncAdvance
            | EventKind::Admit
            | EventKind::RoRead => Tier::Sampled,
            EventKind::Abort
            | EventKind::GcPrune
            | EventKind::ReaperFire
            | EventKind::Discard
            | EventKind::Shed
            | EventKind::PressureChange => Tier::Always,
        }
    }

    /// Stable lower-snake name used in post-mortem JSON.
    pub fn name(self) -> &'static str {
        match self {
            EventKind::Begin => "begin",
            EventKind::Register => "register",
            EventKind::LockWait => "lock_wait",
            EventKind::Blocked => "blocked",
            EventKind::Validate => "validate",
            EventKind::WalAppend => "wal_append",
            EventKind::Complete => "complete",
            EventKind::Abort => "abort",
            EventKind::VtncAdvance => "vtnc_advance",
            EventKind::GcPrune => "gc_prune",
            EventKind::ReaperFire => "reaper_fire",
            EventKind::Discard => "discard",
            EventKind::Admit => "admit",
            EventKind::Shed => "shed",
            EventKind::PressureChange => "pressure_change",
            EventKind::RoRead => "ro_read",
        }
    }

    /// All kinds, in numeric order (used by exporters and counters).
    pub fn all() -> [EventKind; KIND_COUNT] {
        [
            EventKind::Begin,
            EventKind::Register,
            EventKind::LockWait,
            EventKind::Blocked,
            EventKind::Validate,
            EventKind::WalAppend,
            EventKind::Complete,
            EventKind::Abort,
            EventKind::VtncAdvance,
            EventKind::GcPrune,
            EventKind::ReaperFire,
            EventKind::Discard,
            EventKind::Admit,
            EventKind::Shed,
            EventKind::PressureChange,
            EventKind::RoRead,
        ]
    }
}

/// Stable numeric code for an abort reason, stored in `Abort` event `aux`.
pub fn abort_reason_code(r: &AbortReason) -> u64 {
    match r {
        AbortReason::TimestampConflict => 1,
        AbortReason::Deadlock => 2,
        AbortReason::ValidationFailed => 3,
        AbortReason::WaitTimeout => 4,
        AbortReason::BaselineConflict => 5,
        AbortReason::UserRequested => 6,
        AbortReason::Reaped => 7,
        AbortReason::LogFailed => 8,
        AbortReason::Shed => 9,
        AbortReason::DeadlineExceeded => 10,
        AbortReason::MemoryPressure => 11,
    }
}

/// Reverse of [`abort_reason_code`] for rendering dumps.
pub fn abort_reason_name(code: u64) -> &'static str {
    match code {
        1 => "timestamp_conflict",
        2 => "deadlock",
        3 => "validation_failed",
        4 => "wait_timeout",
        5 => "baseline_conflict",
        6 => "user_requested",
        7 => "reaped",
        8 => "log_failed",
        9 => "shed",
        10 => "deadline_exceeded",
        11 => "memory_pressure",
        _ => "unknown",
    }
}

/// A decoded event read back out of the ring.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Event {
    /// Global sequence number (ring ticket); strictly increasing.
    pub seq: u64,
    /// Nanoseconds since the bus was created.
    pub t_ns: u64,
    /// What happened.
    pub kind: EventKind,
    /// Small per-thread ordinal (assigned on first emit from a thread).
    pub thread: u64,
    /// Primary actor id — tn for version-control events, lock token for
    /// 2PL, snapshot number for RO reads. Kind-dependent; see [`EventKind`].
    pub id: u64,
    /// Kind-dependent auxiliary payload (object id, reason code, vtnc…).
    pub aux: u64,
}

/// One ring slot: a `start`/`done` sequence pair around the payload words.
#[derive(Default)]
struct Slot {
    start: AtomicU64,
    done: AtomicU64,
    t_ns: AtomicU64,
    kind_thread: AtomicU64,
    id: AtomicU64,
    aux: AtomicU64,
}

/// Monotonic per-thread ordinal (std's `ThreadId::as_u64` is unstable).
pub(crate) fn thread_ordinal() -> u64 {
    use std::cell::Cell;
    static NEXT: AtomicU64 = AtomicU64::new(1);
    thread_local! {
        static ORDINAL: Cell<u64> = const { Cell::new(0) };
    }
    ORDINAL.with(|c| {
        let v = c.get();
        if v != 0 {
            v
        } else {
            let v = NEXT.fetch_add(1, Ordering::Relaxed);
            c.set(v);
            v
        }
    })
}

/// The ring-buffer event bus. See the module docs for the protocol.
pub struct EventBus {
    enabled: AtomicBool,
    head: AtomicU64,
    mask: u64,
    slots: Box<[Slot]>,
    base: Instant,
    /// Stamp source: `t_ns` is this clock's now minus `base`. Under a
    /// simulated clock, event timestamps are virtual — which is what
    /// makes a replayed run's trace byte-equal.
    clock: SharedClock,
    /// Per-thread buffer registry feeding this bus (buffered publish
    /// mode). Readers flush it before snapshotting so `recent` and
    /// `emitted` reflect everything emitted so far.
    buffers: Option<Arc<super::buffer::BufferRegistry>>,
}

impl std::fmt::Debug for EventBus {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("EventBus")
            .field("enabled", &self.enabled.load(Ordering::Relaxed))
            .field("capacity", &self.slots.len())
            .field("head", &self.head.load(Ordering::Relaxed))
            .finish()
    }
}

impl EventBus {
    /// Create a bus with at least `capacity` slots (rounded up to a power
    /// of two, minimum 64), initially `enabled` per the flag.
    pub fn new(capacity: usize, enabled: bool) -> EventBus {
        Self::with_clock(capacity, enabled, real_clock())
    }

    /// [`new`](Self::new) stamping timestamps from an injected clock.
    pub fn with_clock(capacity: usize, enabled: bool, clock: SharedClock) -> EventBus {
        let cap = capacity.max(64).next_power_of_two();
        let mut slots = Vec::with_capacity(cap);
        slots.resize_with(cap, Slot::default);
        EventBus {
            enabled: AtomicBool::new(enabled),
            head: AtomicU64::new(0),
            mask: (cap - 1) as u64,
            slots: slots.into_boxed_slice(),
            base: clock.now(),
            clock,
            buffers: None,
        }
    }

    /// Attach the per-thread buffer registry whose events drain into this
    /// bus (called once at [`super::Obs`] construction).
    pub(crate) fn attach_buffers(&mut self, registry: Arc<super::buffer::BufferRegistry>) {
        self.buffers = Some(registry);
    }

    /// Nanoseconds since bus creation on the bus clock — the timestamp
    /// domain of every event's `t_ns`.
    #[inline]
    pub(crate) fn now_ns(&self) -> u64 {
        self.clock
            .now()
            .saturating_duration_since(self.base)
            .as_nanos() as u64
    }

    /// Flush any undrained per-thread buffers into the ring.
    pub fn drain(&self) {
        if let Some(b) = &self.buffers {
            b.drain_into(self);
        }
    }

    /// Whether events are being recorded. One relaxed load — this is the
    /// entire cost of every instrumentation point when tracing is off.
    #[inline]
    pub fn enabled(&self) -> bool {
        self.enabled.load(Ordering::Relaxed)
    }

    /// Turn event recording on or off at runtime.
    pub fn set_enabled(&self, on: bool) {
        self.enabled.store(on, Ordering::Relaxed);
    }

    /// Ring capacity in slots.
    pub fn capacity(&self) -> usize {
        self.slots.len()
    }

    /// Total events ever published into the ring (including overwritten
    /// ones). Flushes pending per-thread buffers first.
    pub fn emitted(&self) -> u64 {
        self.drain();
        self.head.load(Ordering::Relaxed)
    }

    /// Record an event if the bus is enabled.
    #[inline]
    pub fn emit(&self, kind: EventKind, id: u64, aux: u64) {
        if !self.enabled() {
            return;
        }
        self.emit_always(kind, id, aux);
    }

    /// Record an event regardless of the enabled flag (flight-recorder
    /// trigger sites use this so the triggering event itself is captured).
    pub fn emit_always(&self, kind: EventKind, id: u64, aux: u64) {
        self.publish_raw(self.now_ns(), kind, thread_ordinal(), id, aux);
    }

    /// Publish an already-stamped event into the ring. The direct-publish
    /// path stamps here and now; the buffer drainer republishes events
    /// with the timestamp and thread captured at emit time.
    pub(crate) fn publish_raw(&self, t_ns: u64, kind: EventKind, thread: u64, id: u64, aux: u64) {
        let ticket = self.head.fetch_add(1, Ordering::Relaxed);
        let slot = &self.slots[(ticket & self.mask) as usize];
        let seq = ticket.wrapping_add(1);
        // Seqlock write: start first, payload, done last (Release so a
        // reader that sees `done == seq` also sees the payload stores).
        slot.start.store(seq, Ordering::Release);
        slot.t_ns.store(t_ns, Ordering::Relaxed);
        let packed = (thread << 8) | kind as u64;
        slot.kind_thread.store(packed, Ordering::Relaxed);
        slot.id.store(id, Ordering::Relaxed);
        slot.aux.store(aux, Ordering::Relaxed);
        slot.done.store(seq, Ordering::Release);
    }

    /// Try to read the event at global ticket `ticket`. `None` if the slot
    /// was overwritten, is mid-write, or decodes to garbage.
    fn read_ticket(&self, ticket: u64) -> Option<Event> {
        let slot = &self.slots[(ticket & self.mask) as usize];
        let seq = ticket.wrapping_add(1);
        if slot.done.load(Ordering::Acquire) != seq {
            return None;
        }
        let t_ns = slot.t_ns.load(Ordering::Relaxed);
        let kind_thread = slot.kind_thread.load(Ordering::Relaxed);
        let id = slot.id.load(Ordering::Relaxed);
        let aux = slot.aux.load(Ordering::Relaxed);
        if slot.start.load(Ordering::Acquire) != seq {
            return None; // a writer began overwriting while we read
        }
        let kind = EventKind::from_u8((kind_thread & 0xff) as u8)?;
        Some(Event {
            seq: ticket,
            t_ns,
            kind,
            thread: kind_thread >> 8,
            id,
            aux,
        })
    }

    /// Snapshot the most recent `n` events, oldest first. Flushes pending
    /// per-thread buffers first; slots that are mid-write or already
    /// lapped are skipped (best-effort by design).
    pub fn recent(&self, n: usize) -> Vec<Event> {
        self.drain();
        let head = self.head.load(Ordering::Acquire);
        let n = (n as u64).min(head).min(self.slots.len() as u64);
        let mut out = Vec::with_capacity(n as usize);
        for ticket in (head - n)..head {
            if let Some(ev) = self.read_ticket(ticket) {
                out.push(ev);
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_bus_records_nothing() {
        let bus = EventBus::new(64, false);
        bus.emit(EventKind::Begin, 1, 0);
        assert_eq!(bus.emitted(), 0);
        assert!(bus.recent(10).is_empty());
    }

    #[test]
    fn records_and_reads_back_in_order() {
        let bus = EventBus::new(64, true);
        for i in 0..10u64 {
            bus.emit(EventKind::Register, i, i * 2);
        }
        let evs = bus.recent(10);
        assert_eq!(evs.len(), 10);
        for (i, ev) in evs.iter().enumerate() {
            assert_eq!(ev.kind, EventKind::Register);
            assert_eq!(ev.id, i as u64);
            assert_eq!(ev.aux, i as u64 * 2);
            assert_eq!(ev.seq, i as u64);
        }
        // Timestamps are monotone non-decreasing in emission order.
        for w in evs.windows(2) {
            assert!(w[0].t_ns <= w[1].t_ns);
        }
    }

    #[test]
    fn ring_overwrites_oldest() {
        let bus = EventBus::new(64, true);
        for i in 0..200u64 {
            bus.emit(EventKind::Complete, i, 0);
        }
        let evs = bus.recent(1000);
        assert_eq!(evs.len(), 64, "only the last capacity events survive");
        assert_eq!(evs.first().unwrap().id, 200 - 64);
        assert_eq!(evs.last().unwrap().id, 199);
    }

    #[test]
    fn emit_always_ignores_disabled() {
        let bus = EventBus::new(64, false);
        bus.emit_always(EventKind::ReaperFire, 3, 7);
        let evs = bus.recent(10);
        assert_eq!(evs.len(), 1);
        assert_eq!(evs[0].kind, EventKind::ReaperFire);
    }

    #[test]
    fn concurrent_writers_never_yield_garbage() {
        let bus = std::sync::Arc::new(EventBus::new(128, true));
        std::thread::scope(|s| {
            for t in 0..4 {
                let bus = bus.clone();
                s.spawn(move || {
                    for i in 0..5_000u64 {
                        bus.emit(EventKind::LockWait, t * 10_000 + i, i);
                    }
                });
            }
            for _ in 0..50 {
                for ev in bus.recent(128) {
                    // Every accepted event must decode to a valid kind and
                    // a coherent (id, aux) pair from a single writer.
                    assert_eq!(ev.kind, EventKind::LockWait);
                    assert_eq!(ev.id % 10_000, ev.aux);
                }
            }
        });
        assert_eq!(bus.emitted(), 20_000);
    }

    #[test]
    fn kind_roundtrip_and_names() {
        for (i, k) in EventKind::all().into_iter().enumerate() {
            assert_eq!(k as usize, i, "EventKind::all() must be numeric order");
            assert_eq!(EventKind::from_u8(k as u8), Some(k));
            assert!(!k.name().is_empty());
        }
        assert_eq!(EventKind::from_u8(KIND_COUNT as u8), None);
        assert_eq!(EventKind::from_u8(200), None);
    }

    #[test]
    fn tier_table_covers_every_kind() {
        // Rare diagnosis-critical kinds publish always; per-txn lifecycle
        // kinds are sampled. (No kind is counter-only by default.)
        for k in EventKind::all() {
            match k {
                EventKind::Abort
                | EventKind::GcPrune
                | EventKind::ReaperFire
                | EventKind::Discard
                | EventKind::Shed
                | EventKind::PressureChange => assert_eq!(k.tier(), Tier::Always),
                _ => assert_eq!(k.tier(), Tier::Sampled),
            }
        }
    }
}
