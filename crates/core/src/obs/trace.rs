//! End-to-end transaction tracing: per-transaction span trees.
//!
//! A trace follows one logical transaction across every layer the paper
//! modularizes apart: retry attempts, lock waits (2PL), blocks (TO), VC
//! queue residency (`VCregister` → `VCcomplete`), WAL appends, backoff
//! sleeps, and in `mvcc-dist` the 2PC prepare/decide/commit legs. The
//! result is a tree of [`Span`]s under one implicit root (span id 1,
//! named `txn`), exportable as Chrome `trace_event` JSON or a compact
//! OTLP-like JSON (see [`super::export`]).
//!
//! **Propagation rules.**
//!
//! 1. A trace starts explicitly ([`SpanRegistry::start`], carried on
//!    [`crate::TxnOptions::with_trace`]) or is auto-sampled at begin
//!    (1 in `2^span_sample_shift` when events are on).
//! 2. Each begin pushes an *attempt* frame onto a thread-local stack;
//!    retries of the same options reuse the same trace id, so the tree
//!    shows every attempt side by side under the root.
//! 3. Instrumented sites deeper in the engine ([`leaf`]) parent
//!    themselves on the innermost frame of the current thread. No frame
//!    → no span → near-zero cost: one TLS read.
//! 4. The `VCregister`→`VCcomplete` interval outlives any single call
//!    frame, so it is carried as a *pending* span keyed by tn inside the
//!    trace itself, closed by `VCcomplete`/`VCdiscard` — from any thread
//!    (the reaper closes reaped registrations' spans).
//!
//! The registry is bounded: oldest traces are evicted once `cap` traces
//! are live, and each trace caps its span count (excess spans increment
//! `dropped_spans` rather than growing without bound).

use crate::clock::SharedClock;
use std::cell::RefCell;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Instant;

/// Trace ids below this are explicit (admin-started); at or above,
/// auto-sampled.
pub const AUTO_TRACE_BASE: u64 = 1 << 32;

/// Root span id of every trace (implicit `txn` span).
pub const ROOT_SPAN: u64 = 1;

/// Maximum spans kept per trace.
const SPAN_CAP: usize = 512;

/// Maximum live traces per registry (oldest evicted beyond this).
const TRACE_CAP: usize = 128;

/// The trace context carried on [`crate::TxnOptions`] and across 2PC
/// messages: just an id, resolved against a [`SpanRegistry`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TraceCtx {
    /// Registry-unique trace id.
    pub trace_id: u64,
}

/// One finished span of a trace.
#[derive(Debug, Clone)]
pub struct Span {
    /// Trace-unique id (root = [`ROOT_SPAN`]).
    pub span_id: u64,
    /// Parent span id (0 only for the root).
    pub parent: u64,
    /// Static site name (`attempt`, `lock_wait`, `vc_queue`, …).
    pub name: &'static str,
    /// Start, nanoseconds since the registry base.
    pub start_ns: u64,
    /// End, nanoseconds since the registry base.
    pub end_ns: u64,
    /// Thread ordinal that opened the span.
    pub thread: u64,
    /// Small key/value payload (object ids, byte counts, reason codes).
    pub attrs: Vec<(&'static str, u64)>,
}

/// A finished, exportable copy of one trace.
#[derive(Debug, Clone)]
pub struct TraceSnapshot {
    /// The trace id.
    pub trace_id: u64,
    /// All spans, root first, then in start order.
    pub spans: Vec<Span>,
    /// Spans lost to the per-trace cap.
    pub dropped_spans: u64,
}

impl TraceSnapshot {
    /// Check well-formedness: exactly one root, unique span ids, every
    /// parent exists and starts no later than its child.
    pub fn validate(&self) -> Result<(), String> {
        let mut roots = 0usize;
        let mut ids = std::collections::BTreeMap::new();
        for s in &self.spans {
            if s.parent == 0 {
                roots += 1;
                if s.span_id != ROOT_SPAN {
                    return Err(format!("root span has id {} != {ROOT_SPAN}", s.span_id));
                }
            }
            if ids.insert(s.span_id, (s.start_ns, s.end_ns)).is_some() {
                return Err(format!("duplicate span id {}", s.span_id));
            }
            if s.end_ns < s.start_ns {
                return Err(format!("span {} ends before it starts", s.span_id));
            }
        }
        if roots != 1 {
            return Err(format!("expected exactly one root span, found {roots}"));
        }
        for s in &self.spans {
            if s.parent == 0 {
                continue;
            }
            let Some(&(p_start, _)) = ids.get(&s.parent) else {
                return Err(format!("span {} has orphan parent {}", s.span_id, s.parent));
            };
            if p_start > s.start_ns {
                return Err(format!(
                    "span {} starts at {} before its parent {} at {}",
                    s.span_id, s.start_ns, s.parent, p_start
                ));
            }
        }
        Ok(())
    }
}

/// A pending span that outlives call frames (the VCQueue residency
/// interval), keyed by tn inside its trace.
struct PendingVc {
    tn: u64,
    span_id: u64,
    parent: u64,
    start_ns: u64,
    thread: u64,
}

/// One live trace: span id allocator + finished and pending spans.
pub(crate) struct ActiveTrace {
    trace_id: u64,
    start_ns: u64,
    clock: SharedClock,
    base: Instant,
    next_span: AtomicU64,
    spans: Mutex<Vec<Span>>,
    pending_vc: Mutex<Vec<PendingVc>>,
    dropped: AtomicU64,
    /// Registry-wide count of open `vc_queue` spans, shared by every
    /// trace — the fast path that lets `VCcomplete`/`VCdiscard` on
    /// untraced transactions skip the registry scan with one load.
    vc_open: Arc<AtomicU64>,
}

impl ActiveTrace {
    /// The trace id.
    pub(crate) fn trace_id(&self) -> u64 {
        self.trace_id
    }

    /// Nanoseconds since the registry base, on the registry clock.
    #[inline]
    pub(crate) fn now_ns(&self) -> u64 {
        self.clock
            .now()
            .saturating_duration_since(self.base)
            .as_nanos() as u64
    }

    fn alloc_span(&self) -> u64 {
        self.next_span.fetch_add(1, Ordering::Relaxed)
    }

    fn record(&self, span: Span) {
        let mut spans = self.spans.lock().unwrap_or_else(|e| e.into_inner());
        if spans.len() >= SPAN_CAP {
            self.dropped.fetch_add(1, Ordering::Relaxed);
            return;
        }
        spans.push(span);
    }

    /// Open the `vc_queue` pending span for `tn` under `parent`.
    fn open_vc(&self, tn: u64, parent: u64) {
        let span_id = self.alloc_span();
        let start_ns = self.now_ns();
        self.vc_open.fetch_add(1, Ordering::Relaxed);
        self.pending_vc
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .push(PendingVc {
                tn,
                span_id,
                parent,
                start_ns,
                thread: super::event::thread_ordinal(),
            });
    }

    /// Record a closed span directly — runner-level sites (backoff
    /// sleeps) that have no frame on the stack while they run.
    pub(crate) fn record_closed(
        &self,
        parent: u64,
        name: &'static str,
        start_ns: u64,
        attrs: Vec<(&'static str, u64)>,
    ) {
        let span_id = self.alloc_span();
        self.record(Span {
            span_id,
            parent,
            name,
            start_ns,
            end_ns: self.now_ns(),
            thread: super::event::thread_ordinal(),
            attrs,
        });
    }

    /// Close the pending `vc_queue` span for `tn`, if any. `outcome` is
    /// recorded as an attr (0 complete, 1 discard, 2 reaped).
    fn close_vc(&self, tn: u64, outcome: u64) -> bool {
        let pending = {
            let mut p = self.pending_vc.lock().unwrap_or_else(|e| e.into_inner());
            match p.iter().position(|x| x.tn == tn) {
                Some(i) => p.swap_remove(i),
                None => return false,
            }
        };
        self.vc_open.fetch_sub(1, Ordering::Relaxed);
        self.record(Span {
            span_id: pending.span_id,
            parent: pending.parent,
            name: "vc_queue",
            start_ns: pending.start_ns,
            end_ns: self.now_ns(),
            thread: pending.thread,
            attrs: vec![("tn", tn), ("outcome", outcome)],
        });
        true
    }
}

/// Owns every live trace of one engine (or one cluster).
pub struct SpanRegistry {
    clock: SharedClock,
    base: Instant,
    next_explicit: AtomicU64,
    next_auto: AtomicU64,
    traces: Mutex<Vec<Arc<ActiveTrace>>>,
    /// Open `vc_queue` spans across all traces (see [`ActiveTrace::vc_open`]).
    vc_open: Arc<AtomicU64>,
}

impl std::fmt::Debug for SpanRegistry {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SpanRegistry")
            .field(
                "traces",
                &self.traces.lock().unwrap_or_else(|e| e.into_inner()).len(),
            )
            .finish()
    }
}

impl SpanRegistry {
    /// Registry stamping spans from `clock`. The engine owns one inside
    /// [`Obs`](super::Obs); a distributed `Cluster` owns its own so 2PC
    /// legs across sites land in a single trace.
    pub fn new(clock: SharedClock) -> SpanRegistry {
        let base = clock.now();
        SpanRegistry {
            clock,
            base,
            next_explicit: AtomicU64::new(1),
            next_auto: AtomicU64::new(AUTO_TRACE_BASE),
            traces: Mutex::new(Vec::new()),
            vc_open: Arc::new(AtomicU64::new(0)),
        }
    }

    /// Start an explicit trace; pass the returned context on
    /// [`crate::TxnOptions::with_trace`].
    pub fn start(&self) -> TraceCtx {
        let id = self.next_explicit.fetch_add(1, Ordering::Relaxed);
        self.activate(id);
        TraceCtx { trace_id: id }
    }

    /// Next auto-sampled trace id.
    pub(crate) fn auto_id(&self) -> u64 {
        self.next_auto.fetch_add(1, Ordering::Relaxed)
    }

    /// The live trace for `trace_id`, creating it if unknown (retries and
    /// remote 2PC legs share one trace this way).
    pub(crate) fn activate(&self, trace_id: u64) -> Arc<ActiveTrace> {
        let mut traces = self.traces.lock().unwrap_or_else(|e| e.into_inner());
        if let Some(t) = traces.iter().find(|t| t.trace_id == trace_id) {
            return t.clone();
        }
        let t = Arc::new(ActiveTrace {
            trace_id,
            start_ns: self
                .clock
                .now()
                .saturating_duration_since(self.base)
                .as_nanos() as u64,
            clock: self.clock.clone(),
            base: self.base,
            next_span: AtomicU64::new(ROOT_SPAN + 1),
            spans: Mutex::new(Vec::new()),
            pending_vc: Mutex::new(Vec::new()),
            dropped: AtomicU64::new(0),
            vc_open: Arc::clone(&self.vc_open),
        });
        if traces.len() >= TRACE_CAP {
            traces.remove(0);
        }
        traces.push(t.clone());
        t
    }

    /// Close the pending `vc_queue` span for `tn` in whichever trace
    /// holds it (the reaper closes spans with no frame on its stack).
    /// One relaxed load when no `vc_queue` span is open anywhere — the
    /// common case on untraced `VCcomplete`/`VCdiscard` calls.
    pub(crate) fn close_vc_any(&self, tn: u64, outcome: u64) {
        if self.vc_open.load(Ordering::Relaxed) == 0 {
            return;
        }
        let traces: Vec<Arc<ActiveTrace>> = self
            .traces
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .clone();
        for t in traces {
            if t.close_vc(tn, outcome) {
                return;
            }
        }
    }

    /// Nanoseconds since the registry base, on the registry clock. Pairs
    /// with [`record_root_span`](Self::record_root_span).
    pub fn now_ns(&self) -> u64 {
        self.clock
            .now()
            .saturating_duration_since(self.base)
            .as_nanos() as u64
    }

    /// Record a closed span directly under `trace_id`'s root — for
    /// cross-crate sites that have no frame on the stack while they run
    /// (the 2PC prepare/decide/commit legs in `mvcc-dist`).
    pub fn record_root_span(
        &self,
        trace_id: u64,
        name: &'static str,
        start_ns: u64,
        attrs: Vec<(&'static str, u64)>,
    ) {
        self.activate(trace_id)
            .record_closed(ROOT_SPAN, name, start_ns, attrs);
    }

    /// Export a finished copy of `trace_id`: the implicit root (whose end
    /// is the latest child end) plus every recorded span, start-ordered.
    /// `None` for an unknown trace.
    pub fn snapshot(&self, trace_id: u64) -> Option<TraceSnapshot> {
        let trace = {
            let traces = self.traces.lock().unwrap_or_else(|e| e.into_inner());
            traces.iter().find(|t| t.trace_id == trace_id)?.clone()
        };
        let mut spans = trace
            .spans
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .clone();
        spans.sort_by_key(|s| (s.start_ns, s.span_id));
        let end_ns = spans
            .iter()
            .map(|s| s.end_ns)
            .max()
            .unwrap_or(trace.start_ns);
        let mut all = Vec::with_capacity(spans.len() + 1);
        all.push(Span {
            span_id: ROOT_SPAN,
            parent: 0,
            name: "txn",
            start_ns: trace.start_ns,
            end_ns: end_ns.max(trace.start_ns),
            thread: 0,
            attrs: vec![("trace_id", trace_id)],
        });
        all.extend(spans);
        Some(TraceSnapshot {
            trace_id,
            spans: all,
            dropped_spans: trace.dropped.load(Ordering::Relaxed),
        })
    }
}

// --- Thread-local frame stack ------------------------------------------

/// One attempt frame: innermost wins as the parent for [`leaf`] spans.
struct Frame {
    trace: Arc<ActiveTrace>,
    attempt_span: u64,
    token: u64,
}

thread_local! {
    static FRAMES: RefCell<Vec<Frame>> = const { RefCell::new(Vec::new()) };
}

/// Whether the calling thread currently has an active trace frame.
#[cfg(test)]
pub(crate) fn active() -> bool {
    FRAMES.with(|f| !f.borrow().is_empty())
}

/// The trace id of the calling thread's innermost frame, if any (stamped
/// into flight-recorder post-mortems).
pub fn current_trace_id() -> Option<u64> {
    FRAMES.with(|f| f.borrow().last().map(|fr| fr.trace.trace_id))
}

fn next_token() -> u64 {
    static NEXT: AtomicU64 = AtomicU64::new(1);
    NEXT.fetch_add(1, Ordering::Relaxed)
}

/// Guard for one transaction attempt: pushes a frame, records an
/// `attempt` span on drop. Held by the transaction handle.
pub struct AttemptGuard {
    trace: Arc<ActiveTrace>,
    span_id: u64,
    start_ns: u64,
    token: u64,
    attrs: Vec<(&'static str, u64)>,
}

impl AttemptGuard {
    /// Attach an attribute reported on the attempt span (abort reason,
    /// commit tn, …). Last write wins per key.
    pub(crate) fn attr(&mut self, key: &'static str, value: u64) {
        if let Some(slot) = self.attrs.iter_mut().find(|(k, _)| *k == key) {
            slot.1 = value;
        } else {
            self.attrs.push((key, value));
        }
    }

    /// The trace this attempt belongs to.
    pub(crate) fn trace(&self) -> &Arc<ActiveTrace> {
        &self.trace
    }
}

impl Drop for AttemptGuard {
    fn drop(&mut self) {
        FRAMES.with(|f| {
            let mut frames = f.borrow_mut();
            if let Some(i) = frames.iter().rposition(|fr| fr.token == self.token) {
                frames.remove(i);
            }
        });
        self.trace.record(Span {
            span_id: self.span_id,
            parent: ROOT_SPAN,
            name: "attempt",
            start_ns: self.start_ns,
            end_ns: self.trace.now_ns(),
            thread: super::event::thread_ordinal(),
            attrs: std::mem::take(&mut self.attrs),
        });
    }
}

/// Open an attempt frame on the calling thread for `trace`.
pub(crate) fn attempt(trace: Arc<ActiveTrace>) -> AttemptGuard {
    let span_id = trace.alloc_span();
    let start_ns = trace.now_ns();
    let token = next_token();
    FRAMES.with(|f| {
        f.borrow_mut().push(Frame {
            trace: trace.clone(),
            attempt_span: span_id,
            token,
        })
    });
    AttemptGuard {
        trace,
        span_id,
        start_ns,
        token,
        attrs: Vec::new(),
    }
}

/// A leaf span opened under the innermost frame. Recorded only by an
/// explicit [`finish`](LeafSpan::finish); dropping it without finishing
/// discards it (sites that open a leaf speculatively — e.g. a lock
/// acquire that never waits — just let it fall away).
pub struct LeafSpan {
    trace: Arc<ActiveTrace>,
    parent: u64,
    name: &'static str,
    start_ns: u64,
    attrs: Vec<(&'static str, u64)>,
}

impl LeafSpan {
    /// Attach an attribute.
    pub fn attr(&mut self, key: &'static str, value: u64) {
        self.attrs.push((key, value));
    }

    /// Record the span, ending now.
    pub fn finish(self) {
        let span_id = self.trace.alloc_span();
        self.trace.record(Span {
            span_id,
            parent: self.parent,
            name: self.name,
            start_ns: self.start_ns,
            end_ns: self.trace.now_ns(),
            thread: super::event::thread_ordinal(),
            attrs: self.attrs,
        });
    }
}

/// Open a leaf span under the calling thread's innermost frame, or
/// `None` when the thread is not tracing (one TLS read).
pub fn leaf(name: &'static str) -> Option<LeafSpan> {
    FRAMES.with(|f| {
        let frames = f.borrow();
        let top = frames.last()?;
        Some(LeafSpan {
            trace: top.trace.clone(),
            parent: top.attempt_span,
            name,
            start_ns: top.trace.now_ns(),
            attrs: Vec::new(),
        })
    })
}

/// Open the pending `vc_queue` span for `tn` under the innermost frame's
/// attempt (no-op when the thread is not tracing).
pub(crate) fn vc_register(tn: u64) {
    FRAMES.with(|f| {
        let frames = f.borrow();
        if let Some(top) = frames.last() {
            top.trace.open_vc(tn, top.attempt_span);
        }
    });
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::clock::real_clock;

    fn registry() -> SpanRegistry {
        SpanRegistry::new(real_clock())
    }

    #[test]
    fn empty_trace_snapshots_to_root_only() {
        let reg = registry();
        let ctx = reg.start();
        let snap = reg.snapshot(ctx.trace_id).unwrap();
        assert_eq!(snap.spans.len(), 1);
        assert_eq!(snap.spans[0].name, "txn");
        snap.validate().unwrap();
        assert!(reg.snapshot(999_999).is_none());
    }

    #[test]
    fn attempt_and_leaf_spans_nest() {
        let reg = registry();
        let ctx = reg.start();
        {
            let mut g = attempt(reg.activate(ctx.trace_id));
            g.attr("committed", 1);
            assert!(active());
            assert_eq!(current_trace_id(), Some(ctx.trace_id));
            let mut l = leaf("lock_wait").expect("frame is active");
            l.attr("object", 7);
            l.finish();
            // A speculative leaf dropped unfinished records nothing.
            let _ = leaf("lock_wait");
        }
        assert!(!active());
        let snap = reg.snapshot(ctx.trace_id).unwrap();
        snap.validate().unwrap();
        assert_eq!(snap.spans.len(), 3, "root + attempt + one leaf");
        let attempt_span = snap.spans.iter().find(|s| s.name == "attempt").unwrap();
        assert_eq!(attempt_span.parent, ROOT_SPAN);
        assert!(attempt_span.attrs.contains(&("committed", 1)));
        let lock = snap.spans.iter().find(|s| s.name == "lock_wait").unwrap();
        assert_eq!(lock.parent, attempt_span.span_id);
    }

    #[test]
    fn retries_share_one_trace() {
        let reg = registry();
        let ctx = reg.start();
        for i in 0..3u64 {
            let mut g = attempt(reg.activate(ctx.trace_id));
            g.attr("attempt", i);
        }
        let snap = reg.snapshot(ctx.trace_id).unwrap();
        snap.validate().unwrap();
        assert_eq!(
            snap.spans.iter().filter(|s| s.name == "attempt").count(),
            3,
            "three attempts under one root"
        );
    }

    #[test]
    fn vc_pending_span_closes_from_any_thread() {
        let reg = registry();
        let ctx = reg.start();
        {
            let _g = attempt(reg.activate(ctx.trace_id));
            vc_register(42);
        }
        // Reaper path: no frame on this (or any) thread.
        assert!(!active());
        reg.close_vc_any(42, 2);
        let snap = reg.snapshot(ctx.trace_id).unwrap();
        snap.validate().unwrap();
        let vc = snap.spans.iter().find(|s| s.name == "vc_queue").unwrap();
        assert!(vc.attrs.contains(&("tn", 42)));
        assert!(vc.attrs.contains(&("outcome", 2)));
    }

    #[test]
    fn registry_and_trace_are_bounded() {
        let reg = registry();
        for _ in 0..(TRACE_CAP + 10) {
            reg.start();
        }
        assert!(reg.traces.lock().unwrap().len() <= TRACE_CAP);
        let ctx = reg.start();
        let t = reg.activate(ctx.trace_id);
        for _ in 0..(SPAN_CAP + 5) {
            let _ = attempt(t.clone());
        }
        let snap = reg.snapshot(ctx.trace_id).unwrap();
        assert_eq!(snap.dropped_spans, 5);
        assert_eq!(snap.spans.len(), SPAN_CAP + 1);
    }

    #[test]
    fn validate_rejects_malformed_trees() {
        let mk = |spans: Vec<Span>| TraceSnapshot {
            trace_id: 1,
            spans,
            dropped_spans: 0,
        };
        let root = Span {
            span_id: ROOT_SPAN,
            parent: 0,
            name: "txn",
            start_ns: 0,
            end_ns: 10,
            thread: 0,
            attrs: vec![],
        };
        assert!(mk(vec![]).validate().is_err(), "no root");
        let orphan = Span {
            span_id: 2,
            parent: 99,
            name: "attempt",
            start_ns: 1,
            end_ns: 2,
            thread: 0,
            attrs: vec![],
        };
        assert!(mk(vec![root.clone(), orphan]).validate().is_err());
        let early_child = Span {
            span_id: 2,
            parent: ROOT_SPAN,
            name: "attempt",
            start_ns: 0,
            end_ns: 2,
            thread: 0,
            attrs: vec![],
        };
        let mut late_root = root.clone();
        late_root.start_ns = 5;
        assert!(
            mk(vec![late_root, early_child.clone()]).validate().is_err(),
            "parent must precede child"
        );
        assert!(mk(vec![root, early_child]).validate().is_ok());
    }
}
