//! Flight recorder: post-mortem JSON dumps on exceptional events.
//!
//! When something goes wrong — a deadlock victimization, a reaper
//! force-discard, a recovery, an invariant violation — the recorder dumps
//! the last N events from the bus, the victim's own event timeline, a
//! waits-for-graph snapshot (when the protocol has one), and the
//! version-control state to a JSON file. Dumps happen only when a flight
//! directory is configured; otherwise every trigger is a cheap no-op.
//! JSON is hand-rolled (the workspace's serde shim is a no-op).

use super::event::{abort_reason_name, Event, EventBus, EventKind};
use super::export::json_escape;
use super::gauges::VcView;
use super::AttrSnapshot;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};

/// Why a dump was taken. Becomes part of the file name and the JSON.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FlightTrigger {
    /// A deadlock ring formed and a victim was chosen.
    Deadlock,
    /// The stall reaper force-discarded expired registrations.
    ReaperFire,
    /// The engine recovered from a checkpoint + WAL replay.
    Recovery,
    /// An engine invariant failed (e.g. `VersionControl::validate`).
    InvariantViolation,
    /// Sustained overload tripped the degradation ladder into shedding.
    Overload,
}

impl FlightTrigger {
    /// Stable lower-snake name.
    pub fn name(self) -> &'static str {
        match self {
            FlightTrigger::Deadlock => "deadlock",
            FlightTrigger::ReaperFire => "reaper_fire",
            FlightTrigger::Recovery => "recovery",
            FlightTrigger::InvariantViolation => "invariant_violation",
            FlightTrigger::Overload => "overload",
        }
    }
}

/// Context attached to a dump beyond the event window.
#[derive(Debug, Clone, Default)]
pub struct DumpContext {
    /// The victimized actor id (lock token / tn), if any. Its full event
    /// timeline (all ring events with this id) is included in the dump.
    pub victim: Option<u64>,
    /// Free-form detail line (error text, victim description).
    pub detail: String,
    /// Waits-for graph edges `(waiter, holders)` at trigger time.
    pub waits_for: Option<Vec<(u64, Vec<u64>)>>,
    /// Version-control state at trigger time.
    pub vc: Option<VcView>,
    /// Transaction-trace id active on the triggering thread, if any —
    /// lets tooling join a post-mortem to the victim's span tree.
    pub trace_id: Option<u64>,
}

/// The recorder itself: a directory, a window size, and a dump counter.
#[derive(Debug)]
pub struct FlightRecorder {
    dir: Option<PathBuf>,
    window: usize,
    seq: AtomicU64,
}

impl FlightRecorder {
    /// A recorder writing `window`-event dumps into `dir`; disabled when
    /// `dir` is `None`.
    pub fn new(dir: Option<PathBuf>, window: usize) -> FlightRecorder {
        FlightRecorder {
            dir,
            window: window.max(16),
            seq: AtomicU64::new(0),
        }
    }

    /// Whether dumps are enabled.
    pub fn armed(&self) -> bool {
        self.dir.is_some()
    }

    /// Number of dumps written so far.
    pub fn dumps_written(&self) -> u64 {
        self.seq.load(Ordering::Relaxed)
    }

    /// Take a post-mortem dump. Returns the file path, or `None` when the
    /// recorder is disarmed or the write failed (dump failures must never
    /// take down the engine — they are logged to stderr and dropped).
    pub fn dump(
        &self,
        trigger: FlightTrigger,
        bus: &EventBus,
        ctx: &DumpContext,
    ) -> Option<PathBuf> {
        self.dump_with(trigger, bus, ctx, None)
    }

    /// [`dump`](Self::dump) plus the contention-attribution tables —
    /// the hot-key/hot-shard top-K and the folded blame profile — when
    /// attribution is enabled at trigger time.
    pub fn dump_with(
        &self,
        trigger: FlightTrigger,
        bus: &EventBus,
        ctx: &DumpContext,
        attr: Option<&AttrSnapshot>,
    ) -> Option<PathBuf> {
        let dir = self.dir.as_deref()?;
        let n = self.seq.fetch_add(1, Ordering::Relaxed);
        let events = bus.recent(self.window);
        let json = render_dump(trigger, &events, ctx, attr);
        let path = dir.join(format!(
            "postmortem-{}-{}-{}.json",
            trigger.name(),
            std::process::id(),
            n
        ));
        if let Err(e) = std::fs::create_dir_all(dir).and_then(|()| write_atomic(&path, &json)) {
            eprintln!("flight recorder: failed to write {}: {e}", path.display());
            return None;
        }
        Some(path)
    }
}

/// Write via a temp file + rename so a crash mid-dump never leaves a
/// half-written post-mortem that tooling would try to parse.
fn write_atomic(path: &Path, contents: &str) -> std::io::Result<()> {
    let tmp = path.with_extension("json.tmp");
    std::fs::write(&tmp, contents)?;
    std::fs::rename(&tmp, path)
}

fn push_event(out: &mut String, ev: &Event) {
    out.push_str(&format!(
        "{{\"seq\":{},\"t_ns\":{},\"kind\":\"{}\",\"thread\":{},\"id\":{},\"aux\":{}",
        ev.seq,
        ev.t_ns,
        ev.kind.name(),
        ev.thread,
        ev.id,
        ev.aux
    ));
    if ev.kind == EventKind::Abort {
        out.push_str(&format!(",\"reason\":\"{}\"", abort_reason_name(ev.aux)));
    }
    out.push('}');
}

fn render_dump(
    trigger: FlightTrigger,
    events: &[Event],
    ctx: &DumpContext,
    attr: Option<&AttrSnapshot>,
) -> String {
    let mut out = String::with_capacity(4096);
    out.push_str("{\n");
    out.push_str(&format!("  \"trigger\": \"{}\",\n", trigger.name()));
    out.push_str(&format!(
        "  \"detail\": \"{}\",\n",
        json_escape(&ctx.detail)
    ));
    match ctx.victim {
        Some(v) => out.push_str(&format!("  \"victim\": {v},\n")),
        None => out.push_str("  \"victim\": null,\n"),
    }
    match ctx.trace_id {
        Some(t) => out.push_str(&format!("  \"trace_id\": {t},\n")),
        None => out.push_str("  \"trace_id\": null,\n"),
    }
    match &ctx.vc {
        Some(vc) => {
            out.push_str(&format!(
                "  \"vc\": {{\"tnc\":{},\"vtnc\":{},\"vtnc_lag\":{},\"queue_depth\":{},\"head_tn\":{},\"head_age_us\":{}}},\n",
                vc.tnc,
                vc.vtnc,
                vc.vtnc_lag(),
                vc.queue_depth,
                vc.head_tn.map_or("null".into(), |t| t.to_string()),
                vc.head_age_us.map_or("null".into(), |a| a.to_string()),
            ));
        }
        None => out.push_str("  \"vc\": null,\n"),
    }
    match &ctx.waits_for {
        Some(edges) => {
            out.push_str("  \"waits_for\": [");
            for (i, (waiter, holders)) in edges.iter().enumerate() {
                if i > 0 {
                    out.push_str(", ");
                }
                let hs: Vec<String> = holders.iter().map(|h| h.to_string()).collect();
                out.push_str(&format!(
                    "{{\"waiter\":{},\"holders\":[{}]}}",
                    waiter,
                    hs.join(",")
                ));
            }
            out.push_str("],\n");
        }
        None => out.push_str("  \"waits_for\": null,\n"),
    }
    match attr {
        Some(a) => {
            // Top 10 of each table — a post-mortem wants the worst
            // offenders, not the full export (that is profile_json).
            out.push_str("  \"hot_keys\": [");
            for (i, e) in a.hot_keys.iter().take(10).enumerate() {
                if i > 0 {
                    out.push_str(", ");
                }
                out.push_str(&format!(
                    "{{\"key\":{},\"hits\":{},\"contended_ns\":{},\"aborts\":{}}}",
                    e.key, e.hits, e.contended_ns, e.aborts
                ));
            }
            out.push_str("],\n  \"blame_folded\": [");
            for (i, r) in a.blame.rows.iter().take(10).enumerate() {
                if i > 0 {
                    out.push_str(", ");
                }
                out.push_str(&format!("\"{}\"", json_escape(&r.folded())));
            }
            out.push_str("],\n");
        }
        None => {
            out.push_str("  \"hot_keys\": null,\n  \"blame_folded\": null,\n");
        }
    }
    if let Some(victim) = ctx.victim {
        out.push_str("  \"victim_timeline\": [\n");
        let mut first = true;
        for ev in events.iter().filter(|e| e.id == victim) {
            if !first {
                out.push_str(",\n");
            }
            first = false;
            out.push_str("    ");
            push_event(&mut out, ev);
        }
        out.push_str("\n  ],\n");
    } else {
        out.push_str("  \"victim_timeline\": [],\n");
    }
    out.push_str(&format!("  \"event_count\": {},\n", events.len()));
    out.push_str("  \"events\": [\n");
    for (i, ev) in events.iter().enumerate() {
        if i > 0 {
            out.push_str(",\n");
        }
        out.push_str("    ");
        push_event(&mut out, ev);
    }
    out.push_str("\n  ]\n}\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disarmed_recorder_is_noop() {
        let r = FlightRecorder::new(None, 64);
        let bus = EventBus::new(64, true);
        assert!(!r.armed());
        assert!(r
            .dump(FlightTrigger::Deadlock, &bus, &DumpContext::default())
            .is_none());
        assert_eq!(r.dumps_written(), 0);
    }

    #[test]
    fn dump_contains_victim_timeline_and_waits_for() {
        let dir = std::env::temp_dir().join(format!("mvdb-obs-test-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let r = FlightRecorder::new(Some(dir.clone()), 64);
        let bus = EventBus::new(64, true);
        bus.emit(EventKind::Begin, 7, 0);
        bus.emit(EventKind::LockWait, 7, 42);
        bus.emit(EventKind::Begin, 9, 0);
        bus.emit(EventKind::Abort, 7, 2);
        let ctx = DumpContext {
            victim: Some(7),
            detail: "victim \"7\" in 2-cycle".into(),
            waits_for: Some(vec![(7, vec![9]), (9, vec![7])]),
            trace_id: Some(3),
            vc: Some(VcView {
                tnc: 3,
                vtnc: 1,
                queue_depth: 2,
                head_tn: Some(2),
                head_age_us: Some(10),
            }),
        };
        let path = r.dump(FlightTrigger::Deadlock, &bus, &ctx).expect("dump");
        let text = std::fs::read_to_string(&path).unwrap();
        assert!(text.contains("\"trigger\": \"deadlock\""));
        assert!(text.contains("\"victim\": 7"));
        assert!(text.contains("\"trace_id\": 3"));
        assert!(text.contains("\"reason\":\"deadlock\""));
        assert!(text.contains("{\"waiter\":7,\"holders\":[9]}"));
        assert!(text.contains("\"vtnc_lag\":2"));
        assert!(text.contains("victim \\\"7\\\" in 2-cycle"));
        // Victim timeline has exactly the three events with id 7.
        let timeline = text.split("\"victim_timeline\"").nth(1).unwrap();
        let timeline = timeline.split("\"event_count\"").next().unwrap();
        assert_eq!(timeline.matches("\"id\":7").count(), 3);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn dump_with_attribution_includes_tables() {
        use crate::obs::{blame::TxnPhase, blame::WaitPoint, Attribution, ObsConfig};
        let dir = std::env::temp_dir().join(format!("mvdb-obs-attr-test-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let r = FlightRecorder::new(Some(dir.clone()), 64);
        let bus = EventBus::new(64, true);
        let attr = Attribution::new(&ObsConfig::default().with_attribution(true));
        attr.topk().record_key(42, 900, true);
        attr.blame().set_phase(5, TxnPhase::Validate);
        attr.blame().record(WaitPoint::LockWait, 42, 5, 900);
        let snap = attr.snapshot();
        let path = r
            .dump_with(
                FlightTrigger::Overload,
                &bus,
                &DumpContext::default(),
                Some(&snap),
            )
            .expect("dump");
        let text = std::fs::read_to_string(&path).unwrap();
        assert!(text.contains("\"hot_keys\": [{\"key\":42,"));
        assert!(text.contains("lock_wait;blocker_validate;target_42 900"));
        // And without attribution the sections are null, not absent.
        let plain = r
            .dump(FlightTrigger::Overload, &bus, &DumpContext::default())
            .expect("dump");
        let text = std::fs::read_to_string(&plain).unwrap();
        assert!(text.contains("\"hot_keys\": null"));
        assert!(text.contains("\"blame_folded\": null"));
        let _ = std::fs::remove_dir_all(&dir);
    }
}
