//! Execution tracing into `mvcc-model` histories.
//!
//! Engines buffer each transaction's operations locally and flush them to
//! the shared trace at the transaction's terminal operation, once the
//! transaction number is known (under 2PL the number does not exist before
//! the lock point, so writes cannot be traced online).
//!
//! Flushing whole transactions means the trace's *interleaving* is the
//! flush order, not the true wall-clock order of individual operations.
//! That is sufficient for the oracle: MVSG construction depends only on
//! which version each read returned (explicit in [`Op::Read`]), who wrote
//! what, and commit status — not on operation interleaving. Single-threaded
//! traces additionally satisfy `History::validate`'s ordering checks.

use mvcc_model::{History, ObjectId, Op, TxnId};
use parking_lot::Mutex;

/// Buffered operations of one in-flight transaction.
#[derive(Debug, Default, Clone)]
pub struct TxnTrace {
    reads: Vec<(ObjectId, u64)>,
    writes: Vec<ObjectId>,
}

impl TxnTrace {
    /// Fresh empty buffer.
    pub fn new() -> Self {
        Self::default()
    }

    /// Record a read of `obj` that returned version `version`. Only the
    /// first read of each object is kept, and reads after the
    /// transaction's own write of the object are dropped — enforcing the
    /// model restriction "at most one `r_i[x]`, at most one `w_i[x]`, and
    /// `r_i[x] <_i w_i[x]`".
    pub fn read(&mut self, obj: ObjectId, version: u64) {
        if self.writes.contains(&obj) || self.reads.iter().any(|&(o, _)| o == obj) {
            return;
        }
        self.reads.push((obj, version));
    }

    /// Record a write of `obj` (idempotent per object).
    pub fn write(&mut self, obj: ObjectId) {
        if !self.writes.contains(&obj) {
            self.writes.push(obj);
        }
    }

    /// Whether anything was recorded.
    pub fn is_empty(&self) -> bool {
        self.reads.is_empty() && self.writes.is_empty()
    }
}

/// Shared, append-only execution trace.
#[derive(Default)]
pub struct Tracer {
    history: Mutex<History>,
}

impl Tracer {
    /// Empty trace.
    pub fn new() -> Self {
        Self::default()
    }

    /// Flush a finished transaction: `b`, reads, writes, then `c`/`a`.
    pub fn flush(&self, tn: TxnId, trace: &TxnTrace, committed: bool) {
        let mut h = self.history.lock();
        h.push(Op::Begin { txn: tn });
        for &(obj, version) in &trace.reads {
            h.push(Op::Read {
                txn: tn,
                obj,
                version: TxnId(version),
            });
        }
        for &obj in &trace.writes {
            h.push(Op::Write { txn: tn, obj });
        }
        h.push(if committed {
            Op::Commit { txn: tn }
        } else {
            Op::Abort { txn: tn }
        });
    }

    /// Copy the accumulated history.
    pub fn history(&self) -> History {
        self.history.lock().clone()
    }

    /// Number of operations recorded so far.
    pub fn len(&self) -> usize {
        self.history.lock().len()
    }

    /// Whether nothing has been recorded.
    pub fn is_empty(&self) -> bool {
        self.history.lock().is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mvcc_model::mvsg;

    #[test]
    fn first_read_per_object_wins() {
        let mut t = TxnTrace::new();
        t.read(ObjectId(1), 0);
        t.read(ObjectId(1), 5); // dropped
        assert_eq!(t.reads, vec![(ObjectId(1), 0)]);
    }

    #[test]
    fn read_after_own_write_dropped() {
        let mut t = TxnTrace::new();
        t.write(ObjectId(1));
        t.read(ObjectId(1), 3); // reading own write — not an MV read
        assert!(t.reads.is_empty());
        assert_eq!(t.writes, vec![ObjectId(1)]);
    }

    #[test]
    fn duplicate_writes_collapse() {
        let mut t = TxnTrace::new();
        t.write(ObjectId(2));
        t.write(ObjectId(2));
        assert_eq!(t.writes.len(), 1);
    }

    #[test]
    fn flush_produces_checkable_history() {
        let tracer = Tracer::new();
        let mut t1 = TxnTrace::new();
        t1.write(ObjectId(0));
        tracer.flush(TxnId(1), &t1, true);

        let mut t2 = TxnTrace::new();
        t2.read(ObjectId(0), 1);
        tracer.flush(TxnId(2), &t2, true);

        let h = tracer.history();
        assert!(h.validate().is_ok(), "{h}");
        assert!(mvsg::is_one_copy_serializable(&h));
        assert_eq!(h.len(), 6);
    }

    #[test]
    fn aborted_flush_records_abort() {
        let tracer = Tracer::new();
        let mut t = TxnTrace::new();
        t.write(ObjectId(0));
        tracer.flush(TxnId(1), &t, false);
        let h = tracer.history();
        assert_eq!(h.status(TxnId(1)), mvcc_model::TxnStatus::Aborted);
    }

    #[test]
    fn empty_tracker_state() {
        let tracer = Tracer::new();
        assert!(tracer.is_empty());
        assert_eq!(tracer.len(), 0);
        assert!(TxnTrace::new().is_empty());
    }
}
