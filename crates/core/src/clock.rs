//! Virtual time and seeded randomness — the determinism substrate.
//!
//! Every timing decision the engine makes (reaper TTLs, retry backoff,
//! lock-wait deadlines, 2PC retransmission delays) and every random draw
//! (fault firing, backoff jitter) goes through two narrow traits:
//!
//! * [`Clock`] — `now()` and `sleep()`. Production uses [`RealClock`]
//!   (plain `Instant::now` / `thread::sleep`); the simulator injects a
//!   [`SimClock`] whose `sleep` *advances virtual time instantly*, so a
//!   simulated run burns no wall-clock waiting.
//! * [`SimRng`] — a shared `next_u64()` stream. Production components
//!   default to a private [`SplitMixRng`] seeded from their config (so
//!   they are already seed-reproducible in isolation); the simulator
//!   injects one shared stream so *every* draw in the process — fault
//!   coins, jitter, scheduler choices — comes from a single `u64` seed.
//!
//! # Why `Instant` still works
//!
//! `std::time::Instant` is opaque: you cannot fabricate one at an
//! arbitrary point. [`SimClock`] therefore anchors itself to a real
//! `Instant` captured at construction and reports `base + offset` where
//! `offset` is an atomic count of virtual nanoseconds. All existing
//! deadline arithmetic (`now + ttl`, `deadline < now`, `a - b`) keeps
//! working unchanged on the values a `SimClock` returns.
//!
//! # The condvar rule
//!
//! A simulated `Instant` may lie in the *real* future, so handing it to a
//! real `Condvar::wait_until` would block wall-clock time. Simulated runs
//! therefore configure every wait bound (`lock_wait_timeout`,
//! `read_wait_timeout`, …) as `Duration::ZERO`, and each blocking
//! primitive has a zero-timeout fail-fast path that polls once and
//! reports a timeout without ever parking. Conflicts become immediate
//! retryable aborts handled by the retry layer — under the simulator's
//! cooperative scheduler that is both deterministic and live.

use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// A source of time: the one interface the engine asks "what time is it"
/// and "wait this long" through.
pub trait Clock: Send + Sync + fmt::Debug {
    /// The current instant (virtual under simulation).
    fn now(&self) -> Instant;

    /// Wait for `d` to pass. [`RealClock`] parks the thread;
    /// [`SimClock`] advances virtual time and returns immediately.
    fn sleep(&self, d: Duration);

    /// `true` when this clock is simulated (drivers use it to skip
    /// wall-clock pacing entirely).
    fn is_simulated(&self) -> bool {
        false
    }
}

/// A shared clock handle, cheap to clone into every subsystem.
pub type SharedClock = Arc<dyn Clock>;

/// Wall-clock time: `Instant::now` and `thread::sleep`.
#[derive(Debug, Default, Clone, Copy)]
pub struct RealClock;

impl Clock for RealClock {
    fn now(&self) -> Instant {
        Instant::now()
    }

    fn sleep(&self, d: Duration) {
        if !d.is_zero() {
            std::thread::sleep(d);
        }
    }
}

/// The default clock handle (a [`RealClock`]).
pub fn real_clock() -> SharedClock {
    Arc::new(RealClock)
}

/// Virtual time for deterministic simulation: a real anchor `Instant`
/// plus an atomic count of virtual nanoseconds.
///
/// `now()` never advances on its own — time moves only when something
/// calls [`advance`](Self::advance) (or [`Clock::sleep`], which is the
/// same thing). Two runs that perform the same sequence of advances
/// observe the same sequence of *relative* times, which is what every
/// consumer (deadlines, TTLs, event timestamps) actually compares.
pub struct SimClock {
    base: Instant,
    offset_ns: AtomicU64,
}

impl SimClock {
    /// A fresh virtual clock at virtual time zero.
    pub fn new() -> Arc<SimClock> {
        Arc::new(SimClock {
            base: Instant::now(),
            offset_ns: AtomicU64::new(0),
        })
    }

    /// Advance virtual time by `d`.
    pub fn advance(&self, d: Duration) {
        self.offset_ns
            .fetch_add(d.as_nanos().min(u64::MAX as u128) as u64, Ordering::SeqCst);
    }

    /// Nanoseconds of virtual time elapsed since construction.
    pub fn elapsed_ns(&self) -> u64 {
        self.offset_ns.load(Ordering::SeqCst)
    }
}

impl fmt::Debug for SimClock {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("SimClock")
            .field("elapsed_ns", &self.elapsed_ns())
            .finish()
    }
}

impl Clock for SimClock {
    fn now(&self) -> Instant {
        self.base + Duration::from_nanos(self.offset_ns.load(Ordering::SeqCst))
    }

    fn sleep(&self, d: Duration) {
        self.advance(d);
    }

    fn is_simulated(&self) -> bool {
        true
    }
}

/// A shared deterministic random stream.
///
/// Thread-safe by contract (draws may interleave across threads), but
/// determinism across *runs* additionally requires a deterministic draw
/// order — which the simulator guarantees by running single-threaded.
pub trait SimRng: Send + Sync + fmt::Debug {
    /// The next 64 random bits.
    fn next_u64(&self) -> u64;

    /// Uniform draw in `[0, 1)`.
    fn next_unit(&self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform draw in `[0, n)` (`0` when `n == 0`).
    fn next_below(&self, n: u64) -> u64 {
        if n == 0 {
            0
        } else {
            // Multiply-shift: unbiased enough for scheduling/fault draws.
            (((self.next_u64() as u128) * (n as u128)) >> 64) as u64
        }
    }
}

/// A shared RNG handle.
pub type SharedRng = Arc<dyn SimRng>;

/// SplitMix64 behind one atomic: `next_u64` is a single `fetch_add` plus
/// a few multiplies, so it is cheap enough for production fault coins.
pub struct SplitMixRng {
    state: AtomicU64,
}

impl SplitMixRng {
    /// Stream seeded with `seed`.
    pub fn new(seed: u64) -> SplitMixRng {
        SplitMixRng {
            state: AtomicU64::new(seed),
        }
    }

    /// Shared handle to a fresh stream.
    pub fn shared(seed: u64) -> Arc<SplitMixRng> {
        Arc::new(Self::new(seed))
    }
}

impl fmt::Debug for SplitMixRng {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("SplitMixRng").finish_non_exhaustive()
    }
}

impl SimRng for SplitMixRng {
    fn next_u64(&self) -> u64 {
        let mut z = self
            .state
            .fetch_add(0x9E37_79B9_7F4A_7C15, Ordering::Relaxed)
            .wrapping_add(0x9E37_79B9_7F4A_7C15);
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn real_clock_advances() {
        let c = RealClock;
        let a = c.now();
        let b = c.now();
        assert!(b >= a);
        assert!(!c.is_simulated());
    }

    #[test]
    fn sim_clock_only_moves_on_advance() {
        let c = SimClock::new();
        let t0 = c.now();
        assert_eq!(c.now(), t0, "virtual time is frozen");
        c.advance(Duration::from_secs(5));
        assert_eq!(c.now() - t0, Duration::from_secs(5));
        c.sleep(Duration::from_millis(1));
        assert_eq!(c.now() - t0, Duration::from_millis(5001));
        assert_eq!(c.elapsed_ns(), 5_001_000_000);
        assert!(c.is_simulated());
    }

    #[test]
    fn sim_clock_deadline_arithmetic_works() {
        let c = SimClock::new();
        let deadline = c.now() + Duration::from_millis(10);
        assert!(c.now() < deadline);
        c.advance(Duration::from_millis(11));
        assert!(c.now() > deadline);
    }

    #[test]
    fn splitmix_same_seed_same_stream() {
        let a = SplitMixRng::new(42);
        let b = SplitMixRng::new(42);
        for _ in 0..64 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let c = SplitMixRng::new(43);
        assert_ne!(SplitMixRng::new(42).next_u64(), c.next_u64());
    }

    #[test]
    fn rng_helpers_in_range() {
        let r = SplitMixRng::new(7);
        for _ in 0..1000 {
            let u = r.next_unit();
            assert!((0.0..1.0).contains(&u));
            assert!(r.next_below(13) < 13);
        }
        assert_eq!(r.next_below(0), 0);
        assert_eq!(r.next_below(1), 0);
    }
}
