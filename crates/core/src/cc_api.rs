//! The uniform concurrency-control interface (the paper's central
//! abstraction).
//!
//! A [`ConcurrencyControl`] implementation owns *only* conflict
//! bookkeeping for read-write transactions — locks, timestamps, or
//! validation state. Version control and storage belong to the engine and
//! are handed to the protocol through [`CcContext`]. The contract mirrors
//! Section 4:
//!
//! * The protocol serializes read-write transactions and calls
//!   [`CcContext::vc`]`.register()` **exactly once**, at the moment the
//!   transaction's serial position is fixed: at `begin` for timestamp
//!   ordering, at the lock point (`commit` entry) for two-phase locking,
//!   at validation for optimistic schemes.
//! * Versions written must be stamped with the registered transaction
//!   number, so version order equals transaction-number order.
//! * On commit, database updates are applied **before**
//!   `vc.complete(tn)`; on abort, pendings are discarded and, if the
//!   transaction was registered, `vc.discard(tn)` is called.
//! * The protocol never sees read-only transactions at all.

use crate::config::DbConfig;
use crate::durability::CommitLog;
use crate::error::{AbortReason, DbError};
use crate::fault::FaultInjector;
use crate::metrics::Metrics;
use crate::obs::{EventKind, Obs};
use crate::pressure::{AdmissionController, TxnOptions};
use crate::vc::VersionControl;
use mvcc_model::ObjectId;
use mvcc_storage::{MvStore, Value};
use std::sync::Arc;

/// Everything a protocol needs from the engine: storage, version control,
/// configuration, counters.
#[derive(Clone)]
pub struct CcContext {
    /// The multiversion store.
    pub store: Arc<MvStore>,
    /// The version-control module (Figure 1).
    pub vc: Arc<VersionControl>,
    /// Engine configuration.
    pub config: Arc<DbConfig>,
    /// Shared counters.
    pub metrics: Arc<Metrics>,
    /// Fault injection (disabled unless configured).
    pub faults: Arc<FaultInjector>,
    /// The write-ahead log, if this engine is durable
    /// (see [`crate::MvDatabase::with_wal`]). `None` costs nothing on
    /// the commit path.
    pub wal: Option<Arc<CommitLog>>,
    /// Observability hub (events, phase latencies, flight recorder).
    /// Shared with [`Self::vc`]; disabled unless configured.
    pub obs: Arc<Obs>,
    /// Admission controller (overload gate, degradation ladder). Costs
    /// one relaxed load per begin when disabled (the default).
    pub admission: Arc<AdmissionController>,
}

impl CcContext {
    /// Build a context with fresh storage, version control and metrics.
    pub fn new(config: DbConfig) -> Self {
        Self::with_parts(
            config.clone(),
            Arc::new(MvStore::with_shards(config.store_shards)),
            Arc::new(VersionControl::from_config(&config)),
        )
    }

    /// Build a context around existing storage and version control
    /// (checkpoint restore).
    pub fn with_parts(config: DbConfig, store: Arc<MvStore>, vc: Arc<VersionControl>) -> Self {
        vc.set_register_ttl(config.register_ttl);
        vc.attach_clock(config.clock.clone());
        // With an injected shared stream, fault coins come from the
        // simulation seed; otherwise from the fault config's own seed.
        let faults = Arc::new(match &config.rng {
            Some(rng) => FaultInjector::with_rng(config.fault.clone(), Arc::clone(rng)),
            None => FaultInjector::new(config.fault.clone()),
        });
        // First attachment wins; share whichever hub the instance ends up
        // with so `ctx.obs` and the version-control emitter agree. The
        // injected rng (if any) drives sampling decisions, which is what
        // keeps simulated traces byte-stable per seed.
        let obs = vc.attach_obs(Arc::new(Obs::with_parts(
            &config.obs,
            config.clock.clone(),
            config.rng.clone(),
        )));
        let metrics = Arc::new(Metrics::new());
        let admission = AdmissionController::new(
            config.pressure.clone(),
            config.clock.clone(),
            Arc::clone(&metrics),
            Arc::clone(&obs),
        );
        CcContext {
            store,
            vc,
            config: Arc::new(config),
            metrics,
            faults,
            wal: None,
            obs,
            admission,
        }
    }

    /// Feed the store's O(1) pressure signals into the admission
    /// controller's degradation ladder. No-op when admission is disabled.
    pub fn observe_pressure(&self) {
        if self.admission.enabled() {
            let p = self.store.pressure_stats();
            self.admission.observe(p.live_bytes, p.gc_debt());
        }
    }

    /// Append `tn`'s writeset to the write-ahead log, if one is attached.
    ///
    /// Protocols call this **after** the `start_complete` claim (the
    /// transaction number is final and the entry cannot be reaped out
    /// from under us) and **before** applying updates to the store —
    /// write-before-visible, the rule the whole recovery argument rests
    /// on (see `crate::durability`). On failure the caller must unwind
    /// exactly like a protocol abort: nothing has been applied yet, and
    /// the claimed entry is released with `vc.discard(tn)`.
    pub fn log_commit(&self, tn: u64, writes: &[(ObjectId, Value)]) -> Result<(), DbError> {
        let Some(wal) = &self.wal else {
            return Ok(());
        };
        // Sampled phase timer (the per-kind counter stays exact) plus a
        // trace leaf when the committing thread is being traced.
        let timer = self.obs.phase_timer(EventKind::WalAppend);
        let span = crate::obs::trace::leaf("wal_append");
        let res = wal
            .append(tn, writes)
            .map_err(|_| DbError::Aborted(AbortReason::LogFailed));
        if let Some(started) = timer {
            self.obs.phases().wal_append.record(self.obs.since(started));
            if let Ok(info) = &res {
                self.obs
                    .publish(EventKind::WalAppend, tn, info.bytes as u64);
            }
        }
        if let Some(mut span) = span {
            span.attr("tn", tn);
            if let Ok(info) = &res {
                span.attr("bytes", info.bytes as u64);
            }
            span.finish();
        }
        res.map(|_| ())
    }
}

/// A conflict-based concurrency-control protocol for read-write
/// transactions.
///
/// Implementations in `mvcc-cc`: strict two-phase locking (Figure 4),
/// timestamp ordering (Figure 3), and backward-validation optimistic
/// concurrency control (references \[1, 2\] of the paper).
pub trait ConcurrencyControl: Send + Sync + 'static {
    /// Per-transaction protocol state (lock set, read/write sets, …).
    type Txn: Send;

    /// Protocol name for reports.
    fn name(&self) -> &'static str;

    /// `begin(T)` for a read-write transaction. Timestamp ordering
    /// registers with version control here.
    fn begin(&self, ctx: &CcContext) -> Result<Self::Txn, DbError>;

    /// `begin(T)` with per-transaction options (tenant, deadline).
    /// Protocols with blocking points override this to capture the
    /// deadline and bound every wait by the remaining budget; the default
    /// ignores the options (correct for protocols that never block, like
    /// OCC — the engine still enforces the deadline at operation entry).
    fn begin_with(&self, ctx: &CcContext, _opts: &TxnOptions) -> Result<Self::Txn, DbError> {
        self.begin(ctx)
    }

    /// `read(x)`: perform the protocol's synchronization and return the
    /// version read `(version number, value)`. May block (lock wait,
    /// pending-write wait). On `Err`, the transaction is doomed but the
    /// implementation must **not** release its resources yet — the engine
    /// follows up with [`abort`](Self::abort). If the transaction
    /// previously wrote `x`, its own pending value is returned with its
    /// reserved number (or `u64::MAX` when the number is not yet known
    /// under 2PL — such reads never enter the oracle trace).
    fn read(
        &self,
        ctx: &CcContext,
        txn: &mut Self::Txn,
        obj: ObjectId,
    ) -> Result<(u64, Value), DbError>;

    /// `read(x)` with *update intent*: protocols that lock may acquire
    /// the exclusive lock up front, avoiding the classic shared→exclusive
    /// upgrade deadlock of read-modify-write transactions. Semantics are
    /// otherwise identical to [`read`](Self::read); the default simply
    /// delegates.
    fn read_for_update(
        &self,
        ctx: &CcContext,
        txn: &mut Self::Txn,
        obj: ObjectId,
    ) -> Result<(u64, Value), DbError> {
        self.read(ctx, txn, obj)
    }

    /// `write(x)`: perform the protocol's synchronization and stage the
    /// new version (pending in the chain or buffered in `txn`). The same
    /// `Err` contract as [`read`](Self::read) applies.
    fn write(
        &self,
        ctx: &CcContext,
        txn: &mut Self::Txn,
        obj: ObjectId,
        value: Value,
    ) -> Result<(), DbError>;

    /// `end(T)` + `commit(T)`: fix the serial order if not yet fixed
    /// (2PL/OCC register here), apply database updates, release protocol
    /// resources, then `vc.complete(tn)`. Returns the transaction number.
    ///
    /// On `Err`, the implementation must have fully cleaned up (as if
    /// [`abort`](Self::abort) ran).
    fn commit(&self, ctx: &CcContext, txn: Self::Txn) -> Result<u64, DbError>;

    /// `abort(T)`: discard pendings, release protocol resources,
    /// `vc.discard(tn)` if registered.
    fn abort(&self, ctx: &CcContext, txn: Self::Txn);

    // ---- observability hooks (all optional) ------------------------------

    /// A stable id for `txn`'s lifecycle events: whatever the protocol
    /// uses to identify the transaction internally (lock token under 2PL,
    /// transaction number under TO). `0` when the protocol has none.
    fn txn_obs_id(&self, _txn: &Self::Txn) -> u64 {
        0
    }

    /// Snapshot of the waits-for graph as `(waiter, holders)` edges, for
    /// protocols that maintain one (2PL with deadlock detection). `None`
    /// when the protocol has no such graph.
    fn waits_for_snapshot(&self) -> Option<Vec<(u64, Vec<u64>)>> {
        None
    }

    /// Protocol-specific gauges, appended to
    /// [`GaugeSample::extra`](crate::obs::GaugeSample) by the collector
    /// (e.g. locked objects, occupied lock shards, adaptive mode).
    fn gauges(&self) -> Vec<(&'static str, u64)> {
        Vec::new()
    }
}
