//! The oracles must catch planted defects — and the explorer must
//! minimize them and prove the repro replays byte-for-byte.

use mvcc_sim::{run_spec, sweep, FaultProfile, Mode, Protocol, Sabotage, SimSpec, SweepConfig};

#[test]
fn rogue_write_is_found_minimized_and_replayed() {
    let cfg = SweepConfig {
        seeds: 2,
        modes: vec![Mode::Single],
        protocols: vec![Protocol::TwoPl],
        sabotage: Sabotage::RogueWrite,
        ..SweepConfig::default()
    };
    let out = sweep(&cfg, |_| {});
    assert_eq!(out.runs, 2);
    assert!(
        !out.failures.is_empty(),
        "rogue write went undetected by every oracle"
    );
    for f in &out.failures {
        assert!(
            f.report
                .violations
                .iter()
                .any(|v| v.oracle == "reserved_keyspace"),
            "wrong oracle fired: {:?}",
            f.report.violations
        );
        assert!(f.replay_ok, "minimized repro was not byte-stable");
        assert!(f.minimized.steps <= f.spec.steps);
        assert!(f.minimized.clients <= f.spec.clients);
        assert!(f.minimized.objects <= f.spec.objects);
        // The minimized spec must still fail on a fresh run.
        assert!(!run_spec(&f.minimized).passed());
        assert!(f.repro.contains("--sabotage rogue-write"));
    }
}

#[test]
fn per_site_snapshots_anomaly_found_within_seed_budget() {
    // The deliberately broken RO mode (independent per-site snapshots,
    // the anomaly the paper attributes to [8]) is schedule-dependent:
    // not every seed produces the crossing pattern. A modest sweep must
    // find it — empirically ~1 in 4 seeds does.
    let cfg = SweepConfig {
        seeds: 30,
        modes: vec![Mode::Cluster],
        protocols: vec![Protocol::TwoPl],
        faults: vec![FaultProfile::Light],
        sabotage: Sabotage::PerSiteSnapshots,
        ..SweepConfig::default()
    };
    let out = sweep(&cfg, |_| {});
    assert!(
        !out.failures.is_empty(),
        "no MVSG cycle found in 30 seeds of the broken snapshot mode"
    );
    for f in &out.failures {
        assert!(
            f.report.violations.iter().any(|v| v.oracle == "mvsg_cycle"),
            "wrong oracle fired: {:?}",
            f.report.violations
        );
        assert!(f.replay_ok, "minimized repro was not byte-stable");
        assert!(!run_spec(&f.minimized).passed());
    }
}

#[test]
fn clean_specs_survive_the_same_sweep() {
    // Identical sweep, sabotage off: nothing may fire (no false alarms).
    let cfg = SweepConfig {
        seeds: 5,
        modes: vec![Mode::Single, Mode::Cluster],
        protocols: Protocol::ALL.to_vec(),
        faults: vec![FaultProfile::Light, FaultProfile::Heavy],
        sabotage: Sabotage::None,
        ..SweepConfig::default()
    };
    let out = sweep(&cfg, |_| {});
    assert!(
        out.failures.is_empty(),
        "clean runs failed: {:?}",
        out.failures
            .iter()
            .map(|f| (&f.spec, &f.report.violations))
            .collect::<Vec<_>>()
    );
    assert_eq!(out.passed, out.runs);
}

#[test]
fn minimization_reaches_the_known_floor() {
    // The rogue write fires regardless of workload shape, so the
    // minimizer must walk all the way down to the floors.
    let spec = SimSpec {
        seed: 3,
        sabotage: Sabotage::RogueWrite,
        ..SimSpec::default()
    };
    let (min, report) = mvcc_sim::minimize(&spec);
    assert!(!report.passed());
    assert_eq!(min.steps, 10);
    assert_eq!(min.clients, 1);
    assert_eq!(min.ro_clients, 1);
    assert_eq!(min.objects, 1);
}
