//! The core guarantee: a spec is its run. Same seed → byte-identical
//! canonical trace; different seed → a different schedule.

use mvcc_sim::{run_spec, FaultProfile, Mode, Protocol, SimSpec};

#[test]
fn same_seed_replays_byte_equal_single_node() {
    for protocol in Protocol::ALL {
        for faults in [FaultProfile::None, FaultProfile::Light, FaultProfile::Heavy] {
            let spec = SimSpec {
                seed: 42,
                protocol,
                faults,
                ..SimSpec::default()
            };
            let a = run_spec(&spec);
            let b = run_spec(&spec);
            assert_eq!(
                a.trace, b.trace,
                "{protocol}/{faults}: replay diverged (fingerprints {} vs {})",
                a.fingerprint, b.fingerprint
            );
            assert_eq!(a.fingerprint, b.fingerprint);
        }
    }
}

#[test]
fn same_seed_replays_byte_equal_cluster() {
    for faults in [FaultProfile::None, FaultProfile::Light, FaultProfile::Heavy] {
        let spec = SimSpec {
            seed: 7,
            mode: Mode::Cluster,
            faults,
            ..SimSpec::default()
        };
        let a = run_spec(&spec);
        let b = run_spec(&spec);
        assert_eq!(a.trace, b.trace, "cluster/{faults}: replay diverged");
    }
}

#[test]
fn traced_transactions_replay_byte_equal_and_well_formed() {
    // Tracing is on in every sim run (1 in 4 rw transactions, sampled
    // from the injected rng), and the sampled span trees are part of the
    // canonical trace — so byte-equality here proves seed replay stays
    // stable *with tracing enabled*, per-span timing and attributes
    // included. Well-formedness is checked inside the run by the
    // `trace_tree` oracle; here we also prove spans actually exist.
    for mode in Mode::ALL {
        for faults in [FaultProfile::None, FaultProfile::Heavy] {
            let spec = SimSpec {
                seed: 0xBEEF,
                mode,
                faults,
                ..SimSpec::default()
            };
            let a = run_spec(&spec);
            let b = run_spec(&spec);
            let spans = a
                .trace
                .lines()
                .skip_while(|l| *l != "== spans ==")
                .skip(1)
                .take_while(|l| !l.starts_with("== "))
                .count();
            assert!(spans > 0, "{spec}: no span tree reached the trace");
            assert!(
                !a.violations.iter().any(|v| v.oracle == "trace_tree"),
                "{spec}: malformed span tree: {:?}",
                a.violations
            );
            assert_eq!(
                a.trace, b.trace,
                "{spec}: traced replay diverged (fingerprints {} vs {})",
                a.fingerprint, b.fingerprint
            );
        }
    }
}

#[test]
fn different_seeds_produce_different_schedules() {
    let a = run_spec(&SimSpec {
        seed: 1,
        ..SimSpec::default()
    });
    let b = run_spec(&SimSpec {
        seed: 2,
        ..SimSpec::default()
    });
    assert_ne!(
        a.trace, b.trace,
        "seeds 1 and 2 produced identical runs — the seed is not reaching the schedule"
    );
}

#[test]
fn clean_single_node_runs_pass_every_oracle() {
    for protocol in Protocol::ALL {
        for seed in 1..=5 {
            let spec = SimSpec {
                seed,
                protocol,
                ..SimSpec::default()
            };
            let r = run_spec(&spec);
            assert!(
                r.passed(),
                "{spec} violated oracles: {:?}\ntail:\n{}",
                r.violations,
                r.trace_tail(40)
            );
            assert!(r.commits > 0, "{spec} committed nothing");
        }
    }
}

#[test]
fn clean_cluster_runs_pass_every_oracle() {
    for seed in 1..=5 {
        let spec = SimSpec {
            seed,
            mode: Mode::Cluster,
            ..SimSpec::default()
        };
        let r = run_spec(&spec);
        assert!(
            r.passed(),
            "{spec} violated oracles: {:?}\ntail:\n{}",
            r.violations,
            r.trace_tail(40)
        );
        assert!(r.commits > 0, "{spec} committed nothing");
    }
}

#[test]
fn heavy_faults_still_pass_oracles() {
    // Aggressive stalls, crashes, WAL failures and message chaos must
    // degrade throughput, never correctness.
    for protocol in Protocol::ALL {
        let spec = SimSpec {
            seed: 1337,
            protocol,
            faults: FaultProfile::Heavy,
            ..SimSpec::default()
        };
        let r = run_spec(&spec);
        assert!(r.passed(), "{spec}: {:?}", r.violations);
    }
    let spec = SimSpec {
        seed: 1337,
        mode: Mode::Cluster,
        faults: FaultProfile::Heavy,
        ..SimSpec::default()
    };
    let r = run_spec(&spec);
    assert!(r.passed(), "{spec}: {:?}", r.violations);
}

#[test]
fn attribution_enabled_replays_byte_equal_and_schedule_invisible() {
    // Contention attribution must be deterministic under replay AND
    // invisible to the schedule: it draws no randomness and emits no
    // events, so the canonical trace is byte-identical whether the
    // hot-key sketches and blame ledger are recording or not.
    for protocol in Protocol::ALL {
        let on = SimSpec {
            seed: 42,
            protocol,
            attribution: true,
            ..SimSpec::default()
        };
        let a = run_spec(&on);
        let b = run_spec(&on);
        assert_eq!(
            a.trace, b.trace,
            "{protocol}: replay with attribution diverged (fingerprints {} vs {})",
            a.fingerprint, b.fingerprint
        );
        let off = SimSpec {
            attribution: false,
            ..on
        };
        let c = run_spec(&off);
        assert_eq!(
            a.trace, c.trace,
            "{protocol}: attribution perturbed the canonical trace"
        );
        assert!(a.passed(), "{on}: {:?}", a.violations);
    }
}
