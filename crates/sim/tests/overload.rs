//! Overload-simulation specs: the degradation ladder under seeded
//! bursts, replayed byte-for-byte.
//!
//! These are the PR-gate overload scenarios: a burst that climbs the
//! ladder and recovers, per-tenant fairness under skewed weights, the
//! deadline-miss oracle under a GC stall, and the shedding-off control
//! run. Each spec is deterministic — the first assertion in every test
//! is that its oracles held, and the replay test pins the canonical
//! trace byte-for-byte.

use mvcc_sim::spec::Protocol;
use mvcc_sim::{run_overload, OverloadSpec};
use std::time::Duration;

/// Same spec, same seed → byte-identical canonical trace and
/// fingerprint. The overload run is a pure function of its spec.
#[test]
fn replay_is_byte_identical() {
    let spec = OverloadSpec::default();
    let a = run_overload(&spec);
    let b = run_overload(&spec);
    assert_eq!(a.trace, b.trace, "replay diverged");
    assert_eq!(a.fingerprint, b.fingerprint);
    assert!(a.passed(), "oracles failed: {:?}", a.violations);
}

/// Different seeds explore different schedules: the fingerprint moves.
#[test]
fn seeds_produce_distinct_schedules() {
    let a = run_overload(&OverloadSpec::default());
    let b = run_overload(&OverloadSpec {
        seed: 2,
        ..OverloadSpec::default()
    });
    assert_ne!(a.fingerprint, b.fingerprint);
}

/// The canonical burst-then-recover scenario: the burst pushes the
/// ladder past `Shed`, light tenants are refused while the heavy tenant
/// keeps its floor, and after the burst the ladder walks back down to
/// `Normal` one rung at a time.
#[test]
fn burst_climbs_ladder_and_recovers() {
    for protocol in [Protocol::TwoPl, Protocol::To, Protocol::Occ] {
        let spec = OverloadSpec {
            protocol,
            ..OverloadSpec::default()
        };
        let r = run_overload(&spec);
        assert!(r.passed(), "{protocol}: {:?}", r.violations);
        assert!(
            r.max_level >= mvcc_core::PressureLevel::Shed,
            "{protocol}: burst never reached the shed rung (max {})",
            r.max_level.name()
        );
        assert_eq!(r.final_level, mvcc_core::PressureLevel::Normal);
        assert!(r.shed_rw > 0, "{protocol}: nothing was ever refused");
        assert!(r.commits > 0);
        // Recovery is visible in the transition list: the last recorded
        // transition lands on Normal.
        assert_eq!(
            r.transitions.last().map(|t| t.to),
            Some(mvcc_core::PressureLevel::Normal)
        );
    }
}

/// Fairness under skew: the quota table gives tenant 0 most of the
/// weight; at the shed rung the light tenants absorb the refusals while
/// the heavy tenant is still admitted.
#[test]
fn heavy_tenant_keeps_its_share_under_shedding() {
    let r = run_overload(&OverloadSpec::default());
    assert!(r.passed(), "{:?}", r.violations);
    let heavy = r
        .tenant_stats
        .iter()
        .find(|(t, ..)| t.0 == 0)
        .expect("heavy tenant ran");
    assert!(heavy.1 > 0, "heavy tenant starved");
    let light_shed: u64 = r
        .tenant_stats
        .iter()
        .filter(|(t, ..)| t.0 != 0)
        .map(|&(_, _, shed)| shed)
        .sum();
    assert!(light_shed > 0, "no light tenant was ever refused");
}

/// Deadline-miss oracle under a GC stall: with tight per-transaction
/// budgets and GC suspended through the burst, some transactions must
/// die with `DeadlineExceeded` — and none may silently commit past its
/// budget (that oracle is part of `passed()`).
#[test]
fn gc_stall_with_deadlines_misses_loudly_not_silently() {
    let spec = OverloadSpec {
        deadline: Some(Duration::from_millis(4)),
        ..OverloadSpec::default()
    };
    let r = run_overload(&spec);
    assert!(r.passed(), "{:?}", r.violations);
    assert!(
        r.deadline_aborts > 0,
        "tight budgets under a GC stall must produce deadline aborts"
    );
    assert!(r.commits > 0, "generous schedules still commit");
}

/// Control run with admission off: the same burst, no refusals, no
/// ladder movement. This is the "degradation is a choice" baseline the
/// E17 experiment quantifies.
#[test]
fn shedding_off_never_refuses() {
    let r = run_overload(&OverloadSpec {
        shedding: false,
        ..OverloadSpec::default()
    });
    assert!(r.passed(), "{:?}", r.violations);
    assert_eq!(r.shed_rw, 0);
    assert_eq!(r.shed_ro, 0);
    assert!(r.transitions.is_empty());
    assert_eq!(r.max_level, mvcc_core::PressureLevel::Normal);
}
