//! Schedule explorer: sweep seeds across workload × protocol × fault
//! grids and diagnose every oracle failure.
//!
//! ```text
//! cargo run -p mvcc-sim --bin explore -- --seeds 50 --modes single,cluster
//! ```
//!
//! On failure the explorer minimizes the spec, replays it twice to prove
//! the trace is byte-stable, prints the violations plus a post-mortem
//! trace tail, and emits the exact flags that reproduce the run. With
//! `--expect-violation` (CI sabotage jobs) the exit code inverts: success
//! means the planted defect *was* found, minimized and replayed.

use mvcc_sim::{sweep, FaultProfile, Mode, Protocol, Sabotage, SweepConfig};
use std::process::ExitCode;
use std::str::FromStr;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let cfg = match parse(&args) {
        Ok(Parsed::Run(cfg)) => cfg,
        Ok(Parsed::Help) => {
            print!("{USAGE}");
            return ExitCode::SUCCESS;
        }
        Err(e) => {
            eprintln!("error: {e}\n\n{USAGE}");
            return ExitCode::from(2);
        }
    };

    println!(
        "exploring {} seeds from {} | modes {:?} protocols {:?} faults {:?} sabotage {}",
        cfg.sweep.seeds,
        cfg.sweep.seed_start,
        cfg.sweep.modes.iter().map(|m| m.name()).collect::<Vec<_>>(),
        cfg.sweep
            .protocols
            .iter()
            .map(|p| p.name())
            .collect::<Vec<_>>(),
        cfg.sweep
            .faults
            .iter()
            .map(|f| f.name())
            .collect::<Vec<_>>(),
        cfg.sweep.sabotage,
    );

    let outcome = sweep(&cfg.sweep, |r| {
        if cfg.verbose {
            println!("  {}", r.summary());
        }
    });
    println!(
        "ran {} simulations: {} passed, {} failed",
        outcome.runs,
        outcome.passed,
        outcome.failures.len()
    );

    let mut replay_broken = false;
    for (i, f) in outcome.failures.iter().enumerate() {
        println!("\n=== failure {} ===", i + 1);
        println!("original:  {}", f.spec);
        println!("minimized: {}", f.minimized);
        println!(
            "replay: {}",
            if f.replay_ok {
                "byte-identical across 2 replays"
            } else {
                "NOT DETERMINISTIC (trace drifted between replays)"
            }
        );
        replay_broken |= !f.replay_ok;
        for v in &f.report.violations {
            println!("violation: {v}");
        }
        println!("post-mortem (trace tail):");
        for line in f.report.trace_tail(30).lines() {
            println!("  | {line}");
        }
        println!("repro: cargo run -p mvcc-sim --bin explore -- {}", f.repro);
        if let Some(dir) = &cfg.artifact_dir {
            let name = format!(
                "seed-{}-{}-{}.txt",
                f.minimized.seed,
                f.minimized.mode.name(),
                f.minimized.protocol.name()
            );
            let path = std::path::Path::new(dir).join(name);
            let body = format!(
                "{}\nrepro: cargo run -p mvcc-sim --bin explore -- {}\n\nviolations:\n{}\n\ntrace:\n{}",
                f.report.summary(),
                f.repro,
                f.report
                    .violations
                    .iter()
                    .map(|v| format!("  {v}"))
                    .collect::<Vec<_>>()
                    .join("\n"),
                f.report.trace,
            );
            match std::fs::create_dir_all(dir).and_then(|_| std::fs::write(&path, body)) {
                Ok(()) => println!("artifact: {}", path.display()),
                Err(e) => eprintln!("artifact write failed: {e}"),
            }
        }
    }

    let found = !outcome.failures.is_empty();
    let ok = if cfg.expect_violation {
        // Sabotage runs: the planted defect must be found AND replay
        // deterministically.
        found && !replay_broken
    } else {
        !found
    };
    if cfg.expect_violation && !found {
        eprintln!("expected a violation but every run passed");
    }
    if ok {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}

struct Cli {
    sweep: SweepConfig,
    expect_violation: bool,
    artifact_dir: Option<String>,
    verbose: bool,
}

enum Parsed {
    Run(Cli),
    Help,
}

const USAGE: &str = "\
usage: explore [flags]

  --seeds N              seeds to sweep (default 20)
  --seed-start N         first seed (default 1)
  --modes a,b            single,cluster (default single)
  --protocols a,b,c      2pl,to,occ (default all; cluster ignores)
  --faults a,b           none,light,heavy (default light)
  --sabotage S           none,rogue-write,per-site-snapshots (default none)
  --clients N            read-write client slots (default 4)
  --ro-clients N         read-only client slots (default 2)
  --steps N              transactions per run (default 150)
  --objects N            keyspace size (default 8)
  --sites N              cluster sites (default 3)
  --expect-violation     exit 0 iff a violation was found (sabotage CI)
  --artifact-dir DIR     write full failure reports into DIR
  --verbose              print every run's summary
  --help                 this text
";

fn parse_list<T: FromStr<Err = String>>(s: &str) -> Result<Vec<T>, String> {
    s.split(',')
        .filter(|p| !p.is_empty())
        .map(|p| p.parse())
        .collect()
}

fn parse(args: &[String]) -> Result<Parsed, String> {
    let mut cli = Cli {
        sweep: SweepConfig::default(),
        expect_violation: false,
        artifact_dir: None,
        verbose: false,
    };
    let mut it = args.iter();
    while let Some(flag) = it.next() {
        let mut value = || {
            it.next()
                .cloned()
                .ok_or_else(|| format!("{flag} needs a value"))
        };
        match flag.as_str() {
            "--help" | "-h" => return Ok(Parsed::Help),
            "--seeds" => cli.sweep.seeds = num(&value()?)?,
            "--seed-start" => cli.sweep.seed_start = num(&value()?)?,
            "--modes" => cli.sweep.modes = parse_list::<Mode>(&value()?)?,
            "--protocols" => cli.sweep.protocols = parse_list::<Protocol>(&value()?)?,
            "--faults" => cli.sweep.faults = parse_list::<FaultProfile>(&value()?)?,
            "--sabotage" => cli.sweep.sabotage = value()?.parse::<Sabotage>()?,
            "--clients" => cli.sweep.base.clients = num(&value()?)? as usize,
            "--ro-clients" => cli.sweep.base.ro_clients = num(&value()?)? as usize,
            "--steps" => cli.sweep.base.steps = num(&value()?)?,
            "--objects" => cli.sweep.base.objects = num(&value()?)?,
            "--sites" => cli.sweep.base.sites = num(&value()?)? as u16,
            "--expect-violation" => cli.expect_violation = true,
            "--artifact-dir" => cli.artifact_dir = Some(value()?),
            "--verbose" => cli.verbose = true,
            other => return Err(format!("unknown flag {other:?}")),
        }
    }
    if cli.sweep.modes.is_empty() || cli.sweep.protocols.is_empty() || cli.sweep.faults.is_empty() {
        return Err("modes, protocols and faults must be non-empty".into());
    }
    Ok(Parsed::Run(cli))
}

fn num(s: &str) -> Result<u64, String> {
    s.parse::<u64>()
        .map_err(|e| format!("bad number {s:?}: {e}"))
}
