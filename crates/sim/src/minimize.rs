//! Failing-run minimization: shrink a spec while the failure persists.
//!
//! Because a run is a pure function of its spec, minimization is just
//! re-running candidate specs: halve one dimension at a time (steps,
//! clients, read-only clients, objects, sites) and keep the candidate if
//! it still fails any oracle. Loops to a fixed point, so the result is
//! locally minimal: shrinking any single dimension further makes the
//! failure disappear.

use crate::report::RunReport;
use crate::run_spec;
use crate::spec::{Mode, SimSpec};

/// Halve `v` toward `floor` (no-op at the floor).
fn halve(v: u64, floor: u64) -> u64 {
    (v / 2).max(floor)
}

/// Shrink `failing` while it keeps failing. Returns the minimized spec
/// and its (still-failing) report. If `failing` actually passes, returns
/// it unchanged with its passing report.
pub fn minimize(failing: &SimSpec) -> (SimSpec, RunReport) {
    let mut best = failing.clone();
    let mut best_report = run_spec(&best);
    if best_report.passed() {
        return (best, best_report);
    }
    loop {
        let mut improved = false;
        let candidates = candidate_shrinks(&best);
        for cand in candidates {
            if cand == best {
                continue;
            }
            let report = run_spec(&cand);
            if !report.passed() {
                best = cand;
                best_report = report;
                improved = true;
                break; // restart shrinking from the new, smaller spec
            }
        }
        if !improved {
            return (best, best_report);
        }
    }
}

fn candidate_shrinks(spec: &SimSpec) -> Vec<SimSpec> {
    let mut out = Vec::new();
    let mut c = spec.clone();
    c.steps = halve(spec.steps, 10);
    out.push(c);
    let mut c = spec.clone();
    c.clients = halve(spec.clients as u64, 1) as usize;
    out.push(c);
    let mut c = spec.clone();
    c.ro_clients = halve(spec.ro_clients as u64, 1) as usize;
    out.push(c);
    let mut c = spec.clone();
    c.objects = halve(spec.objects, 1);
    out.push(c);
    if spec.mode == Mode::Cluster {
        let mut c = spec.clone();
        c.sites = halve(spec.sites as u64, 2) as u16;
        out.push(c);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn halve_respects_floor() {
        assert_eq!(halve(100, 10), 50);
        assert_eq!(halve(11, 10), 10);
        assert_eq!(halve(10, 10), 10);
        assert_eq!(halve(1, 1), 1);
    }

    #[test]
    fn shrink_candidates_never_grow() {
        let spec = SimSpec {
            mode: Mode::Cluster,
            ..SimSpec::default()
        };
        for c in candidate_shrinks(&spec) {
            assert!(c.steps <= spec.steps);
            assert!(c.clients <= spec.clients);
            assert!(c.ro_clients <= spec.ro_clients);
            assert!(c.objects <= spec.objects);
            assert!(c.sites <= spec.sites);
        }
    }
}
