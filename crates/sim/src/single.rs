//! Single-node simulation: one engine, one WAL, cooperative clients.
//!
//! The scheduler is a single real thread multiplexing many *logical*
//! clients: each tick it picks one client by a seeded draw and advances
//! that client's in-flight transaction by exactly one operation. Blocking
//! never happens — the engine is configured with zero wait timeouts, so
//! every conflict surfaces as an immediate retryable abort — which makes
//! the interleaving (and therefore the entire run) a pure function of the
//! seed.
//!
//! Terminal oracles, checked after the step budget is spent:
//!
//! * **`vc_invariant`** — [`VersionControl::validate`] on the live queue.
//! * **`mvsg_cycle`** — the traced history is one-copy serializable
//!   (MVSG acyclic under tn version order).
//! * **`conservation`** — every workload object's latest value equals the
//!   number of successfully committed increments applied to it.
//! * **`recovery_conservation`** — replaying the (fault-injected) WAL
//!   into a fresh engine reproduces exactly the committed values: no
//!   committed write lost, no aborted write resurrected.
//! * **`reserved_keyspace`** — an object the workload never touches is
//!   still empty (catches the [`Sabotage::RogueWrite`] plant).
//!
//! [`VersionControl::validate`]: mvcc_core::VersionControl::validate

use crate::report::{fnv1a, RunReport, Violation};
use crate::spec::{Protocol, Sabotage, SimSpec};
use mvcc_cc::{Optimistic, TimestampOrdering, TwoPhaseLocking};
use mvcc_core::{
    AbortReason, ConcurrencyControl, DbConfig, DbError, FaultPoint, MvDatabase, ObsConfig, RoTxn,
    RwTxn, SimClock, SimRng, SplitMixRng, TxnOptions,
};
use mvcc_model::ObjectId;
use mvcc_storage::wal::MemWal;
use mvcc_storage::Value;
use std::collections::BTreeMap;
use std::time::Duration;

/// Offset past the workload keyspace for the reserved canary object.
const RESERVED_OFFSET: u64 = 0xDEAD;

/// Transaction number used by the rogue write: far above anything real
/// transactions reach in a bounded run, far below the anonymous-trace id
/// space.
const ROGUE_TN: u64 = 1 << 40;

/// Stream-splitting constant: the engine's fault/jitter rng draws from
/// `seed ^ ENGINE_STREAM` so scheduler draws and engine draws do not
/// alias even though both derive from one seed.
const ENGINE_STREAM: u64 = 0x5EED_5EED_5EED_5EED;

/// The reserved canary object for a given keyspace size.
pub fn reserved_object(objects: u64) -> ObjectId {
    ObjectId(objects + RESERVED_OFFSET)
}

/// Run one single-node simulation to completion.
pub fn run_single(spec: &SimSpec) -> RunReport {
    match spec.protocol {
        Protocol::TwoPl => drive(spec, || TwoPhaseLocking::with_shards(16)),
        Protocol::To => drive(spec, TimestampOrdering::new),
        Protocol::Occ => drive(spec, Optimistic::new),
    }
}

/// An in-flight read-write transaction owned by a logical client.
struct RwFlight<'db, C: ConcurrencyControl> {
    txn: RwTxn<'db, C>,
    plan: Vec<ObjectId>,
    pos: usize,
    wrote: Vec<ObjectId>,
}

/// An in-flight read-only transaction owned by a logical client.
struct RoFlight<'db> {
    txn: RoTxn<'db>,
    plan: Vec<ObjectId>,
    pos: usize,
}

fn drive<C, F>(spec: &SimSpec, mk: F) -> RunReport
where
    C: ConcurrencyControl,
    F: Fn() -> C,
{
    let clock = SimClock::new();
    let sched = SplitMixRng::new(spec.seed);
    let mut cfg = DbConfig::default()
        .with_clock(clock.clone())
        .with_rng(SplitMixRng::shared(spec.seed ^ ENGINE_STREAM))
        // Exercise epoch batching under the simulator: folds are deferred
        // until the second settle, which is still fully deterministic
        // because the single-threaded scheduler fixes the op order.
        .with_vc_epoch_ops(2);
    cfg.trace = true;
    cfg.lock_wait_timeout = Duration::ZERO;
    cfg.read_wait_timeout = Duration::ZERO;
    cfg.register_ttl = Some(Duration::from_millis(25));
    cfg.fault = spec.faults.fault_config(spec.seed);
    cfg.obs = ObsConfig::default();
    cfg.obs.events = true;
    cfg.obs.event_capacity = 1 << 14;
    cfg.obs.attribution = spec.attribution;
    // Trace 1 in 4 read-write transactions end to end. The sampling
    // decision draws from the injected engine rng, so a replay traces
    // exactly the same transactions and the span trees land in the
    // canonical trace byte for byte.
    cfg.obs.span_sample_shift = 2;
    let event_cap = cfg.obs.event_capacity;

    let mem = MemWal::new();
    let db = MvDatabase::with_wal(mk(), cfg, Box::new(mem.clone()))
        .expect("in-memory WAL creation cannot fail");
    for o in 0..spec.objects {
        db.seed(ObjectId(o), Value::from_u64(0));
    }
    let mut expected = vec![0u64; spec.objects as usize];

    let mut rw_slots: Vec<Option<RwFlight<'_, C>>> =
        (0..spec.clients.max(1)).map(|_| None).collect();
    let mut ro_slots: Vec<Option<RoFlight<'_>>> = (0..spec.ro_clients).map(|_| None).collect();
    let total = rw_slots.len() + ro_slots.len();

    let mut steps_done = 0u64;
    let mut ticks = 0u64;
    let mut commits = 0u64;
    let mut aborts = 0u64;
    let mut stalls = 0u64;
    let mut crashes = 0u64;
    let mut wal_aborts = 0u64;
    let mut reaped = 0u64;
    let mut ro_reads = 0u64;
    let mut ro_aborts = 0u64;
    let mut violations: Vec<Violation> = Vec::new();
    let mut rogue_done = false;
    let mut traced: Vec<u64> = Vec::new();

    let max_ticks = spec.steps.saturating_mul(300).max(10_000);
    while steps_done < spec.steps && ticks < max_ticks {
        ticks += 1;

        // Plant the rogue write once, mid-run, behind the engine's back.
        if spec.sabotage == Sabotage::RogueWrite && !rogue_done && steps_done >= spec.steps / 2 {
            db.store().with(reserved_object(spec.objects), |c| {
                let _ = c.insert_committed(ROGUE_TN, Value::from_u64(0xBAD));
            });
            rogue_done = true;
        }

        let k = sched.next_below(total as u64) as usize;
        if k < rw_slots.len() {
            let slot = &mut rw_slots[k];
            match slot.take() {
                None => {
                    // Sampled transactions carry an explicit trace context
                    // so their whole lifecycle lands in one span tree.
                    let opts = if db.obs().span_sampled() {
                        let ctx = db.start_trace();
                        traced.push(ctx.trace_id);
                        TxnOptions::default().with_trace(ctx)
                    } else {
                        TxnOptions::default()
                    };
                    match db.begin_read_write_with(&opts) {
                        Ok(txn) => {
                            let n = 1 + sched.next_below(3);
                            let mut plan = Vec::new();
                            for _ in 0..n {
                                let o = ObjectId(sched.next_below(spec.objects.max(1)));
                                if !plan.contains(&o) {
                                    plan.push(o);
                                }
                            }
                            *slot = Some(RwFlight {
                                txn,
                                plan,
                                pos: 0,
                                wrote: Vec::new(),
                            });
                        }
                        Err(_) => {
                            aborts += 1;
                            steps_done += 1;
                        }
                    }
                }
                Some(mut f) => {
                    if db.faults().fire(FaultPoint::StallAfterRegister) {
                        // The client vanishes mid-transaction: protocol
                        // state leaks and the reaper/timeouts must cope.
                        f.txn.stall();
                        stalls += 1;
                        steps_done += 1;
                    } else if f.pos < f.plan.len() {
                        let obj = f.plan[f.pos];
                        let res = f.txn.read_for_update(obj).and_then(|v| {
                            let cur = v.as_u64().unwrap_or(0);
                            f.txn.write(obj, Value::from_u64(cur + 1))
                        });
                        match res {
                            Ok(()) => {
                                f.wrote.push(obj);
                                f.pos += 1;
                                *slot = Some(f);
                            }
                            Err(e) if e.is_retryable() => {
                                f.txn.abort();
                                aborts += 1;
                                steps_done += 1;
                            }
                            Err(DbError::VersionPruned { .. }) => {
                                f.txn.abort();
                                aborts += 1;
                                steps_done += 1;
                            }
                            Err(e) => {
                                violations.push(Violation {
                                    oracle: "engine_error",
                                    detail: format!("rw op on {obj:?} failed: {e}"),
                                });
                                steps_done += 1;
                            }
                        }
                    } else if db.faults().fire(FaultPoint::CrashBeforeComplete) {
                        f.txn.stall();
                        crashes += 1;
                        steps_done += 1;
                    } else {
                        match f.txn.commit() {
                            Ok(_tn) => {
                                for o in &f.wrote {
                                    expected[o.0 as usize] += 1;
                                }
                                commits += 1;
                                steps_done += 1;
                            }
                            Err(e) if e.is_retryable() => {
                                aborts += 1;
                                steps_done += 1;
                            }
                            Err(e) if e.abort_reason() == Some(AbortReason::LogFailed) => {
                                wal_aborts += 1;
                                steps_done += 1;
                            }
                            Err(e) => {
                                violations.push(Violation {
                                    oracle: "engine_error",
                                    detail: format!("commit failed: {e}"),
                                });
                                steps_done += 1;
                            }
                        }
                    }
                }
            }
        } else {
            let slot = &mut ro_slots[k - rw_slots.len()];
            match slot.take() {
                None => {
                    let txn = db.begin_read_only();
                    let n = 1 + sched.next_below(4);
                    let mut plan = Vec::new();
                    for _ in 0..n {
                        let o = ObjectId(sched.next_below(spec.objects.max(1)));
                        if !plan.contains(&o) {
                            plan.push(o);
                        }
                    }
                    *slot = Some(RoFlight { txn, plan, pos: 0 });
                }
                Some(mut f) => {
                    if f.pos < f.plan.len() {
                        let obj = f.plan[f.pos];
                        match f.txn.read_u64(obj) {
                            Ok(_) => {
                                ro_reads += 1;
                                f.pos += 1;
                                *slot = Some(f);
                            }
                            Err(e)
                                if e.is_retryable()
                                    || matches!(e, DbError::VersionPruned { .. }) =>
                            {
                                f.txn.finish();
                                ro_aborts += 1;
                                steps_done += 1;
                            }
                            Err(e) => {
                                violations.push(Violation {
                                    oracle: "engine_error",
                                    detail: format!("ro read of {obj:?} failed: {e}"),
                                });
                                steps_done += 1;
                            }
                        }
                    } else {
                        f.txn.finish();
                        steps_done += 1;
                    }
                }
            }
        }

        // Maintenance draws: virtual time, the stall reaper, GC. Each is
        // part of the schedule, so each replays with the seed.
        if sched.next_below(6) == 0 {
            clock.advance(Duration::from_millis(1 + sched.next_below(8)));
        }
        if sched.next_below(24) == 0 {
            reaped += db.reap_stalled().len() as u64;
        }
        if sched.next_below(48) == 0 {
            db.collect_garbage();
        }
    }

    // Drain whatever is still in flight so the trace and the version-
    // control queue reach a quiescent terminal state.
    for f in rw_slots.drain(..).flatten() {
        f.txn.abort();
    }
    for f in ro_slots.drain(..).flatten() {
        f.txn.finish();
    }
    clock.advance(Duration::from_millis(100));
    reaped += db.reap_stalled().len() as u64;

    // --- Terminal oracles -------------------------------------------------
    if let Err(e) = db.vc().validate() {
        violations.push(Violation {
            oracle: "vc_invariant",
            detail: e,
        });
    }
    let hist = db
        .trace_history()
        .expect("tracing is always enabled in simulation");
    let mvsg = mvcc_model::mvsg::check_tn_order(&hist);
    if !mvsg.acyclic {
        violations.push(Violation {
            oracle: "mvsg_cycle",
            detail: format!("{:?}", mvsg.cycle),
        });
    }
    for (i, &want) in expected.iter().enumerate() {
        let got = db.peek_latest(ObjectId(i as u64)).as_u64().unwrap_or(0);
        if got != want {
            violations.push(Violation {
                oracle: "conservation",
                detail: format!("object {i}: latest {got} != {want} committed increments"),
            });
        }
    }
    if let Some(v) = db.peek_latest(reserved_object(spec.objects)).as_u64() {
        violations.push(Violation {
            oracle: "reserved_keyspace",
            detail: format!(
                "reserved object {:?} holds {v:#x}; the workload never writes it",
                reserved_object(spec.objects)
            ),
        });
    }
    match MvDatabase::recover(mk(), DbConfig::default(), None, &mem.bytes(), None) {
        Ok((rdb, _stats)) => {
            for (i, &want) in expected.iter().enumerate() {
                let got = rdb.peek_latest(ObjectId(i as u64)).as_u64().unwrap_or(0);
                if got != want {
                    violations.push(Violation {
                        oracle: "recovery_conservation",
                        detail: format!("object {i}: recovered {got} != {want} committed"),
                    });
                }
            }
        }
        Err(e) => violations.push(Violation {
            oracle: "recovery_conservation",
            detail: format!("WAL replay failed: {e}"),
        }),
    }

    // --- Canonical trace --------------------------------------------------
    let mut trace = String::new();
    let mut thread_norm: BTreeMap<u64, u64> = BTreeMap::new();
    for e in db.obs().events().recent(event_cap) {
        let next = thread_norm.len() as u64;
        let th = *thread_norm.entry(e.thread).or_insert(next);
        trace.push_str(&format!(
            "s{} t{} {} th{} id{} aux{}\n",
            e.seq,
            e.t_ns,
            e.kind.name(),
            th,
            e.id,
            e.aux
        ));
    }
    // Span trees of every sampled transaction are part of the canonical
    // trace: a replay must reproduce not just the event stream but the
    // exact shape, timing and attributes of each trace. Evicted traces
    // (past the registry cap) are skipped identically on replay.
    trace.push_str("== spans ==\n");
    for &id in &traced {
        let Some(snap) = db.trace_snapshot(id) else {
            continue;
        };
        if let Err(e) = snap.validate() {
            violations.push(Violation {
                oracle: "trace_tree",
                detail: format!("trace {id}: {e}"),
            });
        }
        for s in &snap.spans {
            let next = thread_norm.len() as u64;
            let th = *thread_norm.entry(s.thread).or_insert(next);
            let attrs: String = s.attrs.iter().map(|(k, v)| format!(" {k}={v}")).collect();
            trace.push_str(&format!(
                "tr{} sp{} p{} {} [{}..{}] th{th}{attrs}\n",
                id, s.span_id, s.parent, s.name, s.start_ns, s.end_ns
            ));
        }
    }
    trace.push_str("== history ==\n");
    trace.push_str(&format!("{hist}"));
    trace.push_str(&format!(
        "== counters ==\nsteps={steps_done} commits={commits} aborts={aborts} stalls={stalls} \
         crashes={crashes} wal_aborts={wal_aborts} reaped={reaped} ro_reads={ro_reads} \
         ro_aborts={ro_aborts}\n"
    ));
    let fingerprint = format!("{:016x}", fnv1a(trace.as_bytes()));

    RunReport {
        spec: spec.clone(),
        steps_done,
        ticks,
        commits,
        aborts,
        stalls,
        crashes,
        wal_aborts,
        reaped,
        ro_reads,
        ro_aborts,
        violations,
        trace,
        fingerprint,
    }
}
