//! Overload simulation: seeded schedules that push the real engine
//! through the admission controller's degradation ladder and back.
//!
//! The harness reuses the single-node cooperative scheduler (one real
//! thread, logical clients advanced one operation per seeded tick,
//! virtual time) but shapes the workload as *overload*: a burst window
//! in the middle of the run inflates every write payload and — when
//! [`OverloadSpec::gc_stall`] is set — suspends garbage collection, so
//! live-version bytes and GC debt climb deterministically across the
//! configured watermarks. The run records every ladder transition the
//! admission controller takes and checks the robustness properties the
//! ladder promises:
//!
//! * **`no_silent_overrun`** — a transaction carrying a deadline budget
//!   either commits within it or is refused/aborted with
//!   `DeadlineExceeded`; no commit lands after its budget is spent.
//! * **`burst_recovery`** — once the burst ends and GC drains the debt,
//!   the ladder returns to `Normal` (shedding runs only).
//! * **`ladder_descent`** — downward transitions move exactly one rung
//!   at a time (the hysteresis contract; upward may jump).
//! * **`ladder_hysteresis`** — the total transition count stays bounded:
//!   a noisy boundary must not make the ladder oscillate.
//! * **`tenant_fairness`** — under skewed quota weights the heavy
//!   tenant is never starved: its admitted share stays at or above half
//!   of `min(offered share, weight share)`, and at the `Shed` rung the
//!   light tenants are the ones refused.
//! * **`permit_leak`** — after every in-flight transaction drains, the
//!   controller's in-flight gauge is back to zero (the RAII permit
//!   released every slot).
//!
//! Everything derives from [`OverloadSpec::seed`]; two runs of one spec
//! produce byte-identical canonical traces.

use crate::report::{fnv1a, Violation};
use crate::spec::Protocol;
use mvcc_cc::{Optimistic, TimestampOrdering, TwoPhaseLocking};
use mvcc_core::{
    AbortReason, ConcurrencyControl, DbConfig, DbError, MvDatabase, PressureConfig, PressureLevel,
    RwTxn, SimClock, SimRng, SplitMixRng, TenantId, TxnOptions,
};
use mvcc_model::ObjectId;
use mvcc_storage::Value;
use std::fmt;
use std::time::Duration;

/// Stream-splitting constant for the engine's jitter rng, distinct from
/// the single-node harness stream so overload runs never alias it.
const ENGINE_STREAM: u64 = 0x0DD5_0AD0_0DD5_0AD0;

/// Cooldown ticks granted after the step budget for the ladder to
/// descend back to `Normal` before the recovery oracle is checked.
const COOLDOWN_TICKS: u64 = 400;

/// Everything that determines one overload run.
#[derive(Debug, Clone, PartialEq)]
pub struct OverloadSpec {
    /// Master seed: scheduler, workload and jitter streams derive from it.
    pub seed: u64,
    /// Concurrency-control protocol under test.
    pub protocol: Protocol,
    /// Read-write client slots. Client `k` bills tenant `k % tenants`.
    pub clients: usize,
    /// Read-only client slots.
    pub ro_clients: usize,
    /// Number of tenants billed round-robin by the clients.
    pub tenants: u32,
    /// Quota weight of tenant 0 (the "heavy" tenant); all others keep
    /// the default weight 1 and are shed first at the `Shed` rung.
    pub heavy_tenant_weight: u32,
    /// Completed transactions before the run checks terminal oracles.
    pub steps: u64,
    /// Workload keyspace size.
    pub objects: u64,
    /// Step at which the overload burst begins.
    pub burst_from: u64,
    /// Step at which the burst ends (exclusive).
    pub burst_until: u64,
    /// Write payload size during the burst (8 bytes outside it).
    pub burst_value_bytes: usize,
    /// Suspend garbage collection for the whole burst window, letting
    /// GC debt pile up on top of the live-byte growth.
    pub gc_stall: bool,
    /// Run with the admission controller enabled. Off reproduces the
    /// unprotected engine for goodput comparisons.
    pub shedding: bool,
    /// Per-transaction deadline budget handed to every begin.
    pub deadline: Option<Duration>,
    /// Live-byte watermarks `(low, high)` for the degradation ladder.
    pub byte_watermarks: (u64, u64),
    /// GC-debt watermarks `(low, high)`; `(0, 0)` disables the signal.
    pub debt_watermarks: (u64, u64),
}

impl Default for OverloadSpec {
    fn default() -> Self {
        OverloadSpec {
            seed: 1,
            protocol: Protocol::TwoPl,
            clients: 6,
            ro_clients: 2,
            tenants: 3,
            heavy_tenant_weight: 4,
            steps: 600,
            objects: 8,
            burst_from: 150,
            burst_until: 300,
            burst_value_bytes: 4096,
            gc_stall: true,
            shedding: true,
            deadline: None,
            byte_watermarks: (8_192, 65_536),
            debt_watermarks: (0, 0),
        }
    }
}

impl fmt::Display for OverloadSpec {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "seed={} proto={} clients={}+{}ro tenants={} steps={} burst=[{},{})x{}B \
             gc_stall={} shedding={} deadline={:?}",
            self.seed,
            self.protocol,
            self.clients,
            self.ro_clients,
            self.tenants,
            self.steps,
            self.burst_from,
            self.burst_until,
            self.burst_value_bytes,
            self.gc_stall,
            self.shedding,
            self.deadline,
        )
    }
}

/// One degradation-ladder transition, in schedule order.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LadderStep {
    /// Scheduler tick at which the transition was observed.
    pub tick: u64,
    /// Virtual time of the observation, nanoseconds since run start.
    pub t_ns: u64,
    /// Rung before.
    pub from: PressureLevel,
    /// Rung after.
    pub to: PressureLevel,
}

/// Everything one overload run produced.
#[derive(Debug, Clone)]
pub struct OverloadReport {
    /// The spec that produced this run.
    pub spec: OverloadSpec,
    /// Completed transactions (any outcome).
    pub steps_done: u64,
    /// Scheduler ticks consumed (including the cooldown phase).
    pub ticks: u64,
    /// Committed read-write transactions.
    pub commits: u64,
    /// Retryable protocol aborts (conflicts, timeouts).
    pub aborts: u64,
    /// Read-write begins refused by the admission controller.
    pub shed_rw: u64,
    /// Read-only begins refused on the `RejectRo` rung.
    pub shed_ro: u64,
    /// Transactions aborted because their deadline budget expired.
    pub deadline_aborts: u64,
    /// Successful read-only reads.
    pub ro_reads: u64,
    /// Read-only transactions cut short (pruned version).
    pub ro_aborts: u64,
    /// Every ladder transition, in schedule order.
    pub transitions: Vec<LadderStep>,
    /// Highest rung the run reached.
    pub max_level: PressureLevel,
    /// Rung at the end of the cooldown phase.
    pub final_level: PressureLevel,
    /// Per-tenant `(tenant, admitted, shed)` counters, captured before
    /// the cooldown probes run.
    pub tenant_stats: Vec<(TenantId, u64, u64)>,
    /// Oracle failures; empty means the run passed.
    pub violations: Vec<Violation>,
    /// Canonical deterministic trace: ladder transitions, tenant
    /// counters and the run counters. Byte-identical across replays.
    pub trace: String,
    /// FNV-1a 64 hash of `trace`, hex.
    pub fingerprint: String,
}

impl OverloadReport {
    /// `true` when every oracle held.
    pub fn passed(&self) -> bool {
        self.violations.is_empty()
    }

    /// One-line outcome summary.
    pub fn summary(&self) -> String {
        format!(
            "{} | steps={} ticks={} commits={} aborts={} shed_rw={} shed_ro={} \
             deadline_aborts={} max={} final={} transitions={} violations={} fp={}",
            self.spec,
            self.steps_done,
            self.ticks,
            self.commits,
            self.aborts,
            self.shed_rw,
            self.shed_ro,
            self.deadline_aborts,
            self.max_level.name(),
            self.final_level.name(),
            self.transitions.len(),
            self.violations.len(),
            self.fingerprint,
        )
    }
}

/// Run one overload simulation to completion.
pub fn run_overload(spec: &OverloadSpec) -> OverloadReport {
    match spec.protocol {
        Protocol::TwoPl => drive(spec, || TwoPhaseLocking::with_shards(16)),
        Protocol::To => drive(spec, TimestampOrdering::new),
        Protocol::Occ => drive(spec, Optimistic::new),
    }
}

/// An in-flight read-write transaction owned by a logical client.
struct RwFlight<'db, C: ConcurrencyControl> {
    txn: RwTxn<'db, C>,
    plan: Vec<ObjectId>,
    pos: usize,
    start_ns: u64,
}

fn pressure_config(spec: &OverloadSpec) -> PressureConfig {
    if !spec.shedding {
        return PressureConfig::default();
    }
    let mut cfg = PressureConfig::enabled()
        .with_byte_watermarks(spec.byte_watermarks.0, spec.byte_watermarks.1)
        .with_tenant_weight(TenantId(0), spec.heavy_tenant_weight.max(1));
    if spec.debt_watermarks.1 > 0 {
        cfg = cfg.with_gc_debt_watermarks(spec.debt_watermarks.0, spec.debt_watermarks.1);
    }
    // Light tenants carry an explicit weight so the quota denominator
    // counts them; weight 1 sits below the shed threshold (2).
    for t in 1..spec.tenants.max(1) {
        cfg = cfg.with_tenant_weight(TenantId(t), 1);
    }
    cfg
}

fn drive<C, F>(spec: &OverloadSpec, mk: F) -> OverloadReport
where
    C: ConcurrencyControl,
    F: Fn() -> C,
{
    let clock = SimClock::new();
    let sched = SplitMixRng::new(spec.seed);
    let mut cfg = DbConfig::default()
        .with_clock(clock.clone())
        .with_rng(SplitMixRng::shared(spec.seed ^ ENGINE_STREAM))
        .with_pressure(pressure_config(spec));
    cfg.lock_wait_timeout = Duration::ZERO;
    cfg.read_wait_timeout = Duration::ZERO;
    cfg.register_ttl = Some(Duration::from_millis(25));

    let db = MvDatabase::with_config(mk(), cfg);
    for o in 0..spec.objects {
        db.seed(ObjectId(o), Value::from_u64(0));
    }

    let tenants = spec.tenants.max(1);
    let opts_for = |client: usize, budget: Option<Duration>| -> TxnOptions {
        let mut o = TxnOptions::default().with_tenant(TenantId(client as u32 % tenants));
        if let Some(b) = budget {
            o = o.with_deadline(b);
        }
        o
    };

    let mut rw_slots: Vec<Option<RwFlight<'_, C>>> =
        (0..spec.clients.max(1)).map(|_| None).collect();
    let mut ro_slots: Vec<Option<(mvcc_core::RoTxn<'_>, Vec<ObjectId>, usize)>> =
        (0..spec.ro_clients).map(|_| None).collect();
    let total = rw_slots.len() + ro_slots.len();

    let mut steps_done = 0u64;
    let mut ticks = 0u64;
    let mut commits = 0u64;
    let mut aborts = 0u64;
    let mut shed_rw = 0u64;
    let mut shed_ro = 0u64;
    let mut deadline_aborts = 0u64;
    let mut ro_reads = 0u64;
    let mut ro_aborts = 0u64;
    let mut violations: Vec<Violation> = Vec::new();
    let mut transitions: Vec<LadderStep> = Vec::new();
    let mut last_level = db.admission().level();
    let mut max_level = last_level;

    let in_burst = |step: u64| -> bool {
        spec.burst_from < spec.burst_until && step >= spec.burst_from && step < spec.burst_until
    };

    let max_ticks = spec.steps.saturating_mul(300).max(10_000);
    while steps_done < spec.steps && ticks < max_ticks {
        ticks += 1;
        let burst = in_burst(steps_done);

        let k = sched.next_below(total as u64) as usize;
        if k < rw_slots.len() {
            let slot = &mut rw_slots[k];
            match slot.take() {
                None => match db.begin_read_write_with(&opts_for(k, spec.deadline)) {
                    Ok(txn) => {
                        let n = 1 + sched.next_below(3);
                        let mut plan = Vec::new();
                        for _ in 0..n {
                            let o = ObjectId(sched.next_below(spec.objects.max(1)));
                            if !plan.contains(&o) {
                                plan.push(o);
                            }
                        }
                        *slot = Some(RwFlight {
                            txn,
                            plan,
                            pos: 0,
                            start_ns: clock.elapsed_ns(),
                        });
                    }
                    Err(DbError::Aborted(AbortReason::Shed)) => {
                        shed_rw += 1;
                        steps_done += 1;
                        if db.admission().retry_after() == Duration::ZERO {
                            violations.push(Violation {
                                oracle: "retry_after_hint",
                                detail: "shed begin got a zero retry-after hint".into(),
                            });
                        }
                    }
                    Err(DbError::Aborted(AbortReason::DeadlineExceeded)) => {
                        deadline_aborts += 1;
                        steps_done += 1;
                    }
                    Err(e) => {
                        violations.push(Violation {
                            oracle: "engine_error",
                            detail: format!("rw begin failed: {e}"),
                        });
                        steps_done += 1;
                    }
                },
                Some(mut f) => {
                    if f.pos < f.plan.len() {
                        let obj = f.plan[f.pos];
                        let value = if burst {
                            Value::from_bytes(vec![0x5a_u8; spec.burst_value_bytes.max(8)])
                        } else {
                            Value::from_u64(steps_done)
                        };
                        let res = f
                            .txn
                            .read_for_update(obj)
                            .and_then(|_| f.txn.write(obj, value));
                        match res {
                            Ok(()) => {
                                f.pos += 1;
                                *slot = Some(f);
                            }
                            Err(DbError::Aborted(AbortReason::DeadlineExceeded)) => {
                                f.txn.abort();
                                deadline_aborts += 1;
                                steps_done += 1;
                            }
                            Err(e)
                                if e.is_retryable()
                                    || matches!(e, DbError::VersionPruned { .. }) =>
                            {
                                f.txn.abort();
                                aborts += 1;
                                steps_done += 1;
                            }
                            Err(e) => {
                                violations.push(Violation {
                                    oracle: "engine_error",
                                    detail: format!("rw op on {obj:?} failed: {e}"),
                                });
                                steps_done += 1;
                            }
                        }
                    } else {
                        let started = f.start_ns;
                        match f.txn.commit() {
                            Ok(_tn) => {
                                commits += 1;
                                steps_done += 1;
                                if let Some(budget) = spec.deadline {
                                    let elapsed = clock.elapsed_ns().saturating_sub(started);
                                    if elapsed > budget.as_nanos() as u64 {
                                        violations.push(Violation {
                                            oracle: "no_silent_overrun",
                                            detail: format!(
                                                "commit landed {elapsed}ns after begin, \
                                                 budget was {}ns",
                                                budget.as_nanos()
                                            ),
                                        });
                                    }
                                }
                            }
                            Err(DbError::Aborted(AbortReason::DeadlineExceeded)) => {
                                deadline_aborts += 1;
                                steps_done += 1;
                            }
                            Err(e) if e.is_retryable() => {
                                aborts += 1;
                                steps_done += 1;
                            }
                            Err(e) => {
                                violations.push(Violation {
                                    oracle: "engine_error",
                                    detail: format!("commit failed: {e}"),
                                });
                                steps_done += 1;
                            }
                        }
                    }
                }
            }
        } else {
            let slot = &mut ro_slots[k - rw_slots.len()];
            match slot.take() {
                None => match db.begin_read_only_admitted(&opts_for(k, None)) {
                    Ok(txn) => {
                        let n = 1 + sched.next_below(4);
                        let mut plan = Vec::new();
                        for _ in 0..n {
                            let o = ObjectId(sched.next_below(spec.objects.max(1)));
                            if !plan.contains(&o) {
                                plan.push(o);
                            }
                        }
                        *slot = Some((txn, plan, 0));
                    }
                    Err(DbError::Aborted(AbortReason::MemoryPressure)) => {
                        shed_ro += 1;
                        steps_done += 1;
                    }
                    Err(e) => {
                        violations.push(Violation {
                            oracle: "engine_error",
                            detail: format!("ro begin failed: {e}"),
                        });
                        steps_done += 1;
                    }
                },
                Some((mut txn, plan, mut pos)) => {
                    if pos < plan.len() {
                        let obj = plan[pos];
                        match txn.read_u64(obj) {
                            Ok(_) => {
                                ro_reads += 1;
                                pos += 1;
                                *slot = Some((txn, plan, pos));
                            }
                            Err(e)
                                if e.is_retryable()
                                    || matches!(e, DbError::VersionPruned { .. }) =>
                            {
                                txn.finish();
                                ro_aborts += 1;
                                steps_done += 1;
                            }
                            Err(e) => {
                                violations.push(Violation {
                                    oracle: "engine_error",
                                    detail: format!("ro read of {obj:?} failed: {e}"),
                                });
                                steps_done += 1;
                            }
                        }
                    } else {
                        txn.finish();
                        steps_done += 1;
                    }
                }
            }
        }

        // Maintenance draws: virtual time and GC. GC pauses inside the
        // burst when the spec stalls it, and runs more often when the
        // ladder asks for a pacing boost.
        if sched.next_below(6) == 0 {
            clock.advance(Duration::from_millis(1 + sched.next_below(8)));
        }
        let gc_stalled = spec.gc_stall && burst;
        let boost = db.admission().level().gc_boost() as u64;
        if !gc_stalled && sched.next_below((32 / boost).max(1)) == 0 {
            db.collect_garbage();
        }

        let lvl = db.admission().level();
        if lvl != last_level {
            transitions.push(LadderStep {
                tick: ticks,
                t_ns: clock.elapsed_ns(),
                from: last_level,
                to: lvl,
            });
            last_level = lvl;
            max_level = max_level.max(lvl);
        }
    }

    // Drain whatever is still in flight so every admission permit is
    // released before the gauges are inspected.
    for f in rw_slots.drain(..).flatten() {
        f.txn.abort();
    }
    for (txn, ..) in ro_slots.drain(..).flatten() {
        txn.finish();
    }
    let tenant_stats: Vec<(TenantId, u64, u64)> = db
        .admission()
        .tenant_stats()
        .into_iter()
        .map(|(t, admitted, shed, _in_flight)| (t, admitted, shed))
        .collect();

    // Cooldown: with the burst over, drain GC debt and keep feeding the
    // controller observations (each begin observes) until the ladder is
    // back at Normal or the budget runs out. Probes bill the heavy
    // tenant so they pass the shed rung; their begins are aborted
    // immediately and never count as workload.
    let mut cooldown = 0u64;
    while spec.shedding
        && cooldown < COOLDOWN_TICKS
        && db.admission().level() != PressureLevel::Normal
    {
        cooldown += 1;
        ticks += 1;
        clock.advance(Duration::from_millis(1));
        db.collect_garbage();
        if let Ok(t) = db.begin_read_write_with(&TxnOptions::default().with_tenant(TenantId(0))) {
            t.abort();
        }
        let lvl = db.admission().level();
        if lvl != last_level {
            transitions.push(LadderStep {
                tick: ticks,
                t_ns: clock.elapsed_ns(),
                from: last_level,
                to: lvl,
            });
            last_level = lvl;
        }
    }
    let final_level = db.admission().level();

    check_oracles(
        spec,
        &db.metrics(),
        db.admission().in_flight(),
        &transitions,
        &tenant_stats,
        max_level,
        final_level,
        commits,
        &mut violations,
    );

    // --- Canonical trace --------------------------------------------------
    let mut trace = String::new();
    trace.push_str("== ladder ==\n");
    for t in &transitions {
        trace.push_str(&format!(
            "tick{} t{} {} -> {}\n",
            t.tick,
            t.t_ns,
            t.from.name(),
            t.to.name()
        ));
    }
    trace.push_str("== tenants ==\n");
    for (t, admitted, shed) in &tenant_stats {
        trace.push_str(&format!("t{} admitted={admitted} shed={shed}\n", t.0));
    }
    trace.push_str(&format!(
        "== counters ==\nsteps={steps_done} commits={commits} aborts={aborts} shed_rw={shed_rw} \
         shed_ro={shed_ro} deadline_aborts={deadline_aborts} ro_reads={ro_reads} \
         ro_aborts={ro_aborts} max={} final={}\n",
        max_level.name(),
        final_level.name()
    ));
    let fingerprint = format!("{:016x}", fnv1a(trace.as_bytes()));

    OverloadReport {
        spec: spec.clone(),
        steps_done,
        ticks,
        commits,
        aborts,
        shed_rw,
        shed_ro,
        deadline_aborts,
        ro_reads,
        ro_aborts,
        transitions,
        max_level,
        final_level,
        tenant_stats,
        violations,
        trace,
        fingerprint,
    }
}

/// Terminal oracle checks; every failure lands in `violations`.
#[allow(clippy::too_many_arguments)]
fn check_oracles(
    spec: &OverloadSpec,
    metrics: &mvcc_core::MetricsSnapshot,
    in_flight: u64,
    transitions: &[LadderStep],
    tenant_stats: &[(TenantId, u64, u64)],
    max_level: PressureLevel,
    final_level: PressureLevel,
    commits: u64,
    violations: &mut Vec<Violation>,
) {
    if commits == 0 {
        violations.push(Violation {
            oracle: "liveness",
            detail: "the run committed nothing at all".into(),
        });
    }
    if in_flight != 0 {
        violations.push(Violation {
            oracle: "permit_leak",
            detail: format!("{in_flight} admission slots still held after drain"),
        });
    }
    for t in transitions {
        if (t.to as u8) < (t.from as u8) && (t.from as u8) - (t.to as u8) != 1 {
            violations.push(Violation {
                oracle: "ladder_descent",
                detail: format!(
                    "tick {}: descended {} -> {} (must step one rung at a time)",
                    t.tick,
                    t.from.name(),
                    t.to.name()
                ),
            });
        }
    }
    // One climb + one descent per burst, with generous slack; an
    // oscillating ladder produces dozens.
    if metrics.pressure_transitions > 12 {
        violations.push(Violation {
            oracle: "ladder_hysteresis",
            detail: format!(
                "{} ladder transitions for a single burst — the hysteresis band is not holding",
                metrics.pressure_transitions
            ),
        });
    }
    if spec.shedding {
        if final_level != PressureLevel::Normal {
            violations.push(Violation {
                oracle: "burst_recovery",
                detail: format!(
                    "ladder still at {} after the cooldown budget",
                    final_level.name()
                ),
            });
        }
        if max_level >= PressureLevel::Shed {
            let heavy = tenant_stats
                .iter()
                .find(|(t, ..)| *t == TenantId(0))
                .map(|&(_, a, s)| (a, s))
                .unwrap_or((0, 0));
            let total_admitted: u64 = tenant_stats.iter().map(|&(_, a, _)| a).sum();
            let light_shed: u64 = tenant_stats
                .iter()
                .filter(|(t, ..)| *t != TenantId(0))
                .map(|&(_, _, s)| s)
                .sum();
            if heavy.0 == 0 {
                violations.push(Violation {
                    oracle: "tenant_fairness",
                    detail: "heavy tenant was starved: zero admissions".into(),
                });
            }
            if light_shed == 0 {
                violations.push(Violation {
                    oracle: "tenant_fairness",
                    detail: "reached the shed rung but no light tenant was ever refused".into(),
                });
            }
            // The heavy tenant's admitted share must be at least half of
            // min(its offered share, its weight share).
            let offered = offered_share(spec);
            let weight = spec.heavy_tenant_weight.max(1) as f64
                / (spec.heavy_tenant_weight.max(1) as f64 + (spec.tenants.max(1) - 1) as f64);
            let floor = offered.min(weight) / 2.0;
            if total_admitted > 0 && (heavy.0 as f64) < floor * total_admitted as f64 {
                violations.push(Violation {
                    oracle: "tenant_fairness",
                    detail: format!(
                        "heavy tenant admitted {}/{} — below its {:.0}% floor",
                        heavy.0,
                        total_admitted,
                        floor * 100.0
                    ),
                });
            }
        }
    } else {
        if metrics.shed_rw != 0 || metrics.shed_ro != 0 {
            violations.push(Violation {
                oracle: "admission_disabled",
                detail: format!(
                    "admission off but {} rw / {} ro begins were refused",
                    metrics.shed_rw, metrics.shed_ro
                ),
            });
        }
        if !transitions.is_empty() {
            violations.push(Violation {
                oracle: "admission_disabled",
                detail: format!(
                    "admission off but the ladder moved {} times",
                    transitions.len()
                ),
            });
        }
    }
}

/// Fraction of the client slots billed to the heavy tenant.
fn offered_share(spec: &OverloadSpec) -> f64 {
    let clients = spec.clients.max(1);
    let tenants = spec.tenants.max(1) as usize;
    let heavy_clients = clients.div_ceil(tenants);
    heavy_clients as f64 / clients as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_spec_is_a_real_burst() {
        let s = OverloadSpec::default();
        assert!(s.burst_from < s.burst_until);
        assert!(s.burst_until < s.steps, "needs post-burst steps to recover");
        assert!(s.byte_watermarks.0 < s.byte_watermarks.1);
    }

    #[test]
    fn offered_share_counts_round_robin_assignment() {
        let s = OverloadSpec {
            clients: 6,
            tenants: 3,
            ..OverloadSpec::default()
        };
        assert!((offered_share(&s) - 1.0 / 3.0).abs() < 1e-9);
    }
}
