//! Seed sweeping: the explorer's engine, callable from tests and CI.
//!
//! A sweep runs a grid of `seeds × modes × protocols × fault profiles`,
//! checks every run against the oracles, and for each failure produces
//! the full diagnosis bundle: the minimized spec, a double replay that
//! proves the trace is byte-stable, and the one-command repro string.

use crate::minimize::minimize;
use crate::report::RunReport;
use crate::run_spec;
use crate::spec::{FaultProfile, Mode, Protocol, Sabotage, SimSpec};

/// What to sweep.
#[derive(Debug, Clone)]
pub struct SweepConfig {
    /// First seed in the range.
    pub seed_start: u64,
    /// How many consecutive seeds to run.
    pub seeds: u64,
    /// Modes to cover.
    pub modes: Vec<Mode>,
    /// Protocols to cover (single-node runs; cluster runs once per seed).
    pub protocols: Vec<Protocol>,
    /// Fault profiles to cover.
    pub faults: Vec<FaultProfile>,
    /// Sabotage applied to every run.
    pub sabotage: Sabotage,
    /// Template for the non-swept dimensions (clients, steps, objects…).
    pub base: SimSpec,
}

impl Default for SweepConfig {
    fn default() -> Self {
        SweepConfig {
            seed_start: 1,
            seeds: 20,
            modes: vec![Mode::Single],
            protocols: Protocol::ALL.to_vec(),
            faults: vec![FaultProfile::Light],
            sabotage: Sabotage::None,
            base: SimSpec::default(),
        }
    }
}

/// One failing run with its full diagnosis.
#[derive(Debug, Clone)]
pub struct Failure {
    /// The spec the sweep originally ran.
    pub spec: SimSpec,
    /// Locally minimal spec that still fails.
    pub minimized: SimSpec,
    /// The minimized run's report (violations, trace, fingerprint).
    pub report: RunReport,
    /// Whether two fresh replays of the minimized spec produced
    /// byte-identical traces (the determinism guarantee, verified).
    pub replay_ok: bool,
    /// Explorer CLI flags reproducing the minimized run.
    pub repro: String,
}

/// The outcome of a sweep.
#[derive(Debug, Clone)]
pub struct SweepOutcome {
    /// Total runs executed (excluding minimization/replay reruns).
    pub runs: u64,
    /// Runs that passed every oracle.
    pub passed: u64,
    /// Every failing run, fully diagnosed.
    pub failures: Vec<Failure>,
}

/// Run the sweep. `on_run` is invoked after every grid run (for progress
/// output); pass `|_| {}` to stay silent.
pub fn sweep(cfg: &SweepConfig, mut on_run: impl FnMut(&RunReport)) -> SweepOutcome {
    let mut runs = 0;
    let mut passed = 0;
    let mut failures = Vec::new();
    for seed in cfg.seed_start..cfg.seed_start.saturating_add(cfg.seeds) {
        for &mode in &cfg.modes {
            // Cluster sites are 2PL by construction; sweeping protocols
            // there would rerun identical specs.
            let protos: &[Protocol] = match mode {
                Mode::Single => &cfg.protocols,
                Mode::Cluster => &cfg.protocols[..1.min(cfg.protocols.len())],
            };
            for &protocol in protos {
                for &faults in &cfg.faults {
                    let spec = SimSpec {
                        seed,
                        mode,
                        protocol,
                        faults,
                        sabotage: cfg.sabotage,
                        ..cfg.base.clone()
                    };
                    let report = run_spec(&spec);
                    runs += 1;
                    on_run(&report);
                    if report.passed() {
                        passed += 1;
                        continue;
                    }
                    let (minimized, min_report) = minimize(&spec);
                    let a = run_spec(&minimized);
                    let b = run_spec(&minimized);
                    let replay_ok = a.trace == b.trace && a.trace == min_report.trace;
                    failures.push(Failure {
                        spec,
                        repro: minimized.repro_args(),
                        minimized,
                        report: min_report,
                        replay_ok,
                    });
                }
            }
        }
    }
    SweepOutcome {
        runs,
        passed,
        failures,
    }
}
