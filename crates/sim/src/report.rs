//! Run outcomes: counters, oracle verdicts and the canonical trace.

use crate::spec::SimSpec;
use std::fmt;

/// One oracle failure.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Violation {
    /// Which oracle fired (`vc_invariant`, `mvsg_cycle`, `conservation`,
    /// `recovery_conservation`, `reserved_keyspace`, `in_doubt_stuck`,
    /// `engine_error`, …).
    pub oracle: &'static str,
    /// Human-readable detail (counter values, the cycle, the error).
    pub detail: String,
}

impl fmt::Display for Violation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[{}] {}", self.oracle, self.detail)
    }
}

/// Everything one simulated run produced.
#[derive(Debug, Clone)]
pub struct RunReport {
    /// The spec that produced this run (print it, reproduce the run).
    pub spec: SimSpec,
    /// Completed transactions (any outcome).
    pub steps_done: u64,
    /// Scheduler ticks consumed.
    pub ticks: u64,
    /// Committed read-write transactions.
    pub commits: u64,
    /// Protocol aborts (retryable conflicts, timeouts, deadlock victims).
    pub aborts: u64,
    /// Clients stalled mid-transaction by fault injection.
    pub stalls: u64,
    /// Clients crashed at commit entry by fault injection.
    pub crashes: u64,
    /// Commits rejected by an injected WAL fault (`LogFailed`).
    pub wal_aborts: u64,
    /// Registrations force-discarded by the stall reaper.
    pub reaped: u64,
    /// Successful read-only reads.
    pub ro_reads: u64,
    /// Read-only transactions cut short (pruned version, visibility wait).
    pub ro_aborts: u64,
    /// Oracle failures; empty means the run passed.
    pub violations: Vec<Violation>,
    /// Canonical deterministic trace: normalized event log, the model
    /// history, and the counter line. Two runs of the same spec must
    /// produce byte-identical traces.
    pub trace: String,
    /// FNV-1a 64 hash of `trace`, hex — the run's fingerprint.
    pub fingerprint: String,
}

impl RunReport {
    /// `true` when every oracle held.
    pub fn passed(&self) -> bool {
        self.violations.is_empty()
    }

    /// One-line outcome summary.
    pub fn summary(&self) -> String {
        format!(
            "{} | steps={} ticks={} commits={} aborts={} stalls={} crashes={} wal_aborts={} \
             reaped={} ro_reads={} ro_aborts={} violations={} fp={}",
            self.spec,
            self.steps_done,
            self.ticks,
            self.commits,
            self.aborts,
            self.stalls,
            self.crashes,
            self.wal_aborts,
            self.reaped,
            self.ro_reads,
            self.ro_aborts,
            self.violations.len(),
            self.fingerprint,
        )
    }

    /// The last `n` lines of the trace — the post-mortem tail.
    pub fn trace_tail(&self, n: usize) -> String {
        let lines: Vec<&str> = self.trace.lines().collect();
        let start = lines.len().saturating_sub(n);
        lines[start..].join("\n")
    }
}

/// FNV-1a 64-bit hash (stable across platforms and runs; no `Hasher`
/// randomness).
pub fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fnv_is_stable() {
        assert_eq!(fnv1a(b""), 0xcbf2_9ce4_8422_2325);
        assert_eq!(fnv1a(b"a"), 0xaf63_dc4c_8601_ec8c);
        assert_ne!(fnv1a(b"ab"), fnv1a(b"ba"));
    }
}
